#include "obs/status_file.h"

#include <cstdio>
#include <string>

#include "obs/sinks.h"

namespace mexi::obs {

StatusFile::StatusFile(std::string path)
    : path_(std::move(path)),
      phase_start_(std::chrono::steady_clock::now()) {}

void StatusFile::Update(const StatusUpdate& update) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!update.phase.empty() && update.phase != phase_) {
    phase_ = update.phase;
    phase_start_ = std::chrono::steady_clock::now();
    done_ = total_ = -1;  // progress units belong to the phase
  }
  if (update.done >= 0) done_ = update.done;
  if (update.total >= 0) total_ = update.total;
  if (update.epoch >= 0) epoch_ = update.epoch;
  if (update.total_epochs >= 0) total_epochs_ = update.total_epochs;
  if (update.fold >= 0) fold_ = update.fold;
  if (update.total_folds >= 0) total_folds_ = update.total_folds;
  if (!update.last_checkpoint.empty()) {
    last_checkpoint_ = update.last_checkpoint;
  }
  WriteLocked();
}

void StatusFile::WriteLocked() {
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    phase_start_)
          .count();
  double eta = -1.0;
  if (done_ > 0 && total_ > done_) {
    eta = elapsed * static_cast<double>(total_ - done_) /
          static_cast<double>(done_);
  } else if (done_ >= 0 && total_ == done_) {
    eta = 0.0;
  }
  const auto unix_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();

  char body[1024];
  std::snprintf(
      body, sizeof(body),
      "{\"schema_version\": 1, \"phase\": \"%s\", \"done\": %lld, "
      "\"total\": %lld, \"epoch\": %lld, \"total_epochs\": %lld, "
      "\"fold\": %lld, \"total_folds\": %lld, \"last_checkpoint\": "
      "\"%s\", \"elapsed_seconds\": %.3f, \"eta_seconds\": %.3f, "
      "\"updated_unix_ms\": %lld}\n",
      JsonEscape(phase_).c_str(), static_cast<long long>(done_),
      static_cast<long long>(total_), static_cast<long long>(epoch_),
      static_cast<long long>(total_epochs_), static_cast<long long>(fold_),
      static_cast<long long>(total_folds_),
      JsonEscape(last_checkpoint_).c_str(), elapsed, eta,
      static_cast<long long>(unix_ms));

  // Temp + rename: watchers polling the path never observe a torn
  // document. Failures are swallowed — status reporting must never take
  // down the run it is reporting on.
  WriteFileAtomicNoThrow(path_, body);
}

}  // namespace mexi::obs
