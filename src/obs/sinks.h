#ifndef MEXI_OBS_SINKS_H_
#define MEXI_OBS_SINKS_H_

#include <cstdio>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace mexi::obs {

/// Escapes a string for embedding inside JSON quotes.
std::string JsonEscape(const std::string& in);

/// Appends `lines` (each a complete JSON object, no trailing newline)
/// to `path`, one per line. Returns false on IO failure; sinks never
/// throw — observability must not take down the run it observes.
bool AppendJsonlLines(const std::string& path,
                      const std::vector<std::string>& lines);

/// Writes `content` to `path` via temp + rename so readers never see a
/// torn document. Returns false on IO failure.
bool WriteFileAtomicNoThrow(const std::string& path,
                            const std::string& content);

/// Human-readable end-of-run summary of a metrics snapshot.
void PrintSummary(std::FILE* out, const MetricsSnapshot& snapshot,
                  std::size_t span_count, std::size_t event_count);

}  // namespace mexi::obs

#endif  // MEXI_OBS_SINKS_H_
