#include "obs/sinks.h"

#include <cstdio>

namespace mexi::obs {

std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (const char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool AppendJsonlLines(const std::string& path,
                      const std::vector<std::string>& lines) {
  if (lines.empty()) return true;
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) return false;
  bool ok = true;
  for (const std::string& line : lines) {
    if (std::fwrite(line.data(), 1, line.size(), f) != line.size() ||
        std::fputc('\n', f) == EOF) {
      ok = false;
      break;
    }
  }
  return std::fclose(f) == 0 && ok;
}

bool WriteFileAtomicNoThrow(const std::string& path,
                            const std::string& content) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const bool wrote =
      std::fwrite(content.data(), 1, content.size(), f) == content.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    std::remove(tmp.c_str());
    return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

void PrintSummary(std::FILE* out, const MetricsSnapshot& snapshot,
                  std::size_t span_count, std::size_t event_count) {
  std::fprintf(out,
               "[mexi obs] run summary: %zu counters, %zu gauges, "
               "%zu timers, %zu histograms, %zu spans, %zu events\n",
               snapshot.counters.size(), snapshot.gauges.size(),
               snapshot.timers.size(), snapshot.histograms.size(),
               span_count, event_count);
  for (const auto& c : snapshot.counters) {
    std::fprintf(out, "[mexi obs]   counter %-32s %llu\n", c.name.c_str(),
                 static_cast<unsigned long long>(c.value));
  }
  for (const auto& g : snapshot.gauges) {
    std::fprintf(out, "[mexi obs]   gauge   %-32s %.6g\n", g.name.c_str(),
                 g.value);
  }
  for (const auto& t : snapshot.timers) {
    std::fprintf(out,
                 "[mexi obs]   timer   %-32s count=%llu total=%.3fs "
                 "ema=%.4fs\n",
                 t.name.c_str(), static_cast<unsigned long long>(t.count),
                 t.total_seconds, t.ema_seconds);
  }
  for (const auto& h : snapshot.histograms) {
    std::uint64_t total = 0;
    for (const std::uint64_t n : h.counts) total += n;
    std::fprintf(out, "[mexi obs]   hist    %-32s n=%llu buckets=[",
                 h.name.c_str(), static_cast<unsigned long long>(total));
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      std::fprintf(out, "%s%llu", i == 0 ? "" : " ",
                   static_cast<unsigned long long>(h.counts[i]));
    }
    std::fprintf(out, "]\n");
  }
}

}  // namespace mexi::obs
