#include "obs/trace.h"

#include <functional>
#include <thread>

#include "obs/obs.h"

namespace mexi::obs {

namespace {
thread_local Span* t_current_span = nullptr;
}  // namespace

const Span* Span::Current() { return t_current_span; }

Span::Span(const char* name) : name_(name) {
  Observability& hub = Observability::Global();
  if (!hub.metrics_enabled()) return;
  active_ = true;
  id_ = hub.NextSpanId();
  if (t_current_span != nullptr) {
    parent_id_ = t_current_span->id_;
    depth_ = t_current_span->depth_ + 1;
  }
  prev_ = t_current_span;
  t_current_span = this;
  start_ = std::chrono::steady_clock::now();
}

Span::~Span() {
  if (!active_) return;
  const auto end = std::chrono::steady_clock::now();
  t_current_span = prev_;
  Observability& hub = Observability::Global();
  // Metrics may have been disabled while the span was open (tests, CLI
  // teardown); the pop above keeps the stack sound either way.
  if (!hub.metrics_enabled()) return;
  SpanRecord record;
  record.name = name_;
  record.id = id_;
  record.parent_id = parent_id_;
  record.depth = depth_;
  record.thread_hash =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  const auto duration =
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start_);
  record.duration_ns = static_cast<std::uint64_t>(duration.count());
  const std::uint64_t now = hub.NowNs();
  record.start_ns =
      now > record.duration_ns ? now - record.duration_ns : 0;
  hub.RecordSpan(record);
}

}  // namespace mexi::obs
