#ifndef MEXI_OBS_METRICS_H_
#define MEXI_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mexi::obs {

/// Monotone event count. All mutation is a relaxed atomic add, so any
/// thread may hold a reference and bump it with no coordination.
class Counter {
 public:
  void Add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t Value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-writer-wins double. Stored as the IEEE bit pattern in an atomic
/// word so torn reads are impossible without a lock.
class Gauge {
 public:
  void Set(double value);
  double Value() const;

 private:
  std::atomic<std::uint64_t> bits_{0};
  std::atomic<bool> set_{false};
};

/// Duration accumulator: total time, observation count, and an
/// exponential moving average (alpha = 0.2) that tracks the recent
/// rate without keeping samples. The EMA update is a CAS loop on the
/// packed bit pattern — lock-free, safe under oversubscription.
class EmaTimer {
 public:
  void Observe(double seconds);

  std::uint64_t Count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double TotalSeconds() const;
  double EmaSeconds() const;

  static constexpr double kAlpha = 0.2;

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> total_ns_{0};
  std::atomic<std::uint64_t> ema_bits_{0};
  std::atomic<bool> seeded_{false};
};

/// Fixed-bucket histogram: `bounds` are inclusive upper bounds of each
/// bucket, with an implicit +inf overflow bucket at the end. Bucket
/// counts are relaxed atomics; the bounds are immutable after
/// construction, so concurrent Observe calls never race.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  const std::vector<double>& Bounds() const { return bounds_; }
  /// Bucket counts, length Bounds().size() + 1 (last = overflow).
  std::vector<std::uint64_t> Counts() const;
  std::uint64_t TotalCount() const;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
};

/// Point-in-time copy of every registered metric, in name-sorted order
/// (the registry stores names in a std::map), so sinks and tests see a
/// deterministic ordering.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value;
  };
  struct GaugeValue {
    std::string name;
    double value;
  };
  struct TimerValue {
    std::string name;
    std::uint64_t count;
    double total_seconds;
    double ema_seconds;
  };
  struct HistogramValue {
    std::string name;
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<TimerValue> timers;
  std::vector<HistogramValue> histograms;

  bool Empty() const {
    return counters.empty() && gauges.empty() && timers.empty() &&
           histograms.empty();
  }
};

/// Named-metric registry. Registration (first Get* for a name) takes a
/// mutex; the returned reference is stable for the registry's lifetime,
/// so hot paths resolve their metric once and then touch only atomics.
class MetricsRegistry {
 public:
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  EmaTimer& GetTimer(const std::string& name);
  /// Returns the existing histogram when `name` is already registered
  /// (the bounds of the first registration win).
  Histogram& GetHistogram(const std::string& name,
                          const std::vector<double>& bounds);

  MetricsSnapshot Snapshot() const;

  /// Drops every metric. Only for tests and re-enable cycles — callers
  /// must not hold references across a Reset.
  void Reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<EmaTimer>> timers_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace mexi::obs

#endif  // MEXI_OBS_METRICS_H_
