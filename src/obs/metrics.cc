#include "obs/metrics.h"

#include <bit>

namespace mexi::obs {

void Gauge::Set(double value) {
  bits_.store(std::bit_cast<std::uint64_t>(value), std::memory_order_relaxed);
  set_.store(true, std::memory_order_release);
}

double Gauge::Value() const {
  if (!set_.load(std::memory_order_acquire)) return 0.0;
  return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
}

void EmaTimer::Observe(double seconds) {
  if (seconds < 0.0) seconds = 0.0;
  count_.fetch_add(1, std::memory_order_relaxed);
  total_ns_.fetch_add(static_cast<std::uint64_t>(seconds * 1e9),
                      std::memory_order_relaxed);
  // First observation seeds the EMA; later ones fold in via CAS so two
  // racing observers both land (one may retry). The EMA is a smoothed
  // diagnostic, not an accounting quantity — total_ns carries the sum.
  if (!seeded_.exchange(true, std::memory_order_acq_rel)) {
    ema_bits_.store(std::bit_cast<std::uint64_t>(seconds),
                    std::memory_order_relaxed);
    return;
  }
  std::uint64_t observed = ema_bits_.load(std::memory_order_relaxed);
  for (;;) {
    const double current = std::bit_cast<double>(observed);
    const double next = current + kAlpha * (seconds - current);
    if (ema_bits_.compare_exchange_weak(
            observed, std::bit_cast<std::uint64_t>(next),
            std::memory_order_relaxed, std::memory_order_relaxed)) {
      return;
    }
  }
}

double EmaTimer::TotalSeconds() const {
  return static_cast<double>(total_ns_.load(std::memory_order_relaxed)) / 1e9;
}

double EmaTimer::EmaSeconds() const {
  if (!seeded_.load(std::memory_order_acquire)) return 0.0;
  return std::bit_cast<double>(ema_bits_.load(std::memory_order_relaxed));
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      counts_(new std::atomic<std::uint64_t>[bounds_.size() + 1]) {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Observe(double value) {
  std::size_t bucket = bounds_.size();  // overflow unless a bound fits
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::Counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::uint64_t Histogram::TotalCount() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    total += counts_[i].load(std::memory_order_relaxed);
  }
  return total;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

EmaTimer& MetricsRegistry::GetTimer(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = timers_[name];
  if (!slot) slot = std::make_unique<EmaTimer>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(bounds);
  return *slot;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.push_back({name, counter->Value()});
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.push_back({name, gauge->Value()});
  }
  snapshot.timers.reserve(timers_.size());
  for (const auto& [name, timer] : timers_) {
    snapshot.timers.push_back(
        {name, timer->Count(), timer->TotalSeconds(), timer->EmaSeconds()});
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.push_back(
        {name, histogram->Bounds(), histogram->Counts()});
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  timers_.clear();
  histograms_.clear();
}

}  // namespace mexi::obs
