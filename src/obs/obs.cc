#include "obs/obs.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "obs/sinks.h"

#ifndef MEXI_GIT_DESCRIBE
#define MEXI_GIT_DESCRIBE "unknown"
#endif

namespace mexi::obs {

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string JsonString(const std::string& value) {
  std::string out;
  const std::string escaped = JsonEscape(value);
  out.reserve(escaped.size() + 2);
  out += '"';
  out += escaped;
  out += '"';
  return out;
}

Field F(const char* key, const std::string& value) {
  return Field{key, JsonString(value)};
}

Field F(const char* key, const char* value) {
  return Field{key, JsonString(value)};
}

Observability& Observability::Global() {
  // Leaked singleton: instrumented destructors anywhere in the process
  // may still record during static teardown.
  static Observability* instance = new Observability();
  return *instance;
}

Observability::Observability()
    : origin_(std::chrono::steady_clock::now()) {
  const char* dir = std::getenv("MEXI_METRICS");
  if (dir != nullptr && dir[0] != '\0') EnableMetrics(dir);
  const char* status_path = std::getenv("MEXI_STATUS_FILE");
  if (status_path != nullptr && status_path[0] != '\0') {
    SetStatusFile(status_path);
  }
}

void Observability::EnableMetrics(const std::string& out_dir) {
  std::lock_guard<std::mutex> lock(mutex_);
  registry_.Reset();
  lines_.clear();
  spans_.clear();
  manifest_.clear();
  seq_ = 0;
  span_total_ = 0;
  event_total_ = 0;
  out_dir_ = out_dir;
  if (!out_dir_.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(out_dir_, ec);
    if (ec) {
      std::fprintf(stderr,
                   "[mexi obs] cannot create metrics dir %s: %s — metrics "
                   "stay in-memory\n",
                   out_dir_.c_str(), ec.message().c_str());
      out_dir_.clear();
    }
  }

  const auto unix_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::system_clock::now().time_since_epoch())
                           .count();
  manifest_.emplace_back("schema_version", "1");
#ifdef NDEBUG
  manifest_.emplace_back("build", JsonString("release"));
#else
  manifest_.emplace_back("build", JsonString("debug"));
#endif
#ifdef __AVX2__
  manifest_.emplace_back("simd", JsonString("avx2"));
#else
  manifest_.emplace_back("simd", JsonString("sse2"));
#endif
  manifest_.emplace_back("git_describe", JsonString(MEXI_GIT_DESCRIBE));
  const char* threads_env = std::getenv("MEXI_THREADS");
  manifest_.emplace_back(
      "threads_env",
      JsonString(threads_env == nullptr ? "" : threads_env));
  const char* faults = std::getenv("MEXI_FAULTS");
  manifest_.emplace_back("faults",
                         JsonString(faults == nullptr ? "" : faults));
  manifest_.emplace_back("started_unix_ms",
                         std::to_string(static_cast<long long>(unix_ms)));

  AppendLineLocked("{\"type\": \"meta\", \"seq\": " + std::to_string(seq_++) +
                   ", \"schema_version\": 1}");
  WriteManifestLocked();
  enabled_.store(true, std::memory_order_release);
}

void Observability::DisableMetrics() {
  enabled_.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lock(mutex_);
  registry_.Reset();
  lines_.clear();
  spans_.clear();
  manifest_.clear();
  out_dir_.clear();
  seq_ = 0;
  span_total_ = 0;
  event_total_ = 0;
}

void Observability::RecordSpan(const SpanRecord& record) {
  if (!metrics_enabled()) return;
  registry_.GetTimer("span." + record.name)
      .Observe(static_cast<double>(record.duration_ns) / 1e9);
  std::lock_guard<std::mutex> lock(mutex_);
  std::string line = "{\"type\": \"span\", \"seq\": " +
                     std::to_string(seq_++) + ", \"name\": " +
                     JsonString(record.name) +
                     ", \"id\": " + std::to_string(record.id) +
                     ", \"parent\": " + std::to_string(record.parent_id) +
                     ", \"depth\": " + std::to_string(record.depth) +
                     ", \"thread\": " + std::to_string(record.thread_hash) +
                     ", \"start_ns\": " + std::to_string(record.start_ns) +
                     ", \"dur_ns\": " + std::to_string(record.duration_ns) +
                     "}";
  ++span_total_;
  spans_.push_back(record);
  // Keep the test-visible buffer bounded on long runs; the JSONL sink
  // has the full stream.
  if (spans_.size() > 8192) spans_.erase(spans_.begin(), spans_.begin() + 4096);
  AppendLineLocked(std::move(line));
}

void Observability::Event(const char* name,
                          std::initializer_list<Field> fields) {
  if (!metrics_enabled()) return;
  std::string rendered = "{";
  bool first = true;
  for (const Field& field : fields) {
    if (!first) rendered += ", ";
    first = false;
    rendered += JsonString(field.key) + ": " + field.rendered;
  }
  rendered += "}";
  std::lock_guard<std::mutex> lock(mutex_);
  ++event_total_;
  AppendLineLocked("{\"type\": \"event\", \"seq\": " +
                   std::to_string(seq_++) +
                   ", \"t_ns\": " + std::to_string(NowNs()) +
                   ", \"name\": " + JsonString(name) +
                   ", \"fields\": " + rendered + "}");
}

void Observability::SetManifest(const Field& field) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [key, value] : manifest_) {
    if (key == field.key) {
      value = field.rendered;
      WriteManifestLocked();
      return;
    }
  }
  manifest_.emplace_back(field.key, field.rendered);
  WriteManifestLocked();
}

void Observability::SetManifest(std::initializer_list<Field> fields) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Field& field : fields) {
    bool found = false;
    for (auto& [key, value] : manifest_) {
      if (key == field.key) {
        value = field.rendered;
        found = true;
        break;
      }
    }
    if (!found) manifest_.emplace_back(field.key, field.rendered);
  }
  WriteManifestLocked();
}

void Observability::SetStatusFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  status_ = std::make_unique<StatusFile>(path);
}

void Observability::ClearStatusFile() {
  std::lock_guard<std::mutex> lock(mutex_);
  status_.reset();
}

void Observability::Flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (out_dir_.empty() || lines_.empty()) return;
  if (AppendJsonlLines(out_dir_ + "/metrics.jsonl", lines_)) {
    lines_.clear();
  }
}

void Observability::Shutdown() {
  if (!metrics_enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  AppendSnapshotLinesLocked();
  const MetricsSnapshot snapshot = registry_.Snapshot();
  if (!out_dir_.empty()) {
    if (AppendJsonlLines(out_dir_ + "/metrics.jsonl", lines_)) {
      lines_.clear();
    }
    WriteManifestLocked();
  }
  PrintSummary(stderr, snapshot, span_total_, event_total_);
}

std::uint64_t Observability::NowNs() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - origin_)
          .count());
}

std::vector<SpanRecord> Observability::BufferedSpans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

std::vector<std::string> Observability::BufferedLines() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lines_;
}

void Observability::AppendLineLocked(std::string line) {
  lines_.push_back(std::move(line));
  // Bound the in-memory buffer: long runs flush incrementally at
  // checkpoint commits, but a run with no checkpoints must not grow
  // without limit either.
  if (lines_.size() >= 4096 && !out_dir_.empty()) {
    if (AppendJsonlLines(out_dir_ + "/metrics.jsonl", lines_)) {
      lines_.clear();
    }
  }
}

void Observability::WriteManifestLocked() {
  if (out_dir_.empty()) return;
  std::string doc = "{\n";
  for (std::size_t i = 0; i < manifest_.size(); ++i) {
    doc += "  " + JsonString(manifest_[i].first) + ": " +
           manifest_[i].second;
    doc += i + 1 == manifest_.size() ? "\n" : ",\n";
  }
  doc += "}\n";
  WriteFileAtomicNoThrow(out_dir_ + "/run_manifest.json", doc);
}

void Observability::AppendSnapshotLinesLocked() {
  const MetricsSnapshot snapshot = registry_.Snapshot();
  for (const auto& c : snapshot.counters) {
    lines_.push_back("{\"type\": \"counter\", \"seq\": " +
                     std::to_string(seq_++) + ", \"name\": " +
                     JsonString(c.name) +
                     ", \"value\": " + std::to_string(c.value) + "}");
  }
  for (const auto& g : snapshot.gauges) {
    lines_.push_back("{\"type\": \"gauge\", \"seq\": " +
                     std::to_string(seq_++) + ", \"name\": " +
                     JsonString(g.name) +
                     ", \"value\": " + JsonNumber(g.value) + "}");
  }
  for (const auto& t : snapshot.timers) {
    lines_.push_back(
        "{\"type\": \"timer\", \"seq\": " + std::to_string(seq_++) +
        ", \"name\": " + JsonString(t.name) +
        ", \"count\": " + std::to_string(t.count) +
        ", \"total_seconds\": " + JsonNumber(t.total_seconds) +
        ", \"ema_seconds\": " + JsonNumber(t.ema_seconds) + "}");
  }
  for (const auto& h : snapshot.histograms) {
    std::string bounds = "[";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i > 0) bounds += ", ";
      bounds += JsonNumber(h.bounds[i]);
    }
    bounds += "]";
    std::string counts = "[";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i > 0) counts += ", ";
      counts += std::to_string(h.counts[i]);
    }
    counts += "]";
    lines_.push_back(
        "{\"type\": \"histogram\", \"seq\": " + std::to_string(seq_++) +
        ", \"name\": " + JsonString(h.name) + ", \"bounds\": " + bounds +
        ", \"counts\": " + counts + "}");
  }
}

}  // namespace mexi::obs
