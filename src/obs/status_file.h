#ifndef MEXI_OBS_STATUS_FILE_H_
#define MEXI_OBS_STATUS_FILE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

namespace mexi::obs {

/// Partial progress report; fields left at their defaults ("unknown")
/// do not overwrite what a previous Update supplied, so the epoch loop
/// and the fold loop can each report only what they know.
struct StatusUpdate {
  std::string phase;            // "" = keep current phase
  std::int64_t done = -1;       // completed units of the current phase
  std::int64_t total = -1;      // total units of the current phase
  std::int64_t epoch = -1;      // current epoch within the active trainer
  std::int64_t total_epochs = -1;
  std::int64_t fold = -1;       // current fold within the experiment
  std::int64_t total_folds = -1;
  std::string last_checkpoint;  // "" = keep current
};

/// Small always-current JSON snapshot of a long run, atomically
/// rewritten (temp + rename) on every update so external watchers — and
/// the future status endpoint — always read a complete document:
///
///   {"schema_version": 1, "phase": "kfold", "done": 2, "total": 5,
///    "epoch": 3, "total_epochs": 10, "fold": 1, "total_folds": 5,
///    "last_checkpoint": "ckpt/fold_1.bin", "elapsed_seconds": 1.50,
///    "eta_seconds": 2.25, "updated_unix_ms": 1700000000000}
///
/// `eta_seconds` is -1 until `done` and `total` allow the linear
/// estimate elapsed * (total - done) / done. Updates are mutex-ordered;
/// callers in parallel regions interleave safely (last writer wins).
class StatusFile {
 public:
  explicit StatusFile(std::string path);

  void Update(const StatusUpdate& update);

  const std::string& path() const { return path_; }

 private:
  void WriteLocked();

  std::mutex mutex_;
  std::string path_;
  std::string phase_;
  std::int64_t done_ = -1, total_ = -1;
  std::int64_t epoch_ = -1, total_epochs_ = -1;
  std::int64_t fold_ = -1, total_folds_ = -1;
  std::string last_checkpoint_;
  std::chrono::steady_clock::time_point phase_start_;
};

}  // namespace mexi::obs

#endif  // MEXI_OBS_STATUS_FILE_H_
