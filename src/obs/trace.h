#ifndef MEXI_OBS_TRACE_H_
#define MEXI_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>

namespace mexi::obs {

/// One closed span, as recorded into the trace buffer and the JSONL
/// sink. Times are nanoseconds on the process-wide steady clock, with
/// t=0 at Observability start, so spans from different threads share one
/// timeline.
struct SpanRecord {
  std::string name;
  std::uint64_t id = 0;
  std::uint64_t parent_id = 0;  // 0 = root
  int depth = 0;                // root spans are depth 0
  std::uint64_t thread_hash = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
};

/// RAII trace span. Construction pushes onto a thread-local span stack
/// (establishing the parent/child link), destruction pops and records
/// the duration into the registry timer `span.<name>` plus the trace
/// buffer. When metrics are disabled the constructor is a single
/// relaxed atomic load and the destructor a branch — cheap enough to
/// leave on hot paths unconditionally.
///
/// `name` must outlive the span (string literals in practice).
class Span {
 public:
  explicit Span(const char* name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const { return active_; }
  std::uint64_t id() const { return id_; }
  std::uint64_t parent_id() const { return parent_id_; }
  int depth() const { return depth_; }

  /// The span currently open on this thread (innermost), or nullptr.
  static const Span* Current();

 private:
  const char* name_;
  bool active_ = false;
  std::uint64_t id_ = 0;
  std::uint64_t parent_id_ = 0;
  int depth_ = 0;
  Span* prev_ = nullptr;  // enclosing span on this thread
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace mexi::obs

#endif  // MEXI_OBS_TRACE_H_
