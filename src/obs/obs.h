#ifndef MEXI_OBS_OBS_H_
#define MEXI_OBS_OBS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/status_file.h"
#include "obs/trace.h"

namespace mexi::obs {

/// One key/value of an event or manifest entry, with the value already
/// rendered as a JSON token. Build via the F() helpers below.
struct Field {
  std::string key;
  std::string rendered;
};

/// Renders a double (or any float) as a JSON number; non-finite values
/// become null (JSON has no NaN/Inf).
std::string JsonNumber(double value);
/// Renders a string as a quoted, escaped JSON string token.
std::string JsonString(const std::string& value);

Field F(const char* key, const std::string& value);
Field F(const char* key, const char* value);
template <typename T>
  requires std::is_arithmetic_v<T>
Field F(const char* key, T value) {
  if constexpr (std::is_floating_point_v<T>) {
    return Field{key, JsonNumber(static_cast<double>(value))};
  } else {
    return Field{key, std::to_string(value)};
  }
}

/// Process-wide observability hub: the metrics registry, the trace/event
/// JSONL buffer, the run manifest, and the (optional) status file.
///
/// The contract that makes it safe to leave enabled in production:
///   * Disabled cost is one relaxed atomic load + branch per site; no
///     site is per-sample, so training outputs and perf stay untouched.
///   * Observation never mutates model state or consumes RNG draws —
///     with metrics on, all model outputs are bitwise identical to a
///     metrics-off run (locked by tests/test_obs.cc and the
///     metrics_identity.sh ctest).
///   * All mutation is atomics or mutex-ordered, so MEXI_THREADS>1 runs
///     stay race-free (exercised under TSan in CI).
///
/// Enabled via MEXI_METRICS=<dir> (checked on first Global() access),
/// `mexi_cli --metrics-out <dir>`, or EnableMetrics() directly. Sinks:
///   <dir>/metrics.jsonl     append-only event/span/metric records
///   <dir>/run_manifest.json run metadata (seed, fingerprints, build)
/// plus a human-readable summary on stderr at Shutdown().
class Observability {
 public:
  /// The process-wide instance (never destroyed). First access arms
  /// metrics from MEXI_METRICS and the status file from
  /// MEXI_STATUS_FILE when those are set.
  static Observability& Global();

  /// Turns metrics on, writing sinks under `out_dir` (created if
  /// missing; empty = in-memory only, for tests). Resets any previous
  /// state and writes the initial run manifest.
  void EnableMetrics(const std::string& out_dir);
  /// Turns metrics off and drops all buffered state.
  void DisableMetrics();
  bool metrics_enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  const std::string& out_dir() const { return out_dir_; }

  MetricsRegistry& registry() { return registry_; }

  /// Appends a closed span to the trace buffer (called by ~Span).
  void RecordSpan(const SpanRecord& record);

  /// Appends a structured event line:
  ///   {"type":"event","seq":N,"t_ns":T,"name":"...","fields":{...}}
  /// Events are for low-frequency occurrences (epoch end, checkpoint
  /// commit, injected fault) — never per-sample.
  void Event(const char* name, std::initializer_list<Field> fields);

  /// Sets a run-manifest entry (insertion-ordered, same key overwrites)
  /// and rewrites the manifest file when a sink directory is armed.
  void SetManifest(const Field& field);
  void SetManifest(std::initializer_list<Field> fields);

  /// Status file management — independent of metrics enablement, so
  /// `--status-file` works without `--metrics-out`.
  void SetStatusFile(const std::string& path);
  void ClearStatusFile();
  /// nullptr when no status file is configured.
  StatusFile* status() { return status_.get(); }

  /// Drains buffered JSONL lines to <dir>/metrics.jsonl. Cheap when
  /// nothing is buffered; called at checkpoint commits so a killed run
  /// leaves its trace behind.
  void Flush();
  /// Final flush: appends a snapshot of every metric to the JSONL sink,
  /// rewrites the manifest, and prints the stderr summary.
  void Shutdown();

  /// Nanoseconds since observability start (process steady timeline).
  std::uint64_t NowNs() const;
  std::uint64_t NextSpanId() {
    return next_span_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Test hooks: copies of the buffered state (not yet flushed).
  std::vector<SpanRecord> BufferedSpans() const;
  std::vector<std::string> BufferedLines() const;

 private:
  Observability();

  void AppendLineLocked(std::string line);
  void WriteManifestLocked();
  void AppendSnapshotLinesLocked();

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_span_id_{1};
  MetricsRegistry registry_;
  std::chrono::steady_clock::time_point origin_;

  mutable std::mutex mutex_;  // guards everything below
  std::string out_dir_;
  std::uint64_t seq_ = 0;
  std::uint64_t span_total_ = 0;
  std::uint64_t event_total_ = 0;
  std::vector<std::string> lines_;
  std::vector<SpanRecord> spans_;
  std::vector<std::pair<std::string, std::string>> manifest_;
  std::unique_ptr<StatusFile> status_;
};

/// Hot-path guard: one relaxed atomic load.
inline bool MetricsEnabled() {
  return Observability::Global().metrics_enabled();
}

/// Convenience for instrumented sites.
inline MetricsRegistry& Registry() {
  return Observability::Global().registry();
}

}  // namespace mexi::obs

#endif  // MEXI_OBS_OBS_H_
