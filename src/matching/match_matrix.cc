#include "matching/match_matrix.h"

#include <stdexcept>

#include "stats/descriptive.h"

namespace mexi::matching {

MatchMatrix::MatchMatrix(std::size_t source_size, std::size_t target_size)
    : values_(source_size, target_size, 0.0) {}

MatchMatrix MatchMatrix::FromReference(
    const std::vector<ElementPair>& correspondences,
    std::size_t source_size, std::size_t target_size) {
  MatchMatrix m(source_size, target_size);
  for (const auto& [i, j] : correspondences) {
    if (i >= source_size || j >= target_size) {
      throw std::out_of_range("MatchMatrix::FromReference: pair range");
    }
    m.values_(i, j) = 1.0;
  }
  return m;
}

double MatchMatrix::At(std::size_t i, std::size_t j) const {
  return values_.At(i, j);
}

void MatchMatrix::Set(std::size_t i, std::size_t j, double value) {
  values_.At(i, j) = stats::Clamp(value, 0.0, 1.0);
}

std::vector<ElementPair> MatchMatrix::Match() const {
  std::vector<ElementPair> out;
  for (std::size_t i = 0; i < values_.rows(); ++i) {
    for (std::size_t j = 0; j < values_.cols(); ++j) {
      if (values_(i, j) > 0.0) out.emplace_back(i, j);
    }
  }
  return out;
}

std::size_t MatchMatrix::MatchSize() const {
  std::size_t count = 0;
  for (double v : values_.data()) count += static_cast<std::size_t>(v > 0.0);
  return count;
}

std::vector<double> MatchMatrix::MatchValues() const {
  std::vector<double> out;
  for (double v : values_.data()) {
    if (v > 0.0) out.push_back(v);
  }
  return out;
}

std::size_t MatchMatrix::IntersectionSize(const MatchMatrix& reference)
    const {
  if (reference.source_size() != source_size() ||
      reference.target_size() != target_size()) {
    throw std::invalid_argument("MatchMatrix::IntersectionSize: shape");
  }
  std::size_t count = 0;
  for (std::size_t k = 0; k < values_.data().size(); ++k) {
    count += static_cast<std::size_t>(values_.data()[k] > 0.0 &&
                                      reference.values_.data()[k] > 0.0);
  }
  return count;
}

double MatchMatrix::PrecisionAgainst(const MatchMatrix& reference) const {
  const std::size_t sigma = MatchSize();
  if (sigma == 0) return 0.0;
  return static_cast<double>(IntersectionSize(reference)) /
         static_cast<double>(sigma);
}

double MatchMatrix::RecallAgainst(const MatchMatrix& reference) const {
  const std::size_t ref_size = reference.MatchSize();
  if (ref_size == 0) return 0.0;
  return static_cast<double>(IntersectionSize(reference)) /
         static_cast<double>(ref_size);
}

}  // namespace mexi::matching
