#ifndef MEXI_MATCHING_MATCH_MATRIX_H_
#define MEXI_MATCHING_MATCH_MATRIX_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "ml/matrix.h"

namespace mexi::matching {

/// An element-pair index: (source element, target element).
using ElementPair = std::pair<std::size_t, std::size_t>;

/// A matching matrix M(S, S'): entry (i, j) holds the degree of
/// alignment in [0, 1] between source element i and target element j
/// (Section II-A1 of the paper). A *match* sigma is the set of non-zero
/// entries.
class MatchMatrix {
 public:
  MatchMatrix() = default;

  /// Creates an all-zero n x m matrix.
  MatchMatrix(std::size_t source_size, std::size_t target_size);

  /// Builds an exact 0/1 reference matrix M^e from correspondence pairs.
  static MatchMatrix FromReference(
      const std::vector<ElementPair>& correspondences,
      std::size_t source_size, std::size_t target_size);

  std::size_t source_size() const { return values_.rows(); }
  std::size_t target_size() const { return values_.cols(); }

  /// Degree of alignment of (i, j); bounds-checked.
  double At(std::size_t i, std::size_t j) const;

  /// Sets entry (i, j); values are clamped into [0, 1].
  void Set(std::size_t i, std::size_t j, double value);

  /// The match sigma: all element pairs with a non-zero entry.
  std::vector<ElementPair> Match() const;

  /// Number of non-zero entries.
  std::size_t MatchSize() const;

  /// Confidence values of the non-zero entries (same order as Match()).
  std::vector<double> MatchValues() const;

  /// |sigma(this) ∩ M^e+|: how many of this matrix's non-zero entries are
  /// part of `reference`'s non-zero set.
  std::size_t IntersectionSize(const MatchMatrix& reference) const;

  /// Precision of this match against `reference` (Eq. 2 left); 0 when
  /// this match is empty.
  double PrecisionAgainst(const MatchMatrix& reference) const;

  /// Recall of this match against `reference` (Eq. 3 left); 0 when the
  /// reference is empty.
  double RecallAgainst(const MatchMatrix& reference) const;

  /// Underlying dense values (for predictors and heat-map style use).
  const ml::Matrix& values() const { return values_; }
  ml::Matrix& values() { return values_; }

 private:
  ml::Matrix values_;
};

}  // namespace mexi::matching

#endif  // MEXI_MATCHING_MATCH_MATRIX_H_
