#include "matching/movement.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/descriptive.h"

namespace mexi::matching {

MovementMap::MovementMap(double screen_width, double screen_height)
    : screen_width_(screen_width), screen_height_(screen_height) {
  if (screen_width <= 0.0 || screen_height <= 0.0) {
    throw std::invalid_argument("MovementMap: screen size must be positive");
  }
}

void MovementMap::Add(MovementEvent event) {
  if (!events_.empty() && event.timestamp < events_.back().timestamp) {
    throw std::invalid_argument(
        "MovementMap::Add: timestamps must be non-decreasing");
  }
  event.x = stats::Clamp(event.x, 0.0, screen_width_);
  event.y = stats::Clamp(event.y, 0.0, screen_height_);
  events_.push_back(event);
}

std::vector<MovementEvent> MovementMap::EventsOfType(
    MovementType type) const {
  std::vector<MovementEvent> out;
  for (const auto& e : events_) {
    if (e.type == type) out.push_back(e);
  }
  return out;
}

ml::Matrix MovementMap::HeatMap(MovementType type, std::size_t rows,
                                std::size_t cols) const {
  if (rows == 0 || cols == 0) {
    throw std::invalid_argument("MovementMap::HeatMap: zero grid");
  }
  ml::Matrix heat(rows, cols, 0.0);
  for (const auto& e : events_) {
    if (e.type != type) continue;
    std::size_t r = static_cast<std::size_t>(
        e.y / screen_height_ * static_cast<double>(rows));
    std::size_t c = static_cast<std::size_t>(
        e.x / screen_width_ * static_cast<double>(cols));
    r = std::min(r, rows - 1);
    c = std::min(c, cols - 1);
    heat(r, c) += 1.0;
  }
  const double peak = heat.MaxAbs();
  if (peak > 0.0) heat *= 1.0 / peak;
  return heat;
}

double MovementMap::TotalPathLength() const {
  double total = 0.0;
  for (std::size_t i = 1; i < events_.size(); ++i) {
    const double dx = events_[i].x - events_[i - 1].x;
    const double dy = events_[i].y - events_[i - 1].y;
    total += std::sqrt(dx * dx + dy * dy);
  }
  return total;
}

double MovementMap::TotalTime() const {
  if (events_.size() < 2) return 0.0;
  return events_.back().timestamp - events_.front().timestamp;
}

double MovementMap::MeanX() const {
  if (events_.empty()) return 0.0;
  double total = 0.0;
  for (const auto& e : events_) total += e.x;
  return total / static_cast<double>(events_.size());
}

double MovementMap::MeanY() const {
  if (events_.empty()) return 0.0;
  double total = 0.0;
  for (const auto& e : events_) total += e.y;
  return total / static_cast<double>(events_.size());
}

MovementMap MovementMap::TimeSlice(double t0, double t1) const {
  MovementMap out(screen_width_, screen_height_);
  for (const auto& e : events_) {
    if (e.timestamp >= t0 && e.timestamp <= t1) out.Add(e);
  }
  return out;
}

std::size_t MovementMap::CountOfType(MovementType type) const {
  std::size_t count = 0;
  for (const auto& e : events_) count += static_cast<std::size_t>(e.type == type);
  return count;
}

}  // namespace mexi::matching
