#include "matching/predictors.h"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.h"
#include "stats/pca.h"

namespace mexi::matching {

namespace {

struct Dominance {
  std::size_t row_dominants = 0;
  std::size_t col_dominants = 0;
  std::size_t both_dominants = 0;
  double bpm = 0.0;  // mean top-vs-runner-up row margin
};

Dominance ComputeDominance(const ml::Matrix& m) {
  Dominance dom;
  const std::size_t rows = m.rows();
  const std::size_t cols = m.cols();
  std::vector<double> row_max(rows, 0.0), col_max(cols, 0.0);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      row_max[i] = std::max(row_max[i], m(i, j));
      col_max[j] = std::max(col_max[j], m(i, j));
    }
  }
  double margin_total = 0.0;
  std::size_t margin_rows = 0;
  for (std::size_t i = 0; i < rows; ++i) {
    if (row_max[i] <= 0.0) continue;
    // Runner-up in row i.
    double second = 0.0;
    bool counted_top = false;
    for (std::size_t j = 0; j < cols; ++j) {
      const double v = m(i, j);
      if (v == row_max[i] && !counted_top) {
        counted_top = true;
        continue;
      }
      second = std::max(second, v);
    }
    margin_total += row_max[i] - second;
    ++margin_rows;
  }
  if (margin_rows > 0) {
    dom.bpm = margin_total / static_cast<double>(margin_rows);
  }
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      const double v = m(i, j);
      if (v <= 0.0) continue;
      const bool is_row_dom = v >= row_max[i];
      const bool is_col_dom = v >= col_max[j];
      dom.row_dominants += static_cast<std::size_t>(is_row_dom);
      dom.col_dominants += static_cast<std::size_t>(is_col_dom);
      dom.both_dominants +=
          static_cast<std::size_t>(is_row_dom && is_col_dom);
    }
  }
  return dom;
}

}  // namespace

const std::vector<std::string>& PredictorNames() {
  static const auto* kNames = new std::vector<std::string>{
      "avgConf",  "stdConf",  "maxConf",     "minConf",  "matchRatio",
      "rowCoverage", "colCoverage", "dom",   "bpm",      "bbm",
      "mcd",      "norm1",    "norm2",       "normsinf", "entropy",
      "pca1",     "pca2",
  };
  return *kNames;
}

const std::vector<std::string>& PrecisionLeaningPredictors() {
  static const auto* kNames = new std::vector<std::string>{
      "avgConf", "maxConf", "dom", "bpm", "bbm", "mcd", "pca1",
  };
  return *kNames;
}

const std::vector<std::string>& RecallLeaningPredictors() {
  static const auto* kNames = new std::vector<std::string>{
      "matchRatio", "rowCoverage", "colCoverage", "stdConf",
      "norm1",      "norm2",       "normsinf",    "entropy",
      "pca2",       "minConf",
  };
  return *kNames;
}

std::vector<NamedValue> ComputePredictors(const MatchMatrix& matrix) {
  std::vector<double> values;
  ComputePredictorValues(matrix, /*scratch=*/nullptr, values);
  const std::vector<std::string>& names = PredictorNames();
  std::vector<NamedValue> out;
  out.reserve(values.size());
  for (std::size_t k = 0; k < values.size(); ++k) {
    out.push_back(NamedValue{names[k], values[k]});
  }
  return out;
}

void ComputePredictorValues(const MatchMatrix& matrix,
                            PredictorScratch* scratch,
                            std::vector<double>& out) {
  const ml::Matrix& m = matrix.values();
  out.reserve(out.size() + PredictorNames().size());
  auto emit = [&](const char* /*name*/, double value) {
    out.push_back(value);
  };

  const std::vector<double> sigma = matrix.MatchValues();
  const double sigma_size = static_cast<double>(sigma.size());
  const double total_cells =
      static_cast<double>(m.rows()) * static_cast<double>(m.cols());

  emit("avgConf", stats::Mean(sigma));
  emit("stdConf", stats::StdDev(sigma));
  emit("maxConf", stats::Max(sigma));
  emit("minConf", sigma.empty() ? 0.0 : stats::Min(sigma));
  emit("matchRatio", total_cells > 0.0 ? sigma_size / total_cells : 0.0);

  std::size_t rows_covered = 0, cols_covered = 0;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) {
      if (m(i, j) > 0.0) {
        ++rows_covered;
        break;
      }
    }
  }
  for (std::size_t j = 0; j < m.cols(); ++j) {
    for (std::size_t i = 0; i < m.rows(); ++i) {
      if (m(i, j) > 0.0) {
        ++cols_covered;
        break;
      }
    }
  }
  emit("rowCoverage", m.rows() > 0 ? static_cast<double>(rows_covered) /
                                         static_cast<double>(m.rows())
                                   : 0.0);
  emit("colCoverage", m.cols() > 0 ? static_cast<double>(cols_covered) /
                                         static_cast<double>(m.cols())
                                   : 0.0);

  const Dominance dom = ComputeDominance(m);
  emit("dom", sigma_size > 0.0
                  ? static_cast<double>(dom.both_dominants) / sigma_size
                  : 0.0);
  emit("bpm", dom.bpm);
  const double max_dom = static_cast<double>(
      std::max(dom.row_dominants, dom.col_dominants));
  const double min_dom = static_cast<double>(
      std::min(dom.row_dominants, dom.col_dominants));
  emit("bbm", max_dom > 0.0 ? min_dom / max_dom : 0.0);

  // Match competitor deviation.
  double mcd_total = 0.0;
  std::size_t mcd_count = 0;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < m.cols(); ++j) row_sum += m(i, j);
    const double row_mean =
        m.cols() > 0 ? row_sum / static_cast<double>(m.cols()) : 0.0;
    for (std::size_t j = 0; j < m.cols(); ++j) {
      if (m(i, j) > 0.0) {
        mcd_total += m(i, j) - row_mean;
        ++mcd_count;
      }
    }
  }
  emit("mcd", mcd_count > 0 ? mcd_total / static_cast<double>(mcd_count)
                            : 0.0);

  const double norm_scale = sigma_size > 0.0 ? sigma_size : 1.0;
  emit("norm1", m.L1Norm() / std::sqrt(norm_scale));
  emit("norm2", m.FrobeniusNorm() / std::sqrt(norm_scale));
  emit("normsinf", m.InfNorm() / std::sqrt(norm_scale));
  emit("entropy", stats::Entropy(sigma));

  // PCA over matrix rows; degenerate matrices yield (0, 0). The scratch
  // path feeds the matrix's own row-major slab to the flat eigenvalue-
  // only PCA; the reference path materializes row copies for stats::Pca.
  // Both produce bitwise-identical ratios (see stats/pca.h).
  double pca1 = 0.0, pca2 = 0.0;
  if (m.rows() >= 2 && m.cols() >= 2 && !sigma.empty()) {
    if (scratch != nullptr) {
      stats::PcaExplainedVarianceRatio(m.data().data(), m.rows(), m.cols(),
                                       scratch->pca, scratch->ratio);
      if (!scratch->ratio.empty()) pca1 = scratch->ratio[0];
      if (scratch->ratio.size() > 1) pca2 = scratch->ratio[1];
    } else {
      std::vector<std::vector<double>> rows(m.rows());
      for (std::size_t i = 0; i < m.rows(); ++i) rows[i] = m.Row(i);
      const stats::PcaResult pca = stats::Pca(rows);
      if (!pca.explained_variance_ratio.empty()) {
        pca1 = pca.explained_variance_ratio[0];
      }
      if (pca.explained_variance_ratio.size() > 1) {
        pca2 = pca.explained_variance_ratio[1];
      }
    }
  }
  emit("pca1", pca1);
  emit("pca2", pca2);
}

}  // namespace mexi::matching
