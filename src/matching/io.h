#ifndef MEXI_MATCHING_IO_H_
#define MEXI_MATCHING_IO_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "matching/decision_history.h"
#include "matching/match_matrix.h"
#include "matching/movement.h"

namespace mexi::matching {

/// CSV persistence for the observable matcher data, so MExI can run on
/// real logged studies (Ontobuilder/Ghost-Mouse-style exports) rather
/// than only on the built-in simulator.
///
/// Formats (all have a header row; fields are comma-separated, no
/// quoting — the data is purely numeric):
///
///   decisions:  matcher_id,source,target,confidence,timestamp
///   movements:  matcher_id,x,y,type,timestamp        (type: m|l|r|s)
///   reference:  source,target
///
/// Readers throw robust::StatusError (a std::runtime_error subtype)
/// carrying StatusCode::kParseError and the offending line number on
/// malformed input: wrong field counts, non-numeric or non-finite
/// values, negative indices, unknown matcher ids, and files with no
/// data rows at all. Multiple matchers share one file, keyed by
/// matcher_id; rows of one matcher must be timestamp-ordered
/// (DecisionHistory/MovementMap enforce it).

/// One matcher's traces as loaded from disk.
struct LoadedMatcher {
  int id = 0;
  DecisionHistory history;
  MovementMap movement{1280.0, 800.0};
};

/// Writes all matchers' decisions to `out` (header + one row per
/// decision).
void WriteDecisionsCsv(const std::vector<LoadedMatcher>& matchers,
                       std::ostream& out);

/// Writes all matchers' movement events to `out`. The first data line
/// carries the screen size as a pseudo-event per matcher is avoided:
/// screen dimensions travel in the header as "#screen,<w>,<h>" comment
/// on line 2.
void WriteMovementsCsv(const std::vector<LoadedMatcher>& matchers,
                       std::ostream& out);

/// Writes reference correspondences.
void WriteReferenceCsv(const std::vector<ElementPair>& reference,
                       std::ostream& out);

/// Reads decisions; matchers are created/looked up by id, ordered by
/// first appearance.
std::vector<LoadedMatcher> ReadDecisionsCsv(std::istream& in);

/// Merges movement events from `in` into `matchers` (matcher ids must
/// already exist from ReadDecisionsCsv; unknown ids throw).
void ReadMovementsCsv(std::istream& in,
                      std::vector<LoadedMatcher>* matchers);

/// Reads reference correspondences.
std::vector<ElementPair> ReadReferenceCsv(std::istream& in);

/// Rejects decisions whose source/target indices fall outside the task
/// dimensions; throws robust::StatusError(kInvalidArgument) naming the
/// matcher and the offending pair.
void ValidateMatchers(const std::vector<LoadedMatcher>& matchers,
                      std::size_t source_size, std::size_t target_size);

/// Convenience file-path wrappers. Throw robust::StatusError with
/// kNotFound (missing input file) or kIoError (unwritable output).
void SaveMatchersToFiles(const std::vector<LoadedMatcher>& matchers,
                         const std::string& decisions_path,
                         const std::string& movements_path);
std::vector<LoadedMatcher> LoadMatchersFromFiles(
    const std::string& decisions_path, const std::string& movements_path);
void SaveReferenceToFile(const std::vector<ElementPair>& reference,
                         const std::string& path);
std::vector<ElementPair> LoadReferenceFromFile(const std::string& path);

}  // namespace mexi::matching

#endif  // MEXI_MATCHING_IO_H_
