#ifndef MEXI_MATCHING_SIMILARITY_H_
#define MEXI_MATCHING_SIMILARITY_H_

#include <string>

#include "matching/match_matrix.h"
#include "schema/schema.h"

namespace mexi::matching {

/// Normalized Levenshtein similarity in [0, 1]: 1 - distance/max_len.
double LevenshteinSimilarity(const std::string& a, const std::string& b);

/// Jaro-Winkler similarity in [0, 1] (prefix weight 0.1, max prefix 4).
double JaroWinklerSimilarity(const std::string& a, const std::string& b);

/// Jaccard similarity of character trigram sets.
double TrigramSimilarity(const std::string& a, const std::string& b);

/// Jaccard similarity of the word-token sets produced by TokenizeName,
/// with synonym-insensitive comparison left to the composite matcher.
double TokenJaccardSimilarity(const std::string& a, const std::string& b);

/// Weights of the composite first-line matcher.
struct CompositeWeights {
  double levenshtein = 0.25;
  double jaro_winkler = 0.2;
  double trigram = 0.2;
  double token_jaccard = 0.35;
  /// Added when datatypes agree, subtracted when they clash.
  double datatype_bonus = 0.08;
  /// Jaccard weight of instance-value overlap.
  double instance_weight = 0.07;
};

/// COMA-style composite similarity between two schema attributes: a
/// weighted blend of the four name measures plus datatype compatibility
/// and instance overlap, clamped to [0, 1]. This is the algorithmic
/// first-line matcher whose landscape drives the human simulator's
/// perceived difficulty.
double CompositeSimilarity(const schema::Attribute& a,
                           const schema::Attribute& b,
                           const CompositeWeights& weights = {});

/// Builds the full similarity matrix of a schema pair using
/// CompositeSimilarity. Internal (grouping) elements get similarity 0
/// against everything so only leaves can match — mirroring how the
/// reference matches are leaf-only.
MatchMatrix BuildSimilarityMatrix(const schema::Schema& source,
                                  const schema::Schema& target,
                                  const CompositeWeights& weights = {});

}  // namespace mexi::matching

#endif  // MEXI_MATCHING_SIMILARITY_H_
