#ifndef MEXI_MATCHING_PREDICTORS_H_
#define MEXI_MATCHING_PREDICTORS_H_

#include <string>
#include <vector>

#include "matching/match_matrix.h"
#include "stats/pca.h"

namespace mexi::matching {

/// A named predictor value.
struct NamedValue {
  std::string name;
  double value = 0.0;
};

/// Matching predictors: reference-free quality estimates of a matching
/// matrix (Sagi & Gal, VLDBJ'13; used as learning features by LRSM, Gal
/// et al., TKDE'19). The full set computed here, with definitions:
///
///  * avgConf / stdConf / maxConf / minConf — moments of the non-zero
///    entries.
///  * matchRatio — |sigma| / (n*m), how much of the space is claimed.
///  * rowCoverage / colCoverage — fraction of rows / columns with at
///    least one non-zero entry (recall-leaning).
///  * dom — share of non-zero entries that dominate both their row and
///    their column (precision-leaning).
///  * bpm — binary precision measure: mean margin between each claimed
///    row's top entry and its runner-up; confident, unambiguous
///    matrices score high.
///  * bbm — binary balance measure: ratio of column-dominant to
///    row-dominant counts (in [0, 1], min/max), capturing the
///    asymmetry of the claimed match.
///  * mcd — match competitor deviation: mean (entry - row mean) over
///    non-zero entries.
///  * norm1 / norm2 / normsinf — L1 / Frobenius / L-infinity matrix
///    norms normalized by the claimed match size; norm predictors
///    quantify the matrix's "mass of error" and lean towards recall.
///  * entropy — Shannon entropy of the normalized non-zero entries
///    (uncertainty / diversity; recall-leaning).
///  * pca1 / pca2 — explained-variance ratios of the top two principal
///    components of the matrix rows (diversity structure).
///
/// All predictors are 0 for an empty match.
std::vector<NamedValue> ComputePredictors(const MatchMatrix& matrix);

/// Reusable buffers for `ComputePredictorValues`. One instance per
/// serving lane, passed back in trace after trace, amortizes the PCA
/// slabs across a whole population.
struct PredictorScratch {
  stats::PcaScratch pca;
  std::vector<double> ratio;
};

/// Serve-path core of `ComputePredictors`: appends the predictor values
/// to `out` in `PredictorNames()` order, without materializing names.
///
/// With `scratch == nullptr` this IS the reference path —
/// `ComputePredictors` delegates here and zips the names on. With a
/// scratch it swaps only the pca1/pca2 block for the flat, eigenvalue-
/// only `stats::PcaExplainedVarianceRatio` over the matrix's row-major
/// slab, which is bitwise identical to `stats::Pca` per trace; every
/// other predictor runs the same code either way.
void ComputePredictorValues(const MatchMatrix& matrix,
                            PredictorScratch* scratch,
                            std::vector<double>& out);

/// Names of the predictors ComputePredictors emits, in order.
const std::vector<std::string>& PredictorNames();

/// Subsets that the literature found to lean toward precision / recall —
/// used to organize the paper's Phi_LRSM precision and thoroughness
/// feature groups.
const std::vector<std::string>& PrecisionLeaningPredictors();
const std::vector<std::string>& RecallLeaningPredictors();

}  // namespace mexi::matching

#endif  // MEXI_MATCHING_PREDICTORS_H_
