#ifndef MEXI_MATCHING_MOVEMENT_H_
#define MEXI_MATCHING_MOVEMENT_H_

#include <cstddef>
#include <vector>

#include "ml/matrix.h"

namespace mexi::matching {

/// Mouse event type (the paper's v in {move, left click, right click,
/// scrolling}).
enum class MovementType { kMove = 0, kLeftClick, kRightClick, kScroll };

inline constexpr int kNumMovementTypes = 4;

/// One recorded mouse event: the paper's map triplet <(x, y), v, t>.
struct MovementEvent {
  double x = 0.0;
  double y = 0.0;
  MovementType type = MovementType::kMove;
  double timestamp = 0.0;
};

/// A movement map G: the time-ordered mouse trace of one matcher over a
/// screen of known size, with heat-map aggregation (Section II-A2).
class MovementMap {
 public:
  /// Screen dimensions in pixels; both must be positive.
  MovementMap(double screen_width, double screen_height);

  /// Appends an event; timestamps must be non-decreasing and positions
  /// are clamped into the screen.
  void Add(MovementEvent event);

  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  const std::vector<MovementEvent>& events() const { return events_; }
  double screen_width() const { return screen_width_; }
  double screen_height() const { return screen_height_; }

  /// Events of one type only.
  std::vector<MovementEvent> EventsOfType(MovementType type) const;

  /// Builds the heat map G_v for movement type `type`, downsampled to a
  /// rows x cols grid and normalized so the peak cell is 1 (all-zero when
  /// no events of that type exist). This is the CNN input.
  ml::Matrix HeatMap(MovementType type, std::size_t rows,
                     std::size_t cols) const;

  /// Total Euclidean path length over consecutive events (all types).
  double TotalPathLength() const;

  /// Total time span (last - first timestamp); 0 for < 2 events.
  double TotalTime() const;

  /// Mean x / y position over all events.
  double MeanX() const;
  double MeanY() const;

  /// Count of events of one type.
  std::size_t CountOfType(MovementType type) const;

  /// The sub-trace of events with timestamp in [t0, t1] (same screen).
  /// Used to pair movement windows with sub-matcher decision windows.
  MovementMap TimeSlice(double t0, double t1) const;

 private:
  double screen_width_;
  double screen_height_;
  std::vector<MovementEvent> events_;
};

}  // namespace mexi::matching

#endif  // MEXI_MATCHING_MOVEMENT_H_
