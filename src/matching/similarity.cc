#include "matching/similarity.h"

#include <algorithm>
#include <set>
#include <vector>

#include "obs/trace.h"
#include "parallel/parallel_for.h"
#include "schema/tokenizer.h"
#include "stats/descriptive.h"

namespace mexi::matching {

namespace {

template <typename T>
double JaccardOfSets(const std::set<T>& a, const std::set<T>& b) {
  if (a.empty() && b.empty()) return 0.0;
  std::size_t inter = 0;
  for (const auto& item : a) inter += b.count(item);
  const std::size_t uni = a.size() + b.size() - inter;
  return uni == 0 ? 0.0
                  : static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace

double LevenshteinSimilarity(const std::string& a_raw,
                             const std::string& b_raw) {
  const std::string a = schema::ToLowerAscii(a_raw);
  const std::string b = schema::ToLowerAscii(b_raw);
  if (a.empty() && b.empty()) return 1.0;
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  std::vector<std::size_t> prev(m + 1), curr(m + 1);
  for (std::size_t j = 0; j <= m; ++j) prev[j] = j;
  for (std::size_t i = 1; i <= n; ++i) {
    curr[0] = i;
    for (std::size_t j = 1; j <= m; ++j) {
      const std::size_t cost = a[i - 1] == b[j - 1] ? 0 : 1;
      curr[j] = std::min({prev[j] + 1, curr[j - 1] + 1, prev[j - 1] + cost});
    }
    std::swap(prev, curr);
  }
  const double dist = static_cast<double>(prev[m]);
  const double max_len = static_cast<double>(std::max(n, m));
  return 1.0 - dist / max_len;
}

double JaroWinklerSimilarity(const std::string& a_raw,
                             const std::string& b_raw) {
  const std::string a = schema::ToLowerAscii(a_raw);
  const std::string b = schema::ToLowerAscii(b_raw);
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  const std::size_t window =
      std::max<std::size_t>(1, std::max(n, m) / 2) - 1;

  std::vector<bool> a_matched(n, false), b_matched(m, false);
  std::size_t matches = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t lo = i > window ? i - window : 0;
    const std::size_t hi = std::min(m, i + window + 1);
    for (std::size_t j = lo; j < hi; ++j) {
      if (!b_matched[j] && a[i] == b[j]) {
        a_matched[i] = true;
        b_matched[j] = true;
        ++matches;
        break;
      }
    }
  }
  if (matches == 0) return 0.0;

  // Transpositions among matched characters.
  std::size_t transpositions = 0;
  std::size_t k = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[k]) ++k;
    if (a[i] != b[k]) ++transpositions;
    ++k;
  }
  const double mm = static_cast<double>(matches);
  const double jaro =
      (mm / static_cast<double>(n) + mm / static_cast<double>(m) +
       (mm - static_cast<double>(transpositions) / 2.0) / mm) /
      3.0;

  std::size_t prefix = 0;
  for (std::size_t i = 0; i < std::min({n, m, std::size_t{4}}); ++i) {
    if (a[i] == b[i]) {
      ++prefix;
    } else {
      break;
    }
  }
  return jaro + static_cast<double>(prefix) * 0.1 * (1.0 - jaro);
}

double TrigramSimilarity(const std::string& a, const std::string& b) {
  const auto grams_a = schema::CharacterNgrams(a, 3);
  const auto grams_b = schema::CharacterNgrams(b, 3);
  const std::set<std::string> sa(grams_a.begin(), grams_a.end());
  const std::set<std::string> sb(grams_b.begin(), grams_b.end());
  if (sa.empty() && sb.empty()) {
    // Both too short for trigrams; fall back to exact comparison.
    return schema::ToLowerAscii(a) == schema::ToLowerAscii(b) ? 1.0 : 0.0;
  }
  return JaccardOfSets(sa, sb);
}

double TokenJaccardSimilarity(const std::string& a, const std::string& b) {
  const auto tokens_a = schema::TokenizeName(a);
  const auto tokens_b = schema::TokenizeName(b);
  const std::set<std::string> sa(tokens_a.begin(), tokens_a.end());
  const std::set<std::string> sb(tokens_b.begin(), tokens_b.end());
  return JaccardOfSets(sa, sb);
}

double CompositeSimilarity(const schema::Attribute& a,
                           const schema::Attribute& b,
                           const CompositeWeights& weights) {
  double score = weights.levenshtein * LevenshteinSimilarity(a.name, b.name) +
                 weights.jaro_winkler * JaroWinklerSimilarity(a.name, b.name) +
                 weights.trigram * TrigramSimilarity(a.name, b.name) +
                 weights.token_jaccard *
                     TokenJaccardSimilarity(a.name, b.name);
  score += a.type == b.type ? weights.datatype_bonus
                            : -weights.datatype_bonus;
  const std::set<std::string> ia(a.instances.begin(), a.instances.end());
  const std::set<std::string> ib(b.instances.begin(), b.instances.end());
  score += weights.instance_weight * JaccardOfSets(ia, ib);
  return stats::Clamp(score, 0.0, 1.0);
}

MatchMatrix BuildSimilarityMatrix(const schema::Schema& source,
                                  const schema::Schema& target,
                                  const CompositeWeights& weights) {
  const obs::Span span("matching.build_similarity");
  MatchMatrix m(source.size(), target.size());
  // The (source x target) pair grid partitions by source row; each
  // worker writes a disjoint row of m, so any thread count produces the
  // sequential matrix exactly.
  parallel::ParallelFor(0, source.size(), 1, [&](std::size_t i) {
    const auto& a = source.attribute(i);
    if (!a.children.empty()) return;  // grouping node
    for (std::size_t j = 0; j < target.size(); ++j) {
      const auto& b = target.attribute(j);
      if (!b.children.empty()) continue;
      m.Set(i, j, CompositeSimilarity(a, b, weights));
    }
  });
  return m;
}

}  // namespace mexi::matching
