#ifndef MEXI_MATCHING_DECISION_HISTORY_H_
#define MEXI_MATCHING_DECISION_HISTORY_H_

#include <cstddef>
#include <vector>

#include "matching/match_matrix.h"

namespace mexi::matching {

/// One matching decision: the paper's history triplet
/// <(a_i, b_j), c, t> — an element pair, a confidence in [0, 1] and a
/// timestamp (Section II-A2).
struct Decision {
  std::size_t source = 0;
  std::size_t target = 0;
  double confidence = 0.0;
  double timestamp = 0.0;
};

/// A decision history H: the time-ordered sequence of a human matcher's
/// decisions, including revisits (a later decision on the same pair
/// overrides the earlier confidence when projecting to a matrix, Eq. 1).
class DecisionHistory {
 public:
  DecisionHistory() = default;

  /// Appends a decision. Timestamps must be non-decreasing; throws
  /// std::invalid_argument otherwise (the paper's timestamps induce a
  /// total order).
  void Add(const Decision& decision);

  std::size_t size() const { return decisions_.size(); }
  bool empty() const { return decisions_.empty(); }
  const Decision& at(std::size_t i) const { return decisions_.at(i); }
  const std::vector<Decision>& decisions() const { return decisions_; }

  /// Eq. 1: projects the history onto a matching matrix by assigning
  /// each entry its latest confidence.
  MatchMatrix ToMatrix(std::size_t source_size,
                       std::size_t target_size) const;

  /// Prefix of the history up to (excluding) `count` decisions — used by
  /// the early-identification experiment (Fig. 11) and sub-matchers.
  DecisionHistory Prefix(std::size_t count) const;

  /// Contiguous window [start, start+count); clipped to the history end.
  DecisionHistory Window(std::size_t start, std::size_t count) const;

  /// All confidences in decision order.
  std::vector<double> Confidences() const;

  /// Inter-decision elapsed times (t_k - t_{k-1}); size() - 1 values.
  std::vector<double> ElapsedTimes() const;

  /// Number of distinct element pairs decided on.
  std::size_t DistinctPairs() const;

  /// The final match sigma as pairs: distinct element pairs whose
  /// *latest* confidence is non-zero, without materializing a matrix
  /// (usable when task dimensions are unknown or foreign).
  std::vector<ElementPair> FinalPairs() const;

  /// Number of mind changes: decisions whose pair was already decided.
  std::size_t MindChanges() const;

  /// Mean reported confidence (the paper's H.c-bar in Eq. 5).
  double MeanConfidence() const;

  /// Preprocessing per Section IV-A: drops the first `warmup` decisions
  /// (response-time warm-up) and then removes decisions whose elapsed
  /// time is more than `stddev_limit` standard deviations from this
  /// matcher's mean elapsed time.
  DecisionHistory Preprocessed(std::size_t warmup = 3,
                               double stddev_limit = 2.0) const;

 private:
  std::vector<Decision> decisions_;
};

}  // namespace mexi::matching

#endif  // MEXI_MATCHING_DECISION_HISTORY_H_
