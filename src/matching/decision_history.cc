#include "matching/decision_history.h"

#include <algorithm>
#include <map>
#include <cmath>
#include <set>
#include <stdexcept>

#include "stats/descriptive.h"

namespace mexi::matching {

void DecisionHistory::Add(const Decision& decision) {
  if (decision.confidence < 0.0 || decision.confidence > 1.0) {
    throw std::invalid_argument("DecisionHistory::Add: confidence range");
  }
  if (!decisions_.empty() &&
      decision.timestamp < decisions_.back().timestamp) {
    throw std::invalid_argument(
        "DecisionHistory::Add: timestamps must be non-decreasing");
  }
  decisions_.push_back(decision);
}

MatchMatrix DecisionHistory::ToMatrix(std::size_t source_size,
                                      std::size_t target_size) const {
  MatchMatrix m(source_size, target_size);
  // Decisions are time-ordered, so a simple overwrite realizes the
  // "latest confidence wins" rule of Eq. 1.
  for (const auto& d : decisions_) {
    m.Set(d.source, d.target, d.confidence);
  }
  return m;
}

DecisionHistory DecisionHistory::Prefix(std::size_t count) const {
  DecisionHistory out;
  const std::size_t n = std::min(count, decisions_.size());
  for (std::size_t i = 0; i < n; ++i) out.decisions_.push_back(decisions_[i]);
  return out;
}

DecisionHistory DecisionHistory::Window(std::size_t start,
                                        std::size_t count) const {
  DecisionHistory out;
  const std::size_t end = std::min(start + count, decisions_.size());
  for (std::size_t i = std::min(start, decisions_.size()); i < end; ++i) {
    out.decisions_.push_back(decisions_[i]);
  }
  return out;
}

std::vector<double> DecisionHistory::Confidences() const {
  std::vector<double> out;
  out.reserve(decisions_.size());
  for (const auto& d : decisions_) out.push_back(d.confidence);
  return out;
}

std::vector<double> DecisionHistory::ElapsedTimes() const {
  std::vector<double> out;
  if (decisions_.size() < 2) return out;
  out.reserve(decisions_.size() - 1);
  for (std::size_t i = 1; i < decisions_.size(); ++i) {
    out.push_back(decisions_[i].timestamp - decisions_[i - 1].timestamp);
  }
  return out;
}

std::size_t DecisionHistory::DistinctPairs() const {
  std::set<ElementPair> seen;
  for (const auto& d : decisions_) seen.insert({d.source, d.target});
  return seen.size();
}

std::vector<ElementPair> DecisionHistory::FinalPairs() const {
  std::map<ElementPair, double> latest;
  for (const auto& d : decisions_) {
    latest[{d.source, d.target}] = d.confidence;
  }
  std::vector<ElementPair> out;
  for (const auto& [pair, confidence] : latest) {
    if (confidence > 0.0) out.push_back(pair);
  }
  return out;
}

std::size_t DecisionHistory::MindChanges() const {
  std::set<ElementPair> seen;
  std::size_t changes = 0;
  for (const auto& d : decisions_) {
    if (!seen.insert({d.source, d.target}).second) ++changes;
  }
  return changes;
}

double DecisionHistory::MeanConfidence() const {
  return stats::Mean(Confidences());
}

DecisionHistory DecisionHistory::Preprocessed(std::size_t warmup,
                                              double stddev_limit) const {
  DecisionHistory trimmed;
  for (std::size_t i = std::min(warmup, decisions_.size());
       i < decisions_.size(); ++i) {
    trimmed.decisions_.push_back(decisions_[i]);
  }
  const std::vector<double> elapsed = trimmed.ElapsedTimes();
  if (elapsed.size() < 2) return trimmed;
  const double mean = stats::Mean(elapsed);
  const double sd = stats::StdDev(elapsed);

  DecisionHistory out;
  out.decisions_.push_back(trimmed.decisions_.front());
  for (std::size_t i = 1; i < trimmed.decisions_.size(); ++i) {
    const double dt = elapsed[i - 1];
    if (sd > 0.0 && std::fabs(dt - mean) > stddev_limit * sd) continue;
    out.decisions_.push_back(trimmed.decisions_[i]);
  }
  return out;
}

}  // namespace mexi::matching
