#include "matching/io.h"

#include <cmath>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "robust/fault_injection.h"
#include "robust/status.h"

namespace mexi::matching {

namespace {

/// std::getline with the io_read fault site: every successfully read
/// CSV line is one hit. A torn read hands the parser a prefix of the
/// line (which must surface as a structured parse error, not UB); an
/// EINTR fault surfaces as a structured kIoError the way an
/// uninterruptible loader would report an interrupted syscall.
bool GetlineInjected(std::istream& in, std::string& line) {
  if (!std::getline(in, line)) return false;
  switch (robust::FaultInjector::Global().Hit(robust::FaultSite::kIoRead)) {
    case robust::FaultKind::kTornRead:
      line.resize(line.size() / 2);
      break;
    case robust::FaultKind::kEintr:
      robust::ThrowStatus(robust::StatusCode::kIoError,
                          "csv read interrupted (EINTR)");
      break;
    default:
      break;
  }
  return true;
}

robust::StatusError ParseError(const char* what, std::size_t line) {
  std::ostringstream message;
  message << "csv parse error at line " << line << ": " << what;
  return robust::StatusError(
      robust::Status::Error(robust::StatusCode::kParseError, message.str())
          .WithLine(line));
}

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream stream(line);
  while (std::getline(stream, field, ',')) fields.push_back(field);
  return fields;
}

char TypeChar(MovementType type) {
  switch (type) {
    case MovementType::kMove:
      return 'm';
    case MovementType::kLeftClick:
      return 'l';
    case MovementType::kRightClick:
      return 'r';
    case MovementType::kScroll:
      return 's';
  }
  return '?';
}

MovementType TypeFromChar(char c, std::size_t line) {
  switch (c) {
    case 'm':
      return MovementType::kMove;
    case 'l':
      return MovementType::kLeftClick;
    case 'r':
      return MovementType::kRightClick;
    case 's':
      return MovementType::kScroll;
    default:
      throw ParseError("unknown movement type", line);
  }
}

double ParseDouble(const std::string& text, std::size_t line) {
  double value = 0.0;
  try {
    std::size_t consumed = 0;
    value = std::stod(text, &consumed);
    if (consumed != text.size()) throw std::invalid_argument(text);
  } catch (const std::exception&) {
    throw ParseError("bad number", line);
  }
  if (!std::isfinite(value)) throw ParseError("non-finite number", line);
  return value;
}

long ParseLong(const std::string& text, std::size_t line) {
  try {
    std::size_t consumed = 0;
    const long value = std::stol(text, &consumed);
    if (consumed != text.size()) throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    throw ParseError("bad integer", line);
  }
}

}  // namespace

void WriteDecisionsCsv(const std::vector<LoadedMatcher>& matchers,
                       std::ostream& out) {
  out << "matcher_id,source,target,confidence,timestamp\n";
  for (const auto& matcher : matchers) {
    for (const auto& d : matcher.history.decisions()) {
      out << matcher.id << ',' << d.source << ',' << d.target << ','
          << d.confidence << ',' << d.timestamp << '\n';
    }
  }
}

void WriteMovementsCsv(const std::vector<LoadedMatcher>& matchers,
                       std::ostream& out) {
  out << "matcher_id,x,y,type,timestamp\n";
  double width = 1280.0, height = 800.0;
  if (!matchers.empty()) {
    width = matchers.front().movement.screen_width();
    height = matchers.front().movement.screen_height();
  }
  out << "#screen," << width << ',' << height << '\n';
  for (const auto& matcher : matchers) {
    for (const auto& e : matcher.movement.events()) {
      out << matcher.id << ',' << e.x << ',' << e.y << ','
          << TypeChar(e.type) << ',' << e.timestamp << '\n';
    }
  }
}

void WriteReferenceCsv(const std::vector<ElementPair>& reference,
                       std::ostream& out) {
  out << "source,target\n";
  for (const auto& [i, j] : reference) out << i << ',' << j << '\n';
}

std::vector<LoadedMatcher> ReadDecisionsCsv(std::istream& in) {
  std::vector<LoadedMatcher> matchers;
  std::map<int, std::size_t> index_of_id;

  std::string line;
  std::size_t line_number = 0;
  bool saw_header = false;
  while (GetlineInjected(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    if (!saw_header) {
      saw_header = true;  // skip the header row
      continue;
    }
    const auto fields = SplitCsvLine(line);
    if (fields.size() != 5) throw ParseError("expected 5 fields", line_number);
    const int id = static_cast<int>(ParseLong(fields[0], line_number));
    auto [it, inserted] = index_of_id.try_emplace(id, matchers.size());
    if (inserted) {
      LoadedMatcher matcher;
      matcher.id = id;
      matchers.push_back(std::move(matcher));
    }
    Decision d;
    const long source = ParseLong(fields[1], line_number);
    const long target = ParseLong(fields[2], line_number);
    if (source < 0 || target < 0) {
      throw ParseError("negative element index", line_number);
    }
    d.source = static_cast<std::size_t>(source);
    d.target = static_cast<std::size_t>(target);
    d.confidence = ParseDouble(fields[3], line_number);
    d.timestamp = ParseDouble(fields[4], line_number);
    try {
      matchers[it->second].history.Add(d);
    } catch (const std::invalid_argument& e) {
      throw ParseError(e.what(), line_number);
    }
  }
  if (!saw_header) {
    robust::ThrowStatus(robust::StatusCode::kParseError,
                        "decisions csv is empty (no header row)");
  }
  return matchers;
}

void ReadMovementsCsv(std::istream& in,
                      std::vector<LoadedMatcher>* matchers) {
  std::map<int, std::size_t> index_of_id;
  for (std::size_t i = 0; i < matchers->size(); ++i) {
    index_of_id[(*matchers)[i].id] = i;
  }

  std::string line;
  std::size_t line_number = 0;
  bool saw_header = false;
  double width = 1280.0, height = 800.0;
  bool screen_known = false;
  while (GetlineInjected(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    if (line.rfind("#screen,", 0) == 0) {
      const auto fields = SplitCsvLine(line.substr(8));
      if (fields.size() != 2) {
        throw ParseError("bad #screen line", line_number);
      }
      width = ParseDouble(fields[0], line_number);
      height = ParseDouble(fields[1], line_number);
      screen_known = true;
      continue;
    }
    if (line[0] == '#') continue;
    if (!saw_header) {
      saw_header = true;
      continue;
    }
    const auto fields = SplitCsvLine(line);
    if (fields.size() != 5) throw ParseError("expected 5 fields", line_number);
    const int id = static_cast<int>(ParseLong(fields[0], line_number));
    const auto it = index_of_id.find(id);
    if (it == index_of_id.end()) {
      throw ParseError("movement for unknown matcher id", line_number);
    }
    LoadedMatcher& matcher = (*matchers)[it->second];
    if (screen_known && matcher.movement.empty() &&
        (matcher.movement.screen_width() != width ||
         matcher.movement.screen_height() != height)) {
      matcher.movement = MovementMap(width, height);
    }
    MovementEvent e;
    e.x = ParseDouble(fields[1], line_number);
    e.y = ParseDouble(fields[2], line_number);
    if (fields[3].size() != 1) throw ParseError("bad type", line_number);
    e.type = TypeFromChar(fields[3][0], line_number);
    e.timestamp = ParseDouble(fields[4], line_number);
    try {
      matcher.movement.Add(e);
    } catch (const std::invalid_argument& err) {
      throw ParseError(err.what(), line_number);
    }
  }
  if (!saw_header) {
    robust::ThrowStatus(robust::StatusCode::kParseError,
                        "movements csv is empty (no header row)");
  }
}

std::vector<ElementPair> ReadReferenceCsv(std::istream& in) {
  std::vector<ElementPair> reference;
  std::string line;
  std::size_t line_number = 0;
  bool saw_header = false;
  while (GetlineInjected(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    if (!saw_header) {
      saw_header = true;
      continue;
    }
    const auto fields = SplitCsvLine(line);
    if (fields.size() != 2) throw ParseError("expected 2 fields", line_number);
    const long i = ParseLong(fields[0], line_number);
    const long j = ParseLong(fields[1], line_number);
    if (i < 0 || j < 0) throw ParseError("negative index", line_number);
    reference.emplace_back(static_cast<std::size_t>(i),
                           static_cast<std::size_t>(j));
  }
  return reference;
}

void ValidateMatchers(const std::vector<LoadedMatcher>& matchers,
                      std::size_t source_size, std::size_t target_size) {
  for (const auto& matcher : matchers) {
    for (const auto& d : matcher.history.decisions()) {
      if (d.source >= source_size || d.target >= target_size) {
        robust::ThrowStatus(
            robust::StatusCode::kInvalidArgument,
            "matcher " + std::to_string(matcher.id) + " decision (" +
                std::to_string(d.source) + ", " + std::to_string(d.target) +
                ") is outside the " + std::to_string(source_size) + " x " +
                std::to_string(target_size) + " task");
      }
    }
  }
}

namespace {

std::ofstream OpenForWrite(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw robust::StatusError(
        robust::Status::Error(robust::StatusCode::kIoError,
                              "cannot write " + path)
            .WithFile(path));
  }
  return out;
}

std::ifstream OpenForRead(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw robust::StatusError(
        robust::Status::Error(robust::StatusCode::kNotFound,
                              "cannot read " + path)
            .WithFile(path));
  }
  return in;
}

// Renders-then-writes one output CSV so the matchers_write fault site
// can model disk failure per *file*, not per row. Uninjected, the byte
// stream written is identical to streaming straight into the ofstream.
void WriteFileInjected(const std::string& path, const std::string& content) {
  const robust::FaultKind fault =
      robust::FaultInjector::Global().Hit(robust::FaultSite::kMatchersWrite);
  if (fault == robust::FaultKind::kEnospc) {
    throw robust::StatusError(
        robust::Status::Error(robust::StatusCode::kResourceExhausted,
                              "injected ENOSPC: no space left on device")
            .WithFile(path));
  }
  auto out = OpenForWrite(path);
  if (fault == robust::FaultKind::kShortWrite) {
    out.write(content.data(),
              static_cast<std::streamsize>(content.size() / 2));
    out.flush();
    throw robust::StatusError(
        robust::Status::Error(robust::StatusCode::kIoError,
                              "injected short write: device lost " +
                                  std::to_string(content.size() -
                                                 content.size() / 2) +
                                  " trailing bytes")
            .WithFile(path));
  }
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  if (!out) {
    throw robust::StatusError(
        robust::Status::Error(robust::StatusCode::kIoError,
                              "write failed for " + path)
            .WithFile(path));
  }
}

}  // namespace

void SaveMatchersToFiles(const std::vector<LoadedMatcher>& matchers,
                         const std::string& decisions_path,
                         const std::string& movements_path) {
  std::ostringstream decisions;
  WriteDecisionsCsv(matchers, decisions);
  WriteFileInjected(decisions_path, decisions.str());
  std::ostringstream movements;
  WriteMovementsCsv(matchers, movements);
  WriteFileInjected(movements_path, movements.str());
}

std::vector<LoadedMatcher> LoadMatchersFromFiles(
    const std::string& decisions_path, const std::string& movements_path) {
  auto decisions = OpenForRead(decisions_path);
  std::vector<LoadedMatcher> matchers = ReadDecisionsCsv(decisions);
  auto movements = OpenForRead(movements_path);
  ReadMovementsCsv(movements, &matchers);
  return matchers;
}

void SaveReferenceToFile(const std::vector<ElementPair>& reference,
                         const std::string& path) {
  auto out = OpenForWrite(path);
  WriteReferenceCsv(reference, out);
}

std::vector<ElementPair> LoadReferenceFromFile(const std::string& path) {
  auto in = OpenForRead(path);
  return ReadReferenceCsv(in);
}

}  // namespace mexi::matching
