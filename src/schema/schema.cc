#include "schema/schema.h"

#include <algorithm>
#include <stdexcept>

namespace mexi::schema {

std::string DataTypeName(DataType type) {
  switch (type) {
    case DataType::kString:
      return "string";
    case DataType::kInteger:
      return "integer";
    case DataType::kDecimal:
      return "decimal";
    case DataType::kDate:
      return "date";
    case DataType::kTime:
      return "time";
    case DataType::kBoolean:
      return "boolean";
    case DataType::kIdentifier:
      return "identifier";
  }
  return "unknown";
}

std::size_t Schema::AddAttribute(Attribute attribute, int parent) {
  if (parent >= 0) {
    if (static_cast<std::size_t>(parent) >= attributes_.size()) {
      throw std::out_of_range("Schema::AddAttribute: invalid parent");
    }
    attribute.parent = parent;
    attribute.depth =
        attributes_[static_cast<std::size_t>(parent)].depth + 1;
  } else {
    attribute.parent = -1;
    attribute.depth = 0;
  }
  attribute.children.clear();
  const std::size_t index = attributes_.size();
  attributes_.push_back(std::move(attribute));
  if (parent >= 0) {
    attributes_[static_cast<std::size_t>(parent)].children.push_back(index);
  }
  return index;
}

std::vector<std::size_t> Schema::Roots() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].parent < 0) out.push_back(i);
  }
  return out;
}

std::vector<std::size_t> Schema::Leaves() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].children.empty()) out.push_back(i);
  }
  return out;
}

int Schema::MaxDepth() const {
  int best = -1;
  for (const auto& a : attributes_) best = std::max(best, a.depth);
  return best;
}

void Schema::PreOrderVisit(std::size_t node,
                           std::vector<std::size_t>& out) const {
  out.push_back(node);
  for (std::size_t child : attributes_[node].children) {
    PreOrderVisit(child, out);
  }
}

std::vector<std::size_t> Schema::PreOrder() const {
  std::vector<std::size_t> out;
  out.reserve(attributes_.size());
  for (std::size_t root : Roots()) PreOrderVisit(root, out);
  return out;
}

}  // namespace mexi::schema
