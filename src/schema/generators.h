#ifndef MEXI_SCHEMA_GENERATORS_H_
#define MEXI_SCHEMA_GENERATORS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "schema/schema.h"

namespace mexi::schema {

/// A matching task: two schemata plus the reference match between them
/// (pairs of element indices, source first). This is the synthetic
/// stand-in for the paper's datasets; see DESIGN.md §1 for the
/// substitution rationale.
struct GeneratedPair {
  Schema source{"source"};
  Schema target{"target"};
  /// Exact correspondences (source index, target index); one per shared
  /// concept, leaf elements only.
  std::vector<std::pair<std::size_t, std::size_t>> reference;
};

/// Domain vocabulary used by the generator.
enum class Domain {
  /// Purchase-order schemata after the COMA dataset the paper uses.
  kPurchaseOrder,
  /// Bibliographic ontologies after the OAEI benchmark task.
  kBibliography,
  /// Small university-catalog schemata after the Thalia warm-up task.
  kUniversity,
  /// Customer/product record schemata for the entity-resolution
  /// extension the paper's conclusion proposes.
  kEntityResolution,
};

/// Generator knobs. The element totals count *all* elements (internal
/// grouping nodes included), matching how the paper reports sizes.
struct GeneratorConfig {
  Domain domain = Domain::kPurchaseOrder;
  /// Total elements in the source schema.
  std::size_t source_size = 142;
  /// Total elements in the target schema.
  std::size_t target_size = 46;
  /// Fraction of target leaves that have a source counterpart.
  double overlap_fraction = 0.85;
  /// Controls how aggressively names diverge between the two schemata
  /// (0 = identical names, 1 = synonym/abbreviation-heavy renaming).
  double naming_divergence = 0.6;
  std::uint64_t seed = 2021;
};

/// Builds a schema pair with a known reference match. Deterministic for
/// a given config. Throws std::invalid_argument for impossible sizes
/// (fewer than 6 elements a side).
GeneratedPair GeneratePair(const GeneratorConfig& config);

/// The paper's Purchase-Order task: 142- and 46-element schemata with
/// high information content.
GeneratedPair GeneratePurchaseOrderTask(std::uint64_t seed = 2021);

/// The paper's OAEI ontology-alignment task: 121 and 109 elements.
GeneratedPair GenerateOaeiTask(std::uint64_t seed = 2016);

/// The Thalia-style warm-up task: short schemata (9-12 attributes).
GeneratedPair GenerateWarmupTask(std::uint64_t seed = 7);

/// Entity-resolution extension task (Section VI): two customer/product
/// record layouts whose attribute correspondences a human must align
/// before tuples can be deduplicated. 58 and 40 elements.
GeneratedPair GenerateEntityResolutionTask(std::uint64_t seed = 2022);

}  // namespace mexi::schema

#endif  // MEXI_SCHEMA_GENERATORS_H_
