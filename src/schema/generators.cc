#include "schema/generators.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>

#include "stats/rng.h"

namespace mexi::schema {

namespace {

using Tokens = std::vector<std::string>;

struct ConceptSpec {
  Tokens tokens;
  std::size_t category = 0;
  long long id = 0;
};

struct CategorySpec {
  std::string name;
  std::vector<Tokens> concepts;
};

/// Domain vocabularies. Concepts are canonical token lists; the renderer
/// turns them into schema-specific attribute names.
std::vector<CategorySpec> PurchaseOrderCategories() {
  return {
      {"header",
       {{"order", "code"},
        {"order", "date"},
        {"order", "time"},
        {"order", "status"},
        {"order", "type"},
        {"currency"},
        {"priority"},
        {"revision"},
        {"reference", "number"},
        {"created", "by"},
        {"approved", "by"},
        {"sales", "channel"}}},
      {"buyer",
       {{"customer", "name"},
        {"customer", "id"},
        {"contact", "person"},
        {"phone", "number"},
        {"email", "address"},
        {"fax", "number"},
        {"tax", "id"},
        {"loyalty", "level"},
        {"account", "number"},
        {"market", "segment"}}},
      {"ship_to",
       {{"ship", "city"},
        {"ship", "street"},
        {"ship", "address", "line"},
        {"ship", "zip", "code"},
        {"ship", "country"},
        {"ship", "state"},
        {"ship", "region"},
        {"attention", "name"},
        {"delivery", "note"},
        {"site", "code"}}},
      {"bill_to",
       {{"bill", "city"},
        {"bill", "street"},
        {"bill", "address", "line"},
        {"bill", "zip", "code"},
        {"bill", "country"},
        {"bill", "state"},
        {"tax", "region"},
        {"invoice", "email"},
        {"payer", "name"},
        {"cost", "center"}}},
      {"line_item",
       {{"product", "code"},
        {"product", "name"},
        {"item", "description"},
        {"quantity"},
        {"unit"},
        {"unit", "price"},
        {"line", "amount"},
        {"discount", "rate"},
        {"item", "weight"},
        {"color"},
        {"size", "code"},
        {"warranty", "months"}}},
      {"payment",
       {{"payment", "terms"},
        {"payment", "method"},
        {"due", "date"},
        {"paid", "amount"},
        {"tax", "amount"},
        {"tax", "rate"},
        {"bank", "account"},
        {"iban"},
        {"installments"},
        {"late", "fee"}}},
      {"delivery",
       {{"carrier", "name"},
        {"tracking", "number"},
        {"ship", "date"},
        {"arrival", "date"},
        {"delivery", "instructions"},
        {"package", "count"},
        {"freight", "cost"},
        {"incoterms"},
        {"dock", "code"},
        {"delivery", "window"}}},
      {"vendor",
       {{"vendor", "name"},
        {"vendor", "id"},
        {"vendor", "rating"},
        {"contract", "number"},
        {"lead", "time"},
        {"minimum", "order"},
        {"vendor", "phone"},
        {"vendor", "email"},
        {"vendor", "city"},
        {"vendor", "country"}}},
      {"totals",
       {{"subtotal"},
        {"grand", "total"},
        {"total", "tax"},
        {"total", "discount"},
        {"rounding"},
        {"currency", "rate"},
        {"total", "weight"},
        {"total", "items"}}},
      {"audit",
       {{"created", "at"},
        {"updated", "at"},
        {"record", "version"},
        {"source", "system"},
        {"batch", "id"},
        {"checksum"},
        {"operator", "id"},
        {"audit", "comment"}}},
  };
}

std::vector<CategorySpec> BibliographyCategories() {
  return {
      {"publication",
       {{"title"},
        {"publication", "year"},
        {"publication", "month"},
        {"abstract"},
        {"language"},
        {"doi"},
        {"url"},
        {"isbn"},
        {"issn"},
        {"edition"},
        {"volume"},
        {"issue", "number"},
        {"pages"},
        {"chapter"},
        {"series"},
        {"note"},
        {"keywords"},
        {"copyright"}}},
      {"author",
       {{"first", "name"},
        {"last", "name"},
        {"middle", "name"},
        {"affiliation"},
        {"author", "email"},
        {"homepage"},
        {"orcid"},
        {"biography"},
        {"author", "order"},
        {"corresponding", "flag"}}},
      {"venue",
       {{"journal", "name"},
        {"conference", "name"},
        {"venue", "location"},
        {"publisher", "name"},
        {"acronym"},
        {"impact", "factor"},
        {"venue", "issn"},
        {"website"},
        {"proceedings", "title"},
        {"track", "name"}}},
      {"organization",
       {{"institution", "name"},
        {"department"},
        {"school"},
        {"organization", "address"},
        {"organization", "city"},
        {"organization", "country"},
        {"organization", "phone"},
        {"grid", "id"}}},
      {"event",
       {{"start", "date"},
        {"end", "date"},
        {"submission", "deadline"},
        {"notification", "date"},
        {"camera", "ready", "date"},
        {"registration", "fee"},
        {"event", "city"},
        {"event", "country"}}},
      {"reference",
       {{"cited", "key"},
        {"cross", "reference"},
        {"citation", "count"},
        {"self", "citation"},
        {"citation", "context"},
        {"reference", "type"}}},
      {"record",
       {{"entry", "type"},
        {"entry", "key"},
        {"entry", "status"},
        {"created", "date"},
        {"modified", "date"},
        {"source", "file"},
        {"curator", "id"},
        {"quality", "score"}}},
  };
}

std::vector<CategorySpec> EntityResolutionCategories() {
  return {
      {"identity",
       {{"record", "id"},
        {"full", "name"},
        {"first", "name"},
        {"last", "name"},
        {"birth", "date"},
        {"gender"},
        {"national", "id"},
        {"nickname"}}},
      {"contact",
       {{"email", "address"},
        {"phone", "number"},
        {"mobile", "number"},
        {"street", "address"},
        {"city"},
        {"zip", "code"},
        {"country"},
        {"preferred", "channel"}}},
      {"account",
       {{"account", "number"},
        {"signup", "date"},
        {"last", "login"},
        {"loyalty", "points"},
        {"account", "status"},
        {"referrer", "id"},
        {"marketing", "consent"}}},
      {"purchase",
       {{"order", "count"},
        {"total", "spend"},
        {"last", "order", "date"},
        {"favorite", "category"},
        {"average", "basket"},
        {"return", "rate"},
        {"payment", "method"}}},
  };
}

std::vector<CategorySpec> UniversityCategories() {
  return {
      {"course",
       {{"course", "code"},
        {"course", "title"},
        {"instructor", "name"},
        {"room"},
        {"building"},
        {"start", "time"},
        {"end", "time"},
        {"credits"},
        {"semester"},
        {"course", "description"},
        {"prerequisites"},
        {"enrollment", "count"}}},
  };
}

const std::map<std::string, std::vector<std::string>>& SynonymTable() {
  static const auto* kTable =
      new std::map<std::string, std::vector<std::string>>{
          {"order", {"purchase", "po"}},
          {"code", {"number", "no", "id"}},
          {"number", {"num", "no", "code"}},
          {"date", {"day"}},
          {"time", {"hour"}},
          {"city", {"town"}},
          {"street", {"road"}},
          {"zip", {"postal"}},
          {"product", {"item", "article"}},
          {"item", {"product", "article"}},
          {"quantity", {"qty", "count"}},
          {"amount", {"total", "sum"}},
          {"price", {"cost", "rate"}},
          {"cost", {"price", "charge"}},
          {"customer", {"client", "buyer"}},
          {"phone", {"telephone", "tel"}},
          {"description", {"desc", "details"}},
          {"name", {"label", "title"}},
          {"vendor", {"supplier", "seller"}},
          {"ship", {"shipment", "shipping", "deliver"}},
          {"bill", {"billing", "invoice"}},
          {"created", {"creation", "entry"}},
          {"updated", {"modified", "changed"}},
          {"id", {"identifier", "key"}},
          {"email", {"mail", "eMail"}},
          {"country", {"nation"}},
          {"state", {"province"}},
          {"payment", {"pay", "settlement"}},
          {"carrier", {"shipper", "courier"}},
          {"tracking", {"trace", "shipment"}},
          {"total", {"sum", "overall"}},
          {"tax", {"vat", "duty"}},
          {"discount", {"rebate", "reduction"}},
          {"title", {"name", "heading"}},
          {"year", {"yr"}},
          {"journal", {"periodical", "magazine"}},
          {"conference", {"proceedings", "meeting"}},
          {"publisher", {"press", "publishing"}},
          {"institution", {"organization", "institute"}},
          {"author", {"writer", "creator"}},
          {"abstract", {"summary", "synopsis"}},
          {"pages", {"pp", "pageRange"}},
          {"volume", {"vol"}},
          {"first", {"given", "fore"}},
          {"last", {"family", "sur"}},
          {"course", {"class", "subject"}},
          {"instructor", {"teacher", "lecturer", "professor"}},
          {"room", {"hall", "venue"}},
          {"credits", {"points", "units"}},
          {"semester", {"term", "session"}},
          {"start", {"begin", "from"}},
          {"end", {"finish", "until"}},
      };
  return *kTable;
}

DataType InferType(const Tokens& tokens) {
  const std::string& last = tokens.back();
  auto any = [&](std::initializer_list<const char*> words) {
    for (const char* w : words) {
      for (const auto& t : tokens) {
        if (t == w) return true;
      }
    }
    return false;
  };
  if (last == "date" || last == "day" || last == "at" ||
      any({"date", "deadline"})) {
    return DataType::kDate;
  }
  if (last == "time" || last == "hour") return DataType::kTime;
  if (any({"code", "id", "key", "number", "isbn", "issn", "doi", "iban",
           "orcid", "checksum"})) {
    return DataType::kIdentifier;
  }
  if (any({"amount", "price", "cost", "total", "rate", "fee", "subtotal",
           "rounding", "factor", "weight", "score"})) {
    return DataType::kDecimal;
  }
  if (any({"quantity", "count", "months", "items", "credits", "year",
           "volume", "pages", "chapter", "installments", "enrollment",
           "order"})) {
    return DataType::kInteger;
  }
  if (any({"flag", "citation"})) return DataType::kBoolean;
  return DataType::kString;
}

std::vector<std::string> InstancesForType(DataType type, stats::Rng& rng) {
  auto pick = [&](std::initializer_list<const char*> options) {
    std::vector<std::string> out;
    std::vector<const char*> pool(options);
    for (int i = 0; i < 3; ++i) {
      out.push_back(pool[rng.UniformIndex(pool.size())]);
    }
    return out;
  };
  switch (type) {
    case DataType::kDate:
      return pick({"2021-03-14", "2020-11-02", "2019-07-30", "2021-01-05"});
    case DataType::kTime:
      return pick({"14:32", "09:15", "18:40", "11:05"});
    case DataType::kIdentifier:
      return pick({"PO-10293", "A-4471", "X99-031", "ZK-7718"});
    case DataType::kDecimal:
      return pick({"184.50", "12.99", "1023.00", "7.25"});
    case DataType::kInteger:
      return pick({"3", "12", "240", "7"});
    case DataType::kBoolean:
      return pick({"true", "false"});
    case DataType::kString:
      return pick({"Haifa", "alpha", "standard", "Crete"});
  }
  return {};
}

/// Per-schema naming style.
struct NamingStyle {
  bool camel_case = true;
  double synonym_probability = 0.3;
  double abbreviation_probability = 0.1;
  std::string prefix;  // optional leading token, e.g. "po"
};

std::string RenderName(const Tokens& tokens, const NamingStyle& style,
                       stats::Rng& rng) {
  Tokens rendered;
  if (!style.prefix.empty()) rendered.push_back(style.prefix);
  for (const auto& token : tokens) {
    std::string word = token;
    const auto& synonyms = SynonymTable();
    auto it = synonyms.find(token);
    if (it != synonyms.end() && rng.Bernoulli(style.synonym_probability)) {
      word = it->second[rng.UniformIndex(it->second.size())];
    }
    if (word.size() > 4 && rng.Bernoulli(style.abbreviation_probability)) {
      word = word.substr(0, 4);
    }
    rendered.push_back(word);
  }
  std::string name;
  for (std::size_t i = 0; i < rendered.size(); ++i) {
    std::string word = rendered[i];
    if (style.camel_case) {
      if (i > 0 && !word.empty()) {
        word[0] = static_cast<char>(
            std::toupper(static_cast<unsigned char>(word[0])));
      }
      name += word;
    } else {
      if (i > 0) name += "_";
      name += word;
    }
  }
  return name;
}

std::string MakeUnique(std::string name, std::set<std::string>& used) {
  std::string candidate = name;
  int suffix = 2;
  while (!used.insert(candidate).second) {
    candidate = name + std::to_string(suffix++);
  }
  return candidate;
}

std::vector<CategorySpec> CategoriesFor(Domain domain) {
  switch (domain) {
    case Domain::kPurchaseOrder:
      return PurchaseOrderCategories();
    case Domain::kBibliography:
      return BibliographyCategories();
    case Domain::kUniversity:
      return UniversityCategories();
    case Domain::kEntityResolution:
      return EntityResolutionCategories();
  }
  throw std::invalid_argument("CategoriesFor: unknown domain");
}

/// Flattens the category table into a concept pool, extending it with
/// numbered variants until at least `minimum` concepts exist.
std::vector<ConceptSpec> BuildPool(const std::vector<CategorySpec>& cats,
                                   std::size_t minimum) {
  std::vector<ConceptSpec> pool;
  long long next_id = 1;
  for (std::size_t c = 0; c < cats.size(); ++c) {
    for (const auto& tokens : cats[c].concepts) {
      pool.push_back(ConceptSpec{tokens, c, next_id++});
    }
  }
  // Numbered variants ("address line 2", "contact person 2", ...) mimic
  // how large real schemata repeat concepts.
  std::size_t base = pool.size();
  int round = 2;
  while (pool.size() < minimum) {
    for (std::size_t i = 0; i < base && pool.size() < minimum; ++i) {
      ConceptSpec variant = pool[i];
      variant.tokens.push_back(std::to_string(round));
      variant.id = next_id++;
      pool.push_back(std::move(variant));
    }
    ++round;
  }
  return pool;
}

struct SchemaPlan {
  std::vector<std::size_t> concept_indices;  // into the pool
  std::vector<std::size_t> categories;       // category ids used
};

// Category names in the tables above use snake_case; split them into
// tokens the renderer can restyle.
Tokens TokenizeNameHelper(const std::string& text) {
  Tokens out;
  std::string current;
  for (char ch : text) {
    if (ch == '_') {
      if (!current.empty()) out.push_back(current);
      current.clear();
    } else {
      current.push_back(ch);
    }
  }
  if (!current.empty()) out.push_back(current);
  return out;
}

/// Renders a planned schema: root -> category nodes -> leaf attributes.
/// `index_of_concept` receives pool-index -> schema element index.
Schema RenderSchema(const std::string& name,
                    const std::vector<CategorySpec>& cats,
                    const std::vector<ConceptSpec>& pool,
                    const SchemaPlan& plan, const NamingStyle& style,
                    stats::Rng& rng, bool use_categories,
                    std::map<std::size_t, std::size_t>* index_of_concept) {
  Schema schema(name);
  std::set<std::string> used_names;
  Attribute root;
  root.name = MakeUnique(name, used_names);
  root.type = DataType::kString;
  const std::size_t root_idx = schema.AddAttribute(root, -1);

  std::map<std::size_t, std::size_t> category_node;
  if (use_categories) {
    for (std::size_t cat : plan.categories) {
      Attribute node;
      node.name = MakeUnique(
          RenderName(TokenizeNameHelper(cats[cat].name), style, rng),
          used_names);
      node.type = DataType::kString;
      category_node[cat] =
          schema.AddAttribute(node, static_cast<int>(root_idx));
    }
  }

  for (std::size_t pool_idx : plan.concept_indices) {
    const ConceptSpec& spec = pool[pool_idx];
    Attribute leaf;
    leaf.name = MakeUnique(RenderName(spec.tokens, style, rng),
                           used_names);
    leaf.type = InferType(spec.tokens);
    leaf.instances = InstancesForType(leaf.type, rng);
    leaf.concept_id = spec.id;
    int parent = static_cast<int>(root_idx);
    if (use_categories) {
      auto it = category_node.find(spec.category);
      if (it != category_node.end()) parent = static_cast<int>(it->second);
    }
    const std::size_t idx = schema.AddAttribute(leaf, parent);
    (*index_of_concept)[pool_idx] = idx;
  }
  return schema;
}

}  // namespace

GeneratedPair GeneratePair(const GeneratorConfig& config) {
  if (config.source_size < 6 || config.target_size < 6) {
    throw std::invalid_argument("GeneratePair: schemas must have >= 6 elems");
  }
  stats::Rng rng(config.seed);
  const std::vector<CategorySpec> cats = CategoriesFor(config.domain);

  const bool source_categories = config.source_size >= 20;
  const bool target_categories = config.target_size >= 20;

  // Category selection: the source uses every category, the target a
  // subset proportional to its size.
  std::vector<std::size_t> all_cats(cats.size());
  std::iota(all_cats.begin(), all_cats.end(), 0);

  std::size_t target_cat_count =
      target_categories
          ? std::max<std::size_t>(
                2, std::min(cats.size(), config.target_size / 10))
          : 0;
  std::vector<std::size_t> shuffled_cats = all_cats;
  rng.Shuffle(shuffled_cats);
  std::vector<std::size_t> target_cats(
      shuffled_cats.begin(),
      shuffled_cats.begin() +
          static_cast<long>(std::min(target_cat_count,
                                     shuffled_cats.size())));
  // Grow the category selection until it can supply the target leaves
  // (small vocabularies would otherwise starve the target schema).
  auto category_capacity = [&]() {
    std::size_t capacity = 0;
    for (std::size_t cat : target_cats) {
      capacity += cats[cat].concepts.size();
    }
    return capacity;
  };
  while (!target_cats.empty() && target_cats.size() < shuffled_cats.size() &&
         category_capacity() + target_cats.size() < config.target_size) {
    target_cats.push_back(shuffled_cats[target_cats.size()]);
  }

  const std::size_t source_overhead =
      1 + (source_categories ? cats.size() : 0);
  const std::size_t target_overhead = 1 + target_cats.size();
  if (config.source_size <= source_overhead ||
      config.target_size <= target_overhead) {
    throw std::invalid_argument("GeneratePair: size too small for layout");
  }
  const std::size_t source_leaves = config.source_size - source_overhead;
  const std::size_t target_leaves = config.target_size - target_overhead;

  const std::vector<ConceptSpec> pool =
      BuildPool(cats, source_leaves + target_leaves);

  // Target concepts come from the target's categories only.
  std::vector<std::size_t> target_candidates;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    if (target_cats.empty() ||
        std::find(target_cats.begin(), target_cats.end(),
                  pool[i].category) != target_cats.end()) {
      target_candidates.push_back(i);
    }
  }
  rng.Shuffle(target_candidates);
  if (target_candidates.size() < target_leaves) {
    throw std::invalid_argument("GeneratePair: concept pool too small");
  }
  std::vector<std::size_t> target_concepts(
      target_candidates.begin(),
      target_candidates.begin() + static_cast<long>(target_leaves));

  // Shared concepts: a prefix of the target concepts.
  const std::size_t shared = std::min(
      target_leaves,
      static_cast<std::size_t>(config.overlap_fraction *
                               static_cast<double>(target_leaves)));
  std::set<std::size_t> shared_set(target_concepts.begin(),
                                   target_concepts.begin() +
                                       static_cast<long>(shared));
  std::set<std::size_t> target_only(
      target_concepts.begin() + static_cast<long>(shared),
      target_concepts.end());

  // Source concepts: all shared ones plus fill from the rest of the pool.
  std::vector<std::size_t> source_concepts(shared_set.begin(),
                                           shared_set.end());

  // 1:n correspondences: real references (including the paper's own
  // poDay/poTime -> orderDate example) often map several source
  // attributes to one target attribute. With probability
  // `kVariantFraction` a shared concept gains a second source attribute
  // carrying the same concept id.
  std::vector<ConceptSpec> extended_pool = pool;
  const double kVariantFraction = 0.35;
  static const char* kVariantWords[] = {"detail", "info", "alt", "aux"};
  for (std::size_t concept_idx : shared_set) {
    if (source_concepts.size() >= source_leaves) break;
    if (!rng.Bernoulli(kVariantFraction)) continue;
    ConceptSpec variant = pool[concept_idx];
    variant.tokens.push_back(
        kVariantWords[rng.UniformIndex(4)]);
    source_concepts.push_back(extended_pool.size());
    extended_pool.push_back(std::move(variant));
  }

  std::vector<std::size_t> filler;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    if (shared_set.count(i) == 0 && target_only.count(i) == 0) {
      filler.push_back(i);
    }
  }
  rng.Shuffle(filler);
  for (std::size_t i = 0;
       i < filler.size() && source_concepts.size() < source_leaves; ++i) {
    source_concepts.push_back(filler[i]);
  }
  if (source_concepts.size() < source_leaves) {
    throw std::invalid_argument("GeneratePair: pool exhausted for source");
  }
  rng.Shuffle(source_concepts);

  // Category lists actually used (order-stable).
  auto used_categories = [&](const std::vector<std::size_t>& concepts) {
    std::set<std::size_t> seen;
    for (std::size_t idx : concepts) seen.insert(extended_pool[idx].category);
    return std::vector<std::size_t>(seen.begin(), seen.end());
  };

  SchemaPlan source_plan{source_concepts, used_categories(source_concepts)};
  SchemaPlan target_plan{target_concepts, used_categories(target_concepts)};

  NamingStyle source_style;
  source_style.camel_case = true;
  source_style.synonym_probability = 0.15 * config.naming_divergence;
  source_style.abbreviation_probability = 0.1 * config.naming_divergence;
  source_style.prefix =
      config.domain == Domain::kPurchaseOrder ? "po" : "";

  NamingStyle target_style;
  target_style.camel_case = config.domain != Domain::kBibliography;
  target_style.synonym_probability = 0.55 * config.naming_divergence;
  target_style.abbreviation_probability = 0.2 * config.naming_divergence;

  GeneratedPair out;
  std::map<std::size_t, std::size_t> source_index, target_index;
  stats::Rng source_rng = rng.Split();
  stats::Rng target_rng = rng.Split();
  out.source = RenderSchema(
      config.domain == Domain::kPurchaseOrder ? "PO1" : "Source", cats,
      extended_pool, source_plan, source_style, source_rng,
      source_categories, &source_index);
  out.target = RenderSchema(
      config.domain == Domain::kPurchaseOrder ? "PO2" : "Target", cats,
      extended_pool, target_plan, target_style, target_rng,
      target_categories, &target_index);

  // The reference pairs every source attribute with every target
  // attribute of the same concept (covers the 1:n variants).
  for (std::size_t t_pool : shared_set) {
    const long long concept_id = extended_pool[t_pool].id;
    const std::size_t t_elem = target_index.at(t_pool);
    for (const auto& [s_pool, s_elem] : source_index) {
      if (extended_pool[s_pool].id == concept_id) {
        out.reference.emplace_back(s_elem, t_elem);
      }
    }
  }
  std::sort(out.reference.begin(), out.reference.end());
  return out;
}

GeneratedPair GeneratePurchaseOrderTask(std::uint64_t seed) {
  GeneratorConfig config;
  config.domain = Domain::kPurchaseOrder;
  config.source_size = 142;
  config.target_size = 46;
  config.overlap_fraction = 0.85;
  config.seed = seed;
  return GeneratePair(config);
}

GeneratedPair GenerateOaeiTask(std::uint64_t seed) {
  GeneratorConfig config;
  config.domain = Domain::kBibliography;
  config.source_size = 121;
  config.target_size = 109;
  config.overlap_fraction = 0.7;
  config.naming_divergence = 0.75;
  config.seed = seed;
  return GeneratePair(config);
}

GeneratedPair GenerateEntityResolutionTask(std::uint64_t seed) {
  GeneratorConfig config;
  config.domain = Domain::kEntityResolution;
  config.source_size = 58;
  config.target_size = 40;
  config.overlap_fraction = 0.8;
  config.naming_divergence = 0.65;
  config.seed = seed;
  return GeneratePair(config);
}

GeneratedPair GenerateWarmupTask(std::uint64_t seed) {
  GeneratorConfig config;
  config.domain = Domain::kUniversity;
  config.source_size = 12;
  config.target_size = 10;
  config.overlap_fraction = 0.9;
  config.naming_divergence = 0.4;
  config.seed = seed;
  return GeneratePair(config);
}

}  // namespace mexi::schema
