#ifndef MEXI_SCHEMA_SCHEMA_H_
#define MEXI_SCHEMA_SCHEMA_H_

#include <cstddef>
#include <string>
#include <vector>

namespace mexi::schema {

/// Primitive datatype of an attribute, used by the composite similarity
/// matcher as a compatibility signal.
enum class DataType {
  kString,
  kInteger,
  kDecimal,
  kDate,
  kTime,
  kBoolean,
  kIdentifier,
};

/// Printable name of a datatype.
std::string DataTypeName(DataType type);

/// One schema element (attribute / ontology concept). Elements form a
/// tree via parent/children indices — the Ontobuilder interface the paper
/// used presents schemata as foldable trees of terms, and the simulator's
/// exploration model walks this tree.
struct Attribute {
  std::string name;
  DataType type = DataType::kString;
  /// Example instance values shown in the properties box.
  std::vector<std::string> instances;
  /// Index of the parent element; -1 for roots.
  int parent = -1;
  /// Indices of child elements.
  std::vector<std::size_t> children;
  /// Depth in the tree (0 for roots); maintained by Schema::AddAttribute.
  int depth = 0;
  /// Identifier of the underlying real-world concept; two attributes in
  /// different schemata correspond exactly when their concept ids match.
  /// -1 for structural (grouping) elements.
  long long concept_id = -1;
};

/// A data source: a named tree of attributes.
///
/// All of `Schema`'s elements are matchable (the paper's model aligns
/// every element pair), but convenience accessors expose the leaves,
/// which carry the actual data semantics.
class Schema {
 public:
  explicit Schema(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Appends an attribute under `parent` (-1 for a root) and returns its
  /// index. Throws std::out_of_range for an invalid parent.
  std::size_t AddAttribute(Attribute attribute, int parent = -1);

  std::size_t size() const { return attributes_.size(); }
  bool empty() const { return attributes_.empty(); }

  const Attribute& attribute(std::size_t i) const {
    return attributes_.at(i);
  }
  Attribute& attribute(std::size_t i) { return attributes_.at(i); }

  const std::vector<Attribute>& attributes() const { return attributes_; }

  /// Indices of root elements.
  std::vector<std::size_t> Roots() const;

  /// Indices of leaf elements (no children).
  std::vector<std::size_t> Leaves() const;

  /// Maximum depth over all elements; -1 when empty.
  int MaxDepth() const;

  /// Pre-order traversal (the order a user scanning the folded tree from
  /// the top would encounter elements). Used by the simulator.
  std::vector<std::size_t> PreOrder() const;

 private:
  void PreOrderVisit(std::size_t node,
                     std::vector<std::size_t>& out) const;

  std::string name_;
  std::vector<Attribute> attributes_;
};

}  // namespace mexi::schema

#endif  // MEXI_SCHEMA_SCHEMA_H_
