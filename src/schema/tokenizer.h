#ifndef MEXI_SCHEMA_TOKENIZER_H_
#define MEXI_SCHEMA_TOKENIZER_H_

#include <string>
#include <vector>

namespace mexi::schema {

/// Splits an attribute name into lowercase word tokens.
///
/// Handles the naming styles the generators emit and real schemata use:
/// camelCase ("poShipToCity" -> po, ship, to, city), snake_case,
/// kebab-case, digit boundaries ("address2" -> address, 2) and acronym
/// runs ("POCode" -> po, code).
std::vector<std::string> TokenizeName(const std::string& name);

/// Lowercases ASCII letters.
std::string ToLowerAscii(const std::string& text);

/// Character n-grams (lowercased, n >= 1); returns empty for short input.
std::vector<std::string> CharacterNgrams(const std::string& text,
                                         std::size_t n);

}  // namespace mexi::schema

#endif  // MEXI_SCHEMA_TOKENIZER_H_
