#include "schema/tokenizer.h"

#include <cctype>

namespace mexi::schema {

std::string ToLowerAscii(const std::string& text) {
  std::string out = text;
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::vector<std::string> TokenizeName(const std::string& name) {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&]() {
    if (!current.empty()) {
      tokens.push_back(ToLowerAscii(current));
      current.clear();
    }
  };

  for (std::size_t i = 0; i < name.size(); ++i) {
    const unsigned char c = static_cast<unsigned char>(name[i]);
    if (c == '_' || c == '-' || c == ' ' || c == '.' || c == '/') {
      flush();
      continue;
    }
    const bool is_digit = std::isdigit(c) != 0;
    const bool is_upper = std::isupper(c) != 0;
    if (!current.empty()) {
      const unsigned char prev =
          static_cast<unsigned char>(current.back());
      const bool prev_digit = std::isdigit(prev) != 0;
      const bool prev_upper = std::isupper(prev) != 0;
      // Boundary cases: aB | 9a | a9 | ABc (acronym followed by word).
      if (is_digit != prev_digit) {
        flush();
      } else if (is_upper && !prev_upper) {
        flush();
      } else if (!is_upper && prev_upper && current.size() > 1 &&
                 !prev_digit && !is_digit) {
        // "POCode": split the trailing capital off the acronym run.
        const char kept = current.back();
        current.pop_back();
        flush();
        current.push_back(kept);
      }
    }
    current.push_back(static_cast<char>(c));
  }
  flush();
  return tokens;
}

std::vector<std::string> CharacterNgrams(const std::string& text,
                                         std::size_t n) {
  std::vector<std::string> out;
  if (n == 0) return out;
  const std::string lower = ToLowerAscii(text);
  if (lower.size() < n) return out;
  for (std::size_t i = 0; i + n <= lower.size(); ++i) {
    out.push_back(lower.substr(i, n));
  }
  return out;
}

}  // namespace mexi::schema
