#include "stats/pca.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace mexi::stats {

void SymmetricEigen(const std::vector<std::vector<double>>& matrix,
                    std::vector<double>* eigenvalues,
                    std::vector<std::vector<double>>* eigenvectors) {
  const std::size_t n = matrix.size();
  for (const auto& row : matrix) {
    if (row.size() != n) {
      throw std::invalid_argument("SymmetricEigen: matrix must be square");
    }
  }
  // Working copy A and accumulated rotations V.
  std::vector<std::vector<double>> a = matrix;
  std::vector<std::vector<double>> v(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) v[i][i] = 1.0;

  const int kMaxSweeps = 100;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) off += a[p][q] * a[p][q];
    }
    if (off < 1e-24) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        if (std::fabs(a[p][q]) < 1e-18) continue;
        const double theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) +
                          std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Apply Givens rotation to A on both sides.
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a[k][p];
          const double akq = a[k][q];
          a[k][p] = c * akp - s * akq;
          a[k][q] = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a[p][k];
          const double aqk = a[q][k];
          a[p][k] = c * apk - s * aqk;
          a[q][k] = s * apk + c * aqk;
        }
        // Accumulate rotation into V.
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v[k][p];
          const double vkq = v[k][q];
          v[k][p] = c * vkp - s * vkq;
          v[k][q] = s * vkp + c * vkq;
        }
      }
    }
  }

  // Extract and sort by descending eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return a[x][x] > a[y][y]; });

  eigenvalues->assign(n, 0.0);
  eigenvectors->assign(n, std::vector<double>(n, 0.0));
  for (std::size_t k = 0; k < n; ++k) {
    (*eigenvalues)[k] = a[order[k]][order[k]];
    for (std::size_t d = 0; d < n; ++d) {
      (*eigenvectors)[k][d] = v[d][order[k]];
    }
  }
}

PcaResult Pca(const std::vector<std::vector<double>>& rows) {
  PcaResult result;
  if (rows.empty()) return result;
  const std::size_t dims = rows[0].size();
  for (const auto& row : rows) {
    if (row.size() != dims) {
      throw std::invalid_argument("Pca: ragged input");
    }
  }
  if (dims == 0) return result;

  // Column means.
  std::vector<double> mean(dims, 0.0);
  for (const auto& row : rows) {
    for (std::size_t d = 0; d < dims; ++d) mean[d] += row[d];
  }
  for (auto& m : mean) m /= static_cast<double>(rows.size());

  // Covariance (population normalization; n is small and only ratios are
  // consumed downstream).
  std::vector<std::vector<double>> cov(dims, std::vector<double>(dims, 0.0));
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < dims; ++i) {
      const double di = row[i] - mean[i];
      for (std::size_t j = i; j < dims; ++j) {
        cov[i][j] += di * (row[j] - mean[j]);
      }
    }
  }
  const double denom = static_cast<double>(rows.size());
  for (std::size_t i = 0; i < dims; ++i) {
    for (std::size_t j = i; j < dims; ++j) {
      cov[i][j] /= denom;
      cov[j][i] = cov[i][j];
    }
  }

  SymmetricEigen(cov, &result.eigenvalues, &result.eigenvectors);
  // Numerical noise can leave tiny negatives; clamp for downstream ratios.
  for (auto& ev : result.eigenvalues) ev = std::max(ev, 0.0);
  const double trace =
      std::accumulate(result.eigenvalues.begin(), result.eigenvalues.end(),
                      0.0);
  result.explained_variance_ratio.assign(result.eigenvalues.size(), 0.0);
  if (trace > 0.0) {
    for (std::size_t k = 0; k < result.eigenvalues.size(); ++k) {
      result.explained_variance_ratio[k] = result.eigenvalues[k] / trace;
    }
  }
  return result;
}

}  // namespace mexi::stats
