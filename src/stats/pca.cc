#include "stats/pca.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace mexi::stats {

namespace {

// cov_i[j] += di * (row[j] - mean[j]) for j in [i, dims). Every j cell
// is an independent chain (the r loop stays outside and serial), and
// the vector form runs the exact scalar operations per element — sub,
// mul, add, no contraction — so it is bitwise identical to the plain
// loop Pca runs.
inline void CovAccumRow(double di, const double* __restrict row,
                        const double* __restrict mean,
                        double* __restrict cov_i, std::size_t i,
                        std::size_t dims) {
#if defined(__AVX2__)
  const __m256d dv = _mm256_set1_pd(di);
  std::size_t j = i;
  for (; j + 4 <= dims; j += 4) {
    const __m256d diff = _mm256_sub_pd(_mm256_loadu_pd(row + j),
                                       _mm256_loadu_pd(mean + j));
    _mm256_storeu_pd(cov_i + j,
                     _mm256_add_pd(_mm256_loadu_pd(cov_i + j),
                                   _mm256_mul_pd(dv, diff)));
  }
  for (; j < dims; ++j) cov_i[j] += di * (row[j] - mean[j]);
#else
  for (std::size_t j = i; j < dims; ++j) cov_i[j] += di * (row[j] - mean[j]);
#endif
}

// Jacobi row-pair rotation: ap[k], aq[k] <- (c*ap[k] - s*aq[k],
// s*ap[k] + c*aq[k]). Rows p != q never overlap and each k is
// independent with the exact scalar operation tree, so the 4-wide form
// is bitwise identical to SymmetricEigen's scalar pass.
inline void RotateRowPair(double* __restrict ap, double* __restrict aq,
                          double c, double s, std::size_t n) {
#if defined(__AVX2__)
  const __m256d cv = _mm256_set1_pd(c);
  const __m256d sv = _mm256_set1_pd(s);
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const __m256d vp = _mm256_loadu_pd(ap + k);
    const __m256d vq = _mm256_loadu_pd(aq + k);
    _mm256_storeu_pd(ap + k, _mm256_sub_pd(_mm256_mul_pd(cv, vp),
                                           _mm256_mul_pd(sv, vq)));
    _mm256_storeu_pd(aq + k, _mm256_add_pd(_mm256_mul_pd(sv, vp),
                                           _mm256_mul_pd(cv, vq)));
  }
  for (; k < n; ++k) {
    const double apk = ap[k];
    const double aqk = aq[k];
    ap[k] = c * apk - s * aqk;
    aq[k] = s * apk + c * aqk;
  }
#else
  for (std::size_t k = 0; k < n; ++k) {
    const double apk = ap[k];
    const double aqk = aq[k];
    ap[k] = c * apk - s * aqk;
    aq[k] = s * apk + c * aqk;
  }
#endif
}

}  // namespace

void SymmetricEigen(const std::vector<std::vector<double>>& matrix,
                    std::vector<double>* eigenvalues,
                    std::vector<std::vector<double>>* eigenvectors) {
  const std::size_t n = matrix.size();
  for (const auto& row : matrix) {
    if (row.size() != n) {
      throw std::invalid_argument("SymmetricEigen: matrix must be square");
    }
  }
  // Working copy A and accumulated rotations V.
  std::vector<std::vector<double>> a = matrix;
  std::vector<std::vector<double>> v(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) v[i][i] = 1.0;

  const int kMaxSweeps = 100;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) off += a[p][q] * a[p][q];
    }
    if (off < 1e-24) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        if (std::fabs(a[p][q]) < 1e-18) continue;
        const double theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) +
                          std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Apply Givens rotation to A on both sides.
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a[k][p];
          const double akq = a[k][q];
          a[k][p] = c * akp - s * akq;
          a[k][q] = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a[p][k];
          const double aqk = a[q][k];
          a[p][k] = c * apk - s * aqk;
          a[q][k] = s * apk + c * aqk;
        }
        // Accumulate rotation into V.
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v[k][p];
          const double vkq = v[k][q];
          v[k][p] = c * vkp - s * vkq;
          v[k][q] = s * vkp + c * vkq;
        }
      }
    }
  }

  // Extract and sort by descending eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return a[x][x] > a[y][y]; });

  eigenvalues->assign(n, 0.0);
  eigenvectors->assign(n, std::vector<double>(n, 0.0));
  for (std::size_t k = 0; k < n; ++k) {
    (*eigenvalues)[k] = a[order[k]][order[k]];
    for (std::size_t d = 0; d < n; ++d) {
      (*eigenvectors)[k][d] = v[d][order[k]];
    }
  }
}

PcaResult Pca(const std::vector<std::vector<double>>& rows) {
  PcaResult result;
  if (rows.empty()) return result;
  const std::size_t dims = rows[0].size();
  for (const auto& row : rows) {
    if (row.size() != dims) {
      throw std::invalid_argument("Pca: ragged input");
    }
  }
  if (dims == 0) return result;

  // Column means.
  std::vector<double> mean(dims, 0.0);
  for (const auto& row : rows) {
    for (std::size_t d = 0; d < dims; ++d) mean[d] += row[d];
  }
  for (auto& m : mean) m /= static_cast<double>(rows.size());

  // Covariance (population normalization; n is small and only ratios are
  // consumed downstream).
  std::vector<std::vector<double>> cov(dims, std::vector<double>(dims, 0.0));
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < dims; ++i) {
      const double di = row[i] - mean[i];
      for (std::size_t j = i; j < dims; ++j) {
        cov[i][j] += di * (row[j] - mean[j]);
      }
    }
  }
  const double denom = static_cast<double>(rows.size());
  for (std::size_t i = 0; i < dims; ++i) {
    for (std::size_t j = i; j < dims; ++j) {
      cov[i][j] /= denom;
      cov[j][i] = cov[i][j];
    }
  }

  SymmetricEigen(cov, &result.eigenvalues, &result.eigenvectors);
  // Numerical noise can leave tiny negatives; clamp for downstream ratios.
  for (auto& ev : result.eigenvalues) ev = std::max(ev, 0.0);
  const double trace =
      std::accumulate(result.eigenvalues.begin(), result.eigenvalues.end(),
                      0.0);
  result.explained_variance_ratio.assign(result.eigenvalues.size(), 0.0);
  if (trace > 0.0) {
    for (std::size_t k = 0; k < result.eigenvalues.size(); ++k) {
      result.explained_variance_ratio[k] = result.eigenvalues[k] / trace;
    }
  }
  return result;
}

void PcaExplainedVarianceRatio(const double* data, std::size_t n_rows,
                               std::size_t dims, PcaScratch& scratch,
                               std::vector<double>& ratio) {
  ratio.clear();
  if (n_rows == 0 || dims == 0) return;

  // Column means, accumulated row by row exactly as Pca does.
  scratch.mean.assign(dims, 0.0);
  double* mean = scratch.mean.data();
  for (std::size_t r = 0; r < n_rows; ++r) {
    const double* row = data + r * dims;
    for (std::size_t d = 0; d < dims; ++d) mean[d] += row[d];
  }
  for (std::size_t d = 0; d < dims; ++d) {
    mean[d] /= static_cast<double>(n_rows);
  }

  // Covariance upper triangle, then normalize and mirror — same
  // accumulation order as Pca, on one flat [dims x dims] slab.
  scratch.cov.assign(dims * dims, 0.0);
  double* cov = scratch.cov.data();
  for (std::size_t r = 0; r < n_rows; ++r) {
    const double* row = data + r * dims;
    for (std::size_t i = 0; i < dims; ++i) {
      const double di = row[i] - mean[i];
      CovAccumRow(di, row, mean, cov + i * dims, i, dims);
    }
  }
  const double denom = static_cast<double>(n_rows);
  for (std::size_t i = 0; i < dims; ++i) {
    for (std::size_t j = i; j < dims; ++j) {
      cov[i * dims + j] /= denom;
      cov[j * dims + i] = cov[i * dims + j];
    }
  }

  // Cyclic Jacobi, eigenvalues only: SymmetricEigen's sweep verbatim
  // (same off test, same skip threshold, same rotation arithmetic in the
  // same order) minus the V accumulation, which the eigenvalues never
  // read. The diagonalization runs in place on the covariance slab.
  const std::size_t n = dims;
  double* a = cov;
  const int kMaxSweeps = 100;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        off += a[p * n + q] * a[p * n + q];
      }
    }
    if (off < 1e-24) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        if (std::fabs(a[p * n + q]) < 1e-18) continue;
        const double theta =
            (a[q * n + q] - a[p * n + p]) / (2.0 * a[p * n + q]);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) +
                          std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a[k * n + p];
          const double akq = a[k * n + q];
          a[k * n + p] = c * akp - s * akq;
          a[k * n + q] = s * akp + c * akq;
        }
        RotateRowPair(a + p * n, a + q * n, c, s, n);
      }
    }
  }

  // Descending diagonal order, clamp, and trace — Pca's exact sequence,
  // so the trace sums the clamped eigenvalues in the same sorted order.
  scratch.order.resize(n);
  std::iota(scratch.order.begin(), scratch.order.end(), 0);
  std::sort(scratch.order.begin(), scratch.order.end(),
            [&](std::size_t x, std::size_t y) {
              return a[x * n + x] > a[y * n + y];
            });
  ratio.resize(n);
  double trace = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    ratio[k] = std::max(a[scratch.order[k] * n + scratch.order[k]], 0.0);
    trace += ratio[k];
  }
  if (trace > 0.0) {
    for (std::size_t k = 0; k < n; ++k) ratio[k] /= trace;
  } else {
    std::fill(ratio.begin(), ratio.end(), 0.0);
  }
}

}  // namespace mexi::stats
