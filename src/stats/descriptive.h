#ifndef MEXI_STATS_DESCRIPTIVE_H_
#define MEXI_STATS_DESCRIPTIVE_H_

#include <vector>

namespace mexi::stats {

/// Descriptive statistics over a sample of doubles.
///
/// All functions that require a non-empty sample return 0.0 on an empty
/// input (documented per function) so that feature extraction over empty
/// traces degrades gracefully instead of crashing; callers that must
/// distinguish "no data" should check sizes themselves.

/// Sum of the sample; 0 for an empty sample.
double Sum(const std::vector<double>& values);

/// Arithmetic mean; 0 for an empty sample.
double Mean(const std::vector<double>& values);

/// Population variance (divides by n); 0 for samples of size < 1.
double Variance(const std::vector<double>& values);

/// Sample variance (divides by n-1); 0 for samples of size < 2.
double SampleVariance(const std::vector<double>& values);

/// Population standard deviation.
double StdDev(const std::vector<double>& values);

/// Smallest element; 0 for an empty sample.
double Min(const std::vector<double>& values);

/// Largest element; 0 for an empty sample.
double Max(const std::vector<double>& values);

/// Median (average of the middle two for even sizes); 0 when empty.
double Median(const std::vector<double>& values);

/// Linear-interpolated percentile, p in [0, 100]; 0 when empty.
/// Matches numpy.percentile's default "linear" interpolation, which the
/// paper's threshold-setting (80th / 20th train percentiles) relies on.
double Percentile(const std::vector<double>& values, double p);

/// Fisher-Pearson skewness coefficient; 0 for degenerate samples.
double Skewness(const std::vector<double>& values);

/// Excess kurtosis; 0 for degenerate samples.
double Kurtosis(const std::vector<double>& values);

/// Shannon entropy of a discrete distribution given by `weights`
/// (non-negative, not necessarily normalized); 0 for empty/degenerate.
double Entropy(const std::vector<double>& weights);

/// Standard normal cumulative distribution function.
double NormalCdf(double z);

/// Two-sided p-value for a standard normal statistic z.
double TwoSidedPValue(double z);

/// Clamps x into [lo, hi].
double Clamp(double x, double lo, double hi);

}  // namespace mexi::stats

#endif  // MEXI_STATS_DESCRIPTIVE_H_
