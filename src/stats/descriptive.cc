#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

namespace mexi::stats {

double Sum(const std::vector<double>& values) {
  double total = 0.0;
  for (double v : values) total += v;
  return total;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return Sum(values) / static_cast<double>(values.size());
}

double Variance(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  const double mu = Mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - mu) * (v - mu);
  return acc / static_cast<double>(values.size());
}

double SampleVariance(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double mu = Mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - mu) * (v - mu);
  return acc / static_cast<double>(values.size() - 1);
}

double StdDev(const std::vector<double>& values) {
  return std::sqrt(Variance(values));
}

double Min(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return *std::min_element(values.begin(), values.end());
}

double Max(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return *std::max_element(values.begin(), values.end());
}

double Median(const std::vector<double>& values) {
  return Percentile(values, 50.0);
}

double Percentile(const std::vector<double>& values, double p) {
  if (values.empty()) return 0.0;
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  p = Clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
  if (lo == hi) return sorted[lo];
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double Skewness(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double mu = Mean(values);
  const double sd = StdDev(values);
  if (sd <= 0.0) return 0.0;
  double acc = 0.0;
  for (double v : values) {
    const double z = (v - mu) / sd;
    acc += z * z * z;
  }
  return acc / static_cast<double>(values.size());
}

double Kurtosis(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double mu = Mean(values);
  const double sd = StdDev(values);
  if (sd <= 0.0) return 0.0;
  double acc = 0.0;
  for (double v : values) {
    const double z = (v - mu) / sd;
    acc += z * z * z * z;
  }
  return acc / static_cast<double>(values.size()) - 3.0;
}

double Entropy(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) total += w;
  }
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (double w : weights) {
    if (w <= 0.0) continue;
    const double p = w / total;
    h -= p * std::log2(p);
  }
  return h;
}

double NormalCdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double TwoSidedPValue(double z) {
  return 2.0 * (1.0 - NormalCdf(std::fabs(z)));
}

double Clamp(double x, double lo, double hi) {
  return std::max(lo, std::min(hi, x));
}

}  // namespace mexi::stats
