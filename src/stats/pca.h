#ifndef MEXI_STATS_PCA_H_
#define MEXI_STATS_PCA_H_

#include <vector>

namespace mexi::stats {

/// Result of a principal component analysis.
struct PcaResult {
  /// Eigenvalues of the covariance matrix, descending.
  std::vector<double> eigenvalues;
  /// Matching unit eigenvectors, eigenvectors[k][d] is component k's
  /// loading on input dimension d.
  std::vector<std::vector<double>> eigenvectors;
  /// Per-component explained-variance ratios (eigenvalue / trace).
  std::vector<double> explained_variance_ratio;
};

/// Symmetric eigendecomposition via the cyclic Jacobi method.
///
/// `matrix` must be square and symmetric (row-major, n*n). Returns
/// eigenvalues in descending order with matching eigenvectors. Used by
/// `Pca` and directly testable.
void SymmetricEigen(const std::vector<std::vector<double>>& matrix,
                    std::vector<double>* eigenvalues,
                    std::vector<std::vector<double>>* eigenvectors);

/// PCA over `rows` (samples x dimensions). Centers each dimension, builds
/// the covariance matrix and decomposes it. Degenerate inputs (fewer than
/// 2 rows) produce zero eigenvalues.
///
/// The LRSM matching predictors `pca1`/`pca2` are the top-2 explained
/// variance ratios of the matching matrix viewed as a sample of rows —
/// a diversity/uncertainty signal (a rank-1 matrix concentrates all
/// variance in pca1).
PcaResult Pca(const std::vector<std::vector<double>>& rows);

}  // namespace mexi::stats

#endif  // MEXI_STATS_PCA_H_
