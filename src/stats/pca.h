#ifndef MEXI_STATS_PCA_H_
#define MEXI_STATS_PCA_H_

#include <vector>

namespace mexi::stats {

/// Result of a principal component analysis.
struct PcaResult {
  /// Eigenvalues of the covariance matrix, descending.
  std::vector<double> eigenvalues;
  /// Matching unit eigenvectors, eigenvectors[k][d] is component k's
  /// loading on input dimension d.
  std::vector<std::vector<double>> eigenvectors;
  /// Per-component explained-variance ratios (eigenvalue / trace).
  std::vector<double> explained_variance_ratio;
};

/// Symmetric eigendecomposition via the cyclic Jacobi method.
///
/// `matrix` must be square and symmetric (row-major, n*n). Returns
/// eigenvalues in descending order with matching eigenvectors. Used by
/// `Pca` and directly testable.
void SymmetricEigen(const std::vector<std::vector<double>>& matrix,
                    std::vector<double>* eigenvalues,
                    std::vector<std::vector<double>>* eigenvectors);

/// PCA over `rows` (samples x dimensions). Centers each dimension, builds
/// the covariance matrix and decomposes it. Degenerate inputs (fewer than
/// 2 rows) produce zero eigenvalues.
///
/// The LRSM matching predictors `pca1`/`pca2` are the top-2 explained
/// variance ratios of the matching matrix viewed as a sample of rows —
/// a diversity/uncertainty signal (a rank-1 matrix concentrates all
/// variance in pca1).
PcaResult Pca(const std::vector<std::vector<double>>& rows);

/// Reusable flat slabs for `PcaExplainedVarianceRatio`. Callers serving
/// trace after trace pass the same instance back in so the mean /
/// covariance / Jacobi buffers are allocated once per population instead
/// of ~2n heap rows per call; grown as needed, never shrunk.
struct PcaScratch {
  std::vector<double> mean;
  std::vector<double> cov;      // dims x dims, row-major
  std::vector<std::size_t> order;
};

/// Serve-path twin of `Pca` that returns only `explained_variance_ratio`
/// — the sole output the LRSM predictors consume.
///
/// `data` is a row-major [n_rows x dims] slab. The arithmetic is `Pca`'s
/// operation for operation (same mean and covariance accumulation order,
/// same cyclic Jacobi sweep with identical rotation formulas, thresholds
/// and convergence test, same descending sort and trace sum), so the
/// ratios are bitwise identical to `Pca(rows).explained_variance_ratio`.
/// It differs only in what it does NOT do: no eigenvector accumulation
/// (eigenvalues never read V, so dropping it cannot change a bit), no
/// per-row heap copies, and flat storage in caller-owned scratch. `Pca`
/// stays the allocation-free-of-state reference the identity tests
/// compare against.
void PcaExplainedVarianceRatio(const double* data, std::size_t n_rows,
                               std::size_t dims, PcaScratch& scratch,
                               std::vector<double>& ratio);

}  // namespace mexi::stats

#endif  // MEXI_STATS_PCA_H_
