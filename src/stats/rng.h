#ifndef MEXI_STATS_RNG_H_
#define MEXI_STATS_RNG_H_

#include <cstdint>
#include <vector>

namespace mexi::stats {

/// Deterministic random number generator used throughout the library.
///
/// All stochastic components (simulation, classifiers, bootstrap tests,
/// neural-network initialization) draw from an `Rng` so that every
/// experiment is reproducible given a seed. The generator is a
/// SplitMix64-seeded xoshiro256** — fast, high quality, and independent of
/// the standard library's unspecified distributions, so results are
/// bit-identical across platforms.
class Rng {
 public:
  /// Creates a generator seeded with `seed`.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  Rng(const Rng&) = default;
  Rng& operator=(const Rng&) = default;

  /// Returns the next raw 64-bit value.
  std::uint64_t NextU64();

  /// Returns a double uniformly distributed in [0, 1).
  double Uniform();

  /// Returns a double uniformly distributed in [lo, hi).
  double Uniform(double lo, double hi);

  /// Returns an integer uniformly distributed in [0, n). Requires n > 0.
  std::size_t UniformIndex(std::size_t n);

  /// Returns an integer uniformly distributed in [lo, hi] inclusive.
  int UniformInt(int lo, int hi);

  /// Returns a sample from the standard normal distribution
  /// (Box-Muller; one value per call, the pair's twin is cached).
  double Gaussian();

  /// Returns a sample from N(mean, stddev^2).
  double Gaussian(double mean, double stddev);

  /// Returns true with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Returns a sample from an exponential distribution with rate lambda.
  double Exponential(double lambda);

  /// Returns a Beta(alpha, beta) sample (via two Gamma draws).
  double Beta(double alpha, double beta);

  /// Returns a Gamma(shape, scale) sample (Marsaglia-Tsang).
  double Gamma(double shape, double scale);

  /// Fisher-Yates shuffles `values` in place.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      std::size_t j = UniformIndex(i);
      std::swap(values[i - 1], values[j]);
    }
  }

  /// Returns `k` indices sampled without replacement from [0, n).
  /// Requires k <= n.
  std::vector<std::size_t> SampleWithoutReplacement(std::size_t n,
                                                    std::size_t k);

  /// Derives an independent child generator by drawing from this one;
  /// useful for giving each simulated matcher or each bootstrap
  /// replicate its own stream. Advances this generator, so the children
  /// depend on the order of Split() calls — when call order is not
  /// naturally sequential (parallel sites), prefer Fork().
  Rng Split();

  /// The seed of sub-stream `stream_id`: the construction seed offset by
  /// the stream id. The constructor pushes every seed word through the
  /// full SplitMix64 avalanche mix, so neighbouring ids still yield
  /// statistically independent generators — this is the SplitMix
  /// sequence-split construction, centralized so callers stop
  /// hand-rolling `seed + i`. Pure: depends only on the construction
  /// seed, never on draw state. Reserve distinct id ranges per call site
  /// when one generator feeds several forking sites.
  std::uint64_t SubSeed(std::uint64_t stream_id) const {
    return seed_ + stream_id;
  }

  /// Child generator on sub-stream `stream_id`. Unlike Split(), Fork is
  /// const and order-independent: Fork(i) is a pure function of
  /// (construction seed, i), so any thread schedule reproduces the same
  /// child streams.
  Rng Fork(std::uint64_t stream_id) const { return Rng(SubSeed(stream_id)); }

  /// Complete generator state for checkpointing. Restoring it resumes
  /// the draw sequence exactly where SaveState left it, including the
  /// Box-Muller half-pair cache — required for bitwise-identical
  /// resumed training runs.
  struct State {
    std::uint64_t seed = 0;
    std::uint64_t words[4] = {0, 0, 0, 0};
    double cached_gaussian = 0.0;
    bool has_cached_gaussian = false;
  };

  State SaveState() const;
  void LoadState(const State& state);

 private:
  std::uint64_t seed_ = 0;
  std::uint64_t state_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace mexi::stats

#endif  // MEXI_STATS_RNG_H_
