#include "stats/rng.h"

#include <cmath>
#include <stdexcept>

namespace mexi::stats {

namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

std::size_t Rng::UniformIndex(std::size_t n) {
  if (n == 0) throw std::invalid_argument("UniformIndex: n must be > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  std::uint64_t v = NextU64();
  while (v >= limit) v = NextU64();
  return static_cast<std::size_t>(v % n);
}

int Rng::UniformInt(int lo, int hi) {
  if (hi < lo) throw std::invalid_argument("UniformInt: hi < lo");
  return lo + static_cast<int>(UniformIndex(
                  static_cast<std::size_t>(hi - lo) + 1));
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = Uniform();
  while (u1 <= 1e-300) u1 = Uniform();
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return Uniform() < p;
}

double Rng::Exponential(double lambda) {
  if (lambda <= 0.0) throw std::invalid_argument("Exponential: lambda <= 0");
  double u = Uniform();
  while (u <= 1e-300) u = Uniform();
  return -std::log(u) / lambda;
}

double Rng::Gamma(double shape, double scale) {
  if (shape <= 0.0 || scale <= 0.0) {
    throw std::invalid_argument("Gamma: shape and scale must be > 0");
  }
  if (shape < 1.0) {
    // Boost the shape and correct with a power of a uniform.
    const double u = std::max(Uniform(), 1e-300);
    return Gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia & Tsang method.
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  while (true) {
    double x = Gaussian();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    const double u = Uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return scale * d * v;
    if (std::log(std::max(u, 1e-300)) <
        0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return scale * d * v;
    }
  }
}

double Rng::Beta(double alpha, double beta) {
  const double x = Gamma(alpha, 1.0);
  const double y = Gamma(beta, 1.0);
  return x / (x + y);
}

std::vector<std::size_t> Rng::SampleWithoutReplacement(std::size_t n,
                                                       std::size_t k) {
  if (k > n) {
    throw std::invalid_argument("SampleWithoutReplacement: k > n");
  }
  std::vector<std::size_t> indices(n);
  for (std::size_t i = 0; i < n; ++i) indices[i] = i;
  // Partial Fisher-Yates: only the first k positions are needed.
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + UniformIndex(n - i);
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

Rng Rng::Split() { return Rng(NextU64() ^ 0xD1B54A32D192ED03ULL); }

Rng::State Rng::SaveState() const {
  State state;
  state.seed = seed_;
  for (int i = 0; i < 4; ++i) state.words[i] = state_[i];
  state.cached_gaussian = cached_gaussian_;
  state.has_cached_gaussian = has_cached_gaussian_;
  return state;
}

void Rng::LoadState(const State& state) {
  seed_ = state.seed;
  for (int i = 0; i < 4; ++i) state_[i] = state.words[i];
  cached_gaussian_ = state.cached_gaussian;
  has_cached_gaussian_ = state.has_cached_gaussian;
}

}  // namespace mexi::stats
