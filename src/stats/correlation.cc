#include "stats/correlation.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "stats/descriptive.h"

namespace mexi::stats {

namespace {

void CheckSameSize(const std::vector<double>& x,
                   const std::vector<double>& y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("correlation: size mismatch");
  }
}

}  // namespace

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  CheckSameSize(x, y);
  const std::size_t n = x.size();
  if (n < 2) return 0.0;
  const double mx = Mean(x);
  const double my = Mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> AverageRanks(const std::vector<double>& values) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return values[a] < values[b];
  });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    // Positions i..j (0-based) are tied; assign the mean 1-based rank.
    const double mean_rank = (static_cast<double>(i) +
                              static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = mean_rank;
    i = j + 1;
  }
  return ranks;
}

double SpearmanCorrelation(const std::vector<double>& x,
                           const std::vector<double>& y) {
  CheckSameSize(x, y);
  if (x.size() < 2) return 0.0;
  return PearsonCorrelation(AverageRanks(x), AverageRanks(y));
}

CorrelationResult KendallTau(const std::vector<double>& x,
                             const std::vector<double>& y) {
  CheckSameSize(x, y);
  CorrelationResult result;
  const std::size_t n = x.size();
  if (n < 2) return result;
  long long concordant = 0, discordant = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double prod = (x[i] - x[j]) * (y[i] - y[j]);
      if (prod > 0.0) {
        ++concordant;
      } else if (prod < 0.0) {
        ++discordant;
      }
    }
  }
  result.concordant = concordant;
  result.discordant = discordant;
  const double all_pairs =
      static_cast<double>(n) * static_cast<double>(n - 1) / 2.0;
  result.value = (static_cast<double>(concordant) -
                  static_cast<double>(discordant)) /
                 all_pairs;
  // Normal approximation: var(tau) = 2(2n+5) / (9n(n-1)).
  const double variance =
      2.0 * (2.0 * static_cast<double>(n) + 5.0) /
      (9.0 * static_cast<double>(n) * static_cast<double>(n - 1));
  result.p_value = TwoSidedPValue(result.value / std::sqrt(variance));
  return result;
}

CorrelationResult GoodmanKruskalGamma(const std::vector<double>& x,
                                      const std::vector<double>& y) {
  CheckSameSize(x, y);
  CorrelationResult result;
  const std::size_t n = x.size();
  if (n < 2) return result;

  long long concordant = 0;
  long long discordant = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dx = x[i] - x[j];
      const double dy = y[i] - y[j];
      const double prod = dx * dy;
      if (prod > 0.0) {
        ++concordant;
      } else if (prod < 0.0) {
        ++discordant;
      }
      // Ties in either variable are ignored by gamma.
    }
  }
  result.concordant = concordant;
  result.discordant = discordant;
  const double total = static_cast<double>(concordant + discordant);
  if (total <= 0.0) return result;  // All ties: no association measurable.
  result.value = (static_cast<double>(concordant) -
                  static_cast<double>(discordant)) / total;

  // Asymptotic z-test (Siegel & Castellan's approximation). When |gamma|
  // is exactly 1 the approximation degenerates; with more than a handful
  // of untied pairs this is overwhelming evidence, while tiny samples
  // (like the 5-decision example in the paper, p = 0.5) stay insignificant.
  const double g = result.value;
  if (std::fabs(g) >= 1.0) {
    result.p_value = total >= 8.0 ? 0.0 : 0.5;
    return result;
  }
  const double z =
      g * std::sqrt(total / (static_cast<double>(n) * (1.0 - g * g)));
  result.p_value = TwoSidedPValue(z);
  return result;
}

}  // namespace mexi::stats
