#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace mexi::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0.0) {
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be > 0");
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must be > lo");
}

void Histogram::Add(double value) { AddWeighted(value, 1.0); }

void Histogram::AddWeighted(double value, double weight) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  long long idx = static_cast<long long>(std::floor((value - lo_) / width));
  idx = std::max<long long>(0,
                            std::min<long long>(
                                idx,
                                static_cast<long long>(counts_.size()) - 1));
  counts_[static_cast<std::size_t>(idx)] += weight;
  total_ += weight;
}

double Histogram::BinLower(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

std::vector<double> Histogram::Normalized() const {
  std::vector<double> out(counts_.size(), 0.0);
  if (total_ <= 0.0) return out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out[i] = counts_[i] / total_;
  }
  return out;
}

std::size_t Histogram::ArgMax() const {
  return static_cast<std::size_t>(
      std::max_element(counts_.begin(), counts_.end()) - counts_.begin());
}

std::string Histogram::ToAscii(std::size_t width) const {
  std::ostringstream out;
  const double peak = counts_.empty()
                          ? 0.0
                          : *std::max_element(counts_.begin(), counts_.end());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::size_t bar =
        peak > 0.0 ? static_cast<std::size_t>(std::lround(
                         counts_[i] / peak * static_cast<double>(width)))
                   : 0;
    out << "[" << BinLower(i) << ") " << std::string(bar, '#') << " "
        << counts_[i] << "\n";
  }
  return out.str();
}

}  // namespace mexi::stats
