#ifndef MEXI_STATS_CORRELATION_H_
#define MEXI_STATS_CORRELATION_H_

#include <vector>

namespace mexi::stats {

/// Result of an association measure accompanied by a significance test.
struct CorrelationResult {
  /// The association coefficient (meaning depends on the measure).
  double value = 0.0;
  /// Two-sided p-value of the null hypothesis "no association".
  double p_value = 1.0;
  /// Number of concordant pairs (rank-based measures only).
  long long concordant = 0;
  /// Number of discordant pairs (rank-based measures only).
  long long discordant = 0;
};

/// Pearson product-moment correlation; 0 for degenerate inputs.
/// Requires x.size() == y.size().
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

/// Spearman rank correlation (Pearson over average ranks).
double SpearmanCorrelation(const std::vector<double>& x,
                           const std::vector<double>& y);

/// Goodman and Kruskal's gamma between two paired samples, with an
/// asymptotic two-sided significance test.
///
/// This is the resolution measure of the paper's Eq. 4: `x` holds the
/// matcher's confidences and `y` the 0/1 correctness of each decision.
/// Gamma counts concordant (Nc) and discordant (Nd) pairs, ignoring
/// ties: gamma = (Nc - Nd) / (Nc + Nd). Significance uses the standard
/// normal approximation z = gamma * sqrt((Nc + Nd) / (n (1 - gamma^2))).
/// Degenerate inputs (fewer than 2 points, all ties) yield value 0 and
/// p_value 1.
CorrelationResult GoodmanKruskalGamma(const std::vector<double>& x,
                                      const std::vector<double>& y);

/// Kendall's tau-a with the same normal-approximation significance test
/// as gamma (pairs tied in either variable count toward the denominator,
/// unlike gamma — tau penalizes ties, gamma ignores them).
CorrelationResult KendallTau(const std::vector<double>& x,
                             const std::vector<double>& y);

/// Converts values to average ranks (1-based, ties share the mean rank).
std::vector<double> AverageRanks(const std::vector<double>& values);

}  // namespace mexi::stats

#endif  // MEXI_STATS_CORRELATION_H_
