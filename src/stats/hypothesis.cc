#include "stats/hypothesis.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/descriptive.h"

namespace mexi::stats {

namespace {

std::vector<double> ResampleWithReplacement(const std::vector<double>& sample,
                                            Rng& rng) {
  std::vector<double> out(sample.size());
  for (auto& v : out) v = sample[rng.UniformIndex(sample.size())];
  return out;
}

}  // namespace

TestResult BootstrapMeanDifferenceTest(const std::vector<double>& a,
                                       const std::vector<double>& b,
                                       int replicates, double alpha,
                                       Rng& rng) {
  TestResult result;
  if (a.empty() || b.empty() || replicates <= 0) return result;

  const double mean_a = Mean(a);
  const double mean_b = Mean(b);
  result.observed_difference = mean_a - mean_b;

  // Shift both samples to share the pooled mean so that H0 holds exactly
  // in the resampling population (Efron & Tibshirani, Algorithm 16.2).
  std::vector<double> pooled = a;
  pooled.insert(pooled.end(), b.begin(), b.end());
  const double pooled_mean = Mean(pooled);

  std::vector<double> a0 = a;
  for (auto& v : a0) v += pooled_mean - mean_a;
  std::vector<double> b0 = b;
  for (auto& v : b0) v += pooled_mean - mean_b;

  const double observed = std::fabs(result.observed_difference);
  int extreme = 0;
  for (int r = 0; r < replicates; ++r) {
    const std::vector<double> ra = ResampleWithReplacement(a0, rng);
    const std::vector<double> rb = ResampleWithReplacement(b0, rng);
    if (std::fabs(Mean(ra) - Mean(rb)) >= observed) ++extreme;
  }
  // Add-one smoothing keeps the estimate away from an impossible 0.
  result.p_value = (static_cast<double>(extreme) + 1.0) /
                   (static_cast<double>(replicates) + 1.0);
  result.significant = result.p_value < alpha;
  return result;
}

TestResult WelchTTest(const std::vector<double>& a,
                      const std::vector<double>& b, double alpha) {
  TestResult result;
  if (a.size() < 2 || b.size() < 2) return result;
  const double mean_a = Mean(a);
  const double mean_b = Mean(b);
  result.observed_difference = mean_a - mean_b;
  const double var_a = SampleVariance(a) / static_cast<double>(a.size());
  const double var_b = SampleVariance(b) / static_cast<double>(b.size());
  const double stderr_ab = std::sqrt(var_a + var_b);
  if (stderr_ab <= 0.0) {
    result.p_value = result.observed_difference == 0.0 ? 1.0 : 0.0;
  } else {
    result.p_value = TwoSidedPValue(result.observed_difference / stderr_ab);
  }
  result.significant = result.p_value < alpha;
  return result;
}

TestResult PairedBootstrapTest(const std::vector<double>& a,
                               const std::vector<double>& b, int replicates,
                               double alpha, Rng& rng) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("PairedBootstrapTest: size mismatch");
  }
  TestResult result;
  if (a.empty() || replicates <= 0) return result;

  std::vector<double> diffs(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) diffs[i] = a[i] - b[i];
  const double observed_mean = Mean(diffs);
  result.observed_difference = observed_mean;

  // Center the differences so the null (mean difference == 0) holds.
  std::vector<double> centered = diffs;
  for (auto& v : centered) v -= observed_mean;

  int extreme = 0;
  for (int r = 0; r < replicates; ++r) {
    const std::vector<double> rd = ResampleWithReplacement(centered, rng);
    if (std::fabs(Mean(rd)) >= std::fabs(observed_mean)) ++extreme;
  }
  result.p_value = (static_cast<double>(extreme) + 1.0) /
                   (static_cast<double>(replicates) + 1.0);
  result.significant = result.p_value < alpha;
  return result;
}

ConfidenceInterval BootstrapMeanConfidenceInterval(
    const std::vector<double>& sample, int replicates, double confidence,
    Rng& rng) {
  ConfidenceInterval ci;
  ci.point = Mean(sample);
  if (sample.empty() || replicates <= 0) return ci;
  std::vector<double> means;
  means.reserve(static_cast<std::size_t>(replicates));
  for (int r = 0; r < replicates; ++r) {
    means.push_back(Mean(ResampleWithReplacement(sample, rng)));
  }
  const double tail = (1.0 - confidence) / 2.0 * 100.0;
  ci.lower = Percentile(means, tail);
  ci.upper = Percentile(means, 100.0 - tail);
  return ci;
}

}  // namespace mexi::stats
