#ifndef MEXI_STATS_HISTOGRAM_H_
#define MEXI_STATS_HISTOGRAM_H_

#include <cstddef>
#include <string>
#include <vector>

namespace mexi::stats {

/// Fixed-range histogram over doubles.
///
/// Used by the movement-map aggregation (binning screen positions) and by
/// the report printers to render ASCII distributions. Values outside
/// [lo, hi) are clamped into the edge bins so no observation is lost.
class Histogram {
 public:
  /// Creates a histogram of `bins` equal-width buckets spanning [lo, hi).
  /// Requires bins > 0 and hi > lo.
  Histogram(double lo, double hi, std::size_t bins);

  /// Adds one observation.
  void Add(double value);

  /// Adds a weighted observation.
  void AddWeighted(double value, double weight);

  /// Number of buckets.
  std::size_t bins() const { return counts_.size(); }

  /// Total accumulated weight.
  double total() const { return total_; }

  /// Weight in bucket `i`.
  double count(std::size_t i) const { return counts_.at(i); }

  /// Inclusive lower edge of bucket `i`.
  double BinLower(std::size_t i) const;

  /// Normalized weights (empty histogram yields all zeros).
  std::vector<double> Normalized() const;

  /// Index of the heaviest bucket (first one on ties).
  std::size_t ArgMax() const;

  /// Renders a one-line-per-bin ASCII bar chart, `width` chars at most.
  std::string ToAscii(std::size_t width) const;

 private:
  double lo_;
  double hi_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

}  // namespace mexi::stats

#endif  // MEXI_STATS_HISTOGRAM_H_
