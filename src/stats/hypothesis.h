#ifndef MEXI_STATS_HYPOTHESIS_H_
#define MEXI_STATS_HYPOTHESIS_H_

#include <vector>

#include "stats/rng.h"

namespace mexi::stats {

/// Outcome of a two-sample hypothesis test.
struct TestResult {
  /// Observed difference of means (a - b).
  double observed_difference = 0.0;
  /// Estimated two-sided p-value for H0: mean(a) == mean(b).
  double p_value = 1.0;
  /// True when p_value < alpha used at construction.
  bool significant = false;
};

/// Two-sample bootstrap hypothesis test on the difference of means.
///
/// This is the test behind the asterisks in the paper's Table II: it
/// resamples the pooled, mean-shifted samples `replicates` times and
/// measures how often a difference at least as extreme as the observed one
/// arises under the null. Deterministic given `rng`.
TestResult BootstrapMeanDifferenceTest(const std::vector<double>& a,
                                       const std::vector<double>& b,
                                       int replicates, double alpha,
                                       Rng& rng);

/// Welch's unequal-variance t-test on the difference of means (normal
/// approximation of the t distribution; adequate for the n >= 20 samples
/// the experiments use). A parametric cross-check of the bootstrap test.
TestResult WelchTTest(const std::vector<double>& a,
                      const std::vector<double>& b, double alpha);

/// Paired bootstrap test on the mean of (a[i] - b[i]).
/// Requires a.size() == b.size().
TestResult PairedBootstrapTest(const std::vector<double>& a,
                               const std::vector<double>& b, int replicates,
                               double alpha, Rng& rng);

/// Bootstrap percentile confidence interval for the mean of `sample`.
struct ConfidenceInterval {
  double lower = 0.0;
  double upper = 0.0;
  double point = 0.0;
};
ConfidenceInterval BootstrapMeanConfidenceInterval(
    const std::vector<double>& sample, int replicates, double confidence,
    Rng& rng);

}  // namespace mexi::stats

#endif  // MEXI_STATS_HYPOTHESIS_H_
