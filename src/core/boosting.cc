#include "core/boosting.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/descriptive.h"

namespace mexi {

matching::MatchMatrix AdjustForBias(const matching::MatchMatrix& matrix,
                                    double bias) {
  matching::MatchMatrix adjusted(matrix.source_size(),
                                 matrix.target_size());
  for (const auto& [i, j] : matrix.Match()) {
    // Keep a floor above zero so a corrected entry stays in the match.
    adjusted.Set(i, j,
                 stats::Clamp(matrix.At(i, j) - bias, 0.01, 1.0));
  }
  return adjusted;
}

std::vector<double> ExpertiseWeights(
    const std::vector<ExpertLabel>& predictions) {
  std::vector<double> weights;
  weights.reserve(predictions.size());
  for (const auto& label : predictions) {
    weights.push_back(1.0 + static_cast<double>(label.Count()));
  }
  return weights;
}

matching::MatchMatrix FuseCrowd(
    const std::vector<matching::MatchMatrix>& matrices,
    const std::vector<double>& weights, std::size_t match_size) {
  if (matrices.empty() || matrices.size() != weights.size()) {
    throw std::invalid_argument("FuseCrowd: bad input sizes");
  }
  const std::size_t rows = matrices[0].source_size();
  const std::size_t cols = matrices[0].target_size();
  double total_weight = 0.0;
  double weighted_sizes = 0.0;
  ml::Matrix support(rows, cols, 0.0);
  for (std::size_t m = 0; m < matrices.size(); ++m) {
    if (matrices[m].source_size() != rows ||
        matrices[m].target_size() != cols) {
      throw std::invalid_argument("FuseCrowd: matrix shape mismatch");
    }
    if (weights[m] < 0.0) {
      throw std::invalid_argument("FuseCrowd: negative weight");
    }
    total_weight += weights[m];
    weighted_sizes +=
        weights[m] * static_cast<double>(matrices[m].MatchSize());
    for (const auto& [i, j] : matrices[m].Match()) {
      support(i, j) += weights[m] * matrices[m].At(i, j);
    }
  }
  if (match_size == 0) {
    match_size = total_weight > 0.0
                     ? static_cast<std::size_t>(
                           std::lround(weighted_sizes / total_weight))
                     : 0;
  }

  // Keep the top `match_size` supported pairs.
  std::vector<std::pair<double, std::pair<std::size_t, std::size_t>>>
      ranked;
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      if (support(i, j) > 0.0) ranked.push_back({support(i, j), {i, j}});
    }
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  matching::MatchMatrix fused(rows, cols);
  const double peak = ranked.empty() ? 1.0 : ranked.front().first;
  for (std::size_t k = 0; k < std::min(match_size, ranked.size()); ++k) {
    const auto& [score, pair] = ranked[k];
    fused.Set(pair.first, pair.second,
              stats::Clamp(score / peak, 0.01, 1.0));
  }
  return fused;
}

MatchQuality EvaluateMatch(const matching::MatchMatrix& match,
                           const matching::MatchMatrix& reference) {
  MatchQuality quality;
  quality.precision = match.PrecisionAgainst(reference);
  quality.recall = match.RecallAgainst(reference);
  quality.f1 = quality.precision + quality.recall > 0.0
                   ? 2.0 * quality.precision * quality.recall /
                         (quality.precision + quality.recall)
                   : 0.0;
  return quality;
}

}  // namespace mexi
