#ifndef MEXI_CORE_BASELINES_H_
#define MEXI_CORE_BASELINES_H_

#include <memory>
#include <string>
#include <vector>

#include "core/characterizer.h"
#include "core/mexi.h"
#include "stats/rng.h"

namespace mexi {

/// "Rand": assigns each characteristic by a fair coin (Section IV-B2).
class RandCharacterizer : public Characterizer {
 public:
  explicit RandCharacterizer(std::uint64_t seed = 1);
  std::string Name() const override { return "Rand"; }
  void Fit(const std::vector<MatcherView>& train,
           const std::vector<ExpertLabel>& labels,
           const TaskContext& context) override;
  ExpertLabel Characterize(const MatcherView& matcher) const override;

 private:
  mutable stats::Rng rng_;
};

/// "Rand_Freq": assigns each characteristic by its training frequency.
class RandFreqCharacterizer : public Characterizer {
 public:
  explicit RandFreqCharacterizer(std::uint64_t seed = 2);
  std::string Name() const override { return "Rand_Freq"; }
  void Fit(const std::vector<MatcherView>& train,
           const std::vector<ExpertLabel>& labels,
           const TaskContext& context) override;
  ExpertLabel Characterize(const MatcherView& matcher) const override;

 private:
  mutable stats::Rng rng_;
  std::vector<double> frequencies_ = std::vector<double>(4, 0.5);
};

/// "Conf": trusts self-reported confidence (Oyama et al.): a matcher is
/// deemed an expert in every characteristic when its mean reported
/// confidence exceeds the training population's mean.
class ConfCharacterizer : public Characterizer {
 public:
  std::string Name() const override { return "Conf"; }
  void Fit(const std::vector<MatcherView>& train,
           const std::vector<ExpertLabel>& labels,
           const TaskContext& context) override;
  ExpertLabel Characterize(const MatcherView& matcher) const override;

 private:
  double threshold_ = 0.5;
};

/// "Qual. Test": grades the warm-up phase as a qualification test
/// (Zhang et al.): expert in everything iff warm-up precision > 0.5.
class QualTestCharacterizer : public Characterizer {
 public:
  std::string Name() const override { return "Qual. Test"; }
  void Fit(const std::vector<MatcherView>& train,
           const std::vector<ExpertLabel>& labels,
           const TaskContext& context) override;
  ExpertLabel Characterize(const MatcherView& matcher) const override;

 private:
  TaskContext context_;
};

/// "Self-Assess": pre-selection rule of Gadiraju et al.: expert iff
/// |Cal| < 0.2 and P > 0.6 over the warm-up phase.
class SelfAssessCharacterizer : public Characterizer {
 public:
  std::string Name() const override { return "Self-Assess"; }
  void Fit(const std::vector<MatcherView>& train,
           const std::vector<ExpertLabel>& labels,
           const TaskContext& context) override;
  ExpertLabel Characterize(const MatcherView& matcher) const override;

 private:
  TaskContext context_;
};

/// "LRSM" (Gal et al.): learned characterizer over matching-predictor
/// features only.
std::unique_ptr<Characterizer> MakeLrsmBaseline(std::uint64_t seed = 11);

/// "BEH" (Goyal et al.): learned characterizer over aggregated
/// behavioral + mouse features only.
std::unique_ptr<Characterizer> MakeBehBaseline(std::uint64_t seed = 12);

/// All seven baselines, in the paper's Table II order.
std::vector<std::unique_ptr<Characterizer>> MakeAllBaselines(
    std::uint64_t seed = 5);

}  // namespace mexi

#endif  // MEXI_CORE_BASELINES_H_
