#ifndef MEXI_CORE_BOOSTING_H_
#define MEXI_CORE_BOOSTING_H_

#include <cstddef>
#include <vector>

#include "core/expert_model.h"
#include "matching/match_matrix.h"

namespace mexi {

/// Tools for *using* expertise characterizations to improve the final
/// crowd match — the paper's motivation ("we show that our approach can
/// improve matching results by filtering out inexpert matchers") plus
/// the Ipeirotis-et-al. observation it cites: predictably biased
/// confidence can be corrected rather than discarded.

/// Confidence-bias correction: shifts every declared confidence by
/// -bias (an over-confident matcher's entries come down, an
/// under-confident one's go up) and clamps into (0, 1]. Entries never
/// drop out of the match: correction re-scores, it does not retract.
/// `bias` is the matcher's (estimated) calibration, Eq. 5.
matching::MatchMatrix AdjustForBias(const matching::MatchMatrix& matrix,
                                    double bias);

/// Per-matcher fusion weights from predicted characterizations:
/// 1 + number of predicted expertise characteristics (so a full expert
/// counts 5x a predicted non-expert). Parallel to `predictions`.
std::vector<double> ExpertiseWeights(
    const std::vector<ExpertLabel>& predictions);

/// Weighted crowd fusion: each element pair accumulates support
/// sum_m weight[m] * M_m(i, j); the fused match keeps the `match_size`
/// best-supported pairs (0 = the weighted mean of the individual match
/// sizes, i.e. the crowd votes on a typical-size match).
/// All matrices must share the reference's dimensions.
matching::MatchMatrix FuseCrowd(
    const std::vector<matching::MatchMatrix>& matrices,
    const std::vector<double>& weights, std::size_t match_size = 0);

/// P / R / F1 of a fused match against the reference.
struct MatchQuality {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};
MatchQuality EvaluateMatch(const matching::MatchMatrix& match,
                           const matching::MatchMatrix& reference);

}  // namespace mexi

#endif  // MEXI_CORE_BOOSTING_H_
