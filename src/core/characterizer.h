#ifndef MEXI_CORE_CHARACTERIZER_H_
#define MEXI_CORE_CHARACTERIZER_H_

#include <string>
#include <vector>

#include "core/expert_model.h"
#include "core/matcher_view.h"

namespace mexi {

/// A matching-expert characterizer f : D -> Y (Problem 1): anything that
/// can be fitted on labeled matchers and then predicts the 4-bit
/// expertise characterization of unseen matchers. MExI and all seven
/// baselines implement this interface, which is what the evaluation
/// harness iterates over.
class Characterizer {
 public:
  virtual ~Characterizer() = default;

  /// Human-readable method name as printed in the result tables.
  virtual std::string Name() const = 0;

  /// Trains on labeled matchers. `context` carries task dimensions and
  /// the warm-up reference (for qualification baselines).
  virtual void Fit(const std::vector<MatcherView>& train,
                   const std::vector<ExpertLabel>& labels,
                   const TaskContext& context) = 0;

  /// Predicts the characterization of one matcher. Requires Fit().
  virtual ExpertLabel Characterize(const MatcherView& matcher) const = 0;

  /// Unsupervised adaptation to a new *population* before
  /// characterizing it (no labels involved). The default is a no-op;
  /// MExI rebuilds its consensuality statistics here, which is what
  /// makes the PO -> OAEI transfer of Table IIb work: agreement among
  /// matchers is a property of the population at hand, not of the
  /// training task.
  virtual void AdaptToPopulation(const std::vector<MatcherView>& population);

  /// Graded expertise score in [0, 1] used for budgeted selection
  /// (e.g., "keep the best k matchers"). Default: the fraction of
  /// predicted characteristics; probabilistic methods override with a
  /// smoother score.
  virtual double ExpertScore(const MatcherView& matcher) const;

  /// Batch prediction over a population. The default loops
  /// Characterize; methods with a batched serve path (MExI) override it
  /// with one that must stay bitwise identical per matcher to the loop
  /// in exact mode. The evaluation harness and the CLI characterize
  /// through this entry point.
  virtual std::vector<ExpertLabel> CharacterizeAll(
      const std::vector<MatcherView>& matchers) const;
};

}  // namespace mexi

#endif  // MEXI_CORE_CHARACTERIZER_H_
