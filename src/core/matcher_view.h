#ifndef MEXI_CORE_MATCHER_VIEW_H_
#define MEXI_CORE_MATCHER_VIEW_H_

#include <cstddef>

#include "matching/decision_history.h"
#include "matching/match_matrix.h"
#include "matching/movement.h"

namespace mexi {

/// A non-owning view of one human matcher's observable data
/// D = (H, G), plus the warm-up history used only by the
/// qualification-style baselines. Pointers must outlive the view.
struct MatcherView {
  const matching::DecisionHistory* history = nullptr;
  const matching::MovementMap* movement = nullptr;
  /// May be null; required only by Qual. Test / Self-Assess baselines.
  const matching::DecisionHistory* warmup_history = nullptr;
  /// Matrix dimensions of the task this matcher worked on. Carried per
  /// matcher (not per experiment) because the generalizability
  /// experiment characterizes OAEI matchers with a PO-trained model —
  /// matrix-shaped features must use the matcher's own task size.
  std::size_t source_size = 0;
  std::size_t target_size = 0;
};

/// Task-level context shared by characterizers: the matching-matrix
/// dimensions of the main (training) task, and the warm-up task's
/// dimensions plus reference (the warm-up is the gold-question phase,
/// so baselines may legitimately grade against it).
struct TaskContext {
  std::size_t source_size = 0;
  std::size_t target_size = 0;
  std::size_t warmup_source_size = 0;
  std::size_t warmup_target_size = 0;
  const matching::MatchMatrix* warmup_reference = nullptr;
};

}  // namespace mexi

#endif  // MEXI_CORE_MATCHER_VIEW_H_
