#ifndef MEXI_CORE_MEXI_REGRESSOR_H_
#define MEXI_CORE_MEXI_REGRESSOR_H_

#include <memory>
#include <vector>

#include "core/expert_model.h"
#include "core/features/consensus.h"
#include "core/features/feature_vector.h"
#include "core/matcher_view.h"
#include "ml/regression.h"

namespace mexi {

/// The regression repositioning of Problem 1 the paper sketches
/// ("it can be easily repositioned as a regression problem, estimating
/// expertise level"): instead of 4 binary characteristics, estimate the
/// four continuous measures — precision, recall, resolution and
/// calibration — directly from the aggregated behavioral encoding
/// (Phi_LRSM + Phi_Beh + Phi_Con + Phi_Mou). One regressor per measure,
/// selected from {ridge, regression forest, k-NN} by validation MAE.
class MexiRegressor {
 public:
  struct Config {
    /// Validation folds for regressor selection.
    std::size_t selection_folds = 3;
    std::uint64_t seed = 6161;
  };

  MexiRegressor();
  explicit MexiRegressor(const Config& config);

  /// Trains on matchers with their measured expertise levels.
  void Fit(const std::vector<MatcherView>& train,
           const std::vector<ExpertMeasures>& measures,
           const TaskContext& context);

  /// Estimated [precision, recall, resolution, calibration].
  ExpertMeasures Estimate(const MatcherView& matcher) const;

  /// Names of the regressors selected per measure (after Fit).
  const std::vector<std::string>& selected_models() const {
    return selected_models_;
  }

  /// The aggregated feature encoding used (exposed for tests).
  FeatureVector Encode(const MatcherView& matcher) const;

  bool fitted() const { return fitted_; }

 private:
  Config config_;
  ConsensusMap consensus_;
  std::vector<std::unique_ptr<ml::Regressor>> regressors_;
  std::vector<std::string> selected_models_;
  bool fitted_ = false;
};

}  // namespace mexi

#endif  // MEXI_CORE_MEXI_REGRESSOR_H_
