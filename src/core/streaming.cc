#include "core/streaming.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "obs/obs.h"
#include "obs/trace.h"
#include "parallel/parallel_for.h"
#include "robust/status.h"
#include "stats/descriptive.h"

namespace mexi {

namespace {

/// One-pass Pearson estimate from sufficient statistics (sum, sum of
/// squares, cross sum). Used only for intermediate emissions — the
/// batch stats::PearsonCorrelation is two-pass (centered on the final
/// mean), so the exact value is re-derived in Finalize instead.
double PearsonEstimate(double n, double sx, double sy, double sxx,
                       double syy, double sxy) {
  if (n < 2.0) return 0.0;
  const double cov = sxy - sx * sy / n;
  const double vx = sxx - sx * sx / n;
  const double vy = syy - sy * sy / n;
  if (vx <= 0.0 || vy <= 0.0) return 0.0;
  return cov / std::sqrt(vx * vy);
}

/// One-pass standard-deviation estimate (population, like
/// stats::Variance).
double StdDevEstimate(double n, double sum, double sumsq) {
  if (n <= 0.0) return 0.0;
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

std::vector<double> ProjectRow(const std::vector<double>& row,
                               const std::vector<std::size_t>& indices) {
  std::vector<double> out;
  out.reserve(indices.size());
  for (std::size_t idx : indices) out.push_back(row[idx]);
  return out;
}

}  // namespace

StreamingCharacterizer::StreamingCharacterizer(const Mexi& model,
                                               std::size_t source_size,
                                               std::size_t target_size,
                                               double screen_width,
                                               double screen_height)
    : model_(&model),
      source_size_(source_size),
      target_size_(target_size),
      screen_width_(screen_width),
      screen_height_(screen_height),
      movement_(screen_width, screen_height),
      matrix_(source_size, target_size) {
  const auto& config = model.config_;
  if (config.use_spa && model.spa_extractor_ != nullptr) {
    const std::size_t rows = config.spa.cnn.image_rows;
    const std::size_t cols = config.spa.cnn.image_cols;
    heat_counts_.assign(static_cast<std::size_t>(matching::kNumMovementTypes),
                        ml::Matrix(rows, cols, 0.0));
    images_.assign(static_cast<std::size_t>(matching::kNumMovementTypes),
                   ml::Matrix(rows, cols, 0.0));
  }
  if (config.use_seq && model.seq_extractor_ != nullptr) {
    model.seq_extractor_->StreamInit(seq_state_);
  }
}

void StreamingCharacterizer::PushMovement(
    const matching::MovementEvent& event) {
  movement_.Add(event);
  // Read the clamped event back so every accumulator sees exactly what
  // the batch features will see.
  const matching::MovementEvent& e = movement_.events().back();
  if (movement_.size() == 1) {
    first_move_ts_ = e.timestamp;
  } else {
    const double dx = e.x - last_x_;
    const double dy = e.y - last_y_;
    path_length_ += std::sqrt(dx * dx + dy * dy);
  }
  last_move_ts_ = e.timestamp;
  last_x_ = e.x;
  last_y_ = e.y;
  x_sum_ += e.x;
  y_sum_ += e.y;
  x_sumsq_ += e.x * e.x;
  y_sumsq_ += e.y * e.y;
  ++type_counts_[static_cast<std::size_t>(e.type)];

  // Region membership (same inclusive relative bounds as MouseFeatures).
  static constexpr double kRegions[4][4] = {
      {0.03, 0.04, 0.46, 0.42},   // sourceTree
      {0.54, 0.04, 0.98, 0.42},   // targetTree
      {0.38, 0.42, 0.62, 0.53},   // propsBox
      {0.08, 0.54, 0.92, 0.97},   // matchTable
  };
  const double rx = e.x / screen_width_;
  const double ry = e.y / screen_height_;
  for (std::size_t g = 0; g < 4; ++g) {
    if (rx >= kRegions[g][0] && rx <= kRegions[g][2] &&
        ry >= kRegions[g][1] && ry <= kRegions[g][3]) {
      ++region_counts_[g];
    }
  }

  // Heat-map cell bump, binned exactly like MovementMap::HeatMap. The
  // counts are integer-valued doubles, so cell-by-cell accumulation is
  // bitwise identical to the batch rebuild.
  if (!heat_counts_.empty()) {
    ml::Matrix& heat = heat_counts_[static_cast<std::size_t>(e.type)];
    std::size_t r = static_cast<std::size_t>(
        e.y / screen_height_ * static_cast<double>(heat.rows()));
    std::size_t c = static_cast<std::size_t>(
        e.x / screen_width_ * static_cast<double>(heat.cols()));
    r = std::min(r, heat.rows() - 1);
    c = std::min(c, heat.cols() - 1);
    heat(r, c) += 1.0;
  }
  ++cost_.movement_events;
}

void StreamingCharacterizer::MedianInsert(double value) {
  // Two-heap running median: median_lo_ keeps the smaller ceil(n/2)
  // values, median_hi_ the rest.
  if (median_lo_.empty() || value <= *median_lo_.rbegin()) {
    median_lo_.insert(value);
  } else {
    median_hi_.insert(value);
  }
  if (median_lo_.size() > median_hi_.size() + 1) {
    auto it = std::prev(median_lo_.end());
    median_hi_.insert(*it);
    median_lo_.erase(it);
  } else if (median_hi_.size() > median_lo_.size()) {
    auto it = median_hi_.begin();
    median_lo_.insert(*it);
    median_hi_.erase(it);
  }
}

double StreamingCharacterizer::RunningMedian() const {
  const std::size_t n = median_lo_.size() + median_hi_.size();
  if (n == 0) return 0.0;
  if (n % 2 == 1) return *median_lo_.rbegin();
  // stats::Percentile(values, 50) at even n: rank n/2 - 1 + 0.5, so
  // sorted[lo] * (1 - frac) + sorted[hi] * frac with frac = 0.5 — the
  // same expression, with sorted[lo]/sorted[hi] being the two middle
  // values the heaps straddle.
  const double frac = 0.5;
  return *median_lo_.rbegin() * (1.0 - frac) + *median_hi_.begin() * frac;
}

StreamEmission StreamingCharacterizer::PushDecision(
    const matching::Decision& d) {
  // Validate before any accumulator mutation, so a rejected decision
  // leaves the stream exactly as it was and the next emission still
  // describes the accepted prefix (tests/test_streaming.cc locks this).
  // history_.Add would catch most of these too — but only after the
  // running sums had already absorbed the bad decision.
  if (!std::isfinite(d.confidence) || d.confidence < 0.0 ||
      d.confidence > 1.0) {
    robust::ThrowStatus(robust::StatusCode::kInvalidArgument,
                        "PushDecision: confidence must be a finite value "
                        "in [0, 1]");
  }
  if (!std::isfinite(d.timestamp) ||
      (!history_.empty() &&
       d.timestamp < history_.at(history_.size() - 1).timestamp)) {
    robust::ThrowStatus(robust::StatusCode::kInvalidArgument,
                        "PushDecision: timestamps must be finite and "
                        "non-decreasing");
  }
  if (d.source >= source_size_ || d.target >= target_size_) {
    robust::ThrowStatus(robust::StatusCode::kInvalidArgument,
                        "PushDecision: pair (" + std::to_string(d.source) +
                            "," + std::to_string(d.target) +
                            ") lies outside the " +
                            std::to_string(source_size_) + "x" +
                            std::to_string(target_size_) + " task");
  }
  const obs::Span span("stream.decision");
  const bool metrics = obs::MetricsEnabled();
  const auto start = metrics ? std::chrono::steady_clock::now()
                             : std::chrono::steady_clock::time_point();
  const std::uint64_t n = static_cast<std::uint64_t>(history_.size());

  // Behavioral accumulators.
  if (n == 0) {
    first_ts_ = d.timestamp;
    conf_first_ = d.confidence;
    conf_min_ = conf_max_ = d.confidence;
  } else {
    const double dt = d.timestamp - last_ts_;
    const std::uint64_t k = n - 1;  // elapsed-sequence position
    if (k == 0) {
      elapsed_min_ = elapsed_max_ = dt;
    } else {
      elapsed_min_ = std::min(elapsed_min_, dt);
      elapsed_max_ = std::max(elapsed_max_, dt);
    }
    elapsed_sum_ += dt;
    elapsed_sumsq_ += dt * dt;
    elapsed_order_cross_ += static_cast<double>(k) * dt;
    conf_min_ = std::min(conf_min_, d.confidence);
    conf_max_ = std::max(conf_max_, d.confidence);
  }
  last_ts_ = d.timestamp;
  conf_last_ = d.confidence;
  conf_sum_ += d.confidence;
  conf_sumsq_ += d.confidence * d.confidence;
  conf_order_cross_ += static_cast<double>(n) * d.confidence;
  MedianInsert(d.confidence);
  ++cost_.decision_update_ops;

  // Consistency accumulators: latest-wins per pair with in-place
  // add/remove of the old contribution.
  const double share = model_->consensus_.Share(d.source, d.target);
  ordered_share_sum_ += share;
  ordered_share_sumsq_ += share * share;
  ordered_share_cross_ += static_cast<double>(n) * share;
  auto it = latest_.find({d.source, d.target});
  if (it != latest_.end()) {
    ++mind_changes_;
    const double old_conf = it->second;
    if (old_conf > 0.0) {
      --pos_pairs_;
      share_sum_ -= share;
      share_sumsq_ -= share * share;
      weighted_ -= old_conf * share;
      weight_total_ -= old_conf;
      minority_ -= static_cast<std::size_t>(share < 0.15);
      majority_ -= static_cast<std::size_t>(share > 0.5);
      conf_share_cross_ -= old_conf * share;
      con_conf_sum_ -= old_conf;
      con_conf_sumsq_ -= old_conf * old_conf;
    }
    it->second = d.confidence;
  } else {
    latest_.emplace(matching::ElementPair{d.source, d.target}, d.confidence);
  }
  if (d.confidence > 0.0) {
    ++pos_pairs_;
    share_sum_ += share;
    share_sumsq_ += share * share;
    weighted_ += d.confidence * share;
    weight_total_ += d.confidence;
    minority_ += static_cast<std::size_t>(share < 0.15);
    majority_ += static_cast<std::size_t>(share > 0.5);
    conf_share_cross_ += d.confidence * share;
    con_conf_sum_ += d.confidence;
    con_conf_sumsq_ += d.confidence * d.confidence;
  }
  ++cost_.decision_update_ops;

  // Eq. 1 latest-wins matrix cell, the LSTM step (the carried state —
  // never the prefix), and the append-only buffer.
  matrix_.Set(d.source, d.target, d.confidence);
  ++cost_.decision_update_ops;
  if (model_->config_.use_seq && model_->seq_extractor_ != nullptr) {
    model_->seq_extractor_->StreamPush(d, seq_state_);
    ++cost_.decision_update_ops;
  }
  history_.Add(d);
  ++cost_.decisions;

  StreamEmission emission = Emit(/*exact_tail=*/false);
  if (metrics) {
    auto& registry = obs::Registry();
    registry.GetCounter("stream.decisions").Add();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    registry
        .GetHistogram("stream.decision_seconds",
                      {1e-5, 1e-4, 1e-3, 1e-2, 1e-1})
        .Observe(seconds);
  }
  return emission;
}

StreamEmission StreamingCharacterizer::Finalize() {
  const obs::Span span("stream.finalize");
  StreamEmission emission = Emit(/*exact_tail=*/true);
  if (obs::MetricsEnabled()) {
    obs::Registry().GetCounter("stream.finalizations").Add();
  }
  return emission;
}

StreamEmission StreamingCharacterizer::Emit(bool exact_tail) {
  const auto& config = model_->config_;
  row_.clear();

  if (exact_tail) {
    // One amortized pass over the append-only buffers through the batch
    // aggregated-feature code itself — equal inputs, same code, bitwise
    // equality by construction. The LSTM/CNN stages below still come
    // from the carried state; only trace-length scalar buffers are
    // re-read here.
    cost_.trace_buffer_scans +=
        static_cast<std::uint64_t>(history_.size()) +
        static_cast<std::uint64_t>(movement_.size());
    row_ = model_->AggregatedValues(history_, movement_, source_size_,
                                    target_size_, predictor_scratch_);
  } else {
    const double n = static_cast<double>(history_.size());
    const double ne = n > 1.0 ? n - 1.0 : 0.0;  // elapsed count

    if (config.use_lrsm) {
      matching::ComputePredictorValues(matrix_, &predictor_scratch_, row_);
    }
    if (config.use_beh) {
      // Closed-form order sums for the trend estimates: sum k and
      // sum k^2 over k = 0..m-1.
      const auto order_sum = [](double m) { return m * (m - 1.0) / 2.0; };
      const auto order_sumsq = [](double m) {
        return (m - 1.0) * m * (2.0 * m - 1.0) / 6.0;
      };
      row_.push_back(n > 0.0 ? conf_sum_ / n : 0.0);            // avgConf
      row_.push_back(StdDevEstimate(n, conf_sum_, conf_sumsq_));  // stdConf
      row_.push_back(n > 0.0 ? conf_max_ : 0.0);                // maxConf
      row_.push_back(n > 0.0 ? conf_min_ : 0.0);                // minConf
      row_.push_back(RunningMedian());                          // medianConf
      row_.push_back(ne > 0.0 ? elapsed_sum_ / ne : 0.0);       // avgTime
      row_.push_back(StdDevEstimate(ne, elapsed_sum_, elapsed_sumsq_));
      row_.push_back(ne > 0.0 ? elapsed_max_ : 0.0);            // maxTime
      row_.push_back(ne > 0.0 ? elapsed_min_ : 0.0);            // minTime
      row_.push_back(n > 0.0 ? last_ts_ - first_ts_ : 0.0);     // totalTime
      row_.push_back(n);                                    // countDecisions
      row_.push_back(static_cast<double>(latest_.size()));  // distinctCorr
      row_.push_back(static_cast<double>(mind_changes_));   // countMindChange
      row_.push_back(n > 0.0 ? static_cast<double>(mind_changes_) / n : 0.0);
      row_.push_back(PearsonEstimate(n, order_sum(n), conf_sum_,
                                     order_sumsq(n), conf_sumsq_,
                                     conf_order_cross_));  // confTrend
      row_.push_back(PearsonEstimate(ne, order_sum(ne), elapsed_sum_,
                                     order_sumsq(ne), elapsed_sumsq_,
                                     elapsed_order_cross_));  // timeTrend
      row_.push_back(n > 0.0 ? conf_last_ : 0.0);             // lastConf
      row_.push_back(n > 0.0 ? conf_first_ : 0.0);            // firstConf
    }
    if (config.use_con) {
      const double np = static_cast<double>(pos_pairs_);
      row_.push_back(np > 0.0 ? share_sum_ / np : 0.0);  // meanConsensus
      row_.push_back(StdDevEstimate(np, share_sum_, share_sumsq_));
      row_.push_back(weight_total_ > 0.0 ? weighted_ / weight_total_ : 0.0);
      row_.push_back(np > 0.0 ? static_cast<double>(minority_) / np : 0.0);
      row_.push_back(np > 0.0 ? static_cast<double>(majority_) / np : 0.0);
      row_.push_back(PearsonEstimate(np, con_conf_sum_, share_sum_,
                                     con_conf_sumsq_, share_sumsq_,
                                     conf_share_cross_));  // confConsensus
      const auto order_sum = [](double m) { return m * (m - 1.0) / 2.0; };
      const auto order_sumsq = [](double m) {
        return (m - 1.0) * m * (2.0 * m - 1.0) / 6.0;
      };
      row_.push_back(PearsonEstimate(n, order_sum(n), ordered_share_sum_,
                                     order_sumsq(n), ordered_share_sumsq_,
                                     ordered_share_cross_));  // temporalTrend
    }
    if (config.use_mou) {
      const double total = static_cast<double>(movement_.size());
      const double move_time =
          total >= 2.0 ? last_move_ts_ - first_move_ts_ : 0.0;
      row_.push_back(path_length_);  // totalLength
      row_.push_back(move_time);     // totalTime
      row_.push_back(total);         // countEvents
      row_.push_back(total > 0.0 ? x_sum_ / total : 0.0);  // avgX
      row_.push_back(total > 0.0 ? y_sum_ / total : 0.0);  // avgY
      row_.push_back(StdDevEstimate(total, x_sum_, x_sumsq_));  // stdX
      row_.push_back(StdDevEstimate(total, y_sum_, y_sumsq_));  // stdY
      const double moves = static_cast<double>(type_counts_[0]);
      const double lclicks = static_cast<double>(type_counts_[1]);
      const double rclicks = static_cast<double>(type_counts_[2]);
      const double scrolls = static_cast<double>(type_counts_[3]);
      row_.push_back(moves);
      row_.push_back(lclicks);
      row_.push_back(rclicks);
      row_.push_back(scrolls);
      row_.push_back(total > 0.0 ? (lclicks + rclicks) / total : 0.0);
      row_.push_back(total > 0.0 ? scrolls / total : 0.0);
      row_.push_back(move_time > 0.0 ? path_length_ / move_time : 0.0);
      for (std::size_t g = 0; g < 4; ++g) {
        row_.push_back(total > 0.0
                           ? static_cast<double>(region_counts_[g]) / total
                           : 0.0);
      }
    }
  }

  // Network coefficients from the carried state, in ExtractFeatures'
  // fusion order (seq before spa).
  if (config.use_seq && model_->seq_extractor_ != nullptr) {
    const std::vector<double> seq_values =
        model_->seq_extractor_->StreamValues(seq_state_);
    row_.insert(row_.end(), seq_values.begin(), seq_values.end());
  }
  if (config.use_spa && model_->spa_extractor_ != nullptr) {
    for (std::size_t t = 0; t < heat_counts_.size(); ++t) {
      images_[t] = heat_counts_[t];
      const double peak = images_[t].MaxAbs();
      if (peak > 0.0) images_[t] *= 1.0 / peak;
    }
    const std::vector<double> spa_values =
        model_->spa_extractor_->ExtractValuesFromImages(images_, cnn_ws_);
    row_.insert(row_.end(), spa_values.begin(), spa_values.end());
  }

  // Frozen fused classifiers — the same projection, probability and
  // threshold compare as Characterize.
  StreamEmission emission;
  emission.decision_index = history_.size();
  emission.is_final = exact_tail;
  std::vector<int> bits;
  double total_probability = 0.0;
  for (std::size_t c = 0; c < model_->label_classifiers_.size(); ++c) {
    const double probability = model_->label_classifiers_[c]->PredictProba(
        ProjectRow(row_, model_->selected_features_[c]));
    emission.probabilities.push_back(probability);
    total_probability += probability;
    bits.push_back(probability >= model_->label_thresholds_[c] ? 1 : 0);
  }
  emission.label = ExpertLabel::FromVector(bits);
  emission.confidence =
      emission.probabilities.empty()
          ? 0.0
          : total_probability /
                static_cast<double>(emission.probabilities.size());
  return emission;
}

StreamingCharacterizer Mexi::OpenStream(std::size_t source_size,
                                        std::size_t target_size,
                                        double screen_width,
                                        double screen_height) const {
  if (!fitted_ || label_classifiers_.empty()) {
    throw std::logic_error("Mexi::OpenStream before Fit");
  }
  return StreamingCharacterizer(*this, source_size, target_size,
                                screen_width, screen_height);
}

std::vector<std::vector<StreamEmission>> Mexi::CharacterizeStream(
    const std::vector<MatcherView>& matchers) const {
  const obs::Span span("mexi.characterize_stream");
  std::vector<std::vector<StreamEmission>> out(matchers.size());
  // One stream per matcher with disjoint writes: bitwise identical at
  // any thread count under the ParallelFor contract.
  parallel::ParallelFor(0, matchers.size(), 1, [&](std::size_t i) {
    const MatcherView& m = matchers[i];
    StreamingCharacterizer stream =
        OpenStream(m.source_size, m.target_size, m.movement->screen_width(),
                   m.movement->screen_height());
    const auto& events = m.movement->events();
    std::size_t next_event = 0;
    std::vector<StreamEmission>& emissions = out[i];
    emissions.reserve(m.history->size() + 1);
    // Canonical interleave: before each decision, push every movement
    // event with timestamp <= the decision's; trailing movement after
    // the last decision, then the exact Finalize emission.
    for (std::size_t k = 0; k < m.history->size(); ++k) {
      const matching::Decision& d = m.history->at(k);
      while (next_event < events.size() &&
             events[next_event].timestamp <= d.timestamp) {
        stream.PushMovement(events[next_event]);
        ++next_event;
      }
      emissions.push_back(stream.PushDecision(d));
    }
    while (next_event < events.size()) {
      stream.PushMovement(events[next_event]);
      ++next_event;
    }
    emissions.push_back(stream.Finalize());
  });
  return out;
}

}  // namespace mexi
