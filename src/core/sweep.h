#ifndef MEXI_CORE_SWEEP_H_
#define MEXI_CORE_SWEEP_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/expert_model.h"
#include "core/mexi.h"
#include "robust/serialize.h"
#include "sim/matcher_sim.h"
#include "sim/study.h"

namespace mexi {

/// Fixed-bin quantile sketch for streamed score distributions.
///
/// Values are clamped into [lo, hi] and counted into equal-width bins;
/// count / sum / min / max are exact, quantiles are answered by linear
/// interpolation within the covering bin (error bounded by one bin
/// width). Add and Merge are associative-exact on the integer counts,
/// and the double accumulators are folded in population order by the
/// sweep, so aggregates are bitwise-independent of shard boundaries.
class QuantileSketch {
 public:
  QuantileSketch() : QuantileSketch(0.0, 1.0) {}
  QuantileSketch(double lo, double hi, std::size_t bins = 128);

  void Add(double value);
  /// Folds `other` into this sketch. Both must share [lo, hi] and the
  /// bin count; throws StatusError(kInvalidArgument) otherwise.
  /// Counts, min and max merge associative-exact (so quantiles match a
  /// single-fold sketch bitwise); the running double sum is summed in
  /// merge order and may differ from the fold order in the last bits.
  void Merge(const QuantileSketch& other);

  /// Approximate q-quantile (q in [0, 1]); exact min/max at the ends.
  /// Returns 0 on an empty sketch.
  double Quantile(double q) const;

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double Mean() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::size_t bins() const { return counts_.size(); }

  void Save(robust::BinaryWriter& writer) const;
  void Load(robust::BinaryReader& reader);

  bool operator==(const QuantileSketch& other) const = default;

 private:
  double lo_ = 0.0;
  double hi_ = 1.0;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// 2x2 confusion counts of one predicted-vs-true label bit.
struct LabelConfusion {
  std::uint64_t tp = 0;
  std::uint64_t fp = 0;
  std::uint64_t fn = 0;
  std::uint64_t tn = 0;

  void Fold(bool truth, bool predicted);
  void Merge(const LabelConfusion& other);
  std::uint64_t Total() const { return tp + fp + fn + tn; }
  /// (tp + tn) / total; 1 on an empty confusion.
  double Accuracy() const;

  bool operator==(const LabelConfusion& other) const = default;
};

/// Streamed per-archetype tallies: population counts, decision volume,
/// one confusion per expertise characteristic, and full-expert counts
/// under both the ground-truth thresholds and the model.
struct ArchetypeAggregate {
  std::uint64_t matchers = 0;
  std::uint64_t decisions = 0;
  std::array<LabelConfusion, 4> confusion;
  std::uint64_t true_full_expert = 0;
  std::uint64_t predicted_full_expert = 0;

  void Merge(const ArchetypeAggregate& other);

  bool operator==(const ArchetypeAggregate& other) const = default;
};

/// One reliability-diagram bucket keyed by mean reported confidence.
struct CalibrationBucket {
  std::uint64_t count = 0;
  double sum_confidence = 0.0;
  double sum_precision = 0.0;

  bool operator==(const CalibrationBucket& other) const = default;
};

inline constexpr std::size_t kCalibrationBuckets = 10;

/// Streamed sweep aggregates: everything `mexi_cli sweep` reports about
/// a population, in O(archetypes + bins) memory regardless of
/// population size. Fold() consumes one matcher; the sweep driver folds
/// in population order (ascending matcher index across shards), which
/// makes every double accumulator — and therefore ToJson() — bitwise
/// identical for any shard size and thread count. Merge() folds a
/// disjoint population range's aggregates; its counting state is
/// associative-exact, while the double score sums inherit the sketch's
/// merge-order caveat — which is exactly why the sweep driver folds
/// rather than merging per-shard partials.
class SweepAggregates {
 public:
  SweepAggregates();

  /// Folds one characterized matcher into the aggregates.
  void Fold(sim::Archetype archetype, const ExpertMeasures& measures,
            const ExpertLabel& truth, const ExpertLabel& predicted,
            std::size_t num_decisions);

  /// Folds `other` (an aggregate over a *later* population range) into
  /// this one.
  void Merge(const SweepAggregates& other);

  std::uint64_t matchers() const { return matchers_; }
  std::uint64_t decisions() const { return decisions_; }
  const ArchetypeAggregate& archetype(sim::Archetype a) const {
    return archetypes_[static_cast<std::size_t>(a)];
  }
  const QuantileSketch& precision_sketch() const { return precision_; }
  const QuantileSketch& recall_sketch() const { return recall_; }
  const QuantileSketch& resolution_sketch() const { return resolution_; }
  const QuantileSketch& calibration_sketch() const { return calibration_; }
  const std::array<CalibrationBucket, kCalibrationBuckets>&
  calibration_buckets() const {
    return buckets_;
  }

  /// Byte-stable JSON report (doubles via %.17g): totals, per-archetype
  /// label confusions, score quantiles, calibration buckets. Equal
  /// aggregate state produces byte-identical JSON.
  std::string ToJson() const;

  void Save(robust::BinaryWriter& writer) const;
  void Load(robust::BinaryReader& reader);

  bool operator==(const SweepAggregates& other) const = default;

 private:
  std::uint64_t matchers_ = 0;
  std::uint64_t decisions_ = 0;
  std::array<ArchetypeAggregate, sim::kNumArchetypes> archetypes_;
  QuantileSketch precision_;
  QuantileSketch recall_;
  QuantileSketch resolution_;
  QuantileSketch calibration_;
  std::array<CalibrationBucket, kCalibrationBuckets> buckets_;
};

/// Configuration of one population-scale sweep.
struct SweepConfig {
  /// Matchers to generate and characterize.
  std::size_t population = 100000;
  /// Matchers simulated, characterized, aggregated and *freed* per
  /// shard — the resident-memory bound.
  std::size_t shard_size = 512;
  /// Size of the paper-mix training study the model is fitted on.
  std::size_t train_matchers = 64;
  std::uint64_t seed = 42;
  /// Task family: "po", "oaei" or "er" (the CLI task streams).
  std::string task = "po";
  /// Mixture the population is drawn from (default: the wide mix with
  /// the adversarial archetypes).
  sim::PopulationMix mix = sim::WidePopulationMix();
  /// Non-empty enables per-shard checkpointing into this directory.
  std::string checkpoint_dir;
  /// Resume from the checkpoint instead of discarding it.
  bool resume = false;
  /// Model configuration; batch_size > 1 routes shard characterization
  /// through the batched inference engine.
  MexiConfig model = Mexi50Config();
};

/// Population-scale sweep driver.
///
/// Construction generates the task, builds a paper-mix training study,
/// fits the ground-truth thresholds and trains the MExI model — all
/// deterministic in `config.seed`. Run() then streams the population
/// through bounded-memory shards: each shard derives its matchers'
/// profiles and traces from order-independent forked streams
/// (Rng(sweep seed).Fork(matcher index), a pure function of the index),
/// characterizes them via CharacterizeAll, folds the results into the
/// aggregates in population order and frees the traces, so resident
/// memory is O(shard) while the aggregates are bitwise identical at any
/// shard size and thread count. With checkpointing enabled every shard
/// boundary commits {config fingerprint, next shard, aggregates}
/// through the two-generation CheckpointManager, and a resumed run
/// replays only the remaining shards to the byte-identical result.
class PopulationSweeper {
 public:
  explicit PopulationSweeper(const SweepConfig& config);
  ~PopulationSweeper();

  /// Runs all remaining shards and returns the final aggregates.
  const SweepAggregates& Run();

  /// Clears the aggregates and rewinds to shard 0 (in-memory only; used
  /// by benchmarks to re-run one trained sweeper).
  void Reset();

  const SweepAggregates& aggregates() const { return aggregates_; }
  std::size_t num_shards() const;
  std::size_t next_shard() const { return next_shard_; }
  const ExpertThresholds& thresholds() const { return thresholds_; }
  const Mexi& model() const { return model_; }

  /// FNV-1a fingerprint of everything that shapes the sweep's output;
  /// resumed runs reject checkpoints written under a different config.
  std::uint64_t ConfigFingerprint() const;

 private:
  void RunShard(std::size_t shard);
  void CommitCheckpoint();
  void TryResume();

  SweepConfig config_;
  sim::Study study_;
  sim::SimulationTask task_;
  ExpertThresholds thresholds_;
  Mexi model_;
  std::uint64_t matcher_stream_seed_ = 0;
  SweepAggregates aggregates_;
  std::size_t next_shard_ = 0;
};

}  // namespace mexi

#endif  // MEXI_CORE_SWEEP_H_
