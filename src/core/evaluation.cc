#include "core/evaluation.h"

#include <atomic>
#include <cstdlib>
#include <stdexcept>

#include "ml/dataset.h"
#include "ml/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "parallel/parallel_for.h"
#include "robust/checkpoint.h"
#include "robust/fault_injection.h"
#include "robust/serialize.h"
#include "robust/status.h"
#include "stats/hypothesis.h"

namespace mexi {

namespace {

/// Jaccard of one predicted/true label pair (both-empty counts as 1).
double LabelJaccard(const ExpertLabel& truth, const ExpertLabel& predicted) {
  const std::vector<int> t = truth.ToVector();
  const std::vector<int> p = predicted.ToVector();
  int inter = 0, uni = 0;
  for (std::size_t c = 0; c < t.size(); ++c) {
    inter += (t[c] == 1 && p[c] == 1) ? 1 : 0;
    uni += (t[c] == 1 || p[c] == 1) ? 1 : 0;
  }
  return uni == 0 ? 1.0 : static_cast<double>(inter) / uni;
}

/// Appends one test matcher's outcome to a method's running result.
void Accumulate(MethodResult& result, const ExpertLabel& truth,
                const ExpertLabel& predicted) {
  const std::vector<int> t = truth.ToVector();
  const std::vector<int> p = predicted.ToVector();
  for (std::size_t c = 0; c < 4; ++c) {
    result.per_matcher_correct[c].push_back(t[c] == p[c] ? 1.0 : 0.0);
  }
  result.per_matcher_jaccard.push_back(LabelJaccard(truth, predicted));
}

void Finalize(MethodResult& result) {
  for (std::size_t c = 0; c < 4; ++c) {
    double total = 0.0;
    for (double v : result.per_matcher_correct[c]) total += v;
    result.a_c[c] = result.per_matcher_correct[c].empty()
                        ? 0.0
                        : total / static_cast<double>(
                                      result.per_matcher_correct[c].size());
  }
  double total = 0.0;
  for (double v : result.per_matcher_jaccard) total += v;
  result.a_ml = result.per_matcher_jaccard.empty()
                    ? 0.0
                    : total / static_cast<double>(
                                  result.per_matcher_jaccard.size());
}

/// FNV-1a over everything that determines a fold's result, so stale
/// checkpoints from a differently-configured experiment are rejected.
std::uint64_t ExperimentSignature(const EvaluationInput& input,
                                  std::size_t num_methods,
                                  const ExperimentConfig& config) {
  robust::BinaryWriter w;
  w.WriteU64(input.matchers.size());
  w.WriteU64(num_methods);
  w.WriteU64(config.folds);
  w.WriteI64(config.bootstrap_replicates);
  w.WriteDouble(config.alpha);
  w.WriteU64(config.seed);
  return robust::Fnv1a(w.buffer().data(), w.buffer().size());
}

void SaveFoldResults(robust::BinaryWriter& writer,
                     const std::vector<MethodResult>& fold) {
  writer.WriteTag("FOLD");
  writer.WriteU64(fold.size());
  for (const MethodResult& result : fold) {
    writer.WriteString(result.method);
    for (std::size_t c = 0; c < 4; ++c) {
      writer.WriteDoubleVector(result.per_matcher_correct[c]);
    }
    writer.WriteDoubleVector(result.per_matcher_jaccard);
  }
}

void LoadFoldResults(robust::BinaryReader& reader,
                     std::vector<MethodResult>& fold) {
  reader.ExpectTag("FOLD");
  const std::uint64_t count = reader.ReadU64();
  if (count != fold.size()) {
    robust::ThrowStatus(robust::StatusCode::kCorruption,
                        "fold checkpoint method count mismatch");
  }
  for (MethodResult& result : fold) {
    result.method = reader.ReadString();
    for (std::size_t c = 0; c < 4; ++c) {
      result.per_matcher_correct[c] = reader.ReadDoubleVector();
    }
    result.per_matcher_jaccard = reader.ReadDoubleVector();
  }
}

/// Loads fold `f` from its checkpoint when one with a matching
/// signature exists; returns false (leaving `fold` untouched) when the
/// fold still needs to be computed. Corrupt generations are handled
/// inside CheckpointManager; a checkpoint from a different experiment
/// setup is treated as absent rather than fatal so a re-run with new
/// parameters recomputes cleanly.
bool TryLoadFold(robust::CheckpointManager& manager, std::uint64_t signature,
                 std::vector<MethodResult>& fold) {
  std::vector<std::uint8_t> payload;
  const robust::Status status = manager.LoadLatest(&payload);
  if (!status.ok()) return false;
  try {
    robust::BinaryReader reader(payload);
    reader.ExpectTag("KFCK");
    if (reader.ReadU64() != signature) return false;
    LoadFoldResults(reader, fold);
  } catch (const robust::StatusError&) {
    return false;
  }
  return true;
}

void CommitFold(robust::CheckpointManager& manager, std::uint64_t signature,
                const std::vector<MethodResult>& fold) {
  robust::BinaryWriter writer;
  writer.WriteTag("KFCK");
  writer.WriteU64(signature);
  SaveFoldResults(writer, fold);
  robust::ThrowIfError(manager.Commit(writer.buffer()));
}

}  // namespace

std::array<double, 4> PerLabelAccuracy(
    const std::vector<ExpertLabel>& truth,
    const std::vector<ExpertLabel>& predicted) {
  if (truth.size() != predicted.size()) {
    throw std::invalid_argument("PerLabelAccuracy: size mismatch");
  }
  std::array<double, 4> out = {0.0, 0.0, 0.0, 0.0};
  if (truth.empty()) return out;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const std::vector<int> t = truth[i].ToVector();
    const std::vector<int> p = predicted[i].ToVector();
    for (std::size_t c = 0; c < 4; ++c) out[c] += t[c] == p[c] ? 1.0 : 0.0;
  }
  for (auto& v : out) v /= static_cast<double>(truth.size());
  return out;
}

double MultiLabelAccuracy(const std::vector<ExpertLabel>& truth,
                          const std::vector<ExpertLabel>& predicted) {
  if (truth.size() != predicted.size()) {
    throw std::invalid_argument("MultiLabelAccuracy: size mismatch");
  }
  if (truth.empty()) return 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    total += LabelJaccard(truth[i], predicted[i]);
  }
  return total / static_cast<double>(truth.size());
}

std::vector<ExpertMeasures> ComputeAllMeasures(
    const EvaluationInput& input) {
  if (input.reference == nullptr) {
    throw std::invalid_argument("ComputeAllMeasures: null reference");
  }
  std::vector<ExpertMeasures> out;
  out.reserve(input.matchers.size());
  for (const auto& matcher : input.matchers) {
    out.push_back(ComputeMeasures(*matcher.history, matcher.source_size,
                                  matcher.target_size,
                                  *input.reference));
  }
  return out;
}

std::vector<ExpertLabel> LabelsFromMeasures(
    const std::vector<ExpertMeasures>& measures,
    const ExpertThresholds& thresholds) {
  std::vector<ExpertLabel> out;
  out.reserve(measures.size());
  for (const auto& m : measures) out.push_back(Characterize(m, thresholds));
  return out;
}

std::vector<MethodResult> RunKFoldExperiment(
    const EvaluationInput& input,
    const std::vector<CharacterizerFactory>& methods,
    const ExperimentConfig& config) {
  const obs::Span experiment_span("kfold.experiment");
  const std::vector<ExpertMeasures> measures = ComputeAllMeasures(input);
  stats::Rng rng(config.seed);
  ml::KFold folds(input.matchers.size(), config.folds, rng);

  // Folds are independent given the pre-computed split and measures
  // (each fold constructs fresh characterizers from the factories), so
  // they run concurrently, each accumulating into its own buffer. The
  // buffers merge in fold order below, which reproduces the sequential
  // loop's per-matcher sample order — and therefore the bootstrap
  // significance draws — exactly, for any thread count.
  std::vector<std::vector<MethodResult>> fold_results(
      folds.num_folds(), std::vector<MethodResult>(methods.size()));
  const bool checkpointing = !config.checkpoint_dir.empty();
  const std::uint64_t signature =
      checkpointing ? ExperimentSignature(input, methods.size(), config) : 0;
  std::atomic<int> folds_done{0};
  const auto report_fold = [&](std::size_t f, bool restored) {
    const int done = folds_done.fetch_add(1, std::memory_order_relaxed) + 1;
    auto& hub = obs::Observability::Global();
    if (hub.metrics_enabled()) {
      hub.registry()
          .GetCounter(restored ? "kfold.folds_restored"
                               : "kfold.folds_computed")
          .Add();
      hub.Event("kfold.fold_done",
                {obs::F("fold", f), obs::F("restored", restored ? 1 : 0),
                 obs::F("done", done),
                 obs::F("total", folds.num_folds())});
    }
    if (auto* status = hub.status()) {
      obs::StatusUpdate update;
      update.phase = "kfold";
      update.done = done;
      update.total = static_cast<int>(folds.num_folds());
      update.fold = done;
      update.total_folds = static_cast<int>(folds.num_folds());
      status->Update(update);
    }
  };
  parallel::ParallelFor(0, folds.num_folds(), 1, [&](std::size_t f) {
    const obs::Span fold_span("kfold.fold");
    // Fold-level load-or-compute: finished folds restore from their own
    // checkpoint stem (no cross-thread contention); missing or stale
    // ones recompute deterministically. Fault sites only fire for folds
    // actually computed, so a resumed run's hit counts stay meaningful.
    std::unique_ptr<robust::CheckpointManager> manager;
    if (checkpointing) {
      manager = std::make_unique<robust::CheckpointManager>(
          config.checkpoint_dir, "fold_" + std::to_string(f));
      if (TryLoadFold(*manager, signature, fold_results[f])) {
        report_fold(f, /*restored=*/true);
        return;
      }
    }
    const std::vector<std::size_t> train_idx = folds.TrainIndices(f);
    const std::vector<std::size_t>& test_idx = folds.TestIndices(f);

    // Thresholds come from the fold's training population (Section
    // II-B2: "we set thresholds with respect to the train set matchers").
    std::vector<ExpertMeasures> train_measures;
    std::vector<MatcherView> train_views;
    for (std::size_t idx : train_idx) {
      train_measures.push_back(measures[idx]);
      train_views.push_back(input.matchers[idx]);
    }
    const ExpertThresholds thresholds = FitThresholds(train_measures);
    const std::vector<ExpertLabel> train_labels =
        LabelsFromMeasures(train_measures, thresholds);

    std::vector<MatcherView> test_views;
    std::vector<ExpertLabel> test_labels;
    for (std::size_t idx : test_idx) {
      test_views.push_back(input.matchers[idx]);
      test_labels.push_back(Characterize(measures[idx], thresholds));
    }

    for (std::size_t m = 0; m < methods.size(); ++m) {
      std::unique_ptr<Characterizer> method = methods[m]();
      method->Fit(train_views, train_labels, input.context);
      fold_results[f][m].method = method->Name();
      const std::vector<ExpertLabel> predicted =
          method->CharacterizeAll(test_views);
      for (std::size_t i = 0; i < test_views.size(); ++i) {
        Accumulate(fold_results[f][m], test_labels[i], predicted[i]);
      }
    }
    if (manager) CommitFold(*manager, signature, fold_results[f]);
    report_fold(f, /*restored=*/false);
    switch (robust::FaultInjector::Global().Hit(robust::FaultSite::kFoldEnd)) {
      case robust::FaultKind::kAbort:
        robust::ThrowStatus(robust::StatusCode::kAborted,
                            "injected kill after fold " + std::to_string(f));
      case robust::FaultKind::kKill:
        std::_Exit(137);
      default:
        break;
    }
  });

  std::vector<MethodResult> results(methods.size());
  for (std::size_t f = 0; f < fold_results.size(); ++f) {
    for (std::size_t m = 0; m < methods.size(); ++m) {
      MethodResult& merged = results[m];
      const MethodResult& fold = fold_results[f][m];
      if (merged.method.empty()) merged.method = fold.method;
      for (std::size_t c = 0; c < 4; ++c) {
        merged.per_matcher_correct[c].insert(
            merged.per_matcher_correct[c].end(),
            fold.per_matcher_correct[c].begin(),
            fold.per_matcher_correct[c].end());
      }
      merged.per_matcher_jaccard.insert(merged.per_matcher_jaccard.end(),
                                        fold.per_matcher_jaccard.begin(),
                                        fold.per_matcher_jaccard.end());
    }
  }
  for (auto& result : results) Finalize(result);
  return results;
}

std::vector<MethodResult> RunTransferExperiment(
    const EvaluationInput& train_input, const EvaluationInput& test_input,
    const std::vector<CharacterizerFactory>& methods,
    const ExperimentConfig& config) {
  (void)config;
  const std::vector<ExpertMeasures> train_measures =
      ComputeAllMeasures(train_input);
  const ExpertThresholds thresholds = FitThresholds(train_measures);
  const std::vector<ExpertLabel> train_labels =
      LabelsFromMeasures(train_measures, thresholds);

  const std::vector<ExpertMeasures> test_measures =
      ComputeAllMeasures(test_input);
  const std::vector<ExpertLabel> test_labels =
      LabelsFromMeasures(test_measures, thresholds);

  std::vector<MethodResult> results(methods.size());
  for (std::size_t m = 0; m < methods.size(); ++m) {
    std::unique_ptr<Characterizer> method = methods[m]();
    method->Fit(train_input.matchers, train_labels, train_input.context);
    // Unsupervised population adaptation (consensuality is a property
    // of the population being characterized).
    method->AdaptToPopulation(test_input.matchers);
    results[m].method = method->Name();
    // Test-time characterization uses the *test* task's context only
    // through the matcher's own traces; the trained method carries its
    // training context (this is exactly the paper's cross-task
    // transfer, where matrix dimensions differ).
    const std::vector<ExpertLabel> predicted =
        method->CharacterizeAll(test_input.matchers);
    for (std::size_t i = 0; i < test_input.matchers.size(); ++i) {
      Accumulate(results[m], test_labels[i], predicted[i]);
    }
  }
  for (auto& result : results) Finalize(result);
  return results;
}

void MarkSignificance(std::vector<MethodResult>& results,
                      const std::string& baseline_name,
                      const ExperimentConfig& config) {
  const MethodResult* baseline = nullptr;
  for (const auto& result : results) {
    if (result.method == baseline_name) {
      baseline = &result;
      break;
    }
  }
  if (baseline == nullptr) {
    throw std::invalid_argument("MarkSignificance: unknown baseline " +
                                baseline_name);
  }
  stats::Rng rng(config.seed + 99);
  for (auto& result : results) {
    if (&result == baseline) continue;
    for (std::size_t c = 0; c < 4; ++c) {
      const auto test = stats::BootstrapMeanDifferenceTest(
          result.per_matcher_correct[c], baseline->per_matcher_correct[c],
          config.bootstrap_replicates, config.alpha, rng);
      result.significant[c] =
          test.significant && test.observed_difference > 0.0;
    }
    const auto test = stats::BootstrapMeanDifferenceTest(
        result.per_matcher_jaccard, baseline->per_matcher_jaccard,
        config.bootstrap_replicates, config.alpha, rng);
    result.significant[4] =
        test.significant && test.observed_difference > 0.0;
  }
}

}  // namespace mexi
