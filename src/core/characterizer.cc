#include "core/characterizer.h"

namespace mexi {

void Characterizer::AdaptToPopulation(
    const std::vector<MatcherView>& population) {
  (void)population;  // most methods need no adaptation
}

double Characterizer::ExpertScore(const MatcherView& matcher) const {
  return static_cast<double>(Characterize(matcher).Count()) / 4.0;
}

std::vector<ExpertLabel> Characterizer::CharacterizeAll(
    const std::vector<MatcherView>& matchers) const {
  std::vector<ExpertLabel> out;
  out.reserve(matchers.size());
  for (const auto& matcher : matchers) out.push_back(Characterize(matcher));
  return out;
}

}  // namespace mexi
