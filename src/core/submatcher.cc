#include "core/submatcher.h"

#include <algorithm>
#include <stdexcept>

namespace mexi {

namespace {

/// One window [start, start+size) as a unit, movement sliced to the
/// window's time span.
SubMatcherUnit MakeUnit(const MatcherView& matcher, std::size_t parent,
                        std::size_t start, std::size_t size) {
  SubMatcherUnit unit;
  unit.parent = parent;
  unit.history = matcher.history->Window(start, size);
  if (!unit.history.empty() && matcher.movement != nullptr) {
    const double t0 = unit.history.at(0).timestamp;
    const double t1 = unit.history.at(unit.history.size() - 1).timestamp;
    unit.movement = matcher.movement->TimeSlice(t0, t1);
  } else if (matcher.movement != nullptr) {
    unit.movement = *matcher.movement;
  }
  return unit;
}

void AddWindows(const MatcherView& matcher, std::size_t parent,
                std::size_t window, std::size_t stride,
                std::vector<SubMatcherUnit>* out) {
  const std::size_t n = matcher.history->size();
  if (n <= window) {
    out->push_back(MakeUnit(matcher, parent, 0, n));
    return;
  }
  for (std::size_t start = 0; start + window <= n; start += stride) {
    out->push_back(MakeUnit(matcher, parent, start, window));
    if (start + stride + window > n && start + window < n) {
      // Final, right-aligned window so the tail is covered.
      out->push_back(MakeUnit(matcher, parent, n - window, window));
      break;
    }
  }
}

}  // namespace

std::vector<SubMatcherUnit> BuildSubMatchers(const MatcherView& matcher,
                                             std::size_t parent_index,
                                             SubmatcherMode mode) {
  if (matcher.history == nullptr) {
    throw std::invalid_argument("BuildSubMatchers: null history");
  }
  std::vector<SubMatcherUnit> out;
  switch (mode) {
    case SubmatcherMode::kNone:
      out.push_back(
          MakeUnit(matcher, parent_index, 0, matcher.history->size()));
      break;
    case SubmatcherMode::kFixed50:
      // The full history is always a unit (test-time inputs are full
      // histories, so training must see their distribution too); the
      // windows augment it.
      out.push_back(
          MakeUnit(matcher, parent_index, 0, matcher.history->size()));
      if (matcher.history->size() > 50) {
        AddWindows(matcher, parent_index, 50, 25, &out);
      }
      break;
    case SubmatcherMode::kMulti70:
      out.push_back(
          MakeUnit(matcher, parent_index, 0, matcher.history->size()));
      for (std::size_t window : {30u, 40u, 50u, 60u, 70u}) {
        if (matcher.history->size() > window) {
          AddWindows(matcher, parent_index, window,
                     std::max<std::size_t>(1, window / 2), &out);
        }
      }
      break;
  }
  return out;
}

}  // namespace mexi
