#ifndef MEXI_CORE_CONFIG_IO_H_
#define MEXI_CORE_CONFIG_IO_H_

#include <cstdint>

#include "core/mexi.h"
#include "robust/serialize.h"

namespace mexi {

/// Binary round-trip of every MexiConfig field (nested LSTM/CNN/Adam
/// hyper-parameters included). The byte stream doubles as the bundle's
/// config fingerprint input: any hyper-parameter drift between the
/// process serving a bundle and the process that trained it changes the
/// bytes and therefore the fingerprint, so mismatches are rejected at
/// load time instead of silently serving a different model family.
void WriteMexiConfig(robust::BinaryWriter& writer, const MexiConfig& config);
MexiConfig ReadMexiConfig(robust::BinaryReader& reader);

/// FNV-1a over the WriteMexiConfig byte stream.
std::uint64_t MexiConfigFingerprint(const MexiConfig& config);

/// Nested-config helpers (exposed for the feature extractors' own
/// SaveState sections).
void WriteLstmConfig(robust::BinaryWriter& writer,
                     const ml::LstmSequenceModel::Config& config);
ml::LstmSequenceModel::Config ReadLstmConfig(robust::BinaryReader& reader);
void WriteCnnConfig(robust::BinaryWriter& writer,
                    const ml::CnnImageModel::Config& config);
ml::CnnImageModel::Config ReadCnnConfig(robust::BinaryReader& reader);

}  // namespace mexi

#endif  // MEXI_CORE_CONFIG_IO_H_
