#include "core/sweep.h"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "obs/obs.h"
#include "parallel/parallel_for.h"
#include "robust/checkpoint.h"
#include "robust/fault_injection.h"
#include "robust/status.h"
#include "schema/generators.h"
#include "stats/rng.h"

namespace mexi {

namespace {

/// Sub-stream of the sweep seed that matcher streams fork from. Streams
/// 1-3 are the PO/OAEI/ER task generators (sim/study.cc, mexi_cli).
constexpr std::uint64_t kSweepMatcherStream = 4;

/// Entity-resolution task stream (mirrors `mexi_cli simulate --task er`).
constexpr std::uint64_t kEntityResolutionTaskStream = 3;

/// Preprocessing applied to every sweep trace: same warm-up removal and
/// elapsed-time outlier filter as the study pipeline (StudyConfig
/// defaults).
constexpr std::size_t kWarmupDecisions = 3;
constexpr double kOutlierSigma = 2.0;

/// Checkpoint stem and payload tag.
constexpr char kCheckpointStem[] = "sweep";

void AppendF(std::string& out, const char* format, ...) {
  char buffer[256];
  va_list args;
  va_start(args, format);
  const int written = std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  if (written > 0) out.append(buffer, static_cast<std::size_t>(written));
}

}  // namespace

// ---------------------------------------------------------------------
// QuantileSketch

QuantileSketch::QuantileSketch(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins == 0 ? 1 : bins, 0) {
  if (!(hi > lo)) {
    robust::ThrowStatus(robust::StatusCode::kInvalidArgument,
                        "QuantileSketch needs hi > lo");
  }
}

void QuantileSketch::Add(double value) {
  const double clamped = std::min(hi_, std::max(lo_, value));
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  std::size_t bin = static_cast<std::size_t>((clamped - lo_) / width);
  bin = std::min(bin, counts_.size() - 1);
  ++counts_[bin];
  if (count_ == 0) {
    min_ = clamped;
    max_ = clamped;
  } else {
    min_ = std::min(min_, clamped);
    max_ = std::max(max_, clamped);
  }
  ++count_;
  sum_ += clamped;
}

void QuantileSketch::Merge(const QuantileSketch& other) {
  if (lo_ != other.lo_ || hi_ != other.hi_ ||
      counts_.size() != other.counts_.size()) {
    robust::ThrowStatus(robust::StatusCode::kInvalidArgument,
                        "QuantileSketch::Merge shape mismatch");
  }
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double QuantileSketch::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  const double target = q * static_cast<double>(count_);
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double before = static_cast<double>(seen);
    seen += counts_[i];
    if (static_cast<double>(seen) >= target) {
      const double within =
          (target - before) / static_cast<double>(counts_[i]);
      const double left = lo_ + static_cast<double>(i) * width;
      const double value = left + within * width;
      return std::min(max_, std::max(min_, value));
    }
  }
  return max_;
}

double QuantileSketch::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

void QuantileSketch::Save(robust::BinaryWriter& writer) const {
  writer.WriteTag("QSKT");
  writer.WriteDouble(lo_);
  writer.WriteDouble(hi_);
  writer.WriteU64(counts_.size());
  for (const std::uint64_t c : counts_) writer.WriteU64(c);
  writer.WriteU64(count_);
  writer.WriteDouble(sum_);
  writer.WriteDouble(min_);
  writer.WriteDouble(max_);
}

void QuantileSketch::Load(robust::BinaryReader& reader) {
  reader.ExpectTag("QSKT");
  lo_ = reader.ReadDouble();
  hi_ = reader.ReadDouble();
  const std::uint64_t bins = reader.ReadU64();
  if (bins == 0 || bins > reader.remaining() / 8) {
    robust::ThrowStatus(robust::StatusCode::kCorruption,
                        "bad sketch bin count");
  }
  counts_.assign(static_cast<std::size_t>(bins), 0);
  for (auto& c : counts_) c = reader.ReadU64();
  count_ = reader.ReadU64();
  sum_ = reader.ReadDouble();
  min_ = reader.ReadDouble();
  max_ = reader.ReadDouble();
}

// ---------------------------------------------------------------------
// LabelConfusion / ArchetypeAggregate

void LabelConfusion::Fold(bool truth, bool predicted) {
  if (truth && predicted) {
    ++tp;
  } else if (!truth && predicted) {
    ++fp;
  } else if (truth && !predicted) {
    ++fn;
  } else {
    ++tn;
  }
}

void LabelConfusion::Merge(const LabelConfusion& other) {
  tp += other.tp;
  fp += other.fp;
  fn += other.fn;
  tn += other.tn;
}

double LabelConfusion::Accuracy() const {
  const std::uint64_t total = Total();
  if (total == 0) return 1.0;
  return static_cast<double>(tp + tn) / static_cast<double>(total);
}

void ArchetypeAggregate::Merge(const ArchetypeAggregate& other) {
  matchers += other.matchers;
  decisions += other.decisions;
  for (std::size_t c = 0; c < confusion.size(); ++c) {
    confusion[c].Merge(other.confusion[c]);
  }
  true_full_expert += other.true_full_expert;
  predicted_full_expert += other.predicted_full_expert;
}

// ---------------------------------------------------------------------
// SweepAggregates

SweepAggregates::SweepAggregates()
    : precision_(0.0, 1.0),
      recall_(0.0, 1.0),
      resolution_(-1.0, 1.0),
      calibration_(-1.0, 1.0) {}

void SweepAggregates::Fold(sim::Archetype archetype,
                           const ExpertMeasures& measures,
                           const ExpertLabel& truth,
                           const ExpertLabel& predicted,
                           std::size_t num_decisions) {
  ++matchers_;
  decisions_ += num_decisions;

  ArchetypeAggregate& agg = archetypes_[static_cast<std::size_t>(archetype)];
  ++agg.matchers;
  agg.decisions += num_decisions;
  const auto truth_bits = truth.ToVector();
  const auto predicted_bits = predicted.ToVector();
  for (std::size_t c = 0; c < agg.confusion.size(); ++c) {
    agg.confusion[c].Fold(truth_bits[c] != 0, predicted_bits[c] != 0);
  }
  if (truth.IsFullExpert()) ++agg.true_full_expert;
  if (predicted.IsFullExpert()) ++agg.predicted_full_expert;

  precision_.Add(measures.precision);
  recall_.Add(measures.recall);
  resolution_.Add(measures.resolution);
  calibration_.Add(measures.calibration);

  // Reliability-diagram bucket keyed by the history-wide mean reported
  // confidence (Cal = mean confidence - precision, Eq. 5).
  const double mean_confidence = measures.calibration + measures.precision;
  const double clamped = std::min(1.0, std::max(0.0, mean_confidence));
  std::size_t bucket = static_cast<std::size_t>(
      clamped * static_cast<double>(kCalibrationBuckets));
  bucket = std::min(bucket, kCalibrationBuckets - 1);
  ++buckets_[bucket].count;
  buckets_[bucket].sum_confidence += mean_confidence;
  buckets_[bucket].sum_precision += measures.precision;
}

void SweepAggregates::Merge(const SweepAggregates& other) {
  matchers_ += other.matchers_;
  decisions_ += other.decisions_;
  for (std::size_t a = 0; a < archetypes_.size(); ++a) {
    archetypes_[a].Merge(other.archetypes_[a]);
  }
  precision_.Merge(other.precision_);
  recall_.Merge(other.recall_);
  resolution_.Merge(other.resolution_);
  calibration_.Merge(other.calibration_);
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    buckets_[b].count += other.buckets_[b].count;
    buckets_[b].sum_confidence += other.buckets_[b].sum_confidence;
    buckets_[b].sum_precision += other.buckets_[b].sum_precision;
  }
}

namespace {

void AppendSketchJson(std::string& out, const char* name,
                      const QuantileSketch& sketch) {
  AppendF(out, "\"%s\":{\"count\":%llu,\"mean\":%.17g,\"min\":%.17g,"
               "\"max\":%.17g,\"p10\":%.17g,\"p50\":%.17g,\"p90\":%.17g}",
          name, static_cast<unsigned long long>(sketch.count()),
          sketch.Mean(), sketch.min(), sketch.max(), sketch.Quantile(0.1),
          sketch.Quantile(0.5), sketch.Quantile(0.9));
}

}  // namespace

std::string SweepAggregates::ToJson() const {
  std::string out;
  out.reserve(4096);
  AppendF(out, "{\"schema_version\":1,\"matchers\":%llu,\"decisions\":%llu,",
          static_cast<unsigned long long>(matchers_),
          static_cast<unsigned long long>(decisions_));

  out += "\"archetypes\":{";
  for (std::size_t a = 0; a < archetypes_.size(); ++a) {
    const ArchetypeAggregate& agg = archetypes_[a];
    if (a != 0) out += ",";
    AppendF(out, "\"%s\":{\"matchers\":%llu,\"decisions\":%llu,"
                 "\"true_full_expert\":%llu,\"predicted_full_expert\":%llu,"
                 "\"confusion\":{",
            sim::ArchetypeName(static_cast<sim::Archetype>(a)).c_str(),
            static_cast<unsigned long long>(agg.matchers),
            static_cast<unsigned long long>(agg.decisions),
            static_cast<unsigned long long>(agg.true_full_expert),
            static_cast<unsigned long long>(agg.predicted_full_expert));
    const auto& names = CharacteristicNames();
    for (std::size_t c = 0; c < agg.confusion.size(); ++c) {
      const LabelConfusion& conf = agg.confusion[c];
      if (c != 0) out += ",";
      AppendF(out, "\"%s\":{\"tp\":%llu,\"fp\":%llu,\"fn\":%llu,"
                   "\"tn\":%llu,\"accuracy\":%.17g}",
              names[c].c_str(), static_cast<unsigned long long>(conf.tp),
              static_cast<unsigned long long>(conf.fp),
              static_cast<unsigned long long>(conf.fn),
              static_cast<unsigned long long>(conf.tn), conf.Accuracy());
    }
    out += "}}";
  }
  out += "},";

  out += "\"scores\":{";
  AppendSketchJson(out, "precision", precision_);
  out += ",";
  AppendSketchJson(out, "recall", recall_);
  out += ",";
  AppendSketchJson(out, "resolution", resolution_);
  out += ",";
  AppendSketchJson(out, "calibration", calibration_);
  out += "},";

  out += "\"calibration_buckets\":[";
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    const CalibrationBucket& bucket = buckets_[b];
    const double n = static_cast<double>(bucket.count);
    if (b != 0) out += ",";
    AppendF(out, "{\"count\":%llu,\"mean_confidence\":%.17g,"
                 "\"mean_precision\":%.17g}",
            static_cast<unsigned long long>(bucket.count),
            bucket.count == 0 ? 0.0 : bucket.sum_confidence / n,
            bucket.count == 0 ? 0.0 : bucket.sum_precision / n);
  }
  out += "]}";
  return out;
}

void SweepAggregates::Save(robust::BinaryWriter& writer) const {
  writer.WriteTag("SWAG");
  writer.WriteU64(matchers_);
  writer.WriteU64(decisions_);
  writer.WriteU64(archetypes_.size());
  for (const ArchetypeAggregate& agg : archetypes_) {
    writer.WriteU64(agg.matchers);
    writer.WriteU64(agg.decisions);
    for (const LabelConfusion& conf : agg.confusion) {
      writer.WriteU64(conf.tp);
      writer.WriteU64(conf.fp);
      writer.WriteU64(conf.fn);
      writer.WriteU64(conf.tn);
    }
    writer.WriteU64(agg.true_full_expert);
    writer.WriteU64(agg.predicted_full_expert);
  }
  precision_.Save(writer);
  recall_.Save(writer);
  resolution_.Save(writer);
  calibration_.Save(writer);
  writer.WriteU64(buckets_.size());
  for (const CalibrationBucket& bucket : buckets_) {
    writer.WriteU64(bucket.count);
    writer.WriteDouble(bucket.sum_confidence);
    writer.WriteDouble(bucket.sum_precision);
  }
}

void SweepAggregates::Load(robust::BinaryReader& reader) {
  reader.ExpectTag("SWAG");
  matchers_ = reader.ReadU64();
  decisions_ = reader.ReadU64();
  if (reader.ReadU64() != archetypes_.size()) {
    robust::ThrowStatus(robust::StatusCode::kCorruption,
                        "sweep aggregate archetype count mismatch");
  }
  for (ArchetypeAggregate& agg : archetypes_) {
    agg.matchers = reader.ReadU64();
    agg.decisions = reader.ReadU64();
    for (LabelConfusion& conf : agg.confusion) {
      conf.tp = reader.ReadU64();
      conf.fp = reader.ReadU64();
      conf.fn = reader.ReadU64();
      conf.tn = reader.ReadU64();
    }
    agg.true_full_expert = reader.ReadU64();
    agg.predicted_full_expert = reader.ReadU64();
  }
  precision_.Load(reader);
  recall_.Load(reader);
  resolution_.Load(reader);
  calibration_.Load(reader);
  if (reader.ReadU64() != buckets_.size()) {
    robust::ThrowStatus(robust::StatusCode::kCorruption,
                        "sweep aggregate bucket count mismatch");
  }
  for (CalibrationBucket& bucket : buckets_) {
    bucket.count = reader.ReadU64();
    bucket.sum_confidence = reader.ReadDouble();
    bucket.sum_precision = reader.ReadDouble();
  }
}

// ---------------------------------------------------------------------
// PopulationSweeper

PopulationSweeper::PopulationSweeper(const SweepConfig& config)
    : config_(config), model_(config.model) {
  if (config_.population == 0 || config_.shard_size == 0) {
    robust::ThrowStatus(robust::StatusCode::kInvalidArgument,
                        "sweep needs population > 0 and shard_size > 0");
  }
  const obs::Span span("sweep.train");

  sim::StudyConfig train_config;
  train_config.num_matchers = config_.train_matchers;
  train_config.seed = config_.seed;
  if (config_.task == "po") {
    study_ = sim::BuildPurchaseOrderStudy(train_config);
  } else if (config_.task == "oaei") {
    study_ = sim::BuildOaeiStudy(train_config);
  } else if (config_.task == "er") {
    study_ = sim::BuildStudy(
        schema::GenerateEntityResolutionTask(
            stats::Rng(config_.seed).SubSeed(kEntityResolutionTaskStream)),
        train_config);
  } else {
    robust::ThrowStatus(robust::StatusCode::kInvalidArgument,
                        "unknown sweep task '" + config_.task +
                            "' (want po|oaei|er)");
  }
  task_.pair = &study_.task;
  task_.similarity = &study_.similarity;
  task_.reference = &study_.reference;

  const std::size_t source_size = study_.task.source.size();
  const std::size_t target_size = study_.task.target.size();

  std::vector<MatcherView> train_views;
  std::vector<ExpertMeasures> train_measures;
  train_views.reserve(study_.matchers.size());
  train_measures.reserve(study_.matchers.size());
  for (const sim::SimulatedMatcher& m : study_.matchers) {
    MatcherView view;
    view.history = &m.history;
    view.movement = &m.movement;
    view.warmup_history = &m.warmup_history;
    view.source_size = source_size;
    view.target_size = target_size;
    train_views.push_back(view);
    train_measures.push_back(ComputeMeasures(m.history, source_size,
                                             target_size,
                                             study_.reference));
  }
  thresholds_ = FitThresholds(train_measures);

  std::vector<ExpertLabel> train_labels;
  train_labels.reserve(train_measures.size());
  for (const ExpertMeasures& m : train_measures) {
    train_labels.push_back(Characterize(m, thresholds_));
  }

  TaskContext context;
  context.source_size = source_size;
  context.target_size = target_size;
  context.warmup_source_size = study_.warmup_task.source.size();
  context.warmup_target_size = study_.warmup_task.target.size();
  context.warmup_reference = &study_.warmup_reference;
  model_.Fit(train_views, train_labels, context);

  // Matcher streams fork off a dedicated sub-stream of the sweep seed:
  // Fork(i) is a pure function of the matcher index, so traces are
  // independent of thread schedule AND shard boundaries.
  matcher_stream_seed_ =
      stats::Rng(config_.seed).SubSeed(kSweepMatcherStream);

  if (!config_.checkpoint_dir.empty()) {
    if (config_.resume) {
      TryResume();
    } else {
      robust::CheckpointManager(config_.checkpoint_dir, kCheckpointStem)
          .Discard();
    }
  }
}

PopulationSweeper::~PopulationSweeper() = default;

std::size_t PopulationSweeper::num_shards() const {
  return (config_.population + config_.shard_size - 1) / config_.shard_size;
}

std::uint64_t PopulationSweeper::ConfigFingerprint() const {
  robust::BinaryWriter writer;
  writer.WriteU64(config_.population);
  writer.WriteU64(config_.shard_size);
  writer.WriteU64(config_.train_matchers);
  writer.WriteU64(config_.seed);
  writer.WriteString(config_.task);
  for (std::size_t a = 0; a < sim::kNumArchetypes; ++a) {
    writer.WriteDouble(
        config_.mix.Weight(static_cast<sim::Archetype>(a)));
  }
  writer.WriteU64(model_.ConfigFingerprint());
  return robust::Fnv1a(writer.buffer().data(), writer.buffer().size());
}

void PopulationSweeper::Reset() {
  aggregates_ = SweepAggregates();
  next_shard_ = 0;
}

void PopulationSweeper::TryResume() {
  robust::CheckpointManager manager(config_.checkpoint_dir,
                                    kCheckpointStem);
  std::vector<std::uint8_t> payload;
  const robust::Status status = manager.LoadLatest(&payload);
  if (status.code() == robust::StatusCode::kNotFound) return;
  robust::ThrowIfError(status);

  robust::BinaryReader reader(payload);
  reader.ExpectTag("SWPC");
  const std::uint64_t fingerprint = reader.ReadU64();
  if (fingerprint != ConfigFingerprint()) {
    robust::ThrowStatus(
        robust::StatusCode::kInvalidArgument,
        "sweep checkpoint was written under a different configuration; "
        "rerun without --resume");
  }
  const std::uint64_t next = reader.ReadU64();
  if (next > num_shards()) {
    robust::ThrowStatus(robust::StatusCode::kCorruption,
                        "sweep checkpoint shard index out of range");
  }
  SweepAggregates restored;
  restored.Load(reader);
  aggregates_ = restored;
  next_shard_ = static_cast<std::size_t>(next);
}

void PopulationSweeper::CommitCheckpoint() {
  robust::BinaryWriter writer;
  writer.WriteTag("SWPC");
  writer.WriteU64(ConfigFingerprint());
  writer.WriteU64(next_shard_);
  aggregates_.Save(writer);
  robust::CheckpointManager manager(config_.checkpoint_dir,
                                    kCheckpointStem);
  robust::ThrowIfError(manager.Commit(writer.buffer()));
}

void PopulationSweeper::RunShard(std::size_t shard) {
  const obs::Span span("sweep.shard");
  const std::size_t begin = shard * config_.shard_size;
  const std::size_t end =
      std::min(config_.population, begin + config_.shard_size);
  const std::size_t count = end - begin;
  const std::size_t source_size = study_.task.source.size();
  const std::size_t target_size = study_.task.target.size();

  // Per-matcher slots, written disjointly by the parallel loop (the
  // ParallelFor determinism contract) and freed when the shard ends —
  // the sweep's whole per-matcher footprint lives here.
  struct Slot {
    sim::Archetype archetype = sim::Archetype::kMixed;
    matching::DecisionHistory history;
    matching::MovementMap movement{1280.0, 800.0};
    ExpertMeasures measures;
    ExpertLabel truth;
    std::size_t decisions = 0;
  };
  std::vector<Slot> slots(count);
  const stats::Rng stream_base(matcher_stream_seed_);
  parallel::ParallelFor(0, count, 1, [&](std::size_t j) {
    const std::size_t index = begin + j;
    stats::Rng rng = stream_base.Fork(index);
    Slot& slot = slots[j];
    slot.archetype = sim::SampleArchetype(config_.mix, rng);
    const sim::MatcherProfile base =
        sim::SampleProfile(slot.archetype, rng);
    // Cross-task matchers express a partially decorrelated profile on
    // the sweep task (everyone else passes through, drawing nothing).
    const sim::MatcherProfile profile = sim::PerTaskProfile(base, rng);
    sim::SimulatedTrace trace = sim::SimulateMatcher(task_, profile, rng);
    slot.history = trace.history.Preprocessed(kWarmupDecisions,
                                              kOutlierSigma);
    slot.movement = std::move(trace.movement);
    slot.decisions = slot.history.size();
    slot.measures = ComputeMeasures(slot.history, source_size, target_size,
                                    study_.reference);
    slot.truth = Characterize(slot.measures, thresholds_);
  });

  std::vector<MatcherView> views(count);
  for (std::size_t j = 0; j < count; ++j) {
    views[j].history = &slots[j].history;
    views[j].movement = &slots[j].movement;
    views[j].source_size = source_size;
    views[j].target_size = target_size;
  }
  const std::vector<ExpertLabel> predicted = model_.CharacterizeAll(views);

  // Population-order fold: ascending matcher index, independent of
  // shard boundaries, so the double accumulators see one canonical
  // summation order.
  std::uint64_t shard_decisions = 0;
  for (std::size_t j = 0; j < count; ++j) {
    aggregates_.Fold(slots[j].archetype, slots[j].measures, slots[j].truth,
                     predicted[j], slots[j].decisions);
    shard_decisions += slots[j].decisions;
  }

  if (obs::MetricsEnabled()) {
    auto& hub = obs::Observability::Global();
    hub.registry().GetCounter("sweep.matchers").Add(count);
    hub.registry().GetCounter("sweep.decisions").Add(shard_decisions);
  }
}

const SweepAggregates& PopulationSweeper::Run() {
  const std::size_t total_shards = num_shards();
  for (std::size_t shard = next_shard_; shard < total_shards; ++shard) {
    RunShard(shard);
    next_shard_ = shard + 1;
    if (!config_.checkpoint_dir.empty()) CommitCheckpoint();

    // Chaos hook: fires after the shard's state is durable, so a kill
    // here loses no folded work and --resume replays from the next
    // shard to the byte-identical aggregate.
    switch (robust::FaultInjector::Global().Hit(
        robust::FaultSite::kSweepShard)) {
      case robust::FaultKind::kAbort:
        robust::ThrowStatus(robust::StatusCode::kAborted,
                            "injected abort at sweep_shard");
      case robust::FaultKind::kKill:
        std::_Exit(137);
      default:
        break;
    }

    if (auto* status = obs::Observability::Global().status()) {
      obs::StatusUpdate update;
      update.phase = "sweep";
      update.done = static_cast<std::int64_t>(next_shard_);
      update.total = static_cast<std::int64_t>(total_shards);
      status->Update(update);
    }
  }
  return aggregates_;
}

}  // namespace mexi
