#include "core/mexi_regressor.h"

#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "core/features/aggregated_features.h"
#include "core/features/consistency_features.h"

namespace mexi {

namespace {

std::vector<std::unique_ptr<ml::Regressor>> RegressorZoo() {
  std::vector<std::unique_ptr<ml::Regressor>> zoo;
  zoo.push_back(std::make_unique<ml::RidgeRegression>());
  zoo.push_back(std::make_unique<ml::RandomForestRegressor>());
  zoo.push_back(std::make_unique<ml::KnnRegressor>());
  return zoo;
}

double CrossValidatedMae(const ml::Regressor& prototype,
                         const std::vector<std::vector<double>>& rows,
                         const std::vector<double>& targets,
                         std::size_t folds, stats::Rng& rng) {
  ml::KFold kfold(rows.size(), std::max<std::size_t>(2, folds), rng);
  double total = 0.0;
  std::size_t count = 0;
  for (std::size_t f = 0; f < kfold.num_folds(); ++f) {
    std::vector<std::vector<double>> train_rows;
    std::vector<double> train_targets;
    for (std::size_t idx : kfold.TrainIndices(f)) {
      train_rows.push_back(rows[idx]);
      train_targets.push_back(targets[idx]);
    }
    auto model = prototype.Clone();
    model->Fit(train_rows, train_targets);
    for (std::size_t idx : kfold.TestIndices(f)) {
      total += std::fabs(model->Predict(rows[idx]) - targets[idx]);
      ++count;
    }
  }
  return count > 0 ? total / static_cast<double>(count)
                   : std::numeric_limits<double>::infinity();
}

}  // namespace

MexiRegressor::MexiRegressor() : MexiRegressor(Config()) {}

MexiRegressor::MexiRegressor(const Config& config) : config_(config) {}

FeatureVector MexiRegressor::Encode(const MatcherView& matcher) const {
  FeatureVector phi;
  phi.Extend(LrsmFeatures(*matcher.history, matcher.source_size,
                          matcher.target_size));
  phi.Extend(BehavioralFeatures(*matcher.history));
  phi.Extend(ConsistencyFeatures(*matcher.history, consensus_));
  phi.Extend(MouseFeatures(*matcher.movement));
  return phi;
}

void MexiRegressor::Fit(const std::vector<MatcherView>& train,
                        const std::vector<ExpertMeasures>& measures,
                        const TaskContext& context) {
  if (train.size() != measures.size() || train.size() < 4) {
    throw std::invalid_argument("MexiRegressor::Fit: bad input sizes");
  }
  std::vector<const matching::DecisionHistory*> histories;
  histories.reserve(train.size());
  for (const auto& m : train) histories.push_back(m.history);
  consensus_ = ConsensusMap(histories, context.source_size,
                            context.target_size);

  std::vector<std::vector<double>> rows;
  rows.reserve(train.size());
  for (const auto& view : train) rows.push_back(Encode(view).values());

  const auto zoo = RegressorZoo();
  regressors_.clear();
  selected_models_.clear();
  stats::Rng rng(config_.seed);
  // Targets in the canonical order P, R, Res, Cal.
  for (int measure = 0; measure < 4; ++measure) {
    std::vector<double> targets;
    targets.reserve(train.size());
    for (const auto& m : measures) {
      targets.push_back(measure == 0   ? m.precision
                        : measure == 1 ? m.recall
                        : measure == 2 ? m.resolution
                                       : m.calibration);
    }
    double best_mae = std::numeric_limits<double>::infinity();
    const ml::Regressor* best = nullptr;
    for (const auto& prototype : zoo) {
      stats::Rng fold_rng = rng.Split();
      const double mae = CrossValidatedMae(
          *prototype, rows, targets, config_.selection_folds, fold_rng);
      if (mae < best_mae) {
        best_mae = mae;
        best = prototype.get();
      }
    }
    auto model = best->Clone();
    model->Fit(rows, targets);
    selected_models_.push_back(model->Name());
    regressors_.push_back(std::move(model));
  }
  fitted_ = true;
}

ExpertMeasures MexiRegressor::Estimate(const MatcherView& matcher) const {
  if (!fitted_) {
    throw std::logic_error("MexiRegressor::Estimate before Fit");
  }
  const std::vector<double> row = Encode(matcher).values();
  ExpertMeasures out;
  out.precision = regressors_[0]->Predict(row);
  out.recall = regressors_[1]->Predict(row);
  out.resolution = regressors_[2]->Predict(row);
  out.calibration = regressors_[3]->Predict(row);
  return out;
}

}  // namespace mexi
