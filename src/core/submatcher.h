#ifndef MEXI_CORE_SUBMATCHER_H_
#define MEXI_CORE_SUBMATCHER_H_

#include <cstddef>
#include <vector>

#include "core/matcher_view.h"
#include "matching/decision_history.h"
#include "matching/movement.h"

namespace mexi {

/// Sub-matcher augmentation modes (Section IV-B1):
///  * kNone    — MExI_∅: every matcher is one training unit.
///  * kFixed50 — MExI_50: overlapping windows of 50 consecutive
///               decisions (stride 25).
///  * kMulti70 — MExI_70: windows of 30, 40, 50, 60 and 70 decisions
///               (stride = half the window size), reusing subsets with
///               different sizes.
/// Windows are clipped to the available history; matchers shorter than a
/// window still contribute their full history once.
enum class SubmatcherMode { kNone = 0, kFixed50, kMulti70 };

/// A materialized training unit: a decision window plus the movement
/// events of its time span, tagged with the parent matcher index (labels
/// are inherited from the parent).
struct SubMatcherUnit {
  matching::DecisionHistory history;
  matching::MovementMap movement{1280.0, 800.0};
  std::size_t parent = 0;
};

/// Builds the training units for one matcher under `mode`.
std::vector<SubMatcherUnit> BuildSubMatchers(const MatcherView& matcher,
                                             std::size_t parent_index,
                                             SubmatcherMode mode);

}  // namespace mexi

#endif  // MEXI_CORE_SUBMATCHER_H_
