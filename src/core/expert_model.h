#ifndef MEXI_CORE_EXPERT_MODEL_H_
#define MEXI_CORE_EXPERT_MODEL_H_

#include <string>
#include <vector>

#include "matching/decision_history.h"
#include "matching/match_matrix.h"

namespace mexi {

/// The four measures of Section II-B evaluated on one matcher's history
/// against a reference match.
struct ExpertMeasures {
  /// P(H), Eq. 2: correct declared pairs / declared pairs.
  double precision = 0.0;
  /// R(H), Eq. 3: correct declared pairs / reference pairs.
  double recall = 0.0;
  /// Res(H), Eq. 4: Goodman-Kruskal gamma between final confidences and
  /// correctness.
  double resolution = 0.0;
  /// Two-sided p-value of the resolution.
  double resolution_pvalue = 1.0;
  /// Cal(H), Eq. 5: mean reported confidence minus precision
  /// (positive = overconfident; closer to 0 is better).
  double calibration = 0.0;
};

/// Computes all four measures from a decision history. Confidences for
/// resolution/calibration are the *final* per-pair confidences (the
/// matrix projection), and calibration uses the history-wide mean
/// confidence exactly as Eq. 5 prescribes.
ExpertMeasures ComputeMeasures(const matching::DecisionHistory& history,
                               std::size_t source_size,
                               std::size_t target_size,
                               const matching::MatchMatrix& reference);

/// Expertise thresholds (Section II-B). delta_p/delta_r are absolute;
/// delta_res/delta_cal are percentiles of the training population, set
/// by FitThresholds.
struct ExpertThresholds {
  double delta_p = 0.5;
  double delta_r = 0.5;
  double delta_res = 0.5;
  double delta_cal = 0.2;
  double resolution_alpha = 0.05;
};

/// Fits the population-relative thresholds on training measures:
/// delta_res = 80th percentile of resolutions, delta_cal = 20th
/// percentile of |calibration| (the paper's Section II-B2 protocol).
ExpertThresholds FitThresholds(const std::vector<ExpertMeasures>& train);

/// The 4-bit expertise characterization Y (Problem 1).
struct ExpertLabel {
  bool precise = false;
  bool thorough = false;
  bool correlated = false;
  bool calibrated = false;

  /// {0,1}^4 vector in the fixed order [P, R, Res, Cal].
  std::vector<int> ToVector() const;
  static ExpertLabel FromVector(const std::vector<int>& bits);

  /// Expert in all four characteristics.
  bool IsFullExpert() const;

  /// Number of characteristics held.
  int Count() const;

  bool operator==(const ExpertLabel& other) const = default;
};

/// Applies Eqs. 2-5's indicator functions.
ExpertLabel Characterize(const ExpertMeasures& measures,
                         const ExpertThresholds& thresholds);

/// Names of the four characteristics, order-matched to ToVector().
const std::vector<std::string>& CharacteristicNames();

/// Per-decision accumulated curves behind Figures 1/4/5/6: after each
/// decision k, the measures of the history prefix [0, k].
struct AccumulatedCurves {
  std::vector<double> precision;
  std::vector<double> recall;
  std::vector<double> mean_confidence;
  std::vector<double> resolution;
  std::vector<double> calibration;
};

AccumulatedCurves ComputeAccumulatedCurves(
    const matching::DecisionHistory& history, std::size_t source_size,
    std::size_t target_size, const matching::MatchMatrix& reference);

}  // namespace mexi

#endif  // MEXI_CORE_EXPERT_MODEL_H_
