#ifndef MEXI_CORE_MEXI_H_
#define MEXI_CORE_MEXI_H_

#include <memory>
#include <string>
#include <vector>

#include "core/characterizer.h"
#include "core/features/consensus.h"
#include "core/features/feature_vector.h"
#include "core/features/sequential_features.h"
#include "core/features/spatial_features.h"
#include "core/submatcher.h"
#include "matching/predictors.h"
#include "ml/classifier.h"

namespace mexi {

class StreamingCharacterizer;
struct StreamEmission;

/// Configuration of the MExI framework (Section III).
///
/// The five feature-set switches implement the Table III ablation: an
/// *include* run enables exactly one set, an *exclude* run disables
/// exactly one. Sub-matcher augmentation selects the paper's MExI_∅ /
/// MExI_50 / MExI_70 variants.
struct MexiConfig {
  std::string name = "MExI";
  SubmatcherMode submatcher_mode = SubmatcherMode::kFixed50;

  bool use_lrsm = true;
  bool use_beh = true;
  bool use_mou = true;
  bool use_seq = true;
  bool use_spa = true;
  /// Match-consistency (consensuality) features — part of MExI's novel
  /// correlation-feature group, not part of the LRSM/BEH baselines.
  bool use_con = true;

  SequentialFeatureExtractor::Config seq;
  SpatialFeatureExtractor::Config spa;

  /// Folds for the per-label classifier selection CV.
  std::size_t selection_folds = 3;
  /// Operating point of the per-label classifiers. `false` (default)
  /// selects classifiers by plain CV accuracy — the paper's Table II
  /// protocol, which maximizes the A_c scores. `true` selects by
  /// *balanced* accuracy and tunes per-label decision thresholds; use
  /// this when the goal is *finding* the rare full experts (the
  /// utilization experiments, Figs. 10/11): the cognitive labels are
  /// ~20% positive, and accuracy-optimal classifiers may never predict
  /// them.
  bool balanced_selection = false;
  /// Per-label univariate feature selection: keep the `max_features`
  /// strongest features (by |point-biserial correlation| with the label
  /// on the training table) before classifier training. 0 keeps all.
  std::size_t max_features = 32;
  /// Out-of-fold stacking for the network label coefficients (see
  /// DESIGN.md §5). Disable only to reproduce the naive in-sample
  /// late-fusion ablation (bench/ablation_fusion).
  bool oof_fusion = true;
  /// Serve-path chunk width for CharacterizeAll: > 1 routes population
  /// characterization through the batched inference engine (per-step
  /// GEMM in the LSTM, one CNN/classifier pass per chunk — see
  /// DESIGN.md "Batched inference & lane packing"). Exact mode stays
  /// bitwise identical per trace at every width; <= 1 keeps the
  /// per-trace legacy path. `mexi_cli characterize --batch-size`
  /// exposes it.
  std::size_t batch_size = 1;
  std::uint64_t seed = 4242;
};

/// The MExI matching-expert identification framework.
///
/// Training (Section III-B): build sub-matcher units; compute the
/// training-population consensus; train the LSTM on the decision
/// sequences and the four CNNs on the movement heat maps; fuse their
/// label coefficients with Phi_LRSM, Phi_Beh and Phi_Mou into Phi(D);
/// then train one binary classifier per expertise characteristic,
/// selecting the top performer from the model zoo by cross validation.
class Mexi : public Characterizer {
 public:
  explicit Mexi(const MexiConfig& config = MexiConfig());

  std::string Name() const override { return config_.name; }

  void Fit(const std::vector<MatcherView>& train,
           const std::vector<ExpertLabel>& labels,
           const TaskContext& context) override;

  ExpertLabel Characterize(const MatcherView& matcher) const override;

  /// Batched serve path (config().batch_size > 1): per-trace feature
  /// extraction sharded over the deterministic thread pool, then
  /// chunked LSTM/CNN PredictBatch and per-label classifier
  /// PredictProbaBatch over the population. Bitwise identical per
  /// matcher to Characterize in exact mode at every batch size and
  /// thread count; with batch_size <= 1 it falls back to the
  /// per-trace loop.
  std::vector<ExpertLabel> CharacterizeAll(
      const std::vector<MatcherView>& matchers) const override;

  /// Opens an incremental per-decision characterization stream against
  /// this fitted model (see core/streaming.h). The returned
  /// characterizer holds all per-matcher state — running feature
  /// accumulators, carried LSTM hidden/cell state, cell-level heat-map
  /// counts — so any number of concurrent streams can share one const
  /// Mexi. After the final decision, Finalize() is bitwise identical to
  /// Characterize of the same trace in exact mode (diff-identical in
  /// fast mode).
  StreamingCharacterizer OpenStream(std::size_t source_size,
                                    std::size_t target_size,
                                    double screen_width,
                                    double screen_height) const;

  /// Streams every matcher's full trace through OpenStream — movement
  /// events interleaved before each decision by timestamp — and returns
  /// the per-decision emissions plus one trailing exact Finalize
  /// emission per matcher. Sharded over the deterministic ThreadPool
  /// (disjoint writes, bitwise identical at any thread count).
  std::vector<std::vector<StreamEmission>> CharacterizeStream(
      const std::vector<MatcherView>& matchers) const;

  /// Rebuilds the consensuality statistics over `population` (their
  /// final matrices; no labels). Call before characterizing matchers of
  /// a different task than the training one.
  void AdaptToPopulation(
      const std::vector<MatcherView>& population) override;

  /// Mean per-label expertise probability (smoother than the default
  /// predicted-characteristic count).
  double ExpertScore(const MatcherView& matcher) const override;

  /// Per-label expertise probabilities (useful for ranking matchers).
  std::vector<double> CharacterizeProba(const MatcherView& matcher) const;

  /// The fused feature encoding Phi(D) of one matcher under the current
  /// configuration. Requires Fit(). Exposed for the ablation analysis
  /// and Table IV's feature-importance study.
  FeatureVector ExtractFeatures(const matching::DecisionHistory& history,
                                const matching::MovementMap& movement,
                                std::size_t source_size,
                                std::size_t target_size) const;

  /// Names of the classifiers selected per label (after Fit).
  const std::vector<std::string>& selected_models() const {
    return selected_models_;
  }

  const MexiConfig& config() const { return config_; }

  /// Serializes the complete fitted serve state — config, task dims,
  /// consensus, both deep extractors, and every selected per-label
  /// classifier (restored polymorphically by zoo name). A
  /// default-constructed Mexi restores to a bitwise-identical predictor:
  /// Characterize / CharacterizeAll / OpenStream all reproduce the
  /// original model's outputs exactly. Requires Fit();
  /// throws StatusError(kInvalidArgument) on an unfitted model.
  void SaveState(robust::BinaryWriter& writer) const;
  void LoadState(robust::BinaryReader& reader);

  /// FNV-1a fingerprint of this model's configuration; embedded in
  /// serve bundles so a config drift between trainer and server is
  /// rejected at load time.
  std::uint64_t ConfigFingerprint() const;

 private:
  /// The streaming engine reads the frozen serve-path state (consensus,
  /// extractors, fused classifiers, selection masks) directly.
  friend class StreamingCharacterizer;

  /// Phi_LRSM + Phi_Beh + Phi_Mou only (no network coefficients).
  FeatureVector AggregatedPart(const matching::DecisionHistory& history,
                               const matching::MovementMap& movement,
                               std::size_t source_size,
                               std::size_t target_size) const;

  /// Serve-path twin of AggregatedPart: the same feature values in the
  /// same order, without the name strings, with the LRSM predictors
  /// routed through `scratch` so the PCA slabs amortize across a chunk
  /// of traces. Bitwise identical to AggregatedPart(...).values().
  std::vector<double> AggregatedValues(
      const matching::DecisionHistory& history,
      const matching::MovementMap& movement, std::size_t source_size,
      std::size_t target_size, matching::PredictorScratch& scratch) const;

  MexiConfig config_;
  TaskContext context_;
  ConsensusMap consensus_;
  std::unique_ptr<SequentialFeatureExtractor> seq_extractor_;
  std::unique_ptr<SpatialFeatureExtractor> spa_extractor_;
  std::vector<std::unique_ptr<ml::BinaryClassifier>> label_classifiers_;
  std::vector<std::string> selected_models_;
  /// Per-label indices of the selected features (into the fused vector).
  std::vector<std::vector<std::size_t>> selected_features_;
  /// Per-label tuned probability decision thresholds.
  std::vector<double> label_thresholds_;
  bool fitted_ = false;
};

/// Factory presets matching the paper's method names.
MexiConfig MexiEmptyConfig();    // MExI_∅
MexiConfig Mexi50Config();       // MExI_50
MexiConfig Mexi70Config();       // MExI_70

}  // namespace mexi

#endif  // MEXI_CORE_MEXI_H_
