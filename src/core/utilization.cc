#include "core/utilization.h"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "ml/dataset.h"
#include "stats/descriptive.h"

namespace mexi {

namespace {

/// Materialized early-prefix traces for one population.
struct EarlyTraces {
  std::vector<matching::DecisionHistory> histories;
  std::vector<matching::MovementMap> movements;
};

EarlyTraces BuildEarlyTraces(const EvaluationInput& input,
                             std::size_t early_decisions) {
  EarlyTraces traces;
  traces.histories.reserve(input.matchers.size());
  traces.movements.reserve(input.matchers.size());
  for (const auto& matcher : input.matchers) {
    matching::DecisionHistory prefix =
        matcher.history->Prefix(early_decisions);
    if (!prefix.empty()) {
      const double t1 = prefix.at(prefix.size() - 1).timestamp;
      traces.movements.push_back(matcher.movement->TimeSlice(0.0, t1));
    } else {
      traces.movements.push_back(*matcher.movement);
    }
    traces.histories.push_back(std::move(prefix));
  }
  return traces;
}

std::vector<UtilizationResult> RunSelectionExperiment(
    const EvaluationInput& input,
    const std::vector<CharacterizerFactory>& methods,
    const ExperimentConfig& config, std::size_t early_decisions) {
  const std::vector<ExpertMeasures> measures = ComputeAllMeasures(input);

  // Optional early-identification traces (empty = use full traces).
  EarlyTraces early;
  const bool use_early = early_decisions > 0;
  if (use_early) early = BuildEarlyTraces(input, early_decisions);

  stats::Rng rng(config.seed);
  ml::KFold folds(input.matchers.size(), config.folds, rng);

  std::vector<std::vector<bool>> selected(
      methods.size(), std::vector<bool>(input.matchers.size(), false));
  std::vector<std::vector<double>> scores(
      methods.size(), std::vector<double>(input.matchers.size(), 0.0));

  for (std::size_t f = 0; f < folds.num_folds(); ++f) {
    std::vector<ExpertMeasures> train_measures;
    std::vector<MatcherView> train_views;
    for (std::size_t idx : folds.TrainIndices(f)) {
      train_measures.push_back(measures[idx]);
      train_views.push_back(input.matchers[idx]);
    }
    const ExpertThresholds thresholds = FitThresholds(train_measures);
    const std::vector<ExpertLabel> train_labels =
        LabelsFromMeasures(train_measures, thresholds);

    // Early identification trains on the same truncated traces it will
    // characterize (labels still come from full performance — no labels
    // are needed for the truncated decisions, as the paper notes).
    std::vector<MatcherView> fit_views = train_views;
    if (use_early) {
      std::size_t v = 0;
      for (std::size_t idx : folds.TrainIndices(f)) {
        fit_views[v].history = &early.histories[idx];
        fit_views[v].movement = &early.movements[idx];
        ++v;
      }
    }

    for (std::size_t m = 0; m < methods.size(); ++m) {
      std::unique_ptr<Characterizer> method = methods[m]();
      method->Fit(fit_views, train_labels, input.context);
      for (std::size_t idx : folds.TestIndices(f)) {
        MatcherView view = input.matchers[idx];
        if (use_early) {
          view.history = &early.histories[idx];
          view.movement = &early.movements[idx];
        }
        scores[m][idx] = method->ExpertScore(view);
        if (method->Characterize(view).IsFullExpert()) {
          selected[m][idx] = true;
        }
      }
    }
  }

  // Budgeted fallback: a method that never predicts a full expert (the
  // strict conjunction of four rare labels can go empty, especially
  // from early prefixes) still discharges a crowd by keeping its
  // top-scored ~5%. This mirrors how a deployment with a fixed expert
  // budget would act on graded scores.
  for (std::size_t m = 0; m < methods.size(); ++m) {
    bool any = false;
    for (bool b : selected[m]) any = any || b;
    if (any) continue;
    const std::size_t keep = std::max<std::size_t>(
        1, input.matchers.size() / 20);
    std::vector<std::size_t> order(input.matchers.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                return scores[m][a] > scores[m][b];
              });
    for (std::size_t k = 0; k < keep; ++k) selected[m][order[k]] = true;
  }

  std::vector<UtilizationResult> results;
  // no_filter row first: the whole population.
  UtilizationResult no_filter;
  no_filter.method = "no_filter";
  no_filter.performance = AggregateGroup(
      measures, std::vector<bool>(input.matchers.size(), true));
  results.push_back(no_filter);

  for (std::size_t m = 0; m < methods.size(); ++m) {
    UtilizationResult result;
    result.method = methods[m]()->Name();
    result.performance = AggregateGroup(measures, selected[m]);
    results.push_back(result);
  }
  return results;
}

}  // namespace

GroupPerformance AggregateGroup(const std::vector<ExpertMeasures>& measures,
                                const std::vector<bool>& selected) {
  if (measures.size() != selected.size()) {
    throw std::invalid_argument("AggregateGroup: size mismatch");
  }
  std::vector<double> p, r, res, cal;
  for (std::size_t i = 0; i < measures.size(); ++i) {
    if (!selected[i]) continue;
    p.push_back(measures[i].precision);
    r.push_back(measures[i].recall);
    res.push_back(measures[i].resolution);
    cal.push_back(std::fabs(measures[i].calibration));
  }
  GroupPerformance out;
  out.count = p.size();
  out.precision = stats::Mean(p);
  out.recall = stats::Mean(r);
  out.resolution = stats::Mean(res);
  out.calibration = stats::Mean(cal);
  out.var_precision = stats::Variance(p);
  out.var_recall = stats::Variance(r);
  out.var_resolution = stats::Variance(res);
  out.var_calibration = stats::Variance(cal);
  return out;
}

std::vector<bool> SelectPredictedExperts(
    const std::vector<ExpertLabel>& predictions, bool require_all) {
  std::vector<bool> out(predictions.size(), false);
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    out[i] = require_all ? predictions[i].IsFullExpert()
                         : predictions[i].Count() > 0;
  }
  return out;
}

std::vector<UtilizationResult> RunUtilizationExperiment(
    const EvaluationInput& input,
    const std::vector<CharacterizerFactory>& methods,
    const ExperimentConfig& config) {
  return RunSelectionExperiment(input, methods, config,
                                /*early_decisions=*/0);
}

std::vector<UtilizationResult> RunEarlyIdentificationExperiment(
    const EvaluationInput& input,
    const std::vector<CharacterizerFactory>& methods,
    const ExperimentConfig& config, std::size_t early_decisions) {
  if (early_decisions == 0) {
    std::vector<double> lengths;
    lengths.reserve(input.matchers.size());
    for (const auto& matcher : input.matchers) {
      lengths.push_back(static_cast<double>(matcher.history->size()));
    }
    early_decisions = std::max<std::size_t>(
        1, static_cast<std::size_t>(stats::Median(lengths) / 2.0));
  }
  return RunSelectionExperiment(input, methods, config, early_decisions);
}

}  // namespace mexi
