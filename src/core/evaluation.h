#ifndef MEXI_CORE_EVALUATION_H_
#define MEXI_CORE_EVALUATION_H_

#include <array>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/characterizer.h"
#include "core/expert_model.h"
#include "core/matcher_view.h"
#include "matching/match_matrix.h"
#include "stats/rng.h"

namespace mexi {

/// One labeled evaluation population: the matchers, the task context and
/// the main-task reference (used only to derive ground-truth labels, as
/// in the paper's protocol).
struct EvaluationInput {
  std::vector<MatcherView> matchers;
  TaskContext context;
  const matching::MatchMatrix* reference = nullptr;
};

/// Eq. 6: per-characteristic accuracies [A_P, A_R, A_Res, A_Cal].
std::array<double, 4> PerLabelAccuracy(
    const std::vector<ExpertLabel>& truth,
    const std::vector<ExpertLabel>& predicted);

/// Eq. 7: multi-label Jaccard accuracy A_ML.
double MultiLabelAccuracy(const std::vector<ExpertLabel>& truth,
                          const std::vector<ExpertLabel>& predicted);

/// A factory producing a fresh characterizer; one is constructed per
/// fold so no state leaks between folds.
using CharacterizerFactory =
    std::function<std::unique_ptr<Characterizer>()>;

/// Aggregate result of one method across folds, including the
/// per-matcher samples needed by the bootstrap significance tests.
struct MethodResult {
  std::string method;
  std::array<double, 4> a_c = {0.0, 0.0, 0.0, 0.0};
  double a_ml = 0.0;
  /// Per test matcher: 0/1 correctness per characteristic.
  std::array<std::vector<double>, 4> per_matcher_correct;
  /// Per test matcher: Jaccard score of the full characterization.
  std::vector<double> per_matcher_jaccard;
  /// Significance flags vs. a designated baseline (filled by
  /// MarkSignificance): [A_P, A_R, A_Res, A_Cal, A_ML].
  std::array<bool, 5> significant = {false, false, false, false, false};
};

struct ExperimentConfig {
  std::size_t folds = 5;
  int bootstrap_replicates = 2000;
  double alpha = 0.05;
  std::uint64_t seed = 777;
  /// When non-empty, RunKFoldExperiment commits each completed fold's
  /// results into this directory (atomic two-generation checkpoints)
  /// and, on a later run with the same setup, loads finished folds
  /// instead of recomputing them. A killed-and-resumed experiment
  /// produces bitwise-identical results to an uninterrupted one.
  std::string checkpoint_dir;
};

/// The paper's Expert Identification experiment (Table IIa): labels are
/// computed with thresholds fitted on each fold's training population;
/// every method is trained on the fold's train matchers and evaluated on
/// the held-out fold; results average over folds.
std::vector<MethodResult> RunKFoldExperiment(
    const EvaluationInput& input,
    const std::vector<CharacterizerFactory>& methods,
    const ExperimentConfig& config);

/// The Generalizability experiment (Table IIb): train on `train_input`
/// (PO matchers), test on `test_input` (OAEI matchers). Thresholds are
/// fitted on the training population.
std::vector<MethodResult> RunTransferExperiment(
    const EvaluationInput& train_input, const EvaluationInput& test_input,
    const std::vector<CharacterizerFactory>& methods,
    const ExperimentConfig& config);

/// Two-sample bootstrap tests of every method against the named baseline
/// (the paper's asterisks, p < alpha), over per-matcher correctness /
/// Jaccard samples. Sets `significant` on each result; the baseline's
/// own flags stay false.
void MarkSignificance(std::vector<MethodResult>& results,
                      const std::string& baseline_name,
                      const ExperimentConfig& config);

/// Ground-truth labels of a population: measures per matcher plus
/// thresholds fitted on the (train) measures you pass in.
std::vector<ExpertMeasures> ComputeAllMeasures(
    const EvaluationInput& input);
std::vector<ExpertLabel> LabelsFromMeasures(
    const std::vector<ExpertMeasures>& measures,
    const ExpertThresholds& thresholds);

}  // namespace mexi

#endif  // MEXI_CORE_EVALUATION_H_
