#include "core/config_io.h"

namespace mexi {

namespace {

void WriteAdamConfig(robust::BinaryWriter& writer,
                     const ml::AdamOptimizer::Config& config) {
  writer.WriteDouble(config.learning_rate);
  writer.WriteDouble(config.beta1);
  writer.WriteDouble(config.beta2);
  writer.WriteDouble(config.epsilon);
}

ml::AdamOptimizer::Config ReadAdamConfig(robust::BinaryReader& reader) {
  ml::AdamOptimizer::Config config;
  config.learning_rate = reader.ReadDouble();
  config.beta1 = reader.ReadDouble();
  config.beta2 = reader.ReadDouble();
  config.epsilon = reader.ReadDouble();
  return config;
}

}  // namespace

void WriteLstmConfig(robust::BinaryWriter& writer,
                     const ml::LstmSequenceModel::Config& config) {
  writer.WriteU64(config.input_dim);
  writer.WriteU64(config.hidden_dim);
  writer.WriteU64(config.dense_dim);
  writer.WriteU64(config.num_labels);
  writer.WriteDouble(config.dropout);
  writer.WriteI64(config.epochs);
  writer.WriteU64(config.batch_size);
  WriteAdamConfig(writer, config.adam);
  writer.WriteU64(config.seed);
}

ml::LstmSequenceModel::Config ReadLstmConfig(robust::BinaryReader& reader) {
  ml::LstmSequenceModel::Config config;
  config.input_dim = static_cast<std::size_t>(reader.ReadU64());
  config.hidden_dim = static_cast<std::size_t>(reader.ReadU64());
  config.dense_dim = static_cast<std::size_t>(reader.ReadU64());
  config.num_labels = static_cast<std::size_t>(reader.ReadU64());
  config.dropout = reader.ReadDouble();
  config.epochs = static_cast<int>(reader.ReadI64());
  config.batch_size = static_cast<std::size_t>(reader.ReadU64());
  config.adam = ReadAdamConfig(reader);
  config.seed = reader.ReadU64();
  return config;
}

void WriteCnnConfig(robust::BinaryWriter& writer,
                    const ml::CnnImageModel::Config& config) {
  writer.WriteU64(config.image_rows);
  writer.WriteU64(config.image_cols);
  writer.WriteU64(config.conv1_filters);
  writer.WriteU64(config.conv2_filters);
  writer.WriteU64(config.dense_dim);
  writer.WriteU64(config.num_labels);
  writer.WriteI64(config.epochs);
  writer.WriteU64(config.batch_size);
  WriteAdamConfig(writer, config.adam);
  writer.WriteU64(config.seed);
}

ml::CnnImageModel::Config ReadCnnConfig(robust::BinaryReader& reader) {
  ml::CnnImageModel::Config config;
  config.image_rows = static_cast<std::size_t>(reader.ReadU64());
  config.image_cols = static_cast<std::size_t>(reader.ReadU64());
  config.conv1_filters = static_cast<std::size_t>(reader.ReadU64());
  config.conv2_filters = static_cast<std::size_t>(reader.ReadU64());
  config.dense_dim = static_cast<std::size_t>(reader.ReadU64());
  config.num_labels = static_cast<std::size_t>(reader.ReadU64());
  config.epochs = static_cast<int>(reader.ReadI64());
  config.batch_size = static_cast<std::size_t>(reader.ReadU64());
  config.adam = ReadAdamConfig(reader);
  config.seed = reader.ReadU64();
  return config;
}

void WriteMexiConfig(robust::BinaryWriter& writer, const MexiConfig& config) {
  writer.WriteTag("MXCF");
  writer.WriteString(config.name);
  writer.WriteU8(static_cast<std::uint8_t>(config.submatcher_mode));
  writer.WriteBool(config.use_lrsm);
  writer.WriteBool(config.use_beh);
  writer.WriteBool(config.use_mou);
  writer.WriteBool(config.use_seq);
  writer.WriteBool(config.use_spa);
  writer.WriteBool(config.use_con);
  WriteLstmConfig(writer, config.seq.lstm);
  writer.WriteDouble(config.seq.time_scale);
  WriteCnnConfig(writer, config.spa.cnn);
  writer.WriteU64(config.spa.pretrain_images);
  writer.WriteI64(config.spa.pretrain_epochs);
  writer.WriteU64(config.spa.seed);
  writer.WriteU64(config.selection_folds);
  writer.WriteBool(config.balanced_selection);
  writer.WriteU64(config.max_features);
  writer.WriteBool(config.oof_fusion);
  writer.WriteU64(config.batch_size);
  writer.WriteU64(config.seed);
}

MexiConfig ReadMexiConfig(robust::BinaryReader& reader) {
  reader.ExpectTag("MXCF");
  MexiConfig config;
  config.name = reader.ReadString();
  const std::uint8_t mode = reader.ReadU8();
  if (mode > static_cast<std::uint8_t>(SubmatcherMode::kMulti70)) {
    robust::ThrowStatus(robust::StatusCode::kCorruption,
                        "bad submatcher mode " + std::to_string(mode));
  }
  config.submatcher_mode = static_cast<SubmatcherMode>(mode);
  config.use_lrsm = reader.ReadBool();
  config.use_beh = reader.ReadBool();
  config.use_mou = reader.ReadBool();
  config.use_seq = reader.ReadBool();
  config.use_spa = reader.ReadBool();
  config.use_con = reader.ReadBool();
  config.seq.lstm = ReadLstmConfig(reader);
  config.seq.time_scale = reader.ReadDouble();
  config.spa.cnn = ReadCnnConfig(reader);
  config.spa.pretrain_images = static_cast<std::size_t>(reader.ReadU64());
  config.spa.pretrain_epochs = static_cast<int>(reader.ReadI64());
  config.spa.seed = reader.ReadU64();
  config.selection_folds = static_cast<std::size_t>(reader.ReadU64());
  config.balanced_selection = reader.ReadBool();
  config.max_features = static_cast<std::size_t>(reader.ReadU64());
  config.oof_fusion = reader.ReadBool();
  config.batch_size = static_cast<std::size_t>(reader.ReadU64());
  config.seed = reader.ReadU64();
  return config;
}

std::uint64_t MexiConfigFingerprint(const MexiConfig& config) {
  robust::BinaryWriter writer;
  WriteMexiConfig(writer, config);
  return robust::Fnv1a(writer.buffer().data(), writer.size());
}

}  // namespace mexi
