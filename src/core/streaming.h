#ifndef MEXI_CORE_STREAMING_H_
#define MEXI_CORE_STREAMING_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "core/expert_model.h"
#include "core/features/sequential_features.h"
#include "core/mexi.h"
#include "matching/decision_history.h"
#include "matching/match_matrix.h"
#include "matching/movement.h"
#include "matching/predictors.h"
#include "ml/nn/cnn.h"

namespace mexi {

/// One running characterization estimate, emitted after every decision.
struct StreamEmission {
  /// 1-based count of decisions consumed when this estimate was emitted.
  std::size_t decision_index = 0;
  ExpertLabel label;
  /// Per-characteristic expertise probabilities (CharacteristicNames()
  /// order, same as CharacterizeProba).
  std::vector<double> probabilities;
  /// Mean probability — the running expert score (cf. ExpertScore).
  double confidence = 0.0;
  /// True for the Finalize() emission, whose values are bitwise
  /// identical to the batch Characterize/CharacterizeProba answer.
  bool is_final = false;
};

/// Op-accounting for the amortized-O(1) contract, exposed so tests can
/// assert the update path never re-scans the trace
/// (tests/test_streaming.cc).
struct StreamCost {
  std::uint64_t decisions = 0;
  std::uint64_t movement_events = 0;
  /// Accumulator updates performed by PushDecision — bounded by a
  /// constant per decision (map/multiset operations count once each;
  /// their O(log T) node walks never touch the value buffers).
  std::uint64_t decision_update_ops = 0;
  /// Elements of any trace-length buffer visited. Stays 0 through every
  /// push and every per-decision emission; Finalize's single exactness
  /// pass accounts its buffers here once.
  std::uint64_t trace_buffer_scans = 0;
};

/// Incremental per-decision characterization over one matcher's trace.
///
/// Obtained from Mexi::OpenStream against a fitted model. Feed the trace
/// in timestamp order — movement events via PushMovement, decisions via
/// PushDecision — and a running 4-label estimate comes back after every
/// decision at amortized O(1) cost in the trace length: behavioral
/// aggregates live as running sums/counts/min-max plus a two-multiset
/// running median, consensus/consistency features as in-place add/remove
/// accumulators over the latest-confidence map, the spatial heat maps as
/// cell-level counts bumped per event, and the LSTM hidden/cell state is
/// carried forward with one StreamStep per decision — the prefix is
/// never re-run. Per emission the remaining cost is task-sized, not
/// trace-sized: the LRSM predictors over the incrementally-maintained
/// match matrix, four CNN forwards over the current heat maps, the LSTM
/// head, and the frozen fused classifiers.
///
/// Numerics: every emitted value is exact except seven scalars whose
/// batch definition is two-pass (std deviations, Pearson trends); those
/// are emitted from one-pass sufficient statistics during the stream and
/// recomputed by the batch formulas in Finalize() over the append-only
/// trace buffers, so the final emission is bitwise identical to
/// Characterize in exact math mode (diff-identical in fast mode).
///
/// Thread-safety: the model is only read; all mutable state lives here,
/// so concurrent streams over one Mexi are safe.
class StreamingCharacterizer {
 public:
  /// Appends one mouse event (timestamps non-decreasing; positions
  /// clamped into the screen, like MovementMap::Add).
  void PushMovement(const matching::MovementEvent& event);

  /// Consumes one decision and emits the running estimate.
  StreamEmission PushDecision(const matching::Decision& decision);

  /// The exact emission for everything consumed so far: one pass over
  /// the buffered trace re-derives the seven two-pass scalars with the
  /// batch stats code, the carried LSTM state supplies the sequence
  /// coefficients (still no prefix re-run), and the result is bitwise
  /// identical to batch Characterize of the same trace. Non-destructive:
  /// the stream may keep advancing afterwards.
  StreamEmission Finalize();

  const StreamCost& cost() const { return cost_; }
  std::size_t decisions_seen() const { return history_.size(); }

 private:
  friend class Mexi;
  StreamingCharacterizer(const Mexi& model, std::size_t source_size,
                         std::size_t target_size, double screen_width,
                         double screen_height);

  /// Assembles the fused feature row from the current incremental state
  /// (`exact_tail` switches the seven two-pass scalars to the batch
  /// formulas over the buffers) and runs the frozen classifiers.
  StreamEmission Emit(bool exact_tail);

  /// The running-median value under stats::Percentile(values, 50)
  /// semantics.
  double RunningMedian() const;
  void MedianInsert(double value);

  const Mexi* model_;
  std::size_t source_size_;
  std::size_t target_size_;
  double screen_width_;
  double screen_height_;

  // Append-only trace buffers. Written once per push, read only by
  // Finalize's exactness pass (cost_.trace_buffer_scans audits this).
  matching::DecisionHistory history_;
  matching::MovementMap movement_;

  // --- Phi_LRSM: the match matrix under Eq. 1's latest-wins overwrite.
  matching::MatchMatrix matrix_;
  matching::PredictorScratch predictor_scratch_;

  // --- Phi_Beh running state.
  double conf_sum_ = 0.0, conf_sumsq_ = 0.0;
  double conf_min_ = 0.0, conf_max_ = 0.0;
  double conf_first_ = 0.0, conf_last_ = 0.0;
  double conf_order_cross_ = 0.0;  // sum k * conf_k
  double first_ts_ = 0.0, last_ts_ = 0.0;
  double elapsed_sum_ = 0.0, elapsed_sumsq_ = 0.0;
  double elapsed_min_ = 0.0, elapsed_max_ = 0.0;
  double elapsed_order_cross_ = 0.0;  // sum k * elapsed_k
  std::multiset<double> median_lo_, median_hi_;  // two-heap running median

  // --- Phi_Con running state: latest confidence per pair plus in-place
  // add/remove accumulators over the pairs whose latest confidence is
  // positive.
  std::map<matching::ElementPair, double> latest_;
  std::size_t mind_changes_ = 0;
  std::size_t pos_pairs_ = 0;
  double share_sum_ = 0.0, share_sumsq_ = 0.0;
  double weighted_ = 0.0, weight_total_ = 0.0;
  std::size_t minority_ = 0, majority_ = 0;
  double conf_share_cross_ = 0.0;  // sum conf_i * share_i (Pearson est.)
  double con_conf_sum_ = 0.0, con_conf_sumsq_ = 0.0;
  double ordered_share_sum_ = 0.0, ordered_share_sumsq_ = 0.0;
  double ordered_share_cross_ = 0.0;  // sum k * share(d_k)

  // --- Phi_Mou running state.
  double path_length_ = 0.0;
  double x_sum_ = 0.0, y_sum_ = 0.0, x_sumsq_ = 0.0, y_sumsq_ = 0.0;
  double last_x_ = 0.0, last_y_ = 0.0;
  double first_move_ts_ = 0.0, last_move_ts_ = 0.0;
  std::size_t type_counts_[matching::kNumMovementTypes] = {0, 0, 0, 0};
  std::size_t region_counts_[4] = {0, 0, 0, 0};
  // Cell-level heat-map counts per movement type (integer-valued
  // doubles, so +1.0 bumps commute bitwise with batch HeatMap).
  std::vector<ml::Matrix> heat_counts_;

  // --- Phi_Seq: carried LSTM state (the tentpole — one step per
  // decision, prefix never re-run).
  SequentialFeatureExtractor::StreamState seq_state_;

  // --- Per-emission scratch, allocated once per stream.
  std::vector<ml::Image> images_;
  ml::CnnImageModel::PredictBatchWorkspace cnn_ws_;
  std::vector<double> row_;

  StreamCost cost_;
};

}  // namespace mexi

#endif  // MEXI_CORE_STREAMING_H_
