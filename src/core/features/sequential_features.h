#ifndef MEXI_CORE_FEATURES_SEQUENTIAL_FEATURES_H_
#define MEXI_CORE_FEATURES_SEQUENTIAL_FEATURES_H_

#include <vector>

#include "core/expert_model.h"
#include "core/features/consensus.h"
#include "core/features/feature_vector.h"
#include "matching/decision_history.h"
#include "ml/nn/lstm.h"

namespace mexi {

/// Phi_Seq(H): the LSTM late-fusion features of Section III-B.
///
/// During training an LSTM consumes each matcher's decision sequence —
/// per step the declared confidence, the (squashed) time spent until the
/// decision, and the training-population consensus of the decided pair —
/// and learns the four expertise labels. At extraction time the trained
/// network's four label coefficients become features
/// "seq.<characteristic>", fused into Phi(D).
class SequentialFeatureExtractor {
 public:
  struct Config {
    ml::LstmSequenceModel::Config lstm;
    /// Squash scale for inter-decision seconds: dt -> dt / (dt + scale).
    double time_scale = 60.0;
  };

  explicit SequentialFeatureExtractor(const Config& config = DefaultConfig());

  /// The default network: input [confidence, time, consensus].
  static Config DefaultConfig();

  /// Trains the LSTM on training histories and their labels. The
  /// consensus map must be built from the same training population.
  void Fit(const std::vector<const matching::DecisionHistory*>& histories,
           const std::vector<ExpertLabel>& labels,
           const ConsensusMap& consensus);

  /// Extracts the four label-coefficient features for one history.
  /// Requires Fit() first.
  FeatureVector Extract(const matching::DecisionHistory& history) const;

  /// Batched Extract: encodes every history and runs one LSTM
  /// PredictBatch over the chunk. Row i holds exactly the coefficient
  /// values Extract(*histories[i]) would produce (bitwise, mode for
  /// mode), in the same "seq.<characteristic>" order, without the
  /// per-trace name churn — callers fuse values positionally.
  std::vector<std::vector<double>> ExtractAllValues(
      const std::vector<const matching::DecisionHistory*>& histories) const;

  /// The sequence encoding used for both training and extraction
  /// (exposed for tests).
  ml::Sequence Encode(const matching::DecisionHistory& history) const;

  /// Carried per-stream state: the LSTM hidden/cell state plus the one
  /// scalar Encode threads between steps (the previous decision's
  /// timestamp). Caller-owned so concurrent streams share one const
  /// fitted extractor.
  struct StreamState {
    ml::LstmSequenceModel::StreamState lstm;
    double prev_time = 0.0;
    std::vector<double> x;  // encoded step scratch, input_dim wide
  };

  void StreamInit(StreamState& state) const;

  /// Encodes one decision exactly as Encode would at its position in the
  /// full history and advances the carried LSTM state by one step — the
  /// prefix is never re-run.
  void StreamPush(const matching::Decision& decision,
                  StreamState& state) const;

  /// The four "seq.<characteristic>" coefficient values for the prefix
  /// consumed so far; bitwise identical to Extract of that prefix in
  /// both math modes. Non-destructive: the stream can keep advancing.
  std::vector<double> StreamValues(StreamState& state) const;

  /// Swaps the consensus map used at extraction time (population
  /// adaptation for cross-task transfer). The trained LSTM weights stay.
  void SetConsensus(const ConsensusMap& consensus);

  /// Self-contained round-trip (config + consensus + LSTM weights): a
  /// default-constructed extractor restores to a bitwise-identical
  /// predictor, for the serve-path model bundle.
  void SaveState(robust::BinaryWriter& writer) const;
  void LoadState(robust::BinaryReader& reader);

  bool fitted() const { return fitted_; }

 private:
  Config config_;
  ConsensusMap consensus_;
  mutable ml::LstmSequenceModel model_;
  bool fitted_ = false;
};

}  // namespace mexi

#endif  // MEXI_CORE_FEATURES_SEQUENTIAL_FEATURES_H_
