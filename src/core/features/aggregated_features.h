#ifndef MEXI_CORE_FEATURES_AGGREGATED_FEATURES_H_
#define MEXI_CORE_FEATURES_AGGREGATED_FEATURES_H_

#include "core/features/feature_vector.h"
#include "matching/decision_history.h"
#include "matching/movement.h"

namespace mexi {

/// Phi_LRSM(H): matching-predictor features over the final matching
/// matrix (Section III-A, precision & thoroughness features). Feature
/// names are "lrsm.<predictor>".
FeatureVector LrsmFeatures(const matching::DecisionHistory& history,
                           std::size_t source_size,
                           std::size_t target_size);

/// Phi_Beh(H): aggregations over confidence, decision times and changed
/// decisions (Section III-A, calibration features; after Rzeszotarski &
/// Kittur-style behavioral traces). Names are "beh.<stat>"; the Table IV
/// features avgTime / countDistinctCorr / countMindChange / maxTime /
/// avgConf appear under those names.
FeatureVector BehavioralFeatures(const matching::DecisionHistory& history);

/// Phi_Mou(G): aggregated mouse features following Goyal et al. /
/// Rzeszotarski & Kittur: totalLength, totalTime, avgX/avgY, per-type
/// event counts and rates, and the share of activity per UI region.
/// Names are "mou.<stat>".
FeatureVector MouseFeatures(const matching::MovementMap& movement);

}  // namespace mexi

#endif  // MEXI_CORE_FEATURES_AGGREGATED_FEATURES_H_
