#include "core/features/consistency_features.h"

#include <map>

#include "stats/correlation.h"
#include "stats/descriptive.h"

namespace mexi {

FeatureVector ConsistencyFeatures(const matching::DecisionHistory& history,
                                  const ConsensusMap& consensus) {
  FeatureVector out;

  // Final-pair consensus statistics.
  std::map<matching::ElementPair, double> latest;
  for (const auto& d : history.decisions()) {
    latest[{d.source, d.target}] = d.confidence;
  }
  std::vector<double> shares, confidences;
  for (const auto& [pair, confidence] : latest) {
    if (confidence <= 0.0) continue;
    shares.push_back(consensus.Share(pair.first, pair.second));
    confidences.push_back(confidence);
  }
  out.Add("con.meanConsensus", stats::Mean(shares));
  out.Add("con.stdConsensus", stats::StdDev(shares));

  double weighted = 0.0, weight_total = 0.0;
  std::size_t minority = 0, majority = 0;
  for (std::size_t i = 0; i < shares.size(); ++i) {
    weighted += confidences[i] * shares[i];
    weight_total += confidences[i];
    minority += static_cast<std::size_t>(shares[i] < 0.15);
    majority += static_cast<std::size_t>(shares[i] > 0.5);
  }
  out.Add("con.weightedConsensus",
          weight_total > 0.0 ? weighted / weight_total : 0.0);
  out.Add("con.minorityShare",
          shares.empty() ? 0.0
                         : static_cast<double>(minority) /
                               static_cast<double>(shares.size()));
  out.Add("con.majorityShare",
          shares.empty() ? 0.0
                         : static_cast<double>(majority) /
                               static_cast<double>(shares.size()));
  out.Add("con.confConsensusCorr",
          stats::PearsonCorrelation(confidences, shares));

  // Temporal dimension: consensus of pairs in decision order.
  std::vector<double> order, ordered_shares;
  for (std::size_t k = 0; k < history.size(); ++k) {
    const auto& d = history.at(k);
    order.push_back(static_cast<double>(k));
    ordered_shares.push_back(consensus.Share(d.source, d.target));
  }
  out.Add("con.temporalConsensusTrend",
          stats::PearsonCorrelation(order, ordered_shares));
  return out;
}

}  // namespace mexi
