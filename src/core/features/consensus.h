#ifndef MEXI_CORE_FEATURES_CONSENSUS_H_
#define MEXI_CORE_FEATURES_CONSENSUS_H_

#include <cstddef>
#include <vector>

#include "matching/decision_history.h"
#include "ml/matrix.h"
#include "robust/serialize.h"

namespace mexi {

/// Consensus statistics over a training population: for every element
/// pair, the share of training matchers whose *final* matching matrix
/// contains it. This is the paper's pi_i sequential signal ("the number
/// of human matchers in the training set that selected h.e as part of
/// their final matching matrix") and the consensuality dimension of the
/// correlation features. Computed on the training set only — test
/// matchers are scored against the trained map.
class ConsensusMap {
 public:
  ConsensusMap() = default;

  /// Builds the map from training histories.
  ConsensusMap(const std::vector<const matching::DecisionHistory*>& train,
               std::size_t source_size, std::size_t target_size);

  bool empty() const { return counts_.empty(); }
  std::size_t num_matchers() const { return num_matchers_; }

  /// Share of training matchers that included (i, j); in [0, 1].
  double Share(std::size_t i, std::size_t j) const;

  /// Raw matcher count for (i, j).
  double Count(std::size_t i, std::size_t j) const;

  /// Mean consensus share over a history's distinct final pairs — the
  /// aggregate consensuality of one matcher.
  double MeanShare(const matching::DecisionHistory& history) const;

  /// Exact (bitwise) round-trip of the trained statistics, for the
  /// serve-path model bundle.
  void SaveState(robust::BinaryWriter& writer) const;
  void LoadState(robust::BinaryReader& reader);

 private:
  ml::Matrix counts_;
  std::size_t num_matchers_ = 0;
};

}  // namespace mexi

#endif  // MEXI_CORE_FEATURES_CONSENSUS_H_
