#ifndef MEXI_CORE_FEATURES_SPATIAL_FEATURES_H_
#define MEXI_CORE_FEATURES_SPATIAL_FEATURES_H_

#include <memory>
#include <vector>

#include "core/expert_model.h"
#include "core/features/feature_vector.h"
#include "matching/movement.h"
#include "ml/nn/cnn.h"

namespace mexi {

/// Phi_Spa(G): the CNN late-fusion features of Section III-B.
///
/// Four convolutional networks are trained, one per movement heat map
/// (move-over, left click, right click, scrolling), each predicting the
/// four expertise labels from the heat-map image. The paper fine-tunes a
/// pre-trained ResNet; this implementation reproduces the recipe at
/// laptop scale: each network is first pre-trained on a synthetic
/// attention-pattern pretext task, then fine-tuned on the matchers' heat
/// maps (see DESIGN.md §1). At extraction time the 4x4 label
/// coefficients become features "spa.<MapName>.<characteristic>" with
/// the paper's map names Move / LMouse / RMouse / SMouse.
class SpatialFeatureExtractor {
 public:
  struct Config {
    ml::CnnImageModel::Config cnn;
    /// Pretext-task images per network (0 disables pretraining).
    std::size_t pretrain_images = 64;
    int pretrain_epochs = 4;
    std::uint64_t seed = 97;
  };

  explicit SpatialFeatureExtractor(const Config& config = DefaultConfig());

  static Config DefaultConfig();

  /// Paper-style heat-map names indexed by MovementType.
  static const char* MapName(matching::MovementType type);

  /// Pre-trains (optionally) and fine-tunes the four networks.
  void Fit(const std::vector<const matching::MovementMap*>& movements,
           const std::vector<ExpertLabel>& labels);

  /// Extracts the 16 label-coefficient features for one movement map.
  FeatureVector Extract(const matching::MovementMap& movement) const;

  /// Batched Extract: per movement type, builds every heat map in the
  /// chunk and runs one CNN PredictBatch. Row i holds exactly the 16
  /// coefficient values Extract(*movements[i]) would produce (bitwise,
  /// mode for mode), in the same type-major "spa.<Map>.<char>" order.
  std::vector<std::vector<double>> ExtractAllValues(
      const std::vector<const matching::MovementMap*>& movements) const;

  /// Streaming emission support: the 16 coefficient values for four
  /// caller-built heat-map images indexed by MovementType (normalized
  /// like MovementMap::HeatMap). Runs each network's const PredictBatch
  /// at batch 1 over the shared workspace — bitwise identical to
  /// Extract of a movement map producing the same images, in both math
  /// modes, and safe to call from concurrent streams with per-stream
  /// workspaces.
  std::vector<double> ExtractValuesFromImages(
      const std::vector<ml::Image>& images,
      ml::CnnImageModel::PredictBatchWorkspace& ws) const;

  /// Self-contained round-trip (config + the four CNNs, each with its
  /// own drawn seed config): a default-constructed extractor restores to
  /// a bitwise-identical predictor, for the serve-path model bundle.
  void SaveState(robust::BinaryWriter& writer) const;
  void LoadState(robust::BinaryReader& reader);

  bool fitted() const { return fitted_; }

 private:
  /// Builds the pretext dataset: synthetic Gaussian-blob attention maps
  /// whose labels encode which UI regions carry mass.
  void Pretrain(ml::CnnImageModel& model, stats::Rng& rng) const;

  Config config_;
  std::vector<std::unique_ptr<ml::CnnImageModel>> models_;
  bool fitted_ = false;
};

}  // namespace mexi

#endif  // MEXI_CORE_FEATURES_SPATIAL_FEATURES_H_
