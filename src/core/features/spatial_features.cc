#include "core/features/spatial_features.h"

#include <cmath>
#include <stdexcept>

#include "core/config_io.h"
#include "ml/vmath/vmath.h"

namespace mexi {

SpatialFeatureExtractor::Config SpatialFeatureExtractor::DefaultConfig() {
  Config config;
  config.cnn.image_rows = 20;
  config.cnn.image_cols = 32;
  config.cnn.conv1_filters = 4;
  config.cnn.conv2_filters = 6;
  config.cnn.dense_dim = 16;
  config.cnn.num_labels = 4;
  config.cnn.epochs = 14;
  config.cnn.adam.learning_rate = 0.003;
  config.cnn.batch_size = 8;
  return config;
}

SpatialFeatureExtractor::SpatialFeatureExtractor(const Config& config)
    : config_(config) {}

const char* SpatialFeatureExtractor::MapName(matching::MovementType type) {
  switch (type) {
    case matching::MovementType::kMove:
      return "Move";
    case matching::MovementType::kLeftClick:
      return "LMouse";
    case matching::MovementType::kRightClick:
      return "RMouse";
    case matching::MovementType::kScroll:
      return "SMouse";
  }
  return "Unknown";
}

void SpatialFeatureExtractor::Pretrain(ml::CnnImageModel& model,
                                       stats::Rng& rng) const {
  if (config_.pretrain_images == 0) return;
  const std::size_t rows = config_.cnn.image_rows;
  const std::size_t cols = config_.cnn.image_cols;
  // Pretext task: classify which quadrant-ish UI regions carry mass.
  // Region centers in relative coordinates (match the UI layout).
  const double centers[4][2] = {
      {0.25, 0.25}, {0.75, 0.25}, {0.5, 0.48}, {0.5, 0.78}};
  std::vector<ml::Image> images;
  std::vector<std::vector<double>> targets;
  for (std::size_t n = 0; n < config_.pretrain_images; ++n) {
    ml::Image image(rows, cols, 0.0);
    std::vector<double> target(4, 0.0);
    const int blobs = 1 + static_cast<int>(rng.UniformIndex(3));
    for (int b = 0; b < blobs; ++b) {
      const std::size_t region = rng.UniformIndex(4);
      target[region] = 1.0;
      const double cx = centers[region][0] * static_cast<double>(cols);
      const double cy = centers[region][1] * static_cast<double>(rows);
      const double sx = rng.Uniform(1.5, 4.0);
      const double sy = rng.Uniform(1.0, 3.0);
      for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
          const double dx = (static_cast<double>(c) - cx) / sx;
          const double dy = (static_cast<double>(r) - cy) / sy;
          // Exact always: this synthesizes pretraining *data*, which
          // must be bitwise stable whatever the inference mode is.
          image(r, c) += ml::vmath::Exp(-0.5 * (dx * dx + dy * dy));
        }
      }
    }
    const double peak = image.MaxAbs();
    if (peak > 0.0) image *= 1.0 / peak;
    images.push_back(std::move(image));
    targets.push_back(std::move(target));
  }
  model.Fit(images, targets, config_.pretrain_epochs);
}

void SpatialFeatureExtractor::Fit(
    const std::vector<const matching::MovementMap*>& movements,
    const std::vector<ExpertLabel>& labels) {
  if (movements.size() != labels.size() || movements.empty()) {
    throw std::invalid_argument(
        "SpatialFeatureExtractor::Fit: bad input sizes");
  }
  std::vector<std::vector<double>> targets;
  targets.reserve(labels.size());
  for (const auto& label : labels) {
    const std::vector<int> bits = label.ToVector();
    targets.push_back(std::vector<double>(bits.begin(), bits.end()));
  }

  models_.clear();
  stats::Rng rng(config_.seed);
  for (int type = 0; type < matching::kNumMovementTypes; ++type) {
    ml::CnnImageModel::Config cnn_config = config_.cnn;
    cnn_config.seed = rng.NextU64();
    auto model = std::make_unique<ml::CnnImageModel>(cnn_config);
    stats::Rng pretrain_rng = rng.Split();
    Pretrain(*model, pretrain_rng);

    std::vector<ml::Image> images;
    images.reserve(movements.size());
    for (const auto* movement : movements) {
      images.push_back(movement->HeatMap(
          static_cast<matching::MovementType>(type),
          config_.cnn.image_rows, config_.cnn.image_cols));
    }
    model->Fit(images, targets);  // fine-tune on the real heat maps
    models_.push_back(std::move(model));
  }
  fitted_ = true;
}

FeatureVector SpatialFeatureExtractor::Extract(
    const matching::MovementMap& movement) const {
  if (!fitted_) {
    throw std::logic_error("SpatialFeatureExtractor: not fitted");
  }
  FeatureVector out;
  const auto& names = CharacteristicNames();
  for (int type = 0; type < matching::kNumMovementTypes; ++type) {
    const ml::Image image = movement.HeatMap(
        static_cast<matching::MovementType>(type), config_.cnn.image_rows,
        config_.cnn.image_cols);
    const std::vector<double> coefficients =
        models_[static_cast<std::size_t>(type)]->Predict(image);
    for (std::size_t c = 0; c < coefficients.size(); ++c) {
      out.Add(std::string("spa.") +
                  MapName(static_cast<matching::MovementType>(type)) + "." +
                  names[c],
              coefficients[c]);
    }
  }
  return out;
}

std::vector<std::vector<double>> SpatialFeatureExtractor::ExtractAllValues(
    const std::vector<const matching::MovementMap*>& movements) const {
  if (!fitted_) {
    throw std::logic_error("SpatialFeatureExtractor: not fitted");
  }
  const std::size_t count = movements.size();
  const std::size_t labels = config_.cnn.num_labels;
  std::vector<std::vector<double>> out(
      count,
      std::vector<double>(
          static_cast<std::size_t>(matching::kNumMovementTypes) * labels));
  std::vector<ml::Image> images;
  ml::CnnImageModel::PredictBatchWorkspace ws;
  for (int type = 0; type < matching::kNumMovementTypes; ++type) {
    images.clear();
    images.reserve(count);
    for (const auto* movement : movements) {
      images.push_back(movement->HeatMap(
          static_cast<matching::MovementType>(type), config_.cnn.image_rows,
          config_.cnn.image_cols));
    }
    const std::vector<std::vector<double>> coefficients =
        models_[static_cast<std::size_t>(type)]->PredictBatch(images, ws);
    for (std::size_t i = 0; i < count; ++i) {
      for (std::size_t c = 0; c < coefficients[i].size(); ++c) {
        out[i][static_cast<std::size_t>(type) * labels + c] =
            coefficients[i][c];
      }
    }
  }
  return out;
}

void SpatialFeatureExtractor::SaveState(robust::BinaryWriter& writer) const {
  writer.WriteTag("SPAX");
  WriteCnnConfig(writer, config_.cnn);
  writer.WriteU64(config_.pretrain_images);
  writer.WriteI64(config_.pretrain_epochs);
  writer.WriteU64(config_.seed);
  writer.WriteU64(models_.size());
  for (const auto& model : models_) {
    // Each network carries its own config: Fit draws a distinct seed per
    // movement type, and LoadState must rebuild under that exact config.
    WriteCnnConfig(writer, model->config());
    model->SaveState(writer);
  }
  writer.WriteBool(fitted_);
}

void SpatialFeatureExtractor::LoadState(robust::BinaryReader& reader) {
  reader.ExpectTag("SPAX");
  config_.cnn = ReadCnnConfig(reader);
  config_.pretrain_images = static_cast<std::size_t>(reader.ReadU64());
  config_.pretrain_epochs = static_cast<int>(reader.ReadI64());
  config_.seed = reader.ReadU64();
  const std::uint64_t count = reader.ReadU64();
  if (count != static_cast<std::uint64_t>(matching::kNumMovementTypes)) {
    robust::ThrowStatus(robust::StatusCode::kCorruption,
                        "spatial extractor expects one CNN per movement "
                        "type, checkpoint has " + std::to_string(count));
  }
  models_.clear();
  for (std::uint64_t i = 0; i < count; ++i) {
    const ml::CnnImageModel::Config cnn_config = ReadCnnConfig(reader);
    auto model = std::make_unique<ml::CnnImageModel>(cnn_config);
    model->LoadState(reader);
    models_.push_back(std::move(model));
  }
  fitted_ = reader.ReadBool();
}

std::vector<double> SpatialFeatureExtractor::ExtractValuesFromImages(
    const std::vector<ml::Image>& images,
    ml::CnnImageModel::PredictBatchWorkspace& ws) const {
  if (!fitted_) {
    throw std::logic_error("SpatialFeatureExtractor: not fitted");
  }
  if (images.size() != static_cast<std::size_t>(matching::kNumMovementTypes)) {
    throw std::invalid_argument(
        "SpatialFeatureExtractor: expected one image per movement type");
  }
  const std::size_t labels = config_.cnn.num_labels;
  std::vector<double> out;
  out.reserve(images.size() * labels);
  std::vector<ml::Image> single(1);
  for (int type = 0; type < matching::kNumMovementTypes; ++type) {
    single[0] = images[static_cast<std::size_t>(type)];
    const std::vector<std::vector<double>> coefficients =
        models_[static_cast<std::size_t>(type)]->PredictBatch(single, ws);
    out.insert(out.end(), coefficients[0].begin(), coefficients[0].end());
  }
  return out;
}

}  // namespace mexi
