#ifndef MEXI_CORE_FEATURES_CONSISTENCY_FEATURES_H_
#define MEXI_CORE_FEATURES_CONSISTENCY_FEATURES_H_

#include "core/features/consensus.h"
#include "core/features/feature_vector.h"
#include "matching/decision_history.h"

namespace mexi {

/// Match-consistency features (the paper's correlation-feature group,
/// Section III-A): consensuality — how the matcher's decisions relate to
/// the training population's — and temporal consistency. Ackerman et al.
/// showed these dimensions predict confidence and quality; consensus
/// features also dominate the paper's Table IV importance analysis.
/// Names are "con.<stat>":
///  * meanConsensus / stdConsensus — moments of the consensus share over
///    the matcher's final pairs.
///  * weightedConsensus — confidence-weighted mean consensus.
///  * minorityShare — fraction of final pairs almost nobody else chose
///    (< 0.15 share).
///  * majorityShare — fraction of final pairs most others chose (> 0.5).
///  * confConsensusCorr — Pearson correlation between the matcher's
///    final confidences and the pairs' consensus (self-monitoring
///    against the crowd; predictive of resolution).
///  * temporalConsensusTrend — correlation between decision order and
///    decided-pair consensus (negative = drifts to idiosyncratic pairs
///    late in the session).
FeatureVector ConsistencyFeatures(const matching::DecisionHistory& history,
                                  const ConsensusMap& consensus);

}  // namespace mexi

#endif  // MEXI_CORE_FEATURES_CONSISTENCY_FEATURES_H_
