#include "core/features/feature_vector.h"

#include <algorithm>
#include <stdexcept>

namespace mexi {

void FeatureVector::Add(std::string name, double value) {
  names_.push_back(std::move(name));
  values_.push_back(value);
}

void FeatureVector::Extend(const FeatureVector& other) {
  names_.insert(names_.end(), other.names_.begin(), other.names_.end());
  values_.insert(values_.end(), other.values_.begin(),
                 other.values_.end());
}

double FeatureVector::at(const std::string& name) const {
  const auto it = std::find(names_.begin(), names_.end(), name);
  if (it == names_.end()) {
    throw std::out_of_range("FeatureVector::at: unknown feature " + name);
  }
  return values_[static_cast<std::size_t>(it - names_.begin())];
}

bool FeatureVector::Has(const std::string& name) const {
  return std::find(names_.begin(), names_.end(), name) != names_.end();
}

}  // namespace mexi
