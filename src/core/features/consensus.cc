#include "core/features/consensus.h"

#include <stdexcept>

#include "ml/serialize.h"
#include "stats/descriptive.h"

namespace mexi {

ConsensusMap::ConsensusMap(
    const std::vector<const matching::DecisionHistory*>& train,
    std::size_t source_size, std::size_t target_size)
    : counts_(source_size, target_size, 0.0), num_matchers_(train.size()) {
  for (const auto* history : train) {
    if (history == nullptr) {
      throw std::invalid_argument("ConsensusMap: null history");
    }
    const matching::MatchMatrix matrix =
        history->ToMatrix(source_size, target_size);
    for (const auto& [i, j] : matrix.Match()) {
      counts_(i, j) += 1.0;
    }
  }
}

double ConsensusMap::Share(std::size_t i, std::size_t j) const {
  if (num_matchers_ == 0) return 0.0;
  // Out-of-range pairs (a foreign task's elements) have no consensus.
  if (i >= counts_.rows() || j >= counts_.cols()) return 0.0;
  return counts_(i, j) / static_cast<double>(num_matchers_);
}

double ConsensusMap::Count(std::size_t i, std::size_t j) const {
  if (i >= counts_.rows() || j >= counts_.cols()) return 0.0;
  return counts_(i, j);
}

void ConsensusMap::SaveState(robust::BinaryWriter& writer) const {
  writer.WriteTag("CONS");
  writer.WriteU64(num_matchers_);
  ml::WriteMatrix(writer, counts_);
}

void ConsensusMap::LoadState(robust::BinaryReader& reader) {
  reader.ExpectTag("CONS");
  num_matchers_ = static_cast<std::size_t>(reader.ReadU64());
  counts_ = ml::ReadMatrix(reader);
}

double ConsensusMap::MeanShare(
    const matching::DecisionHistory& history) const {
  if (empty()) return 0.0;
  std::vector<double> shares;
  for (const auto& [i, j] : history.FinalPairs()) {
    shares.push_back(Share(i, j));
  }
  return stats::Mean(shares);
}

}  // namespace mexi
