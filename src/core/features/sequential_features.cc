#include "core/features/sequential_features.h"

#include <stdexcept>

#include "core/config_io.h"

namespace mexi {

SequentialFeatureExtractor::Config
SequentialFeatureExtractor::DefaultConfig() {
  Config config;
  config.lstm.input_dim = 3;
  config.lstm.hidden_dim = 16;
  config.lstm.dense_dim = 24;
  config.lstm.num_labels = 4;
  config.lstm.dropout = 0.5;
  config.lstm.epochs = 25;
  config.lstm.adam.learning_rate = 0.003;
  config.lstm.batch_size = 8;
  return config;
}

SequentialFeatureExtractor::SequentialFeatureExtractor(const Config& config)
    : config_(config), model_(config.lstm) {}

ml::Sequence SequentialFeatureExtractor::Encode(
    const matching::DecisionHistory& history) const {
  ml::Sequence sequence;
  sequence.reserve(history.size());
  double prev_time = history.empty() ? 0.0 : history.at(0).timestamp;
  for (std::size_t k = 0; k < history.size(); ++k) {
    const auto& d = history.at(k);
    const double dt = k == 0 ? 0.0 : d.timestamp - prev_time;
    prev_time = d.timestamp;
    const double squashed_dt = dt / (dt + config_.time_scale);
    const double consensus =
        consensus_.empty() ? 0.0 : consensus_.Share(d.source, d.target);
    sequence.push_back({d.confidence, squashed_dt, consensus});
  }
  return sequence;
}

void SequentialFeatureExtractor::Fit(
    const std::vector<const matching::DecisionHistory*>& histories,
    const std::vector<ExpertLabel>& labels, const ConsensusMap& consensus) {
  if (histories.size() != labels.size() || histories.empty()) {
    throw std::invalid_argument(
        "SequentialFeatureExtractor::Fit: bad input sizes");
  }
  consensus_ = consensus;
  std::vector<ml::Sequence> sequences;
  std::vector<std::vector<double>> targets;
  sequences.reserve(histories.size());
  targets.reserve(histories.size());
  for (std::size_t i = 0; i < histories.size(); ++i) {
    sequences.push_back(Encode(*histories[i]));
    const std::vector<int> bits = labels[i].ToVector();
    targets.push_back(std::vector<double>(bits.begin(), bits.end()));
  }
  model_ = ml::LstmSequenceModel(config_.lstm);
  model_.Fit(sequences, targets);
  fitted_ = true;
}

void SequentialFeatureExtractor::SetConsensus(
    const ConsensusMap& consensus) {
  consensus_ = consensus;
}

FeatureVector SequentialFeatureExtractor::Extract(
    const matching::DecisionHistory& history) const {
  if (!fitted_) {
    throw std::logic_error("SequentialFeatureExtractor: not fitted");
  }
  const std::vector<double> coefficients =
      model_.Predict(Encode(history));
  FeatureVector out;
  const auto& names = CharacteristicNames();
  for (std::size_t c = 0; c < coefficients.size(); ++c) {
    out.Add("seq." + names[c], coefficients[c]);
  }
  return out;
}

void SequentialFeatureExtractor::StreamInit(StreamState& state) const {
  model_.InitStream(state.lstm);
  state.prev_time = 0.0;
  state.x.assign(config_.lstm.input_dim, 0.0);
}

void SequentialFeatureExtractor::StreamPush(const matching::Decision& d,
                                            StreamState& state) const {
  // Mirrors Encode step k: dt is forced to 0 at k == 0 (Encode seeds
  // prev_time with the first timestamp, so its first dt is 0 too), then
  // tracks the inter-decision gap.
  const double dt =
      state.lstm.steps == 0 ? 0.0 : d.timestamp - state.prev_time;
  state.prev_time = d.timestamp;
  const double squashed_dt = dt / (dt + config_.time_scale);
  const double consensus =
      consensus_.empty() ? 0.0 : consensus_.Share(d.source, d.target);
  state.x[0] = d.confidence;
  state.x[1] = squashed_dt;
  state.x[2] = consensus;
  model_.StreamStep(state.x, state.lstm);
}

std::vector<double> SequentialFeatureExtractor::StreamValues(
    StreamState& state) const {
  if (!fitted_) {
    throw std::logic_error("SequentialFeatureExtractor: not fitted");
  }
  return model_.StreamProbabilities(state.lstm);
}

void SequentialFeatureExtractor::SaveState(
    robust::BinaryWriter& writer) const {
  writer.WriteTag("SEQX");
  WriteLstmConfig(writer, config_.lstm);
  writer.WriteDouble(config_.time_scale);
  consensus_.SaveState(writer);
  model_.SaveState(writer);
  writer.WriteBool(fitted_);
}

void SequentialFeatureExtractor::LoadState(robust::BinaryReader& reader) {
  reader.ExpectTag("SEQX");
  config_.lstm = ReadLstmConfig(reader);
  config_.time_scale = reader.ReadDouble();
  consensus_.LoadState(reader);
  // Rebuild the model under the restored architecture before loading
  // weights — LoadState validates shapes against the live config.
  model_ = ml::LstmSequenceModel(config_.lstm);
  model_.LoadState(reader);
  fitted_ = reader.ReadBool();
}

std::vector<std::vector<double>> SequentialFeatureExtractor::ExtractAllValues(
    const std::vector<const matching::DecisionHistory*>& histories) const {
  if (!fitted_) {
    throw std::logic_error("SequentialFeatureExtractor: not fitted");
  }
  std::vector<ml::Sequence> sequences;
  sequences.reserve(histories.size());
  for (const auto* history : histories) sequences.push_back(Encode(*history));
  return model_.PredictBatch(sequences);
}

}  // namespace mexi
