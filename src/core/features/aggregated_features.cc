#include "core/features/aggregated_features.h"

#include <cmath>

#include "matching/predictors.h"
#include "stats/correlation.h"
#include "stats/descriptive.h"

namespace mexi {

FeatureVector LrsmFeatures(const matching::DecisionHistory& history,
                           std::size_t source_size,
                           std::size_t target_size) {
  FeatureVector out;
  const matching::MatchMatrix matrix =
      history.ToMatrix(source_size, target_size);
  for (const auto& predictor : matching::ComputePredictors(matrix)) {
    out.Add("lrsm." + predictor.name, predictor.value);
  }
  return out;
}

FeatureVector BehavioralFeatures(const matching::DecisionHistory& history) {
  FeatureVector out;
  const std::vector<double> conf = history.Confidences();
  const std::vector<double> elapsed = history.ElapsedTimes();

  out.Add("beh.avgConf", stats::Mean(conf));
  out.Add("beh.stdConf", stats::StdDev(conf));
  out.Add("beh.maxConf", stats::Max(conf));
  out.Add("beh.minConf", conf.empty() ? 0.0 : stats::Min(conf));
  out.Add("beh.medianConf", stats::Median(conf));

  out.Add("beh.avgTime", stats::Mean(elapsed));
  out.Add("beh.stdTime", stats::StdDev(elapsed));
  out.Add("beh.maxTime", stats::Max(elapsed));
  out.Add("beh.minTime", elapsed.empty() ? 0.0 : stats::Min(elapsed));
  out.Add("beh.totalTime",
          history.empty() ? 0.0
                          : history.at(history.size() - 1).timestamp -
                                history.at(0).timestamp);

  out.Add("beh.countDecisions", static_cast<double>(history.size()));
  out.Add("beh.countDistinctCorr",
          static_cast<double>(history.DistinctPairs()));
  out.Add("beh.countMindChange",
          static_cast<double>(history.MindChanges()));
  out.Add("beh.mindChangeRate",
          history.empty() ? 0.0
                          : static_cast<double>(history.MindChanges()) /
                                static_cast<double>(history.size()));

  // Temporal development: linear trends of confidence and pace capture
  // the decline / drift phenomena of Ackerman et al.
  std::vector<double> order(conf.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<double>(i);
  }
  out.Add("beh.confTrend", stats::PearsonCorrelation(order, conf));
  std::vector<double> elapsed_order(elapsed.size());
  for (std::size_t i = 0; i < elapsed_order.size(); ++i) {
    elapsed_order[i] = static_cast<double>(i);
  }
  out.Add("beh.timeTrend", stats::PearsonCorrelation(elapsed_order, elapsed));
  out.Add("beh.lastConf", conf.empty() ? 0.0 : conf.back());
  out.Add("beh.firstConf", conf.empty() ? 0.0 : conf.front());
  return out;
}

FeatureVector MouseFeatures(const matching::MovementMap& movement) {
  FeatureVector out;
  const double total = static_cast<double>(movement.size());

  out.Add("mou.totalLength", movement.TotalPathLength());
  out.Add("mou.totalTime", movement.TotalTime());
  out.Add("mou.countEvents", total);
  out.Add("mou.avgX", movement.MeanX());
  out.Add("mou.avgY", movement.MeanY());

  double var_x = 0.0, var_y = 0.0;
  const double mx = movement.MeanX();
  const double my = movement.MeanY();
  for (const auto& e : movement.events()) {
    var_x += (e.x - mx) * (e.x - mx);
    var_y += (e.y - my) * (e.y - my);
  }
  out.Add("mou.stdX", total > 0 ? std::sqrt(var_x / total) : 0.0);
  out.Add("mou.stdY", total > 0 ? std::sqrt(var_y / total) : 0.0);

  const double moves = static_cast<double>(
      movement.CountOfType(matching::MovementType::kMove));
  const double lclicks = static_cast<double>(
      movement.CountOfType(matching::MovementType::kLeftClick));
  const double rclicks = static_cast<double>(
      movement.CountOfType(matching::MovementType::kRightClick));
  const double scrolls = static_cast<double>(
      movement.CountOfType(matching::MovementType::kScroll));
  out.Add("mou.countMove", moves);
  out.Add("mou.countLClick", lclicks);
  out.Add("mou.countRClick", rclicks);
  out.Add("mou.countScroll", scrolls);
  out.Add("mou.clickRate", total > 0 ? (lclicks + rclicks) / total : 0.0);
  out.Add("mou.scrollRate", total > 0 ? scrolls / total : 0.0);
  out.Add("mou.avgSpeed", movement.TotalTime() > 0.0
                              ? movement.TotalPathLength() /
                                    movement.TotalTime()
                              : 0.0);

  // Share of activity per UI region ("on focus" style features): the
  // regions match sim::ScreenLayout, normalized to the screen size so
  // the features transfer across tasks.
  const double w = movement.screen_width();
  const double h = movement.screen_height();
  struct Region {
    const char* name;
    double x0, y0, x1, y1;
  };
  const Region regions[] = {
      {"sourceTree", 0.03, 0.04, 0.46, 0.42},
      {"targetTree", 0.54, 0.04, 0.98, 0.42},
      {"propsBox", 0.38, 0.42, 0.62, 0.53},
      {"matchTable", 0.08, 0.54, 0.92, 0.97},
  };
  for (const auto& region : regions) {
    double count = 0.0;
    for (const auto& e : movement.events()) {
      const double rx = e.x / w;
      const double ry = e.y / h;
      if (rx >= region.x0 && rx <= region.x1 && ry >= region.y0 &&
          ry <= region.y1) {
        count += 1.0;
      }
    }
    out.Add(std::string("mou.share.") + region.name,
            total > 0 ? count / total : 0.0);
  }
  return out;
}

}  // namespace mexi
