#ifndef MEXI_CORE_FEATURES_FEATURE_VECTOR_H_
#define MEXI_CORE_FEATURES_FEATURE_VECTOR_H_

#include <string>
#include <vector>

namespace mexi {

/// A named, ordered feature vector. Feature sets append into one shared
/// vector so names stay aligned with values all the way into the
/// classifiers and the permutation-importance analysis (Table IV).
class FeatureVector {
 public:
  FeatureVector() = default;

  /// Appends one named feature.
  void Add(std::string name, double value);

  /// Appends all features of `other`.
  void Extend(const FeatureVector& other);

  std::size_t size() const { return values_.size(); }
  const std::vector<std::string>& names() const { return names_; }
  const std::vector<double>& values() const { return values_; }

  /// Value lookup by name; throws std::out_of_range if absent.
  double at(const std::string& name) const;

  /// True when a feature of that name exists.
  bool Has(const std::string& name) const;

 private:
  std::vector<std::string> names_;
  std::vector<double> values_;
};

}  // namespace mexi

#endif  // MEXI_CORE_FEATURES_FEATURE_VECTOR_H_
