#include "core/baselines.h"

#include <cmath>
#include <stdexcept>

#include "stats/descriptive.h"

namespace mexi {

namespace {

/// Measures of a warm-up history against the warm-up reference; returns
/// false when the matcher has no warm-up data.
bool WarmupMeasures(const MatcherView& matcher, const TaskContext& context,
                    double* precision, double* calibration) {
  if (matcher.warmup_history == nullptr ||
      context.warmup_reference == nullptr ||
      matcher.warmup_history->empty()) {
    return false;
  }
  const ExpertMeasures m = ComputeMeasures(
      *matcher.warmup_history, context.warmup_source_size,
      context.warmup_target_size, *context.warmup_reference);
  *precision = m.precision;
  *calibration = m.calibration;
  return true;
}

ExpertLabel UniformLabel(bool expert) {
  ExpertLabel label;
  label.precise = label.thorough = label.correlated = label.calibrated =
      expert;
  return label;
}

}  // namespace

RandCharacterizer::RandCharacterizer(std::uint64_t seed) : rng_(seed) {}

void RandCharacterizer::Fit(const std::vector<MatcherView>& train,
                            const std::vector<ExpertLabel>& labels,
                            const TaskContext& context) {
  (void)train;
  (void)labels;
  (void)context;
}

ExpertLabel RandCharacterizer::Characterize(
    const MatcherView& matcher) const {
  (void)matcher;
  ExpertLabel label;
  label.precise = rng_.Bernoulli(0.5);
  label.thorough = rng_.Bernoulli(0.5);
  label.correlated = rng_.Bernoulli(0.5);
  label.calibrated = rng_.Bernoulli(0.5);
  return label;
}

RandFreqCharacterizer::RandFreqCharacterizer(std::uint64_t seed)
    : rng_(seed) {}

void RandFreqCharacterizer::Fit(const std::vector<MatcherView>& train,
                                const std::vector<ExpertLabel>& labels,
                                const TaskContext& context) {
  (void)train;
  (void)context;
  if (labels.empty()) {
    throw std::invalid_argument("RandFreqCharacterizer::Fit: no labels");
  }
  frequencies_.assign(4, 0.0);
  for (const auto& label : labels) {
    const std::vector<int> bits = label.ToVector();
    for (std::size_t c = 0; c < 4; ++c) frequencies_[c] += bits[c];
  }
  for (auto& f : frequencies_) f /= static_cast<double>(labels.size());
}

ExpertLabel RandFreqCharacterizer::Characterize(
    const MatcherView& matcher) const {
  (void)matcher;
  std::vector<int> bits(4, 0);
  for (std::size_t c = 0; c < 4; ++c) {
    bits[c] = rng_.Bernoulli(frequencies_[c]) ? 1 : 0;
  }
  return ExpertLabel::FromVector(bits);
}

void ConfCharacterizer::Fit(const std::vector<MatcherView>& train,
                            const std::vector<ExpertLabel>& labels,
                            const TaskContext& context) {
  (void)labels;
  (void)context;
  std::vector<double> means;
  means.reserve(train.size());
  for (const auto& matcher : train) {
    means.push_back(matcher.history->MeanConfidence());
  }
  threshold_ = stats::Mean(means);
}

ExpertLabel ConfCharacterizer::Characterize(
    const MatcherView& matcher) const {
  return UniformLabel(matcher.history->MeanConfidence() > threshold_);
}

void QualTestCharacterizer::Fit(const std::vector<MatcherView>& train,
                                const std::vector<ExpertLabel>& labels,
                                const TaskContext& context) {
  (void)train;
  (void)labels;
  context_ = context;
}

ExpertLabel QualTestCharacterizer::Characterize(
    const MatcherView& matcher) const {
  double precision = 0.0, calibration = 0.0;
  if (!WarmupMeasures(matcher, context_, &precision, &calibration)) {
    return UniformLabel(false);
  }
  return UniformLabel(precision > 0.5);
}

void SelfAssessCharacterizer::Fit(const std::vector<MatcherView>& train,
                                  const std::vector<ExpertLabel>& labels,
                                  const TaskContext& context) {
  (void)train;
  (void)labels;
  context_ = context;
}

ExpertLabel SelfAssessCharacterizer::Characterize(
    const MatcherView& matcher) const {
  double precision = 0.0, calibration = 0.0;
  if (!WarmupMeasures(matcher, context_, &precision, &calibration)) {
    return UniformLabel(false);
  }
  return UniformLabel(std::fabs(calibration) < 0.2 && precision > 0.6);
}

std::unique_ptr<Characterizer> MakeLrsmBaseline(std::uint64_t seed) {
  MexiConfig config;
  config.name = "LRSM";
  config.submatcher_mode = SubmatcherMode::kNone;
  config.use_lrsm = true;
  config.use_beh = false;
  config.use_mou = false;
  config.use_seq = false;
  config.use_spa = false;
  config.use_con = false;
  config.seed = seed;
  return std::make_unique<Mexi>(config);
}

std::unique_ptr<Characterizer> MakeBehBaseline(std::uint64_t seed) {
  MexiConfig config;
  config.name = "BEH";
  config.submatcher_mode = SubmatcherMode::kNone;
  config.use_lrsm = false;
  config.use_beh = true;
  config.use_mou = true;
  config.use_seq = false;
  config.use_spa = false;
  config.use_con = false;
  config.seed = seed;
  return std::make_unique<Mexi>(config);
}

std::vector<std::unique_ptr<Characterizer>> MakeAllBaselines(
    std::uint64_t seed) {
  // One sub-stream per stochastic baseline, forked off the shared seed.
  const stats::Rng seeder(seed);
  std::vector<std::unique_ptr<Characterizer>> out;
  out.push_back(std::make_unique<RandCharacterizer>(seeder.SubSeed(1)));
  out.push_back(std::make_unique<RandFreqCharacterizer>(seeder.SubSeed(2)));
  out.push_back(std::make_unique<ConfCharacterizer>());
  out.push_back(std::make_unique<QualTestCharacterizer>());
  out.push_back(std::make_unique<SelfAssessCharacterizer>());
  out.push_back(MakeLrsmBaseline(seeder.SubSeed(3)));
  out.push_back(MakeBehBaseline(seeder.SubSeed(4)));
  return out;
}

}  // namespace mexi
