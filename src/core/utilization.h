#ifndef MEXI_CORE_UTILIZATION_H_
#define MEXI_CORE_UTILIZATION_H_

#include <string>
#include <vector>

#include "core/characterizer.h"
#include "core/evaluation.h"
#include "core/expert_model.h"

namespace mexi {

/// Mean matching performance (with variances) of a group of matchers —
/// the bars and error bars of Figures 10/11.
struct GroupPerformance {
  double precision = 0.0;
  double recall = 0.0;
  double resolution = 0.0;
  /// Mean |calibration| (lower is better, as the paper notes).
  double calibration = 0.0;
  double var_precision = 0.0;
  double var_recall = 0.0;
  double var_resolution = 0.0;
  double var_calibration = 0.0;
  std::size_t count = 0;
};

/// Aggregates measures over the selected subset; `selected` is parallel
/// to `measures`. An empty selection yields a zeroed result.
GroupPerformance AggregateGroup(const std::vector<ExpertMeasures>& measures,
                                const std::vector<bool>& selected);

/// Select matchers predicted to be experts. Full experts (all four
/// characteristics) when `require_all` — the paper's Fig. 10 filter;
/// otherwise any matcher with at least one predicted characteristic.
std::vector<bool> SelectPredictedExperts(
    const std::vector<ExpertLabel>& predictions, bool require_all = true);

/// The utilization experiment (Fig. 10): k-fold over the population;
/// per fold, fit the method on train matchers and select predicted full
/// experts among the test matchers; aggregate the *true final*
/// performance of everyone ever selected. The "no_filter" row is the
/// whole population.
struct UtilizationResult {
  std::string method;
  GroupPerformance performance;
};

std::vector<UtilizationResult> RunUtilizationExperiment(
    const EvaluationInput& input,
    const std::vector<CharacterizerFactory>& methods,
    const ExperimentConfig& config);

/// The early-identification experiment (Fig. 11): identical protocol,
/// but each test matcher is characterized from only its first
/// `early_decisions` decisions (the paper uses half the median number of
/// decisions). Selected matchers are still scored on their *full*
/// performance. When `early_decisions` is 0, half the population median
/// is used.
std::vector<UtilizationResult> RunEarlyIdentificationExperiment(
    const EvaluationInput& input,
    const std::vector<CharacterizerFactory>& methods,
    const ExperimentConfig& config, std::size_t early_decisions = 0);

}  // namespace mexi

#endif  // MEXI_CORE_UTILIZATION_H_
