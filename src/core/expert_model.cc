#include "core/expert_model.h"

#include <cmath>
#include <map>
#include <stdexcept>

#include "stats/correlation.h"
#include "stats/descriptive.h"

namespace mexi {

ExpertMeasures ComputeMeasures(const matching::DecisionHistory& history,
                               std::size_t source_size,
                               std::size_t target_size,
                               const matching::MatchMatrix& reference) {
  ExpertMeasures m;
  const matching::MatchMatrix matrix =
      history.ToMatrix(source_size, target_size);
  m.precision = matrix.PrecisionAgainst(reference);
  m.recall = matrix.RecallAgainst(reference);

  // Resolution: confidence vs. correctness over the final match entries.
  std::vector<double> confidences;
  std::vector<double> correctness;
  for (const auto& [i, j] : matrix.Match()) {
    confidences.push_back(matrix.At(i, j));
    correctness.push_back(reference.At(i, j) > 0.0 ? 1.0 : 0.0);
  }
  const stats::CorrelationResult gamma =
      stats::GoodmanKruskalGamma(confidences, correctness);
  m.resolution = gamma.value;
  m.resolution_pvalue = gamma.p_value;

  // Calibration: history-wide mean reported confidence minus precision.
  m.calibration = history.MeanConfidence() - m.precision;
  return m;
}

ExpertThresholds FitThresholds(const std::vector<ExpertMeasures>& train) {
  if (train.empty()) {
    throw std::invalid_argument("FitThresholds: empty training population");
  }
  std::vector<double> resolutions;
  std::vector<double> abs_calibrations;
  resolutions.reserve(train.size());
  abs_calibrations.reserve(train.size());
  for (const auto& m : train) {
    resolutions.push_back(m.resolution);
    abs_calibrations.push_back(std::fabs(m.calibration));
  }
  ExpertThresholds t;
  t.delta_res = stats::Percentile(resolutions, 80.0);
  t.delta_cal = stats::Percentile(abs_calibrations, 20.0);
  return t;
}

std::vector<int> ExpertLabel::ToVector() const {
  return {precise ? 1 : 0, thorough ? 1 : 0, correlated ? 1 : 0,
          calibrated ? 1 : 0};
}

ExpertLabel ExpertLabel::FromVector(const std::vector<int>& bits) {
  if (bits.size() != 4) {
    throw std::invalid_argument("ExpertLabel::FromVector: need 4 bits");
  }
  ExpertLabel label;
  label.precise = bits[0] == 1;
  label.thorough = bits[1] == 1;
  label.correlated = bits[2] == 1;
  label.calibrated = bits[3] == 1;
  return label;
}

bool ExpertLabel::IsFullExpert() const {
  return precise && thorough && correlated && calibrated;
}

int ExpertLabel::Count() const {
  return (precise ? 1 : 0) + (thorough ? 1 : 0) + (correlated ? 1 : 0) +
         (calibrated ? 1 : 0);
}

ExpertLabel Characterize(const ExpertMeasures& measures,
                         const ExpertThresholds& thresholds) {
  ExpertLabel label;
  label.precise = measures.precision > thresholds.delta_p;
  label.thorough = measures.recall > thresholds.delta_r;
  label.correlated = measures.resolution > thresholds.delta_res &&
                     measures.resolution_pvalue < thresholds.resolution_alpha;
  label.calibrated =
      std::fabs(measures.calibration) < thresholds.delta_cal;
  return label;
}

const std::vector<std::string>& CharacteristicNames() {
  static const auto* kNames = new std::vector<std::string>{
      "precise", "thorough", "correlated", "calibrated"};
  return *kNames;
}

AccumulatedCurves ComputeAccumulatedCurves(
    const matching::DecisionHistory& history, std::size_t source_size,
    std::size_t target_size, const matching::MatchMatrix& reference) {
  AccumulatedCurves curves;
  // Incremental state: latest confidence per pair plus running counts.
  std::map<matching::ElementPair, double> latest;
  const std::size_t ref_size = reference.MatchSize();
  std::vector<double> all_confidences;

  for (std::size_t k = 0; k < history.size(); ++k) {
    const auto& d = history.at(k);
    if (d.source >= source_size || d.target >= target_size) {
      throw std::out_of_range("ComputeAccumulatedCurves: pair range");
    }
    latest[{d.source, d.target}] = d.confidence;
    all_confidences.push_back(d.confidence);

    std::size_t declared = 0, correct = 0;
    std::vector<double> conf, corr;
    for (const auto& [pair, confidence] : latest) {
      if (confidence <= 0.0) continue;
      ++declared;
      const bool is_correct = reference.At(pair.first, pair.second) > 0.0;
      correct += static_cast<std::size_t>(is_correct);
      conf.push_back(confidence);
      corr.push_back(is_correct ? 1.0 : 0.0);
    }
    const double precision =
        declared > 0 ? static_cast<double>(correct) /
                           static_cast<double>(declared)
                     : 0.0;
    curves.precision.push_back(precision);
    curves.recall.push_back(
        ref_size > 0 ? static_cast<double>(correct) /
                           static_cast<double>(ref_size)
                     : 0.0);
    curves.mean_confidence.push_back(stats::Mean(all_confidences));
    curves.resolution.push_back(
        stats::GoodmanKruskalGamma(conf, corr).value);
    curves.calibration.push_back(stats::Mean(all_confidences) - precision);
  }
  return curves;
}

}  // namespace mexi
