#include "core/mexi.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "core/config_io.h"
#include "core/features/aggregated_features.h"
#include "core/features/consistency_features.h"
#include "ml/model_selection.h"
#include "ml/vmath/vmath.h"
#include "obs/trace.h"
#include "parallel/parallel_for.h"
#include "stats/correlation.h"

namespace mexi {

Mexi::Mexi(const MexiConfig& config) : config_(config) {}

namespace {

/// Top-k feature indices by |point-biserial correlation| with the label.
std::vector<std::size_t> SelectFeatures(
    const std::vector<std::vector<double>>& rows,
    const std::vector<int>& labels, std::size_t k) {
  const std::size_t d = rows.empty() ? 0 : rows[0].size();
  if (k == 0 || k >= d) {
    std::vector<std::size_t> all(d);
    std::iota(all.begin(), all.end(), 0);
    return all;
  }
  std::vector<double> y(labels.begin(), labels.end());
  std::vector<std::pair<double, std::size_t>> scored;
  scored.reserve(d);
  std::vector<double> column(rows.size());
  for (std::size_t f = 0; f < d; ++f) {
    for (std::size_t i = 0; i < rows.size(); ++i) column[i] = rows[i][f];
    const double score =
        std::fabs(stats::PearsonCorrelation(column, y));
    scored.emplace_back(score, f);
  }
  std::partial_sort(scored.begin(), scored.begin() + static_cast<long>(k),
                    scored.end(), std::greater<>());
  std::vector<std::size_t> selected;
  selected.reserve(k);
  for (std::size_t i = 0; i < k; ++i) selected.push_back(scored[i].second);
  std::sort(selected.begin(), selected.end());
  return selected;
}

std::vector<double> Project(const std::vector<double>& row,
                            const std::vector<std::size_t>& indices) {
  std::vector<double> out;
  out.reserve(indices.size());
  for (std::size_t idx : indices) out.push_back(row[idx]);
  return out;
}

}  // namespace

void Mexi::Fit(const std::vector<MatcherView>& train,
               const std::vector<ExpertLabel>& labels,
               const TaskContext& context) {
  if (train.size() != labels.size() || train.empty()) {
    throw std::invalid_argument("Mexi::Fit: bad input sizes");
  }
  // The whole pipeline fit — deep-feature pretraining, out-of-fold
  // extraction, CV model selection, final classifiers — must be exact
  // even when MEXI_FAST_MATH is on: the OOF/CV stages run *inference*
  // whose outputs become training inputs, so the scope pins the entire
  // call tree to the exact contract.
  const ml::vmath::TrainingScope exact_training;
  const obs::Span fit_span("mexi.fit");
  context_ = context;
  stats::Rng rng(config_.seed);

  // 1. Sub-matcher augmentation. Windows exist to give the deep
  // networks enough data (Section IV-B1); the final per-label
  // classifiers are trained on the full matchers, whose distribution
  // matches what Characterize sees at test time.
  std::vector<SubMatcherUnit> units;
  for (std::size_t i = 0; i < train.size(); ++i) {
    for (auto& unit :
         BuildSubMatchers(train[i], i, config_.submatcher_mode)) {
      units.push_back(std::move(unit));
    }
  }
  std::vector<ExpertLabel> unit_labels;
  unit_labels.reserve(units.size());
  for (const auto& unit : units) unit_labels.push_back(labels[unit.parent]);

  // 2. Training-population consensus (full histories, not windows).
  std::vector<const matching::DecisionHistory*> train_histories;
  train_histories.reserve(train.size());
  for (const auto& m : train) train_histories.push_back(m.history);
  consensus_ = ConsensusMap(train_histories, context.source_size,
                            context.target_size);

  // 3. Late-fusion networks. The label coefficients fed to the final
  // classifiers are produced *out-of-fold* (2-fold stacking split by
  // parent matcher): in-sample coefficients would mirror the training
  // labels and trick the classifier selection into over-trusting the
  // nets. Deployment extractors are then trained on all units.
  std::vector<FeatureVector> seq_oof(train.size());
  std::vector<FeatureVector> spa_oof(train.size());
  if (config_.oof_fusion && (config_.use_seq || config_.use_spa)) {
    for (std::size_t half = 0; half < 2; ++half) {
      std::vector<std::size_t> fit_units, predict_matchers;
      for (std::size_t u = 0; u < units.size(); ++u) {
        if (units[u].parent % 2 != half) fit_units.push_back(u);
      }
      for (std::size_t i = half; i < train.size(); i += 2) {
        predict_matchers.push_back(i);
      }
      if (fit_units.empty() || predict_matchers.empty()) continue;
      std::vector<ExpertLabel> fit_labels;
      for (std::size_t u : fit_units) fit_labels.push_back(unit_labels[u]);

      if (config_.use_seq) {
        std::vector<const matching::DecisionHistory*> fit_histories;
        for (std::size_t u : fit_units) {
          fit_histories.push_back(&units[u].history);
        }
        SequentialFeatureExtractor::Config seq_config = config_.seq;
        seq_config.lstm.seed = rng.NextU64();
        SequentialFeatureExtractor oof(seq_config);
        oof.Fit(fit_histories, fit_labels, consensus_);
        for (std::size_t i : predict_matchers) {
          seq_oof[i] = oof.Extract(*train[i].history);
        }
      }
      if (config_.use_spa) {
        std::vector<const matching::MovementMap*> fit_movements;
        for (std::size_t u : fit_units) {
          fit_movements.push_back(&units[u].movement);
        }
        SpatialFeatureExtractor::Config spa_config = config_.spa;
        spa_config.seed = rng.NextU64();
        SpatialFeatureExtractor oof(spa_config);
        oof.Fit(fit_movements, fit_labels);
        for (std::size_t i : predict_matchers) {
          spa_oof[i] = oof.Extract(*train[i].movement);
        }
      }
    }
  }
  if (config_.use_seq) {
    std::vector<const matching::DecisionHistory*> unit_histories;
    unit_histories.reserve(units.size());
    for (const auto& unit : units) unit_histories.push_back(&unit.history);
    SequentialFeatureExtractor::Config seq_config = config_.seq;
    seq_config.lstm.seed = rng.NextU64();
    seq_extractor_ =
        std::make_unique<SequentialFeatureExtractor>(seq_config);
    seq_extractor_->Fit(unit_histories, unit_labels, consensus_);
  } else {
    seq_extractor_.reset();
  }
  if (config_.use_spa) {
    std::vector<const matching::MovementMap*> unit_movements;
    unit_movements.reserve(units.size());
    for (const auto& unit : units) unit_movements.push_back(&unit.movement);
    SpatialFeatureExtractor::Config spa_config = config_.spa;
    spa_config.seed = rng.NextU64();
    spa_extractor_ = std::make_unique<SpatialFeatureExtractor>(spa_config);
    spa_extractor_->Fit(unit_movements, unit_labels);
  } else {
    spa_extractor_.reset();
  }
  fitted_ = true;  // extractors ready; ExtractFeatures is now usable

  // 4. Fused feature table over the full train matchers: aggregated
  // features plus the out-of-fold network coefficients.
  std::vector<std::vector<double>> rows;
  std::vector<std::string> feature_names;
  rows.reserve(train.size());
  for (std::size_t i = 0; i < train.size(); ++i) {
    FeatureVector phi =
        AggregatedPart(*train[i].history, *train[i].movement,
                       train[i].source_size, train[i].target_size);
    if (config_.use_seq) {
      phi.Extend(seq_oof[i].size() > 0
                     ? seq_oof[i]
                     : seq_extractor_->Extract(*train[i].history));
    }
    if (config_.use_spa) {
      phi.Extend(spa_oof[i].size() > 0
                     ? spa_oof[i]
                     : spa_extractor_->Extract(*train[i].movement));
    }
    if (feature_names.empty()) feature_names = phi.names();
    rows.push_back(phi.values());
  }
  if (!rows.empty() && rows[0].empty()) {
    throw std::logic_error("Mexi::Fit: no feature sets enabled");
  }

  // 5. One binary classifier per characteristic over the selected
  // feature subset, zoo-selected by CV.
  label_classifiers_.clear();
  selected_models_.clear();
  selected_features_.clear();
  label_thresholds_.clear();
  const auto zoo = ml::DefaultModelZoo();
  for (std::size_t c = 0; c < CharacteristicNames().size(); ++c) {
    std::vector<int> bits;
    bits.reserve(labels.size());
    for (const auto& label : labels) bits.push_back(label.ToVector()[c]);

    const std::vector<std::size_t> selected =
        SelectFeatures(rows, bits, config_.max_features);
    selected_features_.push_back(selected);

    ml::Dataset dataset;
    for (std::size_t idx : selected) {
      dataset.feature_names.push_back(feature_names[idx]);
    }
    for (std::size_t i = 0; i < rows.size(); ++i) {
      dataset.Add(Project(rows[i], selected), bits[i]);
    }
    ml::SelectionReport report;
    stats::Rng selection_rng = rng.Split();
    label_classifiers_.push_back(ml::SelectAndTrain(
        zoo, dataset, config_.selection_folds, selection_rng, &report,
        config_.balanced_selection));
    selected_models_.push_back(report.selected_name);
    // Tune the decision threshold of the selected model on out-of-fold
    // probabilities (rare labels need thresholds below 0.5 to ever
    // fire — a requirement for identifying full experts, Figs. 10/11).
    if (config_.balanced_selection) {
      stats::Rng threshold_rng = rng.Split();
      label_thresholds_.push_back(ml::TuneDecisionThreshold(
          *label_classifiers_.back(), dataset, config_.selection_folds,
          threshold_rng));
    } else {
      label_thresholds_.push_back(0.5);
    }
  }
}

void Mexi::AdaptToPopulation(const std::vector<MatcherView>& population) {
  if (population.empty() || !fitted_) return;
  std::vector<const matching::DecisionHistory*> histories;
  histories.reserve(population.size());
  for (const auto& m : population) histories.push_back(m.history);
  consensus_ = ConsensusMap(histories, population[0].source_size,
                            population[0].target_size);
  if (seq_extractor_ != nullptr) seq_extractor_->SetConsensus(consensus_);
}

FeatureVector Mexi::AggregatedPart(
    const matching::DecisionHistory& history,
    const matching::MovementMap& movement, std::size_t source_size,
    std::size_t target_size) const {
  FeatureVector phi;
  if (config_.use_lrsm) {
    phi.Extend(LrsmFeatures(history, source_size, target_size));
  }
  if (config_.use_beh) {
    phi.Extend(BehavioralFeatures(history));
  }
  if (config_.use_con) {
    // Consensuality & temporal consistency: the correlation-feature
    // group (Section III-A).
    phi.Extend(ConsistencyFeatures(history, consensus_));
  }
  if (config_.use_mou) {
    phi.Extend(MouseFeatures(movement));
  }
  return phi;
}

std::vector<double> Mexi::AggregatedValues(
    const matching::DecisionHistory& history,
    const matching::MovementMap& movement, std::size_t source_size,
    std::size_t target_size, matching::PredictorScratch& scratch) const {
  std::vector<double> out;
  if (config_.use_lrsm) {
    const matching::MatchMatrix matrix =
        history.ToMatrix(source_size, target_size);
    matching::ComputePredictorValues(matrix, &scratch, out);
  }
  if (config_.use_beh) {
    const FeatureVector part = BehavioralFeatures(history);
    out.insert(out.end(), part.values().begin(), part.values().end());
  }
  if (config_.use_con) {
    const FeatureVector part = ConsistencyFeatures(history, consensus_);
    out.insert(out.end(), part.values().begin(), part.values().end());
  }
  if (config_.use_mou) {
    const FeatureVector part = MouseFeatures(movement);
    out.insert(out.end(), part.values().begin(), part.values().end());
  }
  return out;
}

FeatureVector Mexi::ExtractFeatures(
    const matching::DecisionHistory& history,
    const matching::MovementMap& movement, std::size_t source_size,
    std::size_t target_size) const {
  if (!fitted_) {
    throw std::logic_error("Mexi::ExtractFeatures before Fit");
  }
  FeatureVector phi =
      AggregatedPart(history, movement, source_size, target_size);
  if (config_.use_seq && seq_extractor_ != nullptr) {
    phi.Extend(seq_extractor_->Extract(history));
  }
  if (config_.use_spa && spa_extractor_ != nullptr) {
    phi.Extend(spa_extractor_->Extract(movement));
  }
  return phi;
}

ExpertLabel Mexi::Characterize(const MatcherView& matcher) const {
  if (label_classifiers_.empty()) {
    throw std::logic_error("Mexi::Characterize before Fit");
  }
  const FeatureVector phi =
      ExtractFeatures(*matcher.history, *matcher.movement,
                      matcher.source_size, matcher.target_size);
  std::vector<int> bits;
  for (std::size_t c = 0; c < label_classifiers_.size(); ++c) {
    const double probability = label_classifiers_[c]->PredictProba(
        Project(phi.values(), selected_features_[c]));
    bits.push_back(probability >= label_thresholds_[c] ? 1 : 0);
  }
  return ExpertLabel::FromVector(bits);
}

std::vector<ExpertLabel> Mexi::CharacterizeAll(
    const std::vector<MatcherView>& matchers) const {
  if (label_classifiers_.empty()) {
    throw std::logic_error("Mexi::Characterize before Fit");
  }
  if (config_.batch_size <= 1 || matchers.size() <= 1) {
    return Characterizer::CharacterizeAll(matchers);
  }
  const obs::Span span("mexi.characterize_all");
  const std::size_t count = matchers.size();
  const bool use_seq = config_.use_seq && seq_extractor_ != nullptr;
  const bool use_spa = config_.use_spa && spa_extractor_ != nullptr;

  // Phase 1: per-trace aggregated features into pre-sized slots,
  // chunked and sharded over the deterministic pool (bitwise identical
  // at any thread count under the ParallelFor contract). Each chunk
  // owns one PredictorScratch, so the LRSM PCA slabs are allocated once
  // per chunk instead of per trace; only the values are kept, since the
  // classifiers index positionally via selected_features_ and the
  // per-trace feature-name churn of the FeatureVector path is pure
  // overhead here.
  std::vector<std::vector<double>> rows(count);
  const std::size_t agg_chunk = config_.batch_size;
  const std::size_t agg_chunks = (count + agg_chunk - 1) / agg_chunk;
  parallel::ParallelFor(0, agg_chunks, 1, [&](std::size_t n) {
    matching::PredictorScratch scratch;
    const std::size_t begin = n * agg_chunk;
    const std::size_t end = std::min(count, begin + agg_chunk);
    for (std::size_t i = begin; i < end; ++i) {
      rows[i] = AggregatedValues(*matchers[i].history, *matchers[i].movement,
                                 matchers[i].source_size,
                                 matchers[i].target_size, scratch);
    }
  });

  // Phase 2: network coefficients in batch_size chunks — one LSTM
  // PredictBatch and four CNN PredictBatch calls per chunk instead of
  // per trace. Chunks write disjoint row slots, so they shard over the
  // pool under the same determinism contract; appending seq before spa
  // reproduces ExtractFeatures' fusion order per row.
  if (use_seq || use_spa) {
    const std::size_t chunk = config_.batch_size;
    const std::size_t num_chunks = (count + chunk - 1) / chunk;
    parallel::ParallelFor(0, num_chunks, 1, [&](std::size_t n) {
      const std::size_t begin = n * chunk;
      const std::size_t end = std::min(count, begin + chunk);
      if (use_seq) {
        std::vector<const matching::DecisionHistory*> histories;
        histories.reserve(end - begin);
        for (std::size_t i = begin; i < end; ++i) {
          histories.push_back(matchers[i].history);
        }
        const std::vector<std::vector<double>> seq_rows =
            seq_extractor_->ExtractAllValues(histories);
        for (std::size_t i = begin; i < end; ++i) {
          rows[i].insert(rows[i].end(), seq_rows[i - begin].begin(),
                         seq_rows[i - begin].end());
        }
      }
      if (use_spa) {
        std::vector<const matching::MovementMap*> movements;
        movements.reserve(end - begin);
        for (std::size_t i = begin; i < end; ++i) {
          movements.push_back(matchers[i].movement);
        }
        const std::vector<std::vector<double>> spa_rows =
            spa_extractor_->ExtractAllValues(movements);
        for (std::size_t i = begin; i < end; ++i) {
          rows[i].insert(rows[i].end(), spa_rows[i - begin].begin(),
                         spa_rows[i - begin].end());
        }
      }
    });
  }

  // Phase 3: one batched classifier pass per label over the projected
  // feature table, then the threshold fuse — the same per-row
  // arithmetic and threshold compare as Characterize.
  std::vector<std::vector<double>> projected(count);
  std::vector<std::vector<int>> bits(count);
  for (std::size_t c = 0; c < label_classifiers_.size(); ++c) {
    for (std::size_t i = 0; i < count; ++i) {
      projected[i] = Project(rows[i], selected_features_[c]);
    }
    const std::vector<double> probabilities =
        label_classifiers_[c]->PredictProbaBatch(projected);
    for (std::size_t i = 0; i < count; ++i) {
      bits[i].push_back(probabilities[i] >= label_thresholds_[c] ? 1 : 0);
    }
  }
  std::vector<ExpertLabel> out(count);
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = ExpertLabel::FromVector(bits[i]);
  }
  return out;
}

std::vector<double> Mexi::CharacterizeProba(
    const MatcherView& matcher) const {
  if (label_classifiers_.empty()) {
    throw std::logic_error("Mexi::CharacterizeProba before Fit");
  }
  const FeatureVector phi =
      ExtractFeatures(*matcher.history, *matcher.movement,
                      matcher.source_size, matcher.target_size);
  std::vector<double> probabilities;
  for (std::size_t c = 0; c < label_classifiers_.size(); ++c) {
    probabilities.push_back(label_classifiers_[c]->PredictProba(
        Project(phi.values(), selected_features_[c])));
  }
  return probabilities;
}

double Mexi::ExpertScore(const MatcherView& matcher) const {
  const std::vector<double> probabilities = CharacterizeProba(matcher);
  double total = 0.0;
  for (double p : probabilities) total += p;
  return total / static_cast<double>(probabilities.size());
}

void Mexi::SaveState(robust::BinaryWriter& writer) const {
  if (!fitted_ || label_classifiers_.empty()) {
    robust::ThrowStatus(robust::StatusCode::kInvalidArgument,
                        "Mexi::SaveState before Fit");
  }
  writer.WriteTag("MEXI");
  WriteMexiConfig(writer, config_);
  // Task context: dimensions only. The warm-up reference belongs to the
  // qualification baselines' training protocol, not to serve state.
  writer.WriteU64(context_.source_size);
  writer.WriteU64(context_.target_size);
  writer.WriteU64(context_.warmup_source_size);
  writer.WriteU64(context_.warmup_target_size);
  consensus_.SaveState(writer);
  writer.WriteBool(seq_extractor_ != nullptr);
  if (seq_extractor_ != nullptr) seq_extractor_->SaveState(writer);
  writer.WriteBool(spa_extractor_ != nullptr);
  if (spa_extractor_ != nullptr) spa_extractor_->SaveState(writer);
  writer.WriteU64(label_classifiers_.size());
  for (std::size_t c = 0; c < label_classifiers_.size(); ++c) {
    writer.WriteString(selected_models_[c]);
    label_classifiers_[c]->SaveState(writer);
    writer.WriteU64(selected_features_[c].size());
    for (std::size_t idx : selected_features_[c]) writer.WriteU64(idx);
    writer.WriteDouble(label_thresholds_[c]);
  }
}

void Mexi::LoadState(robust::BinaryReader& reader) {
  reader.ExpectTag("MEXI");
  config_ = ReadMexiConfig(reader);
  context_ = TaskContext();
  context_.source_size = static_cast<std::size_t>(reader.ReadU64());
  context_.target_size = static_cast<std::size_t>(reader.ReadU64());
  context_.warmup_source_size = static_cast<std::size_t>(reader.ReadU64());
  context_.warmup_target_size = static_cast<std::size_t>(reader.ReadU64());
  consensus_.LoadState(reader);
  if (reader.ReadBool()) {
    // Placeholder config; the extractor's LoadState restores its own.
    seq_extractor_ =
        std::make_unique<SequentialFeatureExtractor>(config_.seq);
    seq_extractor_->LoadState(reader);
  } else {
    seq_extractor_.reset();
  }
  if (reader.ReadBool()) {
    spa_extractor_ = std::make_unique<SpatialFeatureExtractor>(config_.spa);
    spa_extractor_->LoadState(reader);
  } else {
    spa_extractor_.reset();
  }
  const std::uint64_t num_labels = reader.ReadU64();
  if (num_labels != CharacteristicNames().size()) {
    robust::ThrowStatus(robust::StatusCode::kCorruption,
                        "bundle has " + std::to_string(num_labels) +
                            " label classifiers, expected " +
                            std::to_string(CharacteristicNames().size()));
  }
  const auto zoo = ml::DefaultModelZoo();
  label_classifiers_.clear();
  selected_models_.clear();
  selected_features_.clear();
  label_thresholds_.clear();
  for (std::uint64_t c = 0; c < num_labels; ++c) {
    const std::string name = reader.ReadString();
    std::unique_ptr<ml::BinaryClassifier> classifier;
    for (const auto& prototype : zoo) {
      if (prototype->Name() == name) {
        classifier = prototype->Clone();
        break;
      }
    }
    if (classifier == nullptr) {
      robust::ThrowStatus(robust::StatusCode::kCorruption,
                          "bundle selected classifier '" + name +
                              "' is not in the model zoo");
    }
    classifier->LoadState(reader);
    label_classifiers_.push_back(std::move(classifier));
    selected_models_.push_back(name);
    const std::uint64_t selected = reader.ReadU64();
    std::vector<std::size_t> indices;
    indices.reserve(static_cast<std::size_t>(selected));
    for (std::uint64_t i = 0; i < selected; ++i) {
      indices.push_back(static_cast<std::size_t>(reader.ReadU64()));
    }
    selected_features_.push_back(std::move(indices));
    label_thresholds_.push_back(reader.ReadDouble());
  }
  fitted_ = true;
}

std::uint64_t Mexi::ConfigFingerprint() const {
  return MexiConfigFingerprint(config_);
}

MexiConfig MexiEmptyConfig() {
  MexiConfig config;
  config.name = "MExI_0";
  config.submatcher_mode = SubmatcherMode::kNone;
  return config;
}

MexiConfig Mexi50Config() {
  MexiConfig config;
  config.name = "MExI_50";
  config.submatcher_mode = SubmatcherMode::kFixed50;
  return config;
}

MexiConfig Mexi70Config() {
  MexiConfig config;
  config.name = "MExI_70";
  config.submatcher_mode = SubmatcherMode::kMulti70;
  return config;
}

}  // namespace mexi
