#include "sim/study.h"

#include <algorithm>
#include <cmath>

#include "matching/similarity.h"
#include "parallel/parallel_for.h"
#include "stats/descriptive.h"

namespace mexi::sim {

namespace {

/// Task-generation sub-streams of the study seed (stats::Rng::SubSeed).
constexpr std::uint64_t kPurchaseOrderTaskStream = 1;
constexpr std::uint64_t kOaeiTaskStream = 2;

/// Derives self-reports whose couplings mirror the paper's findings:
/// psychometric score tracks (latent) precision ability, English level
/// tracks (latent) coverage, everything else is independent noise.
PersonalInfo SamplePersonalInfo(const MatcherProfile& profile,
                                stats::Rng& rng) {
  PersonalInfo info;
  info.female = rng.Bernoulli(0.45);
  info.age = 21 + static_cast<int>(rng.UniformIndex(9));
  const double precision_ability = 1.0 - profile.perception_noise / 0.5;
  info.psychometric_score = static_cast<int>(stats::Clamp(
      std::lround(620.0 + 90.0 * precision_ability +
                  rng.Gaussian(0.0, 25.0)),
      500, 800));
  info.english_level = static_cast<int>(stats::Clamp(
      std::lround(2.5 + 2.5 * profile.coverage + rng.Gaussian(0.0, 0.6)),
      1, 5));
  // 14% report domain knowledge above 1 (Section IV-A).
  info.domain_knowledge =
      rng.Bernoulli(0.14) ? 2 + static_cast<int>(rng.UniformIndex(3)) : 1;
  info.db_education = rng.Bernoulli(0.95);
  return info;
}

/// Simulates the short warm-up (qualification) task.
matching::DecisionHistory SimulateWarmup(const SimulationTask& task,
                                         const MatcherProfile& profile,
                                         stats::Rng& rng) {
  SimulatedTrace trace = SimulateMatcher(task, profile, rng);
  return trace.history;
}

}  // namespace

std::size_t Study::TotalDecisions() const {
  std::size_t total = 0;
  for (const auto& m : matchers) total += m.history.size();
  return total;
}

Study BuildStudy(const schema::GeneratedPair& pair,
                 const StudyConfig& config) {
  Study study;
  study.task = pair;
  study.reference = matching::MatchMatrix::FromReference(
      study.task.reference, study.task.source.size(),
      study.task.target.size());
  study.similarity =
      matching::BuildSimilarityMatrix(study.task.source, study.task.target);

  stats::Rng rng(config.seed);
  study.warmup_task = schema::GenerateWarmupTask(rng.NextU64());
  study.warmup_reference = matching::MatchMatrix::FromReference(
      study.warmup_task.reference, study.warmup_task.source.size(),
      study.warmup_task.target.size());
  const matching::MatchMatrix warmup_similarity =
      matching::BuildSimilarityMatrix(study.warmup_task.source,
                                      study.warmup_task.target);

  SimulationTask main_task;
  main_task.pair = &study.task;
  main_task.similarity = &study.similarity;
  main_task.reference = &study.reference;

  SimulationTask warmup_task;
  warmup_task.pair = &study.warmup_task;
  warmup_task.similarity = &warmup_similarity;
  warmup_task.reference = &study.warmup_reference;

  const std::vector<MatcherProfile> profiles =
      SamplePopulation(config.num_matchers, config.mix, rng);

  // Per-matcher streams are drawn sequentially — the exact draws the
  // sequential loop has always made — before the simulation fans out, so
  // every thread count consumes identical randomness per matcher and the
  // built study is bitwise-independent of MEXI_THREADS.
  std::vector<stats::Rng> streams;
  streams.reserve(profiles.size());
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    streams.push_back(rng.Split());
  }

  study.matchers.resize(profiles.size());
  parallel::ParallelFor(0, profiles.size(), 1, [&](std::size_t i) {
    SimulatedMatcher& matcher = study.matchers[i];
    matcher.id = static_cast<int>(i);
    matcher.profile = profiles[i];
    stats::Rng matcher_rng = streams[i];
    matcher.personal = SamplePersonalInfo(profiles[i], matcher_rng);
    matcher.warmup_history =
        SimulateWarmup(warmup_task, profiles[i], matcher_rng);

    // Cross-task matchers (task_skill_correlation < 1) express a
    // partially decorrelated skill profile on the main task, so their
    // warm-up trace is an imperfect predictor of it — everyone else
    // passes through unchanged, consuming no extra randomness.
    const MatcherProfile main_profile =
        PerTaskProfile(profiles[i], matcher_rng);
    SimulatedTrace trace = SimulateMatcher(main_task, main_profile,
                                           matcher_rng);
    matcher.raw_history = trace.history;
    matcher.history =
        trace.history.Preprocessed(config.warmup_decisions, 2.0);
    matcher.movement = std::move(trace.movement);
  });
  return study;
}

Study BuildPurchaseOrderStudy(const StudyConfig& config) {
  return BuildStudy(schema::GeneratePurchaseOrderTask(
                        stats::Rng(config.seed)
                            .SubSeed(kPurchaseOrderTaskStream)),
                    config);
}

Study BuildOaeiStudy(const StudyConfig& config) {
  return BuildStudy(
      schema::GenerateOaeiTask(stats::Rng(config.seed)
                                   .SubSeed(kOaeiTaskStream)),
      config);
}

}  // namespace mexi::sim
