#ifndef MEXI_SIM_PROFILE_H_
#define MEXI_SIM_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "stats/rng.h"

namespace mexi::sim {

/// The behavioral archetypes observed in the paper's experiments
/// (Section I-A and Figures 1/4/5): A precise+thorough expert, B
/// imprecise+incomplete, C precise but incomplete, D quantitatively
/// strong but cognitively unreliable, plus free mixtures.
///
/// The population-scale sweep widens the family beyond the paper's
/// study with three adversarial/off-population profiles (appended after
/// kMixed so the paper archetypes keep their values):
///   E  an adversarial spammer — near-random rapid-fire declarations
///      reported at uniformly high confidence (crowdsourcing's classic
///      attack profile);
///   F  a drift/fatigue matcher — starts competent, but perception
///      noise, pace, and overconfidence all degrade within the trace
///      (Ackerman-style depletion taken to its extreme);
///   G  a HumanAL-style cross-task matcher — per-task skill is only
///      partially correlated with the latent base profile, so the
///      warm-up task is an imperfect predictor of main-task behavior.
enum class Archetype {
  kExpertA = 0,
  kSloppyB,
  kNarrowC,
  kUnreliableD,
  kMixed,
  kSpammerE,
  kDrifterF,
  kCrossTaskG,
};
inline constexpr std::size_t kNumArchetypes = 8;

/// Printable archetype name.
std::string ArchetypeName(Archetype archetype);

/// Latent behavioral parameters of one simulated human matcher. The
/// decision simulator and the mouse simulator read these; the expert
/// labels are *not* derived from the profile directly — they are computed
/// from the produced traces, exactly as the paper computes them from
/// observed behavior.
struct MatcherProfile {
  Archetype archetype = Archetype::kMixed;

  // -- Quantitative skill --------------------------------------------
  /// Std-dev of the Gaussian noise added to perceived similarities;
  /// lower = more precise candidate selection.
  double perception_noise = 0.15;
  /// Fraction of the target-element space the matcher explores before
  /// the self-imposed time limit (drives recall).
  double coverage = 0.5;
  /// Perceived-similarity threshold above which a match is declared.
  double decision_threshold = 0.45;
  /// Probability of also declaring the runner-up candidate when several
  /// source attributes fit (1:n correspondences).
  double second_candidate_rate = 0.3;

  // -- Cognitive profile ---------------------------------------------
  /// Weight of the correctness signal in reported confidence
  /// (1 = perfectly correlated expert, 0 = confidence is noise).
  double resolution_skill = 0.5;
  /// Additive confidence bias: positive = overconfident.
  double confidence_bias = 0.1;
  /// Std-dev of confidence noise.
  double confidence_noise = 0.15;
  /// Ackerman-style bias: how quickly the matcher's declaration
  /// threshold decays over the session (matching despite low
  /// confidence, degrading late precision).
  double threshold_drift = 0.15;
  /// Probability per decision of revisiting an earlier pair.
  double mind_change_rate = 0.12;
  /// Probability of running a post-hoc review pass over declared pairs.
  double review_pass_rate = 0.5;

  // -- Attention / motor behavior -------------------------------------
  /// How much the matcher inspects the source-schema metadata pane
  /// (Matcher B famously skipped it).
  double metadata_attention = 0.7;
  /// How deep into the foldable trees the matcher scrolls (Matcher C
  /// never reached the nested elements).
  double exploration_depth = 0.8;
  /// Mean seconds per decision.
  double seconds_per_decision = 45.0;
  /// Extra scrolling when uncertain (scroll features signal uncertainty).
  double scroll_tendency = 0.5;

  // -- Adversarial / within-trace dynamics ----------------------------
  // These default to values that make SimulateMatcher consume exactly
  // the draw sequence it always has (every new hook is guarded), so the
  // paper archetypes above — and every golden hash downstream — are
  // bitwise unchanged.
  /// Probability per examined element of declaring a uniformly random
  /// shortlist candidate regardless of perceived similarity (spammer
  /// behavior; 0 = never).
  double random_declare_rate = 0.0;
  /// Within-trace fatigue: perception noise and per-decision time grow
  /// by this fraction over the session (0 = no fatigue).
  double fatigue_rate = 0.0;
  /// Within-trace confidence drift: additive confidence bias gained
  /// linearly over the session (late overconfidence; 0 = none).
  double confidence_drift = 0.0;
  /// HumanAL-style cross-task skill correlation rho in [0, 1]: how much
  /// of this matcher's skill carries over to a *new* task.
  /// PerTaskProfile blends skill parameters as
  ///   rho * base + (1 - rho) * fresh same-archetype draw;
  /// 1 (default) reproduces the base profile exactly and consumes no
  /// randomness.
  double task_skill_correlation = 1.0;
};

/// Derives the profile this matcher exhibits on a *different* task:
/// skill parameters regress toward a fresh same-archetype draw by
/// (1 - task_skill_correlation). With correlation >= 1 the base profile
/// is returned unchanged and `rng` is untouched.
MatcherProfile PerTaskProfile(const MatcherProfile& base, stats::Rng& rng);

/// Draws a profile of the given archetype; parameters are jittered so no
/// two matchers are identical.
MatcherProfile SampleProfile(Archetype archetype, stats::Rng& rng);

/// Mixture weights over archetypes used for population sampling.
/// Defaults are calibrated so the simulated population reproduces the
/// paper's Figure 8/9 marginals (see bench/fig8_population); the three
/// sweep archetypes default to weight 0 so existing populations are
/// drawn bitwise-unchanged.
struct PopulationMix {
  double expert_a = 0.17;
  double sloppy_b = 0.22;
  double narrow_c = 0.27;
  double unreliable_d = 0.14;
  double mixed = 0.20;
  double spammer_e = 0.0;
  double drifter_f = 0.0;
  double crosstask_g = 0.0;

  /// The weight of one archetype.
  double Weight(Archetype archetype) const;
  /// Sum of all weights over the widened enum.
  double Total() const;
};

/// Mixture used by population-scale sweeps: the paper's marginals
/// re-normalized to 80% with the remaining 20% split across the
/// adversarial/off-population archetypes.
PopulationMix WidePopulationMix();

/// Draws one archetype from the mixture (one Uniform draw). The paper
/// archetypes occupy their historical bucket order with kMixed as the
/// final bucket, so zero sweep weights reproduce historical draws
/// bitwise. Throws std::invalid_argument on an empty mixture.
Archetype SampleArchetype(const PopulationMix& mix, stats::Rng& rng);

/// Samples `count` profiles from the mixture.
std::vector<MatcherProfile> SamplePopulation(std::size_t count,
                                             const PopulationMix& mix,
                                             stats::Rng& rng);

}  // namespace mexi::sim

#endif  // MEXI_SIM_PROFILE_H_
