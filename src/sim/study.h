#ifndef MEXI_SIM_STUDY_H_
#define MEXI_SIM_STUDY_H_

#include <cstdint>
#include <vector>

#include "matching/decision_history.h"
#include "matching/match_matrix.h"
#include "matching/movement.h"
#include "schema/generators.h"
#include "sim/matcher_sim.h"
#include "sim/profile.h"

namespace mexi::sim {

/// Self-reported personal information gathered before the experiment
/// (Section IV-A). Generated with the correlations the paper found:
/// psychometric score correlates with precision, English level with
/// recall, and nothing correlates with the cognitive measures.
struct PersonalInfo {
  bool female = false;
  int age = 25;
  /// Psychometric entrance-exam score (population mean 533; the study's
  /// participants average 678).
  int psychometric_score = 678;
  /// English level, 1-5 self-report.
  int english_level = 4;
  /// Domain knowledge, 1-5 self-report.
  int domain_knowledge = 1;
  /// Took a basic database management course.
  bool db_education = true;
};

/// One participant: profile (latent), traces (observable), preprocessed
/// history (per the paper's Section IV-A pipeline) and the warm-up-task
/// trace used by the Qual. Test / Self-Assess baselines.
struct SimulatedMatcher {
  int id = 0;
  MatcherProfile profile;
  PersonalInfo personal;
  /// Raw main-task decision history.
  matching::DecisionHistory raw_history;
  /// After warm-up removal and elapsed-time outlier filtering.
  matching::DecisionHistory history;
  matching::MovementMap movement{1280.0, 800.0};
  /// Warm-up (Thalia-style) task history, for qualification baselines.
  matching::DecisionHistory warmup_history;
};

/// A complete human-matching study over one task.
struct Study {
  schema::GeneratedPair task;
  matching::MatchMatrix reference;
  matching::MatchMatrix similarity;
  schema::GeneratedPair warmup_task;
  matching::MatchMatrix warmup_reference;
  std::vector<SimulatedMatcher> matchers;

  /// Total decisions across matchers (after preprocessing).
  std::size_t TotalDecisions() const;
};

/// Configuration of a study build.
struct StudyConfig {
  std::size_t num_matchers = 106;
  PopulationMix mix;
  std::uint64_t seed = 42;
  /// Warm-up decisions prepended (and later removed) per matcher.
  std::size_t warmup_decisions = 3;
};

/// Builds the Purchase-Order study (the paper's 106 matchers).
Study BuildPurchaseOrderStudy(const StudyConfig& config = {});

/// Builds the OAEI ontology-alignment study (the paper's 34 matchers).
Study BuildOaeiStudy(const StudyConfig& config);

/// Shared implementation: simulates `config.num_matchers` matchers over
/// an arbitrary generated pair.
Study BuildStudy(const schema::GeneratedPair& pair,
                 const StudyConfig& config);

}  // namespace mexi::sim

#endif  // MEXI_SIM_STUDY_H_
