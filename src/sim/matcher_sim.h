#ifndef MEXI_SIM_MATCHER_SIM_H_
#define MEXI_SIM_MATCHER_SIM_H_

#include "matching/decision_history.h"
#include "matching/match_matrix.h"
#include "matching/movement.h"
#include "schema/generators.h"
#include "sim/profile.h"
#include "stats/rng.h"

namespace mexi::sim {

/// Screen geometry of the (simulated) Ontobuilder-style matching UI:
/// the two schema trees at the top, a properties box in the middle and
/// the match table at the bottom — the regions visible in the paper's
/// heat maps.
struct ScreenLayout {
  double width = 1280.0;
  double height = 800.0;
  // Axis-aligned regions: {x0, y0, x1, y1}.
  double source_tree[4] = {60.0, 40.0, 580.0, 330.0};
  double target_tree[4] = {700.0, 40.0, 1240.0, 330.0};
  double properties_box[4] = {500.0, 340.0, 780.0, 420.0};
  double match_table[4] = {120.0, 440.0, 1160.0, 770.0};
};

/// Everything the simulator needs about the matching task.
struct SimulationTask {
  const schema::GeneratedPair* pair = nullptr;
  /// Algorithmic similarity landscape (perception substrate).
  const matching::MatchMatrix* similarity = nullptr;
  /// Exact reference M^e.
  const matching::MatchMatrix* reference = nullptr;
  ScreenLayout screen;
};

/// The observable output of one simulated matcher: exactly the paper's
/// D = (H, G).
struct SimulatedTrace {
  matching::DecisionHistory history;
  matching::MovementMap movement{1280.0, 800.0};
};

/// Simulates one human matcher working through the task.
///
/// The decision model follows the phenomena reported by the paper and by
/// Ackerman et al.: the matcher scans the target tree top-down as far as
/// `exploration_depth` allows, perceives candidate similarities through
/// `perception_noise`, declares matches above a threshold that *drifts
/// down* over the session (`threshold_drift`, the low-confidence-match
/// bias), reports confidences whose correctness-correlation is set by
/// `resolution_skill` and whose level is shifted by `confidence_bias`,
/// revisits earlier pairs (`mind_change_rate`, review pass), and moves
/// the mouse through the UI regions according to its attention profile.
///
/// Within-trace dynamics (population-sweep archetypes): when armed in
/// the profile, `fatigue_rate` widens perception noise and slows the
/// pace as the session progresses, `confidence_drift` inflates reported
/// confidence late in the trace, and `random_declare_rate` injects
/// adversarial spam declarations at pinned-high perceived similarity.
/// All three default to inert values under which the simulation draws
/// and emits exactly what it did before they existed.
SimulatedTrace SimulateMatcher(const SimulationTask& task,
                               const MatcherProfile& profile,
                               stats::Rng& rng);

}  // namespace mexi::sim

#endif  // MEXI_SIM_MATCHER_SIM_H_
