#include "sim/matcher_sim.h"
#include <functional>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/descriptive.h"

namespace mexi::sim {

namespace {

using matching::Decision;
using matching::MovementEvent;
using matching::MovementType;

/// Uniform point inside a {x0, y0, x1, y1} region, with Gaussian pull
/// towards a preferred relative position when `bias_y` is in [0, 1].
MovementEvent PointIn(const double region[4], double bias_y,
                      stats::Rng& rng) {
  MovementEvent e;
  e.x = rng.Uniform(region[0], region[2]);
  const double span = region[3] - region[1];
  const double center = region[1] + bias_y * span;
  e.y = stats::Clamp(rng.Gaussian(center, span * 0.12), region[1],
                     region[3]);
  return e;
}

struct Candidate {
  std::size_t source = 0;
  double perceived = 0.0;
  double true_similarity = 0.0;
};

}  // namespace

SimulatedTrace SimulateMatcher(const SimulationTask& task,
                               const MatcherProfile& profile,
                               stats::Rng& rng) {
  if (task.pair == nullptr || task.similarity == nullptr ||
      task.reference == nullptr) {
    throw std::invalid_argument("SimulateMatcher: incomplete task");
  }
  const auto& source = task.pair->source;
  const auto& target = task.pair->target;
  const matching::MatchMatrix& sim = *task.similarity;
  const matching::MatchMatrix& ref = *task.reference;

  SimulatedTrace trace;
  trace.movement =
      matching::MovementMap(task.screen.width, task.screen.height);

  // Target elements in UI scan order (pre-order of the foldable tree),
  // leaves only.
  std::vector<std::size_t> scan_order;
  for (std::size_t idx : target.PreOrder()) {
    if (target.attribute(idx).children.empty()) scan_order.push_back(idx);
  }
  const std::size_t num_leaves = scan_order.size();
  if (num_leaves == 0) return trace;

  // Exploration limits: depth caps how far down the list the matcher
  // ever reaches; coverage decides how many of those are examined.
  const std::size_t reach = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::lround(profile.exploration_depth *
                         static_cast<double>(num_leaves))));
  std::size_t examined_count = static_cast<std::size_t>(std::lround(
      profile.coverage * static_cast<double>(num_leaves) *
      rng.Uniform(0.85, 1.15)));
  examined_count = std::max<std::size_t>(1, std::min(examined_count, reach));

  std::vector<std::size_t> source_leaves = source.Leaves();

  // The UI presents a ranked candidate list per selected target term, so
  // a human effectively judges a short list rather than every source
  // element independently. Shortlist the top-k true-similarity
  // candidates per target leaf; perception noise applies within it.
  constexpr std::size_t kShortlist = 7;
  std::vector<std::vector<std::size_t>> shortlist(target.size());
  for (std::size_t j : scan_order) {
    std::vector<std::pair<double, std::size_t>> ranked;
    for (std::size_t i : source_leaves) {
      const double s = sim.At(i, j);
      if (s > 0.0) ranked.emplace_back(s, i);
    }
    const std::size_t k = std::min(kShortlist, ranked.size());
    std::partial_sort(ranked.begin(), ranked.begin() + static_cast<long>(k),
                      ranked.end(), std::greater<>());
    for (std::size_t r = 0; r < k; ++r) {
      shortlist[j].push_back(ranked[r].second);
    }
  }

  double t = rng.Uniform(5.0, 20.0);
  std::vector<Decision> declared;  // for review pass

  // Session progress in [0, 1) at the latest examined element; the
  // within-trace dynamics hooks (fatigue, confidence drift) read it.
  // Guarded so profiles with the hooks at their defaults evaluate the
  // exact expressions — and consume the exact draws — they always have.
  double session_progress = 0.0;

  auto report_confidence = [&](bool correct, double perceived) {
    const double correctness_signal = correct ? 0.84 : 0.40;
    const double similarity_signal =
        0.52 + 0.2 * (stats::Clamp(perceived, 0.0, 1.0) - 0.5);
    const double base =
        profile.resolution_skill * correctness_signal +
        (1.0 - profile.resolution_skill) * similarity_signal;
    double bias = profile.confidence_bias;
    if (profile.confidence_drift != 0.0) {
      // Late-session overconfidence: reported confidence inflates as
      // the matcher tires, regardless of correctness.
      bias += profile.confidence_drift * session_progress;
    }
    return stats::Clamp(
        base + bias + rng.Gaussian(0.0, profile.confidence_noise),
        0.02, 1.0);
  };

  auto add_movement = [&](MovementEvent e, MovementType type, double at) {
    e.type = type;
    e.timestamp = at;
    trace.movement.Add(e);
  };

  auto mind_change = [&](double at) {
    if (declared.empty()) return;
    const std::size_t pick = rng.UniformIndex(declared.size());
    Decision revisit = declared[pick];
    const bool correct = ref.At(revisit.source, revisit.target) > 0.0;
    double adjusted;
    if (rng.Bernoulli(0.8 * profile.resolution_skill)) {
      // Self-aware adjustment: experts pull confidence toward a value
      // that reflects the truth, converging rather than saturating.
      const double target = correct ? 0.85 : 0.3;
      adjusted = revisit.confidence +
                 0.3 * (target - revisit.confidence) +
                 rng.Gaussian(0.0, 0.07);
    } else {
      adjusted = revisit.confidence + rng.Gaussian(0.0, 0.18);
    }
    revisit.confidence = stats::Clamp(adjusted, 0.02, 1.0);
    revisit.timestamp = at;
    trace.history.Add(revisit);
    declared[pick].confidence = revisit.confidence;
    // Revisits show up in the match table region.
    add_movement(PointIn(task.screen.match_table, rng.Uniform(), rng),
                 MovementType::kMove, at);
    add_movement(PointIn(task.screen.match_table, rng.Uniform(), rng),
                 MovementType::kLeftClick, at);
  };

  for (std::size_t k = 0; k < examined_count; ++k) {
    const std::size_t j = scan_order[k];
    const double progress = static_cast<double>(k) /
                            static_cast<double>(examined_count);
    session_progress = progress;
    // Fatigue factor: 1 at session start, 1 + fatigue_rate at the end.
    const double fatigue =
        profile.fatigue_rate > 0.0 ? 1.0 + profile.fatigue_rate * progress
                                   : 1.0;
    const double list_position =
        static_cast<double>(k) / static_cast<double>(num_leaves);

    // --- Mouse: inspect the target tree (scrolling to depth). ---
    double step_seconds = std::max(
        2.0, rng.Gaussian(profile.seconds_per_decision,
                          0.3 * profile.seconds_per_decision));
    if (rng.Bernoulli(0.02)) step_seconds += 5.0 * profile.seconds_per_decision;
    if (profile.fatigue_rate > 0.0) step_seconds *= fatigue;
    const double t_next = t + step_seconds;
    double mt = t;
    auto advance = [&]() {
      mt = std::min(t_next, mt + rng.Uniform(0.3, 2.5));
      return mt;
    };

    add_movement(PointIn(task.screen.target_tree, list_position, rng),
                 MovementType::kMove, advance());
    const int scrolls =
        static_cast<int>(std::lround(list_position * 3.0)) +
        (rng.Bernoulli(profile.scroll_tendency) ? 1 : 0);
    for (int s = 0; s < scrolls; ++s) {
      add_movement(PointIn(task.screen.target_tree, list_position, rng),
                   MovementType::kScroll, advance());
    }
    add_movement(PointIn(task.screen.target_tree, list_position, rng),
                 MovementType::kLeftClick, advance());

    // --- Perception: rank candidates through noise. ---
    // Skilled humans recognize semantic correspondences beyond string
    // similarity (instances, position, domain knowledge); model that as
    // an insight bonus on true pairs that shrinks with perception noise.
    // Fatigue widens perception noise late in the session (and with it
    // shrinks the semantic-insight bonus below).
    const double perception_noise_now =
        profile.fatigue_rate > 0.0 ? profile.perception_noise * fatigue
                                   : profile.perception_noise;
    const double insight = stats::Clamp(
        1.0 - perception_noise_now * 2.2, 0.0, 1.0);
    Candidate best, second;
    best.perceived = -1.0;
    second.perceived = -1.0;
    for (std::size_t i : shortlist[j]) {
      const double s = sim.At(i, j);
      const double perceived =
          s + 0.22 * insight * (ref.At(i, j) > 0.0 ? 1.0 : 0.0) +
          rng.Gaussian(0.0, perception_noise_now);
      if (perceived > best.perceived) {
        second = best;
        best = Candidate{i, perceived, s};
      } else if (perceived > second.perceived) {
        second = Candidate{i, perceived, s};
      }
    }
    // Adversarial spam: declare a uniformly random shortlist candidate
    // regardless of what perception ranked (perceived pinned to 1.0 so
    // the threshold below cannot filter it).
    if (profile.random_declare_rate > 0.0 && !shortlist[j].empty() &&
        rng.Bernoulli(profile.random_declare_rate)) {
      const std::size_t pick = rng.UniformIndex(shortlist[j].size());
      best.source = shortlist[j][pick];
      best.true_similarity = sim.At(best.source, j);
      best.perceived = 1.0;
    }
    if (best.perceived < 0.0) {
      t = t_next;
      continue;
    }

    // --- Mouse: consult source metadata / properties box. ---
    if (rng.Bernoulli(profile.metadata_attention)) {
      add_movement(PointIn(task.screen.source_tree,
                           static_cast<double>(best.source) /
                               static_cast<double>(source.size() + 1),
                           rng),
                   MovementType::kMove, advance());
      if (rng.Bernoulli(0.5)) {
        add_movement(PointIn(task.screen.source_tree, rng.Uniform(), rng),
                     MovementType::kLeftClick, advance());
      }
      if (rng.Bernoulli(0.4)) {
        add_movement(PointIn(task.screen.properties_box, 0.5, rng),
                     MovementType::kMove, advance());
      }
    }
    // Uncertainty scrolling: small winner margin triggers re-reading.
    if (best.perceived - std::max(second.perceived, 0.0) < 0.1 &&
        rng.Bernoulli(profile.scroll_tendency)) {
      for (int s = 0; s < 2; ++s) {
        add_movement(PointIn(task.screen.source_tree, rng.Uniform(), rng),
                     MovementType::kScroll, advance());
      }
    }

    // --- Declare: threshold drifts down over the session (bias). ---
    const double threshold_now =
        profile.decision_threshold * (1.0 - profile.threshold_drift *
                                                progress);
    t = t_next;
    if (best.perceived > threshold_now) {
      const bool correct = ref.At(best.source, j) > 0.0;
      Decision d;
      d.source = best.source;
      d.target = j;
      d.confidence = report_confidence(correct, best.perceived);
      d.timestamp = t;
      trace.history.Add(d);
      declared.push_back(d);
      // Travel to the match table, then click to record the match.
      add_movement(PointIn(task.screen.match_table, list_position, rng),
                   MovementType::kMove, t);
      add_movement(PointIn(task.screen.match_table, list_position, rng),
                   rng.Bernoulli(0.05) ? MovementType::kRightClick
                                       : MovementType::kLeftClick,
                   t);

      // Possibly add the runner-up (1:n correspondences).
      if (second.perceived > threshold_now - 0.05 &&
          rng.Bernoulli(profile.second_candidate_rate)) {
        const bool correct2 = ref.At(second.source, j) > 0.0;
        Decision d2;
        d2.source = second.source;
        d2.target = j;
        d2.confidence = report_confidence(correct2, second.perceived);
        t += std::max(1.0, rng.Gaussian(profile.seconds_per_decision * 0.4,
                                        5.0));
        d2.timestamp = t;
        trace.history.Add(d2);
        declared.push_back(d2);
        add_movement(PointIn(task.screen.match_table, list_position, rng),
                     MovementType::kLeftClick, t);
      }
    }

    // --- Mind change. ---
    if (rng.Bernoulli(profile.mind_change_rate)) {
      t += std::max(1.0, rng.Gaussian(profile.seconds_per_decision * 0.5,
                                      5.0));
      mind_change(t);
    }
  }

  // --- Review passes: re-examine slices of the declared pairs. Humans
  // who review at all tend to do several sweeps, which is also what
  // brings session lengths to the ~55-decision scale of the paper's
  // participants. ---
  for (int pass = 0; pass < 4; ++pass) {
    if (!rng.Bernoulli(profile.review_pass_rate) || declared.empty()) break;
    const std::size_t revisits = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::lround(
               rng.Uniform(0.5, 0.9) *
               static_cast<double>(declared.size()))));
    for (std::size_t r = 0; r < revisits; ++r) {
      t += std::max(1.0, rng.Gaussian(profile.seconds_per_decision * 0.6,
                                      8.0));
      mind_change(t);
    }
  }

  return trace;
}

}  // namespace mexi::sim
