#include "sim/profile.h"

#include <stdexcept>

#include "stats/descriptive.h"

namespace mexi::sim {

namespace {

double Jitter(stats::Rng& rng, double mean, double stddev, double lo,
              double hi) {
  return stats::Clamp(rng.Gaussian(mean, stddev), lo, hi);
}

}  // namespace

std::string ArchetypeName(Archetype archetype) {
  switch (archetype) {
    case Archetype::kExpertA:
      return "A:precise+thorough";
    case Archetype::kSloppyB:
      return "B:imprecise+incomplete";
    case Archetype::kNarrowC:
      return "C:precise+incomplete";
    case Archetype::kUnreliableD:
      return "D:strong+unreliable";
    case Archetype::kMixed:
      return "mixed";
    case Archetype::kSpammerE:
      return "E:adversarial-spammer";
    case Archetype::kDrifterF:
      return "F:drift+fatigue";
    case Archetype::kCrossTaskG:
      return "G:cross-task";
  }
  return "unknown";
}

MatcherProfile SampleProfile(Archetype archetype, stats::Rng& rng) {
  MatcherProfile p;
  p.archetype = archetype;
  switch (archetype) {
    case Archetype::kExpertA:
      p.perception_noise = Jitter(rng, 0.07, 0.02, 0.02, 0.15);
      p.coverage = Jitter(rng, 0.78, 0.08, 0.58, 0.95);
      p.decision_threshold = Jitter(rng, 0.42, 0.04, 0.3, 0.55);
      p.second_candidate_rate = Jitter(rng, 0.7, 0.1, 0.4, 1.0);
      p.resolution_skill = Jitter(rng, 0.72, 0.08, 0.5, 0.92);
      p.confidence_bias = Jitter(rng, 0.05, 0.05, -0.08, 0.18);
      p.confidence_noise = Jitter(rng, 0.17, 0.03, 0.09, 0.26);
      p.threshold_drift = Jitter(rng, 0.05, 0.03, 0.0, 0.15);
      p.mind_change_rate = Jitter(rng, 0.34, 0.06, 0.15, 0.55);
      p.review_pass_rate = Jitter(rng, 0.75, 0.12, 0.4, 1.0);
      p.metadata_attention = Jitter(rng, 0.9, 0.05, 0.7, 1.0);
      p.exploration_depth = Jitter(rng, 0.95, 0.05, 0.8, 1.0);
      p.seconds_per_decision = Jitter(rng, 40.0, 8.0, 20.0, 80.0);
      p.scroll_tendency = Jitter(rng, 0.35, 0.1, 0.1, 0.7);
      break;
    case Archetype::kSloppyB:
      p.perception_noise = Jitter(rng, 0.32, 0.06, 0.2, 0.5);
      p.coverage = Jitter(rng, 0.5, 0.12, 0.25, 0.8);
      p.decision_threshold = Jitter(rng, 0.38, 0.06, 0.25, 0.55);
      p.second_candidate_rate = Jitter(rng, 0.2, 0.08, 0.0, 0.45);
      p.resolution_skill = Jitter(rng, 0.18, 0.09, 0.0, 0.4);
      p.confidence_bias = Jitter(rng, 0.44, 0.09, 0.22, 0.65);
      p.confidence_noise = Jitter(rng, 0.24, 0.05, 0.12, 0.4);
      p.threshold_drift = Jitter(rng, 0.3, 0.08, 0.1, 0.5);
      p.mind_change_rate = Jitter(rng, 0.36, 0.06, 0.18, 0.55);
      p.review_pass_rate = Jitter(rng, 0.45, 0.1, 0.15, 0.75);
      p.metadata_attention = Jitter(rng, 0.25, 0.1, 0.05, 0.5);
      p.exploration_depth = Jitter(rng, 0.6, 0.15, 0.3, 0.9);
      p.seconds_per_decision = Jitter(rng, 30.0, 8.0, 15.0, 60.0);
      p.scroll_tendency = Jitter(rng, 0.75, 0.12, 0.4, 1.0);
      break;
    case Archetype::kNarrowC:
      p.perception_noise = Jitter(rng, 0.09, 0.03, 0.03, 0.18);
      p.coverage = Jitter(rng, 0.3, 0.07, 0.12, 0.45);
      p.decision_threshold = Jitter(rng, 0.5, 0.04, 0.4, 0.62);
      p.second_candidate_rate = Jitter(rng, 0.3, 0.1, 0.05, 0.6);
      p.resolution_skill = Jitter(rng, 0.58, 0.1, 0.35, 0.85);
      p.confidence_bias = Jitter(rng, 0.06, 0.07, -0.12, 0.25);
      p.confidence_noise = Jitter(rng, 0.17, 0.04, 0.08, 0.28);
      p.threshold_drift = Jitter(rng, 0.05, 0.03, 0.0, 0.15);
      p.mind_change_rate = Jitter(rng, 0.3, 0.05, 0.12, 0.5);
      p.review_pass_rate = Jitter(rng, 0.6, 0.13, 0.2, 0.95);
      p.metadata_attention = Jitter(rng, 0.75, 0.1, 0.5, 1.0);
      p.exploration_depth = Jitter(rng, 0.35, 0.1, 0.15, 0.6);
      p.seconds_per_decision = Jitter(rng, 60.0, 12.0, 35.0, 110.0);
      p.scroll_tendency = Jitter(rng, 0.3, 0.1, 0.1, 0.6);
      break;
    case Archetype::kUnreliableD:
      p.perception_noise = Jitter(rng, 0.11, 0.03, 0.04, 0.2);
      p.coverage = Jitter(rng, 0.68, 0.09, 0.45, 0.9);
      p.decision_threshold = Jitter(rng, 0.42, 0.05, 0.3, 0.55);
      p.second_candidate_rate = Jitter(rng, 0.65, 0.12, 0.35, 1.0);
      p.resolution_skill = Jitter(rng, 0.12, 0.06, 0.0, 0.3);
      p.confidence_bias = Jitter(rng, -0.22, 0.07, -0.4, -0.05);
      p.confidence_noise = Jitter(rng, 0.28, 0.05, 0.18, 0.42);
      p.threshold_drift = Jitter(rng, 0.12, 0.05, 0.0, 0.25);
      p.mind_change_rate = Jitter(rng, 0.32, 0.06, 0.15, 0.5);
      p.review_pass_rate = Jitter(rng, 0.6, 0.13, 0.2, 0.95);
      p.metadata_attention = Jitter(rng, 0.65, 0.12, 0.35, 0.95);
      p.exploration_depth = Jitter(rng, 0.85, 0.08, 0.6, 1.0);
      p.seconds_per_decision = Jitter(rng, 45.0, 10.0, 25.0, 90.0);
      p.scroll_tendency = Jitter(rng, 0.55, 0.12, 0.25, 0.9);
      break;
    case Archetype::kSpammerE:
      // Rapid-fire near-random declarations, reported with uniformly
      // high confidence: precision and resolution collapse while the
      // declared volume (and so apparent coverage) stays high.
      p.perception_noise = Jitter(rng, 0.45, 0.06, 0.3, 0.6);
      p.coverage = Jitter(rng, 0.75, 0.1, 0.5, 1.0);
      p.decision_threshold = Jitter(rng, 0.18, 0.04, 0.08, 0.3);
      p.second_candidate_rate = Jitter(rng, 0.55, 0.12, 0.25, 0.9);
      p.resolution_skill = Jitter(rng, 0.03, 0.02, 0.0, 0.08);
      p.confidence_bias = Jitter(rng, 0.5, 0.06, 0.35, 0.65);
      p.confidence_noise = Jitter(rng, 0.08, 0.02, 0.03, 0.15);
      p.threshold_drift = Jitter(rng, 0.05, 0.03, 0.0, 0.15);
      p.mind_change_rate = Jitter(rng, 0.03, 0.02, 0.0, 0.08);
      p.review_pass_rate = Jitter(rng, 0.05, 0.03, 0.0, 0.12);
      p.metadata_attention = Jitter(rng, 0.06, 0.03, 0.0, 0.15);
      p.exploration_depth = Jitter(rng, 0.85, 0.08, 0.6, 1.0);
      p.seconds_per_decision = Jitter(rng, 5.0, 1.5, 2.0, 10.0);
      p.scroll_tendency = Jitter(rng, 0.15, 0.06, 0.05, 0.35);
      p.random_declare_rate = Jitter(rng, 0.65, 0.12, 0.35, 0.95);
      break;
    case Archetype::kDrifterF:
      // Starts near archetype-A competence but depletes within the
      // trace: perception noise and pace grow with fatigue, confidence
      // drifts up while the declaration threshold decays — the late
      // slice of the session looks like a different (worse) matcher.
      p.perception_noise = Jitter(rng, 0.1, 0.03, 0.04, 0.18);
      p.coverage = Jitter(rng, 0.7, 0.09, 0.5, 0.9);
      p.decision_threshold = Jitter(rng, 0.44, 0.04, 0.32, 0.56);
      p.second_candidate_rate = Jitter(rng, 0.5, 0.1, 0.25, 0.8);
      p.resolution_skill = Jitter(rng, 0.55, 0.09, 0.3, 0.8);
      p.confidence_bias = Jitter(rng, 0.02, 0.05, -0.1, 0.14);
      p.confidence_noise = Jitter(rng, 0.18, 0.04, 0.1, 0.3);
      p.threshold_drift = Jitter(rng, 0.38, 0.07, 0.2, 0.55);
      p.mind_change_rate = Jitter(rng, 0.25, 0.05, 0.1, 0.4);
      p.review_pass_rate = Jitter(rng, 0.25, 0.08, 0.05, 0.5);
      p.metadata_attention = Jitter(rng, 0.75, 0.1, 0.5, 1.0);
      p.exploration_depth = Jitter(rng, 0.85, 0.08, 0.6, 1.0);
      p.seconds_per_decision = Jitter(rng, 40.0, 8.0, 20.0, 75.0);
      p.scroll_tendency = Jitter(rng, 0.45, 0.1, 0.2, 0.8);
      p.fatigue_rate = Jitter(rng, 1.1, 0.25, 0.6, 1.8);
      p.confidence_drift = Jitter(rng, 0.3, 0.07, 0.15, 0.5);
      break;
    case Archetype::kCrossTaskG:
      // Mid-skill base profile whose per-task expression only partially
      // correlates with it (HumanAL's cross-task observation): on any
      // one task this matcher may present anywhere between its base and
      // a fresh same-family draw.
      p.perception_noise = Jitter(rng, 0.14, 0.04, 0.05, 0.26);
      p.coverage = Jitter(rng, 0.6, 0.1, 0.35, 0.85);
      p.decision_threshold = Jitter(rng, 0.45, 0.05, 0.32, 0.58);
      p.second_candidate_rate = Jitter(rng, 0.45, 0.12, 0.15, 0.8);
      p.resolution_skill = Jitter(rng, 0.5, 0.12, 0.2, 0.8);
      p.confidence_bias = Jitter(rng, 0.08, 0.07, -0.1, 0.28);
      p.confidence_noise = Jitter(rng, 0.2, 0.04, 0.1, 0.32);
      p.threshold_drift = Jitter(rng, 0.12, 0.05, 0.0, 0.28);
      p.mind_change_rate = Jitter(rng, 0.3, 0.06, 0.12, 0.5);
      p.review_pass_rate = Jitter(rng, 0.55, 0.12, 0.2, 0.9);
      p.metadata_attention = Jitter(rng, 0.7, 0.12, 0.4, 1.0);
      p.exploration_depth = Jitter(rng, 0.8, 0.1, 0.5, 1.0);
      p.seconds_per_decision = Jitter(rng, 45.0, 10.0, 25.0, 85.0);
      p.scroll_tendency = Jitter(rng, 0.45, 0.12, 0.15, 0.85);
      p.task_skill_correlation = Jitter(rng, 0.7, 0.08, 0.45, 0.9);
      break;
    case Archetype::kMixed:
      p.perception_noise = rng.Uniform(0.05, 0.3);
      p.coverage = rng.Uniform(0.15, 0.9);
      p.decision_threshold = rng.Uniform(0.3, 0.6);
      p.second_candidate_rate = rng.Uniform(0.05, 0.7);
      p.resolution_skill = rng.Uniform(0.05, 0.8);
      p.confidence_bias = rng.Uniform(-0.28, 0.5);
      p.confidence_noise = rng.Uniform(0.12, 0.38);
      p.threshold_drift = rng.Uniform(0.0, 0.4);
      p.mind_change_rate = rng.Uniform(0.15, 0.5);
      p.review_pass_rate = rng.Uniform(0.2, 0.95);
      p.metadata_attention = rng.Uniform(0.15, 0.95);
      p.exploration_depth = rng.Uniform(0.25, 1.0);
      p.seconds_per_decision = rng.Uniform(20.0, 100.0);
      p.scroll_tendency = rng.Uniform(0.1, 0.9);
      break;
  }
  return p;
}

MatcherProfile PerTaskProfile(const MatcherProfile& base, stats::Rng& rng) {
  if (base.task_skill_correlation >= 1.0) return base;
  const double rho = stats::Clamp(base.task_skill_correlation, 0.0, 1.0);
  // Fresh same-archetype draw; skill parameters regress toward it.
  const MatcherProfile fresh = SampleProfile(base.archetype, rng);
  MatcherProfile out = base;
  auto blend = [rho](double base_value, double fresh_value) {
    return rho * base_value + (1.0 - rho) * fresh_value;
  };
  out.perception_noise = blend(base.perception_noise, fresh.perception_noise);
  out.coverage = blend(base.coverage, fresh.coverage);
  out.decision_threshold =
      blend(base.decision_threshold, fresh.decision_threshold);
  out.second_candidate_rate =
      blend(base.second_candidate_rate, fresh.second_candidate_rate);
  out.resolution_skill = blend(base.resolution_skill, fresh.resolution_skill);
  out.confidence_bias = blend(base.confidence_bias, fresh.confidence_bias);
  out.threshold_drift = blend(base.threshold_drift, fresh.threshold_drift);
  // Attention/motor style and the remaining cognitive texture are
  // trait-like (they travel with the person, not the task): keep base.
  return out;
}

double PopulationMix::Weight(Archetype archetype) const {
  switch (archetype) {
    case Archetype::kExpertA:
      return expert_a;
    case Archetype::kSloppyB:
      return sloppy_b;
    case Archetype::kNarrowC:
      return narrow_c;
    case Archetype::kUnreliableD:
      return unreliable_d;
    case Archetype::kMixed:
      return mixed;
    case Archetype::kSpammerE:
      return spammer_e;
    case Archetype::kDrifterF:
      return drifter_f;
    case Archetype::kCrossTaskG:
      return crosstask_g;
  }
  return 0.0;
}

double PopulationMix::Total() const {
  return expert_a + sloppy_b + narrow_c + unreliable_d + mixed + spammer_e +
         drifter_f + crosstask_g;
}

PopulationMix WidePopulationMix() {
  PopulationMix mix;
  mix.expert_a = 0.136;
  mix.sloppy_b = 0.176;
  mix.narrow_c = 0.216;
  mix.unreliable_d = 0.112;
  mix.mixed = 0.16;
  mix.spammer_e = 0.08;
  mix.drifter_f = 0.07;
  mix.crosstask_g = 0.05;
  return mix;
}

namespace {

/// Mixture-bucket order for SamplePopulation. The paper archetypes come
/// first in their historical cascade order and kMixed stays the final
/// (else) bucket, so a mix with zero sweep weights draws bitwise the
/// same populations it always has.
constexpr Archetype kMixtureOrder[kNumArchetypes] = {
    Archetype::kExpertA,    Archetype::kSloppyB,  Archetype::kNarrowC,
    Archetype::kUnreliableD, Archetype::kSpammerE, Archetype::kDrifterF,
    Archetype::kCrossTaskG, Archetype::kMixed,
};

}  // namespace

Archetype SampleArchetype(const PopulationMix& mix, stats::Rng& rng) {
  const double total = mix.Total();
  if (total <= 0.0) {
    throw std::invalid_argument("SamplePopulation: empty mixture");
  }
  const double u = rng.Uniform(0.0, total);
  double edge = 0.0;
  for (std::size_t b = 0; b + 1 < kNumArchetypes; ++b) {
    edge += mix.Weight(kMixtureOrder[b]);
    if (u < edge) return kMixtureOrder[b];
  }
  return kMixtureOrder[kNumArchetypes - 1];
}

std::vector<MatcherProfile> SamplePopulation(std::size_t count,
                                             const PopulationMix& mix,
                                             stats::Rng& rng) {
  if (mix.Total() <= 0.0) {
    throw std::invalid_argument("SamplePopulation: empty mixture");
  }
  std::vector<MatcherProfile> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(SampleProfile(SampleArchetype(mix, rng), rng));
  }
  return out;
}

}  // namespace mexi::sim
