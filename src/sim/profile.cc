#include "sim/profile.h"

#include <stdexcept>

#include "stats/descriptive.h"

namespace mexi::sim {

namespace {

double Jitter(stats::Rng& rng, double mean, double stddev, double lo,
              double hi) {
  return stats::Clamp(rng.Gaussian(mean, stddev), lo, hi);
}

}  // namespace

std::string ArchetypeName(Archetype archetype) {
  switch (archetype) {
    case Archetype::kExpertA:
      return "A:precise+thorough";
    case Archetype::kSloppyB:
      return "B:imprecise+incomplete";
    case Archetype::kNarrowC:
      return "C:precise+incomplete";
    case Archetype::kUnreliableD:
      return "D:strong+unreliable";
    case Archetype::kMixed:
      return "mixed";
  }
  return "unknown";
}

MatcherProfile SampleProfile(Archetype archetype, stats::Rng& rng) {
  MatcherProfile p;
  p.archetype = archetype;
  switch (archetype) {
    case Archetype::kExpertA:
      p.perception_noise = Jitter(rng, 0.07, 0.02, 0.02, 0.15);
      p.coverage = Jitter(rng, 0.78, 0.08, 0.58, 0.95);
      p.decision_threshold = Jitter(rng, 0.42, 0.04, 0.3, 0.55);
      p.second_candidate_rate = Jitter(rng, 0.7, 0.1, 0.4, 1.0);
      p.resolution_skill = Jitter(rng, 0.72, 0.08, 0.5, 0.92);
      p.confidence_bias = Jitter(rng, 0.05, 0.05, -0.08, 0.18);
      p.confidence_noise = Jitter(rng, 0.17, 0.03, 0.09, 0.26);
      p.threshold_drift = Jitter(rng, 0.05, 0.03, 0.0, 0.15);
      p.mind_change_rate = Jitter(rng, 0.34, 0.06, 0.15, 0.55);
      p.review_pass_rate = Jitter(rng, 0.75, 0.12, 0.4, 1.0);
      p.metadata_attention = Jitter(rng, 0.9, 0.05, 0.7, 1.0);
      p.exploration_depth = Jitter(rng, 0.95, 0.05, 0.8, 1.0);
      p.seconds_per_decision = Jitter(rng, 40.0, 8.0, 20.0, 80.0);
      p.scroll_tendency = Jitter(rng, 0.35, 0.1, 0.1, 0.7);
      break;
    case Archetype::kSloppyB:
      p.perception_noise = Jitter(rng, 0.32, 0.06, 0.2, 0.5);
      p.coverage = Jitter(rng, 0.5, 0.12, 0.25, 0.8);
      p.decision_threshold = Jitter(rng, 0.38, 0.06, 0.25, 0.55);
      p.second_candidate_rate = Jitter(rng, 0.2, 0.08, 0.0, 0.45);
      p.resolution_skill = Jitter(rng, 0.18, 0.09, 0.0, 0.4);
      p.confidence_bias = Jitter(rng, 0.44, 0.09, 0.22, 0.65);
      p.confidence_noise = Jitter(rng, 0.24, 0.05, 0.12, 0.4);
      p.threshold_drift = Jitter(rng, 0.3, 0.08, 0.1, 0.5);
      p.mind_change_rate = Jitter(rng, 0.36, 0.06, 0.18, 0.55);
      p.review_pass_rate = Jitter(rng, 0.45, 0.1, 0.15, 0.75);
      p.metadata_attention = Jitter(rng, 0.25, 0.1, 0.05, 0.5);
      p.exploration_depth = Jitter(rng, 0.6, 0.15, 0.3, 0.9);
      p.seconds_per_decision = Jitter(rng, 30.0, 8.0, 15.0, 60.0);
      p.scroll_tendency = Jitter(rng, 0.75, 0.12, 0.4, 1.0);
      break;
    case Archetype::kNarrowC:
      p.perception_noise = Jitter(rng, 0.09, 0.03, 0.03, 0.18);
      p.coverage = Jitter(rng, 0.3, 0.07, 0.12, 0.45);
      p.decision_threshold = Jitter(rng, 0.5, 0.04, 0.4, 0.62);
      p.second_candidate_rate = Jitter(rng, 0.3, 0.1, 0.05, 0.6);
      p.resolution_skill = Jitter(rng, 0.58, 0.1, 0.35, 0.85);
      p.confidence_bias = Jitter(rng, 0.06, 0.07, -0.12, 0.25);
      p.confidence_noise = Jitter(rng, 0.17, 0.04, 0.08, 0.28);
      p.threshold_drift = Jitter(rng, 0.05, 0.03, 0.0, 0.15);
      p.mind_change_rate = Jitter(rng, 0.3, 0.05, 0.12, 0.5);
      p.review_pass_rate = Jitter(rng, 0.6, 0.13, 0.2, 0.95);
      p.metadata_attention = Jitter(rng, 0.75, 0.1, 0.5, 1.0);
      p.exploration_depth = Jitter(rng, 0.35, 0.1, 0.15, 0.6);
      p.seconds_per_decision = Jitter(rng, 60.0, 12.0, 35.0, 110.0);
      p.scroll_tendency = Jitter(rng, 0.3, 0.1, 0.1, 0.6);
      break;
    case Archetype::kUnreliableD:
      p.perception_noise = Jitter(rng, 0.11, 0.03, 0.04, 0.2);
      p.coverage = Jitter(rng, 0.68, 0.09, 0.45, 0.9);
      p.decision_threshold = Jitter(rng, 0.42, 0.05, 0.3, 0.55);
      p.second_candidate_rate = Jitter(rng, 0.65, 0.12, 0.35, 1.0);
      p.resolution_skill = Jitter(rng, 0.12, 0.06, 0.0, 0.3);
      p.confidence_bias = Jitter(rng, -0.22, 0.07, -0.4, -0.05);
      p.confidence_noise = Jitter(rng, 0.28, 0.05, 0.18, 0.42);
      p.threshold_drift = Jitter(rng, 0.12, 0.05, 0.0, 0.25);
      p.mind_change_rate = Jitter(rng, 0.32, 0.06, 0.15, 0.5);
      p.review_pass_rate = Jitter(rng, 0.6, 0.13, 0.2, 0.95);
      p.metadata_attention = Jitter(rng, 0.65, 0.12, 0.35, 0.95);
      p.exploration_depth = Jitter(rng, 0.85, 0.08, 0.6, 1.0);
      p.seconds_per_decision = Jitter(rng, 45.0, 10.0, 25.0, 90.0);
      p.scroll_tendency = Jitter(rng, 0.55, 0.12, 0.25, 0.9);
      break;
    case Archetype::kMixed:
      p.perception_noise = rng.Uniform(0.05, 0.3);
      p.coverage = rng.Uniform(0.15, 0.9);
      p.decision_threshold = rng.Uniform(0.3, 0.6);
      p.second_candidate_rate = rng.Uniform(0.05, 0.7);
      p.resolution_skill = rng.Uniform(0.05, 0.8);
      p.confidence_bias = rng.Uniform(-0.28, 0.5);
      p.confidence_noise = rng.Uniform(0.12, 0.38);
      p.threshold_drift = rng.Uniform(0.0, 0.4);
      p.mind_change_rate = rng.Uniform(0.15, 0.5);
      p.review_pass_rate = rng.Uniform(0.2, 0.95);
      p.metadata_attention = rng.Uniform(0.15, 0.95);
      p.exploration_depth = rng.Uniform(0.25, 1.0);
      p.seconds_per_decision = rng.Uniform(20.0, 100.0);
      p.scroll_tendency = rng.Uniform(0.1, 0.9);
      break;
  }
  return p;
}

std::vector<MatcherProfile> SamplePopulation(std::size_t count,
                                             const PopulationMix& mix,
                                             stats::Rng& rng) {
  const double total =
      mix.expert_a + mix.sloppy_b + mix.narrow_c + mix.unreliable_d +
      mix.mixed;
  if (total <= 0.0) {
    throw std::invalid_argument("SamplePopulation: empty mixture");
  }
  std::vector<MatcherProfile> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double u = rng.Uniform(0.0, total);
    Archetype archetype;
    if (u < mix.expert_a) {
      archetype = Archetype::kExpertA;
    } else if (u < mix.expert_a + mix.sloppy_b) {
      archetype = Archetype::kSloppyB;
    } else if (u < mix.expert_a + mix.sloppy_b + mix.narrow_c) {
      archetype = Archetype::kNarrowC;
    } else if (u <
               mix.expert_a + mix.sloppy_b + mix.narrow_c +
                   mix.unreliable_d) {
      archetype = Archetype::kUnreliableD;
    } else {
      archetype = Archetype::kMixed;
    }
    out.push_back(SampleProfile(archetype, rng));
  }
  return out;
}

}  // namespace mexi::sim
