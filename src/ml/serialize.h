#ifndef MEXI_ML_SERIALIZE_H_
#define MEXI_ML_SERIALIZE_H_

#include <string>

#include "ml/matrix.h"
#include "robust/serialize.h"

namespace mexi::ml {

/// Matrix round-trip: shape header + raw IEEE-754 bytes, so a
/// serialized model reloads bitwise-identical — the foundation of the
/// "resumed run equals uninterrupted run" guarantee.
void WriteMatrix(robust::BinaryWriter& writer, const Matrix& matrix);

/// Reads a matrix of any shape.
Matrix ReadMatrix(robust::BinaryReader& reader);

/// Reads into an existing matrix whose shape is architecture-determined;
/// a shape mismatch means the checkpoint belongs to a different model
/// configuration and throws StatusError(kCorruption) naming `what`.
void ReadMatrixInto(robust::BinaryReader& reader, Matrix& matrix,
                    const std::string& what);

}  // namespace mexi::ml

#endif  // MEXI_ML_SERIALIZE_H_
