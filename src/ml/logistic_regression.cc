#include "ml/logistic_regression.h"

#include <cmath>
#include <limits>
#include <string>

#include "ml/kernels.h"
#include "ml/vmath/vmath.h"
#include "robust/fault_injection.h"
#include "robust/status.h"

namespace mexi::ml {

std::unique_ptr<BinaryClassifier> LogisticRegression::Clone() const {
  return std::make_unique<LogisticRegression>(config_);
}

void LogisticRegression::FitImpl(const Dataset& data) {
  standardizer_.Fit(data.features);
  const auto x = standardizer_.TransformAll(data.features);
  const std::size_t n = x.size();
  const std::size_t d = x[0].size();
  weights_.assign(d, 0.0);
  intercept_ = 0.0;

  auto& faults = robust::FaultInjector::Global();
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    std::vector<double> grad(d, 0.0);
    double grad_b = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double z =
          kernels::Dot(weights_.data(), x[i].data(), d, intercept_);
      const double err =
          vmath::Sigmoid(z) - static_cast<double>(data.labels[i]);
      kernels::Axpy(err, x[i].data(), grad.data(), d);
      grad_b += err;
    }
    if (faults.Hit(robust::FaultSite::kLogRegGradient) ==
        robust::FaultKind::kNan) {
      grad_b = std::numeric_limits<double>::quiet_NaN();
    }
    double grad_sum = grad_b;
    for (double g : grad) grad_sum += g;
    if (!std::isfinite(grad_sum)) {
      robust::ThrowStatus(
          robust::StatusCode::kDivergence,
          "logistic-regression gradient is not finite at epoch " +
              std::to_string(epoch) +
              " — aborting before weights are poisoned");
    }
    const double inv_n = 1.0 / static_cast<double>(n);
    const double lr = config_.learning_rate /
                      (1.0 + config_.decay * static_cast<double>(epoch));
    for (std::size_t j = 0; j < d; ++j) {
      weights_[j] -= lr * (grad[j] * inv_n + config_.l2 * weights_[j]);
    }
    intercept_ -= lr * grad_b * inv_n;
  }
}

double LogisticRegression::PredictProbaImpl(
    const std::vector<double>& row) const {
  const std::vector<double> x = standardizer_.Transform(row);
  return vmath::SigmoidInfer(
      kernels::Dot(weights_.data(), x.data(), x.size(), intercept_));
}

void LogisticRegression::SaveStateImpl(robust::BinaryWriter& writer) const {
  writer.WriteTag("LOGR");
  standardizer_.SaveState(writer);
  writer.WriteDoubleVector(weights_);
  writer.WriteDouble(intercept_);
}

void LogisticRegression::LoadStateImpl(robust::BinaryReader& reader) {
  reader.ExpectTag("LOGR");
  standardizer_.LoadState(reader);
  weights_ = reader.ReadDoubleVector();
  intercept_ = reader.ReadDouble();
}

}  // namespace mexi::ml
