#ifndef MEXI_ML_DECISION_TREE_H_
#define MEXI_ML_DECISION_TREE_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/classifier.h"
#include "ml/dataset.h"
#include "stats/rng.h"

namespace mexi::ml {

/// CART classification tree with Gini-impurity splits.
///
/// Leaves store the positive-class fraction, so the tree yields smooth-ish
/// probabilities. `max_features` enables per-split feature subsampling,
/// which `RandomForest` uses for decorrelation.
class DecisionTree : public BinaryClassifier {
 public:
  struct Config {
    /// Maximum depth; 0 means a single leaf (the prior).
    int max_depth = 8;
    /// A node with fewer examples becomes a leaf.
    int min_samples_split = 4;
    /// Minimum examples allowed on each side of a split.
    int min_samples_leaf = 2;
    /// Features considered per split; 0 = all features.
    int max_features = 0;
    /// Seed for feature subsampling (only used when max_features > 0).
    std::uint64_t seed = 29;
  };

  DecisionTree() = default;
  explicit DecisionTree(const Config& config) : config_(config) {}

  std::unique_ptr<BinaryClassifier> Clone() const override;
  std::string Name() const override { return "DecisionTree"; }

  /// Number of nodes in the fitted tree (for tests / diagnostics).
  std::size_t NodeCount() const { return nodes_.size(); }

  /// Depth of the fitted tree.
  int Depth() const;

 protected:
  void FitImpl(const Dataset& data) override;
  double PredictProbaImpl(const std::vector<double>& row) const override;
  void SaveStateImpl(robust::BinaryWriter& writer) const override;
  void LoadStateImpl(robust::BinaryReader& reader) override;

 private:
  struct Node {
    int feature = -1;        // -1 marks a leaf.
    double threshold = 0.0;  // go left when value <= threshold
    int left = -1;
    int right = -1;
    double positive_fraction = 0.0;
  };

  int Build(const Dataset& data, const std::vector<std::size_t>& indices,
            int depth, stats::Rng& rng);

  Config config_;
  std::vector<Node> nodes_;
};

}  // namespace mexi::ml

#endif  // MEXI_ML_DECISION_TREE_H_
