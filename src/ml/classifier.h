#ifndef MEXI_ML_CLASSIFIER_H_
#define MEXI_ML_CLASSIFIER_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/dataset.h"
#include "robust/serialize.h"

namespace mexi::ml {

/// Abstract binary probabilistic classifier.
///
/// Every expert characteristic in MExI (precise / thorough / correlated /
/// calibrated) is learned by one `BinaryClassifier` following the
/// binary-relevance transformation of Read et al. The base class
/// centralizes two behaviors every implementation needs:
///   * degenerate training sets (a single class present) collapse to a
///     constant predictor instead of tripping up the optimizers, and
///   * batch prediction helpers.
class BinaryClassifier {
 public:
  virtual ~BinaryClassifier() = default;

  /// Trains on `data`. Throws std::invalid_argument on an empty table.
  void Fit(const Dataset& data);

  /// Probability that `row` belongs to the positive class.
  /// Requires Fit() first.
  double PredictProba(const std::vector<double>& row) const;

  /// Hard 0/1 decision at threshold 0.5.
  int Predict(const std::vector<double>& row) const;

  /// Batch versions of the two predictors.
  std::vector<double> PredictProbaAll(
      const std::vector<std::vector<double>>& rows) const;
  std::vector<int> PredictAll(
      const std::vector<std::vector<double>>& rows) const;

  /// Batched probability prediction: one fitted/degenerate gate up
  /// front, then a single PredictProbaBatchImpl call. Bitwise identical
  /// per row to calling PredictProba row by row — the default Impl *is*
  /// that loop, and overrides must preserve each row's accumulation
  /// order exactly (they may only restructure across rows).
  std::vector<double> PredictProbaBatch(
      const std::vector<std::vector<double>>& rows) const;

  /// Fresh untrained copy with identical hyper-parameters.
  virtual std::unique_ptr<BinaryClassifier> Clone() const = 0;

  /// Human-readable identifier ("RandomForest", "LinearSVM", ...).
  virtual std::string Name() const = 0;

  bool fitted() const { return fitted_; }

  /// Serializes the fitted state — including the degenerate
  /// constant-predictor fallback — so a fresh Clone() restores to an
  /// identical predictor. Loading a checkpoint written by a different
  /// classifier type throws StatusError(kCorruption).
  void SaveState(robust::BinaryWriter& writer) const;
  void LoadState(robust::BinaryReader& reader);

 protected:
  /// Implementation hook; called only for non-degenerate training sets.
  virtual void FitImpl(const Dataset& data) = 0;

  /// Implementation hook; called only after successful FitImpl.
  virtual double PredictProbaImpl(const std::vector<double>& row) const = 0;

  /// Batch hook; called only after successful FitImpl (never for
  /// degenerate constant predictors). Defaults to the row-by-row loop;
  /// overrides restructure for locality (trees-outer, one network pass)
  /// but must keep every row's own FP chain identical to
  /// PredictProbaImpl.
  virtual std::vector<double> PredictProbaBatchImpl(
      const std::vector<std::vector<double>>& rows) const;

  /// Serialization hooks; called only when a real (non-constant) model
  /// was fitted. The default throws kInvalidArgument — classifiers
  /// outside the checkpointed zoo opt in by overriding both.
  virtual void SaveStateImpl(robust::BinaryWriter& writer) const;
  virtual void LoadStateImpl(robust::BinaryReader& reader);

 private:
  bool fitted_ = false;
  /// -1 = model trained normally; 0/1 = constant predictor fallback.
  int constant_label_ = -1;
};

}  // namespace mexi::ml

#endif  // MEXI_ML_CLASSIFIER_H_
