#include "ml/mlp.h"

namespace mexi::ml {

MlpClassifier::MlpClassifier() : MlpClassifier(Config()) {}

MlpClassifier::MlpClassifier(const Config& config) : config_(config) {}

std::unique_ptr<BinaryClassifier> MlpClassifier::Clone() const {
  return std::make_unique<MlpClassifier>(config_);
}

void MlpClassifier::FitImpl(const Dataset& data) {
  standardizer_.Fit(data.features);
  const auto x = standardizer_.TransformAll(data.features);

  stats::Rng rng(config_.seed);
  network_ = std::make_unique<Network>(config_.adam);
  std::size_t in_dim = x[0].size();
  for (std::size_t width : config_.hidden_layers) {
    network_->Add(std::make_unique<DenseLayer>(in_dim, width, rng));
    network_->Add(std::make_unique<ReluLayer>());
    in_dim = width;
  }
  network_->Add(std::make_unique<DenseLayer>(in_dim, 1, rng));
  network_->Add(std::make_unique<SigmoidLayer>());

  Matrix inputs = Matrix::FromRows(x);
  Matrix targets(x.size(), 1);
  for (std::size_t i = 0; i < x.size(); ++i) {
    targets(i, 0) = static_cast<double>(data.labels[i]);
  }
  stats::Rng train_rng = rng.Split();
  network_->Fit(inputs, targets, config_.epochs, config_.batch_size,
                train_rng);
}

double MlpClassifier::PredictProbaImpl(const std::vector<double>& row) const {
  Matrix input(1, row.size());
  input.SetRow(0, standardizer_.Transform(row));
  return network_->Predict(input)(0, 0);
}

}  // namespace mexi::ml
