#include "ml/mlp.h"

#include "robust/status.h"

namespace mexi::ml {

MlpClassifier::MlpClassifier() : MlpClassifier(Config()) {}

MlpClassifier::MlpClassifier(const Config& config) : config_(config) {}

std::unique_ptr<BinaryClassifier> MlpClassifier::Clone() const {
  return std::make_unique<MlpClassifier>(config_);
}

void MlpClassifier::BuildNetwork(std::size_t in_dim, stats::Rng& rng) {
  in_dim_ = in_dim;
  network_ = std::make_unique<Network>(config_.adam);
  for (std::size_t width : config_.hidden_layers) {
    network_->Add(std::make_unique<DenseLayer>(in_dim, width, rng));
    network_->Add(std::make_unique<ReluLayer>());
    in_dim = width;
  }
  network_->Add(std::make_unique<DenseLayer>(in_dim, 1, rng));
  network_->Add(std::make_unique<SigmoidLayer>());
}

void MlpClassifier::FitImpl(const Dataset& data) {
  standardizer_.Fit(data.features);
  const auto x = standardizer_.TransformAll(data.features);

  stats::Rng rng(config_.seed);
  BuildNetwork(x[0].size(), rng);

  Matrix inputs = Matrix::FromRows(x);
  Matrix targets(x.size(), 1);
  for (std::size_t i = 0; i < x.size(); ++i) {
    targets(i, 0) = static_cast<double>(data.labels[i]);
  }
  stats::Rng train_rng = rng.Split();
  network_->Fit(inputs, targets, config_.epochs, config_.batch_size,
                train_rng);
}

double MlpClassifier::PredictProbaImpl(const std::vector<double>& row) const {
  Matrix input(1, row.size());
  input.SetRow(0, standardizer_.Transform(row));
  return network_->Predict(input)(0, 0);
}

void MlpClassifier::SaveStateImpl(robust::BinaryWriter& writer) const {
  writer.WriteTag("MLP ");
  standardizer_.SaveState(writer);
  writer.WriteU64(in_dim_);
  network_->SaveState(writer);
}

void MlpClassifier::LoadStateImpl(robust::BinaryReader& reader) {
  reader.ExpectTag("MLP ");
  standardizer_.LoadState(reader);
  const std::uint64_t in_dim = reader.ReadU64();
  // Rebuild the exact layer stack FitImpl would have produced, then let
  // Network::LoadState overwrite the freshly-initialized weights.
  stats::Rng rng(config_.seed);
  BuildNetwork(in_dim, rng);
  network_->LoadState(reader);
}

}  // namespace mexi::ml
