#include "ml/mlp.h"

#include <cstdlib>
#include <numeric>
#include <stdexcept>

#include "obs/obs.h"
#include "obs/trace.h"
#include "robust/checkpoint.h"
#include "robust/fault_injection.h"
#include "robust/status.h"

namespace mexi::ml {

MlpClassifier::MlpClassifier() : MlpClassifier(Config()) {}

MlpClassifier::MlpClassifier(const Config& config) : config_(config) {}

std::unique_ptr<BinaryClassifier> MlpClassifier::Clone() const {
  return std::make_unique<MlpClassifier>(config_);
}

void MlpClassifier::BuildNetwork(std::size_t in_dim, stats::Rng& rng) {
  in_dim_ = in_dim;
  network_ = std::make_unique<Network>(config_.adam);
  for (std::size_t width : config_.hidden_layers) {
    network_->Add(std::make_unique<DenseLayer>(in_dim, width, rng));
    network_->Add(std::make_unique<ReluLayer>());
    in_dim = width;
  }
  network_->Add(std::make_unique<DenseLayer>(in_dim, 1, rng));
  network_->Add(std::make_unique<SigmoidLayer>());
}

void MlpClassifier::EnableCheckpointing(const std::string& directory,
                                        int every_epochs) {
  if (every_epochs < 1) {
    throw std::invalid_argument(
        "MlpClassifier::EnableCheckpointing: every_epochs must be >= 1");
  }
  checkpoint_dir_ = directory;
  checkpoint_every_ = every_epochs;
}

std::uint64_t MlpClassifier::ConfigFingerprint() const {
  robust::BinaryWriter w;
  w.WriteU64(config_.hidden_layers.size());
  for (const std::size_t width : config_.hidden_layers) w.WriteU64(width);
  w.WriteI64(config_.epochs);
  w.WriteU64(config_.batch_size);
  w.WriteDouble(config_.adam.learning_rate);
  w.WriteDouble(config_.adam.beta1);
  w.WriteDouble(config_.adam.beta2);
  w.WriteDouble(config_.adam.epsilon);
  w.WriteU64(config_.seed);
  return robust::Fnv1a(w.buffer().data(), w.buffer().size());
}

std::uint64_t MlpClassifier::DataFingerprint(const Dataset& data) {
  std::uint64_t hash = robust::kFnvOffsetBasis;
  const std::uint64_t n = data.features.size();
  hash = robust::Fnv1a(&n, sizeof(n), hash);
  for (const auto& row : data.features) {
    hash = robust::Fnv1a(row.data(), row.size() * sizeof(double), hash);
  }
  hash = robust::Fnv1a(data.labels.data(),
                       data.labels.size() * sizeof(data.labels[0]), hash);
  return hash;
}

void MlpClassifier::FitImpl(const Dataset& data) {
  const obs::Span fit_span("mlp.fit");
  standardizer_.Fit(data.features);
  const auto x = standardizer_.TransformAll(data.features);

  stats::Rng rng(config_.seed);
  BuildNetwork(x[0].size(), rng);

  Matrix inputs = Matrix::FromRows(x);
  Matrix targets(x.size(), 1);
  for (std::size_t i = 0; i < x.size(); ++i) {
    targets(i, 0) = static_cast<double>(data.labels[i]);
  }
  stats::Rng train_rng = rng.Split();

  if (checkpoint_dir_.empty()) {
    network_->Fit(inputs, targets, config_.epochs, config_.batch_size,
                  train_rng);
    return;
  }

  // Checkpointed path. The shuffle permutation is training state (epoch
  // k's order is the composition of every shuffle so far), so it rides
  // along with the weights, optimizer, and training rng.
  robust::CheckpointManager checkpoint(checkpoint_dir_, "mlp");
  const std::uint64_t config_fp = ConfigFingerprint();
  const std::uint64_t data_fp = DataFingerprint(data);
  std::vector<std::size_t> order(x.size());
  std::iota(order.begin(), order.end(), 0);

  Network::FitHooks hooks;
  hooks.order = &order;

  std::vector<std::uint8_t> payload;
  const robust::Status status = checkpoint.LoadLatest(&payload);
  if (status.code() != robust::StatusCode::kNotFound) {
    robust::ThrowIfError(status);
    robust::BinaryReader reader(payload);
    reader.ExpectTag("MLPR");
    if (reader.ReadU64() != config_fp || reader.ReadU64() != data_fp) {
      robust::ThrowStatus(
          robust::StatusCode::kInvalidArgument,
          "MLP checkpoint belongs to a different training run "
          "(config/data fingerprint mismatch) — discard the checkpoint "
          "directory to start fresh");
    }
    hooks.start_epoch = static_cast<int>(reader.ReadI64());
    reader.ReadDouble();  // last epoch loss; informational only
    robust::ReadRngState(reader, train_rng);
    const std::uint64_t order_size = reader.ReadU64();
    if (order_size != order.size()) {
      robust::ThrowStatus(robust::StatusCode::kCorruption,
                          "MLP checkpoint shuffle order has wrong length");
    }
    for (auto& index : order) {
      const std::uint64_t value = reader.ReadU64();
      if (value >= order_size) {
        robust::ThrowStatus(robust::StatusCode::kCorruption,
                            "MLP checkpoint shuffle order index out of range");
      }
      index = static_cast<std::size_t>(value);
    }
    LoadStateImpl(reader);
    if (obs::MetricsEnabled()) {
      obs::Observability::Global().Event(
          "mlp.resume", {obs::F("start_epoch", hooks.start_epoch)});
    }
  }

  auto& faults = robust::FaultInjector::Global();
  hooks.after_epoch = [&](int epochs_done, double loss) {
    if (epochs_done % checkpoint_every_ == 0 ||
        epochs_done == config_.epochs) {
      robust::BinaryWriter writer;
      writer.WriteTag("MLPR");
      writer.WriteU64(config_fp);
      writer.WriteU64(data_fp);
      writer.WriteI64(epochs_done);
      writer.WriteDouble(loss);
      robust::WriteRngState(writer, train_rng);
      writer.WriteU64(order.size());
      for (const std::size_t index : order) writer.WriteU64(index);
      SaveStateImpl(writer);
      robust::ThrowIfError(checkpoint.Commit(writer.buffer()));
    }
    // The epoch fault site is only consulted on the checkpointed path,
    // so arming epoch faults never perturbs hit counts of plain fits.
    switch (faults.Hit(robust::FaultSite::kEpochEnd)) {
      case robust::FaultKind::kAbort:
        robust::ThrowStatus(robust::StatusCode::kAborted,
                            "injected kill after MLP epoch " +
                                std::to_string(epochs_done - 1));
      case robust::FaultKind::kKill:
        std::_Exit(137);
      default:
        break;
    }
  };

  network_->Fit(inputs, targets, config_.epochs, config_.batch_size,
                train_rng, hooks);
}

double MlpClassifier::PredictProbaImpl(const std::vector<double>& row) const {
  Matrix input(1, row.size());
  input.SetRow(0, standardizer_.Transform(row));
  return network_->Predict(input)(0, 0);
}

std::vector<double> MlpClassifier::PredictProbaBatchImpl(
    const std::vector<std::vector<double>>& rows) const {
  // One [batch x d] forward pass instead of rows.size() single-row
  // passes: dense layers process rows through independent per-row
  // kernels and the elementwise layers are position-independent, so
  // row i here is bitwise identical to PredictProbaImpl(rows[i]).
  Matrix input(rows.size(), in_dim_);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    input.SetRow(i, standardizer_.Transform(rows[i]));
  }
  const Matrix probs = network_->PredictBatch(input);
  std::vector<double> out(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) out[i] = probs(i, 0);
  return out;
}

void MlpClassifier::SaveStateImpl(robust::BinaryWriter& writer) const {
  writer.WriteTag("MLP ");
  standardizer_.SaveState(writer);
  writer.WriteU64(in_dim_);
  network_->SaveState(writer);
}

void MlpClassifier::LoadStateImpl(robust::BinaryReader& reader) {
  reader.ExpectTag("MLP ");
  standardizer_.LoadState(reader);
  const std::uint64_t in_dim = reader.ReadU64();
  // Rebuild the exact layer stack FitImpl would have produced, then let
  // Network::LoadState overwrite the freshly-initialized weights.
  stats::Rng rng(config_.seed);
  BuildNetwork(in_dim, rng);
  network_->LoadState(reader);
}

}  // namespace mexi::ml
