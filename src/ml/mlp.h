#ifndef MEXI_ML_MLP_H_
#define MEXI_ML_MLP_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/classifier.h"
#include "ml/dataset.h"
#include "ml/nn/network.h"

namespace mexi::ml {

/// Multi-layer perceptron classifier built on the `Network` substrate:
/// z-scored features -> Dense+ReLU hidden layers -> sigmoid output,
/// trained with Adam on binary cross entropy. Not part of the default
/// model zoo (keeping the paper-protocol zoo fixed) but available for
/// custom zoos and as an integration exercise of the nn stack.
class MlpClassifier : public BinaryClassifier {
 public:
  struct Config {
    std::vector<std::size_t> hidden_layers{16, 8};
    int epochs = 120;
    std::size_t batch_size = 16;
    AdamOptimizer::Config adam{/*learning_rate=*/0.01};
    std::uint64_t seed = 71;
  };

  MlpClassifier();
  explicit MlpClassifier(const Config& config);

  std::unique_ptr<BinaryClassifier> Clone() const override;
  std::string Name() const override { return "MLP"; }

  /// Arms epoch-granularity crash recovery: Fit commits a checkpoint
  /// (weights, optimizer, training rng, shuffle order) every
  /// `every_epochs` epochs plus at the final epoch, and resumes from
  /// the newest valid generation on the next Fit of the same
  /// config/data. A resumed run is bitwise identical to an
  /// uninterrupted one.
  void EnableCheckpointing(const std::string& directory,
                           int every_epochs = 1);

 protected:
  void FitImpl(const Dataset& data) override;
  double PredictProbaImpl(const std::vector<double>& row) const override;
  std::vector<double> PredictProbaBatchImpl(
      const std::vector<std::vector<double>>& rows) const override;
  void SaveStateImpl(robust::BinaryWriter& writer) const override;
  void LoadStateImpl(robust::BinaryReader& reader) override;

 private:
  /// Assembles the layer stack for `in_dim` input features, consuming
  /// initialization draws from `rng` exactly as training does (so a
  /// LoadState rebuild registers the identical layer sequence).
  void BuildNetwork(std::size_t in_dim, stats::Rng& rng);

  std::uint64_t ConfigFingerprint() const;
  static std::uint64_t DataFingerprint(const Dataset& data);

  Config config_;
  Standardizer standardizer_;
  std::size_t in_dim_ = 0;  // persisted so LoadState can rebuild
  mutable std::unique_ptr<Network> network_;
  std::string checkpoint_dir_;  // empty = checkpointing disabled
  int checkpoint_every_ = 1;
};

}  // namespace mexi::ml

#endif  // MEXI_ML_MLP_H_
