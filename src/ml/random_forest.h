#ifndef MEXI_ML_RANDOM_FOREST_H_
#define MEXI_ML_RANDOM_FOREST_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/classifier.h"
#include "ml/decision_tree.h"

namespace mexi::ml {

/// Random forest: bootstrap-bagged CART trees with per-split feature
/// subsampling (default sqrt of the feature count). Probability is the
/// average of leaf positive-fractions across trees.
class RandomForest : public BinaryClassifier {
 public:
  struct Config {
    int num_trees = 60;
    /// Per-tree depth cap.
    int max_depth = 10;
    int min_samples_split = 4;
    int min_samples_leaf = 1;
    /// Features per split; 0 = floor(sqrt(num_features)).
    int max_features = 0;
    std::uint64_t seed = 41;
  };

  RandomForest() = default;
  explicit RandomForest(const Config& config) : config_(config) {}

  std::unique_ptr<BinaryClassifier> Clone() const override;
  std::string Name() const override { return "RandomForest"; }

  std::size_t NumTrees() const { return trees_.size(); }

 protected:
  void FitImpl(const Dataset& data) override;
  double PredictProbaImpl(const std::vector<double>& row) const override;
  std::vector<double> PredictProbaBatchImpl(
      const std::vector<std::vector<double>>& rows) const override;
  void SaveStateImpl(robust::BinaryWriter& writer) const override;
  void LoadStateImpl(robust::BinaryReader& reader) override;

 private:
  Config config_;
  std::vector<DecisionTree> trees_;
};

}  // namespace mexi::ml

#endif  // MEXI_ML_RANDOM_FOREST_H_
