#include "ml/regression_tree.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace mexi::ml {

void RegressionTree::Fit(const std::vector<std::vector<double>>& features,
                         const std::vector<double>& targets) {
  if (features.empty() || features.size() != targets.size()) {
    throw std::invalid_argument("RegressionTree::Fit: bad input sizes");
  }
  nodes_.clear();
  std::vector<std::size_t> all(features.size());
  std::iota(all.begin(), all.end(), 0);
  Build(features, targets, all, 0);
}

int RegressionTree::Build(const std::vector<std::vector<double>>& features,
                          const std::vector<double>& targets,
                          const std::vector<std::size_t>& indices,
                          int depth) {
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{});

  double sum = 0.0;
  for (std::size_t i : indices) sum += targets[i];
  const double mean = sum / static_cast<double>(indices.size());
  nodes_[node_id].value = mean;

  if (depth >= config_.max_depth ||
      indices.size() < static_cast<std::size_t>(config_.min_samples_split)) {
    return node_id;
  }

  // Find the split minimizing total within-side squared error, using the
  // classic identity SSE = sum(y^2) - n*mean^2 so each threshold is O(1).
  const std::size_t num_features = features[0].size();
  double best_sse = 0.0;
  for (std::size_t i : indices) {
    best_sse += (targets[i] - mean) * (targets[i] - mean);
  }
  int best_feature = -1;
  double best_threshold = 0.0;

  std::vector<std::pair<double, double>> column(indices.size());
  for (std::size_t f = 0; f < num_features; ++f) {
    for (std::size_t i = 0; i < indices.size(); ++i) {
      column[i] = {features[indices[i]][f], targets[indices[i]]};
    }
    std::sort(column.begin(), column.end());

    double total_sum = 0.0, total_sq = 0.0;
    for (const auto& [value, y] : column) {
      total_sum += y;
      total_sq += y * y;
    }
    double left_sum = 0.0, left_sq = 0.0;
    for (std::size_t i = 0; i + 1 < column.size(); ++i) {
      left_sum += column[i].second;
      left_sq += column[i].second * column[i].second;
      if (column[i].first == column[i + 1].first) continue;
      const double left_n = static_cast<double>(i + 1);
      const double right_n = static_cast<double>(column.size()) - left_n;
      if (left_n < config_.min_samples_leaf ||
          right_n < config_.min_samples_leaf) {
        continue;
      }
      const double right_sum = total_sum - left_sum;
      const double right_sq = total_sq - left_sq;
      const double sse = (left_sq - left_sum * left_sum / left_n) +
                         (right_sq - right_sum * right_sum / right_n);
      if (sse + 1e-12 < best_sse) {
        best_sse = sse;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5 * (column[i].first + column[i + 1].first);
      }
    }
  }

  if (best_feature < 0) return node_id;

  std::vector<std::size_t> left_idx, right_idx;
  for (std::size_t i : indices) {
    if (features[i][static_cast<std::size_t>(best_feature)] <=
        best_threshold) {
      left_idx.push_back(i);
    } else {
      right_idx.push_back(i);
    }
  }
  if (left_idx.empty() || right_idx.empty()) return node_id;

  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best_threshold;
  const int left = Build(features, targets, left_idx, depth + 1);
  nodes_[node_id].left = left;
  const int right = Build(features, targets, right_idx, depth + 1);
  nodes_[node_id].right = right;
  return node_id;
}

double RegressionTree::Predict(const std::vector<double>& row) const {
  if (nodes_.empty()) {
    throw std::logic_error("RegressionTree::Predict before Fit");
  }
  int node = 0;
  while (nodes_[static_cast<std::size_t>(node)].feature >= 0) {
    const Node& n = nodes_[static_cast<std::size_t>(node)];
    node = row[static_cast<std::size_t>(n.feature)] <= n.threshold ? n.left
                                                                   : n.right;
  }
  return nodes_[static_cast<std::size_t>(node)].value;
}

void RegressionTree::SaveState(robust::BinaryWriter& writer) const {
  writer.WriteTag("RTRE");
  writer.WriteU64(nodes_.size());
  for (const Node& node : nodes_) {
    writer.WriteI64(node.feature);
    writer.WriteDouble(node.threshold);
    writer.WriteI64(node.left);
    writer.WriteI64(node.right);
    writer.WriteDouble(node.value);
  }
}

void RegressionTree::LoadState(robust::BinaryReader& reader) {
  reader.ExpectTag("RTRE");
  const std::uint64_t count = reader.ReadU64();
  nodes_.clear();
  for (std::uint64_t i = 0; i < count; ++i) {
    Node node;
    node.feature = static_cast<int>(reader.ReadI64());
    node.threshold = reader.ReadDouble();
    node.left = static_cast<int>(reader.ReadI64());
    node.right = static_cast<int>(reader.ReadI64());
    node.value = reader.ReadDouble();
    nodes_.push_back(node);
  }
}

}  // namespace mexi::ml
