#ifndef MEXI_ML_REGRESSION_H_
#define MEXI_ML_REGRESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/dataset.h"
#include "ml/regression_tree.h"
#include "stats/rng.h"

namespace mexi::ml {

/// Abstract real-valued regressor, the regression counterpart of
/// `BinaryClassifier`. Used by the expertise-*level* estimation variant
/// of Problem 1 (the paper: "it can be easily repositioned as a
/// regression problem, estimating expertise level").
class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Trains on rows/targets; throws std::invalid_argument on empty or
  /// mismatched input.
  void Fit(const std::vector<std::vector<double>>& rows,
           const std::vector<double>& targets);

  /// Predicted value for one row; requires Fit().
  double Predict(const std::vector<double>& row) const;

  std::vector<double> PredictAll(
      const std::vector<std::vector<double>>& rows) const;

  virtual std::unique_ptr<Regressor> Clone() const = 0;
  virtual std::string Name() const = 0;

  bool fitted() const { return fitted_; }

 protected:
  virtual void FitImpl(const std::vector<std::vector<double>>& rows,
                       const std::vector<double>& targets) = 0;
  virtual double PredictImpl(const std::vector<double>& row) const = 0;

 private:
  bool fitted_ = false;
};

/// Ridge regression solved in closed form (normal equations with a
/// Cholesky-free Gaussian elimination; features are z-scored first).
class RidgeRegression : public Regressor {
 public:
  struct Config {
    double lambda = 1.0;
  };
  RidgeRegression() = default;
  explicit RidgeRegression(const Config& config) : config_(config) {}

  std::unique_ptr<Regressor> Clone() const override;
  std::string Name() const override { return "RidgeRegression"; }

  const std::vector<double>& weights() const { return weights_; }
  double intercept() const { return intercept_; }

 protected:
  void FitImpl(const std::vector<std::vector<double>>& rows,
               const std::vector<double>& targets) override;
  double PredictImpl(const std::vector<double>& row) const override;

 private:
  Config config_;
  Standardizer standardizer_;
  std::vector<double> weights_;
  double intercept_ = 0.0;
};

/// Bagged regression forest over `RegressionTree`s with per-tree
/// bootstrap samples.
class RandomForestRegressor : public Regressor {
 public:
  struct Config {
    int num_trees = 40;
    RegressionTree::Config tree{/*max_depth=*/6, /*min_samples_split=*/4,
                                /*min_samples_leaf=*/2};
    std::uint64_t seed = 53;
  };
  RandomForestRegressor() = default;
  explicit RandomForestRegressor(const Config& config) : config_(config) {}

  std::unique_ptr<Regressor> Clone() const override;
  std::string Name() const override { return "RandomForestRegressor"; }

 protected:
  void FitImpl(const std::vector<std::vector<double>>& rows,
               const std::vector<double>& targets) override;
  double PredictImpl(const std::vector<double>& row) const override;

 private:
  Config config_;
  std::vector<RegressionTree> trees_;
};

/// Inverse-distance-weighted k-NN regression over z-scored features.
class KnnRegressor : public Regressor {
 public:
  struct Config {
    int k = 7;
  };
  KnnRegressor() = default;
  explicit KnnRegressor(const Config& config) : config_(config) {}

  std::unique_ptr<Regressor> Clone() const override;
  std::string Name() const override { return "KnnRegressor"; }

 protected:
  void FitImpl(const std::vector<std::vector<double>>& rows,
               const std::vector<double>& targets) override;
  double PredictImpl(const std::vector<double>& row) const override;

 private:
  Config config_;
  Standardizer standardizer_;
  std::vector<std::vector<double>> train_rows_;
  std::vector<double> train_targets_;
};

/// Regression metrics.
double MeanAbsoluteError(const std::vector<double>& truth,
                         const std::vector<double>& predicted);
double RootMeanSquaredError(const std::vector<double>& truth,
                            const std::vector<double>& predicted);

}  // namespace mexi::ml

#endif  // MEXI_ML_REGRESSION_H_
