#ifndef MEXI_ML_VMATH_VMATH_H_
#define MEXI_ML_VMATH_VMATH_H_

#include <cmath>
#include <cstddef>

namespace mexi::ml::vmath {

/// Batched transcendental substrate with two explicit numeric contracts
/// (see DESIGN.md "Numeric contracts & fast math"):
///
///  1. **Exact mode** (`VExp`/`VTanh`/`VSigmoid`, the default): scalar
///     libm per lane, batched over a contiguous span. Results are
///     bitwise identical to the plain `for (...) y[j] = std::exp(x[j])`
///     loops these calls replaced — batching changes call overhead and
///     locality, never a bit of output. Every transcendental call site
///     in the ML substrate routes through these entry points so there is
///     exactly one audited place where the contract can change.
///
///  2. **Fast mode** (`VExpFast`/`VTanhFast`/`VSigmoidFast`): SIMD
///     rational/polynomial approximations (Cephes-style kernels) with a
///     property-tested ULP bound (`kExpFastMaxUlp` etc., enforced by
///     tests/test_vmath.cc over a full bit-pattern sweep of the
///     exploitable ranges). Legal **only on Predict/inference paths**.
///     Fit paths are protected structurally: every trainer installs a
///     `TrainingScope`, which makes `FastMathActive()` false for the
///     whole Fit call tree on that thread — including inference that
///     runs *inside* training (OOF feature extraction, CV model
///     selection), so `MEXI_FAST_MATH=1` during Fit produces
///     bitwise-identical models.
///
/// All span functions allow exact in-place use (`x == y`); partial
/// overlap is undefined. Fast-mode scalar helpers (`ExpFast`/...) are
/// bitwise identical per element to their vector bodies (both are
/// compiled without FP contraction — see the root CMakeLists flags), so
/// results do not depend on span length or element position.

/// Documented + property-tested worst-case error of the fast kernels
/// against libm, in units-in-the-last-place, over the exploitable
/// ranges below. Outside those ranges inputs clamp/saturate (exp) or
/// the function is constant to the last bit anyway (tanh, sigmoid).
inline constexpr int kExpFastMaxUlp = 4;      // |x| <= 708
inline constexpr int kTanhFastMaxUlp = 8;     // |x| <= 19.0625, ±1 beyond
inline constexpr int kSigmoidFastMaxUlp = 8;  // |x| <= 708, 0/1 beyond

/// Whether fast mode was requested (env MEXI_FAST_MATH / --fast-math /
/// SetFastMath). Request alone does not make it active — see
/// FastMathActive().
bool FastMathEnabled();

/// Programmatic override of the MEXI_FAST_MATH environment flag.
void SetFastMath(bool on);

/// True iff fast mode was requested AND no TrainingScope is live on the
/// calling thread. This is the only gate inference call sites consult.
bool FastMathActive();

/// RAII guard every Fit entry point installs: while at least one scope
/// is alive on a thread, FastMathActive() is false there regardless of
/// the global flag. Nestable (depth-counted, thread-local), so a Fit
/// that trains sub-models or runs out-of-fold inference stays exact end
/// to end.
class TrainingScope {
 public:
  TrainingScope();
  ~TrainingScope();
  TrainingScope(const TrainingScope&) = delete;
  TrainingScope& operator=(const TrainingScope&) = delete;
};

// ---------------------------------------------------------------------
// Exact mode: bitwise identical to the scalar libm loops, always legal.
// ---------------------------------------------------------------------

/// y[j] = exp(x[j]).
void VExp(const double* x, double* y, std::size_t n);

/// y[j] = tanh(x[j]).
void VTanh(const double* x, double* y, std::size_t n);

/// y[j] = 1 / (1 + exp(-x[j])).
void VSigmoid(const double* x, double* y, std::size_t n);

/// Scalar exact forms, for call sites that consume one value at a time.
/// These ARE the legacy expressions, centralized.
inline double Exp(double x) { return std::exp(x); }
inline double Tanh(double x) { return std::tanh(x); }
inline double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

// ---------------------------------------------------------------------
// Fast mode: ULP-bounded approximations, inference paths only.
// ---------------------------------------------------------------------

/// y[j] ~= exp(x[j]) within kExpFastMaxUlp for |x| <= 708; inputs clamp
/// to ±708 beyond (so no overflow to inf and no subnormal output).
void VExpFast(const double* x, double* y, std::size_t n);

/// y[j] ~= tanh(x[j]) within kTanhFastMaxUlp; exactly ±1 for
/// |x| >= 19.0625 (where libm tanh is ±1 to the last bit too).
void VTanhFast(const double* x, double* y, std::size_t n);

/// y[j] ~= sigmoid(x[j]) within kSigmoidFastMaxUlp for |x| <= 708;
/// saturates smoothly beyond. Exactly 0.5 at x == 0.
void VSigmoidFast(const double* x, double* y, std::size_t n);

/// Scalar fast forms — bitwise identical per element to the vector
/// bodies above. NaN propagates; ±inf saturates like the clamps.
double ExpFast(double x);
double TanhFast(double x);
double SigmoidFast(double x);

// ---------------------------------------------------------------------
// Dispatching helpers for inference call sites: fast when active,
// exact otherwise. Never use these on a training path — route those
// through the exact forms directly (belt and braces on top of
// TrainingScope).
// ---------------------------------------------------------------------

inline double ExpInfer(double x) {
  return FastMathActive() ? ExpFast(x) : Exp(x);
}
inline double SigmoidInfer(double x) {
  return FastMathActive() ? SigmoidFast(x) : Sigmoid(x);
}
inline double TanhInfer(double x) {
  return FastMathActive() ? TanhFast(x) : Tanh(x);
}

}  // namespace mexi::ml::vmath

#endif  // MEXI_ML_VMATH_VMATH_H_
