#include "ml/vmath/vmath.h"

#include <atomic>
#include <bit>
#include <cstdint>
#include <cstdlib>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace mexi::ml::vmath {

// ---------------------------------------------------------------------
// Mode control.
// ---------------------------------------------------------------------

namespace {

// -1 = environment not read yet; 0/1 = resolved. Relaxed ordering is
// enough: the flag is a pure configuration bit, never a synchronization
// point, and double-reading the env var is idempotent.
std::atomic<int> g_fast_mode{-1};

thread_local int g_training_depth = 0;

int ReadFastMathEnv() {
  const char* value = std::getenv("MEXI_FAST_MATH");
  if (value == nullptr || value[0] == '\0') return 0;
  return (value[0] == '0' && value[1] == '\0') ? 0 : 1;
}

}  // namespace

bool FastMathEnabled() {
  int mode = g_fast_mode.load(std::memory_order_relaxed);
  if (mode < 0) {
    mode = ReadFastMathEnv();
    g_fast_mode.store(mode, std::memory_order_relaxed);
  }
  return mode != 0;
}

void SetFastMath(bool on) {
  g_fast_mode.store(on ? 1 : 0, std::memory_order_relaxed);
}

bool FastMathActive() { return g_training_depth == 0 && FastMathEnabled(); }

TrainingScope::TrainingScope() { ++g_training_depth; }
TrainingScope::~TrainingScope() { --g_training_depth; }

// ---------------------------------------------------------------------
// Exact mode.
// ---------------------------------------------------------------------

void VExp(const double* x, double* y, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) y[j] = std::exp(x[j]);
}

void VTanh(const double* x, double* y, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) y[j] = std::tanh(x[j]);
}

void VSigmoid(const double* x, double* y, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) y[j] = 1.0 / (1.0 + std::exp(-x[j]));
}

// ---------------------------------------------------------------------
// Fast mode: Cephes-style rational kernels.
//
// exp(x): reduce x = k*ln2 + r with k = rint(x*log2(e)) via the
// round-to-nearest "magic shift" (adding 1.5*2^52 puts the integer in
// the low mantissa bits — no float->int conversion instruction, so no
// UB on junk lanes), then exp(r) = 1 + 2rP(r^2)/(Q(r^2) - rP(r^2)) and
// a 2^k exponent splice. tanh(x): odd rational x + x^3 P(x^2)/Q(x^2)
// for |x| < 0.625, else 1 - 2/(exp(2|x|)+1) signed — the crossover is
// above the region where that subtraction could cancel catastrophically.
// sigmoid(x) = 1/(1 + exp(-x)) over the fast exp (no cancellation
// anywhere: both summands are positive).
//
// The scalar helpers below and the AVX2 bodies perform the SAME
// operations in the SAME order; with contraction off (-mno-fma,
// -ffp-contract=off) every lane therefore produces the same bits either
// way, which keeps results independent of span length/alignment and
// makes the vector tail handling trivially consistent.
// ---------------------------------------------------------------------

namespace {

constexpr double kLog2E = 1.4426950408889634073599;  // log2(e)
// Extended-precision ln(2) split: k*kC1 + k*kC2 == k*ln2 to ~90 bits.
constexpr double kC1 = 6.93145751953125e-1;
constexpr double kC2 = 1.42860682030941723212e-6;
constexpr double kShift = 6755399441055744.0;  // 1.5 * 2^52
constexpr double kExpLo = -708.0;
constexpr double kExpHi = 708.0;

// Cephes exp() rational coefficients (Moshier), ~1 ulp on [-ln2/2, ln2/2].
constexpr double kExpP0 = 1.26177193074810590878e-4;
constexpr double kExpP1 = 3.02994407707441961300e-2;
constexpr double kExpP2 = 9.99999999999999999910e-1;
constexpr double kExpQ0 = 3.00198505138664455042e-6;
constexpr double kExpQ1 = 2.52448340349684104192e-3;
constexpr double kExpQ2 = 2.27265548208155028766e-1;
constexpr double kExpQ3 = 2.00000000000000000005e0;

// Cephes tanh() rational coefficients; Q is monic.
constexpr double kTanhP0 = -9.64399179425052238628e-1;
constexpr double kTanhP1 = -9.92877231001918586564e1;
constexpr double kTanhP2 = -1.61468768441708447952e3;
constexpr double kTanhQ0 = 1.12811678491632931402e2;
constexpr double kTanhQ1 = 2.23548839060100448583e3;
constexpr double kTanhQ2 = 4.84406305325125486048e3;
constexpr double kTanhSmall = 0.625;
// tanh(x) rounds to ±1.0 in double for |x| >= this (1-tanh < 2^-54).
constexpr double kTanhSat = 19.0625;

// exp on a pre-clamped finite argument.
inline double ExpFastCore(double x) {
  const double t = x * kLog2E + kShift;
  const double k = t - kShift;
  const std::int64_t ki =
      std::bit_cast<std::int64_t>(t) - std::bit_cast<std::int64_t>(kShift);
  double r = x - k * kC1;
  r -= k * kC2;
  const double z = r * r;
  const double p = r * ((kExpP0 * z + kExpP1) * z + kExpP2);
  const double q = ((kExpQ0 * z + kExpQ1) * z + kExpQ2) * z + kExpQ3;
  const double e = 1.0 + 2.0 * (p / (q - p));
  const double scale = std::bit_cast<double>((ki + 1023) << 52);
  return e * scale;
}

#if defined(__AVX2__)

inline __m256d ExpFastVec(__m256d x) {
  const __m256d nan_mask = _mm256_cmp_pd(x, x, _CMP_UNORD_Q);
  // max/min return the second operand on NaN, so junk lanes are clamped
  // to a finite value here and restored to NaN by the final blend.
  __m256d xc = _mm256_max_pd(x, _mm256_set1_pd(kExpLo));
  xc = _mm256_min_pd(xc, _mm256_set1_pd(kExpHi));
  const __m256d shift = _mm256_set1_pd(kShift);
  const __m256d t =
      _mm256_add_pd(_mm256_mul_pd(xc, _mm256_set1_pd(kLog2E)), shift);
  const __m256d k = _mm256_sub_pd(t, shift);
  const __m256i ki =
      _mm256_sub_epi64(_mm256_castpd_si256(t), _mm256_castpd_si256(shift));
  __m256d r = _mm256_sub_pd(xc, _mm256_mul_pd(k, _mm256_set1_pd(kC1)));
  r = _mm256_sub_pd(r, _mm256_mul_pd(k, _mm256_set1_pd(kC2)));
  const __m256d z = _mm256_mul_pd(r, r);
  __m256d p =
      _mm256_add_pd(_mm256_mul_pd(_mm256_set1_pd(kExpP0), z),
                    _mm256_set1_pd(kExpP1));
  p = _mm256_add_pd(_mm256_mul_pd(p, z), _mm256_set1_pd(kExpP2));
  p = _mm256_mul_pd(r, p);
  __m256d q =
      _mm256_add_pd(_mm256_mul_pd(_mm256_set1_pd(kExpQ0), z),
                    _mm256_set1_pd(kExpQ1));
  q = _mm256_add_pd(_mm256_mul_pd(q, z), _mm256_set1_pd(kExpQ2));
  q = _mm256_add_pd(_mm256_mul_pd(q, z), _mm256_set1_pd(kExpQ3));
  const __m256d e = _mm256_add_pd(
      _mm256_set1_pd(1.0),
      _mm256_mul_pd(_mm256_set1_pd(2.0),
                    _mm256_div_pd(p, _mm256_sub_pd(q, p))));
  const __m256i scale_bits = _mm256_slli_epi64(
      _mm256_add_epi64(ki, _mm256_set1_epi64x(1023)), 52);
  const __m256d result = _mm256_mul_pd(e, _mm256_castsi256_pd(scale_bits));
  return _mm256_blendv_pd(result, x, nan_mask);
}

inline __m256d TanhFastVec(__m256d x) {
  const __m256d sign_bit = _mm256_set1_pd(-0.0);
  const __m256d sign = _mm256_and_pd(x, sign_bit);
  const __m256d ax = _mm256_andnot_pd(sign_bit, x);
  const __m256d small_mask =
      _mm256_cmp_pd(ax, _mm256_set1_pd(kTanhSmall), _CMP_LT_OQ);
  const __m256d s = _mm256_mul_pd(x, x);
  __m256d p =
      _mm256_add_pd(_mm256_mul_pd(_mm256_set1_pd(kTanhP0), s),
                    _mm256_set1_pd(kTanhP1));
  p = _mm256_add_pd(_mm256_mul_pd(p, s), _mm256_set1_pd(kTanhP2));
  __m256d q = _mm256_add_pd(s, _mm256_set1_pd(kTanhQ0));
  q = _mm256_add_pd(_mm256_mul_pd(q, s), _mm256_set1_pd(kTanhQ1));
  q = _mm256_add_pd(_mm256_mul_pd(q, s), _mm256_set1_pd(kTanhQ2));
  const __m256d r_small = _mm256_add_pd(
      x, _mm256_mul_pd(_mm256_mul_pd(x, s), _mm256_div_pd(p, q)));
  // LSTM gate pre-activations cluster near zero, so the all-small block
  // is the common case; NaN and saturated lanes are never "small"
  // (ordered compare), so the early return is safe.
  if (_mm256_movemask_pd(small_mask) == 0xF) return r_small;
  const __m256d nan_mask = _mm256_cmp_pd(x, x, _CMP_UNORD_Q);
  const __m256d sat_mask =
      _mm256_cmp_pd(ax, _mm256_set1_pd(kTanhSat), _CMP_GE_OQ);
  const __m256d e = ExpFastVec(_mm256_mul_pd(_mm256_set1_pd(2.0), ax));
  __m256d big = _mm256_sub_pd(
      _mm256_set1_pd(1.0),
      _mm256_div_pd(_mm256_set1_pd(2.0),
                    _mm256_add_pd(e, _mm256_set1_pd(1.0))));
  big = _mm256_or_pd(big, sign);
  __m256d r = _mm256_blendv_pd(big, r_small, small_mask);
  r = _mm256_blendv_pd(r, _mm256_or_pd(_mm256_set1_pd(1.0), sign), sat_mask);
  return _mm256_blendv_pd(r, x, nan_mask);
}

inline __m256d SigmoidFastVec(__m256d x) {
  const __m256d e = ExpFastVec(_mm256_xor_pd(x, _mm256_set1_pd(-0.0)));
  return _mm256_div_pd(_mm256_set1_pd(1.0),
                       _mm256_add_pd(_mm256_set1_pd(1.0), e));
}

#endif  // __AVX2__

}  // namespace

double ExpFast(double x) {
  if (std::isnan(x)) return x;
  double xc = x < kExpLo ? kExpLo : x;
  xc = xc > kExpHi ? kExpHi : xc;
  return ExpFastCore(xc);
}

double TanhFast(double x) {
  if (std::isnan(x)) return x;
  const double ax = std::fabs(x);
  if (ax < kTanhSmall) {
    const double s = x * x;
    const double p = (kTanhP0 * s + kTanhP1) * s + kTanhP2;
    const double q = ((s + kTanhQ0) * s + kTanhQ1) * s + kTanhQ2;
    return x + x * s * (p / q);
  }
  if (ax >= kTanhSat) return x < 0.0 ? -1.0 : 1.0;
  const double e = ExpFast(2.0 * ax);
  const double z = 1.0 - 2.0 / (e + 1.0);
  return x < 0.0 ? -z : z;
}

double SigmoidFast(double x) { return 1.0 / (1.0 + ExpFast(-x)); }

void VExpFast(const double* x, double* y, std::size_t n) {
  std::size_t j = 0;
#if defined(__AVX2__)
  for (; j + 4 <= n; j += 4) {
    _mm256_storeu_pd(y + j, ExpFastVec(_mm256_loadu_pd(x + j)));
  }
#endif
  for (; j < n; ++j) y[j] = ExpFast(x[j]);
}

void VTanhFast(const double* x, double* y, std::size_t n) {
  std::size_t j = 0;
#if defined(__AVX2__)
  for (; j + 4 <= n; j += 4) {
    _mm256_storeu_pd(y + j, TanhFastVec(_mm256_loadu_pd(x + j)));
  }
#endif
  for (; j < n; ++j) y[j] = TanhFast(x[j]);
}

void VSigmoidFast(const double* x, double* y, std::size_t n) {
  std::size_t j = 0;
#if defined(__AVX2__)
  for (; j + 4 <= n; j += 4) {
    _mm256_storeu_pd(y + j, SigmoidFastVec(_mm256_loadu_pd(x + j)));
  }
#endif
  for (; j < n; ++j) y[j] = SigmoidFast(x[j]);
}

}  // namespace mexi::ml::vmath
