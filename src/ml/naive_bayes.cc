#include "ml/naive_bayes.h"

#include <algorithm>
#include <cmath>

#include "ml/vmath/vmath.h"

namespace mexi::ml {

std::unique_ptr<BinaryClassifier> GaussianNaiveBayes::Clone() const {
  return std::make_unique<GaussianNaiveBayes>(config_);
}

void GaussianNaiveBayes::FitImpl(const Dataset& data) {
  const std::size_t d = data.NumFeatures();
  std::size_t count[2] = {0, 0};
  for (int c = 0; c < 2; ++c) {
    mean_[c].assign(d, 0.0);
    var_[c].assign(d, 0.0);
  }
  for (std::size_t i = 0; i < data.NumExamples(); ++i) {
    const int c = data.labels[i];
    ++count[c];
    for (std::size_t j = 0; j < d; ++j) mean_[c][j] += data.features[i][j];
  }
  for (int c = 0; c < 2; ++c) {
    for (auto& m : mean_[c]) m /= static_cast<double>(count[c]);
  }
  double max_var = 0.0;
  for (std::size_t i = 0; i < data.NumExamples(); ++i) {
    const int c = data.labels[i];
    for (std::size_t j = 0; j < d; ++j) {
      const double delta = data.features[i][j] - mean_[c][j];
      var_[c][j] += delta * delta;
    }
  }
  for (int c = 0; c < 2; ++c) {
    for (auto& v : var_[c]) {
      v /= static_cast<double>(count[c]);
      max_var = std::max(max_var, v);
    }
  }
  const double smoothing =
      config_.var_smoothing * std::max(max_var, 1.0) + 1e-12;
  for (int c = 0; c < 2; ++c) {
    for (auto& v : var_[c]) v += smoothing;
  }
  const double total = static_cast<double>(count[0] + count[1]);
  log_prior_[0] = std::log(static_cast<double>(count[0]) / total);
  log_prior_[1] = std::log(static_cast<double>(count[1]) / total);
}

void GaussianNaiveBayes::SaveStateImpl(robust::BinaryWriter& writer) const {
  writer.WriteTag("GNBS");
  writer.WriteDouble(config_.var_smoothing);
  for (int c = 0; c < 2; ++c) {
    writer.WriteDouble(log_prior_[c]);
    writer.WriteDoubleVector(mean_[c]);
    writer.WriteDoubleVector(var_[c]);
  }
}

void GaussianNaiveBayes::LoadStateImpl(robust::BinaryReader& reader) {
  reader.ExpectTag("GNBS");
  config_.var_smoothing = reader.ReadDouble();
  for (int c = 0; c < 2; ++c) {
    log_prior_[c] = reader.ReadDouble();
    mean_[c] = reader.ReadDoubleVector();
    var_[c] = reader.ReadDoubleVector();
  }
}

double GaussianNaiveBayes::PredictProbaImpl(
    const std::vector<double>& row) const {
  double log_like[2];
  for (int c = 0; c < 2; ++c) {
    double acc = log_prior_[c];
    for (std::size_t j = 0; j < row.size(); ++j) {
      const double delta = row[j] - mean_[c][j];
      acc += -0.5 * std::log(2.0 * M_PI * var_[c][j]) -
             delta * delta / (2.0 * var_[c][j]);
    }
    log_like[c] = acc;
  }
  // Normalize in log space to dodge under/overflow.
  const double m = std::max(log_like[0], log_like[1]);
  const double p0 = vmath::ExpInfer(log_like[0] - m);
  const double p1 = vmath::ExpInfer(log_like[1] - m);
  return p1 / (p0 + p1);
}

}  // namespace mexi::ml
