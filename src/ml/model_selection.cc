#include "ml/model_selection.h"

#include <algorithm>
#include <stdexcept>

#include "ml/decision_tree.h"
#include "ml/gradient_boosting.h"
#include "ml/knn.h"
#include "ml/linear_svm.h"
#include "ml/logistic_regression.h"
#include "ml/metrics.h"
#include "ml/naive_bayes.h"
#include "ml/random_forest.h"

namespace mexi::ml {

namespace {

/// Shared CV loop: collects out-of-fold predictions and truths.
void CollectOutOfFold(const BinaryClassifier& prototype,
                      const Dataset& data, std::size_t folds,
                      stats::Rng& rng, std::vector<int>* truths,
                      std::vector<int>* predictions) {
  if (data.NumExamples() < 2) {
    throw std::invalid_argument("CrossValidatedAccuracy: need >= 2 rows");
  }
  folds = std::min(folds, data.NumExamples());
  folds = std::max<std::size_t>(folds, 2);
  KFold kfold(data.NumExamples(), folds, rng);
  for (std::size_t f = 0; f < kfold.num_folds(); ++f) {
    const Dataset train = data.Subset(kfold.TrainIndices(f));
    const Dataset test = data.Subset(kfold.TestIndices(f));
    auto model = prototype.Clone();
    model->Fit(train);
    for (std::size_t i = 0; i < test.NumExamples(); ++i) {
      truths->push_back(test.labels[i]);
      predictions->push_back(model->Predict(test.features[i]));
    }
  }
}

double BalancedAccuracy(const std::vector<int>& truths,
                        const std::vector<int>& predictions) {
  double tp = 0, tn = 0, pos = 0, neg = 0;
  for (std::size_t i = 0; i < truths.size(); ++i) {
    if (truths[i] == 1) {
      ++pos;
      tp += predictions[i] == 1;
    } else {
      ++neg;
      tn += predictions[i] == 0;
    }
  }
  const double tpr = pos > 0 ? tp / pos : 1.0;
  const double tnr = neg > 0 ? tn / neg : 1.0;
  return 0.5 * (tpr + tnr);
}

}  // namespace

double CrossValidatedAccuracy(const BinaryClassifier& prototype,
                              const Dataset& data, std::size_t folds,
                              stats::Rng& rng) {
  std::vector<int> truths, predictions;
  CollectOutOfFold(prototype, data, folds, rng, &truths, &predictions);
  return Accuracy(truths, predictions);
}

double CrossValidatedBalancedAccuracy(const BinaryClassifier& prototype,
                                      const Dataset& data,
                                      std::size_t folds, stats::Rng& rng) {
  std::vector<int> truths, predictions;
  CollectOutOfFold(prototype, data, folds, rng, &truths, &predictions);
  return BalancedAccuracy(truths, predictions);
}

std::vector<std::unique_ptr<BinaryClassifier>> DefaultModelZoo() {
  std::vector<std::unique_ptr<BinaryClassifier>> zoo;
  zoo.push_back(std::make_unique<LogisticRegression>());
  zoo.push_back(std::make_unique<LinearSvm>());
  zoo.push_back(std::make_unique<DecisionTree>());
  zoo.push_back(std::make_unique<RandomForest>());
  zoo.push_back(std::make_unique<GradientBoosting>());
  zoo.push_back(std::make_unique<KnnClassifier>());
  zoo.push_back(std::make_unique<GaussianNaiveBayes>());
  return zoo;
}

std::unique_ptr<BinaryClassifier> SelectAndTrain(
    const std::vector<std::unique_ptr<BinaryClassifier>>& zoo,
    const Dataset& data, std::size_t folds, stats::Rng& rng,
    SelectionReport* report, bool balanced) {
  if (zoo.empty()) {
    throw std::invalid_argument("SelectAndTrain: empty model zoo");
  }
  double best_score = -1.0;
  const BinaryClassifier* best = nullptr;
  SelectionReport local;
  for (const auto& prototype : zoo) {
    const double score =
        balanced ? CrossValidatedBalancedAccuracy(*prototype, data, folds,
                                                  rng)
                 : CrossValidatedAccuracy(*prototype, data, folds, rng);
    local.cv_scores.emplace_back(prototype->Name(), score);
    if (score > best_score) {
      best_score = score;
      best = prototype.get();
    }
  }
  local.selected_name = best->Name();
  if (report != nullptr) *report = local;

  auto model = best->Clone();
  model->Fit(data);
  return model;
}

double TuneDecisionThreshold(const BinaryClassifier& prototype,
                             const Dataset& data, std::size_t folds,
                             stats::Rng& rng) {
  if (data.NumExamples() < 2) return 0.5;
  folds = std::max<std::size_t>(2, std::min(folds, data.NumExamples()));
  KFold kfold(data.NumExamples(), folds, rng);
  std::vector<int> truths;
  std::vector<double> probabilities;
  for (std::size_t f = 0; f < kfold.num_folds(); ++f) {
    const Dataset train = data.Subset(kfold.TrainIndices(f));
    const Dataset test = data.Subset(kfold.TestIndices(f));
    auto model = prototype.Clone();
    model->Fit(train);
    for (std::size_t i = 0; i < test.NumExamples(); ++i) {
      truths.push_back(test.labels[i]);
      probabilities.push_back(model->PredictProba(test.features[i]));
    }
  }
  double best_threshold = 0.5;
  double best_score = -1.0;
  for (double threshold = 0.15; threshold <= 0.851; threshold += 0.05) {
    std::vector<int> predictions;
    predictions.reserve(probabilities.size());
    for (double p : probabilities) predictions.push_back(p >= threshold);
    const double score = BalancedAccuracy(truths, predictions);
    if (score > best_score) {
      best_score = score;
      best_threshold = threshold;
    }
  }
  return best_threshold;
}

}  // namespace mexi::ml
