#ifndef MEXI_ML_GRADIENT_BOOSTING_H_
#define MEXI_ML_GRADIENT_BOOSTING_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/classifier.h"
#include "ml/regression_tree.h"

namespace mexi::ml {

/// Gradient-boosted trees for binary classification (logistic loss).
/// Each round fits a shallow regression tree to the negative gradient
/// (residual y - p) and adds it to the log-odds ensemble with shrinkage.
class GradientBoosting : public BinaryClassifier {
 public:
  struct Config {
    int num_rounds = 80;
    double learning_rate = 0.15;
    RegressionTree::Config tree;
  };

  GradientBoosting() = default;
  explicit GradientBoosting(const Config& config) : config_(config) {}

  std::unique_ptr<BinaryClassifier> Clone() const override;
  std::string Name() const override { return "GradientBoosting"; }

  std::size_t NumRounds() const { return trees_.size(); }

 protected:
  void FitImpl(const Dataset& data) override;
  double PredictProbaImpl(const std::vector<double>& row) const override;
  void SaveStateImpl(robust::BinaryWriter& writer) const override;
  void LoadStateImpl(robust::BinaryReader& reader) override;

 private:
  double RawScore(const std::vector<double>& row) const;

  Config config_;
  double base_score_ = 0.0;  // initial log-odds
  std::vector<RegressionTree> trees_;
};

}  // namespace mexi::ml

#endif  // MEXI_ML_GRADIENT_BOOSTING_H_
