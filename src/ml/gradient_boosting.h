#ifndef MEXI_ML_GRADIENT_BOOSTING_H_
#define MEXI_ML_GRADIENT_BOOSTING_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/classifier.h"
#include "ml/regression_tree.h"

namespace mexi::ml {

/// Gradient-boosted trees for binary classification (logistic loss).
/// Each round fits a shallow regression tree to the negative gradient
/// (residual y - p) and adds it to the log-odds ensemble with shrinkage.
class GradientBoosting : public BinaryClassifier {
 public:
  struct Config {
    int num_rounds = 80;
    double learning_rate = 0.15;
    RegressionTree::Config tree;
  };

  GradientBoosting() = default;
  explicit GradientBoosting(const Config& config) : config_(config) {}

  std::unique_ptr<BinaryClassifier> Clone() const override;
  std::string Name() const override { return "GradientBoosting"; }

  std::size_t NumRounds() const { return trees_.size(); }

  /// Arms round-granularity crash recovery: Fit commits a checkpoint
  /// (base score + ensemble so far) every `every_rounds` boosting rounds
  /// plus at the final round, and resumes from the newest valid
  /// generation on the next Fit of the same config/data. Resuming
  /// replays the committed trees' raw-score updates in round order, so
  /// the finished ensemble is bitwise identical to an uninterrupted fit.
  void EnableCheckpointing(const std::string& directory,
                           int every_rounds = 1);

 protected:
  void FitImpl(const Dataset& data) override;
  double PredictProbaImpl(const std::vector<double>& row) const override;
  std::vector<double> PredictProbaBatchImpl(
      const std::vector<std::vector<double>>& rows) const override;
  void SaveStateImpl(robust::BinaryWriter& writer) const override;
  void LoadStateImpl(robust::BinaryReader& reader) override;

 private:
  double RawScore(const std::vector<double>& row) const;

  std::uint64_t ConfigFingerprint() const;
  static std::uint64_t DataFingerprint(const Dataset& data);

  Config config_;
  double base_score_ = 0.0;  // initial log-odds
  std::vector<RegressionTree> trees_;
  std::string checkpoint_dir_;  // empty = checkpointing disabled
  int checkpoint_every_ = 1;
};

}  // namespace mexi::ml

#endif  // MEXI_ML_GRADIENT_BOOSTING_H_
