#include "ml/nn/lstm.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "ml/kernels.h"
#include "ml/nn/network.h"

namespace mexi::ml {

LstmSequenceModel::LstmSequenceModel(const Config& config)
    : config_(config), rng_(config.seed) {
  const std::size_t h4 = 4 * config_.hidden_dim;
  wx_ = Matrix::GlorotUniform(config_.input_dim, h4, rng_);
  wh_ = Matrix::GlorotUniform(config_.hidden_dim, h4, rng_);
  b_ = Matrix(1, h4, 0.0);
  // Forget-gate bias starts at 1 — the standard trick that keeps early
  // gradients flowing through long sequences.
  for (std::size_t j = 0; j < config_.hidden_dim; ++j) {
    b_(0, config_.hidden_dim + j) = 1.0;
  }
  grad_wx_ = Matrix(config_.input_dim, h4, 0.0);
  grad_wh_ = Matrix(config_.hidden_dim, h4, 0.0);
  grad_b_ = Matrix(1, h4, 0.0);

  dropout_ = std::make_unique<DropoutLayer>(config_.dropout, rng_.NextU64());
  dense1_ =
      std::make_unique<DenseLayer>(config_.hidden_dim, config_.dense_dim,
                                   rng_);
  relu_ = std::make_unique<ReluLayer>();
  dense2_ =
      std::make_unique<DenseLayer>(config_.dense_dim, config_.num_labels,
                                   rng_);
  sigmoid_ = std::make_unique<SigmoidLayer>();
  optimizer_ = AdamOptimizer(config_.adam);

  // Step-invariant scratch is shape-determined; allocate it once here so
  // the timestep loops never do.
  ws_.a.resize(h4);
  ws_.h.resize(config_.hidden_dim);
  ws_.c.resize(config_.hidden_dim);
  ws_.da.resize(h4);
  ws_.dh.resize(config_.hidden_dim);
  ws_.dc.resize(config_.hidden_dim);
  ws_.wh_t.resize(h4 * config_.hidden_dim);
  h_final_ = Matrix(1, config_.hidden_dim, 0.0);
}

void LstmSequenceModel::EnsureWorkspace(std::size_t steps) {
  if (steps <= ws_.steps_cap) return;
  const std::size_t cap = std::max(steps, 2 * ws_.steps_cap);
  ws_.x.resize(cap * config_.input_dim);
  ws_.h_prev.resize(cap * config_.hidden_dim);
  ws_.c_prev.resize(cap * config_.hidden_dim);
  ws_.gates.resize(cap * 4 * config_.hidden_dim);
  ws_.tanh_c.resize(cap * config_.hidden_dim);
  ws_.steps_cap = cap;
}

const Matrix& LstmSequenceModel::RunLstm(const Sequence& sequence,
                                         bool cache) {
  const std::size_t h_dim = config_.hidden_dim;
  const std::size_t in_dim = config_.input_dim;
  const std::size_t h4 = 4 * h_dim;
  EnsureWorkspace(sequence.size());
  double* h = ws_.h.data();
  double* c = ws_.c.data();
  double* a = ws_.a.data();
  kernels::Fill(h, h_dim, 0.0);
  kernels::Fill(c, h_dim, 0.0);
  ws_.steps = 0;

  for (const auto& x : sequence) {
    if (x.size() != in_dim) {
      throw std::invalid_argument("LstmSequenceModel: input_dim mismatch");
    }
    const std::size_t t = ws_.steps;
    if (cache) {
      kernels::Copy(x.data(), &ws_.x[t * in_dim], in_dim);
      kernels::Copy(h, &ws_.h_prev[t * h_dim], h_dim);
      kernels::Copy(c, &ws_.c_prev[t * h_dim], h_dim);
    }
    // Pre-activations a = b + x*Wx + h*Wh, laid out as [i, f, g, o];
    // bias first, then the two GEMVs, matching the legacy order.
    kernels::Copy(b_.data().data(), a, h4);
    kernels::GemvAccum(x.data(), in_dim, wx_.data().data(), h4, a);
    kernels::GemvAccum(h, h_dim, wh_.data().data(), h4, a);
    kernels::LstmCellForward(a, h_dim, &ws_.gates[t * h4], c,
                             &ws_.tanh_c[t * h_dim], h);
    ++ws_.steps;
  }

  kernels::Copy(h, h_final_.data().data(), h_dim);
  return h_final_;
}

void LstmSequenceModel::BackwardLstm(const Matrix& grad_h_final) {
  const std::size_t h_dim = config_.hidden_dim;
  const std::size_t in_dim = config_.input_dim;
  const std::size_t h4 = 4 * h_dim;
  double* dh = ws_.dh.data();
  double* dc = ws_.dc.data();
  double* da = ws_.da.data();
  kernels::Copy(grad_h_final.data().data(), dh, h_dim);
  kernels::Fill(dc, h_dim, 0.0);

  // Wh is constant across the whole BPTT loop, so transpose it once:
  // the dh update below then streams contiguous rows of Wh^T (j outer),
  // which vectorizes, while each dh[k] still receives its j-terms in
  // ascending order starting from 0.0 — the exact chain of the per-k
  // strict dot it replaces (a*b == b*a bitwise). No zero-skip on da[j]:
  // the legacy dot had none, and skipping a +/-0.0 term is not always
  // the same as adding it.
  const double* wh = wh_.data().data();
  double* wh_t = ws_.wh_t.data();
  for (std::size_t k = 0; k < h_dim; ++k) {
    for (std::size_t j = 0; j < h4; ++j) wh_t[j * h_dim + k] = wh[k * h4 + j];
  }

  for (std::size_t t = ws_.steps; t-- > 0;) {
    kernels::LstmCellBackward(dh, &ws_.gates[t * h4],
                              &ws_.tanh_c[t * h_dim],
                              &ws_.c_prev[t * h_dim], h_dim, dc, da);
    // Parameter gradients (zero-skip mirrors the legacy loops).
    const double* x = &ws_.x[t * in_dim];
    for (std::size_t k = 0; k < in_dim; ++k) {
      if (x[k] == 0.0) continue;
      kernels::Axpy(x[k], da, &grad_wx_.data()[k * h4], h4);
    }
    const double* h_prev = &ws_.h_prev[t * h_dim];
    for (std::size_t k = 0; k < h_dim; ++k) {
      if (h_prev[k] == 0.0) continue;
      kernels::Axpy(h_prev[k], da, &grad_wh_.data()[k * h4], h4);
    }
    kernels::Add(da, grad_b_.data().data(), h4);
    // Propagate to the previous hidden state: dh = Wh * da as j-outer
    // AXPYs over the transposed weights (see the transpose above).
    kernels::Fill(dh, h_dim, 0.0);
    for (std::size_t j = 0; j < h4; ++j) {
      kernels::Axpy(da[j], &wh_t[j * h_dim], dh, h_dim);
    }
  }
}

Matrix LstmSequenceModel::HeadForward(const Matrix& h_final, bool training) {
  Matrix z = dropout_->Forward(h_final, training);
  z = dense1_->Forward(z, training);
  z = relu_->Forward(z, training);
  z = dense2_->Forward(z, training);
  return sigmoid_->Forward(z, training);
}

Matrix LstmSequenceModel::HeadBackward(const Matrix& grad_out) {
  Matrix grad = sigmoid_->Backward(grad_out);
  grad = dense2_->Backward(grad);
  grad = relu_->Backward(grad);
  grad = dense1_->Backward(grad);
  return dropout_->Backward(grad);
}

double LstmSequenceModel::Fit(
    const std::vector<Sequence>& sequences,
    const std::vector<std::vector<double>>& targets) {
  if (sequences.size() != targets.size()) {
    throw std::invalid_argument("LstmSequenceModel::Fit: size mismatch");
  }
  if (sequences.empty()) {
    throw std::invalid_argument("LstmSequenceModel::Fit: empty input");
  }
  if (!optimizer_initialized_) {
    optimizer_.Register(&wx_, &grad_wx_);
    optimizer_.Register(&wh_, &grad_wh_);
    optimizer_.Register(&b_, &grad_b_);
    dense1_->RegisterParameters(optimizer_);
    dense2_->RegisterParameters(optimizer_);
    optimizer_initialized_ = true;
  }

  std::vector<std::size_t> order(sequences.size());
  std::iota(order.begin(), order.end(), 0);
  Matrix target_m(1, config_.num_labels);

  double last_epoch_loss = 0.0;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng_.Shuffle(order);
    double epoch_loss = 0.0;
    std::size_t in_batch = 0;
    for (std::size_t n = 0; n < order.size(); ++n) {
      const std::size_t idx = order[n];
      const Matrix& h_final = RunLstm(sequences[idx], /*cache=*/true);
      const Matrix probs = HeadForward(h_final, true);
      target_m.SetRow(0, targets[idx]);

      epoch_loss += BinaryCrossEntropy::Loss(probs, target_m);
      const Matrix grad_prob = BinaryCrossEntropy::Gradient(probs, target_m);
      const Matrix grad_h = HeadBackward(grad_prob);
      if (!sequences[idx].empty()) BackwardLstm(grad_h);

      if (++in_batch == config_.batch_size || n + 1 == order.size()) {
        optimizer_.Step();
        in_batch = 0;
      }
    }
    last_epoch_loss = epoch_loss / static_cast<double>(order.size());
  }
  fitted_ = true;
  return last_epoch_loss;
}

std::vector<double> LstmSequenceModel::Predict(const Sequence& sequence) {
  const Matrix& h_final = RunLstm(sequence, /*cache=*/false);
  Matrix probs = HeadForward(h_final, /*training=*/false);
  return std::move(probs.data());
}

}  // namespace mexi::ml
