#include "ml/nn/lstm.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "ml/kernels.h"
#include "ml/nn/network.h"
#include "ml/vmath/vmath.h"
#include "ml/serialize.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "robust/fault_injection.h"
#include "robust/status.h"

namespace mexi::ml {

namespace {

double SumSquares(const Matrix& m) {
  double sum = 0.0;
  for (const double v : m.data()) sum += v * v;
  return sum;
}

// c[j] = gf[j] * c[j] + gi[j] * gg[j] over one contiguous span —
// LstmCellForward's cell update, element-independent.
void BatchCellCombine(const double* __restrict gi,
                      const double* __restrict gf,
                      const double* __restrict gg, double* __restrict c,
                      std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) c[j] = gf[j] * c[j] + gi[j] * gg[j];
}

// h[j] = go[j] * tanh_c[j] over one contiguous span.
void BatchHadamard(const double* __restrict go,
                   const double* __restrict tanh_c, double* __restrict h,
                   std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) h[j] = go[j] * tanh_c[j];
}

}  // namespace

LstmSequenceModel::LstmSequenceModel(const Config& config)
    : config_(config), rng_(config.seed) {
  const std::size_t h4 = 4 * config_.hidden_dim;
  wx_ = Matrix::GlorotUniform(config_.input_dim, h4, rng_);
  wh_ = Matrix::GlorotUniform(config_.hidden_dim, h4, rng_);
  b_ = Matrix(1, h4, 0.0);
  // Forget-gate bias starts at 1 — the standard trick that keeps early
  // gradients flowing through long sequences.
  for (std::size_t j = 0; j < config_.hidden_dim; ++j) {
    b_(0, config_.hidden_dim + j) = 1.0;
  }
  grad_wx_ = Matrix(config_.input_dim, h4, 0.0);
  grad_wh_ = Matrix(config_.hidden_dim, h4, 0.0);
  grad_b_ = Matrix(1, h4, 0.0);

  dropout_ = std::make_unique<DropoutLayer>(config_.dropout, rng_.NextU64());
  dense1_ =
      std::make_unique<DenseLayer>(config_.hidden_dim, config_.dense_dim,
                                   rng_);
  relu_ = std::make_unique<ReluLayer>();
  dense2_ =
      std::make_unique<DenseLayer>(config_.dense_dim, config_.num_labels,
                                   rng_);
  sigmoid_ = std::make_unique<SigmoidLayer>();
  optimizer_ = AdamOptimizer(config_.adam);

  // Step-invariant scratch is shape-determined; allocate it once here so
  // the timestep loops never do.
  ws_.a.resize(h4);
  ws_.h.resize(config_.hidden_dim);
  ws_.c.resize(config_.hidden_dim);
  ws_.dh.resize(config_.hidden_dim);
  ws_.dc.resize(config_.hidden_dim);
  h_final_ = Matrix(1, config_.hidden_dim, 0.0);
}

void LstmSequenceModel::EnsureWorkspace(std::size_t steps) {
  if (steps <= ws_.steps_cap) return;
  const std::size_t cap = std::max(steps, 2 * ws_.steps_cap);
  ws_.x.resize(cap * config_.input_dim);
  ws_.h_prev.resize(cap * config_.hidden_dim);
  ws_.c_prev.resize(cap * config_.hidden_dim);
  ws_.gates.resize(cap * 4 * config_.hidden_dim);
  ws_.tanh_c.resize(cap * config_.hidden_dim);
  ws_.da.resize(cap * 4 * config_.hidden_dim);
  ws_.steps_cap = cap;
}

const Matrix& LstmSequenceModel::RunLstm(const Sequence& sequence,
                                         bool cache) {
  const std::size_t h_dim = config_.hidden_dim;
  const std::size_t in_dim = config_.input_dim;
  const std::size_t h4 = 4 * h_dim;
  EnsureWorkspace(sequence.size());
  double* h = ws_.h.data();
  double* c = ws_.c.data();
  double* a = ws_.a.data();
  kernels::Fill(h, h_dim, 0.0);
  kernels::Fill(c, h_dim, 0.0);
  ws_.steps = 0;

  // Fast activations are only ever legal when nothing downstream trains
  // on the result: the uncached (Predict) path, with no TrainingScope
  // live on this thread. The decision is hoisted out of the step loop
  // so the training path costs nothing.
  const bool fast = !cache && vmath::FastMathActive();

  for (const auto& x : sequence) {
    if (x.size() != in_dim) {
      throw std::invalid_argument("LstmSequenceModel: input_dim mismatch");
    }
    const std::size_t t = ws_.steps;
    if (cache) {
      kernels::Copy(x.data(), &ws_.x[t * in_dim], in_dim);
      kernels::Copy(h, &ws_.h_prev[t * h_dim], h_dim);
      kernels::Copy(c, &ws_.c_prev[t * h_dim], h_dim);
    }
    // Pre-activations a = b + x*Wx + h*Wh, laid out as [i, f, g, o];
    // bias first, then the two GEMVs, matching the legacy order.
    kernels::Copy(b_.data().data(), a, h4);
    if (fast) {
      // Fused products pair with GemmAccumFused in PredictBatch: both
      // sides of the batch/single identity contract together.
      kernels::GemvAccumFused(x.data(), in_dim, wx_.data().data(), h4, a);
      kernels::GemvAccumFused(h, h_dim, wh_.data().data(), h4, a);
    } else {
      kernels::GemvAccum(x.data(), in_dim, wx_.data().data(), h4, a);
      kernels::GemvAccum(h, h_dim, wh_.data().data(), h4, a);
    }
    if (fast) {
      kernels::LstmCellForwardFast(a, h_dim, &ws_.gates[t * h4], c,
                                   &ws_.tanh_c[t * h_dim], h);
    } else {
      kernels::LstmCellForward(a, h_dim, &ws_.gates[t * h4], c,
                               &ws_.tanh_c[t * h_dim], h);
    }
    ++ws_.steps;
  }

  kernels::Copy(h, h_final_.data().data(), h_dim);
  return h_final_;
}

void LstmSequenceModel::BackwardLstm(const Matrix& grad_h_final) {
  const std::size_t h_dim = config_.hidden_dim;
  const std::size_t in_dim = config_.input_dim;
  const std::size_t h4 = 4 * h_dim;
  double* dh = ws_.dh.data();
  double* dc = ws_.dc.data();
  double* da_slab = ws_.da.data();
  kernels::Copy(grad_h_final.data().data(), dh, h_dim);
  kernels::Fill(dc, h_dim, 0.0);

  // BPTT pass: each step's 4H pre-activation gradient lands in its own
  // slot of the `da` slab instead of being scattered into the weight
  // gradients immediately — the weight matrices are then touched in one
  // deferred pass below rather than once per timestep.
  const double* wh = wh_.data().data();
  for (std::size_t t = ws_.steps; t-- > 0;) {
    double* da = da_slab + t * h4;
    kernels::LstmCellBackward(dh, &ws_.gates[t * h4],
                              &ws_.tanh_c[t * h_dim],
                              &ws_.c_prev[t * h_dim], h_dim, dc, da);
    // Bias gradient stays in-loop (it is 4H-small and `da` is hot), in
    // the legacy t-descending chain.
    kernels::Add(da, grad_b_.data().data(), h4);
    // Propagate to the previous hidden state: dh[k] = <Wh row k, da>.
    // Each row is a strict ascending-j chain from 0.0 with the operands
    // of every product merely swapped versus the legacy transposed AXPY
    // form (a*b == b*a bitwise), so this drops the per-call 4HxH
    // transpose without moving a bit. No zero-skip on da[j]: the legacy
    // chain had none, and skipping a +/-0.0 term is not always the same
    // as adding it.
    kernels::DotRows(wh, h_dim, h4, da, dh);
  }

  // One pass over each gradient matrix: row k accumulates its timestep
  // terms t-descending — exactly the order the per-timestep loops used,
  // per (k, j) cell — with the same skip of zero inputs. Rows are
  // independent accumulator chains, so hoisting k outward is bitwise
  // neutral; grad_wx/grad_wh are now streamed once per sequence instead
  // of once per timestep.
  for (std::size_t k = 0; k < in_dim; ++k) {
    double* grad_row = &grad_wx_.data()[k * h4];
    for (std::size_t t = ws_.steps; t-- > 0;) {
      const double xk = ws_.x[t * in_dim + k];
      if (xk == 0.0) continue;
      kernels::Axpy(xk, da_slab + t * h4, grad_row, h4);
    }
  }
  for (std::size_t k = 0; k < h_dim; ++k) {
    double* grad_row = &grad_wh_.data()[k * h4];
    for (std::size_t t = ws_.steps; t-- > 0;) {
      const double hk = ws_.h_prev[t * h_dim + k];
      if (hk == 0.0) continue;
      kernels::Axpy(hk, da_slab + t * h4, grad_row, h4);
    }
  }
}

Matrix LstmSequenceModel::HeadForward(const Matrix& h_final, bool training) {
  Matrix z = dropout_->Forward(h_final, training);
  z = dense1_->Forward(z, training);
  z = relu_->Forward(z, training);
  z = dense2_->Forward(z, training);
  return sigmoid_->Forward(z, training);
}

Matrix LstmSequenceModel::HeadBackward(const Matrix& grad_out) {
  Matrix grad = sigmoid_->Backward(grad_out);
  grad = dense2_->Backward(grad);
  grad = relu_->Backward(grad);
  grad = dense1_->Backward(grad);
  return dropout_->Backward(grad);
}

void LstmSequenceModel::EnsureOptimizer() {
  if (optimizer_initialized_) return;
  optimizer_.Register(&wx_, &grad_wx_);
  optimizer_.Register(&wh_, &grad_wh_);
  optimizer_.Register(&b_, &grad_b_);
  dense1_->RegisterParameters(optimizer_);
  dense2_->RegisterParameters(optimizer_);
  optimizer_initialized_ = true;
}

void LstmSequenceModel::EnableCheckpointing(const std::string& directory,
                                            int every_epochs) {
  if (every_epochs < 1) {
    throw std::invalid_argument(
        "LstmSequenceModel::EnableCheckpointing: every_epochs must be >= 1");
  }
  checkpoint_ = std::make_unique<robust::CheckpointManager>(directory, "lstm");
  checkpoint_every_ = every_epochs;
}

std::uint64_t LstmSequenceModel::ConfigFingerprint() const {
  robust::BinaryWriter w;
  w.WriteU64(config_.input_dim);
  w.WriteU64(config_.hidden_dim);
  w.WriteU64(config_.dense_dim);
  w.WriteU64(config_.num_labels);
  w.WriteDouble(config_.dropout);
  w.WriteI64(config_.epochs);
  w.WriteU64(config_.batch_size);
  w.WriteDouble(config_.adam.learning_rate);
  w.WriteDouble(config_.adam.beta1);
  w.WriteDouble(config_.adam.beta2);
  w.WriteDouble(config_.adam.epsilon);
  w.WriteU64(config_.seed);
  return robust::Fnv1a(w.buffer().data(), w.buffer().size());
}

std::uint64_t LstmSequenceModel::DataFingerprint(
    const std::vector<Sequence>& sequences,
    const std::vector<std::vector<double>>& targets) {
  std::uint64_t hash = robust::kFnvOffsetBasis;
  const std::uint64_t n = sequences.size();
  hash = robust::Fnv1a(&n, sizeof(n), hash);
  for (const auto& sequence : sequences) {
    const std::uint64_t steps = sequence.size();
    hash = robust::Fnv1a(&steps, sizeof(steps), hash);
    for (const auto& x : sequence) {
      hash = robust::Fnv1a(x.data(), x.size() * sizeof(double), hash);
    }
  }
  for (const auto& target : targets) {
    hash = robust::Fnv1a(target.data(), target.size() * sizeof(double), hash);
  }
  return hash;
}

int LstmSequenceModel::TryResume(std::uint64_t data_fingerprint,
                                 double* last_epoch_loss,
                                 std::vector<std::size_t>* order) {
  std::vector<std::uint8_t> payload;
  const robust::Status status = checkpoint_->LoadLatest(&payload);
  if (status.code() == robust::StatusCode::kNotFound) return 0;
  robust::ThrowIfError(status);

  robust::BinaryReader reader(payload);
  reader.ExpectTag("LSTR");
  const std::uint64_t config_fp = reader.ReadU64();
  const std::uint64_t data_fp = reader.ReadU64();
  if (config_fp != ConfigFingerprint() || data_fp != data_fingerprint) {
    robust::ThrowStatus(
        robust::StatusCode::kInvalidArgument,
        "LSTM checkpoint belongs to a different training run "
        "(config/data fingerprint mismatch) — discard the checkpoint "
        "directory to start fresh");
  }
  const std::int64_t epochs_done = reader.ReadI64();
  *last_epoch_loss = reader.ReadDouble();
  const std::uint64_t order_size = reader.ReadU64();
  if (order_size != order->size()) {
    robust::ThrowStatus(robust::StatusCode::kCorruption,
                        "LSTM checkpoint shuffle order has wrong length");
  }
  for (auto& index : *order) {
    const std::uint64_t value = reader.ReadU64();
    if (value >= order_size) {
      robust::ThrowStatus(robust::StatusCode::kCorruption,
                          "LSTM checkpoint shuffle order index out of range");
    }
    index = static_cast<std::size_t>(value);
  }
  LoadState(reader);
  return static_cast<int>(epochs_done);
}

void LstmSequenceModel::CommitCheckpoint(
    int epochs_done, double last_epoch_loss, std::uint64_t data_fingerprint,
    const std::vector<std::size_t>& order) {
  robust::BinaryWriter writer;
  writer.WriteTag("LSTR");
  writer.WriteU64(ConfigFingerprint());
  writer.WriteU64(data_fingerprint);
  writer.WriteI64(epochs_done);
  writer.WriteDouble(last_epoch_loss);
  writer.WriteU64(order.size());
  for (const std::size_t index : order) writer.WriteU64(index);
  SaveState(writer);
  robust::ThrowIfError(checkpoint_->Commit(writer.buffer()));
}

double LstmSequenceModel::Fit(
    const std::vector<Sequence>& sequences,
    const std::vector<std::vector<double>>& targets) {
  if (sequences.size() != targets.size()) {
    throw std::invalid_argument("LstmSequenceModel::Fit: size mismatch");
  }
  if (sequences.empty()) {
    throw std::invalid_argument("LstmSequenceModel::Fit: empty input");
  }
  // Training is exact regardless of MEXI_FAST_MATH; the scope also
  // covers any inference a caller runs from inside this Fit.
  const vmath::TrainingScope exact_training;
  EnsureOptimizer();

  // The shuffle permutation is mutated in place each epoch — epoch k's
  // order is the composition of every shuffle so far. It is therefore
  // training state: it rides along in the checkpoint so a resumed run
  // visits samples in exactly the order the dead run would have.
  std::vector<std::size_t> order(sequences.size());
  std::iota(order.begin(), order.end(), 0);

  const obs::Span fit_span("lstm.fit");

  double last_epoch_loss = 0.0;
  int start_epoch = 0;
  std::uint64_t data_fp = 0;
  if (checkpoint_) {
    data_fp = DataFingerprint(sequences, targets);
    start_epoch = TryResume(data_fp, &last_epoch_loss, &order);
  }
  if (start_epoch > 0 && obs::MetricsEnabled()) {
    obs::Observability::Global().Event("lstm.resume",
                          {obs::F("start_epoch", start_epoch),
                           obs::F("loss", last_epoch_loss)});
  }

  Matrix target_m(1, config_.num_labels);

  auto& faults = robust::FaultInjector::Global();
  for (int epoch = start_epoch; epoch < config_.epochs; ++epoch) {
    const obs::Span epoch_span("lstm.epoch");
    rng_.Shuffle(order);
    double epoch_loss = 0.0;
    double grad_norm = -1.0;  // computed only when metrics are on
    std::size_t in_batch = 0;
    for (std::size_t n = 0; n < order.size(); ++n) {
      const std::size_t idx = order[n];
      const Matrix& h_final = RunLstm(sequences[idx], /*cache=*/true);
      const Matrix probs = HeadForward(h_final, true);
      target_m.SetRow(0, targets[idx]);

      double sample_loss = BinaryCrossEntropy::Loss(probs, target_m);
      if (faults.Hit(robust::FaultSite::kLstmGradient) ==
          robust::FaultKind::kNan) {
        sample_loss = std::numeric_limits<double>::quiet_NaN();
      }
      if (!std::isfinite(sample_loss)) {
        robust::ThrowStatus(robust::StatusCode::kDivergence,
                            "LSTM training loss is not finite at epoch " +
                                std::to_string(epoch) + ", sample " +
                                std::to_string(n) +
                                " — aborting before weights are poisoned");
      }
      epoch_loss += sample_loss;
      const Matrix grad_prob = BinaryCrossEntropy::Gradient(probs, target_m);
      const Matrix grad_h = HeadBackward(grad_prob);
      if (!sequences[idx].empty()) BackwardLstm(grad_h);

      if (++in_batch == config_.batch_size || n + 1 == order.size()) {
        // Adam zeroes the gradients inside Step, so the epoch's norm
        // must be read before the last Step. Pure observation: reads
        // only, and only when metrics are on.
        if (n + 1 == order.size() && obs::MetricsEnabled()) {
          grad_norm = std::sqrt(SumSquares(grad_wx_) + SumSquares(grad_wh_) +
                                SumSquares(grad_b_));
        }
        optimizer_.Step();
        in_batch = 0;
      }
    }
    last_epoch_loss = epoch_loss / static_cast<double>(order.size());
    if (obs::MetricsEnabled()) {
      auto& hub = obs::Observability::Global();
      hub.registry().GetCounter("lstm.epochs").Add();
      hub.registry().GetGauge("lstm.last_epoch_loss").Set(last_epoch_loss);
      if (grad_norm >= 0.0) {
        hub.registry().GetGauge("lstm.grad_norm").Set(grad_norm);
      }
      hub.Event("lstm.epoch", {obs::F("epoch", epoch),
                               obs::F("loss", last_epoch_loss),
                               obs::F("grad_norm", grad_norm)});
    }

    if (checkpoint_ && ((epoch + 1) % checkpoint_every_ == 0 ||
                        epoch + 1 == config_.epochs)) {
      CommitCheckpoint(epoch + 1, last_epoch_loss, data_fp, order);
    }
    switch (faults.Hit(robust::FaultSite::kEpochEnd)) {
      case robust::FaultKind::kAbort:
        robust::ThrowStatus(robust::StatusCode::kAborted,
                            "injected kill after epoch " +
                                std::to_string(epoch));
      case robust::FaultKind::kKill:
        std::_Exit(137);
      default:
        break;
    }
  }
  fitted_ = true;
  return last_epoch_loss;
}

void LstmSequenceModel::SaveState(robust::BinaryWriter& writer) const {
  writer.WriteTag("LSTM");
  writer.WriteU64(config_.input_dim);
  writer.WriteU64(config_.hidden_dim);
  writer.WriteU64(config_.dense_dim);
  writer.WriteU64(config_.num_labels);
  WriteMatrix(writer, wx_);
  WriteMatrix(writer, wh_);
  WriteMatrix(writer, b_);
  dropout_->SaveState(writer);
  dense1_->SaveState(writer);
  dense2_->SaveState(writer);
  robust::WriteRngState(writer, rng_);
  writer.WriteBool(fitted_);
  writer.WriteBool(optimizer_initialized_);
  if (optimizer_initialized_) optimizer_.SaveState(writer);
}

void LstmSequenceModel::LoadState(robust::BinaryReader& reader) {
  reader.ExpectTag("LSTM");
  const std::uint64_t input_dim = reader.ReadU64();
  const std::uint64_t hidden_dim = reader.ReadU64();
  const std::uint64_t dense_dim = reader.ReadU64();
  const std::uint64_t num_labels = reader.ReadU64();
  if (input_dim != config_.input_dim || hidden_dim != config_.hidden_dim ||
      dense_dim != config_.dense_dim || num_labels != config_.num_labels) {
    robust::ThrowStatus(robust::StatusCode::kCorruption,
                        "LSTM checkpoint architecture mismatch");
  }
  ReadMatrixInto(reader, wx_, "LSTM Wx");
  ReadMatrixInto(reader, wh_, "LSTM Wh");
  ReadMatrixInto(reader, b_, "LSTM bias");
  dropout_->LoadState(reader);
  dense1_->LoadState(reader);
  dense2_->LoadState(reader);
  robust::ReadRngState(reader, rng_);
  fitted_ = reader.ReadBool();
  const bool had_optimizer = reader.ReadBool();
  if (had_optimizer) {
    EnsureOptimizer();
    optimizer_.LoadState(reader);
  }
}

std::vector<double> LstmSequenceModel::Predict(const Sequence& sequence) {
  const Matrix& h_final = RunLstm(sequence, /*cache=*/false);
  Matrix probs = HeadForward(h_final, /*training=*/false);
  return std::move(probs.data());
}

std::vector<std::vector<double>> LstmSequenceModel::PredictBatch(
    const std::vector<Sequence>& sequences) const {
  PredictBatchWorkspace ws;
  return PredictBatch(sequences, ws);
}

std::vector<std::vector<double>> LstmSequenceModel::PredictBatch(
    const std::vector<Sequence>& sequences, PredictBatchWorkspace& ws) const {
  const std::size_t batch = sequences.size();
  std::vector<std::vector<double>> out(batch);
  if (batch == 0) return out;
  const std::size_t h_dim = config_.hidden_dim;
  const std::size_t in_dim = config_.input_dim;
  const std::size_t h4 = 4 * h_dim;

  // Same hoisted decision as RunLstm's uncached (Predict) path: no cache
  // is ever taken here, so only the TrainingScope contract gates it.
  const bool fast = vmath::FastMathActive();

  // Length-descending stable sort: the lanes alive at step t are always
  // the prefix [0, active), so every per-step slab is one contiguous
  // span and expired lanes simply stop being written (their h rows keep
  // the final hidden state; never-written rows stay zero, which is
  // exactly what Predict produces for an empty sequence).
  std::vector<std::size_t>& perm = ws.perm;
  perm.resize(batch);
  std::iota(perm.begin(), perm.end(), 0);
  std::stable_sort(perm.begin(), perm.end(),
                   [&](std::size_t a, std::size_t b) {
                     return sequences[a].size() > sequences[b].size();
                   });
  const std::size_t max_steps = sequences[perm[0]].size();

  // Lane-major persistent state [batch x H]: lane l's c/h rows sit at a
  // fixed offset while the active prefix shrinks, so the live part of
  // `c` stays contiguous for the batched tanh below.
  ws.h.assign(batch * h_dim, 0.0);
  ws.c.assign(batch * h_dim, 0.0);
  ws.x.resize(batch * in_dim);
  ws.a.resize(batch * h4);
  ws.gates.resize(batch * h4);
  ws.tanh_c.resize(batch * h_dim);

  const double* wx = wx_.data().data();
  const double* wh = wh_.data().data();
  const double* bias = b_.data().data();

  std::size_t active = batch;
  for (std::size_t t = 0; t < max_steps; ++t) {
    while (active > 0 && sequences[perm[active - 1]].size() <= t) --active;
    const std::size_t bh = active * h_dim;

    // Gather this step's inputs into an [active x in_dim] slab.
    for (std::size_t l = 0; l < active; ++l) {
      const auto& x = sequences[perm[l]][t];
      if (x.size() != in_dim) {
        throw std::invalid_argument("LstmSequenceModel: input_dim mismatch");
      }
      kernels::Copy(x.data(), &ws.x[l * in_dim], in_dim);
    }

    // Pre-activations, gate-block-major: block q holds gate q's rows for
    // every active lane ([active x H] at offset q*bh), which keeps the i
    // and f blocks adjacent for the one fused sigmoid below. Per
    // (lane, unit) cell the chain is bias, then the x-terms ascending k,
    // then the h-terms ascending k — RunLstm's exact order — with
    // GemmAccum addressing gate q's columns of the packed [k x 4H]
    // weights via ldw = 4H.
    double* a = ws.a.data();
    if (fast) {
      // Fused twin of the exact pair below — RunLstm's fast path uses
      // GemvAccumFused, so per cell both arms run the same fused chain.
      // The bias broadcast folds into the input GEMM's accumulator
      // init, which keeps the per-cell order (bias, then x-terms) while
      // skipping the separate copy pass over the gate slab.
      for (std::size_t q = 0; q < 4; ++q) {
        kernels::GemmFusedBiasInit(bias + q * h_dim, ws.x.data(), active,
                                   in_dim, in_dim, wx + q * h_dim, h4, h_dim,
                                   a + q * bh, h_dim);
      }
      for (std::size_t q = 0; q < 4; ++q) {
        kernels::GemmAccumFused(ws.h.data(), active, h_dim, h_dim,
                                wh + q * h_dim, h4, h_dim, a + q * bh, h_dim);
      }
    } else {
      for (std::size_t q = 0; q < 4; ++q) {
        for (std::size_t l = 0; l < active; ++l) {
          kernels::Copy(bias + q * h_dim, a + q * bh + l * h_dim, h_dim);
        }
      }
      for (std::size_t q = 0; q < 4; ++q) {
        kernels::GemmAccum(ws.x.data(), active, in_dim, in_dim,
                           wx + q * h_dim, h4, h_dim, a + q * bh, h_dim);
      }
      for (std::size_t q = 0; q < 4; ++q) {
        kernels::GemmAccum(ws.h.data(), active, h_dim, h_dim, wh + q * h_dim,
                           h4, h_dim, a + q * bh, h_dim);
      }
    }

    // LstmCellForward[Fast] across all active lanes at once. Every
    // element's expression tree is the single-lane cell's, activations
    // are position-independent per element in both modes, and no element
    // reads another element's result — so widening the vmath spans from
    // H to active*H is bitwise-neutral per lane.
    double* gates = ws.gates.data();
    if (fast) {
      vmath::VSigmoidFast(a, gates, 2 * bh);
      vmath::VTanhFast(a + 2 * bh, gates + 2 * bh, bh);
      vmath::VSigmoidFast(a + 3 * bh, gates + 3 * bh, bh);
    } else {
      vmath::VSigmoid(a, gates, 2 * bh);
      vmath::VTanh(a + 2 * bh, gates + 2 * bh, bh);
      vmath::VSigmoid(a + 3 * bh, gates + 3 * bh, bh);
    }
    // The gate blocks and the c/h prefixes are all contiguous
    // [active x H] spans, so the per-lane cell combines collapse into
    // one span-wide loop each. Per element the ops are exactly
    // LstmCellForward's, and every element is independent, so the
    // restrict-qualified form vectorizes without changing a bit.
    BatchCellCombine(gates, gates + bh, gates + 2 * bh, ws.c.data(), bh);
    if (fast) {
      vmath::VTanhFast(ws.c.data(), ws.tanh_c.data(), bh);
    } else {
      vmath::VTanh(ws.c.data(), ws.tanh_c.data(), bh);
    }
    BatchHadamard(gates + 3 * bh, ws.tanh_c.data(), ws.h.data(), bh);
  }

  // Head over the final hidden states (dropout is identity at
  // inference), then unsort back to caller order.
  DenseHeadForwardBatch(*dense1_, *dense2_, ws.h.data(), batch, ws.z1, ws.z2,
                        fast);
  const std::size_t labels = config_.num_labels;
  for (std::size_t l = 0; l < batch; ++l) {
    out[perm[l]].assign(ws.z2.begin() + l * labels,
                        ws.z2.begin() + (l + 1) * labels);
  }
  return out;
}

void LstmSequenceModel::InitStream(StreamState& state) const {
  const std::size_t h_dim = config_.hidden_dim;
  const std::size_t h4 = 4 * h_dim;
  state.h.assign(h_dim, 0.0);
  state.c.assign(h_dim, 0.0);
  state.a.resize(h4);
  state.gates.resize(h4);
  state.tanh_c.resize(h_dim);
  state.steps = 0;
}

void LstmSequenceModel::StreamStep(const std::vector<double>& x,
                                   StreamState& state) const {
  const std::size_t h_dim = config_.hidden_dim;
  const std::size_t in_dim = config_.input_dim;
  const std::size_t h4 = 4 * h_dim;
  if (x.size() != in_dim) {
    throw std::invalid_argument("LstmSequenceModel: input_dim mismatch");
  }
  double* h = state.h.data();
  double* c = state.c.data();
  double* a = state.a.data();
  // Consulted per step, like RunLstm's uncached path consults it per
  // call: a stream advanced under one mode tracks Predict in that mode.
  const bool fast = vmath::FastMathActive();
  kernels::Copy(b_.data().data(), a, h4);
  if (fast) {
    kernels::GemvAccumFused(x.data(), in_dim, wx_.data().data(), h4, a);
    kernels::GemvAccumFused(h, h_dim, wh_.data().data(), h4, a);
    kernels::LstmCellForwardFast(a, h_dim, state.gates.data(), c,
                                 state.tanh_c.data(), h);
  } else {
    kernels::GemvAccum(x.data(), in_dim, wx_.data().data(), h4, a);
    kernels::GemvAccum(h, h_dim, wh_.data().data(), h4, a);
    kernels::LstmCellForward(a, h_dim, state.gates.data(), c,
                             state.tanh_c.data(), h);
  }
  ++state.steps;
}

std::vector<double> LstmSequenceModel::StreamProbabilities(
    StreamState& state) const {
  DenseHeadForwardBatch(*dense1_, *dense2_, state.h.data(), 1, state.z1,
                        state.z2, vmath::FastMathActive());
  return std::vector<double>(state.z2.begin(),
                             state.z2.begin() + config_.num_labels);
}

}  // namespace mexi::ml
