#include "ml/nn/lstm.h"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "ml/nn/network.h"

namespace mexi::ml {

namespace {
double Sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }
}  // namespace

LstmSequenceModel::LstmSequenceModel(const Config& config)
    : config_(config), rng_(config.seed) {
  const std::size_t h4 = 4 * config_.hidden_dim;
  wx_ = Matrix::GlorotUniform(config_.input_dim, h4, rng_);
  wh_ = Matrix::GlorotUniform(config_.hidden_dim, h4, rng_);
  b_ = Matrix(1, h4, 0.0);
  // Forget-gate bias starts at 1 — the standard trick that keeps early
  // gradients flowing through long sequences.
  for (std::size_t j = 0; j < config_.hidden_dim; ++j) {
    b_(0, config_.hidden_dim + j) = 1.0;
  }
  grad_wx_ = Matrix(config_.input_dim, h4, 0.0);
  grad_wh_ = Matrix(config_.hidden_dim, h4, 0.0);
  grad_b_ = Matrix(1, h4, 0.0);

  dropout_ = std::make_unique<DropoutLayer>(config_.dropout, rng_.NextU64());
  dense1_ =
      std::make_unique<DenseLayer>(config_.hidden_dim, config_.dense_dim,
                                   rng_);
  relu_ = std::make_unique<ReluLayer>();
  dense2_ =
      std::make_unique<DenseLayer>(config_.dense_dim, config_.num_labels,
                                   rng_);
  sigmoid_ = std::make_unique<SigmoidLayer>();
  optimizer_ = AdamOptimizer(config_.adam);
}

Matrix LstmSequenceModel::RunLstm(const Sequence& sequence, bool cache) {
  const std::size_t h_dim = config_.hidden_dim;
  std::vector<double> h(h_dim, 0.0), c(h_dim, 0.0);
  if (cache) cache_.clear();

  for (const auto& x : sequence) {
    if (x.size() != config_.input_dim) {
      throw std::invalid_argument("LstmSequenceModel: input_dim mismatch");
    }
    StepCache step;
    if (cache) {
      step.x = x;
      step.h_prev = h;
      step.c_prev = c;
    }
    // Pre-activations a = x*Wx + h*Wh + b, laid out as [i, f, g, o].
    std::vector<double> a(4 * h_dim);
    for (std::size_t j = 0; j < 4 * h_dim; ++j) a[j] = b_(0, j);
    for (std::size_t k = 0; k < config_.input_dim; ++k) {
      const double xk = x[k];
      if (xk == 0.0) continue;
      for (std::size_t j = 0; j < 4 * h_dim; ++j) a[j] += xk * wx_(k, j);
    }
    for (std::size_t k = 0; k < h_dim; ++k) {
      const double hk = h[k];
      if (hk == 0.0) continue;
      for (std::size_t j = 0; j < 4 * h_dim; ++j) a[j] += hk * wh_(k, j);
    }

    std::vector<double> gi(h_dim), gf(h_dim), gg(h_dim), go(h_dim);
    for (std::size_t j = 0; j < h_dim; ++j) {
      gi[j] = Sigmoid(a[j]);
      gf[j] = Sigmoid(a[h_dim + j]);
      gg[j] = std::tanh(a[2 * h_dim + j]);
      go[j] = Sigmoid(a[3 * h_dim + j]);
    }
    std::vector<double> tanh_c(h_dim);
    for (std::size_t j = 0; j < h_dim; ++j) {
      c[j] = gf[j] * c[j] + gi[j] * gg[j];
      tanh_c[j] = std::tanh(c[j]);
      h[j] = go[j] * tanh_c[j];
    }
    if (cache) {
      step.i = std::move(gi);
      step.f = std::move(gf);
      step.g = std::move(gg);
      step.o = std::move(go);
      step.c = c;
      step.tanh_c = std::move(tanh_c);
      cache_.push_back(std::move(step));
    }
  }

  Matrix out(1, h_dim);
  for (std::size_t j = 0; j < h_dim; ++j) out(0, j) = h[j];
  return out;
}

void LstmSequenceModel::BackwardLstm(const Matrix& grad_h_final) {
  const std::size_t h_dim = config_.hidden_dim;
  std::vector<double> dh(h_dim), dc(h_dim, 0.0);
  for (std::size_t j = 0; j < h_dim; ++j) dh[j] = grad_h_final(0, j);

  for (auto it = cache_.rbegin(); it != cache_.rend(); ++it) {
    const StepCache& s = *it;
    std::vector<double> da(4 * h_dim);
    for (std::size_t j = 0; j < h_dim; ++j) {
      const double do_j = dh[j] * s.tanh_c[j];
      const double dct = dh[j] * s.o[j] * (1.0 - s.tanh_c[j] * s.tanh_c[j]) +
                         dc[j];
      const double di = dct * s.g[j];
      const double df = dct * s.c_prev[j];
      const double dg = dct * s.i[j];
      da[j] = di * s.i[j] * (1.0 - s.i[j]);
      da[h_dim + j] = df * s.f[j] * (1.0 - s.f[j]);
      da[2 * h_dim + j] = dg * (1.0 - s.g[j] * s.g[j]);
      da[3 * h_dim + j] = do_j * s.o[j] * (1.0 - s.o[j]);
      dc[j] = dct * s.f[j];
    }
    // Parameter gradients.
    for (std::size_t k = 0; k < config_.input_dim; ++k) {
      const double xk = s.x[k];
      if (xk == 0.0) continue;
      for (std::size_t j = 0; j < 4 * h_dim; ++j) {
        grad_wx_(k, j) += xk * da[j];
      }
    }
    for (std::size_t k = 0; k < h_dim; ++k) {
      const double hk = s.h_prev[k];
      if (hk == 0.0) continue;
      for (std::size_t j = 0; j < 4 * h_dim; ++j) {
        grad_wh_(k, j) += hk * da[j];
      }
    }
    for (std::size_t j = 0; j < 4 * h_dim; ++j) grad_b_(0, j) += da[j];
    // Propagate to the previous hidden state.
    for (std::size_t k = 0; k < h_dim; ++k) {
      double acc = 0.0;
      for (std::size_t j = 0; j < 4 * h_dim; ++j) acc += wh_(k, j) * da[j];
      dh[k] = acc;
    }
  }
}

std::vector<double> LstmSequenceModel::HeadForward(const Matrix& h_final,
                                                   bool training) {
  Matrix z = dropout_->Forward(h_final, training);
  z = dense1_->Forward(z, training);
  z = relu_->Forward(z, training);
  z = dense2_->Forward(z, training);
  z = sigmoid_->Forward(z, training);
  return z.Row(0);
}

Matrix LstmSequenceModel::HeadBackward(const Matrix& grad_out) {
  Matrix grad = sigmoid_->Backward(grad_out);
  grad = dense2_->Backward(grad);
  grad = relu_->Backward(grad);
  grad = dense1_->Backward(grad);
  return dropout_->Backward(grad);
}

double LstmSequenceModel::Fit(
    const std::vector<Sequence>& sequences,
    const std::vector<std::vector<double>>& targets) {
  if (sequences.size() != targets.size()) {
    throw std::invalid_argument("LstmSequenceModel::Fit: size mismatch");
  }
  if (sequences.empty()) {
    throw std::invalid_argument("LstmSequenceModel::Fit: empty input");
  }
  if (!optimizer_initialized_) {
    optimizer_.Register(&wx_, &grad_wx_);
    optimizer_.Register(&wh_, &grad_wh_);
    optimizer_.Register(&b_, &grad_b_);
    dense1_->RegisterParameters(optimizer_);
    dense2_->RegisterParameters(optimizer_);
    optimizer_initialized_ = true;
  }

  std::vector<std::size_t> order(sequences.size());
  std::iota(order.begin(), order.end(), 0);

  double last_epoch_loss = 0.0;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng_.Shuffle(order);
    double epoch_loss = 0.0;
    std::size_t in_batch = 0;
    for (std::size_t n = 0; n < order.size(); ++n) {
      const std::size_t idx = order[n];
      const Matrix h_final = RunLstm(sequences[idx], /*cache=*/true);
      const std::vector<double> probs = HeadForward(h_final, true);

      Matrix prob_m(1, config_.num_labels);
      Matrix target_m(1, config_.num_labels);
      for (std::size_t l = 0; l < config_.num_labels; ++l) {
        prob_m(0, l) = probs[l];
        target_m(0, l) = targets[idx][l];
      }
      epoch_loss += BinaryCrossEntropy::Loss(prob_m, target_m);
      const Matrix grad_prob =
          BinaryCrossEntropy::Gradient(prob_m, target_m);
      const Matrix grad_h = HeadBackward(grad_prob);
      if (!sequences[idx].empty()) BackwardLstm(grad_h);

      if (++in_batch == config_.batch_size || n + 1 == order.size()) {
        optimizer_.Step();
        in_batch = 0;
      }
    }
    last_epoch_loss = epoch_loss / static_cast<double>(order.size());
  }
  fitted_ = true;
  return last_epoch_loss;
}

std::vector<double> LstmSequenceModel::Predict(const Sequence& sequence) {
  const Matrix h_final = RunLstm(sequence, /*cache=*/false);
  return HeadForward(h_final, /*training=*/false);
}

}  // namespace mexi::ml
