#include "ml/nn/cnn.h"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "ml/nn/network.h"

namespace mexi::ml {

CnnImageModel::CnnImageModel(const Config& config)
    : config_(config), rng_(config.seed) {
  const std::size_t c1 = config_.conv1_filters;
  const std::size_t c2 = config_.conv2_filters;
  w1_ = Matrix::GlorotUniform(c1, 9, rng_);
  b1_ = Matrix(1, c1, 0.0);
  grad_w1_ = Matrix(c1, 9, 0.0);
  grad_b1_ = Matrix(1, c1, 0.0);
  w2_ = Matrix::GlorotUniform(c2, c1 * 9, rng_);
  b2_ = Matrix(1, c2, 0.0);
  grad_w2_ = Matrix(c2, c1 * 9, 0.0);
  grad_b2_ = Matrix(1, c2, 0.0);
  wp_ = Matrix::GlorotUniform(c2, c1, rng_);
  grad_wp_ = Matrix(c2, c1, 0.0);

  const std::size_t pooled_rows = config_.image_rows / 4;
  const std::size_t pooled_cols = config_.image_cols / 4;
  const std::size_t flat = c2 * pooled_rows * pooled_cols;
  dense1_ = std::make_unique<DenseLayer>(flat, config_.dense_dim, rng_);
  relu_dense_ = std::make_unique<ReluLayer>();
  dense2_ =
      std::make_unique<DenseLayer>(config_.dense_dim, config_.num_labels,
                                   rng_);
  sigmoid_ = std::make_unique<SigmoidLayer>();
  optimizer_ = AdamOptimizer(config_.adam);
}

CnnImageModel::Channels CnnImageModel::Conv3x3Forward(
    const Channels& in, const Matrix& weights, const Matrix& bias,
    std::size_t out_channels) const {
  const std::size_t rows = in[0].rows();
  const std::size_t cols = in[0].cols();
  Channels out(out_channels, Matrix(rows, cols));
  for (std::size_t oc = 0; oc < out_channels; ++oc) {
    Matrix& o = out[oc];
    o.Fill(bias(0, oc));
    for (std::size_t ic = 0; ic < in.size(); ++ic) {
      const Matrix& src = in[ic];
      for (int ky = -1; ky <= 1; ++ky) {
        for (int kx = -1; kx <= 1; ++kx) {
          const double w = weights(
              oc, ic * 9 + static_cast<std::size_t>((ky + 1) * 3 + kx + 1));
          if (w == 0.0) continue;
          const std::size_t y0 = ky < 0 ? 1 : 0;
          const std::size_t y1 = ky > 0 ? rows - 1 : rows;
          for (std::size_t y = y0; y < y1; ++y) {
            const std::size_t sy = static_cast<std::size_t>(
                static_cast<long>(y) + ky);
            const std::size_t x0 = kx < 0 ? 1 : 0;
            const std::size_t x1 = kx > 0 ? cols - 1 : cols;
            for (std::size_t x = x0; x < x1; ++x) {
              const std::size_t sx = static_cast<std::size_t>(
                  static_cast<long>(x) + kx);
              o(y, x) += w * src(sy, sx);
            }
          }
        }
      }
    }
  }
  return out;
}

CnnImageModel::Channels CnnImageModel::Conv3x3Backward(
    const Channels& grad_out, const Channels& in, const Matrix& weights,
    Matrix& grad_weights, Matrix& grad_bias) const {
  const std::size_t rows = in[0].rows();
  const std::size_t cols = in[0].cols();
  Channels grad_in(in.size(), Matrix(rows, cols));
  for (std::size_t oc = 0; oc < grad_out.size(); ++oc) {
    const Matrix& go = grad_out[oc];
    grad_bias(0, oc) += go.Sum();
    for (std::size_t ic = 0; ic < in.size(); ++ic) {
      const Matrix& src = in[ic];
      Matrix& gi = grad_in[ic];
      for (int ky = -1; ky <= 1; ++ky) {
        for (int kx = -1; kx <= 1; ++kx) {
          const std::size_t widx =
              ic * 9 + static_cast<std::size_t>((ky + 1) * 3 + kx + 1);
          const double w = weights(oc, widx);
          double gw = 0.0;
          const std::size_t y0 = ky < 0 ? 1 : 0;
          const std::size_t y1 = ky > 0 ? rows - 1 : rows;
          for (std::size_t y = y0; y < y1; ++y) {
            const std::size_t sy = static_cast<std::size_t>(
                static_cast<long>(y) + ky);
            const std::size_t x0 = kx < 0 ? 1 : 0;
            const std::size_t x1 = kx > 0 ? cols - 1 : cols;
            for (std::size_t x = x0; x < x1; ++x) {
              const std::size_t sx = static_cast<std::size_t>(
                  static_cast<long>(x) + kx);
              const double g = go(y, x);
              gw += g * src(sy, sx);
              gi(sy, sx) += g * w;
            }
          }
          grad_weights(oc, widx) += gw;
        }
      }
    }
  }
  return grad_in;
}

CnnImageModel::Channels CnnImageModel::MaxPool2Forward(
    const Channels& in, std::vector<std::vector<std::size_t>>& argmax)
    const {
  const std::size_t rows = in[0].rows() / 2;
  const std::size_t cols = in[0].cols() / 2;
  Channels out(in.size(), Matrix(rows, cols));
  argmax.assign(in.size(), std::vector<std::size_t>(rows * cols, 0));
  for (std::size_t ch = 0; ch < in.size(); ++ch) {
    const Matrix& src = in[ch];
    for (std::size_t y = 0; y < rows; ++y) {
      for (std::size_t x = 0; x < cols; ++x) {
        double best = src(2 * y, 2 * x);
        std::size_t best_idx = (2 * y) * src.cols() + 2 * x;
        for (int dy = 0; dy < 2; ++dy) {
          for (int dx = 0; dx < 2; ++dx) {
            const std::size_t sy = 2 * y + static_cast<std::size_t>(dy);
            const std::size_t sx = 2 * x + static_cast<std::size_t>(dx);
            if (src(sy, sx) > best) {
              best = src(sy, sx);
              best_idx = sy * src.cols() + sx;
            }
          }
        }
        out[ch](y, x) = best;
        argmax[ch][y * cols + x] = best_idx;
      }
    }
  }
  return out;
}

CnnImageModel::Channels CnnImageModel::MaxPool2Backward(
    const Channels& grad_out, const Channels& in_shape_ref,
    const std::vector<std::vector<std::size_t>>& argmax) const {
  Channels grad_in(in_shape_ref.size(),
                   Matrix(in_shape_ref[0].rows(), in_shape_ref[0].cols()));
  const std::size_t cols = grad_out[0].cols();
  for (std::size_t ch = 0; ch < grad_out.size(); ++ch) {
    for (std::size_t y = 0; y < grad_out[ch].rows(); ++y) {
      for (std::size_t x = 0; x < cols; ++x) {
        grad_in[ch].data()[argmax[ch][y * cols + x]] +=
            grad_out[ch](y, x);
      }
    }
  }
  return grad_in;
}

std::vector<double> CnnImageModel::Forward(const Image& image, bool training,
                                           bool cache) {
  if (image.rows() != config_.image_rows ||
      image.cols() != config_.image_cols) {
    throw std::invalid_argument("CnnImageModel: image shape mismatch");
  }
  Channels input{image};
  Channels conv1 = Conv3x3Forward(input, w1_, b1_, config_.conv1_filters);
  Channels act1 = conv1;
  for (auto& ch : act1) {
    ch.ApplyInPlace([](double v) { return v > 0.0 ? v : 0.0; });
  }
  std::vector<std::vector<std::size_t>> argmax1;
  Channels pool1 = MaxPool2Forward(act1, argmax1);

  // Residual block: conv2(pool1) + 1x1-projection(pool1), then ReLU.
  Channels conv2 = Conv3x3Forward(pool1, w2_, b2_, config_.conv2_filters);
  Channels block = conv2;
  for (std::size_t oc = 0; oc < block.size(); ++oc) {
    for (std::size_t ic = 0; ic < pool1.size(); ++ic) {
      const double w = wp_(oc, ic);
      if (w == 0.0) continue;
      for (std::size_t i = 0; i < block[oc].data().size(); ++i) {
        block[oc].data()[i] += w * pool1[ic].data()[i];
      }
    }
  }
  Channels act2 = block;
  for (auto& ch : act2) {
    ch.ApplyInPlace([](double v) { return v > 0.0 ? v : 0.0; });
  }
  std::vector<std::vector<std::size_t>> argmax2;
  Channels pool2 = MaxPool2Forward(act2, argmax2);

  // Flatten.
  const std::size_t per_channel = pool2[0].size();
  Matrix flat(1, pool2.size() * per_channel);
  for (std::size_t ch = 0; ch < pool2.size(); ++ch) {
    for (std::size_t i = 0; i < per_channel; ++i) {
      flat(0, ch * per_channel + i) = pool2[ch].data()[i];
    }
  }

  Matrix z = dense1_->Forward(flat, training);
  z = relu_dense_->Forward(z, training);
  z = dense2_->Forward(z, training);
  z = sigmoid_->Forward(z, training);

  if (cache) {
    cache_input_ = std::move(input);
    cache_conv1_pre_ = std::move(conv1);
    cache_conv1_act_ = std::move(act1);
    cache_pool1_ = std::move(pool1);
    cache_pool1_argmax_ = std::move(argmax1);
    cache_block_pre_ = std::move(block);
    cache_block_act_ = std::move(act2);
    cache_pool2_ = std::move(pool2);
    cache_pool2_argmax_ = std::move(argmax2);
  }
  return z.Row(0);
}

void CnnImageModel::Backward(const Matrix& grad_prob) {
  Matrix grad = sigmoid_->Backward(grad_prob);
  grad = dense2_->Backward(grad);
  grad = relu_dense_->Backward(grad);
  grad = dense1_->Backward(grad);  // 1 x flat

  // Un-flatten.
  const std::size_t per_channel = cache_pool2_[0].size();
  Channels grad_pool2(cache_pool2_.size(),
                      Matrix(cache_pool2_[0].rows(),
                             cache_pool2_[0].cols()));
  for (std::size_t ch = 0; ch < grad_pool2.size(); ++ch) {
    for (std::size_t i = 0; i < per_channel; ++i) {
      grad_pool2[ch].data()[i] = grad(0, ch * per_channel + i);
    }
  }

  Channels grad_act2 =
      MaxPool2Backward(grad_pool2, cache_block_act_, cache_pool2_argmax_);
  // ReLU gate of the residual block.
  for (std::size_t ch = 0; ch < grad_act2.size(); ++ch) {
    for (std::size_t i = 0; i < grad_act2[ch].data().size(); ++i) {
      if (cache_block_pre_[ch].data()[i] <= 0.0) {
        grad_act2[ch].data()[i] = 0.0;
      }
    }
  }

  // Split into conv2 path and skip path (both feed pool1).
  Channels grad_pool1 = Conv3x3Backward(grad_act2, cache_pool1_, w2_,
                                        grad_w2_, grad_b2_);
  for (std::size_t oc = 0; oc < grad_act2.size(); ++oc) {
    for (std::size_t ic = 0; ic < cache_pool1_.size(); ++ic) {
      double gw = 0.0;
      const double w = wp_(oc, ic);
      for (std::size_t i = 0; i < grad_act2[oc].data().size(); ++i) {
        const double g = grad_act2[oc].data()[i];
        gw += g * cache_pool1_[ic].data()[i];
        grad_pool1[ic].data()[i] += g * w;
      }
      grad_wp_(oc, ic) += gw;
    }
  }

  Channels grad_act1 =
      MaxPool2Backward(grad_pool1, cache_conv1_act_, cache_pool1_argmax_);
  for (std::size_t ch = 0; ch < grad_act1.size(); ++ch) {
    for (std::size_t i = 0; i < grad_act1[ch].data().size(); ++i) {
      if (cache_conv1_pre_[ch].data()[i] <= 0.0) {
        grad_act1[ch].data()[i] = 0.0;
      }
    }
  }
  Conv3x3Backward(grad_act1, cache_input_, w1_, grad_w1_, grad_b1_);
}

double CnnImageModel::Fit(const std::vector<Image>& images,
                          const std::vector<std::vector<double>>& targets) {
  return Fit(images, targets, config_.epochs);
}

double CnnImageModel::Fit(const std::vector<Image>& images,
                          const std::vector<std::vector<double>>& targets,
                          int epochs) {
  if (images.size() != targets.size() || images.empty()) {
    throw std::invalid_argument("CnnImageModel::Fit: bad input sizes");
  }
  if (!optimizer_initialized_) {
    optimizer_.Register(&w1_, &grad_w1_);
    optimizer_.Register(&b1_, &grad_b1_);
    optimizer_.Register(&w2_, &grad_w2_);
    optimizer_.Register(&b2_, &grad_b2_);
    optimizer_.Register(&wp_, &grad_wp_);
    dense1_->RegisterParameters(optimizer_);
    dense2_->RegisterParameters(optimizer_);
    optimizer_initialized_ = true;
  }

  std::vector<std::size_t> order(images.size());
  std::iota(order.begin(), order.end(), 0);

  double last_epoch_loss = 0.0;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    rng_.Shuffle(order);
    double epoch_loss = 0.0;
    std::size_t in_batch = 0;
    for (std::size_t n = 0; n < order.size(); ++n) {
      const std::size_t idx = order[n];
      const std::vector<double> probs =
          Forward(images[idx], /*training=*/true, /*cache=*/true);
      Matrix prob_m(1, config_.num_labels);
      Matrix target_m(1, config_.num_labels);
      for (std::size_t l = 0; l < config_.num_labels; ++l) {
        prob_m(0, l) = probs[l];
        target_m(0, l) = targets[idx][l];
      }
      epoch_loss += BinaryCrossEntropy::Loss(prob_m, target_m);
      Backward(BinaryCrossEntropy::Gradient(prob_m, target_m));
      if (++in_batch == config_.batch_size || n + 1 == order.size()) {
        optimizer_.Step();
        in_batch = 0;
      }
    }
    last_epoch_loss = epoch_loss / static_cast<double>(order.size());
  }
  fitted_ = true;
  return last_epoch_loss;
}

std::vector<double> CnnImageModel::Predict(const Image& image) {
  return Forward(image, /*training=*/false, /*cache=*/false);
}

}  // namespace mexi::ml
