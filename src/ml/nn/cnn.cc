#include "ml/nn/cnn.h"

#include <cmath>
#include <cstdlib>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "ml/kernels.h"
#include "ml/nn/network.h"
#include "ml/serialize.h"
#include "ml/vmath/vmath.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "robust/fault_injection.h"
#include "robust/status.h"

namespace mexi::ml {

namespace {

/// Resizes a channel stack to `n` matrices of rows x cols, reusing
/// existing storage when the shape already matches.
void EnsureChannels(std::vector<Matrix>& channels, std::size_t n,
                    std::size_t rows, std::size_t cols) {
  channels.resize(n);
  for (auto& m : channels) {
    if (m.rows() != rows || m.cols() != cols) m = Matrix(rows, cols);
  }
}

double SumSquares(const Matrix& m) {
  double sum = 0.0;
  for (const double v : m.data()) sum += v * v;
  return sum;
}

}  // namespace

CnnImageModel::CnnImageModel(const Config& config)
    : config_(config), rng_(config.seed) {
  const std::size_t c1 = config_.conv1_filters;
  const std::size_t c2 = config_.conv2_filters;
  w1_ = Matrix::GlorotUniform(c1, 9, rng_);
  b1_ = Matrix(1, c1, 0.0);
  grad_w1_ = Matrix(c1, 9, 0.0);
  grad_b1_ = Matrix(1, c1, 0.0);
  w2_ = Matrix::GlorotUniform(c2, c1 * 9, rng_);
  b2_ = Matrix(1, c2, 0.0);
  grad_w2_ = Matrix(c2, c1 * 9, 0.0);
  grad_b2_ = Matrix(1, c2, 0.0);
  wp_ = Matrix::GlorotUniform(c2, c1, rng_);
  grad_wp_ = Matrix(c2, c1, 0.0);

  const std::size_t pooled_rows = config_.image_rows / 4;
  const std::size_t pooled_cols = config_.image_cols / 4;
  const std::size_t flat = c2 * pooled_rows * pooled_cols;
  dense1_ = std::make_unique<DenseLayer>(flat, config_.dense_dim, rng_);
  relu_dense_ = std::make_unique<ReluLayer>();
  dense2_ =
      std::make_unique<DenseLayer>(config_.dense_dim, config_.num_labels,
                                   rng_);
  sigmoid_ = std::make_unique<SigmoidLayer>();
  optimizer_ = AdamOptimizer(config_.adam);
  flat_ = Matrix(1, flat, 0.0);
}

void CnnImageModel::Conv3x3Forward(const Channels& in, const Matrix& weights,
                                   const Matrix& bias,
                                   std::size_t out_channels,
                                   Channels& out) const {
  const std::size_t rows = in[0].rows();
  const std::size_t cols = in[0].cols();
  EnsureChannels(out, out_channels, rows, cols);
  for (std::size_t oc = 0; oc < out_channels; ++oc) {
    Matrix& o = out[oc];
    o.Fill(bias(0, oc));
    for (std::size_t ic = 0; ic < in.size(); ++ic) {
      const Matrix& src = in[ic];
      for (int ky = -1; ky <= 1; ++ky) {
        for (int kx = -1; kx <= 1; ++kx) {
          const double w = weights(
              oc, ic * 9 + static_cast<std::size_t>((ky + 1) * 3 + kx + 1));
          if (w == 0.0) continue;
          const std::size_t y0 = ky < 0 ? 1 : 0;
          const std::size_t y1 = ky > 0 ? rows - 1 : rows;
          const std::size_t x0 = kx < 0 ? 1 : 0;
          const std::size_t x1 = kx > 0 ? cols - 1 : cols;
          for (std::size_t y = y0; y < y1; ++y) {
            const std::size_t sy = static_cast<std::size_t>(
                static_cast<long>(y) + ky);
            // Both rows are contiguous: the tap is one shifted AXPY.
            kernels::Axpy(
                w,
                &src.data()[sy * cols + static_cast<std::size_t>(
                                            static_cast<long>(x0) + kx)],
                &o.data()[y * cols + x0], x1 - x0);
          }
        }
      }
    }
  }
}

void CnnImageModel::Conv3x3Backward(const Channels& grad_out,
                                    const Channels& in, const Matrix& weights,
                                    Matrix& grad_weights, Matrix& grad_bias,
                                    Channels* grad_in) const {
  const std::size_t rows = in[0].rows();
  const std::size_t cols = in[0].cols();
  const std::size_t num_oc = grad_out.size();

  for (std::size_t oc = 0; oc < num_oc; ++oc) {
    grad_bias(0, oc) += grad_out[oc].Sum();
  }

  // Input-gradient pass. Each gi element accumulates its (oc, tap) terms
  // in the legacy oc-outer order; the inner row update is an
  // element-independent AXPY, so it vectorizes.
  if (grad_in != nullptr) {
    EnsureChannels(*grad_in, in.size(), rows, cols);
    for (auto& gi : *grad_in) gi.Fill(0.0);
    for (std::size_t oc = 0; oc < num_oc; ++oc) {
      const Matrix& go = grad_out[oc];
      for (std::size_t ic = 0; ic < in.size(); ++ic) {
        Matrix& gi = (*grad_in)[ic];
        for (int ky = -1; ky <= 1; ++ky) {
          for (int kx = -1; kx <= 1; ++kx) {
            const double w = weights(
                oc, ic * 9 + static_cast<std::size_t>((ky + 1) * 3 + kx + 1));
            const std::size_t y0 = ky < 0 ? 1 : 0;
            const std::size_t y1 = ky > 0 ? rows - 1 : rows;
            const std::size_t x0 = kx < 0 ? 1 : 0;
            const std::size_t x1 = kx > 0 ? cols - 1 : cols;
            for (std::size_t y = y0; y < y1; ++y) {
              const std::size_t shift =
                  (static_cast<std::size_t>(static_cast<long>(y) + ky)) *
                      cols +
                  static_cast<std::size_t>(static_cast<long>(x0) + kx);
              kernels::Axpy(w, &go.data()[y * cols + x0], &gi.data()[shift],
                            x1 - x0);
            }
          }
        }
      }
    }
  }

  // Weight-gradient pass. Each gw cell is one strict y-major/x-ascending
  // reduction chain; chains for different output channels are
  // independent, so four run interleaved against the shared source rows
  // (scheduling only — per-chain order is untouched).
  for (std::size_t ic = 0; ic < in.size(); ++ic) {
    const Matrix& src = in[ic];
    for (int ky = -1; ky <= 1; ++ky) {
      for (int kx = -1; kx <= 1; ++kx) {
        const std::size_t widx =
            ic * 9 + static_cast<std::size_t>((ky + 1) * 3 + kx + 1);
        const std::size_t y0 = ky < 0 ? 1 : 0;
        const std::size_t y1 = ky > 0 ? rows - 1 : rows;
        const std::size_t x0 = kx < 0 ? 1 : 0;
        const std::size_t x1 = kx > 0 ? cols - 1 : cols;
        const std::size_t n = x1 - x0;
        std::size_t oc = 0;
        for (; oc + 4 <= num_oc; oc += 4) {
          double g0 = 0.0, g1 = 0.0, g2 = 0.0, g3 = 0.0;
          for (std::size_t y = y0; y < y1; ++y) {
            const std::size_t shift =
                (static_cast<std::size_t>(static_cast<long>(y) + ky)) *
                    cols +
                static_cast<std::size_t>(static_cast<long>(x0) + kx);
            const double* srow = &src.data()[shift];
            const double* p0 = &grad_out[oc].data()[y * cols + x0];
            const double* p1 = &grad_out[oc + 1].data()[y * cols + x0];
            const double* p2 = &grad_out[oc + 2].data()[y * cols + x0];
            const double* p3 = &grad_out[oc + 3].data()[y * cols + x0];
            for (std::size_t x = 0; x < n; ++x) {
              const double s = srow[x];
              g0 += p0[x] * s;
              g1 += p1[x] * s;
              g2 += p2[x] * s;
              g3 += p3[x] * s;
            }
          }
          grad_weights(oc, widx) += g0;
          grad_weights(oc + 1, widx) += g1;
          grad_weights(oc + 2, widx) += g2;
          grad_weights(oc + 3, widx) += g3;
        }
        for (; oc < num_oc; ++oc) {
          double gw = 0.0;
          for (std::size_t y = y0; y < y1; ++y) {
            const std::size_t shift =
                (static_cast<std::size_t>(static_cast<long>(y) + ky)) *
                    cols +
                static_cast<std::size_t>(static_cast<long>(x0) + kx);
            gw = kernels::Dot(&grad_out[oc].data()[y * cols + x0],
                              &src.data()[shift], n, gw);
          }
          grad_weights(oc, widx) += gw;
        }
      }
    }
  }
}

void CnnImageModel::MaxPool2Forward(
    const Channels& in, std::vector<std::vector<std::size_t>>& argmax,
    Channels& out) const {
  const std::size_t rows = in[0].rows() / 2;
  const std::size_t cols = in[0].cols() / 2;
  EnsureChannels(out, in.size(), rows, cols);
  argmax.assign(in.size(), std::vector<std::size_t>(rows * cols, 0));
  for (std::size_t ch = 0; ch < in.size(); ++ch) {
    const Matrix& src = in[ch];
    for (std::size_t y = 0; y < rows; ++y) {
      for (std::size_t x = 0; x < cols; ++x) {
        double best = src(2 * y, 2 * x);
        std::size_t best_idx = (2 * y) * src.cols() + 2 * x;
        for (int dy = 0; dy < 2; ++dy) {
          for (int dx = 0; dx < 2; ++dx) {
            const std::size_t sy = 2 * y + static_cast<std::size_t>(dy);
            const std::size_t sx = 2 * x + static_cast<std::size_t>(dx);
            if (src(sy, sx) > best) {
              best = src(sy, sx);
              best_idx = sy * src.cols() + sx;
            }
          }
        }
        out[ch](y, x) = best;
        argmax[ch][y * cols + x] = best_idx;
      }
    }
  }
}

void CnnImageModel::MaxPool2Backward(
    const Channels& grad_out, std::size_t in_rows, std::size_t in_cols,
    const std::vector<std::vector<std::size_t>>& argmax,
    Channels& grad_in) const {
  EnsureChannels(grad_in, grad_out.size(), in_rows, in_cols);
  for (auto& gi : grad_in) gi.Fill(0.0);
  const std::size_t cols = grad_out[0].cols();
  for (std::size_t ch = 0; ch < grad_out.size(); ++ch) {
    for (std::size_t y = 0; y < grad_out[ch].rows(); ++y) {
      for (std::size_t x = 0; x < cols; ++x) {
        grad_in[ch].data()[argmax[ch][y * cols + x]] +=
            grad_out[ch](y, x);
      }
    }
  }
}

Matrix CnnImageModel::Forward(const Image& image, bool training) {
  if (image.rows() != config_.image_rows ||
      image.cols() != config_.image_cols) {
    throw std::invalid_argument("CnnImageModel: image shape mismatch");
  }
  cache_input_.resize(1);
  cache_input_[0] = image;
  Conv3x3Forward(cache_input_, w1_, b1_, config_.conv1_filters,
                 cache_conv1_pre_);
  EnsureChannels(cache_conv1_act_, cache_conv1_pre_.size(),
                 cache_conv1_pre_[0].rows(), cache_conv1_pre_[0].cols());
  for (std::size_t ch = 0; ch < cache_conv1_pre_.size(); ++ch) {
    kernels::ReluInto(cache_conv1_pre_[ch].data().data(),
                      cache_conv1_act_[ch].data().data(),
                      cache_conv1_pre_[ch].size());
  }
  MaxPool2Forward(cache_conv1_act_, cache_pool1_argmax_, cache_pool1_);

  // Residual block: conv2(pool1) + 1x1-projection(pool1), then ReLU.
  Conv3x3Forward(cache_pool1_, w2_, b2_, config_.conv2_filters,
                 cache_block_pre_);
  for (std::size_t oc = 0; oc < cache_block_pre_.size(); ++oc) {
    for (std::size_t ic = 0; ic < cache_pool1_.size(); ++ic) {
      const double w = wp_(oc, ic);
      if (w == 0.0) continue;
      kernels::Axpy(w, cache_pool1_[ic].data().data(),
                    cache_block_pre_[oc].data().data(),
                    cache_block_pre_[oc].size());
    }
  }
  EnsureChannels(cache_block_act_, cache_block_pre_.size(),
                 cache_block_pre_[0].rows(), cache_block_pre_[0].cols());
  for (std::size_t ch = 0; ch < cache_block_pre_.size(); ++ch) {
    kernels::ReluInto(cache_block_pre_[ch].data().data(),
                      cache_block_act_[ch].data().data(),
                      cache_block_pre_[ch].size());
  }
  MaxPool2Forward(cache_block_act_, cache_pool2_argmax_, cache_pool2_);

  // Flatten into the persistent feature row.
  const std::size_t per_channel = cache_pool2_[0].size();
  for (std::size_t ch = 0; ch < cache_pool2_.size(); ++ch) {
    kernels::Copy(cache_pool2_[ch].data().data(),
                  &flat_.data()[ch * per_channel], per_channel);
  }

  Matrix z = dense1_->Forward(flat_, training);
  z = relu_dense_->Forward(z, training);
  z = dense2_->Forward(z, training);
  return sigmoid_->Forward(z, training);
}

void CnnImageModel::Backward(const Matrix& grad_prob) {
  Matrix grad = sigmoid_->Backward(grad_prob);
  grad = dense2_->Backward(grad);
  grad = relu_dense_->Backward(grad);
  grad = dense1_->Backward(grad);  // 1 x flat

  // Un-flatten.
  const std::size_t per_channel = cache_pool2_[0].size();
  EnsureChannels(ws_grad_pool2_, cache_pool2_.size(),
                 cache_pool2_[0].rows(), cache_pool2_[0].cols());
  for (std::size_t ch = 0; ch < ws_grad_pool2_.size(); ++ch) {
    kernels::Copy(&grad.data()[ch * per_channel],
                  ws_grad_pool2_[ch].data().data(), per_channel);
  }

  MaxPool2Backward(ws_grad_pool2_, cache_block_act_[0].rows(),
                   cache_block_act_[0].cols(), cache_pool2_argmax_,
                   ws_grad_act2_);
  // ReLU gate of the residual block.
  for (std::size_t ch = 0; ch < ws_grad_act2_.size(); ++ch) {
    kernels::ReluGate(cache_block_pre_[ch].data().data(),
                      ws_grad_act2_[ch].data().data(),
                      ws_grad_act2_[ch].size());
  }

  // Split into conv2 path and skip path (both feed pool1).
  Conv3x3Backward(ws_grad_act2_, cache_pool1_, w2_, grad_w2_, grad_b2_,
                  &ws_grad_pool1_);
  const std::size_t num_ic = cache_pool1_.size();
  for (std::size_t oc = 0; oc < ws_grad_act2_.size(); ++oc) {
    const double* g = ws_grad_act2_[oc].data().data();
    const std::size_t area = ws_grad_act2_[oc].size();
    // dWp reduction chains are independent per (oc, ic) cell: run four
    // input channels' chains interleaved against the shared gradient.
    std::size_t ic = 0;
    for (; ic + 4 <= num_ic; ic += 4) {
      const double* s0 = cache_pool1_[ic].data().data();
      const double* s1 = cache_pool1_[ic + 1].data().data();
      const double* s2 = cache_pool1_[ic + 2].data().data();
      const double* s3 = cache_pool1_[ic + 3].data().data();
      double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
      for (std::size_t i = 0; i < area; ++i) {
        const double gv = g[i];
        a0 += gv * s0[i];
        a1 += gv * s1[i];
        a2 += gv * s2[i];
        a3 += gv * s3[i];
      }
      grad_wp_(oc, ic) += a0;
      grad_wp_(oc, ic + 1) += a1;
      grad_wp_(oc, ic + 2) += a2;
      grad_wp_(oc, ic + 3) += a3;
    }
    for (; ic < num_ic; ++ic) {
      grad_wp_(oc, ic) +=
          kernels::Dot(g, cache_pool1_[ic].data().data(), area);
    }
    // The skip gradient into pool1 is element-independent; one AXPY per
    // input channel, in the legacy oc-then-ic order.
    for (ic = 0; ic < num_ic; ++ic) {
      kernels::Axpy(wp_(oc, ic), g, ws_grad_pool1_[ic].data().data(), area);
    }
  }

  MaxPool2Backward(ws_grad_pool1_, cache_conv1_act_[0].rows(),
                   cache_conv1_act_[0].cols(), cache_pool1_argmax_,
                   ws_grad_act1_);
  for (std::size_t ch = 0; ch < ws_grad_act1_.size(); ++ch) {
    kernels::ReluGate(cache_conv1_pre_[ch].data().data(),
                      ws_grad_act1_[ch].data().data(),
                      ws_grad_act1_[ch].size());
  }
  // The first conv's input gradient has no consumer — skip it.
  Conv3x3Backward(ws_grad_act1_, cache_input_, w1_, grad_w1_, grad_b1_,
                  nullptr);
}

double CnnImageModel::Fit(const std::vector<Image>& images,
                          const std::vector<std::vector<double>>& targets) {
  return Fit(images, targets, config_.epochs);
}

void CnnImageModel::EnsureOptimizer() {
  if (optimizer_initialized_) return;
  optimizer_.Register(&w1_, &grad_w1_);
  optimizer_.Register(&b1_, &grad_b1_);
  optimizer_.Register(&w2_, &grad_w2_);
  optimizer_.Register(&b2_, &grad_b2_);
  optimizer_.Register(&wp_, &grad_wp_);
  dense1_->RegisterParameters(optimizer_);
  dense2_->RegisterParameters(optimizer_);
  optimizer_initialized_ = true;
}

void CnnImageModel::EnableCheckpointing(const std::string& directory,
                                        int every_epochs) {
  if (every_epochs < 1) {
    throw std::invalid_argument(
        "CnnImageModel::EnableCheckpointing: every_epochs must be >= 1");
  }
  checkpoint_dir_ = directory;
  checkpoint_every_ = every_epochs;
}

std::uint64_t CnnImageModel::ConfigFingerprint(int epochs) const {
  robust::BinaryWriter w;
  w.WriteU64(config_.image_rows);
  w.WriteU64(config_.image_cols);
  w.WriteU64(config_.conv1_filters);
  w.WriteU64(config_.conv2_filters);
  w.WriteU64(config_.dense_dim);
  w.WriteU64(config_.num_labels);
  w.WriteI64(epochs);
  w.WriteU64(config_.batch_size);
  w.WriteDouble(config_.adam.learning_rate);
  w.WriteDouble(config_.adam.beta1);
  w.WriteDouble(config_.adam.beta2);
  w.WriteDouble(config_.adam.epsilon);
  w.WriteU64(config_.seed);
  return robust::Fnv1a(w.buffer().data(), w.buffer().size());
}

std::uint64_t CnnImageModel::DataFingerprint(
    const std::vector<Image>& images,
    const std::vector<std::vector<double>>& targets) {
  std::uint64_t hash = robust::kFnvOffsetBasis;
  const std::uint64_t n = images.size();
  hash = robust::Fnv1a(&n, sizeof(n), hash);
  for (const auto& image : images) {
    hash = robust::Fnv1a(image.data().data(),
                         image.data().size() * sizeof(double), hash);
  }
  for (const auto& target : targets) {
    hash = robust::Fnv1a(target.data(), target.size() * sizeof(double), hash);
  }
  return hash;
}

double CnnImageModel::Fit(const std::vector<Image>& images,
                          const std::vector<std::vector<double>>& targets,
                          int epochs) {
  if (images.size() != targets.size() || images.empty()) {
    throw std::invalid_argument("CnnImageModel::Fit: bad input sizes");
  }
  // Training is exact regardless of MEXI_FAST_MATH; the scope also
  // covers any inference a caller runs from inside this Fit.
  const vmath::TrainingScope exact_training;
  const obs::Span fit_span("cnn.fit");
  EnsureOptimizer();

  // Each Fit call (pretrain, fine-tune, ...) owns its own checkpoint
  // stem so phases never clobber one another; a fully-finished phase
  // resumes as a no-op load.
  std::unique_ptr<robust::CheckpointManager> checkpoint;
  double last_epoch_loss = 0.0;
  int start_epoch = 0;
  std::uint64_t config_fp = 0;
  std::uint64_t data_fp = 0;
  // The shuffle permutation is mutated in place each epoch — epoch k's
  // order is the composition of every shuffle so far. It is therefore
  // training state: it rides along in the checkpoint so a resumed run
  // visits samples in exactly the order the dead run would have.
  std::vector<std::size_t> order(images.size());
  std::iota(order.begin(), order.end(), 0);
  if (!checkpoint_dir_.empty()) {
    checkpoint = std::make_unique<robust::CheckpointManager>(
        checkpoint_dir_, "cnn_fit" + std::to_string(fit_calls_));
    config_fp = ConfigFingerprint(epochs);
    data_fp = DataFingerprint(images, targets);

    std::vector<std::uint8_t> payload;
    const robust::Status status = checkpoint->LoadLatest(&payload);
    if (status.code() != robust::StatusCode::kNotFound) {
      robust::ThrowIfError(status);
      robust::BinaryReader reader(payload);
      reader.ExpectTag("CNNR");
      if (reader.ReadU64() != config_fp || reader.ReadU64() != data_fp) {
        robust::ThrowStatus(
            robust::StatusCode::kInvalidArgument,
            "CNN checkpoint belongs to a different training phase "
            "(config/data fingerprint mismatch) — discard the checkpoint "
            "directory to start fresh");
      }
      start_epoch = static_cast<int>(reader.ReadI64());
      last_epoch_loss = reader.ReadDouble();
      const std::uint64_t order_size = reader.ReadU64();
      if (order_size != order.size()) {
        robust::ThrowStatus(
            robust::StatusCode::kCorruption,
            "CNN checkpoint shuffle order has wrong length");
      }
      for (auto& index : order) {
        const std::uint64_t value = reader.ReadU64();
        if (value >= order_size) {
          robust::ThrowStatus(
              robust::StatusCode::kCorruption,
              "CNN checkpoint shuffle order index out of range");
        }
        index = static_cast<std::size_t>(value);
      }
      LoadState(reader);
    }
  }
  ++fit_calls_;

  Matrix target_m(1, config_.num_labels);

  if (start_epoch > 0 && obs::MetricsEnabled()) {
    obs::Observability::Global().Event(
        "cnn.resume", {obs::F("start_epoch", start_epoch),
                       obs::F("loss", last_epoch_loss)});
  }

  auto& faults = robust::FaultInjector::Global();
  for (int epoch = start_epoch; epoch < epochs; ++epoch) {
    const obs::Span epoch_span("cnn.epoch");
    rng_.Shuffle(order);
    double epoch_loss = 0.0;
    double grad_norm = -1.0;  // computed only when metrics are on
    std::size_t in_batch = 0;
    for (std::size_t n = 0; n < order.size(); ++n) {
      const std::size_t idx = order[n];
      const Matrix probs = Forward(images[idx], /*training=*/true);
      target_m.SetRow(0, targets[idx]);
      double sample_loss = BinaryCrossEntropy::Loss(probs, target_m);
      if (faults.Hit(robust::FaultSite::kCnnGradient) ==
          robust::FaultKind::kNan) {
        sample_loss = std::numeric_limits<double>::quiet_NaN();
      }
      if (!std::isfinite(sample_loss)) {
        robust::ThrowStatus(robust::StatusCode::kDivergence,
                            "CNN training loss is not finite at epoch " +
                                std::to_string(epoch) + ", sample " +
                                std::to_string(n) +
                                " — aborting before weights are poisoned");
      }
      epoch_loss += sample_loss;
      Backward(BinaryCrossEntropy::Gradient(probs, target_m));
      if (++in_batch == config_.batch_size || n + 1 == order.size()) {
        // Adam zeroes the gradients inside Step, so the epoch's norm
        // must be read before the last Step. Pure observation: reads
        // only, and only when metrics are on.
        if (n + 1 == order.size() && obs::MetricsEnabled()) {
          grad_norm = std::sqrt(SumSquares(grad_w1_) + SumSquares(grad_b1_) +
                                SumSquares(grad_w2_) + SumSquares(grad_b2_) +
                                SumSquares(grad_wp_));
        }
        optimizer_.Step();
        in_batch = 0;
      }
    }
    last_epoch_loss = epoch_loss / static_cast<double>(order.size());
    if (obs::MetricsEnabled()) {
      auto& hub = obs::Observability::Global();
      hub.registry().GetCounter("cnn.epochs").Add();
      hub.registry().GetGauge("cnn.last_epoch_loss").Set(last_epoch_loss);
      if (grad_norm >= 0.0) {
        hub.registry().GetGauge("cnn.grad_norm").Set(grad_norm);
      }
      hub.Event("cnn.epoch", {obs::F("epoch", epoch),
                              obs::F("loss", last_epoch_loss),
                              obs::F("grad_norm", grad_norm)});
    }

    if (checkpoint &&
        ((epoch + 1) % checkpoint_every_ == 0 || epoch + 1 == epochs)) {
      robust::BinaryWriter writer;
      writer.WriteTag("CNNR");
      writer.WriteU64(config_fp);
      writer.WriteU64(data_fp);
      writer.WriteI64(epoch + 1);
      writer.WriteDouble(last_epoch_loss);
      writer.WriteU64(order.size());
      for (const std::size_t index : order) writer.WriteU64(index);
      SaveState(writer);
      robust::ThrowIfError(checkpoint->Commit(writer.buffer()));
    }
    switch (faults.Hit(robust::FaultSite::kEpochEnd)) {
      case robust::FaultKind::kAbort:
        robust::ThrowStatus(robust::StatusCode::kAborted,
                            "injected kill after epoch " +
                                std::to_string(epoch));
      case robust::FaultKind::kKill:
        std::_Exit(137);
      default:
        break;
    }
  }
  fitted_ = true;
  return last_epoch_loss;
}

void CnnImageModel::SaveState(robust::BinaryWriter& writer) const {
  writer.WriteTag("CNN ");
  writer.WriteU64(config_.image_rows);
  writer.WriteU64(config_.image_cols);
  writer.WriteU64(config_.conv1_filters);
  writer.WriteU64(config_.conv2_filters);
  writer.WriteU64(config_.dense_dim);
  writer.WriteU64(config_.num_labels);
  WriteMatrix(writer, w1_);
  WriteMatrix(writer, b1_);
  WriteMatrix(writer, w2_);
  WriteMatrix(writer, b2_);
  WriteMatrix(writer, wp_);
  dense1_->SaveState(writer);
  dense2_->SaveState(writer);
  robust::WriteRngState(writer, rng_);
  writer.WriteBool(fitted_);
  writer.WriteBool(optimizer_initialized_);
  if (optimizer_initialized_) optimizer_.SaveState(writer);
}

void CnnImageModel::LoadState(robust::BinaryReader& reader) {
  reader.ExpectTag("CNN ");
  const std::uint64_t rows = reader.ReadU64();
  const std::uint64_t cols = reader.ReadU64();
  const std::uint64_t c1 = reader.ReadU64();
  const std::uint64_t c2 = reader.ReadU64();
  const std::uint64_t dense_dim = reader.ReadU64();
  const std::uint64_t num_labels = reader.ReadU64();
  if (rows != config_.image_rows || cols != config_.image_cols ||
      c1 != config_.conv1_filters || c2 != config_.conv2_filters ||
      dense_dim != config_.dense_dim || num_labels != config_.num_labels) {
    robust::ThrowStatus(robust::StatusCode::kCorruption,
                        "CNN checkpoint architecture mismatch");
  }
  ReadMatrixInto(reader, w1_, "CNN conv1 weights");
  ReadMatrixInto(reader, b1_, "CNN conv1 bias");
  ReadMatrixInto(reader, w2_, "CNN conv2 weights");
  ReadMatrixInto(reader, b2_, "CNN conv2 bias");
  ReadMatrixInto(reader, wp_, "CNN projection weights");
  dense1_->LoadState(reader);
  dense2_->LoadState(reader);
  robust::ReadRngState(reader, rng_);
  fitted_ = reader.ReadBool();
  const bool had_optimizer = reader.ReadBool();
  if (had_optimizer) {
    EnsureOptimizer();
    optimizer_.LoadState(reader);
  }
}

std::vector<double> CnnImageModel::Predict(const Image& image) {
  Matrix probs = Forward(image, /*training=*/false);
  return std::move(probs.data());
}

std::vector<std::vector<double>> CnnImageModel::PredictBatch(
    const std::vector<Image>& images) const {
  PredictBatchWorkspace ws;
  return PredictBatch(images, ws);
}

std::vector<std::vector<double>> CnnImageModel::PredictBatch(
    const std::vector<Image>& images, PredictBatchWorkspace& ws) const {
  const std::size_t batch = images.size();
  std::vector<std::vector<double>> out(batch);
  if (batch == 0) return out;

  const std::size_t flat_dim = dense1_->weights().rows();
  ws.flat.resize(batch * flat_dim);

  // Conv/pool trunk, one image at a time through the same const
  // primitives Forward uses (identical arithmetic per image); only the
  // destination buffers differ — workspace-owned instead of the
  // training caches, which keeps this path const and thread-safe.
  for (std::size_t b = 0; b < batch; ++b) {
    const Image& image = images[b];
    if (image.rows() != config_.image_rows ||
        image.cols() != config_.image_cols) {
      throw std::invalid_argument("CnnImageModel: image shape mismatch");
    }
    ws.input.resize(1);
    ws.input[0] = image;
    Conv3x3Forward(ws.input, w1_, b1_, config_.conv1_filters, ws.conv1_pre);
    EnsureChannels(ws.conv1_act, ws.conv1_pre.size(), ws.conv1_pre[0].rows(),
                   ws.conv1_pre[0].cols());
    for (std::size_t ch = 0; ch < ws.conv1_pre.size(); ++ch) {
      kernels::ReluInto(ws.conv1_pre[ch].data().data(),
                        ws.conv1_act[ch].data().data(),
                        ws.conv1_pre[ch].size());
    }
    MaxPool2Forward(ws.conv1_act, ws.argmax1, ws.pool1);

    Conv3x3Forward(ws.pool1, w2_, b2_, config_.conv2_filters, ws.block_pre);
    for (std::size_t oc = 0; oc < ws.block_pre.size(); ++oc) {
      for (std::size_t ic = 0; ic < ws.pool1.size(); ++ic) {
        const double w = wp_(oc, ic);
        if (w == 0.0) continue;
        kernels::Axpy(w, ws.pool1[ic].data().data(),
                      ws.block_pre[oc].data().data(),
                      ws.block_pre[oc].size());
      }
    }
    EnsureChannels(ws.block_act, ws.block_pre.size(), ws.block_pre[0].rows(),
                   ws.block_pre[0].cols());
    for (std::size_t ch = 0; ch < ws.block_pre.size(); ++ch) {
      kernels::ReluInto(ws.block_pre[ch].data().data(),
                        ws.block_act[ch].data().data(),
                        ws.block_pre[ch].size());
    }
    MaxPool2Forward(ws.block_act, ws.argmax2, ws.pool2);

    const std::size_t per_channel = ws.pool2[0].size();
    for (std::size_t ch = 0; ch < ws.pool2.size(); ++ch) {
      kernels::Copy(ws.pool2[ch].data().data(),
                    &ws.flat[b * flat_dim + ch * per_channel], per_channel);
    }
  }

  // Dense head once over the whole [batch x flat] slab; same inference
  // gate as SigmoidLayer::Forward.
  DenseHeadForwardBatch(*dense1_, *dense2_, ws.flat.data(), batch, ws.z1,
                        ws.z2, vmath::FastMathActive());
  const std::size_t labels = config_.num_labels;
  for (std::size_t b = 0; b < batch; ++b) {
    out[b].assign(ws.z2.begin() + b * labels,
                  ws.z2.begin() + (b + 1) * labels);
  }
  return out;
}

}  // namespace mexi::ml
