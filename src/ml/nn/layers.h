#ifndef MEXI_ML_NN_LAYERS_H_
#define MEXI_ML_NN_LAYERS_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/matrix.h"
#include "ml/nn/adam.h"
#include "robust/serialize.h"
#include "stats/rng.h"

namespace mexi::ml {

/// One differentiable layer in a feed-forward `Network`.
///
/// Layers operate on mini-batches: `Forward` takes a (batch x in_dim)
/// matrix and returns (batch x out_dim); `Backward` takes the loss
/// gradient w.r.t. the output and returns the gradient w.r.t. the input
/// while accumulating parameter gradients internally.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Runs the layer. `training` switches stochastic layers (dropout).
  virtual Matrix Forward(const Matrix& input, bool training) = 0;

  /// Backpropagates. Must be called right after the matching Forward.
  virtual Matrix Backward(const Matrix& grad_output) = 0;

  /// Registers trainable parameters with `optimizer`; default: none.
  virtual void RegisterParameters(AdamOptimizer& optimizer);

  /// Checkpoint round-trip of persistent layer state (weights, RNG
  /// streams). Stateless layers serialize nothing; forward caches are
  /// transient and never saved — checkpoints are taken at batch/epoch
  /// boundaries where they are dead.
  virtual void SaveState(robust::BinaryWriter& writer) const;
  virtual void LoadState(robust::BinaryReader& reader);

  virtual std::string Name() const = 0;
};

/// Fully connected layer: output = input * W + b.
class DenseLayer : public Layer {
 public:
  /// Glorot-uniform initialization.
  DenseLayer(std::size_t in_dim, std::size_t out_dim, stats::Rng& rng);

  Matrix Forward(const Matrix& input, bool training) override;
  Matrix Backward(const Matrix& grad_output) override;
  void RegisterParameters(AdamOptimizer& optimizer) override;
  void SaveState(robust::BinaryWriter& writer) const override;
  void LoadState(robust::BinaryReader& reader) override;
  std::string Name() const override { return "Dense"; }

  const Matrix& weights() const { return weights_; }
  const Matrix& bias() const { return bias_; }

 private:
  Matrix weights_;       // in_dim x out_dim
  Matrix bias_;          // 1 x out_dim
  Matrix grad_weights_;  // accumulated by Backward
  Matrix grad_bias_;
  Matrix last_input_;
  // Per-call dW scratch: zeroed, accumulated i-streaming, then added to
  // grad_weights_ in one shot — reproducing the legacy
  // `grad_weights_ += X^T * G` composition (including its +0.0 adds)
  // without materializing the transpose or the product.
  Matrix grad_w_scratch_;
};

/// Rectified linear unit.
class ReluLayer : public Layer {
 public:
  Matrix Forward(const Matrix& input, bool training) override;
  Matrix Backward(const Matrix& grad_output) override;
  std::string Name() const override { return "ReLU"; }

 private:
  Matrix last_input_;
};

/// Elementwise logistic sigmoid.
class SigmoidLayer : public Layer {
 public:
  Matrix Forward(const Matrix& input, bool training) override;
  Matrix Backward(const Matrix& grad_output) override;
  std::string Name() const override { return "Sigmoid"; }

 private:
  Matrix last_output_;
};

/// Elementwise tanh.
class TanhLayer : public Layer {
 public:
  Matrix Forward(const Matrix& input, bool training) override;
  Matrix Backward(const Matrix& grad_output) override;
  std::string Name() const override { return "Tanh"; }

 private:
  Matrix last_output_;
};

/// Inverted dropout: active only in training mode, identity otherwise.
class DropoutLayer : public Layer {
 public:
  /// `rate` is the drop probability (the paper uses 0.5 after the LSTM).
  DropoutLayer(double rate, std::uint64_t seed);

  Matrix Forward(const Matrix& input, bool training) override;
  Matrix Backward(const Matrix& grad_output) override;
  void SaveState(robust::BinaryWriter& writer) const override;
  void LoadState(robust::BinaryReader& reader) override;
  std::string Name() const override { return "Dropout"; }

 private:
  double rate_;
  stats::Rng rng_;
  Matrix last_mask_;
  bool last_training_ = false;
};

/// Inference-only batched head shared by the LSTM and CNN PredictBatch
/// paths: dense1 -> ReLU -> dense2 -> sigmoid over a row-major
/// [batch x dense1.in] slab, leaving [batch x dense2.out] probabilities
/// in `z2` (`z1` is scratch; both are assigned, so reuse across calls
/// is allocation-free once grown). Per row this is bitwise identical to
/// the Layer::Forward inference chain: GemmAccum reproduces DenseLayer's
/// per-row GemvAccum order, the bias lands after the products exactly as
/// DenseLayer adds it, ReLU is the same ternary, and the final sigmoid
/// uses the fast vmath variant iff `fast` (callers pass
/// vmath::FastMathActive(), matching SigmoidLayer's inference gate).
void DenseHeadForwardBatch(const DenseLayer& dense1, const DenseLayer& dense2,
                           const double* input, std::size_t batch,
                           std::vector<double>& z1, std::vector<double>& z2,
                           bool fast);

}  // namespace mexi::ml

#endif  // MEXI_ML_NN_LAYERS_H_
