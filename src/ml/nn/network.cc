#include "ml/nn/network.h"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "obs/obs.h"
#include "obs/trace.h"
#include "robust/status.h"
#include "stats/descriptive.h"

namespace mexi::ml {

double BinaryCrossEntropy::Loss(const Matrix& probabilities,
                                const Matrix& targets) {
  if (probabilities.rows() != targets.rows() ||
      probabilities.cols() != targets.cols()) {
    throw std::invalid_argument("BinaryCrossEntropy: shape mismatch");
  }
  double loss = 0.0;
  for (std::size_t i = 0; i < probabilities.data().size(); ++i) {
    const double p =
        stats::Clamp(probabilities.data()[i], 1e-12, 1.0 - 1e-12);
    const double y = targets.data()[i];
    loss -= y * std::log(p) + (1.0 - y) * std::log(1.0 - p);
  }
  return loss / static_cast<double>(probabilities.data().size());
}

Matrix BinaryCrossEntropy::Gradient(const Matrix& probabilities,
                                    const Matrix& targets) {
  Matrix grad(probabilities.rows(), probabilities.cols());
  const double scale =
      1.0 / static_cast<double>(probabilities.data().size());
  for (std::size_t i = 0; i < grad.data().size(); ++i) {
    const double p =
        stats::Clamp(probabilities.data()[i], 1e-12, 1.0 - 1e-12);
    const double y = targets.data()[i];
    grad.data()[i] = scale * (p - y) / (p * (1.0 - p));
  }
  return grad;
}

Network::Network(const AdamOptimizer::Config& adam) : optimizer_(adam) {}

void Network::Add(std::unique_ptr<Layer> layer) {
  if (optimizer_initialized_) {
    throw std::logic_error("Network::Add after training started");
  }
  layers_.push_back(std::move(layer));
}

Matrix Network::Forward(const Matrix& input, bool training) {
  Matrix current = input;
  for (auto& layer : layers_) current = layer->Forward(current, training);
  return current;
}

void Network::Backward(const Matrix& grad_output) {
  Matrix grad = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    grad = (*it)->Backward(grad);
  }
}

Matrix Network::Predict(const Matrix& input) {
  return Forward(input, /*training=*/false);
}

Matrix Network::PredictBatch(const Matrix& inputs) {
  return Forward(inputs, /*training=*/false);
}

double Network::TrainStep(const Matrix& inputs, const Matrix& targets) {
  if (!optimizer_initialized_) {
    for (auto& layer : layers_) layer->RegisterParameters(optimizer_);
    optimizer_initialized_ = true;
  }
  const Matrix probabilities = Forward(inputs, /*training=*/true);
  const double loss = BinaryCrossEntropy::Loss(probabilities, targets);
  Backward(BinaryCrossEntropy::Gradient(probabilities, targets));
  optimizer_.Step();
  return loss;
}

double Network::Fit(const Matrix& inputs, const Matrix& targets, int epochs,
                    std::size_t batch_size, stats::Rng& rng) {
  return Fit(inputs, targets, epochs, batch_size, rng, FitHooks{});
}

double Network::Fit(const Matrix& inputs, const Matrix& targets, int epochs,
                    std::size_t batch_size, stats::Rng& rng,
                    const FitHooks& hooks) {
  if (inputs.rows() != targets.rows()) {
    throw std::invalid_argument("Network::Fit: row mismatch");
  }
  const obs::Span fit_span("nn.fit");
  if (batch_size == 0) batch_size = inputs.rows();
  double last_epoch_loss = 0.0;
  std::vector<std::size_t> own_order;
  std::vector<std::size_t>* order = hooks.order;
  if (order == nullptr) {
    own_order.resize(inputs.rows());
    std::iota(own_order.begin(), own_order.end(), 0);
    order = &own_order;
  } else if (order->size() != inputs.rows()) {
    throw std::invalid_argument("Network::Fit: hooks.order has wrong length");
  }

  for (int epoch = hooks.start_epoch; epoch < epochs; ++epoch) {
    const auto epoch_start = std::chrono::steady_clock::now();
    rng.Shuffle(*order);
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < order->size(); start += batch_size) {
      const std::size_t end = std::min(start + batch_size, order->size());
      Matrix batch_x(end - start, inputs.cols());
      Matrix batch_y(end - start, targets.cols());
      for (std::size_t i = start; i < end; ++i) {
        batch_x.SetRow(i - start, inputs.Row((*order)[i]));
        batch_y.SetRow(i - start, targets.Row((*order)[i]));
      }
      epoch_loss += TrainStep(batch_x, batch_y);
      ++batches;
    }
    last_epoch_loss = batches > 0 ? epoch_loss / static_cast<double>(batches)
                                  : 0.0;
    if (obs::MetricsEnabled()) {
      auto& registry = obs::Registry();
      registry.GetCounter("nn.epochs").Add();
      registry.GetGauge("nn.last_epoch_loss").Set(last_epoch_loss);
      registry.GetTimer("nn.epoch").Observe(
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        epoch_start)
              .count());
    }
    if (hooks.after_epoch) hooks.after_epoch(epoch + 1, last_epoch_loss);
  }
  return last_epoch_loss;
}

void Network::SaveState(robust::BinaryWriter& writer) const {
  writer.WriteTag("NETW");
  writer.WriteU64(layers_.size());
  for (const auto& layer : layers_) {
    writer.WriteString(layer->Name());
    layer->SaveState(writer);
  }
  writer.WriteBool(optimizer_initialized_);
  if (optimizer_initialized_) optimizer_.SaveState(writer);
}

void Network::LoadState(robust::BinaryReader& reader) {
  reader.ExpectTag("NETW");
  const std::uint64_t count = reader.ReadU64();
  if (count != layers_.size()) {
    robust::ThrowStatus(robust::StatusCode::kCorruption,
                        "layer count mismatch: stored " +
                            std::to_string(count) + ", model has " +
                            std::to_string(layers_.size()));
  }
  for (auto& layer : layers_) {
    const std::string name = reader.ReadString();
    if (name != layer->Name()) {
      robust::ThrowStatus(robust::StatusCode::kCorruption,
                          "layer type mismatch: stored '" + name +
                              "', model has '" + layer->Name() + "'");
    }
    layer->LoadState(reader);
  }
  const bool had_optimizer = reader.ReadBool();
  if (had_optimizer) {
    if (!optimizer_initialized_) {
      for (auto& layer : layers_) layer->RegisterParameters(optimizer_);
      optimizer_initialized_ = true;
    }
    optimizer_.LoadState(reader);
  }
}

}  // namespace mexi::ml
