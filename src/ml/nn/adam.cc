#include "ml/nn/adam.h"

#include <cmath>
#include <stdexcept>

#include "ml/kernels.h"
#include "ml/serialize.h"
#include "robust/status.h"

namespace mexi::ml {

void AdamOptimizer::Register(Matrix* parameter, Matrix* gradient) {
  if (parameter == nullptr || gradient == nullptr) {
    throw std::invalid_argument("AdamOptimizer::Register: null pointer");
  }
  if (parameter->rows() != gradient->rows() ||
      parameter->cols() != gradient->cols()) {
    throw std::invalid_argument("AdamOptimizer::Register: shape mismatch");
  }
  Slot slot{parameter, gradient,
            Matrix(parameter->rows(), parameter->cols()),
            Matrix(parameter->rows(), parameter->cols())};
  params_.push_back(std::move(slot));
}

void AdamOptimizer::Step() {
  ++t_;
  const double bias1 = 1.0 - std::pow(config_.beta1, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(config_.beta2, static_cast<double>(t_));
  for (auto& slot : params_) {
    kernels::AdamStep(slot.param->data().data(), slot.grad->data().data(),
                      slot.m.data().data(), slot.v.data().data(),
                      slot.param->data().size(), config_.beta1, config_.beta2,
                      bias1, bias2, config_.learning_rate, config_.epsilon);
  }
}

void AdamOptimizer::SaveState(robust::BinaryWriter& writer) const {
  writer.WriteTag("ADAM");
  writer.WriteI64(t_);
  writer.WriteU64(params_.size());
  for (const auto& slot : params_) {
    WriteMatrix(writer, slot.m);
    WriteMatrix(writer, slot.v);
  }
}

void AdamOptimizer::LoadState(robust::BinaryReader& reader) {
  reader.ExpectTag("ADAM");
  const std::int64_t t = reader.ReadI64();
  const std::uint64_t count = reader.ReadU64();
  if (count != params_.size()) {
    robust::ThrowStatus(robust::StatusCode::kCorruption,
                        "optimizer slot count mismatch: stored " +
                            std::to_string(count) + ", registered " +
                            std::to_string(params_.size()));
  }
  for (auto& slot : params_) {
    ReadMatrixInto(reader, slot.m, "Adam first moment");
    ReadMatrixInto(reader, slot.v, "Adam second moment");
  }
  t_ = t;
}

}  // namespace mexi::ml
