#include "ml/nn/adam.h"

#include <cmath>
#include <stdexcept>

namespace mexi::ml {

void AdamOptimizer::Register(Matrix* parameter, Matrix* gradient) {
  if (parameter == nullptr || gradient == nullptr) {
    throw std::invalid_argument("AdamOptimizer::Register: null pointer");
  }
  if (parameter->rows() != gradient->rows() ||
      parameter->cols() != gradient->cols()) {
    throw std::invalid_argument("AdamOptimizer::Register: shape mismatch");
  }
  Slot slot{parameter, gradient,
            Matrix(parameter->rows(), parameter->cols()),
            Matrix(parameter->rows(), parameter->cols())};
  params_.push_back(std::move(slot));
}

void AdamOptimizer::Step() {
  ++t_;
  const double bias1 = 1.0 - std::pow(config_.beta1, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(config_.beta2, static_cast<double>(t_));
  for (auto& slot : params_) {
    auto& p = slot.param->data();
    auto& g = slot.grad->data();
    auto& m = slot.m.data();
    auto& v = slot.v.data();
    for (std::size_t i = 0; i < p.size(); ++i) {
      m[i] = config_.beta1 * m[i] + (1.0 - config_.beta1) * g[i];
      v[i] = config_.beta2 * v[i] + (1.0 - config_.beta2) * g[i] * g[i];
      const double m_hat = m[i] / bias1;
      const double v_hat = v[i] / bias2;
      p[i] -= config_.learning_rate * m_hat /
              (std::sqrt(v_hat) + config_.epsilon);
      g[i] = 0.0;
    }
  }
}

}  // namespace mexi::ml
