#include "ml/nn/adam.h"

#include <cmath>
#include <stdexcept>

#include "ml/serialize.h"
#include "robust/status.h"

namespace mexi::ml {

void AdamOptimizer::Register(Matrix* parameter, Matrix* gradient) {
  if (parameter == nullptr || gradient == nullptr) {
    throw std::invalid_argument("AdamOptimizer::Register: null pointer");
  }
  if (parameter->rows() != gradient->rows() ||
      parameter->cols() != gradient->cols()) {
    throw std::invalid_argument("AdamOptimizer::Register: shape mismatch");
  }
  Slot slot{parameter, gradient,
            Matrix(parameter->rows(), parameter->cols()),
            Matrix(parameter->rows(), parameter->cols())};
  params_.push_back(std::move(slot));
}

void AdamOptimizer::Step() {
  ++t_;
  const double bias1 = 1.0 - std::pow(config_.beta1, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(config_.beta2, static_cast<double>(t_));
  for (auto& slot : params_) {
    auto& p = slot.param->data();
    auto& g = slot.grad->data();
    auto& m = slot.m.data();
    auto& v = slot.v.data();
    for (std::size_t i = 0; i < p.size(); ++i) {
      m[i] = config_.beta1 * m[i] + (1.0 - config_.beta1) * g[i];
      v[i] = config_.beta2 * v[i] + (1.0 - config_.beta2) * g[i] * g[i];
      const double m_hat = m[i] / bias1;
      const double v_hat = v[i] / bias2;
      p[i] -= config_.learning_rate * m_hat /
              (std::sqrt(v_hat) + config_.epsilon);
      g[i] = 0.0;
    }
  }
}

void AdamOptimizer::SaveState(robust::BinaryWriter& writer) const {
  writer.WriteTag("ADAM");
  writer.WriteI64(t_);
  writer.WriteU64(params_.size());
  for (const auto& slot : params_) {
    WriteMatrix(writer, slot.m);
    WriteMatrix(writer, slot.v);
  }
}

void AdamOptimizer::LoadState(robust::BinaryReader& reader) {
  reader.ExpectTag("ADAM");
  const std::int64_t t = reader.ReadI64();
  const std::uint64_t count = reader.ReadU64();
  if (count != params_.size()) {
    robust::ThrowStatus(robust::StatusCode::kCorruption,
                        "optimizer slot count mismatch: stored " +
                            std::to_string(count) + ", registered " +
                            std::to_string(params_.size()));
  }
  for (auto& slot : params_) {
    ReadMatrixInto(reader, slot.m, "Adam first moment");
    ReadMatrixInto(reader, slot.v, "Adam second moment");
  }
  t_ = t;
}

}  // namespace mexi::ml
