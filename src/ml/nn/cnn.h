#ifndef MEXI_ML_NN_CNN_H_
#define MEXI_ML_NN_CNN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ml/matrix.h"
#include "ml/nn/adam.h"
#include "ml/nn/layers.h"
#include "robust/checkpoint.h"
#include "stats/rng.h"

namespace mexi::ml {

/// A single-channel image (e.g. a movement heat map), rows x cols.
using Image = Matrix;

/// Multi-label image classifier with one residual block:
///
///   conv 3x3 (C1) -> ReLU -> maxpool 2x2
///   -> [conv 3x3 (C2) + 1x1 projection skip] -> ReLU -> maxpool 2x2
///   -> flatten -> dense + ReLU -> dense -> sigmoid
///
/// This is the repo's stand-in for the paper's fine-tuned ResNet over
/// movement heat maps (Phi_Spa): the residual-block-plus-fine-tuning
/// recipe at a scale that trains in seconds on one core. Use `Fit` on a
/// synthetic pretext task first, then `Fit` again on the real heat maps
/// to reproduce the pretrain -> fine-tune protocol.
///
/// Every intermediate (activation channels, pool argmaxes, gradient
/// channels, the flattened feature row) lives in a model-owned workspace
/// buffer sized on the first Forward/Backward and reused for every
/// sample and epoch after that; the per-sample training loop allocates
/// nothing. Arithmetic routes through ml::kernels and preserves the
/// pre-workspace accumulation order bitwise (tests/test_golden_nn.cc).
class CnnImageModel {
 public:
  struct Config {
    std::size_t image_rows = 24;
    std::size_t image_cols = 32;
    std::size_t conv1_filters = 4;
    std::size_t conv2_filters = 8;
    std::size_t dense_dim = 24;
    std::size_t num_labels = 4;
    int epochs = 12;
    std::size_t batch_size = 8;
    AdamOptimizer::Config adam;
    std::uint64_t seed = 13;
  };

  explicit CnnImageModel(const Config& config);

  /// Trains on `images` with multi-label targets in {0,1}^num_labels.
  /// Every image must match the configured shape. Returns final-epoch
  /// mean loss. Calling Fit again fine-tunes the existing weights.
  double Fit(const std::vector<Image>& images,
             const std::vector<std::vector<double>>& targets);

  /// Same as Fit but with an explicit epoch budget (used to give the
  /// pretraining phase a different budget than fine-tuning).
  double Fit(const std::vector<Image>& images,
             const std::vector<std::vector<double>>& targets, int epochs);

  /// Label probabilities for one image.
  std::vector<double> Predict(const Image& image);

  /// Scratch buffers for PredictBatch: the conv/pool pipeline for the
  /// image being folded in, plus the [batch x flat] feature slab and
  /// head slabs. Pass the same instance back in across chunks to keep
  /// serving allocation-free after the first call.
  struct PredictBatchWorkspace {
    std::vector<Matrix> input, conv1_pre, conv1_act, pool1;
    std::vector<Matrix> block_pre, block_act, pool2;
    std::vector<std::vector<std::size_t>> argmax1, argmax2;
    std::vector<double> flat;    // [batch x C2*pooled area]
    std::vector<double> z1, z2;  // head slabs
  };

  /// Label probabilities for a batch of images (inference mode). The
  /// conv/pool trunk runs per image through the exact Forward
  /// primitives; the dense head runs once as [batch x flat] GEMM. In
  /// exact mode the result is bitwise identical per image to Predict at
  /// every batch size; in fast mode, to the single-image fast path.
  /// Const and allocation-isolated: concurrent calls on one fitted
  /// model are safe, unlike Predict which reuses the training caches.
  std::vector<std::vector<double>> PredictBatch(
      const std::vector<Image>& images) const;
  std::vector<std::vector<double>> PredictBatch(
      const std::vector<Image>& images, PredictBatchWorkspace& ws) const;

  const Config& config() const { return config_; }
  bool fitted() const { return fitted_; }

  /// Complete trainable state: conv/projection weights, head layers,
  /// the RNG stream, and (when initialized) the Adam moments. A fresh
  /// model with the same Config restores to a bitwise-identical
  /// continuation point.
  void SaveState(robust::BinaryWriter& writer) const;
  void LoadState(robust::BinaryReader& reader);

  /// Arms epoch-level checkpointing under `directory`. Because the
  /// pretrain -> fine-tune protocol calls Fit twice, each Fit call
  /// checkpoints under its own stem (cnn_fit0, cnn_fit1, ...) so a
  /// killed fine-tune resumes without disturbing the completed
  /// pretrain phase's checkpoint.
  void EnableCheckpointing(const std::string& directory,
                           int every_epochs = 1);

 private:
  using Channels = std::vector<Matrix>;

  /// Full forward pass into the workspace buffers; returns the
  /// 1 x num_labels probability row.
  Matrix Forward(const Image& image, bool training);

  /// Backward pass from dLoss/dProbabilities; requires a prior Forward.
  void Backward(const Matrix& grad_prob);

  /// Conv/pool primitives write into caller-owned workspace buffers
  /// (resized on first use, reused afterwards) instead of returning
  /// fresh channel vectors.
  void Conv3x3Forward(const Channels& in, const Matrix& weights,
                      const Matrix& bias, std::size_t out_channels,
                      Channels& out) const;
  /// `grad_in` may be null for the first layer, whose input gradient
  /// nobody consumes (the legacy code computed and discarded it).
  void Conv3x3Backward(const Channels& grad_out, const Channels& in,
                       const Matrix& weights, Matrix& grad_weights,
                       Matrix& grad_bias, Channels* grad_in) const;
  void MaxPool2Forward(const Channels& in,
                       std::vector<std::vector<std::size_t>>& argmax,
                       Channels& out) const;
  void MaxPool2Backward(const Channels& grad_out, std::size_t in_rows,
                        std::size_t in_cols,
                        const std::vector<std::vector<std::size_t>>& argmax,
                        Channels& grad_in) const;

  /// Registers parameters with the optimizer exactly once, in the
  /// fixed order the checkpoint format relies on.
  void EnsureOptimizer();

  /// FNV-1a fingerprints embedded in training checkpoints so a resume
  /// against a different setup is rejected instead of silently blended.
  std::uint64_t ConfigFingerprint(int epochs) const;
  static std::uint64_t DataFingerprint(
      const std::vector<Image>& images,
      const std::vector<std::vector<double>>& targets);

  Config config_;
  stats::Rng rng_;

  // conv1: rows = out channel, cols = 3*3 (single input channel).
  Matrix w1_, b1_, grad_w1_, grad_b1_;
  // conv2: rows = out channel, cols = C1*3*3.
  Matrix w2_, b2_, grad_w2_, grad_b2_;
  // 1x1 projection for the residual skip: rows = out ch, cols = in ch.
  Matrix wp_, grad_wp_;

  std::unique_ptr<DenseLayer> dense1_;
  std::unique_ptr<ReluLayer> relu_dense_;
  std::unique_ptr<DenseLayer> dense2_;
  std::unique_ptr<SigmoidLayer> sigmoid_;

  AdamOptimizer optimizer_;
  bool optimizer_initialized_ = false;
  bool fitted_ = false;

  std::string checkpoint_dir_;
  int checkpoint_every_ = 1;
  int fit_calls_ = 0;  // keys per-Fit checkpoint stems across phases

  // Forward workspace (single-sample training): written by every
  // Forward, read by Backward. Buffers are shape-stable after the first
  // sample, so reuse never reallocates.
  Channels cache_input_;
  Channels cache_conv1_pre_;   // pre-ReLU
  Channels cache_conv1_act_;   // post-ReLU
  Channels cache_pool1_;
  std::vector<std::vector<std::size_t>> cache_pool1_argmax_;
  Channels cache_block_pre_;   // conv2 + skip, pre-ReLU
  Channels cache_block_act_;
  Channels cache_pool2_;
  std::vector<std::vector<std::size_t>> cache_pool2_argmax_;
  Matrix flat_;                // 1 x (C2 * pooled area)

  // Backward workspace.
  Channels ws_grad_pool2_;
  Channels ws_grad_act2_;
  Channels ws_grad_pool1_;
  Channels ws_grad_act1_;
};

}  // namespace mexi::ml

#endif  // MEXI_ML_NN_CNN_H_
