#ifndef MEXI_ML_NN_NETWORK_H_
#define MEXI_ML_NN_NETWORK_H_

#include <functional>
#include <memory>
#include <vector>

#include "ml/matrix.h"
#include "ml/nn/adam.h"
#include "ml/nn/layers.h"

namespace mexi::ml {

/// Binary cross-entropy over sigmoid probabilities, averaged over all
/// (example, label) cells. `Gradient` returns dLoss/dProb for Backward.
struct BinaryCrossEntropy {
  static double Loss(const Matrix& probabilities, const Matrix& targets);
  static Matrix Gradient(const Matrix& probabilities, const Matrix& targets);
};

/// A feed-forward sequential network over `Layer`s with an Adam training
/// loop. Supports multi-label heads: the final layer is typically a
/// `SigmoidLayer` of width |L| and training minimizes per-label binary
/// cross entropy — exactly the paper's setup for the fused models.
class Network {
 public:
  explicit Network(const AdamOptimizer::Config& adam = {});

  /// Appends a layer (takes ownership). Layers added after the first
  /// training step are rejected.
  void Add(std::unique_ptr<Layer> layer);

  /// Forward pass in inference mode.
  Matrix Predict(const Matrix& input);

  /// Batched inference entry point: one forward pass over a
  /// [batch x in] row-major table. Dense layers process rows through
  /// independent per-row kernels and the elementwise layers are
  /// position-independent (in fast mode too), so row i of the result is
  /// bitwise identical to Predict on that row alone at every batch
  /// size. Not thread-safe (layer caches) — shard above, not across,
  /// one Network.
  Matrix PredictBatch(const Matrix& inputs);

  /// Runs one gradient step on (inputs, targets); returns the batch loss.
  double TrainStep(const Matrix& inputs, const Matrix& targets);

  /// Epoch-granularity extension points for Fit. Everything is optional;
  /// the default-constructed value reproduces the plain Fit behavior
  /// exactly (bitwise — the permutation seen by the shuffle is the same
  /// iota either way).
  struct FitHooks {
    /// First epoch to run (epochs before it are assumed already applied
    /// to the weights/optimizer/rng — i.e. restored from a checkpoint).
    int start_epoch = 0;
    /// In/out shuffle permutation. The permutation is mutated in place
    /// each epoch — epoch k's order is the composition of every shuffle
    /// so far — so it is training state: callers that checkpoint must
    /// persist and restore it through this pointer. nullptr = Fit owns a
    /// private iota permutation.
    std::vector<std::size_t>* order = nullptr;
    /// Called after each completed epoch with (epochs_done, mean epoch
    /// loss), after the rng/order/weights reflect that epoch. This is
    /// the checkpoint-commit point; it may throw to abort training.
    std::function<void(int, double)> after_epoch;
  };

  /// Epoch-based training on a fixed table with mini-batches.
  /// Returns the loss of the final epoch.
  double Fit(const Matrix& inputs, const Matrix& targets, int epochs,
             std::size_t batch_size, stats::Rng& rng);
  double Fit(const Matrix& inputs, const Matrix& targets, int epochs,
             std::size_t batch_size, stats::Rng& rng, const FitHooks& hooks);

  std::size_t NumLayers() const { return layers_.size(); }

  /// Serializes every layer's persistent state plus the optimizer. The
  /// loading Network must have been assembled with the same layer
  /// sequence (same Add calls); mismatches throw
  /// StatusError(kCorruption).
  void SaveState(robust::BinaryWriter& writer) const;
  void LoadState(robust::BinaryReader& reader);

 private:
  Matrix Forward(const Matrix& input, bool training);
  void Backward(const Matrix& grad_output);

  std::vector<std::unique_ptr<Layer>> layers_;
  AdamOptimizer optimizer_;
  bool optimizer_initialized_ = false;
};

}  // namespace mexi::ml

#endif  // MEXI_ML_NN_NETWORK_H_
