#ifndef MEXI_ML_NN_NETWORK_H_
#define MEXI_ML_NN_NETWORK_H_

#include <memory>
#include <vector>

#include "ml/matrix.h"
#include "ml/nn/adam.h"
#include "ml/nn/layers.h"

namespace mexi::ml {

/// Binary cross-entropy over sigmoid probabilities, averaged over all
/// (example, label) cells. `Gradient` returns dLoss/dProb for Backward.
struct BinaryCrossEntropy {
  static double Loss(const Matrix& probabilities, const Matrix& targets);
  static Matrix Gradient(const Matrix& probabilities, const Matrix& targets);
};

/// A feed-forward sequential network over `Layer`s with an Adam training
/// loop. Supports multi-label heads: the final layer is typically a
/// `SigmoidLayer` of width |L| and training minimizes per-label binary
/// cross entropy — exactly the paper's setup for the fused models.
class Network {
 public:
  explicit Network(const AdamOptimizer::Config& adam = {});

  /// Appends a layer (takes ownership). Layers added after the first
  /// training step are rejected.
  void Add(std::unique_ptr<Layer> layer);

  /// Forward pass in inference mode.
  Matrix Predict(const Matrix& input);

  /// Runs one gradient step on (inputs, targets); returns the batch loss.
  double TrainStep(const Matrix& inputs, const Matrix& targets);

  /// Epoch-based training on a fixed table with mini-batches.
  /// Returns the loss of the final epoch.
  double Fit(const Matrix& inputs, const Matrix& targets, int epochs,
             std::size_t batch_size, stats::Rng& rng);

  std::size_t NumLayers() const { return layers_.size(); }

  /// Serializes every layer's persistent state plus the optimizer. The
  /// loading Network must have been assembled with the same layer
  /// sequence (same Add calls); mismatches throw
  /// StatusError(kCorruption).
  void SaveState(robust::BinaryWriter& writer) const;
  void LoadState(robust::BinaryReader& reader);

 private:
  Matrix Forward(const Matrix& input, bool training);
  void Backward(const Matrix& grad_output);

  std::vector<std::unique_ptr<Layer>> layers_;
  AdamOptimizer optimizer_;
  bool optimizer_initialized_ = false;
};

}  // namespace mexi::ml

#endif  // MEXI_ML_NN_NETWORK_H_
