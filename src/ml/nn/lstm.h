#ifndef MEXI_ML_NN_LSTM_H_
#define MEXI_ML_NN_LSTM_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "ml/matrix.h"
#include "ml/nn/adam.h"
#include "ml/nn/layers.h"
#include "stats/rng.h"

namespace mexi::ml {

/// A variable-length sequence: one feature vector per timestep.
using Sequence = std::vector<std::vector<double>>;

/// Multi-label sequence classifier: LSTM -> dropout -> dense+ReLU ->
/// dense -> sigmoid, trained with Adam on per-label binary cross
/// entropy.
///
/// This is the paper's Phi_Seq network ("following an LSTM hidden layer
/// of 64 nodes, we perform a 0.5 dropout and a 100 nodes fully connected
/// layer with a ReLU activation"), with the layer widths scaled down for
/// the single-core target (configurable). Backpropagation through time
/// is implemented from scratch; see the .cc for the cell equations.
class LstmSequenceModel {
 public:
  struct Config {
    std::size_t input_dim = 3;
    std::size_t hidden_dim = 24;
    std::size_t dense_dim = 32;
    std::size_t num_labels = 4;
    double dropout = 0.5;
    int epochs = 20;
    std::size_t batch_size = 8;
    AdamOptimizer::Config adam;
    std::uint64_t seed = 7;
  };

  explicit LstmSequenceModel(const Config& config);

  /// Trains on `sequences` with multi-label targets (targets[i] has
  /// `num_labels` values in {0,1}). Returns the final-epoch mean loss.
  /// Sequences must be non-ragged in feature width; empty sequences are
  /// allowed and contribute a zero hidden state.
  double Fit(const std::vector<Sequence>& sequences,
             const std::vector<std::vector<double>>& targets);

  /// Label probabilities for one sequence (inference mode).
  std::vector<double> Predict(const Sequence& sequence);

  const Config& config() const { return config_; }
  bool fitted() const { return fitted_; }

 private:
  /// Runs the LSTM over `sequence`, caching activations when `cache` is
  /// set, and returns the final hidden state as a 1 x hidden matrix.
  Matrix RunLstm(const Sequence& sequence, bool cache);

  /// BPTT from dL/dh_T; accumulates into grad_wx_/grad_wh_/grad_b_.
  void BackwardLstm(const Matrix& grad_h_final);

  /// Head forward + optional loss backward for one sequence.
  std::vector<double> HeadForward(const Matrix& h_final, bool training);
  Matrix HeadBackward(const Matrix& grad_out);

  Config config_;
  stats::Rng rng_;

  // LSTM parameters; gate order along the 4H axis is [i, f, g, o].
  Matrix wx_;       // input_dim x 4H
  Matrix wh_;       // H x 4H
  Matrix b_;        // 1 x 4H
  Matrix grad_wx_;
  Matrix grad_wh_;
  Matrix grad_b_;

  // Head layers (shared optimizer).
  std::unique_ptr<DropoutLayer> dropout_;
  std::unique_ptr<DenseLayer> dense1_;
  std::unique_ptr<ReluLayer> relu_;
  std::unique_ptr<DenseLayer> dense2_;
  std::unique_ptr<SigmoidLayer> sigmoid_;

  AdamOptimizer optimizer_;
  bool optimizer_initialized_ = false;
  bool fitted_ = false;

  // Per-sequence caches for BPTT.
  struct StepCache {
    std::vector<double> x;
    std::vector<double> h_prev, c_prev;
    std::vector<double> i, f, g, o;
    std::vector<double> c, tanh_c;
  };
  std::vector<StepCache> cache_;
};

}  // namespace mexi::ml

#endif  // MEXI_ML_NN_LSTM_H_
