#ifndef MEXI_ML_NN_LSTM_H_
#define MEXI_ML_NN_LSTM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ml/matrix.h"
#include "ml/nn/adam.h"
#include "ml/nn/layers.h"
#include "robust/checkpoint.h"
#include "stats/rng.h"

namespace mexi::ml {

/// A variable-length sequence: one feature vector per timestep.
using Sequence = std::vector<std::vector<double>>;

/// Multi-label sequence classifier: LSTM -> dropout -> dense+ReLU ->
/// dense -> sigmoid, trained with Adam on per-label binary cross
/// entropy.
///
/// This is the paper's Phi_Seq network ("following an LSTM hidden layer
/// of 64 nodes, we perform a 0.5 dropout and a 100 nodes fully connected
/// layer with a ReLU activation"), with the layer widths scaled down for
/// the single-core target (configurable). Backpropagation through time
/// is implemented from scratch; see the .cc for the cell equations.
///
/// All per-timestep state lives in one flat structure-of-arrays
/// workspace owned by the model and sized once (growing only when a
/// longer sequence appears), so Fit/Predict allocate nothing in the
/// timestep loop. The cell math routes through ml::kernels and preserves
/// the pre-workspace accumulation order bitwise (tests/test_golden_nn.cc
/// locks this in).
class LstmSequenceModel {
 public:
  struct Config {
    std::size_t input_dim = 3;
    std::size_t hidden_dim = 24;
    std::size_t dense_dim = 32;
    std::size_t num_labels = 4;
    double dropout = 0.5;
    int epochs = 20;
    std::size_t batch_size = 8;
    AdamOptimizer::Config adam;
    std::uint64_t seed = 7;
  };

  explicit LstmSequenceModel(const Config& config);

  /// Trains on `sequences` with multi-label targets (targets[i] has
  /// `num_labels` values in {0,1}). Returns the final-epoch mean loss.
  /// Sequences must be non-ragged in feature width; empty sequences are
  /// allowed and contribute a zero hidden state.
  double Fit(const std::vector<Sequence>& sequences,
             const std::vector<std::vector<double>>& targets);

  /// Label probabilities for one sequence (inference mode).
  std::vector<double> Predict(const Sequence& sequence);

  /// Scratch slabs for PredictBatch. Callers serving chunk after chunk
  /// pass the same instance back in so the slabs are allocated once;
  /// resized as needed, never shrunk.
  struct PredictBatchWorkspace {
    std::vector<double> x;       // [active x input_dim] step inputs
    std::vector<double> h;       // [batch x H] lane-major hidden state
    std::vector<double> c;       // [batch x H] lane-major cell state
    std::vector<double> a;       // [4 x active x H] gate-block slabs
    std::vector<double> gates;   // activated gates, same layout as `a`
    std::vector<double> tanh_c;  // [active x H]
    std::vector<double> z1, z2;  // head slabs
    std::vector<std::size_t> perm;
  };

  /// Label probabilities for a batch of sequences (inference mode).
  /// Per-timestep work is [active_lanes x H] GEMM (kernels::GemmAccum)
  /// with one fused vmath call per gate slab; ragged lengths are
  /// handled by length-sorted lane packing (see DESIGN.md "Batched
  /// inference & lane packing"). In exact mode the result is bitwise
  /// identical per sequence to Predict at every batch size; in fast
  /// mode it is bitwise identical to the single-sequence fast path
  /// (fast activations are position-independent per element). Const
  /// and allocation-isolated: concurrent calls on one fitted model are
  /// safe, unlike Predict which reuses the training workspace.
  std::vector<std::vector<double>> PredictBatch(
      const std::vector<Sequence>& sequences) const;
  std::vector<std::vector<double>> PredictBatch(
      const std::vector<Sequence>& sequences,
      PredictBatchWorkspace& ws) const;

  /// Carried state for incremental one-step-at-a-time inference. `h`/`c`
  /// are the live hidden/cell state after the steps consumed so far; the
  /// rest are per-step scratch slabs (PR-6 style: sized once, reused
  /// every step) so StreamStep/StreamProbabilities never allocate after
  /// InitStream. Caller-owned, so any number of concurrent streams can
  /// share one const fitted model.
  struct StreamState {
    std::vector<double> h;       // H carried hidden state
    std::vector<double> c;       // H carried cell state
    std::vector<double> a;       // 4H pre-activation scratch
    std::vector<double> gates;   // 4H activated-gate scratch
    std::vector<double> tanh_c;  // H scratch
    std::vector<double> z1, z2;  // head slabs (1 x dense, 1 x labels)
    std::size_t steps = 0;       // timesteps consumed
  };

  /// Zeroes `state` to the pre-sequence hidden/cell state and sizes the
  /// scratch slabs for this model's shape.
  void InitStream(StreamState& state) const;

  /// Advances the carried state by one timestep. The step body performs
  /// the exact op sequence of RunLstm's inference path (bias copy, two
  /// GEMV accumulations, fused cell forward — fast-math twins when
  /// vmath::FastMathActive()), so after feeding a sequence step by step,
  /// `state.h` is bitwise identical to RunLstm over the whole sequence —
  /// the prefix is never re-run.
  void StreamStep(const std::vector<double>& x, StreamState& state) const;

  /// Label probabilities from the carried hidden state: the inference
  /// head (dense+ReLU -> dense+sigmoid) over `state.h` via the PR-6
  /// DenseHeadForwardBatch slab path at batch 1, bitwise identical to
  /// Predict of the consumed prefix in both math modes. Const and
  /// non-destructive: the stream can keep advancing afterwards.
  std::vector<double> StreamProbabilities(StreamState& state) const;

  const Config& config() const { return config_; }
  bool fitted() const { return fitted_; }

  /// Complete trainable state: weights, head layers, both RNG streams,
  /// and (when initialized) the Adam moments. A fresh model constructed
  /// with the same Config restores to a bitwise-identical continuation
  /// point. Shape mismatches throw StatusError(kCorruption).
  void SaveState(robust::BinaryWriter& writer) const;
  void LoadState(robust::BinaryReader& reader);

  /// Arms epoch-level checkpointing: Fit commits a checkpoint into
  /// `directory` every `every_epochs` epochs (and always after the
  /// final one) via the atomic two-generation protocol, and — when a
  /// valid checkpoint for the same config and training data already
  /// exists there — resumes from it instead of starting over. A
  /// resumed run's outputs are bitwise identical to an uninterrupted
  /// run's (tests/test_chaos_resume.cc locks this in).
  void EnableCheckpointing(const std::string& directory,
                           int every_epochs = 1);

 private:
  /// Registers parameters with the optimizer exactly once, in the
  /// fixed order the checkpoint format relies on.
  void EnsureOptimizer();

  /// FNV-1a over the hyper-parameters / the training data; both are
  /// embedded in training checkpoints so a resume against a different
  /// setup is rejected instead of silently blended.
  std::uint64_t ConfigFingerprint() const;
  static std::uint64_t DataFingerprint(
      const std::vector<Sequence>& sequences,
      const std::vector<std::vector<double>>& targets);

  /// Attempts to restore an in-progress run; returns the number of
  /// epochs already completed (0 = fresh start). `order` is the shuffle
  /// permutation the epoch loop mutates in place — it accumulates across
  /// epochs, so it is part of the training state and must survive a
  /// resume for the continuation to stay bitwise identical.
  int TryResume(std::uint64_t data_fingerprint, double* last_epoch_loss,
                std::vector<std::size_t>* order);
  void CommitCheckpoint(int epochs_done, double last_epoch_loss,
                        std::uint64_t data_fingerprint,
                        const std::vector<std::size_t>& order);
  /// Runs the LSTM over `sequence` and returns the final hidden state as
  /// a 1 x hidden matrix (a reusable member — valid until the next run).
  /// When `cache` is set, per-step activations are kept in `ws_` for
  /// BackwardLstm.
  const Matrix& RunLstm(const Sequence& sequence, bool cache);

  /// BPTT from dL/dh_T; accumulates into grad_wx_/grad_wh_/grad_b_.
  void BackwardLstm(const Matrix& grad_h_final);

  /// Head forward (1 x num_labels probabilities) and backward.
  Matrix HeadForward(const Matrix& h_final, bool training);
  Matrix HeadBackward(const Matrix& grad_out);

  /// Grows the per-timestep workspace slabs to hold `steps` timesteps.
  void EnsureWorkspace(std::size_t steps);

  Config config_;
  stats::Rng rng_;

  // LSTM parameters; gate order along the 4H axis is [i, f, g, o].
  Matrix wx_;       // input_dim x 4H
  Matrix wh_;       // H x 4H
  Matrix b_;        // 1 x 4H
  Matrix grad_wx_;
  Matrix grad_wh_;
  Matrix grad_b_;

  // Head layers (shared optimizer).
  std::unique_ptr<DropoutLayer> dropout_;
  std::unique_ptr<DenseLayer> dense1_;
  std::unique_ptr<ReluLayer> relu_;
  std::unique_ptr<DenseLayer> dense2_;
  std::unique_ptr<SigmoidLayer> sigmoid_;

  AdamOptimizer optimizer_;
  bool optimizer_initialized_ = false;
  bool fitted_ = false;

  std::unique_ptr<robust::CheckpointManager> checkpoint_;
  int checkpoint_every_ = 1;

  // Flat SoA workspace, reused across timesteps, sequences and epochs.
  // Slabs are indexed [t * dim + j]; `gates` packs the activated
  // [i, f, g, o] gates as one 4H slice per step, and `da` keeps every
  // step's pre-activation gradient so BackwardLstm can defer the
  // grad_wx/grad_wh accumulation into one pass per sequence. The
  // remaining scratch vectors hold the current step's state and are
  // sized once in the constructor.
  struct Workspace {
    std::vector<double> x;       // steps_cap x input_dim
    std::vector<double> h_prev;  // steps_cap x H
    std::vector<double> c_prev;  // steps_cap x H
    std::vector<double> gates;   // steps_cap x 4H
    std::vector<double> tanh_c;  // steps_cap x H
    std::vector<double> da;      // steps_cap x 4H gate-gradient slab
    std::vector<double> a;       // 4H pre-activations
    std::vector<double> h;       // H current hidden state
    std::vector<double> c;       // H current cell state
    std::vector<double> dh;      // H hidden gradient
    std::vector<double> dc;      // H cell gradient
    std::size_t steps_cap = 0;   // allocated timesteps
    std::size_t steps = 0;       // timesteps cached by the last RunLstm
  };
  Workspace ws_;
  Matrix h_final_;  // 1 x H view of the last run's final hidden state
};

}  // namespace mexi::ml

#endif  // MEXI_ML_NN_LSTM_H_
