#include "ml/nn/layers.h"

#include <cmath>
#include <stdexcept>

#include "ml/kernels.h"
#include "ml/serialize.h"
#include "ml/vmath/vmath.h"
#include "robust/status.h"

namespace mexi::ml {

void Layer::RegisterParameters(AdamOptimizer& optimizer) {
  (void)optimizer;  // stateless layers have nothing to register
}

void Layer::SaveState(robust::BinaryWriter& writer) const {
  (void)writer;  // stateless layers persist nothing
}

void Layer::LoadState(robust::BinaryReader& reader) { (void)reader; }

DenseLayer::DenseLayer(std::size_t in_dim, std::size_t out_dim,
                       stats::Rng& rng)
    : weights_(Matrix::GlorotUniform(in_dim, out_dim, rng)),
      bias_(1, out_dim, 0.0),
      grad_weights_(in_dim, out_dim, 0.0),
      grad_bias_(1, out_dim, 0.0) {}

Matrix DenseLayer::Forward(const Matrix& input, bool training) {
  (void)training;
  last_input_ = input;
  const std::size_t in_dim = weights_.rows();
  const std::size_t out_dim = weights_.cols();
  if (input.cols() != in_dim) {
    throw std::invalid_argument("DenseLayer::Forward: dimension mismatch");
  }
  // Fused X*W + b: per row, products accumulate first (ascending k, zero
  // rows of X skipped — the MatMul order), then the bias row is added,
  // matching MatMul().AddRowBroadcast() bitwise without the two temporary
  // matrices.
  Matrix out(input.rows(), out_dim, 0.0);
  for (std::size_t i = 0; i < input.rows(); ++i) {
    double* orow = &out.data()[i * out_dim];
    kernels::GemvAccum(&input.data()[i * in_dim], in_dim,
                       weights_.data().data(), out_dim, orow);
    kernels::Add(bias_.data().data(), orow, out_dim);
  }
  return out;
}

Matrix DenseLayer::Backward(const Matrix& grad_output) {
  const std::size_t batch = grad_output.rows();
  const std::size_t in_dim = weights_.rows();
  const std::size_t out_dim = weights_.cols();

  // dW = X^T * G without the transpose: stream rows of X and scatter
  // rank-1 updates. Each (k, j) cell still sees its batch terms in
  // ascending-i order with the X==0 skip, and the zeroed scratch keeps
  // the accumulate-then-+= composition of the legacy code intact.
  if (grad_w_scratch_.rows() != in_dim ||
      grad_w_scratch_.cols() != out_dim) {
    grad_w_scratch_ = Matrix(in_dim, out_dim, 0.0);
  } else {
    grad_w_scratch_.Fill(0.0);
  }
  for (std::size_t i = 0; i < batch; ++i) {
    const double* xrow = &last_input_.data()[i * in_dim];
    const double* grow = &grad_output.data()[i * out_dim];
    for (std::size_t k = 0; k < in_dim; ++k) {
      if (xrow[k] == 0.0) continue;
      kernels::Axpy(xrow[k], grow, &grad_w_scratch_.data()[k * out_dim],
                    out_dim);
    }
  }
  grad_weights_ += grad_w_scratch_;
  kernels::AddColSums(grad_output.data().data(), batch, out_dim,
                      grad_bias_.data().data());

  // dX = G * W^T: per batch row, in_dim independent strict dot chains
  // against contiguous rows of W (skipping zero G entries exactly where
  // MatMul would), interleaved by DotRowsSkipZero.
  Matrix grad_input(batch, in_dim);
  for (std::size_t i = 0; i < batch; ++i) {
    kernels::DotRowsSkipZero(weights_.data().data(), in_dim, out_dim,
                             &grad_output.data()[i * out_dim],
                             &grad_input.data()[i * in_dim]);
  }
  return grad_input;
}

void DenseLayer::RegisterParameters(AdamOptimizer& optimizer) {
  optimizer.Register(&weights_, &grad_weights_);
  optimizer.Register(&bias_, &grad_bias_);
}

void DenseLayer::SaveState(robust::BinaryWriter& writer) const {
  writer.WriteTag("DENS");
  WriteMatrix(writer, weights_);
  WriteMatrix(writer, bias_);
}

void DenseLayer::LoadState(robust::BinaryReader& reader) {
  reader.ExpectTag("DENS");
  ReadMatrixInto(reader, weights_, "Dense weights");
  ReadMatrixInto(reader, bias_, "Dense bias");
}

Matrix ReluLayer::Forward(const Matrix& input, bool training) {
  (void)training;
  last_input_ = input;
  return input.Apply([](double v) { return v > 0.0 ? v : 0.0; });
}

Matrix ReluLayer::Backward(const Matrix& grad_output) {
  Matrix grad = grad_output;
  kernels::ReluGate(last_input_.data().data(), grad.data().data(),
                    grad.data().size());
  return grad;
}

Matrix SigmoidLayer::Forward(const Matrix& input, bool training) {
  last_output_ = input;
  double* out = last_output_.data().data();
  const std::size_t n = last_output_.data().size();
  if (!training && vmath::FastMathActive()) {
    vmath::VSigmoidFast(out, out, n);
  } else {
    vmath::VSigmoid(out, out, n);
  }
  return last_output_;
}

Matrix SigmoidLayer::Backward(const Matrix& grad_output) {
  Matrix grad = grad_output;
  for (std::size_t i = 0; i < grad.data().size(); ++i) {
    const double s = last_output_.data()[i];
    grad.data()[i] *= s * (1.0 - s);
  }
  return grad;
}

Matrix TanhLayer::Forward(const Matrix& input, bool training) {
  last_output_ = input;
  double* out = last_output_.data().data();
  const std::size_t n = last_output_.data().size();
  if (!training && vmath::FastMathActive()) {
    vmath::VTanhFast(out, out, n);
  } else {
    vmath::VTanh(out, out, n);
  }
  return last_output_;
}

Matrix TanhLayer::Backward(const Matrix& grad_output) {
  Matrix grad = grad_output;
  for (std::size_t i = 0; i < grad.data().size(); ++i) {
    const double t = last_output_.data()[i];
    grad.data()[i] *= 1.0 - t * t;
  }
  return grad;
}

DropoutLayer::DropoutLayer(double rate, std::uint64_t seed)
    : rate_(rate), rng_(seed) {
  if (rate < 0.0 || rate >= 1.0) {
    throw std::invalid_argument("DropoutLayer: rate must be in [0, 1)");
  }
}

Matrix DropoutLayer::Forward(const Matrix& input, bool training) {
  last_training_ = training;
  if (!training || rate_ <= 0.0) return input;
  last_mask_ = Matrix(input.rows(), input.cols());
  const double keep = 1.0 - rate_;
  Matrix out = input;
  for (std::size_t i = 0; i < out.data().size(); ++i) {
    const double mask = rng_.Bernoulli(keep) ? 1.0 / keep : 0.0;
    last_mask_.data()[i] = mask;
    out.data()[i] *= mask;
  }
  return out;
}

Matrix DropoutLayer::Backward(const Matrix& grad_output) {
  if (!last_training_ || rate_ <= 0.0) return grad_output;
  return grad_output.Hadamard(last_mask_);
}

void DropoutLayer::SaveState(robust::BinaryWriter& writer) const {
  writer.WriteTag("DROP");
  writer.WriteDouble(rate_);
  robust::WriteRngState(writer, rng_);
}

void DropoutLayer::LoadState(robust::BinaryReader& reader) {
  reader.ExpectTag("DROP");
  const double rate = reader.ReadDouble();
  if (rate != rate_) {
    robust::ThrowStatus(robust::StatusCode::kCorruption,
                        "Dropout rate mismatch between checkpoint and model");
  }
  robust::ReadRngState(reader, rng_);
}

void DenseHeadForwardBatch(const DenseLayer& dense1, const DenseLayer& dense2,
                           const double* input, std::size_t batch,
                           std::vector<double>& z1, std::vector<double>& z2,
                           bool fast) {
  const std::size_t in_dim = dense1.weights().rows();
  const std::size_t mid_dim = dense1.weights().cols();
  const std::size_t out_dim = dense2.weights().cols();

  // dense1: products first (ascending k, zero inputs skipped), then the
  // bias row — DenseLayer::Forward's per-row order, per row.
  z1.assign(batch * mid_dim, 0.0);
  kernels::GemmAccum(input, batch, in_dim, in_dim,
                     dense1.weights().data().data(), mid_dim, mid_dim,
                     z1.data(), mid_dim);
  for (std::size_t b = 0; b < batch; ++b) {
    kernels::Add(dense1.bias().data().data(), &z1[b * mid_dim], mid_dim);
  }
  kernels::ReluInto(z1.data(), z1.data(), batch * mid_dim);

  z2.assign(batch * out_dim, 0.0);
  kernels::GemmAccum(z1.data(), batch, mid_dim, mid_dim,
                     dense2.weights().data().data(), out_dim, out_dim,
                     z2.data(), out_dim);
  for (std::size_t b = 0; b < batch; ++b) {
    kernels::Add(dense2.bias().data().data(), &z2[b * out_dim], out_dim);
  }
  if (fast) {
    vmath::VSigmoidFast(z2.data(), z2.data(), batch * out_dim);
  } else {
    vmath::VSigmoid(z2.data(), z2.data(), batch * out_dim);
  }
}

}  // namespace mexi::ml
