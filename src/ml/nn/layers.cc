#include "ml/nn/layers.h"

#include <cmath>
#include <stdexcept>

namespace mexi::ml {

void Layer::RegisterParameters(AdamOptimizer& optimizer) {
  (void)optimizer;  // stateless layers have nothing to register
}

DenseLayer::DenseLayer(std::size_t in_dim, std::size_t out_dim,
                       stats::Rng& rng)
    : weights_(Matrix::GlorotUniform(in_dim, out_dim, rng)),
      bias_(1, out_dim, 0.0),
      grad_weights_(in_dim, out_dim, 0.0),
      grad_bias_(1, out_dim, 0.0) {}

Matrix DenseLayer::Forward(const Matrix& input, bool training) {
  (void)training;
  last_input_ = input;
  return input.MatMul(weights_).AddRowBroadcast(bias_);
}

Matrix DenseLayer::Backward(const Matrix& grad_output) {
  grad_weights_ += last_input_.Transposed().MatMul(grad_output);
  grad_bias_ += grad_output.ColSums();
  return grad_output.MatMul(weights_.Transposed());
}

void DenseLayer::RegisterParameters(AdamOptimizer& optimizer) {
  optimizer.Register(&weights_, &grad_weights_);
  optimizer.Register(&bias_, &grad_bias_);
}

Matrix ReluLayer::Forward(const Matrix& input, bool training) {
  (void)training;
  last_input_ = input;
  return input.Apply([](double v) { return v > 0.0 ? v : 0.0; });
}

Matrix ReluLayer::Backward(const Matrix& grad_output) {
  Matrix grad = grad_output;
  for (std::size_t i = 0; i < grad.data().size(); ++i) {
    if (last_input_.data()[i] <= 0.0) grad.data()[i] = 0.0;
  }
  return grad;
}

Matrix SigmoidLayer::Forward(const Matrix& input, bool training) {
  (void)training;
  last_output_ =
      input.Apply([](double v) { return 1.0 / (1.0 + std::exp(-v)); });
  return last_output_;
}

Matrix SigmoidLayer::Backward(const Matrix& grad_output) {
  Matrix grad = grad_output;
  for (std::size_t i = 0; i < grad.data().size(); ++i) {
    const double s = last_output_.data()[i];
    grad.data()[i] *= s * (1.0 - s);
  }
  return grad;
}

Matrix TanhLayer::Forward(const Matrix& input, bool training) {
  (void)training;
  last_output_ = input.Apply([](double v) { return std::tanh(v); });
  return last_output_;
}

Matrix TanhLayer::Backward(const Matrix& grad_output) {
  Matrix grad = grad_output;
  for (std::size_t i = 0; i < grad.data().size(); ++i) {
    const double t = last_output_.data()[i];
    grad.data()[i] *= 1.0 - t * t;
  }
  return grad;
}

DropoutLayer::DropoutLayer(double rate, std::uint64_t seed)
    : rate_(rate), rng_(seed) {
  if (rate < 0.0 || rate >= 1.0) {
    throw std::invalid_argument("DropoutLayer: rate must be in [0, 1)");
  }
}

Matrix DropoutLayer::Forward(const Matrix& input, bool training) {
  last_training_ = training;
  if (!training || rate_ <= 0.0) return input;
  last_mask_ = Matrix(input.rows(), input.cols());
  const double keep = 1.0 - rate_;
  Matrix out = input;
  for (std::size_t i = 0; i < out.data().size(); ++i) {
    const double mask = rng_.Bernoulli(keep) ? 1.0 / keep : 0.0;
    last_mask_.data()[i] = mask;
    out.data()[i] *= mask;
  }
  return out;
}

Matrix DropoutLayer::Backward(const Matrix& grad_output) {
  if (!last_training_ || rate_ <= 0.0) return grad_output;
  return grad_output.Hadamard(last_mask_);
}

}  // namespace mexi::ml
