#ifndef MEXI_ML_NN_ADAM_H_
#define MEXI_ML_NN_ADAM_H_

#include <vector>

#include "ml/matrix.h"
#include "robust/serialize.h"

namespace mexi::ml {

/// Adam optimizer (Kingma & Ba) with the paper's hyper-parameters as
/// defaults (eta = 0.001, beta1 = 0.9, beta2 = 0.999).
///
/// Parameters are registered once as (parameter, gradient) matrix pairs;
/// `Step()` then applies one bias-corrected update to every pair and
/// zeroes the gradients. The optimizer owns only its moment buffers — the
/// caller keeps ownership of parameters and gradients.
class AdamOptimizer {
 public:
  struct Config {
    double learning_rate = 0.001;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double epsilon = 1e-8;
  };

  AdamOptimizer() = default;
  explicit AdamOptimizer(const Config& config) : config_(config) {}

  /// Registers one parameter with its gradient buffer. Both must outlive
  /// the optimizer and keep their shapes.
  void Register(Matrix* parameter, Matrix* gradient);

  /// Applies one Adam update to all registered pairs and clears grads.
  void Step();

  /// Number of updates applied so far.
  long long t() const { return t_; }

  std::size_t NumParameters() const { return params_.size(); }

  /// Serializes the step counter and every slot's moment buffers (in
  /// registration order). Parameters/gradients are owned by the caller
  /// and serialized there.
  void SaveState(robust::BinaryWriter& writer) const;

  /// Restores moments into the already-registered slots; the slot count
  /// and shapes must match (same registration sequence as when saved)
  /// or StatusError(kCorruption) is thrown.
  void LoadState(robust::BinaryReader& reader);

 private:
  struct Slot {
    Matrix* param;
    Matrix* grad;
    Matrix m;  // first moment
    Matrix v;  // second moment
  };

  Config config_;
  std::vector<Slot> params_;
  long long t_ = 0;
};

}  // namespace mexi::ml

#endif  // MEXI_ML_NN_ADAM_H_
