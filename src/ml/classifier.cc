#include "ml/classifier.h"

#include <stdexcept>

#include "ml/vmath/vmath.h"
#include "robust/status.h"

namespace mexi::ml {

void BinaryClassifier::Fit(const Dataset& data) {
  if (data.NumExamples() == 0) {
    throw std::invalid_argument("BinaryClassifier::Fit: empty dataset");
  }
  // Every classifier trains exactly, MEXI_FAST_MATH or not: the scope
  // suppresses fast-mode dispatch for this whole Fit call tree (any
  // sub-model fits and any inference they run internally included).
  const vmath::TrainingScope exact_training;
  bool all_same = true;
  for (int y : data.labels) {
    if (y != data.labels[0]) {
      all_same = false;
      break;
    }
  }
  if (all_same) {
    constant_label_ = data.labels[0];
  } else {
    constant_label_ = -1;
    FitImpl(data);
  }
  fitted_ = true;
}

double BinaryClassifier::PredictProba(const std::vector<double>& row) const {
  if (!fitted_) {
    throw std::logic_error("BinaryClassifier::PredictProba before Fit");
  }
  if (constant_label_ >= 0) return static_cast<double>(constant_label_);
  return PredictProbaImpl(row);
}

int BinaryClassifier::Predict(const std::vector<double>& row) const {
  return PredictProba(row) >= 0.5 ? 1 : 0;
}

std::vector<double> BinaryClassifier::PredictProbaAll(
    const std::vector<std::vector<double>>& rows) const {
  std::vector<double> out;
  out.reserve(rows.size());
  for (const auto& row : rows) out.push_back(PredictProba(row));
  return out;
}

std::vector<double> BinaryClassifier::PredictProbaBatch(
    const std::vector<std::vector<double>>& rows) const {
  if (!fitted_) {
    throw std::logic_error("BinaryClassifier::PredictProba before Fit");
  }
  if (rows.empty()) return {};
  if (constant_label_ >= 0) {
    return std::vector<double>(rows.size(),
                               static_cast<double>(constant_label_));
  }
  return PredictProbaBatchImpl(rows);
}

std::vector<double> BinaryClassifier::PredictProbaBatchImpl(
    const std::vector<std::vector<double>>& rows) const {
  std::vector<double> out;
  out.reserve(rows.size());
  for (const auto& row : rows) out.push_back(PredictProbaImpl(row));
  return out;
}

void BinaryClassifier::SaveState(robust::BinaryWriter& writer) const {
  writer.WriteTag("BCLS");
  writer.WriteString(Name());
  writer.WriteBool(fitted_);
  writer.WriteI64(constant_label_);
  const bool has_model = fitted_ && constant_label_ < 0;
  writer.WriteBool(has_model);
  if (has_model) SaveStateImpl(writer);
}

void BinaryClassifier::LoadState(robust::BinaryReader& reader) {
  reader.ExpectTag("BCLS");
  const std::string stored = reader.ReadString();
  if (stored != Name()) {
    robust::ThrowStatus(robust::StatusCode::kCorruption,
                        "classifier type mismatch: stored '" + stored +
                            "', loading into '" + Name() + "'");
  }
  fitted_ = reader.ReadBool();
  constant_label_ = static_cast<int>(reader.ReadI64());
  if (reader.ReadBool()) LoadStateImpl(reader);
}

void BinaryClassifier::SaveStateImpl(robust::BinaryWriter& writer) const {
  (void)writer;
  robust::ThrowStatus(robust::StatusCode::kInvalidArgument,
                      Name() + " does not support checkpoint serialization");
}

void BinaryClassifier::LoadStateImpl(robust::BinaryReader& reader) {
  (void)reader;
  robust::ThrowStatus(robust::StatusCode::kInvalidArgument,
                      Name() + " does not support checkpoint serialization");
}

std::vector<int> BinaryClassifier::PredictAll(
    const std::vector<std::vector<double>>& rows) const {
  std::vector<int> out;
  out.reserve(rows.size());
  for (const auto& row : rows) out.push_back(Predict(row));
  return out;
}

}  // namespace mexi::ml
