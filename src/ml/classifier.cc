#include "ml/classifier.h"

#include <stdexcept>

namespace mexi::ml {

void BinaryClassifier::Fit(const Dataset& data) {
  if (data.NumExamples() == 0) {
    throw std::invalid_argument("BinaryClassifier::Fit: empty dataset");
  }
  bool all_same = true;
  for (int y : data.labels) {
    if (y != data.labels[0]) {
      all_same = false;
      break;
    }
  }
  if (all_same) {
    constant_label_ = data.labels[0];
  } else {
    constant_label_ = -1;
    FitImpl(data);
  }
  fitted_ = true;
}

double BinaryClassifier::PredictProba(const std::vector<double>& row) const {
  if (!fitted_) {
    throw std::logic_error("BinaryClassifier::PredictProba before Fit");
  }
  if (constant_label_ >= 0) return static_cast<double>(constant_label_);
  return PredictProbaImpl(row);
}

int BinaryClassifier::Predict(const std::vector<double>& row) const {
  return PredictProba(row) >= 0.5 ? 1 : 0;
}

std::vector<double> BinaryClassifier::PredictProbaAll(
    const std::vector<std::vector<double>>& rows) const {
  std::vector<double> out;
  out.reserve(rows.size());
  for (const auto& row : rows) out.push_back(PredictProba(row));
  return out;
}

std::vector<int> BinaryClassifier::PredictAll(
    const std::vector<std::vector<double>>& rows) const {
  std::vector<int> out;
  out.reserve(rows.size());
  for (const auto& row : rows) out.push_back(Predict(row));
  return out;
}

}  // namespace mexi::ml
