#ifndef MEXI_ML_KERNELS_H_
#define MEXI_ML_KERNELS_H_

#include <cstddef>

namespace mexi::ml::kernels {

/// Allocation-free fused kernels over contiguous `double` spans.
///
/// These are the innermost loops of the ML substrate: LSTM gate
/// pre-activations, dense layers, the CNN residual projection, logistic
/// regression and the linear SVM all route through them. Two rules are
/// binding (see DESIGN.md "Kernels & memory layout"):
///
///  1. **Accumulation order is part of the contract.** Every kernel adds
///     floating-point terms in exactly the order of the plain loop it
///     replaced — left to right, ascending index, zero-skips only where
///     the legacy loop skipped. Callers that need the legacy
///     "skip-if-zero" semantics guard at the call site (`if (a != 0.0)`)
///     so the kernels themselves stay branch-free inside the loop and
///     auto-vectorize.
///  2. **No ownership.** Kernels never allocate; callers pass raw spans
///     into workspaces they own. Pointers must not alias unless the
///     signature says in/out (`__restrict` is load-bearing for
///     vectorization).
///
/// Element-independent loops (Axpy, Fill, map-style transforms) may be
/// vectorized by the compiler without changing results; reductions (Dot)
/// are written as strict left-to-right scalar chains and must stay so —
/// do not add pragmas that reassociate them.

/// y[j] = value.
inline void Fill(double* __restrict y, std::size_t n, double value) {
  for (std::size_t j = 0; j < n; ++j) y[j] = value;
}

/// y[j] = x[j].
inline void Copy(const double* __restrict x, double* __restrict y,
                 std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) y[j] = x[j];
}

/// y[j] += x[j].
inline void Add(const double* __restrict x, double* __restrict y,
                std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) y[j] += x[j];
}

/// y[j] *= a.
inline void Scale(double* __restrict y, std::size_t n, double a) {
  for (std::size_t j = 0; j < n; ++j) y[j] *= a;
}

/// y[j] += a * x[j]. No zero guard: callers replacing a legacy
/// `if (a == 0.0) continue;` loop must keep that guard at the call site.
inline void Axpy(double a, const double* __restrict x, double* __restrict y,
                 std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) y[j] += a * x[j];
}

/// init + sum_j x[j] * y[j], accumulated strictly left to right starting
/// from `init` (matches `acc = init; for j: acc += x[j]*y[j]`).
inline double Dot(const double* __restrict x, const double* __restrict y,
                  std::size_t n, double init = 0.0) {
  double acc = init;
  for (std::size_t j = 0; j < n; ++j) acc += x[j] * y[j];
  return acc;
}

/// Like Dot but omits terms where x[j] == 0.0 — mirrors the zero-skip in
/// the blocked MatMul kernel, so a row-vector product computed cell by
/// cell with DotSkipZero is bitwise identical to MatMul's row result.
inline double DotSkipZero(const double* __restrict x,
                          const double* __restrict y, std::size_t n) {
  double acc = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    if (x[j] == 0.0) continue;
    acc += x[j] * y[j];
  }
  return acc;
}

/// Sum of squared differences, left to right.
inline double SquaredDistance(const double* __restrict x,
                              const double* __restrict y, std::size_t n) {
  double acc = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    const double d = x[j] - y[j];
    acc += d * d;
  }
  return acc;
}

/// Row-major GEMV accumulate: y[j] += sum_k x[k] * w[k*n + j], visiting k
/// ascending and skipping zero x[k] rows (the LSTM/dense legacy order).
/// `y` must be pre-initialized by the caller (zeros or a bias row,
/// whichever the legacy loop started from).
void GemvAccum(const double* x, std::size_t m, const double* w,
               std::size_t n, double* y);

/// Strided batch GEMV accumulate: for each lane b of `batch`,
///   y[b*ldy + j] += sum_k x[b*ldx + k] * w[k*ldw + j],  j in [0, n)
/// visiting k ascending with the GemvAccum zero-skip on x[b*ldx + k].
/// Each lane's output cell accumulates its k-terms in exactly
/// GemvAccum's order, so the batched product is bitwise identical per
/// lane to `batch` GemvAccum calls — and, run over a zero-initialized
/// full-width y (ldx = m, ldw = ldy = n), bitwise identical to the
/// k-tiled Matrix::MatMul (the oracle both share their per-cell chain
/// with). The leading dimensions let callers address a gate-block
/// column of a packed [k x 4H] weight (ldw = 4H, n = H) or a lane-major
/// state slab without repacking.
void GemmAccum(const double* x, std::size_t batch, std::size_t m,
               std::size_t ldx, const double* w, std::size_t ldw,
               std::size_t n, double* y, std::size_t ldy);

/// Fused-contraction (FMA) twins of GemvAccum / GemmAccum for the gated
/// fast-math serve path. Per output cell the term ORDER is unchanged —
/// init, then products ascending k with the zero-skip — but each
/// multiply-add pair is contracted into one fused operation with a
/// single rounding, so results deviate from the exact kernels by
/// bounded ULPs (the same contract the fast vmath transcendentals
/// already carry). The batch/single bitwise identity survives because
/// both paths switch together: per cell, GemmAccumFused runs the same
/// sequence of fused ops as `batch` GemvAccumFused calls. On hardware
/// without FMA both fall back to the exact kernels — again jointly, so
/// the identity still holds. Never call these from training code: the
/// TrainingScope contract keeps every training-path product exact.
void GemvAccumFused(const double* x, std::size_t m, const double* w,
                    std::size_t n, double* y);
void GemmAccumFused(const double* x, std::size_t batch, std::size_t m,
                    std::size_t ldx, const double* w, std::size_t ldw,
                    std::size_t n, double* y, std::size_t ldy);

/// GemmAccumFused with every lane's accumulators seeded from a shared
/// `init` row instead of y's current contents:
///   y[b*ldy + j] = init[j] + sum_k x[b*ldx + k] * w[k*ldw + j]
/// Per cell the chain is exactly init first, then the fused terms
/// ascending k — the same bits as Copy(init, y-row) for each lane
/// followed by GemmAccumFused, without the separate pass over y. Used
/// by the fast serve path to fold the LSTM bias broadcast into the
/// input GEMM; falls back (jointly with the other fused kernels) to
/// copy + exact GemmAccum on hardware without FMA.
void GemmFusedBiasInit(const double* init, const double* x,
                       std::size_t batch, std::size_t m, std::size_t ldx,
                       const double* w, std::size_t ldw, std::size_t n,
                       double* y, std::size_t ldy);

/// y[r] = sum_j w[r*n + j] * x[j] for each of `rows` rows. Every row's
/// sum is still a strict left-to-right chain, but rows are *independent*
/// chains, so four of them run interleaved to hide FP-add latency — this
/// changes scheduling only, never the per-row result.
void DotRows(const double* w, std::size_t rows, std::size_t n,
             const double* x, double* y);

/// Like DotRows but skips terms where x[j] == 0.0. All rows share the
/// skip vector, so each row sees exactly the per-cell zero-skip order of
/// the blocked MatMul (term order x[j] * w[r*n + j]).
void DotRowsSkipZero(const double* w, std::size_t rows, std::size_t n,
                     const double* x, double* y);

/// Column sums of a rows x cols row-major block, *added* to y: for each
/// column j, y[j] += (0.0 + g(0,j) + g(1,j) + ...) — the inner sum is
/// materialized first, matching the legacy `ColSums()` + `operator+=`
/// composition bitwise.
void AddColSums(const double* g, std::size_t rows, std::size_t cols,
                double* y);

/// y[j] = max(x[j], 0.0) — written as the legacy ternary.
void ReluInto(const double* x, double* y, std::size_t n);

/// ReLU backward gate: y[j] = 0.0 wherever pre[j] <= 0.0, else y[j]
/// unchanged. Branchless (select, no arithmetic) so it vectorizes; does
/// exactly what the legacy `if (pre <= 0) g = 0` loop did.
inline void ReluGate(const double* __restrict pre, double* __restrict y,
                     std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) y[j] = pre[j] > 0.0 ? y[j] : 0.0;
}

/// y[j] = 1 / (1 + exp(-x[j])).
void SigmoidInto(const double* x, double* y, std::size_t n);

/// y[j] = tanh(x[j]).
void TanhInto(const double* x, double* y, std::size_t n);

/// Fused LSTM cell update for one timestep. `a` holds the 4H gate
/// pre-activations laid out [i, f, g, o]; `gates` receives the activated
/// gates in the same layout; `c` is the cell state updated in place;
/// `tanh_c` and `h` receive tanh(c) and the new hidden state. One pass
/// per element, in the exact arithmetic order of the unfused loops.
void LstmCellForward(const double* a, std::size_t h_dim, double* gates,
                     double* c, double* tanh_c, double* h);

/// ULP-bounded twin of LstmCellForward over the vmath fast activations.
/// Predict/inference paths only — callers gate on
/// `vmath::FastMathActive()`, never on the raw env flag.
void LstmCellForwardFast(const double* a, std::size_t h_dim, double* gates,
                         double* c, double* tanh_c, double* h);

/// Fused Adam update for one parameter span: updates the biased moments
/// m/v in place, applies the bias-corrected step to p, and zeroes g.
/// Every element is an independent chain of the exact legacy
/// expressions (sqrt and div vectorize IEEE-exactly per lane, so the
/// compiler widening this loop cannot change a bit). `bias1`/`bias2`
/// are the precomputed 1 - beta^t correction terms.
void AdamStep(double* __restrict p, double* __restrict g,
              double* __restrict m, double* __restrict v, std::size_t n,
              double beta1, double beta2, double bias1, double bias2,
              double lr, double eps);

/// Fused backward cell step: consumes dh (dL/dh_t) and dc (running cell
/// gradient, updated in place), the cached activated gates / tanh_c /
/// c_prev, and emits the 4H pre-activation gradient `da`.
void LstmCellBackward(const double* dh, const double* gates,
                      const double* tanh_c, const double* c_prev,
                      std::size_t h_dim, double* dc, double* da);

}  // namespace mexi::ml::kernels

#endif  // MEXI_ML_KERNELS_H_
