#ifndef MEXI_ML_LINEAR_SVM_H_
#define MEXI_ML_LINEAR_SVM_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/classifier.h"
#include "ml/dataset.h"
#include "stats/rng.h"

namespace mexi::ml {

/// Linear soft-margin SVM trained with the Pegasos stochastic
/// sub-gradient algorithm (Shalev-Shwartz et al.). Probabilities are
/// produced by a Platt-style logistic link fitted to the training margins
/// so the classifier composes with probability-consuming callers (late
/// fusion, ROC computation).
class LinearSvm : public BinaryClassifier {
 public:
  struct Config {
    /// Number of Pegasos iterations (one sampled example each).
    int iterations = 20000;
    /// Regularization strength lambda.
    double lambda = 1e-3;
    /// Seed for the example sampler.
    std::uint64_t seed = 17;
  };

  LinearSvm() = default;
  explicit LinearSvm(const Config& config) : config_(config) {}

  std::unique_ptr<BinaryClassifier> Clone() const override;
  std::string Name() const override { return "LinearSVM"; }

  /// Signed margin w.x + b in standardized feature space.
  double Margin(const std::vector<double>& row) const;

 protected:
  void FitImpl(const Dataset& data) override;
  double PredictProbaImpl(const std::vector<double>& row) const override;
  void SaveStateImpl(robust::BinaryWriter& writer) const override;
  void LoadStateImpl(robust::BinaryReader& reader) override;

 private:
  Config config_;
  Standardizer standardizer_;
  std::vector<double> weights_;
  double intercept_ = 0.0;
  /// Platt scaling parameters: p = sigmoid(platt_a_ * margin + platt_b_).
  double platt_a_ = 1.0;
  double platt_b_ = 0.0;
};

}  // namespace mexi::ml

#endif  // MEXI_ML_LINEAR_SVM_H_
