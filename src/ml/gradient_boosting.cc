#include "ml/gradient_boosting.h"

#include <cmath>

#include "stats/descriptive.h"

namespace mexi::ml {

namespace {
double Sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }
}  // namespace

std::unique_ptr<BinaryClassifier> GradientBoosting::Clone() const {
  return std::make_unique<GradientBoosting>(config_);
}

void GradientBoosting::FitImpl(const Dataset& data) {
  trees_.clear();
  const std::size_t n = data.NumExamples();

  const double positive_rate =
      stats::Clamp(data.PositiveRate(), 1e-6, 1.0 - 1e-6);
  base_score_ = std::log(positive_rate / (1.0 - positive_rate));

  std::vector<double> raw(n, base_score_);
  std::vector<double> residual(n, 0.0);
  for (int round = 0; round < config_.num_rounds; ++round) {
    for (std::size_t i = 0; i < n; ++i) {
      residual[i] = static_cast<double>(data.labels[i]) - Sigmoid(raw[i]);
    }
    RegressionTree tree(config_.tree);
    tree.Fit(data.features, residual);
    for (std::size_t i = 0; i < n; ++i) {
      raw[i] += config_.learning_rate * tree.Predict(data.features[i]);
    }
    trees_.push_back(std::move(tree));
  }
}

double GradientBoosting::RawScore(const std::vector<double>& row) const {
  double score = base_score_;
  for (const auto& tree : trees_) {
    score += config_.learning_rate * tree.Predict(row);
  }
  return score;
}

double GradientBoosting::PredictProbaImpl(
    const std::vector<double>& row) const {
  return Sigmoid(RawScore(row));
}

void GradientBoosting::SaveStateImpl(robust::BinaryWriter& writer) const {
  writer.WriteTag("GBDT");
  writer.WriteDouble(base_score_);
  writer.WriteU64(trees_.size());
  for (const RegressionTree& tree : trees_) tree.SaveState(writer);
}

void GradientBoosting::LoadStateImpl(robust::BinaryReader& reader) {
  reader.ExpectTag("GBDT");
  base_score_ = reader.ReadDouble();
  const std::uint64_t count = reader.ReadU64();
  trees_.clear();
  for (std::uint64_t i = 0; i < count; ++i) {
    trees_.emplace_back();
    trees_.back().LoadState(reader);
  }
}

}  // namespace mexi::ml
