#include "ml/gradient_boosting.h"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "ml/vmath/vmath.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "robust/checkpoint.h"
#include "robust/fault_injection.h"
#include "robust/status.h"
#include "stats/descriptive.h"

namespace mexi::ml {

std::unique_ptr<BinaryClassifier> GradientBoosting::Clone() const {
  return std::make_unique<GradientBoosting>(config_);
}

void GradientBoosting::EnableCheckpointing(const std::string& directory,
                                           int every_rounds) {
  if (every_rounds < 1) {
    throw std::invalid_argument(
        "GradientBoosting::EnableCheckpointing: every_rounds must be >= 1");
  }
  checkpoint_dir_ = directory;
  checkpoint_every_ = every_rounds;
}

std::uint64_t GradientBoosting::ConfigFingerprint() const {
  robust::BinaryWriter w;
  w.WriteI64(config_.num_rounds);
  w.WriteDouble(config_.learning_rate);
  w.WriteI64(config_.tree.max_depth);
  w.WriteI64(config_.tree.min_samples_split);
  w.WriteI64(config_.tree.min_samples_leaf);
  return robust::Fnv1a(w.buffer().data(), w.buffer().size());
}

std::uint64_t GradientBoosting::DataFingerprint(const Dataset& data) {
  std::uint64_t hash = robust::kFnvOffsetBasis;
  const std::uint64_t n = data.features.size();
  hash = robust::Fnv1a(&n, sizeof(n), hash);
  for (const auto& row : data.features) {
    hash = robust::Fnv1a(row.data(), row.size() * sizeof(double), hash);
  }
  hash = robust::Fnv1a(data.labels.data(),
                       data.labels.size() * sizeof(data.labels[0]), hash);
  return hash;
}

void GradientBoosting::FitImpl(const Dataset& data) {
  const obs::Span fit_span("gbdt.fit");
  trees_.clear();
  const std::size_t n = data.NumExamples();

  const double positive_rate =
      stats::Clamp(data.PositiveRate(), 1e-6, 1.0 - 1e-6);
  base_score_ = std::log(positive_rate / (1.0 - positive_rate));

  std::unique_ptr<robust::CheckpointManager> checkpoint;
  std::uint64_t config_fp = 0;
  std::uint64_t data_fp = 0;
  int start_round = 0;
  std::vector<double> raw(n, base_score_);
  if (!checkpoint_dir_.empty()) {
    checkpoint =
        std::make_unique<robust::CheckpointManager>(checkpoint_dir_, "gbdt");
    config_fp = ConfigFingerprint();
    data_fp = DataFingerprint(data);

    std::vector<std::uint8_t> payload;
    const robust::Status status = checkpoint->LoadLatest(&payload);
    if (status.code() != robust::StatusCode::kNotFound) {
      robust::ThrowIfError(status);
      robust::BinaryReader reader(payload);
      reader.ExpectTag("GBTR");
      if (reader.ReadU64() != config_fp || reader.ReadU64() != data_fp) {
        robust::ThrowStatus(
            robust::StatusCode::kInvalidArgument,
            "gradient-boosting checkpoint belongs to a different training "
            "run (config/data fingerprint mismatch) — discard the "
            "checkpoint directory to start fresh");
      }
      start_round = static_cast<int>(reader.ReadI64());
      LoadStateImpl(reader);
      if (static_cast<int>(trees_.size()) != start_round) {
        robust::ThrowStatus(
            robust::StatusCode::kCorruption,
            "gradient-boosting checkpoint round count mismatch");
      }
      // Replay the committed rounds' raw-score updates in round order —
      // the identical chain of additions the dead run performed, so the
      // resumed raw scores (and every later tree) are bitwise equal.
      for (const RegressionTree& tree : trees_) {
        for (std::size_t i = 0; i < n; ++i) {
          raw[i] += config_.learning_rate * tree.Predict(data.features[i]);
        }
      }
      if (obs::MetricsEnabled()) {
        obs::Observability::Global().Event(
            "gbdt.resume", {obs::F("start_round", start_round)});
      }
    }
  }

  auto& faults = robust::FaultInjector::Global();
  std::vector<double> residual(n, 0.0);
  for (int round = start_round; round < config_.num_rounds; ++round) {
    for (std::size_t i = 0; i < n; ++i) {
      residual[i] =
          static_cast<double>(data.labels[i]) - vmath::Sigmoid(raw[i]);
    }
    RegressionTree tree(config_.tree);
    tree.Fit(data.features, residual);
    for (std::size_t i = 0; i < n; ++i) {
      raw[i] += config_.learning_rate * tree.Predict(data.features[i]);
    }
    trees_.push_back(std::move(tree));

    if (obs::MetricsEnabled()) {
      obs::Registry().GetCounter("gbdt.rounds").Add();
    }
    if (checkpoint && ((round + 1) % checkpoint_every_ == 0 ||
                       round + 1 == config_.num_rounds)) {
      robust::BinaryWriter writer;
      writer.WriteTag("GBTR");
      writer.WriteU64(config_fp);
      writer.WriteU64(data_fp);
      writer.WriteI64(round + 1);
      SaveStateImpl(writer);
      robust::ThrowIfError(checkpoint->Commit(writer.buffer()));
    }
    if (checkpoint) {
      // The epoch fault site is only consulted on the checkpointed
      // path, so arming epoch faults never perturbs plain fits.
      switch (faults.Hit(robust::FaultSite::kEpochEnd)) {
        case robust::FaultKind::kAbort:
          robust::ThrowStatus(robust::StatusCode::kAborted,
                              "injected kill after boosting round " +
                                  std::to_string(round));
        case robust::FaultKind::kKill:
          std::_Exit(137);
        default:
          break;
      }
    }
  }
}

double GradientBoosting::RawScore(const std::vector<double>& row) const {
  double score = base_score_;
  for (const auto& tree : trees_) {
    score += config_.learning_rate * tree.Predict(row);
  }
  return score;
}

double GradientBoosting::PredictProbaImpl(
    const std::vector<double>& row) const {
  return vmath::SigmoidInfer(RawScore(row));
}

std::vector<double> GradientBoosting::PredictProbaBatchImpl(
    const std::vector<std::vector<double>>& rows) const {
  // Trees-outer: each tree streams over every row while its nodes are
  // hot. Row i's score chain is still base_score_ plus the lr-scaled
  // tree outputs in ascending tree order — RawScore's exact chain.
  std::vector<double> scores(rows.size(), base_score_);
  for (const auto& tree : trees_) {
    for (std::size_t i = 0; i < rows.size(); ++i) {
      scores[i] += config_.learning_rate * tree.Predict(rows[i]);
    }
  }
  std::vector<double> out(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    out[i] = vmath::SigmoidInfer(scores[i]);
  }
  return out;
}

void GradientBoosting::SaveStateImpl(robust::BinaryWriter& writer) const {
  writer.WriteTag("GBDT");
  writer.WriteDouble(base_score_);
  writer.WriteU64(trees_.size());
  for (const RegressionTree& tree : trees_) tree.SaveState(writer);
}

void GradientBoosting::LoadStateImpl(robust::BinaryReader& reader) {
  reader.ExpectTag("GBDT");
  base_score_ = reader.ReadDouble();
  const std::uint64_t count = reader.ReadU64();
  trees_.clear();
  for (std::uint64_t i = 0; i < count; ++i) {
    trees_.emplace_back();
    trees_.back().LoadState(reader);
  }
}

}  // namespace mexi::ml
