#include "ml/random_forest.h"

#include <cmath>

#include "stats/rng.h"

namespace mexi::ml {

std::unique_ptr<BinaryClassifier> RandomForest::Clone() const {
  return std::make_unique<RandomForest>(config_);
}

void RandomForest::FitImpl(const Dataset& data) {
  trees_.clear();
  trees_.reserve(static_cast<std::size_t>(config_.num_trees));
  stats::Rng rng(config_.seed);

  int max_features = config_.max_features;
  if (max_features <= 0) {
    max_features = std::max(
        1, static_cast<int>(std::floor(
               std::sqrt(static_cast<double>(data.NumFeatures())))));
  }

  for (int t = 0; t < config_.num_trees; ++t) {
    // Bootstrap resample of the training examples.
    std::vector<std::size_t> sample(data.NumExamples());
    for (auto& idx : sample) idx = rng.UniformIndex(data.NumExamples());
    const Dataset bag = data.Subset(sample);

    DecisionTree::Config tree_config;
    tree_config.max_depth = config_.max_depth;
    tree_config.min_samples_split = config_.min_samples_split;
    tree_config.min_samples_leaf = config_.min_samples_leaf;
    tree_config.max_features = max_features;
    tree_config.seed = rng.NextU64();
    DecisionTree tree(tree_config);
    tree.Fit(bag);
    trees_.push_back(std::move(tree));
  }
}

double RandomForest::PredictProbaImpl(const std::vector<double>& row) const {
  double total = 0.0;
  for (const auto& tree : trees_) total += tree.PredictProba(row);
  return total / static_cast<double>(trees_.size());
}

}  // namespace mexi::ml
