#include "ml/random_forest.h"

#include <cmath>

#include "parallel/parallel_for.h"
#include "stats/rng.h"

namespace mexi::ml {

std::unique_ptr<BinaryClassifier> RandomForest::Clone() const {
  return std::make_unique<RandomForest>(config_);
}

void RandomForest::FitImpl(const Dataset& data) {
  trees_.clear();
  const std::size_t num_trees =
      static_cast<std::size_t>(config_.num_trees);
  stats::Rng rng(config_.seed);

  int max_features = config_.max_features;
  if (max_features <= 0) {
    max_features = std::max(
        1, static_cast<int>(std::floor(
               std::sqrt(static_cast<double>(data.NumFeatures())))));
  }

  // Bootstrap indices and per-tree seeds are drawn from the forest
  // stream in tree order — the same draws the sequential loop made — so
  // the fitted ensemble is bitwise-independent of the thread count.
  std::vector<std::vector<std::size_t>> bags(num_trees);
  std::vector<std::uint64_t> tree_seeds(num_trees);
  for (std::size_t t = 0; t < num_trees; ++t) {
    bags[t].resize(data.NumExamples());
    for (auto& idx : bags[t]) idx = rng.UniformIndex(data.NumExamples());
    tree_seeds[t] = rng.NextU64();
  }

  trees_.resize(num_trees);
  parallel::ParallelFor(0, num_trees, 1, [&](std::size_t t) {
    DecisionTree::Config tree_config;
    tree_config.max_depth = config_.max_depth;
    tree_config.min_samples_split = config_.min_samples_split;
    tree_config.min_samples_leaf = config_.min_samples_leaf;
    tree_config.max_features = max_features;
    tree_config.seed = tree_seeds[t];
    DecisionTree tree(tree_config);
    tree.Fit(data.Subset(bags[t]));
    trees_[t] = std::move(tree);
  });
}

double RandomForest::PredictProbaImpl(const std::vector<double>& row) const {
  double total = 0.0;
  for (const auto& tree : trees_) total += tree.PredictProba(row);
  return total / static_cast<double>(trees_.size());
}

std::vector<double> RandomForest::PredictProbaBatchImpl(
    const std::vector<std::vector<double>>& rows) const {
  // Trees-outer for locality; each row's vote total still accumulates
  // in ascending tree order, so the division-normalized result matches
  // PredictProbaImpl bitwise per row.
  std::vector<double> totals(rows.size(), 0.0);
  for (const auto& tree : trees_) {
    for (std::size_t i = 0; i < rows.size(); ++i) {
      totals[i] += tree.PredictProba(rows[i]);
    }
  }
  std::vector<double> out(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    out[i] = totals[i] / static_cast<double>(trees_.size());
  }
  return out;
}

void RandomForest::SaveStateImpl(robust::BinaryWriter& writer) const {
  writer.WriteTag("RFOR");
  writer.WriteU64(trees_.size());
  for (const DecisionTree& tree : trees_) tree.SaveState(writer);
}

void RandomForest::LoadStateImpl(robust::BinaryReader& reader) {
  reader.ExpectTag("RFOR");
  const std::uint64_t count = reader.ReadU64();
  trees_.clear();
  for (std::uint64_t i = 0; i < count; ++i) {
    trees_.emplace_back();
    trees_.back().LoadState(reader);
  }
}

}  // namespace mexi::ml
