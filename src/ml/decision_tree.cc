#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>

namespace mexi::ml {

namespace {

double PositiveFraction(const Dataset& data,
                        const std::vector<std::size_t>& indices) {
  if (indices.empty()) return 0.0;
  double pos = 0.0;
  for (std::size_t i : indices) pos += data.labels[i];
  return pos / static_cast<double>(indices.size());
}

double GiniFromCounts(double positives, double total) {
  if (total <= 0.0) return 0.0;
  const double p = positives / total;
  return 2.0 * p * (1.0 - p);
}

}  // namespace

std::unique_ptr<BinaryClassifier> DecisionTree::Clone() const {
  return std::make_unique<DecisionTree>(config_);
}

void DecisionTree::FitImpl(const Dataset& data) {
  nodes_.clear();
  std::vector<std::size_t> all(data.NumExamples());
  std::iota(all.begin(), all.end(), 0);
  stats::Rng rng(config_.seed);
  Build(data, all, 0, rng);
}

int DecisionTree::Build(const Dataset& data,
                        const std::vector<std::size_t>& indices, int depth,
                        stats::Rng& rng) {
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[node_id].positive_fraction = PositiveFraction(data, indices);

  const double frac = nodes_[node_id].positive_fraction;
  const bool pure = frac <= 0.0 || frac >= 1.0;
  if (depth >= config_.max_depth || pure ||
      indices.size() < static_cast<std::size_t>(config_.min_samples_split)) {
    return node_id;
  }

  const std::size_t num_features = data.NumFeatures();
  std::vector<std::size_t> candidate_features;
  if (config_.max_features > 0 &&
      static_cast<std::size_t>(config_.max_features) < num_features) {
    candidate_features = rng.SampleWithoutReplacement(
        num_features, static_cast<std::size_t>(config_.max_features));
  } else {
    candidate_features.resize(num_features);
    std::iota(candidate_features.begin(), candidate_features.end(), 0);
  }

  // Exhaustive search for the Gini-minimizing (feature, threshold) pair.
  double best_impurity = GiniFromCounts(
      frac * static_cast<double>(indices.size()),
      static_cast<double>(indices.size()));
  int best_feature = -1;
  double best_threshold = 0.0;
  const double parent_total = static_cast<double>(indices.size());

  std::vector<std::pair<double, int>> column(indices.size());
  for (std::size_t f : candidate_features) {
    for (std::size_t i = 0; i < indices.size(); ++i) {
      column[i] = {data.features[indices[i]][f], data.labels[indices[i]]};
    }
    std::sort(column.begin(), column.end());

    double left_pos = 0.0;
    double total_pos = 0.0;
    for (const auto& [value, label] : column) total_pos += label;

    for (std::size_t i = 0; i + 1 < column.size(); ++i) {
      left_pos += column[i].second;
      if (column[i].first == column[i + 1].first) continue;  // no gap
      const double left_total = static_cast<double>(i + 1);
      const double right_total = parent_total - left_total;
      if (left_total < config_.min_samples_leaf ||
          right_total < config_.min_samples_leaf) {
        continue;
      }
      const double impurity =
          (left_total * GiniFromCounts(left_pos, left_total) +
           right_total * GiniFromCounts(total_pos - left_pos, right_total)) /
          parent_total;
      if (impurity + 1e-12 < best_impurity) {
        best_impurity = impurity;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5 * (column[i].first + column[i + 1].first);
      }
    }
  }

  if (best_feature < 0) return node_id;  // No useful split.

  std::vector<std::size_t> left_idx, right_idx;
  for (std::size_t i : indices) {
    if (data.features[i][static_cast<std::size_t>(best_feature)] <=
        best_threshold) {
      left_idx.push_back(i);
    } else {
      right_idx.push_back(i);
    }
  }
  if (left_idx.empty() || right_idx.empty()) return node_id;

  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best_threshold;
  const int left = Build(data, left_idx, depth + 1, rng);
  nodes_[node_id].left = left;
  const int right = Build(data, right_idx, depth + 1, rng);
  nodes_[node_id].right = right;
  return node_id;
}

double DecisionTree::PredictProbaImpl(const std::vector<double>& row) const {
  int node = 0;
  while (nodes_[static_cast<std::size_t>(node)].feature >= 0) {
    const Node& n = nodes_[static_cast<std::size_t>(node)];
    node = row[static_cast<std::size_t>(n.feature)] <= n.threshold ? n.left
                                                                   : n.right;
  }
  return nodes_[static_cast<std::size_t>(node)].positive_fraction;
}

int DecisionTree::Depth() const {
  if (nodes_.empty()) return 0;
  std::function<int(int)> depth_of = [&](int id) -> int {
    const Node& n = nodes_[static_cast<std::size_t>(id)];
    if (n.feature < 0) return 0;
    return 1 + std::max(depth_of(n.left), depth_of(n.right));
  };
  return depth_of(0);
}

void DecisionTree::SaveStateImpl(robust::BinaryWriter& writer) const {
  writer.WriteTag("DTRE");
  writer.WriteU64(nodes_.size());
  for (const Node& node : nodes_) {
    writer.WriteI64(node.feature);
    writer.WriteDouble(node.threshold);
    writer.WriteI64(node.left);
    writer.WriteI64(node.right);
    writer.WriteDouble(node.positive_fraction);
  }
}

void DecisionTree::LoadStateImpl(robust::BinaryReader& reader) {
  reader.ExpectTag("DTRE");
  const std::uint64_t count = reader.ReadU64();
  nodes_.clear();
  for (std::uint64_t i = 0; i < count; ++i) {
    Node node;
    node.feature = static_cast<int>(reader.ReadI64());
    node.threshold = reader.ReadDouble();
    node.left = static_cast<int>(reader.ReadI64());
    node.right = static_cast<int>(reader.ReadI64());
    node.positive_fraction = reader.ReadDouble();
    nodes_.push_back(node);
  }
}

}  // namespace mexi::ml
