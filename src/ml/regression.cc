#include "ml/regression.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ml/kernels.h"

namespace mexi::ml {

void Regressor::Fit(const std::vector<std::vector<double>>& rows,
                    const std::vector<double>& targets) {
  if (rows.empty() || rows.size() != targets.size()) {
    throw std::invalid_argument("Regressor::Fit: bad input sizes");
  }
  FitImpl(rows, targets);
  fitted_ = true;
}

double Regressor::Predict(const std::vector<double>& row) const {
  if (!fitted_) throw std::logic_error("Regressor::Predict before Fit");
  return PredictImpl(row);
}

std::vector<double> Regressor::PredictAll(
    const std::vector<std::vector<double>>& rows) const {
  std::vector<double> out;
  out.reserve(rows.size());
  for (const auto& row : rows) out.push_back(Predict(row));
  return out;
}

std::unique_ptr<Regressor> RidgeRegression::Clone() const {
  return std::make_unique<RidgeRegression>(config_);
}

void RidgeRegression::FitImpl(const std::vector<std::vector<double>>& rows,
                              const std::vector<double>& targets) {
  standardizer_.Fit(rows);
  const auto x = standardizer_.TransformAll(rows);
  const std::size_t n = x.size();
  const std::size_t d = x[0].size();

  // Normal equations (X^T X + lambda I) w = X^T (y - mean(y)).
  double y_mean = 0.0;
  for (double y : targets) y_mean += y;
  y_mean /= static_cast<double>(n);

  std::vector<std::vector<double>> a(d, std::vector<double>(d, 0.0));
  std::vector<double> b(d, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double dy = targets[i] - y_mean;
    for (std::size_t p = 0; p < d; ++p) {
      b[p] += x[i][p] * dy;
      // Upper triangle of X^T X, one contiguous AXPY per pivot row.
      kernels::Axpy(x[i][p], &x[i][p], &a[p][p], d - p);
    }
  }
  for (std::size_t p = 0; p < d; ++p) {
    for (std::size_t q = 0; q < p; ++q) a[p][q] = a[q][p];
    a[p][p] += config_.lambda;
  }

  // Gaussian elimination with partial pivoting.
  std::vector<std::vector<double>> m = a;
  std::vector<double> rhs = b;
  std::vector<double> w(d, 0.0);
  for (std::size_t col = 0; col < d; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < d; ++r) {
      if (std::fabs(m[r][col]) > std::fabs(m[pivot][col])) pivot = r;
    }
    std::swap(m[col], m[pivot]);
    std::swap(rhs[col], rhs[pivot]);
    const double diag = m[col][col];
    if (std::fabs(diag) < 1e-12) continue;  // degenerate direction
    for (std::size_t r = col + 1; r < d; ++r) {
      const double factor = m[r][col] / diag;
      if (factor == 0.0) continue;
      // a - f*b == a + (-f)*b bitwise in IEEE, so the row update is a
      // single AXPY with a negated coefficient.
      kernels::Axpy(-factor, &m[col][col], &m[r][col], d - col);
      rhs[r] -= factor * rhs[col];
    }
  }
  for (std::size_t col = d; col-- > 0;) {
    double acc = rhs[col];
    for (std::size_t c = col + 1; c < d; ++c) acc -= m[col][c] * w[c];
    w[col] = std::fabs(m[col][col]) < 1e-12 ? 0.0 : acc / m[col][col];
  }
  weights_ = std::move(w);
  intercept_ = y_mean;
}

double RidgeRegression::PredictImpl(const std::vector<double>& row) const {
  const auto x = standardizer_.Transform(row);
  return kernels::Dot(weights_.data(), x.data(), x.size(), intercept_);
}

std::unique_ptr<Regressor> RandomForestRegressor::Clone() const {
  return std::make_unique<RandomForestRegressor>(config_);
}

void RandomForestRegressor::FitImpl(
    const std::vector<std::vector<double>>& rows,
    const std::vector<double>& targets) {
  trees_.clear();
  stats::Rng rng(config_.seed);
  for (int t = 0; t < config_.num_trees; ++t) {
    std::vector<std::vector<double>> bag_rows;
    std::vector<double> bag_targets;
    bag_rows.reserve(rows.size());
    bag_targets.reserve(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const std::size_t pick = rng.UniformIndex(rows.size());
      bag_rows.push_back(rows[pick]);
      bag_targets.push_back(targets[pick]);
    }
    RegressionTree tree(config_.tree);
    tree.Fit(bag_rows, bag_targets);
    trees_.push_back(std::move(tree));
  }
}

double RandomForestRegressor::PredictImpl(
    const std::vector<double>& row) const {
  double total = 0.0;
  for (const auto& tree : trees_) total += tree.Predict(row);
  return total / static_cast<double>(trees_.size());
}

std::unique_ptr<Regressor> KnnRegressor::Clone() const {
  return std::make_unique<KnnRegressor>(config_);
}

void KnnRegressor::FitImpl(const std::vector<std::vector<double>>& rows,
                           const std::vector<double>& targets) {
  standardizer_.Fit(rows);
  train_rows_ = standardizer_.TransformAll(rows);
  train_targets_ = targets;
}

double KnnRegressor::PredictImpl(const std::vector<double>& row) const {
  const auto x = standardizer_.Transform(row);
  std::vector<std::pair<double, double>> distances;  // (d2, target)
  distances.reserve(train_rows_.size());
  for (std::size_t i = 0; i < train_rows_.size(); ++i) {
    distances.emplace_back(
        kernels::SquaredDistance(x.data(), train_rows_[i].data(), x.size()),
        train_targets_[i]);
  }
  const std::size_t k = std::min<std::size_t>(
      static_cast<std::size_t>(config_.k), distances.size());
  std::partial_sort(distances.begin(),
                    distances.begin() + static_cast<long>(k),
                    distances.end());
  double weighted = 0.0, weight_total = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double w = 1.0 / (std::sqrt(distances[i].first) + 1e-6);
    weighted += w * distances[i].second;
    weight_total += w;
  }
  return weight_total > 0.0 ? weighted / weight_total : 0.0;
}

double MeanAbsoluteError(const std::vector<double>& truth,
                         const std::vector<double>& predicted) {
  if (truth.size() != predicted.size()) {
    throw std::invalid_argument("MeanAbsoluteError: size mismatch");
  }
  if (truth.empty()) return 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    total += std::fabs(truth[i] - predicted[i]);
  }
  return total / static_cast<double>(truth.size());
}

double RootMeanSquaredError(const std::vector<double>& truth,
                            const std::vector<double>& predicted) {
  if (truth.size() != predicted.size()) {
    throw std::invalid_argument("RootMeanSquaredError: size mismatch");
  }
  if (truth.empty()) return 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const double delta = truth[i] - predicted[i];
    total += delta * delta;
  }
  return std::sqrt(total / static_cast<double>(truth.size()));
}

}  // namespace mexi::ml
