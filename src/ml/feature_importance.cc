#include "ml/feature_importance.h"

#include <algorithm>
#include <stdexcept>

#include "ml/metrics.h"

namespace mexi::ml {

std::vector<FeatureImportance> PermutationImportance(
    const BinaryClassifier& model, const Dataset& data,
    const std::vector<std::string>& names, int repeats, stats::Rng& rng) {
  if (!model.fitted()) {
    throw std::logic_error("PermutationImportance: model not fitted");
  }
  if (data.NumExamples() == 0 || repeats <= 0) return {};
  const std::size_t d = data.NumFeatures();
  if (!names.empty() && names.size() != d) {
    throw std::invalid_argument("PermutationImportance: names size mismatch");
  }

  const double baseline =
      Accuracy(data.labels, model.PredictAll(data.features));

  std::vector<FeatureImportance> result(d);
  std::vector<std::vector<double>> shuffled = data.features;
  for (std::size_t f = 0; f < d; ++f) {
    double drop_total = 0.0;
    for (int r = 0; r < repeats; ++r) {
      // Permute column f only.
      std::vector<double> column(data.NumExamples());
      for (std::size_t i = 0; i < column.size(); ++i) {
        column[i] = data.features[i][f];
      }
      rng.Shuffle(column);
      for (std::size_t i = 0; i < column.size(); ++i) {
        shuffled[i][f] = column[i];
      }
      const double permuted =
          Accuracy(data.labels, model.PredictAll(shuffled));
      drop_total += baseline - permuted;
    }
    // Restore the column for the next feature.
    for (std::size_t i = 0; i < data.NumExamples(); ++i) {
      shuffled[i][f] = data.features[i][f];
    }
    result[f].index = f;
    // Built in a local and move-assigned: in-place char* assignment
    // here trips a spurious -Wrestrict in GCC 12 at -O3 (PR105329).
    std::string feature_name = names.empty() ? std::string("f") : names[f];
    if (names.empty()) feature_name += std::to_string(f);
    result[f].name = std::move(feature_name);
    result[f].importance = drop_total / static_cast<double>(repeats);
  }

  std::sort(result.begin(), result.end(),
            [](const FeatureImportance& a, const FeatureImportance& b) {
              return a.importance > b.importance;
            });
  return result;
}

}  // namespace mexi::ml
