#include "ml/metrics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/correlation.h"
#include "stats/descriptive.h"

namespace mexi::ml {

namespace {

void CheckSameSize(std::size_t a, std::size_t b, const char* what) {
  if (a != b) {
    throw std::invalid_argument(std::string(what) + ": size mismatch");
  }
}

}  // namespace

double Accuracy(const std::vector<int>& truth,
                const std::vector<int>& predicted) {
  CheckSameSize(truth.size(), predicted.size(), "Accuracy");
  if (truth.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] == predicted[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(truth.size());
}

double Precision(const std::vector<int>& truth,
                 const std::vector<int>& predicted) {
  CheckSameSize(truth.size(), predicted.size(), "Precision");
  std::size_t tp = 0, fp = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (predicted[i] == 1) {
      if (truth[i] == 1) {
        ++tp;
      } else {
        ++fp;
      }
    }
  }
  if (tp + fp == 0) return 0.0;
  return static_cast<double>(tp) / static_cast<double>(tp + fp);
}

double Recall(const std::vector<int>& truth,
              const std::vector<int>& predicted) {
  CheckSameSize(truth.size(), predicted.size(), "Recall");
  std::size_t tp = 0, fn = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] == 1) {
      if (predicted[i] == 1) {
        ++tp;
      } else {
        ++fn;
      }
    }
  }
  if (tp + fn == 0) return 0.0;
  return static_cast<double>(tp) / static_cast<double>(tp + fn);
}

double F1Score(const std::vector<int>& truth,
               const std::vector<int>& predicted) {
  const double p = Precision(truth, predicted);
  const double r = Recall(truth, predicted);
  if (p + r <= 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

double RocAuc(const std::vector<int>& truth,
              const std::vector<double>& scores) {
  CheckSameSize(truth.size(), scores.size(), "RocAuc");
  std::size_t positives = 0;
  for (int y : truth) positives += static_cast<std::size_t>(y == 1);
  const std::size_t negatives = truth.size() - positives;
  if (positives == 0 || negatives == 0) return 0.5;
  // Mann-Whitney U via average ranks: AUC = (R+ - n+(n+ + 1)/2) / (n+ n-).
  const std::vector<double> ranks = stats::AverageRanks(scores);
  double rank_sum_pos = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] == 1) rank_sum_pos += ranks[i];
  }
  const double np = static_cast<double>(positives);
  const double nn = static_cast<double>(negatives);
  return (rank_sum_pos - np * (np + 1.0) / 2.0) / (np * nn);
}

double MultiLabelJaccard(const std::vector<std::vector<int>>& truth,
                         const std::vector<std::vector<int>>& predicted) {
  CheckSameSize(truth.size(), predicted.size(), "MultiLabelJaccard");
  if (truth.empty()) return 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    CheckSameSize(truth[i].size(), predicted[i].size(), "MultiLabelJaccard");
    std::size_t inter = 0, uni = 0;
    for (std::size_t c = 0; c < truth[i].size(); ++c) {
      const bool t = truth[i][c] == 1;
      const bool p = predicted[i][c] == 1;
      inter += static_cast<std::size_t>(t && p);
      uni += static_cast<std::size_t>(t || p);
    }
    total += uni == 0 ? 1.0
                      : static_cast<double>(inter) / static_cast<double>(uni);
  }
  return total / static_cast<double>(truth.size());
}

double LogLoss(const std::vector<int>& truth,
               const std::vector<double>& probabilities) {
  CheckSameSize(truth.size(), probabilities.size(), "LogLoss");
  if (truth.empty()) return 0.0;
  double loss = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const double p = stats::Clamp(probabilities[i], 1e-12, 1.0 - 1e-12);
    loss -= truth[i] == 1 ? std::log(p) : std::log(1.0 - p);
  }
  return loss / static_cast<double>(truth.size());
}

}  // namespace mexi::ml
