#include "ml/knn.h"

#include <algorithm>
#include <cmath>

namespace mexi::ml {

std::unique_ptr<BinaryClassifier> KnnClassifier::Clone() const {
  return std::make_unique<KnnClassifier>(config_);
}

void KnnClassifier::FitImpl(const Dataset& data) {
  standardizer_.Fit(data.features);
  train_features_ = standardizer_.TransformAll(data.features);
  train_labels_ = data.labels;
}

void KnnClassifier::SaveStateImpl(robust::BinaryWriter& writer) const {
  writer.WriteTag("KNNC");
  writer.WriteI64(config_.k);
  standardizer_.SaveState(writer);
  writer.WriteU64(train_features_.size());
  for (const auto& row : train_features_) writer.WriteDoubleVector(row);
  writer.WriteU64(train_labels_.size());
  for (int label : train_labels_) writer.WriteI64(label);
}

void KnnClassifier::LoadStateImpl(robust::BinaryReader& reader) {
  reader.ExpectTag("KNNC");
  config_.k = static_cast<int>(reader.ReadI64());
  standardizer_.LoadState(reader);
  train_features_.assign(static_cast<std::size_t>(reader.ReadU64()), {});
  for (auto& row : train_features_) row = reader.ReadDoubleVector();
  train_labels_.assign(static_cast<std::size_t>(reader.ReadU64()), 0);
  for (int& label : train_labels_) label = static_cast<int>(reader.ReadI64());
}

double KnnClassifier::PredictProbaImpl(const std::vector<double>& row) const {
  const std::vector<double> x = standardizer_.Transform(row);
  std::vector<std::pair<double, int>> distances;
  distances.reserve(train_features_.size());
  for (std::size_t i = 0; i < train_features_.size(); ++i) {
    double d2 = 0.0;
    for (std::size_t j = 0; j < x.size(); ++j) {
      const double delta = x[j] - train_features_[i][j];
      d2 += delta * delta;
    }
    distances.emplace_back(d2, train_labels_[i]);
  }
  const std::size_t k = std::min<std::size_t>(
      static_cast<std::size_t>(config_.k), distances.size());
  std::partial_sort(distances.begin(),
                    distances.begin() + static_cast<long>(k),
                    distances.end());
  double weight_pos = 0.0, weight_total = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double w = 1.0 / (std::sqrt(distances[i].first) + 1e-6);
    weight_total += w;
    if (distances[i].second == 1) weight_pos += w;
  }
  return weight_total > 0.0 ? weight_pos / weight_total : 0.5;
}

}  // namespace mexi::ml
