#include "ml/linear_svm.h"

#include <cmath>

#include "ml/kernels.h"
#include "ml/vmath/vmath.h"

namespace mexi::ml {

std::unique_ptr<BinaryClassifier> LinearSvm::Clone() const {
  return std::make_unique<LinearSvm>(config_);
}

void LinearSvm::FitImpl(const Dataset& data) {
  standardizer_.Fit(data.features);
  const auto x = standardizer_.TransformAll(data.features);
  const std::size_t n = x.size();
  const std::size_t d = x[0].size();
  weights_.assign(d, 0.0);
  intercept_ = 0.0;

  stats::Rng rng(config_.seed);
  for (int t = 1; t <= config_.iterations; ++t) {
    const std::size_t i = rng.UniformIndex(n);
    const double y = data.labels[i] == 1 ? 1.0 : -1.0;
    const double margin =
        kernels::Dot(weights_.data(), x[i].data(), d, intercept_);
    const double eta = 1.0 / (config_.lambda * static_cast<double>(t));
    // Sub-gradient step: shrink always, push on hinge violation.
    kernels::Scale(weights_.data(), d, 1.0 - eta * config_.lambda);
    if (y * margin < 1.0) {
      kernels::Axpy(eta * y, x[i].data(), weights_.data(), d);
      intercept_ += eta * y;
    }
  }

  // Platt scaling: one-dimensional logistic regression on the margins.
  std::vector<double> margins(n);
  for (std::size_t i = 0; i < n; ++i) {
    margins[i] = kernels::Dot(weights_.data(), x[i].data(), d, intercept_);
  }
  platt_a_ = 1.0;
  platt_b_ = 0.0;
  const double lr = 0.1;
  for (int epoch = 0; epoch < 200; ++epoch) {
    double ga = 0.0, gb = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double p = vmath::Sigmoid(platt_a_ * margins[i] + platt_b_);
      const double err = p - static_cast<double>(data.labels[i]);
      ga += err * margins[i];
      gb += err;
    }
    platt_a_ -= lr * ga / static_cast<double>(n);
    platt_b_ -= lr * gb / static_cast<double>(n);
  }
}

double LinearSvm::Margin(const std::vector<double>& row) const {
  const std::vector<double> x = standardizer_.Transform(row);
  return kernels::Dot(weights_.data(), x.data(), x.size(), intercept_);
}

double LinearSvm::PredictProbaImpl(const std::vector<double>& row) const {
  return vmath::SigmoidInfer(platt_a_ * Margin(row) + platt_b_);
}

void LinearSvm::SaveStateImpl(robust::BinaryWriter& writer) const {
  writer.WriteTag("LSVM");
  standardizer_.SaveState(writer);
  writer.WriteDoubleVector(weights_);
  writer.WriteDouble(intercept_);
  writer.WriteDouble(platt_a_);
  writer.WriteDouble(platt_b_);
}

void LinearSvm::LoadStateImpl(robust::BinaryReader& reader) {
  reader.ExpectTag("LSVM");
  standardizer_.LoadState(reader);
  weights_ = reader.ReadDoubleVector();
  intercept_ = reader.ReadDouble();
  platt_a_ = reader.ReadDouble();
  platt_b_ = reader.ReadDouble();
}

}  // namespace mexi::ml
