#ifndef MEXI_ML_NAIVE_BAYES_H_
#define MEXI_ML_NAIVE_BAYES_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/classifier.h"

namespace mexi::ml {

/// Gaussian naive Bayes: per-class, per-feature normal likelihoods with
/// variance smoothing, combined in log space with the class priors.
class GaussianNaiveBayes : public BinaryClassifier {
 public:
  struct Config {
    /// Added to every variance as a fraction of the largest feature
    /// variance (sklearn's var_smoothing idea).
    double var_smoothing = 1e-9;
  };

  GaussianNaiveBayes() = default;
  explicit GaussianNaiveBayes(const Config& config) : config_(config) {}

  std::unique_ptr<BinaryClassifier> Clone() const override;
  std::string Name() const override { return "GaussianNaiveBayes"; }

 protected:
  void FitImpl(const Dataset& data) override;
  double PredictProbaImpl(const std::vector<double>& row) const override;
  void SaveStateImpl(robust::BinaryWriter& writer) const override;
  void LoadStateImpl(robust::BinaryReader& reader) override;

 private:
  Config config_;
  double log_prior_[2] = {0.0, 0.0};
  std::vector<double> mean_[2];
  std::vector<double> var_[2];
};

}  // namespace mexi::ml

#endif  // MEXI_ML_NAIVE_BAYES_H_
