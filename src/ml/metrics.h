#ifndef MEXI_ML_METRICS_H_
#define MEXI_ML_METRICS_H_

#include <vector>

namespace mexi::ml {

/// Classification accuracy; 0 when empty. This is the paper's Eq. 6
/// (per-characteristic accuracy A_c) when applied to one label column.
double Accuracy(const std::vector<int>& truth,
                const std::vector<int>& predicted);

/// Precision of the positive class; 0 when no positive predictions.
double Precision(const std::vector<int>& truth,
                 const std::vector<int>& predicted);

/// Recall of the positive class; 0 when no positive truths.
double Recall(const std::vector<int>& truth,
              const std::vector<int>& predicted);

/// F1 of the positive class.
double F1Score(const std::vector<int>& truth,
               const std::vector<int>& predicted);

/// Area under the ROC curve from real-valued scores (ties handled by
/// average ranks); 0.5 when one class is absent.
double RocAuc(const std::vector<int>& truth,
              const std::vector<double>& scores);

/// Multi-label Jaccard accuracy, the paper's Eq. 7 (A_ML):
/// mean over examples of |Y ∩ Ŷ| / |Y ∪ Ŷ|, where a label is "present"
/// when its value is 1. Rows where both sets are empty count as 1
/// (perfect agreement on "no expertise at all").
/// Requires truth.size() == predicted.size() and rectangular rows.
double MultiLabelJaccard(const std::vector<std::vector<int>>& truth,
                         const std::vector<std::vector<int>>& predicted);

/// Log loss (cross entropy) of probabilistic predictions, clipped away
/// from {0,1} for numerical safety.
double LogLoss(const std::vector<int>& truth,
               const std::vector<double>& probabilities);

}  // namespace mexi::ml

#endif  // MEXI_ML_METRICS_H_
