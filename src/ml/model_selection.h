#ifndef MEXI_ML_MODEL_SELECTION_H_
#define MEXI_ML_MODEL_SELECTION_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/classifier.h"
#include "ml/dataset.h"
#include "stats/rng.h"

namespace mexi::ml {

/// Cross-validated accuracy of one classifier prototype on `data`.
/// Clones the prototype per fold so the input stays untrained.
double CrossValidatedAccuracy(const BinaryClassifier& prototype,
                              const Dataset& data, std::size_t folds,
                              stats::Rng& rng);

/// Cross-validated *balanced* accuracy (mean of true-positive and
/// true-negative rates). On imbalanced labels — the cognitive expertise
/// characteristics are ~20% positive — plain accuracy rewards degenerate
/// majority predictors; balanced accuracy scores those 0.5 and prefers
/// models that actually detect the minority class.
double CrossValidatedBalancedAccuracy(const BinaryClassifier& prototype,
                                      const Dataset& data,
                                      std::size_t folds, stats::Rng& rng);

/// The default model zoo the paper's protocol draws from ("we trained a
/// set of state-of-the-art classifiers (e.g., SVM and Random Forest) ...
/// and selected the top performing classifier"): logistic regression,
/// linear SVM, decision tree, random forest, gradient boosting, k-NN and
/// Gaussian naive Bayes.
std::vector<std::unique_ptr<BinaryClassifier>> DefaultModelZoo();

/// Report from `SelectAndTrain`.
struct SelectionReport {
  std::string selected_name;
  std::vector<std::pair<std::string, double>> cv_scores;
};

/// Runs k-fold CV over every prototype, picks the top scorer, refits it
/// on the full `data`, and returns it. `report` (optional) receives the
/// per-model scores. Falls back to 2 folds when data is tiny. With
/// `balanced` set, selection uses balanced accuracy (recommended for
/// the rare expertise labels).
std::unique_ptr<BinaryClassifier> SelectAndTrain(
    const std::vector<std::unique_ptr<BinaryClassifier>>& zoo,
    const Dataset& data, std::size_t folds, stats::Rng& rng,
    SelectionReport* report = nullptr, bool balanced = false);

/// Tunes a probability decision threshold for `prototype` on `data`:
/// collects out-of-fold probabilities over a k-fold CV and returns the
/// threshold in [0.15, 0.85] (step .05) maximizing balanced accuracy.
/// Rare-positive labels typically land below the default 0.5.
double TuneDecisionThreshold(const BinaryClassifier& prototype,
                             const Dataset& data, std::size_t folds,
                             stats::Rng& rng);

}  // namespace mexi::ml

#endif  // MEXI_ML_MODEL_SELECTION_H_
