#include "ml/dataset.h"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace mexi::ml {

void Dataset::Add(std::vector<double> row, int label) {
  if (!features.empty() && row.size() != features[0].size()) {
    throw std::invalid_argument("Dataset::Add: feature dimension mismatch");
  }
  if (label != 0 && label != 1) {
    throw std::invalid_argument("Dataset::Add: label must be 0 or 1");
  }
  features.push_back(std::move(row));
  labels.push_back(label);
}

Dataset Dataset::Subset(const std::vector<std::size_t>& indices) const {
  Dataset out;
  out.feature_names = feature_names;
  out.features.reserve(indices.size());
  out.labels.reserve(indices.size());
  for (std::size_t idx : indices) {
    if (idx >= features.size()) {
      throw std::out_of_range("Dataset::Subset: index out of range");
    }
    out.features.push_back(features[idx]);
    out.labels.push_back(labels[idx]);
  }
  return out;
}

double Dataset::PositiveRate() const {
  if (labels.empty()) return 0.0;
  double positives = 0.0;
  for (int y : labels) positives += y;
  return positives / static_cast<double>(labels.size());
}

KFold::KFold(std::size_t n, std::size_t k, stats::Rng& rng) {
  if (k < 2 || k > n) {
    throw std::invalid_argument("KFold: need 2 <= k <= n");
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);
  folds_.resize(k);
  for (std::size_t i = 0; i < n; ++i) folds_[i % k].push_back(order[i]);
}

const std::vector<std::size_t>& KFold::TestIndices(std::size_t f) const {
  return folds_.at(f);
}

std::vector<std::size_t> KFold::TrainIndices(std::size_t f) const {
  if (f >= folds_.size()) throw std::out_of_range("KFold: bad fold");
  std::vector<std::size_t> out;
  for (std::size_t g = 0; g < folds_.size(); ++g) {
    if (g == f) continue;
    out.insert(out.end(), folds_[g].begin(), folds_[g].end());
  }
  return out;
}

void Standardizer::Fit(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) {
    throw std::invalid_argument("Standardizer::Fit: empty input");
  }
  const std::size_t dims = rows[0].size();
  means_.assign(dims, 0.0);
  scales_.assign(dims, 1.0);
  for (const auto& row : rows) {
    if (row.size() != dims) {
      throw std::invalid_argument("Standardizer::Fit: ragged input");
    }
    for (std::size_t d = 0; d < dims; ++d) means_[d] += row[d];
  }
  for (auto& m : means_) m /= static_cast<double>(rows.size());
  std::vector<double> var(dims, 0.0);
  for (const auto& row : rows) {
    for (std::size_t d = 0; d < dims; ++d) {
      const double delta = row[d] - means_[d];
      var[d] += delta * delta;
    }
  }
  for (std::size_t d = 0; d < dims; ++d) {
    const double sd = std::sqrt(var[d] / static_cast<double>(rows.size()));
    scales_[d] = sd > 1e-12 ? sd : 1.0;
  }
  fitted_ = true;
}

std::vector<double> Standardizer::Transform(
    const std::vector<double>& row) const {
  if (!fitted_) {
    throw std::logic_error("Standardizer::Transform before Fit");
  }
  if (row.size() != means_.size()) {
    throw std::invalid_argument("Standardizer::Transform: dim mismatch");
  }
  std::vector<double> out(row.size());
  for (std::size_t d = 0; d < row.size(); ++d) {
    out[d] = (row[d] - means_[d]) / scales_[d];
  }
  return out;
}

std::vector<std::vector<double>> Standardizer::TransformAll(
    const std::vector<std::vector<double>>& rows) const {
  std::vector<std::vector<double>> out;
  out.reserve(rows.size());
  for (const auto& row : rows) out.push_back(Transform(row));
  return out;
}

void Standardizer::SaveState(robust::BinaryWriter& writer) const {
  writer.WriteTag("STDZ");
  writer.WriteBool(fitted_);
  writer.WriteDoubleVector(means_);
  writer.WriteDoubleVector(scales_);
}

void Standardizer::LoadState(robust::BinaryReader& reader) {
  reader.ExpectTag("STDZ");
  fitted_ = reader.ReadBool();
  means_ = reader.ReadDoubleVector();
  scales_ = reader.ReadDoubleVector();
}

}  // namespace mexi::ml
