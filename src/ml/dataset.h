#ifndef MEXI_ML_DATASET_H_
#define MEXI_ML_DATASET_H_

#include <cstddef>
#include <string>
#include <vector>

#include "robust/serialize.h"
#include "stats/rng.h"

namespace mexi::ml {

/// A supervised-learning table: one row of features per example plus a
/// binary label (0/1) per example.
struct Dataset {
  /// features[i] is example i's feature vector; all rows share a size.
  std::vector<std::vector<double>> features;
  /// labels[i] in {0, 1}.
  std::vector<int> labels;
  /// Optional column names, parallel to feature dimensions; may be empty.
  std::vector<std::string> feature_names;

  std::size_t NumExamples() const { return features.size(); }
  std::size_t NumFeatures() const {
    return features.empty() ? 0 : features[0].size();
  }

  /// Appends one example. Throws on dimension mismatch with existing rows.
  void Add(std::vector<double> row, int label);

  /// Returns the subset selected by `indices` (duplicates allowed, which
  /// makes this usable for bootstrap resampling too).
  Dataset Subset(const std::vector<std::size_t>& indices) const;

  /// Fraction of positive labels; 0 when empty.
  double PositiveRate() const;
};

/// Index-based K-fold splitter.
///
/// The paper's protocol ("randomly split the matchers into 5 folds and
/// repeat an experiment 5 times") is reproduced by shuffling once and
/// cutting into `k` near-equal folds; fold f's test set is fold f and its
/// train set is everything else.
class KFold {
 public:
  /// Shuffles [0, n) with `rng` and prepares `k` folds. Requires 2 <= k <= n.
  KFold(std::size_t n, std::size_t k, stats::Rng& rng);

  std::size_t num_folds() const { return folds_.size(); }

  /// Test indices of fold `f`.
  const std::vector<std::size_t>& TestIndices(std::size_t f) const;

  /// Train indices of fold `f` (all other folds, original shuffle order).
  std::vector<std::size_t> TrainIndices(std::size_t f) const;

 private:
  std::vector<std::vector<std::size_t>> folds_;
};

/// Z-score standardizer fit on a training table and applied to any table.
///
/// Constant columns get unit scale so they map to zero instead of NaN —
/// important because some simulated matchers produce degenerate feature
/// columns (e.g., no right-clicks at all).
class Standardizer {
 public:
  /// Learns per-column mean and standard deviation.
  void Fit(const std::vector<std::vector<double>>& rows);

  /// Applies the learned transform; requires Fit() first and matching
  /// dimensionality.
  std::vector<double> Transform(const std::vector<double>& row) const;
  std::vector<std::vector<double>> TransformAll(
      const std::vector<std::vector<double>>& rows) const;

  bool fitted() const { return fitted_; }
  const std::vector<double>& means() const { return means_; }
  const std::vector<double>& scales() const { return scales_; }

  /// Exact (bitwise) round-trip of the learned transform.
  void SaveState(robust::BinaryWriter& writer) const;
  void LoadState(robust::BinaryReader& reader);

 private:
  std::vector<double> means_;
  std::vector<double> scales_;
  bool fitted_ = false;
};

}  // namespace mexi::ml

#endif  // MEXI_ML_DATASET_H_
