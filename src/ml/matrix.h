#ifndef MEXI_ML_MATRIX_H_
#define MEXI_ML_MATRIX_H_

#include <cstddef>
#include <span>
#include <vector>

#include "stats/rng.h"

namespace mexi::ml {

/// Dense row-major matrix of doubles.
///
/// The numerical workhorse of the machine-learning substrate: feature
/// tables, network activations, convolution buffers and heat maps are all
/// `Matrix` instances. The class is a value type (copyable, movable) and
/// keeps its storage in a single contiguous vector for cache-friendly
/// traversal. The product kernel is cache-blocked and fans out across
/// row blocks via src/parallel on large shapes; tiles are visited so
/// every element accumulates in naive-loop order, keeping the result
/// bitwise identical for any thread count (see MatMul/MatMulNaive).
class Matrix {
 public:
  /// Creates an empty 0x0 matrix.
  Matrix() = default;

  /// Creates a rows x cols matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Creates a matrix from nested vectors; requires rectangular input.
  static Matrix FromRows(const std::vector<std::vector<double>>& rows);

  /// Identity matrix of size n.
  static Matrix Identity(std::size_t n);

  /// Matrix with entries drawn from N(0, stddev^2).
  static Matrix RandomGaussian(std::size_t rows, std::size_t cols,
                               double stddev, stats::Rng& rng);

  /// Xavier/Glorot-uniform initialization for a (fan_in x fan_out) weight.
  static Matrix GlorotUniform(std::size_t fan_in, std::size_t fan_out,
                              stats::Rng& rng);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// Unchecked element access.
  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked element access; throws std::out_of_range.
  double& At(std::size_t r, std::size_t c);
  double At(std::size_t r, std::size_t c) const;

  /// Raw storage (row-major).
  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  /// Returns row r as a vector.
  std::vector<double> Row(std::size_t r) const;

  /// Returns column c as a vector.
  std::vector<double> Col(std::size_t c) const;

  /// Zero-copy view of row r (contiguous in the row-major layout).
  /// Prefer this over Row() in hot paths; the span is invalidated by any
  /// operation that reallocates the matrix.
  std::span<const double> RowSpan(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }
  std::span<double> RowSpan(std::size_t r) {
    return {data_.data() + r * cols_, cols_};
  }

  /// Strided zero-copy view of column c. Supports indexing, size, and
  /// range-for; same invalidation rule as RowSpan.
  class ColView {
   public:
    ColView(const double* base, std::size_t stride, std::size_t n)
        : base_(base), stride_(stride), n_(n) {}
    double operator[](std::size_t i) const { return base_[i * stride_]; }
    std::size_t size() const { return n_; }

    class Iterator {
     public:
      Iterator(const double* p, std::size_t stride)
          : p_(p), stride_(stride) {}
      double operator*() const { return *p_; }
      Iterator& operator++() {
        p_ += stride_;
        return *this;
      }
      bool operator!=(const Iterator& other) const { return p_ != other.p_; }

     private:
      const double* p_;
      std::size_t stride_;
    };
    Iterator begin() const { return {base_, stride_}; }
    Iterator end() const { return {base_ + n_ * stride_, stride_}; }

   private:
    const double* base_;
    std::size_t stride_;
    std::size_t n_;
  };
  ColView ColSpan(std::size_t c) const {
    return {data_.data() + c, cols_, rows_};
  }

  /// Overwrites row r. Requires values.size() == cols().
  void SetRow(std::size_t r, const std::vector<double>& values);

  /// Matrix product this * other. Requires cols() == other.rows().
  /// Cache-blocked, and row-parallel above a size threshold; bitwise
  /// identical to MatMulNaive for any thread count.
  Matrix MatMul(const Matrix& other) const;

  /// Reference single-pass i-k-j product. Kept as the correctness oracle
  /// for the blocked kernel (tests assert exact equality).
  Matrix MatMulNaive(const Matrix& other) const;

  /// Transpose.
  Matrix Transposed() const;

  /// Elementwise sum; requires equal shapes.
  Matrix operator+(const Matrix& other) const;
  Matrix& operator+=(const Matrix& other);

  /// Elementwise difference; requires equal shapes.
  Matrix operator-(const Matrix& other) const;
  Matrix& operator-=(const Matrix& other);

  /// Elementwise (Hadamard) product; requires equal shapes.
  Matrix Hadamard(const Matrix& other) const;

  /// Scalar product.
  Matrix operator*(double scalar) const;
  Matrix& operator*=(double scalar);

  /// Adds `row` (1 x cols) to every row; used for bias broadcasting.
  Matrix AddRowBroadcast(const Matrix& row) const;

  /// Applies `fn` to every element, returning a new matrix. Templated on
  /// the functor so lambdas inline into the loop — no per-element
  /// std::function dispatch (std::function arguments still work).
  template <typename Fn>
  Matrix Apply(Fn&& fn) const {
    Matrix out = *this;
    out.ApplyInPlace(fn);
    return out;
  }

  /// Applies `fn` to every element in place (inlineable; see Apply).
  template <typename Fn>
  void ApplyInPlace(Fn&& fn) {
    for (auto& v : data_) v = fn(v);
  }

  /// Sum of all elements.
  double Sum() const;

  /// Column sums as a 1 x cols matrix; used for bias gradients.
  Matrix ColSums() const;

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// L1 norm (max absolute column sum).
  double L1Norm() const;

  /// Infinity norm (max absolute row sum).
  double InfNorm() const;

  /// Largest absolute element.
  double MaxAbs() const;

  /// Fills every element with `value`.
  void Fill(double value);

  /// Equality within an absolute tolerance.
  bool AlmostEquals(const Matrix& other, double tolerance) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace mexi::ml

#endif  // MEXI_ML_MATRIX_H_
