#include "ml/serialize.h"

#include "robust/status.h"

namespace mexi::ml {

void WriteMatrix(robust::BinaryWriter& writer, const Matrix& matrix) {
  writer.WriteTag("MTRX");
  writer.WriteU64(matrix.rows());
  writer.WriteU64(matrix.cols());
  writer.WriteDoubles(matrix.data().data(), matrix.data().size());
}

Matrix ReadMatrix(robust::BinaryReader& reader) {
  reader.ExpectTag("MTRX");
  const std::uint64_t rows = reader.ReadU64();
  const std::uint64_t cols = reader.ReadU64();
  if (cols != 0 && rows > reader.remaining() / 8 / cols) {
    robust::ThrowStatus(robust::StatusCode::kCorruption,
                        "matrix shape " + std::to_string(rows) + "x" +
                            std::to_string(cols) +
                            " exceeds remaining payload");
  }
  Matrix matrix(static_cast<std::size_t>(rows),
                static_cast<std::size_t>(cols));
  reader.ReadDoubles(matrix.data().data(), matrix.data().size());
  return matrix;
}

void ReadMatrixInto(robust::BinaryReader& reader, Matrix& matrix,
                    const std::string& what) {
  reader.ExpectTag("MTRX");
  const std::uint64_t rows = reader.ReadU64();
  const std::uint64_t cols = reader.ReadU64();
  if (rows != matrix.rows() || cols != matrix.cols()) {
    robust::ThrowStatus(robust::StatusCode::kCorruption,
                        what + ": stored shape " + std::to_string(rows) +
                            "x" + std::to_string(cols) +
                            " does not match model shape " +
                            std::to_string(matrix.rows()) + "x" +
                            std::to_string(matrix.cols()));
  }
  reader.ReadDoubles(matrix.data().data(), matrix.data().size());
}

}  // namespace mexi::ml
