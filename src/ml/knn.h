#ifndef MEXI_ML_KNN_H_
#define MEXI_ML_KNN_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/classifier.h"
#include "ml/dataset.h"

namespace mexi::ml {

/// k-nearest-neighbors classifier over z-scored Euclidean distance with
/// inverse-distance weighting. Probability is the weighted positive share
/// among the k neighbors.
class KnnClassifier : public BinaryClassifier {
 public:
  struct Config {
    int k = 7;
  };

  KnnClassifier() = default;
  explicit KnnClassifier(const Config& config) : config_(config) {}

  std::unique_ptr<BinaryClassifier> Clone() const override;
  std::string Name() const override { return "KNN"; }

 protected:
  void FitImpl(const Dataset& data) override;
  double PredictProbaImpl(const std::vector<double>& row) const override;
  void SaveStateImpl(robust::BinaryWriter& writer) const override;
  void LoadStateImpl(robust::BinaryReader& reader) override;

 private:
  Config config_;
  Standardizer standardizer_;
  std::vector<std::vector<double>> train_features_;
  std::vector<int> train_labels_;
};

}  // namespace mexi::ml

#endif  // MEXI_ML_KNN_H_
