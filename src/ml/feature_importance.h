#ifndef MEXI_ML_FEATURE_IMPORTANCE_H_
#define MEXI_ML_FEATURE_IMPORTANCE_H_

#include <string>
#include <vector>

#include "ml/classifier.h"
#include "ml/dataset.h"
#include "stats/rng.h"

namespace mexi::ml {

/// One feature's attribution score.
struct FeatureImportance {
  std::string name;
  std::size_t index = 0;
  /// Mean accuracy drop when the feature column is permuted (higher =
  /// more important; can be slightly negative for pure-noise features).
  double importance = 0.0;
};

/// Model-agnostic permutation importance (Breiman 2001), this repo's
/// substitute for the paper's SHAP analysis in Table IV. For each column:
/// shuffle it `repeats` times, measure the accuracy drop against the
/// unshuffled baseline, and average. Results are sorted descending.
///
/// `names` may be empty (features are then named "f<index>") or must have
/// one entry per column.
std::vector<FeatureImportance> PermutationImportance(
    const BinaryClassifier& model, const Dataset& data,
    const std::vector<std::string>& names, int repeats, stats::Rng& rng);

}  // namespace mexi::ml

#endif  // MEXI_ML_FEATURE_IMPORTANCE_H_
