#include "ml/kernels.h"

#include <cmath>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "ml/vmath/vmath.h"

namespace mexi::ml::kernels {

void GemvAccum(const double* x, std::size_t m, const double* w,
               std::size_t n, double* y) {
  for (std::size_t k = 0; k < m; ++k) {
    const double xk = x[k];
    if (xk == 0.0) continue;
    Axpy(xk, w + k * n, y, n);
  }
}

namespace {

// One register-blocked output tile: acc[t] lives in registers across
// the whole k loop, so y is touched exactly twice (load, store) per
// cell instead of once per k as in the Axpy form. Each cell's chain is
// unchanged — y_init, then products ascending k with the zero-skip on
// x[k] — so the tile is bitwise identical to the Axpy form cell for
// cell; the tiling only reorders *independent* cells.
template <std::size_t kWidth>
inline void GemmAccumTile(const double* __restrict xb, std::size_t m,
                          const double* __restrict w, std::size_t ldw,
                          double* __restrict yt) {
  double acc[kWidth];
  for (std::size_t t = 0; t < kWidth; ++t) acc[t] = yt[t];
  for (std::size_t k = 0; k < m; ++k) {
    const double xk = xb[k];
    if (xk == 0.0) continue;
    const double* wk = w + k * ldw;
    for (std::size_t t = 0; t < kWidth; ++t) acc[t] += xk * wk[t];
  }
  for (std::size_t t = 0; t < kWidth; ++t) yt[t] = acc[t];
}

inline void GemmAccumTileTail(const double* __restrict xb, std::size_t m,
                              const double* __restrict w, std::size_t ldw,
                              double* __restrict yt, std::size_t width) {
  double acc[16];
  for (std::size_t t = 0; t < width; ++t) acc[t] = yt[t];
  for (std::size_t k = 0; k < m; ++k) {
    const double xk = xb[k];
    if (xk == 0.0) continue;
    const double* wk = w + k * ldw;
    for (std::size_t t = 0; t < width; ++t) acc[t] += xk * wk[t];
  }
  for (std::size_t t = 0; t < width; ++t) yt[t] = acc[t];
}

// Four lanes share one register-resident pass over w's [m x 8] column
// slice, so the weight slab is streamed from cache once per *four*
// rows of the batch instead of once per row — the main bandwidth win
// of batching, since for LSTM-sized layers w far exceeds L1 and every
// lane of the unblocked form re-streams it from L2. Each lane keeps
// its own accumulators and its own zero-skip test on x[k], so every
// output cell's FP chain (init, then products ascending k, skipping
// k's with x[k] == 0) is exactly the single-lane chain.
#if defined(__AVX2__)
inline void GemmAccumBlock4(const double* __restrict x, std::size_t ldx,
                            std::size_t m, const double* __restrict w,
                            std::size_t ldw, double* __restrict y,
                            std::size_t ldy) {
  const double* x0 = x;
  const double* x1 = x + ldx;
  const double* x2 = x + 2 * ldx;
  const double* x3 = x + 3 * ldx;
  double* y0 = y;
  double* y1 = y + ldy;
  double* y2 = y + 2 * ldy;
  double* y3 = y + 3 * ldy;
  // Eight accumulator registers (two per lane) stay live across the
  // whole k loop; one mul + one add per element keeps the exact scalar
  // IEEE operations (-mno-fma holds for intrinsics too: these are
  // separate vmulpd/vaddpd, never contracted).
  __m256d a00 = _mm256_loadu_pd(y0), a01 = _mm256_loadu_pd(y0 + 4);
  __m256d a10 = _mm256_loadu_pd(y1), a11 = _mm256_loadu_pd(y1 + 4);
  __m256d a20 = _mm256_loadu_pd(y2), a21 = _mm256_loadu_pd(y2 + 4);
  __m256d a30 = _mm256_loadu_pd(y3), a31 = _mm256_loadu_pd(y3 + 4);
  for (std::size_t k = 0; k < m; ++k) {
    const double* wk = w + k * ldw;
    const __m256d w0 = _mm256_loadu_pd(wk);
    const __m256d w1 = _mm256_loadu_pd(wk + 4);
    const double xk0 = x0[k];
    const double xk1 = x1[k];
    const double xk2 = x2[k];
    const double xk3 = x3[k];
    if (xk0 != 0.0) {
      const __m256d xv = _mm256_set1_pd(xk0);
      a00 = _mm256_add_pd(a00, _mm256_mul_pd(xv, w0));
      a01 = _mm256_add_pd(a01, _mm256_mul_pd(xv, w1));
    }
    if (xk1 != 0.0) {
      const __m256d xv = _mm256_set1_pd(xk1);
      a10 = _mm256_add_pd(a10, _mm256_mul_pd(xv, w0));
      a11 = _mm256_add_pd(a11, _mm256_mul_pd(xv, w1));
    }
    if (xk2 != 0.0) {
      const __m256d xv = _mm256_set1_pd(xk2);
      a20 = _mm256_add_pd(a20, _mm256_mul_pd(xv, w0));
      a21 = _mm256_add_pd(a21, _mm256_mul_pd(xv, w1));
    }
    if (xk3 != 0.0) {
      const __m256d xv = _mm256_set1_pd(xk3);
      a30 = _mm256_add_pd(a30, _mm256_mul_pd(xv, w0));
      a31 = _mm256_add_pd(a31, _mm256_mul_pd(xv, w1));
    }
  }
  _mm256_storeu_pd(y0, a00);
  _mm256_storeu_pd(y0 + 4, a01);
  _mm256_storeu_pd(y1, a10);
  _mm256_storeu_pd(y1 + 4, a11);
  _mm256_storeu_pd(y2, a20);
  _mm256_storeu_pd(y2 + 4, a21);
  _mm256_storeu_pd(y3, a30);
  _mm256_storeu_pd(y3 + 4, a31);
}
#else
inline void GemmAccumBlock4(const double* __restrict x, std::size_t ldx,
                            std::size_t m, const double* __restrict w,
                            std::size_t ldw, double* __restrict y,
                            std::size_t ldy) {
  constexpr std::size_t kW = 8;
  for (std::size_t l = 0; l < 4; ++l) {
    GemmAccumTile<kW>(x + l * ldx, m, w, ldw, y + l * ldy);
  }
}
#endif

#if defined(__AVX2__) && defined(__GNUC__)
#define MEXI_HAVE_FMA_DISPATCH 1

// The repo compiles with -mno-fma so the *compiler* can never contract
// a mul+add behind our back; the fused serve kernels below opt in
// explicitly with a per-function target attribute and are only ever
// reached through the runtime CPU check in FusedAvailable(). IEEE
// defines the fused result exactly, so these are just as deterministic
// as the split form — they simply round once per term instead of twice.

bool FusedAvailable() {
  static const bool ok = __builtin_cpu_supports("fma");
  return ok;
}

// Fused AXPY: y[j] = fma(a, x[j], y[j]). The vector and scalar-tail
// forms produce identical bits per element (IEEE fma is exact), so the
// 4-wide split is scheduling only.
__attribute__((target("avx2,fma"))) void AxpyFma(double a,
                                                 const double* __restrict x,
                                                 double* __restrict y,
                                                 std::size_t n) {
  const __m256d av = _mm256_set1_pd(a);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    _mm256_storeu_pd(
        y + j, _mm256_fmadd_pd(av, _mm256_loadu_pd(x + j),
                               _mm256_loadu_pd(y + j)));
  }
  for (; j < n; ++j) y[j] = __builtin_fma(a, x[j], y[j]);
}

// Fused twin of GemmAccumBlock4: same eight register accumulators,
// same per-lane zero-skip, one fused op per element-term.
// `init` non-null seeds all four lanes' accumulators from one shared
// row (the bias-fold path) instead of loading y.
__attribute__((target("avx2,fma"))) void GemmAccumBlock4Fma(
    const double* __restrict x, std::size_t ldx, std::size_t m,
    const double* __restrict w, std::size_t ldw, double* __restrict y,
    std::size_t ldy, const double* __restrict init) {
  const double* x0 = x;
  const double* x1 = x + ldx;
  const double* x2 = x + 2 * ldx;
  const double* x3 = x + 3 * ldx;
  double* y0 = y;
  double* y1 = y + ldy;
  double* y2 = y + 2 * ldy;
  double* y3 = y + 3 * ldy;
  __m256d a00, a01, a10, a11, a20, a21, a30, a31;
  if (init != nullptr) {
    a00 = a10 = a20 = a30 = _mm256_loadu_pd(init);
    a01 = a11 = a21 = a31 = _mm256_loadu_pd(init + 4);
  } else {
    a00 = _mm256_loadu_pd(y0), a01 = _mm256_loadu_pd(y0 + 4);
    a10 = _mm256_loadu_pd(y1), a11 = _mm256_loadu_pd(y1 + 4);
    a20 = _mm256_loadu_pd(y2), a21 = _mm256_loadu_pd(y2 + 4);
    a30 = _mm256_loadu_pd(y3), a31 = _mm256_loadu_pd(y3 + 4);
  }
  for (std::size_t k = 0; k < m; ++k) {
    const double* wk = w + k * ldw;
    const __m256d w0 = _mm256_loadu_pd(wk);
    const __m256d w1 = _mm256_loadu_pd(wk + 4);
    const double xk0 = x0[k];
    const double xk1 = x1[k];
    const double xk2 = x2[k];
    const double xk3 = x3[k];
    if (xk0 != 0.0) {
      const __m256d xv = _mm256_set1_pd(xk0);
      a00 = _mm256_fmadd_pd(xv, w0, a00);
      a01 = _mm256_fmadd_pd(xv, w1, a01);
    }
    if (xk1 != 0.0) {
      const __m256d xv = _mm256_set1_pd(xk1);
      a10 = _mm256_fmadd_pd(xv, w0, a10);
      a11 = _mm256_fmadd_pd(xv, w1, a11);
    }
    if (xk2 != 0.0) {
      const __m256d xv = _mm256_set1_pd(xk2);
      a20 = _mm256_fmadd_pd(xv, w0, a20);
      a21 = _mm256_fmadd_pd(xv, w1, a21);
    }
    if (xk3 != 0.0) {
      const __m256d xv = _mm256_set1_pd(xk3);
      a30 = _mm256_fmadd_pd(xv, w0, a30);
      a31 = _mm256_fmadd_pd(xv, w1, a31);
    }
  }
  _mm256_storeu_pd(y0, a00);
  _mm256_storeu_pd(y0 + 4, a01);
  _mm256_storeu_pd(y1, a10);
  _mm256_storeu_pd(y1 + 4, a11);
  _mm256_storeu_pd(y2, a20);
  _mm256_storeu_pd(y2 + 4, a21);
  _mm256_storeu_pd(y3, a30);
  _mm256_storeu_pd(y3 + 4, a31);
}

// Fused single-lane tail tile (register accumulators, scalar fma).
__attribute__((target("fma"))) void GemmAccumTileTailFma(
    const double* __restrict xb, std::size_t m, const double* __restrict w,
    std::size_t ldw, double* __restrict yt, std::size_t width,
    const double* __restrict init = nullptr) {
  double acc[16];
  if (init != nullptr) {
    for (std::size_t t = 0; t < width; ++t) acc[t] = init[t];
  } else {
    for (std::size_t t = 0; t < width; ++t) acc[t] = yt[t];
  }
  for (std::size_t k = 0; k < m; ++k) {
    const double xk = xb[k];
    if (xk == 0.0) continue;
    const double* wk = w + k * ldw;
    for (std::size_t t = 0; t < width; ++t) {
      acc[t] = __builtin_fma(xk, wk[t], acc[t]);
    }
  }
  for (std::size_t t = 0; t < width; ++t) yt[t] = acc[t];
}
#endif  // __AVX2__ && __GNUC__

}  // namespace

void GemvAccumFused(const double* x, std::size_t m, const double* w,
                    std::size_t n, double* y) {
#if defined(MEXI_HAVE_FMA_DISPATCH)
  if (FusedAvailable()) {
    for (std::size_t k = 0; k < m; ++k) {
      const double xk = x[k];
      if (xk == 0.0) continue;
      AxpyFma(xk, w + k * n, y, n);
    }
    return;
  }
#endif
  GemvAccum(x, m, w, n, y);
}

void GemmAccumFused(const double* x, std::size_t batch, std::size_t m,
                    std::size_t ldx, const double* w, std::size_t ldw,
                    std::size_t n, double* y, std::size_t ldy) {
#if defined(MEXI_HAVE_FMA_DISPATCH)
  if (FusedAvailable()) {
    constexpr std::size_t kBlockW = 8;
    constexpr std::size_t kTile = 16;
    std::size_t b = 0;
    for (; b + 4 <= batch; b += 4) {
      const double* xb = x + b * ldx;
      double* yb = y + b * ldy;
      std::size_t j = 0;
      for (; j + kBlockW <= n; j += kBlockW) {
        GemmAccumBlock4Fma(xb, ldx, m, w + j, ldw, yb + j, ldy, nullptr);
      }
      if (j < n) {
        for (std::size_t l = 0; l < 4; ++l) {
          GemmAccumTileTailFma(xb + l * ldx, m, w + j, ldw,
                               yb + l * ldy + j, n - j);
        }
      }
    }
    for (; b < batch; ++b) {
      const double* xb = x + b * ldx;
      double* yb = y + b * ldy;
      for (std::size_t j = 0; j < n; j += kTile) {
        const std::size_t width = n - j < kTile ? n - j : kTile;
        GemmAccumTileTailFma(xb, m, w + j, ldw, yb + j, width);
      }
    }
    return;
  }
#endif
  GemmAccum(x, batch, m, ldx, w, ldw, n, y, ldy);
}

void GemmFusedBiasInit(const double* init, const double* x,
                       std::size_t batch, std::size_t m, std::size_t ldx,
                       const double* w, std::size_t ldw, std::size_t n,
                       double* y, std::size_t ldy) {
#if defined(MEXI_HAVE_FMA_DISPATCH)
  if (FusedAvailable()) {
    constexpr std::size_t kBlockW = 8;
    constexpr std::size_t kTile = 16;
    std::size_t b = 0;
    for (; b + 4 <= batch; b += 4) {
      const double* xb = x + b * ldx;
      double* yb = y + b * ldy;
      std::size_t j = 0;
      for (; j + kBlockW <= n; j += kBlockW) {
        GemmAccumBlock4Fma(xb, ldx, m, w + j, ldw, yb + j, ldy, init + j);
      }
      if (j < n) {
        for (std::size_t l = 0; l < 4; ++l) {
          GemmAccumTileTailFma(xb + l * ldx, m, w + j, ldw,
                               yb + l * ldy + j, n - j, init + j);
        }
      }
    }
    for (; b < batch; ++b) {
      const double* xb = x + b * ldx;
      double* yb = y + b * ldy;
      for (std::size_t j = 0; j < n; j += kTile) {
        const std::size_t width = n - j < kTile ? n - j : kTile;
        GemmAccumTileTailFma(xb, m, w + j, ldw, yb + j, width, init + j);
      }
    }
    return;
  }
#endif
  for (std::size_t b = 0; b < batch; ++b) {
    Copy(init, y + b * ldy, n);
  }
  GemmAccum(x, batch, m, ldx, w, ldw, n, y, ldy);
}

void GemmAccum(const double* x, std::size_t batch, std::size_t m,
               std::size_t ldx, const double* w, std::size_t ldw,
               std::size_t n, double* y, std::size_t ldy) {
  constexpr std::size_t kBlockW = 8;
  constexpr std::size_t kTile = 16;  // single-lane tail tile
  std::size_t b = 0;
  for (; b + 4 <= batch; b += 4) {
    const double* xb = x + b * ldx;
    double* yb = y + b * ldy;
    std::size_t j = 0;
    for (; j + kBlockW <= n; j += kBlockW) {
      GemmAccumBlock4(xb, ldx, m, w + j, ldw, yb + j, ldy);
    }
    if (j < n) {
      // Ragged column tail: finish each of the four lanes single-lane.
      for (std::size_t l = 0; l < 4; ++l) {
        GemmAccumTileTail(xb + l * ldx, m, w + j, ldw, yb + l * ldy + j,
                          n - j);
      }
    }
  }
  for (; b < batch; ++b) {
    const double* xb = x + b * ldx;
    double* yb = y + b * ldy;
    std::size_t j = 0;
    for (; j + kTile <= n; j += kTile) {
      GemmAccumTile<kTile>(xb, m, w + j, ldw, yb + j);
    }
    if (j < n) GemmAccumTileTail(xb, m, w + j, ldw, yb + j, n - j);
  }
}

void DotRows(const double* w, std::size_t rows, std::size_t n,
             const double* x, double* y) {
  std::size_t r = 0;
  for (; r + 4 <= rows; r += 4) {
    const double* w0 = w + r * n;
    const double* w1 = w0 + n;
    const double* w2 = w1 + n;
    const double* w3 = w2 + n;
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double xj = x[j];
      a0 += w0[j] * xj;
      a1 += w1[j] * xj;
      a2 += w2[j] * xj;
      a3 += w3[j] * xj;
    }
    y[r] = a0;
    y[r + 1] = a1;
    y[r + 2] = a2;
    y[r + 3] = a3;
  }
  for (; r < rows; ++r) y[r] = Dot(w + r * n, x, n);
}

void DotRowsSkipZero(const double* w, std::size_t rows, std::size_t n,
                     const double* x, double* y) {
  std::size_t r = 0;
  for (; r + 4 <= rows; r += 4) {
    const double* w0 = w + r * n;
    const double* w1 = w0 + n;
    const double* w2 = w1 + n;
    const double* w3 = w2 + n;
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double xj = x[j];
      if (xj == 0.0) continue;
      a0 += xj * w0[j];
      a1 += xj * w1[j];
      a2 += xj * w2[j];
      a3 += xj * w3[j];
    }
    y[r] = a0;
    y[r + 1] = a1;
    y[r + 2] = a2;
    y[r + 3] = a3;
  }
  for (; r < rows; ++r) y[r] = DotSkipZero(x, w + r * n, n);
}

void AddColSums(const double* g, std::size_t rows, std::size_t cols,
                double* y) {
  for (std::size_t j = 0; j < cols; ++j) {
    double acc = 0.0;
    for (std::size_t i = 0; i < rows; ++i) acc += g[i * cols + j];
    y[j] += acc;
  }
}

void ReluInto(const double* x, double* y, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) y[j] = x[j] > 0.0 ? x[j] : 0.0;
}

void SigmoidInto(const double* x, double* y, std::size_t n) {
  vmath::VSigmoid(x, y, n);
}

void TanhInto(const double* x, double* y, std::size_t n) {
  vmath::VTanh(x, y, n);
}

// The cell update is fissioned into batched activations plus two
// element-independent combine loops. Every element's expression tree is
// unchanged from the original fused per-j loop, and no element reads
// another element's result, so reordering the statements across j is
// bitwise-neutral — only the transcendental batching (one audited vmath
// call per gate slice instead of ~5 libm calls per j) differs.
void LstmCellForward(const double* a, std::size_t h_dim, double* gates,
                     double* c, double* tanh_c, double* h) {
  double* gi = gates;
  double* gf = gates + h_dim;
  double* gg = gates + 2 * h_dim;
  double* go = gates + 3 * h_dim;
  // The i and f gate slices are contiguous: one batched call covers both.
  vmath::VSigmoid(a, gi, 2 * h_dim);
  vmath::VTanh(a + 2 * h_dim, gg, h_dim);
  vmath::VSigmoid(a + 3 * h_dim, go, h_dim);
  for (std::size_t j = 0; j < h_dim; ++j) {
    c[j] = gf[j] * c[j] + gi[j] * gg[j];
  }
  vmath::VTanh(c, tanh_c, h_dim);
  for (std::size_t j = 0; j < h_dim; ++j) h[j] = go[j] * tanh_c[j];
}

// Fast-mode twin for Predict paths only (callers gate on
// vmath::FastMathActive() && !training): ULP-bounded activations, same
// combine arithmetic.
void LstmCellForwardFast(const double* a, std::size_t h_dim, double* gates,
                         double* c, double* tanh_c, double* h) {
  double* gi = gates;
  double* gf = gates + h_dim;
  double* gg = gates + 2 * h_dim;
  double* go = gates + 3 * h_dim;
  vmath::VSigmoidFast(a, gi, 2 * h_dim);
  vmath::VTanhFast(a + 2 * h_dim, gg, h_dim);
  vmath::VSigmoidFast(a + 3 * h_dim, go, h_dim);
  for (std::size_t j = 0; j < h_dim; ++j) {
    c[j] = gf[j] * c[j] + gi[j] * gg[j];
  }
  vmath::VTanhFast(c, tanh_c, h_dim);
  for (std::size_t j = 0; j < h_dim; ++j) h[j] = go[j] * tanh_c[j];
}

void AdamStep(double* __restrict p, double* __restrict g,
              double* __restrict m, double* __restrict v, std::size_t n,
              double beta1, double beta2, double bias1, double bias2,
              double lr, double eps) {
  for (std::size_t i = 0; i < n; ++i) {
    m[i] = beta1 * m[i] + (1.0 - beta1) * g[i];
    v[i] = beta2 * v[i] + (1.0 - beta2) * g[i] * g[i];
    const double m_hat = m[i] / bias1;
    const double v_hat = v[i] / bias2;
    p[i] -= lr * m_hat / (std::sqrt(v_hat) + eps);
    g[i] = 0.0;
  }
}

void LstmCellBackward(const double* dh, const double* gates,
                      const double* tanh_c, const double* c_prev,
                      std::size_t h_dim, double* dc, double* da) {
  const double* gi = gates;
  const double* gf = gates + h_dim;
  const double* gg = gates + 2 * h_dim;
  const double* go = gates + 3 * h_dim;
  for (std::size_t j = 0; j < h_dim; ++j) {
    const double do_j = dh[j] * tanh_c[j];
    const double dct =
        dh[j] * go[j] * (1.0 - tanh_c[j] * tanh_c[j]) + dc[j];
    const double di = dct * gg[j];
    const double df = dct * c_prev[j];
    const double dg = dct * gi[j];
    da[j] = di * gi[j] * (1.0 - gi[j]);
    da[h_dim + j] = df * gf[j] * (1.0 - gf[j]);
    da[2 * h_dim + j] = dg * (1.0 - gg[j] * gg[j]);
    da[3 * h_dim + j] = do_j * go[j] * (1.0 - go[j]);
    dc[j] = dct * gf[j];
  }
}

}  // namespace mexi::ml::kernels
