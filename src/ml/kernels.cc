#include "ml/kernels.h"

#include <cmath>

#include "ml/vmath/vmath.h"

namespace mexi::ml::kernels {

void GemvAccum(const double* x, std::size_t m, const double* w,
               std::size_t n, double* y) {
  for (std::size_t k = 0; k < m; ++k) {
    const double xk = x[k];
    if (xk == 0.0) continue;
    Axpy(xk, w + k * n, y, n);
  }
}

void DotRows(const double* w, std::size_t rows, std::size_t n,
             const double* x, double* y) {
  std::size_t r = 0;
  for (; r + 4 <= rows; r += 4) {
    const double* w0 = w + r * n;
    const double* w1 = w0 + n;
    const double* w2 = w1 + n;
    const double* w3 = w2 + n;
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double xj = x[j];
      a0 += w0[j] * xj;
      a1 += w1[j] * xj;
      a2 += w2[j] * xj;
      a3 += w3[j] * xj;
    }
    y[r] = a0;
    y[r + 1] = a1;
    y[r + 2] = a2;
    y[r + 3] = a3;
  }
  for (; r < rows; ++r) y[r] = Dot(w + r * n, x, n);
}

void DotRowsSkipZero(const double* w, std::size_t rows, std::size_t n,
                     const double* x, double* y) {
  std::size_t r = 0;
  for (; r + 4 <= rows; r += 4) {
    const double* w0 = w + r * n;
    const double* w1 = w0 + n;
    const double* w2 = w1 + n;
    const double* w3 = w2 + n;
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double xj = x[j];
      if (xj == 0.0) continue;
      a0 += xj * w0[j];
      a1 += xj * w1[j];
      a2 += xj * w2[j];
      a3 += xj * w3[j];
    }
    y[r] = a0;
    y[r + 1] = a1;
    y[r + 2] = a2;
    y[r + 3] = a3;
  }
  for (; r < rows; ++r) y[r] = DotSkipZero(x, w + r * n, n);
}

void AddColSums(const double* g, std::size_t rows, std::size_t cols,
                double* y) {
  for (std::size_t j = 0; j < cols; ++j) {
    double acc = 0.0;
    for (std::size_t i = 0; i < rows; ++i) acc += g[i * cols + j];
    y[j] += acc;
  }
}

void ReluInto(const double* x, double* y, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) y[j] = x[j] > 0.0 ? x[j] : 0.0;
}

void SigmoidInto(const double* x, double* y, std::size_t n) {
  vmath::VSigmoid(x, y, n);
}

void TanhInto(const double* x, double* y, std::size_t n) {
  vmath::VTanh(x, y, n);
}

// The cell update is fissioned into batched activations plus two
// element-independent combine loops. Every element's expression tree is
// unchanged from the original fused per-j loop, and no element reads
// another element's result, so reordering the statements across j is
// bitwise-neutral — only the transcendental batching (one audited vmath
// call per gate slice instead of ~5 libm calls per j) differs.
void LstmCellForward(const double* a, std::size_t h_dim, double* gates,
                     double* c, double* tanh_c, double* h) {
  double* gi = gates;
  double* gf = gates + h_dim;
  double* gg = gates + 2 * h_dim;
  double* go = gates + 3 * h_dim;
  // The i and f gate slices are contiguous: one batched call covers both.
  vmath::VSigmoid(a, gi, 2 * h_dim);
  vmath::VTanh(a + 2 * h_dim, gg, h_dim);
  vmath::VSigmoid(a + 3 * h_dim, go, h_dim);
  for (std::size_t j = 0; j < h_dim; ++j) {
    c[j] = gf[j] * c[j] + gi[j] * gg[j];
  }
  vmath::VTanh(c, tanh_c, h_dim);
  for (std::size_t j = 0; j < h_dim; ++j) h[j] = go[j] * tanh_c[j];
}

// Fast-mode twin for Predict paths only (callers gate on
// vmath::FastMathActive() && !training): ULP-bounded activations, same
// combine arithmetic.
void LstmCellForwardFast(const double* a, std::size_t h_dim, double* gates,
                         double* c, double* tanh_c, double* h) {
  double* gi = gates;
  double* gf = gates + h_dim;
  double* gg = gates + 2 * h_dim;
  double* go = gates + 3 * h_dim;
  vmath::VSigmoidFast(a, gi, 2 * h_dim);
  vmath::VTanhFast(a + 2 * h_dim, gg, h_dim);
  vmath::VSigmoidFast(a + 3 * h_dim, go, h_dim);
  for (std::size_t j = 0; j < h_dim; ++j) {
    c[j] = gf[j] * c[j] + gi[j] * gg[j];
  }
  vmath::VTanhFast(c, tanh_c, h_dim);
  for (std::size_t j = 0; j < h_dim; ++j) h[j] = go[j] * tanh_c[j];
}

void AdamStep(double* __restrict p, double* __restrict g,
              double* __restrict m, double* __restrict v, std::size_t n,
              double beta1, double beta2, double bias1, double bias2,
              double lr, double eps) {
  for (std::size_t i = 0; i < n; ++i) {
    m[i] = beta1 * m[i] + (1.0 - beta1) * g[i];
    v[i] = beta2 * v[i] + (1.0 - beta2) * g[i] * g[i];
    const double m_hat = m[i] / bias1;
    const double v_hat = v[i] / bias2;
    p[i] -= lr * m_hat / (std::sqrt(v_hat) + eps);
    g[i] = 0.0;
  }
}

void LstmCellBackward(const double* dh, const double* gates,
                      const double* tanh_c, const double* c_prev,
                      std::size_t h_dim, double* dc, double* da) {
  const double* gi = gates;
  const double* gf = gates + h_dim;
  const double* gg = gates + 2 * h_dim;
  const double* go = gates + 3 * h_dim;
  for (std::size_t j = 0; j < h_dim; ++j) {
    const double do_j = dh[j] * tanh_c[j];
    const double dct =
        dh[j] * go[j] * (1.0 - tanh_c[j] * tanh_c[j]) + dc[j];
    const double di = dct * gg[j];
    const double df = dct * c_prev[j];
    const double dg = dct * gi[j];
    da[j] = di * gi[j] * (1.0 - gi[j]);
    da[h_dim + j] = df * gf[j] * (1.0 - gf[j]);
    da[2 * h_dim + j] = dg * (1.0 - gg[j] * gg[j]);
    da[3 * h_dim + j] = do_j * go[j] * (1.0 - go[j]);
    dc[j] = dct * gf[j];
  }
}

}  // namespace mexi::ml::kernels
