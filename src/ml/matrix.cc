#include "ml/matrix.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "ml/kernels.h"
#include "parallel/parallel_for.h"

namespace mexi::ml {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols) {
  // rows*cols wrapping past size_t would build an undersized buffer
  // that unchecked operator() then writes past; refuse instead.
  if (cols != 0 && rows > std::numeric_limits<std::size_t>::max() / cols) {
    throw std::length_error("Matrix: rows*cols overflows std::size_t");
  }
  data_.assign(rows * cols, fill);
}

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != m.cols_) {
      throw std::invalid_argument("Matrix::FromRows: ragged input");
    }
    for (std::size_t c = 0; c < m.cols_; ++c) m(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::Identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::RandomGaussian(std::size_t rows, std::size_t cols,
                              double stddev, stats::Rng& rng) {
  Matrix m(rows, cols);
  for (auto& v : m.data_) v = rng.Gaussian(0.0, stddev);
  return m;
}

Matrix Matrix::GlorotUniform(std::size_t fan_in, std::size_t fan_out,
                             stats::Rng& rng) {
  Matrix m(fan_in, fan_out);
  const double limit =
      std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  for (auto& v : m.data_) v = rng.Uniform(-limit, limit);
  return m;
}

double& Matrix::At(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) {
    throw std::out_of_range("Matrix::At: index out of range");
  }
  return (*this)(r, c);
}

double Matrix::At(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) {
    throw std::out_of_range("Matrix::At: index out of range");
  }
  return (*this)(r, c);
}

std::vector<double> Matrix::Row(std::size_t r) const {
  if (r >= rows_) throw std::out_of_range("Matrix::Row: out of range");
  return std::vector<double>(data_.begin() + static_cast<long>(r * cols_),
                             data_.begin() +
                                 static_cast<long>((r + 1) * cols_));
}

std::vector<double> Matrix::Col(std::size_t c) const {
  if (c >= cols_) throw std::out_of_range("Matrix::Col: out of range");
  std::vector<double> out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

void Matrix::SetRow(std::size_t r, const std::vector<double>& values) {
  if (r >= rows_ || values.size() != cols_) {
    throw std::invalid_argument("Matrix::SetRow: shape mismatch");
  }
  for (std::size_t c = 0; c < cols_; ++c) (*this)(r, c) = values[c];
}

Matrix Matrix::MatMulNaive(const Matrix& other) const {
  if (cols_ != other.rows_) {
    throw std::invalid_argument("Matrix::MatMul: inner dimension mismatch");
  }
  Matrix out(rows_, other.cols_);
  // i-k-j loop order keeps the inner loop streaming over contiguous rows.
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      kernels::Axpy(aik, &other.data_[k * other.cols_],
                    &out.data_[i * other.cols_], other.cols_);
    }
  }
  return out;
}

Matrix Matrix::MatMul(const Matrix& other) const {
  if (cols_ != other.rows_) {
    throw std::invalid_argument("Matrix::MatMul: inner dimension mismatch");
  }
  Matrix out(rows_, other.cols_);
  const std::size_t n = other.cols_;

  // k-tiled i-k-j: the k dimension is blocked so the 64 rows of `other`
  // a tile touches (~64 * n doubles) stay hot in L2 while every output
  // row in the slice accumulates against them; the inner j loop runs the
  // full row, which is what the vectorizer wants. Tiles are visited in
  // ascending k order, so each out(i, j) accumulates its k-terms in
  // exactly the naive loop's order — the tiled (and row-parallel)
  // product is bitwise identical to MatMulNaive.
  constexpr std::size_t kBlock = 64;
  const auto multiply_rows = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t kk = 0; kk < cols_; kk += kBlock) {
      const std::size_t k_end = std::min(cols_, kk + kBlock);
      for (std::size_t i = lo; i < hi; ++i) {
        double* orow = &out.data_[i * n];
        const double* arow = &data_[i * cols_];
        for (std::size_t k = kk; k < k_end; ++k) {
          const double aik = arow[k];
          if (aik == 0.0) continue;
          kernels::Axpy(aik, &other.data_[k * n], orow, n);
        }
      }
    }
  };

  // Fan out across disjoint 16-row slices (finer than the cache tile so
  // net-sized batches of ~50 rows still split) once the product is big
  // enough to amortize the dispatch; the LSTM/CNN forward and backward
  // products route through here either way.
  constexpr std::size_t kRowChunk = 16;
  const std::size_t row_chunks = (rows_ + kRowChunk - 1) / kRowChunk;
  const std::size_t flops = rows_ * cols_ * n;
  if (flops >= (std::size_t{1} << 15) && row_chunks > 1) {
    parallel::ParallelFor(0, row_chunks, 1, [&](std::size_t c) {
      multiply_rows(c * kRowChunk, std::min(rows_, (c + 1) * kRowChunk));
    });
  } else {
    multiply_rows(0, rows_);
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

namespace {
void CheckSameShape(const Matrix& a, const Matrix& b, const char* op) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument(std::string("Matrix::") + op +
                                ": shape mismatch");
  }
}
}  // namespace

Matrix Matrix::operator+(const Matrix& other) const {
  Matrix out = *this;
  out += other;
  return out;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  CheckSameShape(*this, other, "operator+");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix Matrix::operator-(const Matrix& other) const {
  Matrix out = *this;
  out -= other;
  return out;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  CheckSameShape(*this, other, "operator-");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix Matrix::Hadamard(const Matrix& other) const {
  CheckSameShape(*this, other, "Hadamard");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] *= other.data_[i];
  }
  return out;
}

Matrix Matrix::operator*(double scalar) const {
  Matrix out = *this;
  out *= scalar;
  return out;
}

Matrix& Matrix::operator*=(double scalar) {
  for (auto& v : data_) v *= scalar;
  return *this;
}

Matrix Matrix::AddRowBroadcast(const Matrix& row) const {
  if (row.rows() != 1 || row.cols() != cols_) {
    throw std::invalid_argument("Matrix::AddRowBroadcast: shape mismatch");
  }
  Matrix out = *this;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out(r, c) += row(0, c);
  }
  return out;
}

double Matrix::Sum() const {
  double total = 0.0;
  for (double v : data_) total += v;
  return total;
}

Matrix Matrix::ColSums() const {
  Matrix out(1, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out(0, c) += (*this)(r, c);
  }
  return out;
}

double Matrix::FrobeniusNorm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

double Matrix::L1Norm() const {
  double best = 0.0;
  for (std::size_t c = 0; c < cols_; ++c) {
    double col = 0.0;
    for (std::size_t r = 0; r < rows_; ++r) col += std::fabs((*this)(r, c));
    best = std::max(best, col);
  }
  return best;
}

double Matrix::InfNorm() const {
  double best = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    double row = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) row += std::fabs((*this)(r, c));
    best = std::max(best, row);
  }
  return best;
}

double Matrix::MaxAbs() const {
  double best = 0.0;
  for (double v : data_) best = std::max(best, std::fabs(v));
  return best;
}

void Matrix::Fill(double value) {
  for (auto& v : data_) v = value;
}

bool Matrix::AlmostEquals(const Matrix& other, double tolerance) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tolerance) return false;
  }
  return true;
}

}  // namespace mexi::ml
