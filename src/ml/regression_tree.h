#ifndef MEXI_ML_REGRESSION_TREE_H_
#define MEXI_ML_REGRESSION_TREE_H_

#include <cstddef>
#include <vector>

#include "robust/serialize.h"

namespace mexi::ml {

/// CART regression tree (variance-reduction splits, mean-valued leaves).
/// The weak learner inside `GradientBoosting`; also usable standalone.
class RegressionTree {
 public:
  struct Config {
    int max_depth = 3;
    int min_samples_split = 4;
    int min_samples_leaf = 2;
  };

  RegressionTree() = default;
  explicit RegressionTree(const Config& config) : config_(config) {}

  /// Fits to rows `features` with real-valued `targets`.
  /// Requires features.size() == targets.size() and non-empty input.
  void Fit(const std::vector<std::vector<double>>& features,
           const std::vector<double>& targets);

  /// Predicted value for one row. Requires Fit() first.
  double Predict(const std::vector<double>& row) const;

  std::size_t NodeCount() const { return nodes_.size(); }

  /// Exact round-trip of the fitted node table.
  void SaveState(robust::BinaryWriter& writer) const;
  void LoadState(robust::BinaryReader& reader);

 private:
  struct Node {
    int feature = -1;  // -1 marks a leaf
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    double value = 0.0;
  };

  int Build(const std::vector<std::vector<double>>& features,
            const std::vector<double>& targets,
            const std::vector<std::size_t>& indices, int depth);

  Config config_;
  std::vector<Node> nodes_;
};

}  // namespace mexi::ml

#endif  // MEXI_ML_REGRESSION_TREE_H_
