#ifndef MEXI_ML_LOGISTIC_REGRESSION_H_
#define MEXI_ML_LOGISTIC_REGRESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/classifier.h"
#include "ml/dataset.h"

namespace mexi::ml {

/// L2-regularized logistic regression trained by full-batch gradient
/// descent with a decaying step size. Features are z-scored internally.
class LogisticRegression : public BinaryClassifier {
 public:
  struct Config {
    /// Gradient-descent epochs over the full batch.
    int epochs = 300;
    /// Initial learning rate; decays as lr / (1 + epoch * decay).
    double learning_rate = 0.5;
    /// Step-size decay factor.
    double decay = 0.01;
    /// L2 penalty on the weights (not the intercept).
    double l2 = 1e-3;
  };

  LogisticRegression() = default;
  explicit LogisticRegression(const Config& config) : config_(config) {}

  std::unique_ptr<BinaryClassifier> Clone() const override;
  std::string Name() const override { return "LogisticRegression"; }

  /// Learned weights (post-standardization space); for inspection/tests.
  const std::vector<double>& weights() const { return weights_; }
  double intercept() const { return intercept_; }

 protected:
  void FitImpl(const Dataset& data) override;
  double PredictProbaImpl(const std::vector<double>& row) const override;
  void SaveStateImpl(robust::BinaryWriter& writer) const override;
  void LoadStateImpl(robust::BinaryReader& reader) override;

 private:
  Config config_;
  Standardizer standardizer_;
  std::vector<double> weights_;
  double intercept_ = 0.0;
};

}  // namespace mexi::ml

#endif  // MEXI_ML_LOGISTIC_REGRESSION_H_
