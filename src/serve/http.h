#ifndef MEXI_SERVE_HTTP_H_
#define MEXI_SERVE_HTTP_H_

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "robust/status.h"

namespace mexi::serve {

/// One parsed HTTP/1.1 request.
struct HttpRequest {
  std::string method;  // "GET", "POST", ...
  std::string path;    // without the query string
  std::string query;   // raw bytes after '?', may be empty
  /// True when the request line said HTTP/1.0; such connections default
  /// to close unless the client explicitly asks for keep-alive.
  bool http10 = false;
  /// Header names lowercased; last occurrence wins.
  std::map<std::string, std::string> headers;
  std::string body;

  /// Case-insensitive header lookup; empty string when absent.
  const std::string& Header(const std::string& name) const;
};

/// True when `value` — a comma-separated HTTP token list such as a
/// Connection header — contains `token` as a whole token, ignoring case
/// and surrounding whitespace. `token` must be lowercase.
bool HeaderHasToken(const std::string& value, const std::string& token);

/// Incremental HTTP/1.1 request parser.
///
/// Dependency-free and socket-free so the wire grammar is unit-testable:
/// the server feeds whatever bytes poll() delivered — one byte at a time
/// is fine — and acts when the state leaves kReading. Bounded on both
/// axes (header block and body size) so a hostile or broken client can
/// not balloon memory; overruns park the parser in kError with the
/// right HTTP status to send back. After a completed request, Reset()
/// re-arms for the next request on the same connection (keep-alive);
/// bytes beyond the first request stay buffered across the Reset.
class HttpRequestParser {
 public:
  enum class State {
    kReading,  // needs more bytes
    kDone,     // request() is complete
    kError,    // protocol violation; http_error() says which
  };

  static constexpr std::size_t kMaxHeaderBytes = 64 * 1024;
  static constexpr std::size_t kMaxBodyBytes = 8 * 1024 * 1024;

  /// Consumes `size` bytes and returns the resulting state. Feeding
  /// after kDone buffers the bytes for the next request; feeding after
  /// kError is a no-op.
  State Feed(const char* data, std::size_t size);

  State state() const { return state_; }

  /// Valid only in kDone.
  const HttpRequest& request() const { return request_; }

  /// Valid only in kError: the HTTP status code describing the
  /// violation (400 bad grammar, 413 body too large, 431 headers too
  /// large, 505 wrong HTTP version) and a short human-readable reason.
  int http_error() const { return http_error_; }
  const std::string& error_reason() const { return error_reason_; }

  /// Re-arms for the next request on this connection, preserving any
  /// already-buffered pipelined bytes. Also clears kError.
  void Reset();

 private:
  State Fail(int http_status, const std::string& reason);
  /// Attempts to parse a complete header block from buffer_.
  void TryParseHeaders();
  void TryFinishBody();

  std::string buffer_;
  HttpRequest request_;
  State state_ = State::kReading;
  bool headers_done_ = false;
  std::size_t body_consumed_ = 0;  // bytes of buffer_ already in body
  std::size_t content_length_ = 0;
  int http_error_ = 0;
  std::string error_reason_;
};

/// Canonical reason phrase for the status codes this server emits.
const char* HttpStatusText(int code);

/// Maps a structured Status to the HTTP status it should surface as.
int HttpStatusFromCode(robust::StatusCode code);

/// Value of `key` in a raw query string ("a=1&b=2"); empty when absent.
/// No percent-decoding — the serve API uses plain tokens only.
std::string QueryParam(const std::string& query, const std::string& key);

using HttpHeaders = std::vector<std::pair<std::string, std::string>>;

/// Formats a complete fixed-length response (status line, Content-Type,
/// Content-Length, optional extra headers, blank line, body).
/// `close` adds `Connection: close`.
std::string FormatHttpResponse(int status, const std::string& content_type,
                               const std::string& body,
                               const HttpHeaders& extra_headers = {},
                               bool close = false);

/// Chunked transfer-encoding trio for the /stream endpoint: the header
/// block announcing chunked encoding, one encoded chunk per emission,
/// and the zero-length terminator.
std::string FormatChunkedHeader(int status, const std::string& content_type,
                                const HttpHeaders& extra_headers = {});
std::string EncodeChunk(const std::string& data);
std::string FinalChunk();

}  // namespace mexi::serve

#endif  // MEXI_SERVE_HTTP_H_
