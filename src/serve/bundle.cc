#include "serve/bundle.h"

#include "robust/checkpoint.h"
#include "robust/serialize.h"

namespace mexi::serve {

void SaveBundle(const std::string& path, const Mexi& model) {
  robust::BinaryWriter writer;
  writer.WriteTag("MXBN");
  writer.WriteU32(kBundleFormatVersion);
  writer.WriteU64(model.ConfigFingerprint());
  model.SaveState(writer);
  const robust::Status status =
      robust::WriteFileAtomic(path, robust::SealCheckpoint(writer.buffer()));
  if (!status.ok()) throw robust::StatusError(status);
}

Mexi LoadBundle(const std::string& path, std::uint64_t* fingerprint_out) {
  std::vector<std::uint8_t> bytes;
  robust::Status status = robust::ReadFileBytes(path, &bytes);
  if (!status.ok()) throw robust::StatusError(status);
  std::vector<std::uint8_t> payload;
  status = robust::OpenCheckpoint(bytes, &payload);
  if (!status.ok()) throw robust::StatusError(status);

  robust::BinaryReader reader(payload);
  reader.ExpectTag("MXBN");
  const std::uint32_t version = reader.ReadU32();
  if (version != kBundleFormatVersion) {
    robust::ThrowStatus(robust::StatusCode::kCorruption,
                        "bundle format version " + std::to_string(version) +
                            ", this server understands " +
                            std::to_string(kBundleFormatVersion));
  }
  const std::uint64_t declared_fingerprint = reader.ReadU64();
  Mexi model;
  model.LoadState(reader);
  if (model.ConfigFingerprint() != declared_fingerprint) {
    robust::ThrowStatus(robust::StatusCode::kCorruption,
                        "bundle config fingerprint mismatch: declared " +
                            std::to_string(declared_fingerprint) +
                            ", contents hash to " +
                            std::to_string(model.ConfigFingerprint()));
  }
  if (fingerprint_out != nullptr) *fingerprint_out = declared_fingerprint;
  return model;
}

}  // namespace mexi::serve
