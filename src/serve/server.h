#ifndef MEXI_SERVE_SERVER_H_
#define MEXI_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/mexi.h"
#include "parallel/thread_pool.h"
#include "serve/http.h"

namespace mexi::serve {

/// Tuning knobs of the characterization server. The defaults suit the
/// chaos drills and local benchmarking; production deployments should
/// size `queue_max` to the worst tolerable backlog latency.
struct ServerConfig {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read it back via Server::port().
  int port = 0;

  /// Bound on requests admitted but not yet answered (queued + running).
  /// Beyond it the server sheds with 503 + Retry-After instead of
  /// buffering without limit.
  std::size_t queue_max = 32;
  /// Per-request compute budget and the hard maximum: a client may
  /// lower its own via the `X-Deadline-Ms` header (clamped to
  /// [1, deadline_ms]) but never raise it, so the graceful-drain window
  /// sized from this value bounds every admitted request. Expiry
  /// surfaces as 504.
  int deadline_ms = 2000;
  /// A connection with no complete request for this long is dropped.
  int read_timeout_ms = 5000;
  /// A connection making no write progress for this long (slow or
  /// stalled client) is dropped.
  int write_timeout_ms = 5000;
  /// Advisory Retry-After seconds on shed (503) responses.
  int retry_after_s = 1;
  /// Stall applied by an injected `slow_write` fault — long enough to
  /// trip the write timeout in tests, bounded so nothing hangs.
  int fault_stall_ms = 50;

  /// Worker threads computing characterizations (the model is const
  /// after load, so any number may share it).
  std::size_t num_workers = 1;

  /// Directory for the graceful-drain checkpoint ("" skips it). The
  /// payload records the serve counters plus the bundle fingerprint so
  /// an operator can audit what a drained server had done.
  std::string checkpoint_dir;
};

/// Point-in-time serve counters (also mirrored into obs::Registry()
/// under `serve.*` names, so /metrics and the JSONL sinks see them).
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t requests_total = 0;
  std::uint64_t responses_ok = 0;
  std::uint64_t responses_client_error = 0;
  std::uint64_t responses_server_error = 0;
  std::uint64_t shed_total = 0;
  std::uint64_t deadline_expired_total = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t inflight = 0;
};

/// Dependency-free HTTP/1.1 characterization server over one loaded
/// model bundle.
///
/// Endpoints:
///   GET  /status        small JSON: state, fingerprint, counters
///   GET  /metrics       JSON rendering of the obs metrics snapshot
///   POST /characterize?rows=N&cols=M
///                       body: decisions CSV [+ "%%" line + movements
///                       CSV]; responds one JSONL line per matcher
///                       (batch answer, `"final":true`)
///   POST /stream?rows=N&cols=M
///                       same body; chunked JSONL, one line per
///                       decision per matcher plus the exact Finalize
///                       line — byte-identical schema to `mexi_cli
///                       stream`
///
/// Threading: one poll thread owns every socket; workers (a private
/// deterministic ThreadPool) compute complete response byte strings and
/// hand them back through a completion queue + self-pipe wakeup. A
/// generation counter guards against a completion landing on a
/// recycled fd.
///
/// Robustness contract (exercised by tests/serve_chaos.sh):
///   * admission bound: queue_max exceeded => immediate 503 +
///     Retry-After, connection closed — bounded memory, no hang;
///   * deadlines: expiry => 504 within 2x the configured budget;
///   * slow clients: read/write timeouts drop the connection;
///   * fault injection: every accept/read/write consults the global
///     FaultInjector (sites net_accept/net_read/net_write; kinds
///     conn_reset, slow_write, kill, abort);
///   * graceful drain: RequestShutdown() (or SIGTERM via
///     InstallSignalHandlers) stops accepting, finishes or
///     deadline-outs in-flight work, commits the drain checkpoint, and
///     Run() returns — a restarted server answers byte-identically.
class Server {
 public:
  /// Takes ownership of the fitted model (typically from LoadBundle).
  Server(ServerConfig config, Mexi model, std::uint64_t bundle_fingerprint);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and listens. Throws robust::StatusError(kIoError) on
  /// failure. After Start(), port() is the bound port.
  void Start();
  int port() const { return port_; }

  /// Serves until shutdown is requested, then drains and returns.
  void Run();

  /// Thread- and signal-safe drain request.
  void RequestShutdown();

  /// Routes SIGTERM/SIGINT to server->RequestShutdown() semantics via a
  /// self-pipe write (async-signal-safe). One server per process.
  static void InstallSignalHandlers(Server* server);

  /// Counter snapshot (for tests and the drain checkpoint).
  ServerStats Stats() const;

  std::uint64_t bundle_fingerprint() const { return fingerprint_; }

 private:
  struct Connection {
    std::uint64_t generation = 0;
    HttpRequestParser parser;
    std::string outbuf;
    std::size_t outpos = 0;
    bool in_flight = false;
    bool close_after_write = false;
    std::chrono::steady_clock::time_point last_read;
    std::chrono::steady_clock::time_point last_write_progress;
  };

  struct Completion {
    int fd = -1;
    std::uint64_t generation = 0;
    std::string bytes;
    bool close_after = false;
  };

  void PollOnce(int timeout_ms);
  void AcceptNew();
  void ReadFrom(int fd);
  void WriteTo(int fd);
  void CloseConn(int fd);
  /// Acts on a parsed request (or parser error) for `fd`; re-arms the
  /// parser for keep-alive and keeps going while pipelined requests are
  /// already complete.
  void DispatchReady(int fd);
  /// Runs on a worker: computes the full response bytes for `request`
  /// under `deadline` and enqueues the completion. `want_close` carries
  /// the client's `Connection: close` preference into the response.
  void ComputeResponse(int fd, std::uint64_t generation, HttpRequest request,
                       std::chrono::steady_clock::time_point deadline,
                       bool want_close);
  void PushCompletion(Completion completion);
  void DrainCompletions();
  void SweepTimeouts();
  void EnqueueInline(int fd, std::string bytes, bool close_after);
  std::string StatusJson() const;
  std::string MetricsJson() const;
  void CommitDrainCheckpoint();

  ServerConfig config_;
  Mexi model_;
  std::uint64_t fingerprint_ = 0;

  int listen_fd_ = -1;
  int port_ = 0;
  /// Self-pipe: workers write 'C' on completion, signal handlers and
  /// RequestShutdown write 'S'.
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;

  std::map<int, Connection> conns_;
  std::uint64_t next_generation_ = 1;

  std::unique_ptr<parallel::ThreadPool> pool_;
  std::mutex completions_mutex_;
  std::vector<Completion> completions_;

  std::atomic<bool> shutdown_requested_{false};
  std::atomic<std::uint64_t> inflight_{0};
};

/// Formats one emission in the exact JSONL schema of `mexi_cli stream`
/// (`%.17g` doubles, so restart byte-identity is a `cmp`). Exposed for
/// the server handlers and unit tests.
std::string FormatEmissionLine(int matcher_id, std::size_t decision_index,
                               bool is_final, const ExpertLabel& label,
                               const std::vector<double>& probabilities);

}  // namespace mexi::serve

#endif  // MEXI_SERVE_SERVER_H_
