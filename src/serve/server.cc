#include "serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <thread>

#include "core/streaming.h"
#include "matching/io.h"
#include "obs/obs.h"
#include "robust/checkpoint.h"
#include "robust/fault_injection.h"
#include "robust/status.h"

namespace mexi::serve {

namespace {

using Clock = std::chrono::steady_clock;

constexpr const char* kJsonType = "application/json";
constexpr const char* kNdjsonType = "application/x-ndjson";

/// Private control-flow exception for an expired per-request budget;
/// converted to a 504 response by the worker — never escapes a task.
struct DeadlineExpired {};

/// Checked between units of work inside the handlers so a 504 lands
/// within one unit of the budget (one matcher for /characterize, one
/// decision for /stream), not after the whole body is computed.
struct DeadlineGuard {
  Clock::time_point deadline;
  void Check() const {
    if (Clock::now() > deadline) throw DeadlineExpired{};
  }
};

std::string ErrorBody(const std::string& code, const std::string& message) {
  return "{\"error\":{\"code\":" + obs::JsonString(code) +
         ",\"message\":" + obs::JsonString(message) + "}}\n";
}

std::string Dbl(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

[[noreturn]] void ThrowErrno(const char* op) {
  robust::ThrowStatus(robust::StatusCode::kIoError,
                      std::string(op) + " failed: " + std::strerror(errno));
}

/// The parsed POST payload: decisions CSV, optionally followed by a
/// literal `%%` line and the movements CSV, with the task matrix shape
/// in the ?rows=&cols= query parameters.
struct ParsedTraces {
  std::vector<matching::LoadedMatcher> matchers;
  std::size_t rows = 0;
  std::size_t cols = 0;
};

/// Upper bounds on the task shape accepted over the wire. rows*cols
/// sizes dense ml::Matrix allocations (streaming state, consensus
/// features), so unchecked values are a remote OOM — or, past size_t
/// overflow, heap-corruption — primitive. The caps keep one request's
/// matrix memory to a few megabytes while dwarfing any real schema.
constexpr long kMaxTaskDim = 4096;
constexpr long kMaxTaskCells = 1L << 20;

/// Strict positive-integer parse: the whole token must be digits (no
/// trailing garbage, no overflow). Returns -1 on any failure.
long ParsePositiveLong(const std::string& text) {
  if (text.empty()) return -1;
  char* end = nullptr;
  errno = 0;
  const long value = std::strtol(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0' || value <= 0) {
    return -1;
  }
  return value;
}

ParsedTraces ParseTracesBody(const HttpRequest& request) {
  const long rows = ParsePositiveLong(QueryParam(request.query, "rows"));
  const long cols = ParsePositiveLong(QueryParam(request.query, "cols"));
  if (rows <= 0 || cols <= 0) {
    robust::ThrowStatus(
        robust::StatusCode::kInvalidArgument,
        "the task shape is required: ?rows=<sources>&cols=<targets>, "
        "both positive integers");
  }
  if (rows > kMaxTaskDim || cols > kMaxTaskDim ||
      rows > kMaxTaskCells / cols) {
    robust::ThrowStatus(
        robust::StatusCode::kInvalidArgument,
        "task shape too large: rows and cols must each be <= " +
            std::to_string(kMaxTaskDim) + " and rows*cols <= " +
            std::to_string(kMaxTaskCells));
  }

  ParsedTraces parsed;
  parsed.rows = static_cast<std::size_t>(rows);
  parsed.cols = static_cast<std::size_t>(cols);

  std::string decisions_text = request.body;
  std::string movements_text;
  const std::size_t sep = request.body.find("\n%%\n");
  if (sep != std::string::npos) {
    decisions_text = request.body.substr(0, sep + 1);
    movements_text = request.body.substr(sep + 4);
  }

  std::istringstream decisions_in(decisions_text);
  parsed.matchers = matching::ReadDecisionsCsv(decisions_in);
  if (!movements_text.empty()) {
    std::istringstream movements_in(movements_text);
    matching::ReadMovementsCsv(movements_in, &parsed.matchers);
  }
  if (parsed.matchers.empty()) {
    robust::ThrowStatus(
        robust::StatusCode::kInvalidArgument,
        "no decision rows parsed from the request body (expected a "
        "decisions CSV with a header line)");
  }
  matching::ValidateMatchers(parsed.matchers, parsed.rows, parsed.cols);
  return parsed;
}

/// Batch endpoint body: one final-answer JSONL line per matcher.
std::string CharacterizeBody(const Mexi& model, const HttpRequest& request,
                             const DeadlineGuard& guard) {
  const ParsedTraces parsed = ParseTracesBody(request);
  std::string body;
  for (const matching::LoadedMatcher& lm : parsed.matchers) {
    guard.Check();
    MatcherView view;
    view.history = &lm.history;
    view.movement = &lm.movement;
    view.source_size = parsed.rows;
    view.target_size = parsed.cols;
    body += FormatEmissionLine(lm.id, lm.history.size(), /*is_final=*/true,
                               model.Characterize(view),
                               model.CharacterizeProba(view));
  }
  return body;
}

/// Streaming endpoint: the complete chunked response — one chunk per
/// per-decision emission, plus the exact Finalize line per matcher.
std::string StreamResponse(const Mexi& model, const HttpRequest& request,
                           const DeadlineGuard& guard, bool want_close) {
  const ParsedTraces parsed = ParseTracesBody(request);
  HttpHeaders extra;
  if (want_close) extra.push_back({"Connection", "close"});
  std::string out = FormatChunkedHeader(200, kNdjsonType, extra);
  for (const matching::LoadedMatcher& lm : parsed.matchers) {
    StreamingCharacterizer stream =
        model.OpenStream(parsed.rows, parsed.cols, lm.movement.screen_width(),
                         lm.movement.screen_height());
    const auto& events = lm.movement.events();
    std::size_t next_event = 0;
    for (std::size_t k = 0; k < lm.history.size(); ++k) {
      guard.Check();
      const matching::Decision& d = lm.history.at(k);
      while (next_event < events.size() &&
             events[next_event].timestamp <= d.timestamp) {
        stream.PushMovement(events[next_event]);
        ++next_event;
      }
      const StreamEmission emission = stream.PushDecision(d);
      out += EncodeChunk(FormatEmissionLine(lm.id, emission.decision_index,
                                            /*is_final=*/false, emission.label,
                                            emission.probabilities));
    }
    while (next_event < events.size()) {
      stream.PushMovement(events[next_event]);
      ++next_event;
    }
    guard.Check();
    const StreamEmission final_emission = stream.Finalize();
    out += EncodeChunk(FormatEmissionLine(
        lm.id, final_emission.decision_index, /*is_final=*/true,
        final_emission.label, final_emission.probabilities));
  }
  out += FinalChunk();
  return out;
}

// Serve counters live in the process-wide obs registry (so /metrics and
// the JSONL sinks see them for free). Resolved per use, never cached:
// Observability::EnableMetrics resets the registry, which would dangle
// any held reference. Registration is one mutex acquisition at request
// frequency — noise next to the model compute.
obs::Counter& ServeCounter(const char* name) {
  return obs::Registry().GetCounter(name);
}

constexpr const char* kAcceptedCounter = "serve.connections_accepted";
constexpr const char* kRequestsCounter = "serve.requests_total";
constexpr const char* kOkCounter = "serve.responses_ok";
constexpr const char* kClientErrorCounter = "serve.responses_client_error";
constexpr const char* kServerErrorCounter = "serve.responses_server_error";
constexpr const char* kShedCounter = "serve.shed_total";
constexpr const char* kDeadlineCounter = "serve.deadline_expired_total";
constexpr const char* kFaultsCounter = "serve.faults_injected";

std::atomic<int> g_signal_wake_fd{-1};

void ServeSignalHandler(int /*signum*/) {
  const int fd = g_signal_wake_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 'S';
    // write(2) is async-signal-safe; a full pipe just means a wakeup is
    // already pending.
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
}

}  // namespace

std::string FormatEmissionLine(int matcher_id, std::size_t decision_index,
                               bool is_final, const ExpertLabel& label,
                               const std::vector<double>& probabilities) {
  const std::vector<int> bits = label.ToVector();
  std::string out = "{\"matcher\":" + std::to_string(matcher_id) +
                    ",\"decision\":" + std::to_string(decision_index) +
                    ",\"final\":" + (is_final ? "true" : "false") +
                    ",\"labels\":[";
  for (std::size_t c = 0; c < bits.size(); ++c) {
    if (c != 0) out += ',';
    out += std::to_string(bits[c]);
  }
  double total = 0.0;
  for (const double p : probabilities) total += p;
  const double confidence =
      probabilities.empty()
          ? 0.0
          : total / static_cast<double>(probabilities.size());
  out += "],\"confidence\":" + Dbl(confidence) + ",\"probabilities\":[";
  for (std::size_t c = 0; c < probabilities.size(); ++c) {
    if (c != 0) out += ',';
    out += Dbl(probabilities[c]);
  }
  out += "]}\n";
  return out;
}

Server::Server(ServerConfig config, Mexi model,
               std::uint64_t bundle_fingerprint)
    : config_(std::move(config)),
      model_(std::move(model)),
      fingerprint_(bundle_fingerprint) {}

Server::~Server() {
  // Drain the workers first: completions land in the queue (harmless),
  // never on freed fds.
  pool_.reset();
  for (const auto& [fd, conn] : conns_) ::close(fd);
  conns_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
}

void Server::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) ThrowErrno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    robust::ThrowStatus(robust::StatusCode::kInvalidArgument,
                        "bad host '" + config_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ThrowErrno("bind");
  }
  if (::listen(listen_fd_, 64) != 0) ThrowErrno("listen");
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) != 0) {
    ThrowErrno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  SetNonBlocking(listen_fd_);

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) ThrowErrno("pipe");
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  SetNonBlocking(wake_read_fd_);
  SetNonBlocking(wake_write_fd_);

  pool_ = std::make_unique<parallel::ThreadPool>(
      std::max<std::size_t>(1, config_.num_workers));
}

void Server::RequestShutdown() {
  shutdown_requested_.store(true, std::memory_order_relaxed);
  if (wake_write_fd_ >= 0) {
    const char byte = 'S';
    [[maybe_unused]] const ssize_t n = ::write(wake_write_fd_, &byte, 1);
  }
}

void Server::InstallSignalHandlers(Server* server) {
  g_signal_wake_fd.store(server->wake_write_fd_, std::memory_order_relaxed);
  struct sigaction action{};
  action.sa_handler = &ServeSignalHandler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
  // A peer reset between poll() and send() must surface as EPIPE, not
  // kill the process.
  ::signal(SIGPIPE, SIG_IGN);
}

ServerStats Server::Stats() const {
  ServerStats stats;
  stats.connections_accepted = ServeCounter(kAcceptedCounter).Value();
  stats.requests_total = ServeCounter(kRequestsCounter).Value();
  stats.responses_ok = ServeCounter(kOkCounter).Value();
  stats.responses_client_error = ServeCounter(kClientErrorCounter).Value();
  stats.responses_server_error = ServeCounter(kServerErrorCounter).Value();
  stats.shed_total = ServeCounter(kShedCounter).Value();
  stats.deadline_expired_total = ServeCounter(kDeadlineCounter).Value();
  stats.faults_injected = ServeCounter(kFaultsCounter).Value();
  stats.inflight = inflight_.load(std::memory_order_relaxed);
  return stats;
}

void Server::Run() {
  bool draining = false;
  Clock::time_point drain_deadline{};
  while (true) {
    if (shutdown_requested_.load(std::memory_order_relaxed) && !draining) {
      draining = true;
      // Stop accepting; in-flight work finishes (or deadlines out) and
      // pending responses flush under the normal write timeout.
      if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
      }
      drain_deadline =
          Clock::now() + std::chrono::milliseconds(config_.deadline_ms +
                                                   config_.write_timeout_ms);
    }
    if (draining) {
      std::vector<int> idle;
      for (const auto& [fd, conn] : conns_) {
        if (!conn.in_flight && conn.outpos >= conn.outbuf.size()) {
          idle.push_back(fd);
        }
      }
      for (const int fd : idle) CloseConn(fd);
      if (conns_.empty() && inflight_.load(std::memory_order_relaxed) == 0) {
        break;
      }
      if (Clock::now() > drain_deadline) {
        std::vector<int> all;
        for (const auto& [fd, conn] : conns_) all.push_back(fd);
        for (const int fd : all) CloseConn(fd);
        break;
      }
    }
    PollOnce(50);
  }
  CommitDrainCheckpoint();
}

void Server::PollOnce(int timeout_ms) {
  std::vector<pollfd> fds;
  fds.push_back({wake_read_fd_, POLLIN, 0});
  if (listen_fd_ >= 0) fds.push_back({listen_fd_, POLLIN, 0});
  for (const auto& [fd, conn] : conns_) {
    short events = 0;
    // While a request is computing we stop reading: bounded buffering,
    // and pipelined requests wait their turn.
    if (!conn.in_flight) events |= POLLIN;
    if (conn.outpos < conn.outbuf.size()) events |= POLLOUT;
    if (events != 0) fds.push_back({fd, events, 0});
  }

  const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
  if (ready < 0 && errno != EINTR) ThrowErrno("poll");

  if (ready > 0) {
    if (fds[0].revents & POLLIN) {
      char buffer[256];
      ssize_t n;
      while ((n = ::read(wake_read_fd_, buffer, sizeof(buffer))) > 0) {
        for (ssize_t i = 0; i < n; ++i) {
          if (buffer[i] == 'S') {
            shutdown_requested_.store(true, std::memory_order_relaxed);
          }
        }
      }
    }
    std::size_t index = 1;
    if (listen_fd_ >= 0) {
      if (fds[index].revents & POLLIN) AcceptNew();
      ++index;
    }
    // Conns may be closed as we service them — act on a snapshot of the
    // polled set and re-check membership per fd.
    for (std::size_t i = index; i < fds.size(); ++i) {
      const int fd = fds[i].fd;
      const short revents = fds[i].revents;
      if (revents == 0) continue;
      if (revents & (POLLERR | POLLHUP | POLLNVAL)) {
        if (conns_.count(fd) != 0) CloseConn(fd);
        continue;
      }
      if ((revents & POLLOUT) && conns_.count(fd) != 0) WriteTo(fd);
      if ((revents & POLLIN) && conns_.count(fd) != 0) ReadFrom(fd);
    }
  }
  DrainCompletions();
  SweepTimeouts();
}

void Server::AcceptNew() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN/EMFILE/...: try again next round
    switch (robust::FaultInjector::Global().Hit(robust::FaultSite::kNetAccept)) {
      case robust::FaultKind::kKill:
        std::_Exit(137);
      case robust::FaultKind::kConnReset:
      case robust::FaultKind::kAbort:
        ServeCounter(kFaultsCounter).Add();
        ::close(fd);
        continue;
      case robust::FaultKind::kSlowWrite:
        ServeCounter(kFaultsCounter).Add();
        std::this_thread::sleep_for(
            std::chrono::milliseconds(config_.fault_stall_ms));
        break;
      default:
        break;
    }
    SetNonBlocking(fd);
    ServeCounter(kAcceptedCounter).Add();
    Connection conn;
    conn.generation = next_generation_++;
    conn.last_read = Clock::now();
    conn.last_write_progress = conn.last_read;
    conns_.emplace(fd, std::move(conn));
  }
}

void Server::ReadFrom(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  switch (robust::FaultInjector::Global().Hit(robust::FaultSite::kNetRead)) {
    case robust::FaultKind::kKill:
      std::_Exit(137);
    case robust::FaultKind::kConnReset:
    case robust::FaultKind::kAbort:
      ServeCounter(kFaultsCounter).Add();
      CloseConn(fd);
      return;
    case robust::FaultKind::kSlowWrite:
      ServeCounter(kFaultsCounter).Add();
      std::this_thread::sleep_for(
          std::chrono::milliseconds(config_.fault_stall_ms));
      break;
    default:
      break;
  }
  char buffer[16384];
  const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
  if (n == 0) {
    CloseConn(fd);
    return;
  }
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
    CloseConn(fd);
    return;
  }
  it->second.last_read = Clock::now();
  it->second.parser.Feed(buffer, static_cast<std::size_t>(n));
  DispatchReady(fd);
}

void Server::WriteTo(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Connection& conn = it->second;
  while (conn.outpos < conn.outbuf.size()) {
    switch (robust::FaultInjector::Global().Hit(robust::FaultSite::kNetWrite)) {
      case robust::FaultKind::kKill:
        std::_Exit(137);
      case robust::FaultKind::kConnReset:
      case robust::FaultKind::kAbort:
        ServeCounter(kFaultsCounter).Add();
        CloseConn(fd);
        return;
      case robust::FaultKind::kSlowWrite:
        ServeCounter(kFaultsCounter).Add();
        std::this_thread::sleep_for(
            std::chrono::milliseconds(config_.fault_stall_ms));
        break;
      default:
        break;
    }
    const ssize_t n =
        ::send(fd, conn.outbuf.data() + conn.outpos,
               conn.outbuf.size() - conn.outpos, MSG_NOSIGNAL);
    if (n > 0) {
      conn.outpos += static_cast<std::size_t>(n);
      conn.last_write_progress = Clock::now();
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    CloseConn(fd);  // EPIPE/ECONNRESET: the peer is gone
    return;
  }
  conn.outbuf.clear();
  conn.outpos = 0;
  if (conn.close_after_write) CloseConn(fd);
}

void Server::CloseConn(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  // An in-flight worker result for this connection is dropped by the
  // generation check in DrainCompletions (the fd may be recycled by a
  // later accept).
  conns_.erase(it);
  ::close(fd);
}

void Server::EnqueueInline(int fd, std::string bytes, bool close_after) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Connection& conn = it->second;
  conn.outbuf.append(bytes);
  conn.close_after_write = conn.close_after_write || close_after;
  conn.last_write_progress = Clock::now();
  WriteTo(fd);
}

void Server::DispatchReady(int fd) {
  while (true) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    Connection& conn = it->second;
    if (conn.in_flight) return;

    if (conn.parser.state() == HttpRequestParser::State::kError) {
      const int status = conn.parser.http_error();
      ServeCounter(kClientErrorCounter).Add();
      EnqueueInline(fd,
                    FormatHttpResponse(status, kJsonType,
                                       ErrorBody("bad_request",
                                                 conn.parser.error_reason()),
                                       {}, /*close=*/true),
                    /*close_after=*/true);
      return;
    }
    if (conn.parser.state() != HttpRequestParser::State::kDone) return;

    HttpRequest request = conn.parser.request();
    conn.parser.Reset();
    ServeCounter(kRequestsCounter).Add();

    // Honor the client's connection preference: a "close" token
    // anywhere in the Connection list means the response (whatever its
    // status) closes the socket after it flushes, so one-shot clients
    // see a prompt EOF instead of waiting out the idle timeout.
    // HTTP/1.0 defaults to close unless keep-alive is asked for.
    const std::string& conn_pref = request.Header("connection");
    const bool want_close =
        HeaderHasToken(conn_pref, "close") ||
        (request.http10 && !HeaderHasToken(conn_pref, "keep-alive"));

    if (request.method == "GET" && request.path == "/status") {
      ServeCounter(kOkCounter).Add();
      EnqueueInline(fd,
                    FormatHttpResponse(200, kJsonType, StatusJson(), {},
                                       want_close),
                    want_close);
      continue;
    }
    if (request.method == "GET" && request.path == "/metrics") {
      ServeCounter(kOkCounter).Add();
      EnqueueInline(fd,
                    FormatHttpResponse(200, kJsonType, MetricsJson(), {},
                                       want_close),
                    want_close);
      continue;
    }
    if (request.path != "/characterize" && request.path != "/stream") {
      ServeCounter(kClientErrorCounter).Add();
      EnqueueInline(fd,
                    FormatHttpResponse(
                        404, kJsonType,
                        ErrorBody("not_found",
                                  "no such endpoint '" + request.path + "'"),
                        {}, want_close),
                    want_close);
      continue;
    }
    if (request.method != "POST") {
      ServeCounter(kClientErrorCounter).Add();
      EnqueueInline(
          fd,
          FormatHttpResponse(405, kJsonType,
                             ErrorBody("method_not_allowed",
                                       request.path + " requires POST"),
                             {}, want_close),
          want_close);
      continue;
    }
    if (shutdown_requested_.load(std::memory_order_relaxed)) {
      ServeCounter(kShedCounter).Add();
      ServeCounter(kServerErrorCounter).Add();
      EnqueueInline(
          fd,
          FormatHttpResponse(503, kJsonType,
                             ErrorBody("draining", "server is shutting down"),
                             {{"Retry-After",
                               std::to_string(config_.retry_after_s)}},
                             /*close=*/true),
          true);
      return;
    }
    if (inflight_.load(std::memory_order_relaxed) >= config_.queue_max) {
      // Admission bound: shed instead of buffering — the memory held per
      // shed request is one parsed request, never a growing queue.
      ServeCounter(kShedCounter).Add();
      ServeCounter(kServerErrorCounter).Add();
      EnqueueInline(
          fd,
          FormatHttpResponse(503, kJsonType,
                             ErrorBody("overloaded",
                                       "admission queue is full (" +
                                           std::to_string(config_.queue_max) +
                                           " in flight)"),
                             {{"Retry-After",
                               std::to_string(config_.retry_after_s)}},
                             /*close=*/true),
          true);
      return;
    }

    // Admit: budget from X-Deadline-Ms or the configured default. A
    // client may only lower its budget — raising it would let a request
    // outlive the drain window Run() sizes from config_.deadline_ms,
    // leaving a worker busy past the advertised shutdown deadline.
    long budget_ms = config_.deadline_ms;
    const std::string& header = request.Header("x-deadline-ms");
    if (!header.empty()) {
      char* end = nullptr;
      const long parsed = std::strtol(header.c_str(), &end, 10);
      if (end != header.c_str() && *end == '\0') {
        budget_ms =
            std::clamp(parsed, 1L, static_cast<long>(config_.deadline_ms));
      }
    }
    const Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(budget_ms);
    inflight_.fetch_add(1, std::memory_order_relaxed);
    conn.in_flight = true;
    const std::uint64_t generation = conn.generation;
    pool_->Submit([this, fd, generation, request = std::move(request),
                   deadline, want_close]() mutable {
      ComputeResponse(fd, generation, std::move(request), deadline,
                      want_close);
    });
    return;
  }
}

void Server::ComputeResponse(int fd, std::uint64_t generation,
                             HttpRequest request, Clock::time_point deadline,
                             bool want_close) {
  std::string response;
  bool close_after = want_close;
  try {
    const DeadlineGuard guard{deadline};
    guard.Check();
    if (request.path == "/characterize") {
      response = FormatHttpResponse(200, kNdjsonType,
                                    CharacterizeBody(model_, request, guard),
                                    {}, want_close);
    } else {
      response = StreamResponse(model_, request, guard, want_close);
    }
    ServeCounter(kOkCounter).Add();
  } catch (const DeadlineExpired&) {
    ServeCounter(kDeadlineCounter).Add();
    ServeCounter(kServerErrorCounter).Add();
    response = FormatHttpResponse(
        504, kJsonType,
        ErrorBody("deadline_exceeded",
                  "request exceeded its compute budget"),
        {}, /*close=*/true);
    close_after = true;
  } catch (const robust::StatusError& error) {
    const int status = HttpStatusFromCode(error.status().code());
    if (status >= 500) {
      ServeCounter(kServerErrorCounter).Add();
      close_after = true;
    } else {
      ServeCounter(kClientErrorCounter).Add();
    }
    response = FormatHttpResponse(
        status, kJsonType,
        ErrorBody(robust::StatusCodeName(error.status().code()),
                  error.status().message()),
        {}, close_after);
  } catch (const std::exception& error) {
    ServeCounter(kServerErrorCounter).Add();
    response = FormatHttpResponse(
        500, kJsonType, ErrorBody("internal", error.what()), {}, true);
    close_after = true;
  }
  PushCompletion({fd, generation, std::move(response), close_after});
}

void Server::PushCompletion(Completion completion) {
  {
    const std::lock_guard<std::mutex> lock(completions_mutex_);
    completions_.push_back(std::move(completion));
  }
  const char byte = 'C';
  [[maybe_unused]] const ssize_t n = ::write(wake_write_fd_, &byte, 1);
}

void Server::DrainCompletions() {
  std::vector<Completion> ready;
  {
    const std::lock_guard<std::mutex> lock(completions_mutex_);
    ready.swap(completions_);
  }
  for (Completion& completion : ready) {
    inflight_.fetch_sub(1, std::memory_order_relaxed);
    auto it = conns_.find(completion.fd);
    if (it == conns_.end() || it->second.generation != completion.generation) {
      continue;  // the connection died (or the fd was recycled) meanwhile
    }
    it->second.in_flight = false;
    EnqueueInline(completion.fd, std::move(completion.bytes),
                  completion.close_after);
    if (conns_.count(completion.fd) != 0 && !completion.close_after) {
      DispatchReady(completion.fd);  // a pipelined request may be parsed
    }
  }
}

void Server::SweepTimeouts() {
  const Clock::time_point now = Clock::now();
  std::vector<int> expired;
  for (const auto& [fd, conn] : conns_) {
    if (conn.outpos < conn.outbuf.size() &&
        now - conn.last_write_progress >
            std::chrono::milliseconds(config_.write_timeout_ms)) {
      expired.push_back(fd);  // stalled writer (slow client)
      continue;
    }
    if (!conn.in_flight && conn.outbuf.empty() &&
        now - conn.last_read >
            std::chrono::milliseconds(config_.read_timeout_ms)) {
      expired.push_back(fd);  // idle or trickling reader
    }
  }
  for (const int fd : expired) CloseConn(fd);
}

std::string Server::StatusJson() const {
  const ServerStats stats = Stats();
  const bool draining = shutdown_requested_.load(std::memory_order_relaxed);
  std::string out = "{";
  out += "\"state\":" + obs::JsonString(draining ? "draining" : "serving");
  out += ",\"bundle_fingerprint\":" +
         obs::JsonString(std::to_string(fingerprint_));
  out += ",\"inflight\":" + std::to_string(stats.inflight);
  out += ",\"connections\":" + std::to_string(conns_.size());
  out += ",\"queue_max\":" + std::to_string(config_.queue_max);
  out += ",\"deadline_ms\":" + std::to_string(config_.deadline_ms);
  out += ",\"connections_accepted\":" +
         std::to_string(stats.connections_accepted);
  out += ",\"requests_total\":" + std::to_string(stats.requests_total);
  out += ",\"responses_ok\":" + std::to_string(stats.responses_ok);
  out += ",\"shed_total\":" + std::to_string(stats.shed_total);
  out += ",\"deadline_expired_total\":" +
         std::to_string(stats.deadline_expired_total);
  out += ",\"faults_injected\":" + std::to_string(stats.faults_injected);
  out += "}\n";
  return out;
}

std::string Server::MetricsJson() const {
  const obs::MetricsSnapshot snapshot = obs::Registry().Snapshot();
  std::string out = "{\"counters\":[";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i != 0) out += ',';
    out += "{\"name\":" + obs::JsonString(snapshot.counters[i].name) +
           ",\"value\":" + std::to_string(snapshot.counters[i].value) + "}";
  }
  out += "],\"gauges\":[";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    if (i != 0) out += ',';
    out += "{\"name\":" + obs::JsonString(snapshot.gauges[i].name) +
           ",\"value\":" + obs::JsonNumber(snapshot.gauges[i].value) + "}";
  }
  out += "],\"timers\":[";
  for (std::size_t i = 0; i < snapshot.timers.size(); ++i) {
    const auto& timer = snapshot.timers[i];
    if (i != 0) out += ',';
    out += "{\"name\":" + obs::JsonString(timer.name) +
           ",\"count\":" + std::to_string(timer.count) +
           ",\"total_seconds\":" + obs::JsonNumber(timer.total_seconds) +
           ",\"ema_seconds\":" + obs::JsonNumber(timer.ema_seconds) + "}";
  }
  out += "],\"histograms\":[";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& histogram = snapshot.histograms[i];
    if (i != 0) out += ',';
    out += "{\"name\":" + obs::JsonString(histogram.name) + ",\"bounds\":[";
    for (std::size_t b = 0; b < histogram.bounds.size(); ++b) {
      if (b != 0) out += ',';
      out += obs::JsonNumber(histogram.bounds[b]);
    }
    out += "],\"counts\":[";
    for (std::size_t b = 0; b < histogram.counts.size(); ++b) {
      if (b != 0) out += ',';
      out += std::to_string(histogram.counts[b]);
    }
    out += "]}";
  }
  out += "]}\n";
  return out;
}

void Server::CommitDrainCheckpoint() {
  if (config_.checkpoint_dir.empty()) return;
  robust::BinaryWriter writer;
  writer.WriteTag("MXSV");
  writer.WriteU64(fingerprint_);
  const ServerStats stats = Stats();
  writer.WriteU64(stats.connections_accepted);
  writer.WriteU64(stats.requests_total);
  writer.WriteU64(stats.responses_ok);
  writer.WriteU64(stats.responses_client_error);
  writer.WriteU64(stats.responses_server_error);
  writer.WriteU64(stats.shed_total);
  writer.WriteU64(stats.deadline_expired_total);
  writer.WriteU64(stats.faults_injected);
  const robust::Status status =
      robust::CheckpointManager(config_.checkpoint_dir, "serve")
          .Commit(writer.buffer());
  if (!status.ok()) {
    // A failed audit snapshot must not turn a clean drain into a
    // non-zero exit; the responses already went out.
    std::fprintf(stderr, "mexi_serve: drain checkpoint failed: %s\n",
                 status.ToString().c_str());
  } else {
    obs::Observability::Global().Event(
        "serve_drain",
        {obs::F("requests_total", stats.requests_total),
         obs::F("responses_ok", stats.responses_ok),
         obs::F("shed_total", stats.shed_total)});
  }
}

}  // namespace mexi::serve
