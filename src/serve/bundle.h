#ifndef MEXI_SERVE_BUNDLE_H_
#define MEXI_SERVE_BUNDLE_H_

#include <cstdint>
#include <string>

#include "core/mexi.h"
#include "robust/status.h"

namespace mexi::serve {

/// Versioned on-disk model bundle: the complete fitted Mexi serve state
/// inside the MEXC checkpoint envelope (magic + length + FNV-1a), so a
/// torn copy or bit rot is rejected at load, never served. Payload:
///
///   "MXBN" | u32 bundle format version | u64 config fingerprint
///         | Mexi::SaveState bytes
///
/// The fingerprint is FNV-1a over the serialized MexiConfig. LoadBundle
/// recomputes it from the deserialized config and rejects on mismatch —
/// a bundle whose declared fingerprint disagrees with its own contents
/// was assembled by a different config schema (or tampered with) and
/// must not serve traffic.
inline constexpr std::uint32_t kBundleFormatVersion = 1;

/// Seals `model` (must be fitted) and atomically writes it to `path`.
/// Throws StatusError on IO failure or an unfitted model.
void SaveBundle(const std::string& path, const Mexi& model);

/// Loads, validates, and deserializes a bundle. `fingerprint_out`
/// (optional) receives the bundle's config fingerprint. Throws
/// StatusError: kNotFound (missing file), kCorruption (envelope,
/// version, fingerprint, or payload validation failure).
Mexi LoadBundle(const std::string& path,
                std::uint64_t* fingerprint_out = nullptr);

}  // namespace mexi::serve

#endif  // MEXI_SERVE_BUNDLE_H_
