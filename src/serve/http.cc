#include "serve/http.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace mexi::serve {

namespace {

std::string ToLower(std::string text) {
  std::transform(text.begin(), text.end(), text.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return text;
}

std::string Trim(const std::string& text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && (text[begin] == ' ' || text[begin] == '\t')) ++begin;
  while (end > begin && (text[end - 1] == ' ' || text[end - 1] == '\t')) {
    --end;
  }
  return text.substr(begin, end - begin);
}

}  // namespace

const std::string& HttpRequest::Header(const std::string& name) const {
  static const std::string kEmpty;
  const auto it = headers.find(ToLower(name));
  return it == headers.end() ? kEmpty : it->second;
}

bool HeaderHasToken(const std::string& value, const std::string& token) {
  std::size_t pos = 0;
  while (pos <= value.size()) {
    std::size_t comma = value.find(',', pos);
    if (comma == std::string::npos) comma = value.size();
    if (ToLower(Trim(value.substr(pos, comma - pos))) == token) return true;
    pos = comma + 1;
  }
  return false;
}

HttpRequestParser::State HttpRequestParser::Fail(int http_status,
                                                 const std::string& reason) {
  state_ = State::kError;
  http_error_ = http_status;
  error_reason_ = reason;
  return state_;
}

HttpRequestParser::State HttpRequestParser::Feed(const char* data,
                                                 std::size_t size) {
  if (state_ == State::kError) return state_;
  buffer_.append(data, size);
  if (state_ == State::kDone) return state_;
  if (!headers_done_) TryParseHeaders();
  if (state_ == State::kReading && headers_done_) TryFinishBody();
  return state_;
}

void HttpRequestParser::TryParseHeaders() {
  const std::size_t block_end = buffer_.find("\r\n\r\n");
  if (block_end == std::string::npos) {
    if (buffer_.size() > kMaxHeaderBytes) {
      Fail(431, "header block exceeds " + std::to_string(kMaxHeaderBytes) +
                    " bytes");
    }
    return;
  }
  if (block_end > kMaxHeaderBytes) {
    Fail(431, "header block exceeds " + std::to_string(kMaxHeaderBytes) +
                  " bytes");
    return;
  }

  const std::string block = buffer_.substr(0, block_end);
  buffer_.erase(0, block_end + 4);

  // Request line: METHOD SP target SP HTTP/1.x
  const std::size_t line_end = block.find("\r\n");
  const std::string line =
      line_end == std::string::npos ? block : block.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos || sp1 == 0) {
    Fail(400, "malformed request line");
    return;
  }
  request_ = HttpRequest();
  request_.method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string version = line.substr(sp2 + 1);
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    Fail(505, "unsupported version '" + version + "'");
    return;
  }
  request_.http10 = version == "HTTP/1.0";
  if (target.empty() || target[0] != '/') {
    Fail(400, "bad request target '" + target + "'");
    return;
  }
  const std::size_t question = target.find('?');
  if (question == std::string::npos) {
    request_.path = target;
  } else {
    request_.path = target.substr(0, question);
    request_.query = target.substr(question + 1);
  }

  // Header fields.
  std::size_t pos = line_end == std::string::npos ? block.size() : line_end + 2;
  while (pos < block.size()) {
    std::size_t next = block.find("\r\n", pos);
    if (next == std::string::npos) next = block.size();
    const std::string field = block.substr(pos, next - pos);
    pos = next + 2;
    const std::size_t colon = field.find(':');
    if (colon == std::string::npos || colon == 0) {
      Fail(400, "malformed header field '" + field + "'");
      return;
    }
    request_.headers[ToLower(Trim(field.substr(0, colon)))] =
        Trim(field.substr(colon + 1));
  }

  if (request_.headers.count("transfer-encoding") != 0) {
    Fail(400, "chunked request bodies are not supported");
    return;
  }
  content_length_ = 0;
  const std::string& length_text = request_.Header("content-length");
  if (!length_text.empty()) {
    char* parse_end = nullptr;
    const unsigned long long parsed =
        std::strtoull(length_text.c_str(), &parse_end, 10);
    if (parse_end == length_text.c_str() || *parse_end != '\0') {
      Fail(400, "bad Content-Length '" + length_text + "'");
      return;
    }
    if (parsed > kMaxBodyBytes) {
      Fail(413, "body of " + length_text + " bytes exceeds the " +
                    std::to_string(kMaxBodyBytes) + "-byte limit");
      return;
    }
    content_length_ = static_cast<std::size_t>(parsed);
  }
  headers_done_ = true;
  body_consumed_ = 0;
  request_.body.clear();
}

void HttpRequestParser::TryFinishBody() {
  const std::size_t missing = content_length_ - request_.body.size();
  const std::size_t take = std::min(missing, buffer_.size());
  request_.body.append(buffer_, 0, take);
  buffer_.erase(0, take);
  if (request_.body.size() == content_length_) state_ = State::kDone;
}

void HttpRequestParser::Reset() {
  state_ = State::kReading;
  headers_done_ = false;
  body_consumed_ = 0;
  content_length_ = 0;
  http_error_ = 0;
  error_reason_.clear();
  // buffer_ keeps pipelined bytes; try to make progress on them now.
  if (!buffer_.empty()) {
    TryParseHeaders();
    if (state_ == State::kReading && headers_done_) TryFinishBody();
  }
}

const char* HttpStatusText(int code) {
  switch (code) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

int HttpStatusFromCode(robust::StatusCode code) {
  switch (code) {
    case robust::StatusCode::kOk: return 200;
    case robust::StatusCode::kInvalidArgument: return 400;
    case robust::StatusCode::kParseError: return 400;
    case robust::StatusCode::kNotFound: return 404;
    case robust::StatusCode::kResourceExhausted: return 503;
    case robust::StatusCode::kAborted: return 503;
    // IO/corruption/divergence are server-side faults, not client ones.
    case robust::StatusCode::kIoError: return 500;
    case robust::StatusCode::kCorruption: return 500;
    case robust::StatusCode::kDivergence: return 500;
  }
  return 500;
}

std::string QueryParam(const std::string& query, const std::string& key) {
  std::size_t begin = 0;
  while (begin <= query.size() && !query.empty()) {
    std::size_t end = query.find('&', begin);
    if (end == std::string::npos) end = query.size();
    const std::string pair = query.substr(begin, end - begin);
    const std::size_t eq = pair.find('=');
    if (eq != std::string::npos && pair.substr(0, eq) == key) {
      return pair.substr(eq + 1);
    }
    if (end == query.size()) break;
    begin = end + 1;
  }
  return "";
}

namespace {

std::string FormatHeaderBlock(int status, const std::string& content_type,
                              const HttpHeaders& extra_headers) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                    HttpStatusText(status) + "\r\n";
  out += "Content-Type: " + content_type + "\r\n";
  for (const auto& [name, value] : extra_headers) {
    out += name + ": " + value + "\r\n";
  }
  return out;
}

}  // namespace

std::string FormatHttpResponse(int status, const std::string& content_type,
                               const std::string& body,
                               const HttpHeaders& extra_headers, bool close) {
  std::string out = FormatHeaderBlock(status, content_type, extra_headers);
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  if (close) out += "Connection: close\r\n";
  out += "\r\n";
  out += body;
  return out;
}

std::string FormatChunkedHeader(int status, const std::string& content_type,
                                const HttpHeaders& extra_headers) {
  std::string out = FormatHeaderBlock(status, content_type, extra_headers);
  out += "Transfer-Encoding: chunked\r\n\r\n";
  return out;
}

std::string EncodeChunk(const std::string& data) {
  if (data.empty()) return "";  // an empty chunk would terminate the stream
  char size_line[32];
  std::snprintf(size_line, sizeof(size_line), "%zx\r\n", data.size());
  return size_line + data + "\r\n";
}

std::string FinalChunk() { return "0\r\n\r\n"; }

}  // namespace mexi::serve
