#ifndef MEXI_ROBUST_SERIALIZE_H_
#define MEXI_ROBUST_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "robust/status.h"
#include "stats/rng.h"

namespace mexi::robust {

/// FNV-1a over `size` bytes, continuing from `hash` (pass the default to
/// start a fresh digest). The checkpoint format's integrity check and
/// the tests' golden-state digests both use this.
inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
std::uint64_t Fnv1a(const void* data, std::size_t size,
                    std::uint64_t hash = kFnvOffsetBasis);

/// Append-only little-endian binary encoder. All multi-byte values are
/// written in a fixed byte order so checkpoints hash identically across
/// platforms — the same contract as the rest of the determinism story.
class BinaryWriter {
 public:
  void WriteRaw(const void* data, std::size_t size) {
    if (size == 0) return;
    // resize + memcpy rather than insert(range): same bytes, and it
    // sidesteps GCC's spurious -Wstringop-overflow on inlined
    // vector::insert at -O3.
    const std::size_t old_size = buffer_.size();
    buffer_.resize(old_size + size);
    std::memcpy(buffer_.data() + old_size, data, size);
  }

  void WriteU8(std::uint8_t value) { buffer_.push_back(value); }

  void WriteU32(std::uint32_t value) {
    for (int b = 0; b < 4; ++b) {
      buffer_.push_back(static_cast<std::uint8_t>(value >> (8 * b)));
    }
  }

  void WriteU64(std::uint64_t value) {
    for (int b = 0; b < 8; ++b) {
      buffer_.push_back(static_cast<std::uint8_t>(value >> (8 * b)));
    }
  }

  void WriteI64(std::int64_t value) {
    WriteU64(static_cast<std::uint64_t>(value));
  }

  void WriteBool(bool value) { WriteU8(value ? 1 : 0); }

  void WriteDouble(double value) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    WriteU64(bits);
  }

  void WriteString(const std::string& value) {
    WriteU64(value.size());
    WriteRaw(value.data(), value.size());
  }

  void WriteDoubles(const double* values, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) WriteDouble(values[i]);
  }

  void WriteDoubleVector(const std::vector<double>& values) {
    WriteU64(values.size());
    WriteDoubles(values.data(), values.size());
  }

  /// Four-character section marker; cheap structural self-description
  /// that turns a mis-ordered read into a loud kCorruption error
  /// instead of silently reinterpreted bytes.
  void WriteTag(const char (&tag)[5]) { WriteRaw(tag, 4); }

  const std::vector<std::uint8_t>& buffer() const { return buffer_; }
  std::size_t size() const { return buffer_.size(); }

 private:
  std::vector<std::uint8_t> buffer_;
};

/// Decoder over a borrowed byte buffer. Every read validates the
/// remaining length and throws StatusError(kCorruption) on underrun, so
/// a truncated payload can never produce garbage state.
class BinaryReader {
 public:
  BinaryReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit BinaryReader(const std::vector<std::uint8_t>& bytes)
      : BinaryReader(bytes.data(), bytes.size()) {}

  std::uint8_t ReadU8() {
    Require(1);
    return data_[pos_++];
  }

  std::uint32_t ReadU32() {
    Require(4);
    std::uint32_t value = 0;
    for (int b = 0; b < 4; ++b) {
      value |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * b);
    }
    return value;
  }

  std::uint64_t ReadU64() {
    Require(8);
    std::uint64_t value = 0;
    for (int b = 0; b < 8; ++b) {
      value |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * b);
    }
    return value;
  }

  std::int64_t ReadI64() { return static_cast<std::int64_t>(ReadU64()); }

  bool ReadBool() { return ReadU8() != 0; }

  double ReadDouble() {
    const std::uint64_t bits = ReadU64();
    double value = 0.0;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
  }

  std::string ReadString() {
    const std::uint64_t size = ReadU64();
    Require(size);
    std::string value(reinterpret_cast<const char*>(data_ + pos_),
                      static_cast<std::size_t>(size));
    pos_ += static_cast<std::size_t>(size);
    return value;
  }

  void ReadDoubles(double* values, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) values[i] = ReadDouble();
  }

  std::vector<double> ReadDoubleVector() {
    const std::uint64_t count = ReadU64();
    // Bound before allocating: a corrupted length must not drive a
    // multi-terabyte vector reservation.
    if (count > remaining() / 8) {
      ThrowStatus(StatusCode::kCorruption,
                  "vector length " + std::to_string(count) +
                      " exceeds remaining payload");
    }
    std::vector<double> values(static_cast<std::size_t>(count));
    ReadDoubles(values.data(), values.size());
    return values;
  }

  /// Consumes a section marker; mismatch throws kCorruption naming both
  /// the expected and the found tag.
  void ExpectTag(const char (&tag)[5]);

  std::size_t remaining() const { return size_ - pos_; }

 private:
  void Require(std::uint64_t bytes) const {
    if (bytes > size_ - pos_) {
      ThrowStatus(StatusCode::kCorruption,
                  "payload truncated: need " + std::to_string(bytes) +
                      " bytes, have " + std::to_string(size_ - pos_));
    }
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// stats::Rng round-trip (seed, xoshiro words, Box-Muller cache).
void WriteRngState(BinaryWriter& writer, const stats::Rng& rng);
void ReadRngState(BinaryReader& reader, stats::Rng& rng);

}  // namespace mexi::robust

#endif  // MEXI_ROBUST_SERIALIZE_H_
