#ifndef MEXI_ROBUST_FAULT_INJECTION_H_
#define MEXI_ROBUST_FAULT_INJECTION_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "stats/rng.h"

namespace mexi::robust {

/// What a fired fault does at the instrumented site.
enum class FaultKind {
  kNone = 0,
  /// Checkpoint write persists only a prefix of the bytes (a torn
  /// write surviving the rename — a lying disk).
  kShortWrite,
  /// One byte of the checkpoint is flipped before commit (bit rot).
  kBitFlip,
  /// The write fails with out-of-space before committing anything.
  kEnospc,
  /// A NaN is injected into the training loss/gradient, tripping the
  /// divergence guard.
  kNan,
  /// The site throws StatusError(kAborted) — an in-process stand-in
  /// for SIGKILL that unit tests can catch and recover from.
  kAbort,
  /// The process calls _Exit(137) at the site — a real mid-run death
  /// for process-level chaos tests.
  kKill,
  /// A read observes only a prefix of the data (torn read: truncation
  /// racing the reader, or a short read treated as complete).
  kTornRead,
  /// The read fails as an interrupted syscall (EINTR) surfaced as a
  /// structured IO error.
  kEintr,
  /// The peer's connection drops mid-operation (ECONNRESET): the
  /// instrumented network site closes the socket without completing the
  /// operation, as a real reset would.
  kConnReset,
  /// The write stalls (a slow or stalled client/NIC): the site sleeps
  /// for a bounded interval before proceeding, long enough to trip
  /// write timeouts and exercise backpressure.
  kSlowWrite,
};

/// Instrumented program points that consult the injector.
enum class FaultSite {
  kCheckpointWrite = 0,  // robust::WriteFileAtomic
  kLstmGradient,         // LstmSequenceModel::Fit, per training sample
  kCnnGradient,          // CnnImageModel::Fit, per training sample
  kLogRegGradient,       // LogisticRegression::FitImpl, per epoch
  kEpochEnd,             // NN Fit loops, after the epoch checkpoint
  kFoldEnd,              // RunKFoldExperiment, after a computed fold
  kIoRead,               // matching/io.cc CSV readers, per input line
  kMatchersWrite,        // matching/io.cc SaveMatchersToFiles, per file
  kStreamEmit,           // mexi_cli stream, after each flushed JSONL line
  kNetAccept,            // serve::Server, per accepted connection
  kNetRead,              // serve::Server, per socket read
  kNetWrite,             // serve::Server, per socket write
  kSweepShard,           // PopulationSweeper, after a shard's checkpoint
};
inline constexpr std::size_t kNumFaultSites = 13;

/// Deterministic, seed-driven fault injector.
///
/// Faults are described by a spec string (env `MEXI_FAULTS` for the
/// global instance):
///
///   spec    := clause (',' clause)*
///   clause  := kind '@' site ':' occurrence
///   kind    := short_write | bitflip | enospc | nan | abort | kill
///            | torn_read | eintr | conn_reset | slow_write
///   site    := ckpt_write | lstm_grad | cnn_grad | logreg_grad
///            | epoch | fold | io_read | matchers_write | stream_emit
///            | net_accept | net_read | net_write | sweep_shard
///
/// `occurrence` is the 1-based hit count at which the clause fires,
/// once: `nan@lstm_grad:37` poisons the 37th training sample the LSTM
/// processes and nothing else. Each site keeps its own hit counter, so
/// firing points are reproducible for a fixed workload regardless of
/// wall-clock or thread scheduling (sites inside parallel regions are
/// counter-ordered, not time-ordered). Byte positions for bit flips
/// come from an internal Rng seeded by `seed` (env `MEXI_FAULT_SEED`,
/// default 0), making corruption patterns replayable too.
///
/// An unconfigured injector is inert: `Hit` is a counter increment and
/// one branch, cheap enough to leave in production paths.
class FaultInjector {
 public:
  FaultInjector() = default;

  /// Parses and arms `spec`. Throws StatusError(kInvalidArgument) on
  /// grammar errors. An empty spec clears all clauses.
  void Configure(const std::string& spec, std::uint64_t seed = 0);

  /// Disarms every clause and resets hit counters.
  void Clear();

  /// Records one hit at `site` and returns the fault to apply now
  /// (kNone almost always). Thread-safe.
  FaultKind Hit(FaultSite site);

  /// Deterministic draw for fault parameters (e.g. which byte to flip).
  std::uint64_t Draw();

  bool active() const;

  /// Process-wide instance, configured from MEXI_FAULTS/MEXI_FAULT_SEED
  /// on first access. Tests may Configure()/Clear() it directly.
  static FaultInjector& Global();

 private:
  struct Clause {
    FaultKind kind = FaultKind::kNone;
    FaultSite site = FaultSite::kCheckpointWrite;
    std::uint64_t occurrence = 1;  // fires when the site count hits this
    bool fired = false;
  };

  mutable std::mutex mutex_;
  std::vector<Clause> clauses_;
  std::uint64_t hits_[kNumFaultSites] = {};
  stats::Rng rng_{0};
};

/// Spec-name helpers (exposed for error messages and tests).
const char* FaultKindName(FaultKind kind);
const char* FaultSiteName(FaultSite site);

}  // namespace mexi::robust

#endif  // MEXI_ROBUST_FAULT_INJECTION_H_
