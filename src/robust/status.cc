#include "robust/status.h"

#include <sstream>

namespace mexi::robust {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid argument";
    case StatusCode::kNotFound:
      return "not found";
    case StatusCode::kIoError:
      return "io error";
    case StatusCode::kParseError:
      return "parse error";
    case StatusCode::kCorruption:
      return "corruption";
    case StatusCode::kDivergence:
      return "divergence";
    case StatusCode::kResourceExhausted:
      return "resource exhausted";
    case StatusCode::kAborted:
      return "aborted";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::ostringstream out;
  out << StatusCodeName(code_) << ": " << message_;
  if (!file_.empty() || line_ != 0) {
    out << " [";
    if (!file_.empty()) out << file_;
    if (line_ != 0) {
      if (!file_.empty()) out << ':';
      out << "line " << line_;
    }
    out << ']';
  }
  return out.str();
}

void ThrowStatus(StatusCode code, std::string message) {
  throw StatusError(Status(code, std::move(message)));
}

void ThrowIfError(const Status& status) {
  if (!status.ok()) throw StatusError(status);
}

}  // namespace mexi::robust
