#ifndef MEXI_ROBUST_STATUS_H_
#define MEXI_ROBUST_STATUS_H_

#include <cstddef>
#include <stdexcept>
#include <string>

namespace mexi::robust {

/// Canonical error categories for the fault-tolerance substrate.
///
/// The categories are deliberately coarse: callers branch on *recovery
/// strategy* (retry, fall back to a previous checkpoint, abort the run,
/// fix the input file), not on the precise failure mechanics, which live
/// in the message.
enum class StatusCode {
  kOk = 0,
  /// Caller passed something structurally invalid (bad spec grammar,
  /// shape mismatch on restore).
  kInvalidArgument,
  /// A required file / checkpoint does not exist.
  kNotFound,
  /// The operating system failed an I/O call (open, write, rename).
  kIoError,
  /// Malformed external input data (CSV rows, out-of-range indices).
  kParseError,
  /// Stored bytes fail validation: bad magic, version, size, or
  /// checksum — a torn write or bit rot. Recovery: previous checkpoint.
  kCorruption,
  /// Training produced non-finite state (NaN/Inf loss or weights).
  /// Recovery: restart from the last checkpoint, possibly with
  /// different hyper-parameters.
  kDivergence,
  /// A resource ran out (disk space, quota).
  kResourceExhausted,
  /// The operation was deliberately aborted mid-flight (fault
  /// injection, shutdown request).
  kAborted,
};

/// Human-readable name ("kCorruption" -> "corruption").
const char* StatusCodeName(StatusCode code);

/// A result descriptor: a code plus context. `file` and `line` localize
/// data errors (line is 1-based; 0 means not applicable) so tooling can
/// point at the offending input instead of grepping messages.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status Error(StatusCode code, std::string message) {
    return Status(code, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }
  const std::string& file() const { return file_; }
  std::size_t line() const { return line_; }

  /// Attaches the offending file path / input line (chainable).
  Status& WithFile(std::string file) {
    file_ = std::move(file);
    return *this;
  }
  Status& WithLine(std::size_t line) {
    line_ = line;
    return *this;
  }

  /// "corruption: checksum mismatch [ckpt/lstm.bin]" style rendering.
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
  std::string file_;
  std::size_t line_ = 0;
};

/// Exception carrier for a Status. Derives from std::runtime_error so
/// every pre-existing `catch (const std::runtime_error&)` /
/// `catch (const std::exception&)` site keeps working; new code can
/// catch StatusError and branch on `status().code()`.
class StatusError : public std::runtime_error {
 public:
  explicit StatusError(Status status)
      : std::runtime_error(status.ToString()), status_(std::move(status)) {}

  const Status& status() const { return status_; }

 private:
  Status status_;
};

/// Throws StatusError(code, message).
[[noreturn]] void ThrowStatus(StatusCode code, std::string message);

/// Throws unless `status.ok()`.
void ThrowIfError(const Status& status);

}  // namespace mexi::robust

#endif  // MEXI_ROBUST_STATUS_H_
