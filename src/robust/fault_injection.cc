#include "robust/fault_injection.h"

#include <cstdlib>

#include "obs/obs.h"
#include "robust/status.h"

namespace mexi::robust {

namespace {

struct KindEntry {
  const char* name;
  FaultKind kind;
};
constexpr KindEntry kKinds[] = {
    {"short_write", FaultKind::kShortWrite}, {"bitflip", FaultKind::kBitFlip},
    {"enospc", FaultKind::kEnospc},          {"nan", FaultKind::kNan},
    {"abort", FaultKind::kAbort},            {"kill", FaultKind::kKill},
    {"torn_read", FaultKind::kTornRead},     {"eintr", FaultKind::kEintr},
    {"conn_reset", FaultKind::kConnReset},   {"slow_write", FaultKind::kSlowWrite},
};

struct SiteEntry {
  const char* name;
  FaultSite site;
};
constexpr SiteEntry kSites[] = {
    {"ckpt_write", FaultSite::kCheckpointWrite},
    {"lstm_grad", FaultSite::kLstmGradient},
    {"cnn_grad", FaultSite::kCnnGradient},
    {"logreg_grad", FaultSite::kLogRegGradient},
    {"epoch", FaultSite::kEpochEnd},
    {"fold", FaultSite::kFoldEnd},
    {"io_read", FaultSite::kIoRead},
    {"matchers_write", FaultSite::kMatchersWrite},
    {"stream_emit", FaultSite::kStreamEmit},
    {"net_accept", FaultSite::kNetAccept},
    {"net_read", FaultSite::kNetRead},
    {"net_write", FaultSite::kNetWrite},
    {"sweep_shard", FaultSite::kSweepShard},
};

FaultKind ParseKind(const std::string& text) {
  for (const auto& entry : kKinds) {
    if (text == entry.name) return entry.kind;
  }
  ThrowStatus(StatusCode::kInvalidArgument,
              "unknown fault kind '" + text +
                  "' (want short_write|bitflip|enospc|nan|abort|kill|"
                  "torn_read|eintr|conn_reset|slow_write)");
}

FaultSite ParseSite(const std::string& text) {
  for (const auto& entry : kSites) {
    if (text == entry.name) return entry.site;
  }
  ThrowStatus(StatusCode::kInvalidArgument,
              "unknown fault site '" + text +
                  "' (want ckpt_write|lstm_grad|cnn_grad|logreg_grad|"
                  "epoch|fold|io_read|matchers_write|stream_emit|"
                  "net_accept|net_read|net_write|sweep_shard)");
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  for (const auto& entry : kKinds) {
    if (entry.kind == kind) return entry.name;
  }
  return "none";
}

const char* FaultSiteName(FaultSite site) {
  for (const auto& entry : kSites) {
    if (entry.site == site) return entry.name;
  }
  return "?";
}

void FaultInjector::Configure(const std::string& spec, std::uint64_t seed) {
  std::vector<Clause> clauses;
  std::size_t begin = 0;
  while (begin <= spec.size() && !spec.empty()) {
    std::size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    const std::string clause_text = spec.substr(begin, end - begin);
    begin = end + 1;
    if (clause_text.empty()) continue;

    const std::size_t at = clause_text.find('@');
    const std::size_t colon = clause_text.find(':', at == std::string::npos
                                                           ? 0
                                                           : at + 1);
    if (at == std::string::npos || colon == std::string::npos) {
      ThrowStatus(StatusCode::kInvalidArgument,
                  "bad fault clause '" + clause_text +
                      "' (want kind@site:occurrence)");
    }
    Clause clause;
    clause.kind = ParseKind(clause_text.substr(0, at));
    clause.site = ParseSite(clause_text.substr(at + 1, colon - at - 1));
    const std::string count_text = clause_text.substr(colon + 1);
    char* parse_end = nullptr;
    clause.occurrence = std::strtoull(count_text.c_str(), &parse_end, 10);
    if (count_text.empty() || *parse_end != '\0' || clause.occurrence == 0) {
      ThrowStatus(StatusCode::kInvalidArgument,
                  "bad fault occurrence '" + count_text +
                      "' (want a positive integer)");
    }
    clauses.push_back(clause);
    if (end == spec.size()) break;
  }

  std::lock_guard<std::mutex> lock(mutex_);
  clauses_ = std::move(clauses);
  for (auto& hits : hits_) hits = 0;
  rng_ = stats::Rng(seed);
}

void FaultInjector::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  clauses_.clear();
  for (auto& hits : hits_) hits = 0;
}

FaultKind FaultInjector::Hit(FaultSite site) {
  FaultKind fired = FaultKind::kNone;
  std::uint64_t count = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (clauses_.empty()) return FaultKind::kNone;
    count = ++hits_[static_cast<std::size_t>(site)];
    for (auto& clause : clauses_) {
      if (!clause.fired && clause.site == site && clause.occurrence == count) {
        clause.fired = true;
        fired = clause.kind;
        break;
      }
    }
  }
  if (fired != FaultKind::kNone && obs::MetricsEnabled()) {
    auto& hub = obs::Observability::Global();
    hub.registry()
        .GetCounter(std::string("faults.injected.") + FaultSiteName(site))
        .Add();
    hub.Event("fault.injected", {obs::F("kind", FaultKindName(fired)),
                                 obs::F("site", FaultSiteName(site)),
                                 obs::F("occurrence", count)});
    // kAbort/kKill terminate the instrumented site right after this
    // returns — flush now so the fault's trace survives the death.
    hub.Flush();
  }
  return fired;
}

std::uint64_t FaultInjector::Draw() {
  std::lock_guard<std::mutex> lock(mutex_);
  return rng_.NextU64();
}

bool FaultInjector::active() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return !clauses_.empty();
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* instance = [] {
    auto* injector = new FaultInjector();
    if (const char* spec = std::getenv("MEXI_FAULTS")) {
      std::uint64_t seed = 0;
      if (const char* seed_text = std::getenv("MEXI_FAULT_SEED")) {
        seed = std::strtoull(seed_text, nullptr, 10);
      }
      injector->Configure(spec, seed);
    }
    return injector;
  }();
  return *instance;
}

}  // namespace mexi::robust
