#ifndef MEXI_ROBUST_CHECKPOINT_H_
#define MEXI_ROBUST_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "robust/serialize.h"
#include "robust/status.h"

namespace mexi::robust {

/// On-disk checkpoint envelope:
///
///   offset  size  field
///        0     4  magic "MEXC"
///        4     4  format version (u32 LE, currently 1)
///        8     8  payload length in bytes (u64 LE)
///       16     8  FNV-1a of the payload bytes (u64 LE)
///       24     n  payload
///
/// Validation checks magic, version, that the payload length matches
/// the bytes actually present (catches torn/short writes), and the
/// checksum (catches bit rot). Any failure is kCorruption — the caller
/// falls back to the previous checkpoint, never loads partial state.
inline constexpr std::uint32_t kCheckpointFormatVersion = 1;

/// Wraps `payload` in the envelope above.
std::vector<std::uint8_t> SealCheckpoint(
    const std::vector<std::uint8_t>& payload);

/// Validates `bytes` and extracts the payload.
Status OpenCheckpoint(const std::vector<std::uint8_t>& bytes,
                      std::vector<std::uint8_t>* payload);

/// Writes `bytes` to `path` via the atomic temp-file + rename protocol:
/// the full content lands in `path + ".tmp"` and is renamed over `path`
/// only after a successful flush+close, so readers observe either the
/// old file or the new file, never a mix. Consults the global
/// FaultInjector (site ckpt_write) for injected short writes, bit
/// flips, and ENOSPC. With MEXI_CKPT_FSYNC=1 the temp file is fsync'd
/// before the rename (power-loss durability; counted as the
/// `ckpt.fsyncs` metric when metrics are on).
Status WriteFileAtomic(const std::string& path,
                       const std::vector<std::uint8_t>& bytes);

/// Sets the process-wide default for fsync-on-commit when the
/// MEXI_CKPT_FSYNC environment variable is unset. The env var always
/// wins: "1" forces fsync on, "0" forces it off. Library/CLI contexts
/// keep the historical crash-consistent default (off); `mexi_serve`
/// turns the default on, because its drain checkpoint is an audit
/// record that must survive power loss (DESIGN.md §13).
void SetFsyncDefault(bool enabled);

/// Reads a whole file; kNotFound if it does not exist.
Status ReadFileBytes(const std::string& path,
                     std::vector<std::uint8_t>* bytes);

/// One named checkpoint slot with last-good fallback.
///
/// `Commit` keeps two generations on disk: `<dir>/<stem>.bin` (newest)
/// and `<dir>/<stem>.prev.bin` (previous). The commit order — seal to a
/// temp file, rotate current to prev, rename temp to current — means a
/// crash at any instant leaves at least one valid generation.
/// `LoadLatest` prefers the newest file and transparently falls back to
/// the previous one when the newest is missing or fails validation.
class CheckpointManager {
 public:
  CheckpointManager(std::string directory, std::string stem);

  /// Seals `payload` and atomically installs it as the newest
  /// generation, demoting the old newest to `.prev`.
  Status Commit(const std::vector<std::uint8_t>& payload);

  struct LoadInfo {
    /// True when the newest generation was rejected and the previous
    /// one was used instead.
    bool fell_back = false;
    /// The file the payload came from.
    std::string source_path;
  };

  /// Loads the newest valid generation. kNotFound when neither file
  /// exists; kCorruption when files exist but none validates.
  Status LoadLatest(std::vector<std::uint8_t>* payload,
                    LoadInfo* info = nullptr);

  /// Removes both generations (used by fresh runs to drop stale state).
  void Discard();

  const std::string& directory() const { return directory_; }
  std::string CurrentPath() const;
  std::string PreviousPath() const;

 private:
  std::string directory_;
  std::string stem_;
};

}  // namespace mexi::robust

#endif  // MEXI_ROBUST_CHECKPOINT_H_
