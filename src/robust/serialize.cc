#include "robust/serialize.h"

namespace mexi::robust {

std::uint64_t Fnv1a(const void* data, std::size_t size, std::uint64_t hash) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

void BinaryReader::ExpectTag(const char (&tag)[5]) {
  Require(4);
  if (std::memcmp(data_ + pos_, tag, 4) != 0) {
    const std::string found(reinterpret_cast<const char*>(data_ + pos_), 4);
    ThrowStatus(StatusCode::kCorruption,
                std::string("section tag mismatch: expected '") + tag +
                    "', found '" + found + "'");
  }
  pos_ += 4;
}

void WriteRngState(BinaryWriter& writer, const stats::Rng& rng) {
  const stats::Rng::State state = rng.SaveState();
  writer.WriteTag("RNG ");
  writer.WriteU64(state.seed);
  for (std::uint64_t word : state.words) writer.WriteU64(word);
  writer.WriteDouble(state.cached_gaussian);
  writer.WriteBool(state.has_cached_gaussian);
}

void ReadRngState(BinaryReader& reader, stats::Rng& rng) {
  reader.ExpectTag("RNG ");
  stats::Rng::State state;
  state.seed = reader.ReadU64();
  for (auto& word : state.words) word = reader.ReadU64();
  state.cached_gaussian = reader.ReadDouble();
  state.has_cached_gaussian = reader.ReadBool();
  rng.LoadState(state);
}

}  // namespace mexi::robust
