#include "robust/checkpoint.h"

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "obs/obs.h"
#include "obs/trace.h"
#include "robust/fault_injection.h"

namespace mexi::robust {

namespace {

constexpr char kMagic[4] = {'M', 'E', 'X', 'C'};
constexpr std::size_t kHeaderSize = 4 + 4 + 8 + 8;

Status ErrnoStatus(const char* op, const std::string& path) {
  return Status::Error(StatusCode::kIoError,
                       std::string(op) + " failed: " + std::strerror(errno))
      .WithFile(path);
}

std::atomic<bool> g_fsync_default{false};

// MEXI_CKPT_FSYNC upgrades (or downgrades) the atomic-write contract
// between crash-consistent and power-loss durable: "1" forces fsync on,
// "0" forces it off, unset falls back to the SetFsyncDefault() process
// default (off for library/CLI use, on under mexi_serve). Read per
// write (not cached) so tests can flip it between commits.
bool FsyncOnCommit() {
  const char* env = std::getenv("MEXI_CKPT_FSYNC");
  if (env != nullptr && std::strcmp(env, "1") == 0) return true;
  if (env != nullptr && std::strcmp(env, "0") == 0) return false;
  return g_fsync_default.load(std::memory_order_relaxed);
}

}  // namespace

void SetFsyncDefault(bool enabled) {
  g_fsync_default.store(enabled, std::memory_order_relaxed);
}

std::vector<std::uint8_t> SealCheckpoint(
    const std::vector<std::uint8_t>& payload) {
  BinaryWriter header;
  header.WriteRaw(kMagic, 4);
  header.WriteU32(kCheckpointFormatVersion);
  header.WriteU64(payload.size());
  header.WriteU64(Fnv1a(payload.data(), payload.size()));
  std::vector<std::uint8_t> sealed = header.buffer();
  sealed.insert(sealed.end(), payload.begin(), payload.end());
  return sealed;
}

Status OpenCheckpoint(const std::vector<std::uint8_t>& bytes,
                      std::vector<std::uint8_t>* payload) {
  if (bytes.size() < kHeaderSize) {
    return Status::Error(StatusCode::kCorruption,
                         "checkpoint shorter than its header (" +
                             std::to_string(bytes.size()) + " bytes)");
  }
  BinaryReader reader(bytes.data(), kHeaderSize);
  char magic[4];
  std::memcpy(magic, bytes.data(), 4);
  if (std::memcmp(magic, kMagic, 4) != 0) {
    return Status::Error(StatusCode::kCorruption, "bad checkpoint magic");
  }
  reader.ExpectTag("MEXC");
  const std::uint32_t version = reader.ReadU32();
  if (version != kCheckpointFormatVersion) {
    return Status::Error(StatusCode::kCorruption,
                         "unsupported checkpoint version " +
                             std::to_string(version));
  }
  const std::uint64_t payload_size = reader.ReadU64();
  const std::uint64_t checksum = reader.ReadU64();
  if (payload_size != bytes.size() - kHeaderSize) {
    return Status::Error(
        StatusCode::kCorruption,
        "torn write: header promises " + std::to_string(payload_size) +
            " payload bytes, file holds " +
            std::to_string(bytes.size() - kHeaderSize));
  }
  const std::uint64_t actual =
      Fnv1a(bytes.data() + kHeaderSize, static_cast<std::size_t>(payload_size));
  if (actual != checksum) {
    return Status::Error(StatusCode::kCorruption,
                         "checksum mismatch: stored " +
                             std::to_string(checksum) + ", computed " +
                             std::to_string(actual));
  }
  payload->assign(bytes.begin() + kHeaderSize, bytes.end());
  return Status::Ok();
}

namespace {

/// Counts every envelope rejection; called on the validation paths so
/// silent fallback-to-prev still shows up in the metrics.
void CountCorruption(const Status& status) {
  if (status.ok() || status.code() == StatusCode::kNotFound) return;
  if (obs::MetricsEnabled()) {
    obs::Registry().GetCounter("ckpt.corruption_detected").Add();
  }
}

}  // namespace

Status WriteFileAtomic(const std::string& path,
                       const std::vector<std::uint8_t>& bytes) {
  const FaultKind fault =
      FaultInjector::Global().Hit(FaultSite::kCheckpointWrite);
  if (fault == FaultKind::kEnospc) {
    return Status::Error(StatusCode::kResourceExhausted,
                         "injected ENOSPC: no space left on device")
        .WithFile(path);
  }
  std::vector<std::uint8_t> to_write = bytes;
  if (fault == FaultKind::kShortWrite && !to_write.empty()) {
    to_write.resize(to_write.size() / 2);
  } else if (fault == FaultKind::kBitFlip && !to_write.empty()) {
    const std::size_t pos = static_cast<std::size_t>(
        FaultInjector::Global().Draw() % to_write.size());
    to_write[pos] ^= 0x40;
  }

  const std::string tmp_path = path + ".tmp";
  std::FILE* file = std::fopen(tmp_path.c_str(), "wb");
  if (file == nullptr) return ErrnoStatus("open", tmp_path);
  if (!to_write.empty() &&
      std::fwrite(to_write.data(), 1, to_write.size(), file) !=
          to_write.size()) {
    std::fclose(file);
    std::remove(tmp_path.c_str());
    return ErrnoStatus("write", tmp_path);
  }
  if (std::fflush(file) != 0) {
    std::fclose(file);
    std::remove(tmp_path.c_str());
    return ErrnoStatus("flush", tmp_path);
  }
  if (FsyncOnCommit()) {
    // Durability opt-in: flush the page cache to stable storage before
    // the rename makes the file visible, so a power loss cannot leave
    // an installed-but-empty checkpoint. Off by default — fsync costs
    // milliseconds per commit and the default contract only promises
    // atomicity against *process* crashes.
    if (::fsync(::fileno(file)) != 0) {
      std::fclose(file);
      std::remove(tmp_path.c_str());
      return ErrnoStatus("fsync", tmp_path);
    }
    if (obs::MetricsEnabled()) {
      obs::Registry().GetCounter("ckpt.fsyncs").Add();
    }
  }
  if (std::fclose(file) != 0) {
    std::remove(tmp_path.c_str());
    return ErrnoStatus("close", tmp_path);
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return ErrnoStatus("rename", path);
  }
  return Status::Ok();
}

Status ReadFileBytes(const std::string& path,
                     std::vector<std::uint8_t>* bytes) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    if (errno == ENOENT) {
      return Status::Error(StatusCode::kNotFound, "no such file")
          .WithFile(path);
    }
    return ErrnoStatus("open", path);
  }
  bytes->clear();
  std::uint8_t buffer[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    bytes->insert(bytes->end(), buffer, buffer + n);
  }
  const bool failed = std::ferror(file) != 0;
  std::fclose(file);
  if (failed) return ErrnoStatus("read", path);
  return Status::Ok();
}

CheckpointManager::CheckpointManager(std::string directory, std::string stem)
    : directory_(std::move(directory)), stem_(std::move(stem)) {}

std::string CheckpointManager::CurrentPath() const {
  return directory_ + "/" + stem_ + ".bin";
}

std::string CheckpointManager::PreviousPath() const {
  return directory_ + "/" + stem_ + ".prev.bin";
}

Status CheckpointManager::Commit(const std::vector<std::uint8_t>& payload) {
  const obs::Span span("ckpt.commit");
  const auto commit_start = std::chrono::steady_clock::now();
  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);
  if (ec) {
    return Status::Error(StatusCode::kIoError,
                         "cannot create checkpoint directory: " + ec.message())
        .WithFile(directory_);
  }
  const std::vector<std::uint8_t> sealed = SealCheckpoint(payload);

  // Stage the new generation fully before touching the old ones; the
  // rotate + install renames are each atomic, so every crash window
  // leaves a loadable current or prev.
  const std::string staged = CurrentPath() + ".new";
  Status status = WriteFileAtomic(staged, sealed);
  if (!status.ok()) return status;
  if (std::filesystem::exists(CurrentPath(), ec)) {
    if (std::rename(CurrentPath().c_str(), PreviousPath().c_str()) != 0) {
      return ErrnoStatus("rotate", PreviousPath());
    }
  }
  if (std::rename(staged.c_str(), CurrentPath().c_str()) != 0) {
    return ErrnoStatus("install", CurrentPath());
  }

  auto& hub = obs::Observability::Global();
  if (hub.metrics_enabled()) {
    auto& registry = hub.registry();
    registry.GetCounter("ckpt.commits").Add();
    registry.GetCounter("ckpt.bytes_written").Add(sealed.size());
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      commit_start)
            .count();
    registry.GetTimer("ckpt.commit_latency").Observe(seconds);
    registry
        .GetHistogram("ckpt.payload_bytes",
                      {1 << 10, 16 << 10, 256 << 10, 4 << 20})
        .Observe(static_cast<double>(payload.size()));
    hub.Event("ckpt.commit", {obs::F("stem", stem_),
                              obs::F("path", CurrentPath()),
                              obs::F("bytes", sealed.size())});
    // A commit is the natural durability point for the JSONL stream
    // too: a later kill still leaves the trace of everything that was
    // checkpointed.
    hub.Flush();
  }
  if (auto* status_file = hub.status()) {
    obs::StatusUpdate update;
    update.last_checkpoint = CurrentPath();
    status_file->Update(update);
  }
  return Status::Ok();
}

Status CheckpointManager::LoadLatest(std::vector<std::uint8_t>* payload,
                                     LoadInfo* info) {
  std::vector<std::uint8_t> bytes;
  Status current_status = ReadFileBytes(CurrentPath(), &bytes);
  if (current_status.ok()) {
    current_status = OpenCheckpoint(bytes, payload);
    if (current_status.ok()) {
      if (info != nullptr) {
        info->fell_back = false;
        info->source_path = CurrentPath();
      }
      if (obs::MetricsEnabled()) {
        obs::Registry().GetCounter("ckpt.restores").Add();
      }
      return Status::Ok();
    }
  }
  CountCorruption(current_status);

  Status prev_status = ReadFileBytes(PreviousPath(), &bytes);
  if (prev_status.ok()) {
    prev_status = OpenCheckpoint(bytes, payload);
    if (prev_status.ok()) {
      // A fallback only happened if a newer (broken) generation sat
      // on disk; a lone .prev after a crash-during-commit is simply
      // the newest state.
      const bool fell_back = current_status.code() != StatusCode::kNotFound;
      if (info != nullptr) {
        info->fell_back = fell_back;
        info->source_path = PreviousPath();
      }
      if (obs::MetricsEnabled()) {
        obs::Registry().GetCounter("ckpt.restores").Add();
        if (fell_back) obs::Registry().GetCounter("ckpt.fallbacks").Add();
      }
      return Status::Ok();
    }
  }
  CountCorruption(prev_status);

  if (current_status.code() == StatusCode::kNotFound &&
      prev_status.code() == StatusCode::kNotFound) {
    return Status::Error(StatusCode::kNotFound,
                         "no checkpoint generations found")
        .WithFile(CurrentPath());
  }
  // Prefer reporting the newest generation's failure.
  return current_status.code() == StatusCode::kNotFound ? prev_status
                                                        : current_status;
}

void CheckpointManager::Discard() {
  std::remove(CurrentPath().c_str());
  std::remove(PreviousPath().c_str());
  std::remove((CurrentPath() + ".new").c_str());
  std::remove((CurrentPath() + ".new.tmp").c_str());
}

}  // namespace mexi::robust
