#include "parallel/parallel_for.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "parallel/thread_pool.h"

namespace mexi::parallel {

namespace {

constexpr std::size_t kUnset = static_cast<std::size_t>(-1);

std::atomic<std::size_t> g_thread_override{kUnset};

thread_local bool t_in_parallel_region = false;

/// Marks the calling thread as inside a parallel body for its lifetime,
/// restoring the previous flag on exit (the calling thread participates
/// in its own ParallelFor and must revert to "outside" afterwards).
struct RegionGuard {
  bool saved = t_in_parallel_region;
  RegionGuard() { t_in_parallel_region = true; }
  ~RegionGuard() { t_in_parallel_region = saved; }
};

std::size_t HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

/// MEXI_THREADS, parsed once; kUnset when absent or malformed.
std::size_t EnvThreads() {
  static const std::size_t value = [] {
    const char* env = std::getenv("MEXI_THREADS");
    if (env == nullptr || *env == '\0') return kUnset;
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(env, &end, 10);
    if (end == env || *end != '\0') return kUnset;
    return static_cast<std::size_t>(parsed);
  }();
  return value;
}

/// The lazily-created process-wide pool, regrown (never shrunk) when a
/// site asks for more workers than it currently has. Growth recreates
/// the pool, which is safe because every ParallelFor joins its chunks
/// before returning — the pool is idle whenever this runs.
ThreadPool& GlobalPool(std::size_t min_size) {
  static std::mutex pool_mutex;
  static std::unique_ptr<ThreadPool> pool;
  std::lock_guard<std::mutex> lock(pool_mutex);
  if (pool == nullptr || pool->size() < min_size) {
    pool.reset();  // join the old workers before growing
    pool = std::make_unique<ThreadPool>(min_size);
  }
  return *pool;
}

}  // namespace

void SetThreads(std::size_t n) { g_thread_override.store(n); }

std::size_t EffectiveThreads() {
  const std::size_t override_value = g_thread_override.load();
  if (override_value != kUnset) {
    return override_value == 0 ? HardwareThreads() : override_value;
  }
  const std::size_t env_value = EnvThreads();
  if (env_value != kUnset) {
    return env_value == 0 ? HardwareThreads() : env_value;
  }
  return HardwareThreads();
}

bool InParallelRegion() { return t_in_parallel_region; }

void ParallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                 const std::function<void(std::size_t)>& fn) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  const std::size_t threads = EffectiveThreads();
  if (threads <= 1 || t_in_parallel_region || n <= 1 ||
      (grain > 0 && n <= grain)) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  std::size_t chunk = grain;
  if (chunk == 0) chunk = std::max<std::size_t>(1, n / (threads * 8));
  const std::size_t chunks = (n + chunk - 1) / chunk;
  if (chunks <= 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  struct State {
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex mutex;
    std::condition_variable done;
    std::size_t helpers_finished = 0;
  };
  auto state = std::make_shared<State>();

  // Chunks are claimed from a shared counter; the claiming order is
  // irrelevant to the result because fn only writes per-index state.
  auto run_chunks = [state, begin, end, chunk, chunks, &fn] {
    RegionGuard guard;
    while (!state->failed.load(std::memory_order_relaxed)) {
      const std::size_t c =
          state->next.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) break;
      const std::size_t lo = begin + c * chunk;
      const std::size_t hi = std::min(end, lo + chunk);
      try {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->mutex);
        if (state->error == nullptr) {
          state->error = std::current_exception();
        }
        state->failed.store(true);
      }
    }
  };

  const std::size_t helpers = std::min(threads - 1, chunks - 1);
  ThreadPool& pool = GlobalPool(helpers);
  for (std::size_t h = 0; h < helpers; ++h) {
    pool.Submit([state, run_chunks] {
      run_chunks();
      std::lock_guard<std::mutex> lock(state->mutex);
      ++state->helpers_finished;
      state->done.notify_one();
    });
  }
  run_chunks();  // the calling thread works too instead of idling

  std::unique_lock<std::mutex> lock(state->mutex);
  state->done.wait(
      lock, [&] { return state->helpers_finished == helpers; });
  if (state->error != nullptr) std::rethrow_exception(state->error);
}

}  // namespace mexi::parallel
