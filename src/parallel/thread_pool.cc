#include "parallel/thread_pool.h"

namespace mexi::parallel {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  ready_.notify_one();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace mexi::parallel
