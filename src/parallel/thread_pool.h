#ifndef MEXI_PARALLEL_THREAD_POOL_H_
#define MEXI_PARALLEL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mexi::parallel {

/// Fixed-size pool of worker threads consuming tasks from one shared FIFO
/// queue. There is deliberately no work stealing: the single queue is the
/// only source of work, which keeps the scheduler small and auditable.
/// Determinism never rests on scheduling anyway — every parallel site in
/// the library writes to disjoint, pre-sized output slots.
///
/// Destruction drains the queue: tasks submitted before the destructor
/// runs are completed, then the workers join.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task. Tasks must not throw — ParallelFor catches inside
  /// the task body and rethrows on the calling thread instead.
  void Submit(std::function<void()> task);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable ready_;
  bool stopping_ = false;
};

}  // namespace mexi::parallel

#endif  // MEXI_PARALLEL_THREAD_POOL_H_
