#ifndef MEXI_PARALLEL_PARALLEL_FOR_H_
#define MEXI_PARALLEL_PARALLEL_FOR_H_

#include <cstddef>
#include <functional>
#include <vector>

namespace mexi::parallel {

/// Sets the worker-thread count for every parallel site in the library.
/// Resolution order when a site asks for threads:
///   1. the last SetThreads(n) call (CLI --threads flag, tests),
///   2. the MEXI_THREADS environment variable,
///   3. std::thread::hardware_concurrency().
/// A value of 0 means "auto" (hardware concurrency). A value of 1 selects
/// the exact sequential fallback: ParallelFor runs inline on the calling
/// thread and never touches the pool.
void SetThreads(std::size_t n);

/// The resolved thread count parallel sites will use right now.
std::size_t EffectiveThreads();

/// True while the calling thread is executing a ParallelFor body. Nested
/// parallel sites detect this and run inline (sequentially) rather than
/// re-entering the pool, which both avoids deadlock and keeps the
/// outermost site the only fan-out point.
bool InParallelRegion();

/// Runs fn(i) for every i in [begin, end), partitioned into chunks of
/// `grain` consecutive indices (grain 0 = pick a chunk size from the
/// range and thread count). Falls back to a plain sequential loop when
/// the effective thread count is 1, the whole range fits in one chunk,
/// or the caller is itself inside a parallel region.
///
/// Determinism contract: fn must write only to state owned by index i
/// (pre-sized slots, not push_back). Under that contract the result is
/// independent of the schedule, so N-thread and 1-thread runs are
/// bitwise identical. The first exception thrown by fn is rethrown on
/// the calling thread after the remaining chunks are abandoned.
void ParallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                 const std::function<void(std::size_t)>& fn);

/// ParallelFor that materializes return values: out[i - begin] = fn(i).
/// T must be default-constructible; the same determinism contract and
/// sequential fallbacks as ParallelFor apply.
template <typename T, typename Fn>
std::vector<T> ParallelMap(std::size_t begin, std::size_t end,
                           std::size_t grain, Fn&& fn) {
  std::vector<T> out(end > begin ? end - begin : 0);
  ParallelFor(begin, end, grain,
              [&](std::size_t i) { out[i - begin] = fn(i); });
  return out;
}

}  // namespace mexi::parallel

#endif  // MEXI_PARALLEL_PARALLEL_FOR_H_
