
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_boosting.cc" "tests/CMakeFiles/mexi_tests.dir/test_boosting.cc.o" "gcc" "tests/CMakeFiles/mexi_tests.dir/test_boosting.cc.o.d"
  "/root/repo/tests/test_classifiers.cc" "tests/CMakeFiles/mexi_tests.dir/test_classifiers.cc.o" "gcc" "tests/CMakeFiles/mexi_tests.dir/test_classifiers.cc.o.d"
  "/root/repo/tests/test_cnn.cc" "tests/CMakeFiles/mexi_tests.dir/test_cnn.cc.o" "gcc" "tests/CMakeFiles/mexi_tests.dir/test_cnn.cc.o.d"
  "/root/repo/tests/test_correlation.cc" "tests/CMakeFiles/mexi_tests.dir/test_correlation.cc.o" "gcc" "tests/CMakeFiles/mexi_tests.dir/test_correlation.cc.o.d"
  "/root/repo/tests/test_dataset.cc" "tests/CMakeFiles/mexi_tests.dir/test_dataset.cc.o" "gcc" "tests/CMakeFiles/mexi_tests.dir/test_dataset.cc.o.d"
  "/root/repo/tests/test_decision_history.cc" "tests/CMakeFiles/mexi_tests.dir/test_decision_history.cc.o" "gcc" "tests/CMakeFiles/mexi_tests.dir/test_decision_history.cc.o.d"
  "/root/repo/tests/test_descriptive.cc" "tests/CMakeFiles/mexi_tests.dir/test_descriptive.cc.o" "gcc" "tests/CMakeFiles/mexi_tests.dir/test_descriptive.cc.o.d"
  "/root/repo/tests/test_evaluation.cc" "tests/CMakeFiles/mexi_tests.dir/test_evaluation.cc.o" "gcc" "tests/CMakeFiles/mexi_tests.dir/test_evaluation.cc.o.d"
  "/root/repo/tests/test_expert_model.cc" "tests/CMakeFiles/mexi_tests.dir/test_expert_model.cc.o" "gcc" "tests/CMakeFiles/mexi_tests.dir/test_expert_model.cc.o.d"
  "/root/repo/tests/test_features.cc" "tests/CMakeFiles/mexi_tests.dir/test_features.cc.o" "gcc" "tests/CMakeFiles/mexi_tests.dir/test_features.cc.o.d"
  "/root/repo/tests/test_golden_nn.cc" "tests/CMakeFiles/mexi_tests.dir/test_golden_nn.cc.o" "gcc" "tests/CMakeFiles/mexi_tests.dir/test_golden_nn.cc.o.d"
  "/root/repo/tests/test_histogram.cc" "tests/CMakeFiles/mexi_tests.dir/test_histogram.cc.o" "gcc" "tests/CMakeFiles/mexi_tests.dir/test_histogram.cc.o.d"
  "/root/repo/tests/test_hypothesis.cc" "tests/CMakeFiles/mexi_tests.dir/test_hypothesis.cc.o" "gcc" "tests/CMakeFiles/mexi_tests.dir/test_hypothesis.cc.o.d"
  "/root/repo/tests/test_io.cc" "tests/CMakeFiles/mexi_tests.dir/test_io.cc.o" "gcc" "tests/CMakeFiles/mexi_tests.dir/test_io.cc.o.d"
  "/root/repo/tests/test_kernels.cc" "tests/CMakeFiles/mexi_tests.dir/test_kernels.cc.o" "gcc" "tests/CMakeFiles/mexi_tests.dir/test_kernels.cc.o.d"
  "/root/repo/tests/test_lstm.cc" "tests/CMakeFiles/mexi_tests.dir/test_lstm.cc.o" "gcc" "tests/CMakeFiles/mexi_tests.dir/test_lstm.cc.o.d"
  "/root/repo/tests/test_match_matrix.cc" "tests/CMakeFiles/mexi_tests.dir/test_match_matrix.cc.o" "gcc" "tests/CMakeFiles/mexi_tests.dir/test_match_matrix.cc.o.d"
  "/root/repo/tests/test_matrix.cc" "tests/CMakeFiles/mexi_tests.dir/test_matrix.cc.o" "gcc" "tests/CMakeFiles/mexi_tests.dir/test_matrix.cc.o.d"
  "/root/repo/tests/test_metrics.cc" "tests/CMakeFiles/mexi_tests.dir/test_metrics.cc.o" "gcc" "tests/CMakeFiles/mexi_tests.dir/test_metrics.cc.o.d"
  "/root/repo/tests/test_mexi.cc" "tests/CMakeFiles/mexi_tests.dir/test_mexi.cc.o" "gcc" "tests/CMakeFiles/mexi_tests.dir/test_mexi.cc.o.d"
  "/root/repo/tests/test_movement.cc" "tests/CMakeFiles/mexi_tests.dir/test_movement.cc.o" "gcc" "tests/CMakeFiles/mexi_tests.dir/test_movement.cc.o.d"
  "/root/repo/tests/test_nn.cc" "tests/CMakeFiles/mexi_tests.dir/test_nn.cc.o" "gcc" "tests/CMakeFiles/mexi_tests.dir/test_nn.cc.o.d"
  "/root/repo/tests/test_parallel.cc" "tests/CMakeFiles/mexi_tests.dir/test_parallel.cc.o" "gcc" "tests/CMakeFiles/mexi_tests.dir/test_parallel.cc.o.d"
  "/root/repo/tests/test_pca.cc" "tests/CMakeFiles/mexi_tests.dir/test_pca.cc.o" "gcc" "tests/CMakeFiles/mexi_tests.dir/test_pca.cc.o.d"
  "/root/repo/tests/test_predictors.cc" "tests/CMakeFiles/mexi_tests.dir/test_predictors.cc.o" "gcc" "tests/CMakeFiles/mexi_tests.dir/test_predictors.cc.o.d"
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/mexi_tests.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/mexi_tests.dir/test_properties.cc.o.d"
  "/root/repo/tests/test_regression.cc" "tests/CMakeFiles/mexi_tests.dir/test_regression.cc.o" "gcc" "tests/CMakeFiles/mexi_tests.dir/test_regression.cc.o.d"
  "/root/repo/tests/test_rng.cc" "tests/CMakeFiles/mexi_tests.dir/test_rng.cc.o" "gcc" "tests/CMakeFiles/mexi_tests.dir/test_rng.cc.o.d"
  "/root/repo/tests/test_schema.cc" "tests/CMakeFiles/mexi_tests.dir/test_schema.cc.o" "gcc" "tests/CMakeFiles/mexi_tests.dir/test_schema.cc.o.d"
  "/root/repo/tests/test_sim.cc" "tests/CMakeFiles/mexi_tests.dir/test_sim.cc.o" "gcc" "tests/CMakeFiles/mexi_tests.dir/test_sim.cc.o.d"
  "/root/repo/tests/test_similarity.cc" "tests/CMakeFiles/mexi_tests.dir/test_similarity.cc.o" "gcc" "tests/CMakeFiles/mexi_tests.dir/test_similarity.cc.o.d"
  "/root/repo/tests/test_submatcher.cc" "tests/CMakeFiles/mexi_tests.dir/test_submatcher.cc.o" "gcc" "tests/CMakeFiles/mexi_tests.dir/test_submatcher.cc.o.d"
  "/root/repo/tests/test_tokenizer.cc" "tests/CMakeFiles/mexi_tests.dir/test_tokenizer.cc.o" "gcc" "tests/CMakeFiles/mexi_tests.dir/test_tokenizer.cc.o.d"
  "/root/repo/tests/test_utilization.cc" "tests/CMakeFiles/mexi_tests.dir/test_utilization.cc.o" "gcc" "tests/CMakeFiles/mexi_tests.dir/test_utilization.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/mexi_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/mexi_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/matching/CMakeFiles/mexi_matching.dir/DependInfo.cmake"
  "/root/repo/build-review/src/schema/CMakeFiles/mexi_schema.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ml/CMakeFiles/mexi_ml.dir/DependInfo.cmake"
  "/root/repo/build-review/src/stats/CMakeFiles/mexi_stats.dir/DependInfo.cmake"
  "/root/repo/build-review/src/parallel/CMakeFiles/mexi_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
