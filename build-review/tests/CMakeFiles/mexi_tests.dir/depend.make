# Empty dependencies file for mexi_tests.
# This may be replaced when dependencies are built.
