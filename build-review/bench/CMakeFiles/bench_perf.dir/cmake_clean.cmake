file(REMOVE_RECURSE
  "CMakeFiles/bench_perf"
)

# Per-language clean rules from dependency scanning.
foreach(lang )
  include(CMakeFiles/bench_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
