file(REMOVE_RECURSE
  "CMakeFiles/table2a_po_identification.dir/table2a_po_identification.cc.o"
  "CMakeFiles/table2a_po_identification.dir/table2a_po_identification.cc.o.d"
  "table2a_po_identification"
  "table2a_po_identification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2a_po_identification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
