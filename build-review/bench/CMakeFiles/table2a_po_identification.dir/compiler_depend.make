# Empty compiler generated dependencies file for table2a_po_identification.
# This may be replaced when dependencies are built.
