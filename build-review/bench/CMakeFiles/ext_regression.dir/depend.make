# Empty dependencies file for ext_regression.
# This may be replaced when dependencies are built.
