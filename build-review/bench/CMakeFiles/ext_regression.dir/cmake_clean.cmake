file(REMOVE_RECURSE
  "CMakeFiles/ext_regression.dir/ext_regression.cc.o"
  "CMakeFiles/ext_regression.dir/ext_regression.cc.o.d"
  "ext_regression"
  "ext_regression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
