file(REMOVE_RECURSE
  "CMakeFiles/bench_compare"
)

# Per-language clean rules from dependency scanning.
foreach(lang )
  include(CMakeFiles/bench_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
