file(REMOVE_RECURSE
  "CMakeFiles/ext_crowd_fusion.dir/ext_crowd_fusion.cc.o"
  "CMakeFiles/ext_crowd_fusion.dir/ext_crowd_fusion.cc.o.d"
  "ext_crowd_fusion"
  "ext_crowd_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_crowd_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
