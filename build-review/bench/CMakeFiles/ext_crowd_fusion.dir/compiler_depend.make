# Empty compiler generated dependencies file for ext_crowd_fusion.
# This may be replaced when dependencies are built.
