file(REMOVE_RECURSE
  "CMakeFiles/fig8_population.dir/fig8_population.cc.o"
  "CMakeFiles/fig8_population.dir/fig8_population.cc.o.d"
  "fig8_population"
  "fig8_population.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_population.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
