# Empty dependencies file for fig8_population.
# This may be replaced when dependencies are built.
