file(REMOVE_RECURSE
  "CMakeFiles/fig9_expert_proportion.dir/fig9_expert_proportion.cc.o"
  "CMakeFiles/fig9_expert_proportion.dir/fig9_expert_proportion.cc.o.d"
  "fig9_expert_proportion"
  "fig9_expert_proportion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_expert_proportion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
