# Empty dependencies file for fig9_expert_proportion.
# This may be replaced when dependencies are built.
