# Empty compiler generated dependencies file for table2b_oaei_generalization.
# This may be replaced when dependencies are built.
