file(REMOVE_RECURSE
  "CMakeFiles/table2b_oaei_generalization.dir/table2b_oaei_generalization.cc.o"
  "CMakeFiles/table2b_oaei_generalization.dir/table2b_oaei_generalization.cc.o.d"
  "table2b_oaei_generalization"
  "table2b_oaei_generalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2b_oaei_generalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
