file(REMOVE_RECURSE
  "CMakeFiles/fig11_early_identification.dir/fig11_early_identification.cc.o"
  "CMakeFiles/fig11_early_identification.dir/fig11_early_identification.cc.o.d"
  "fig11_early_identification"
  "fig11_early_identification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_early_identification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
