# Empty compiler generated dependencies file for fig11_early_identification.
# This may be replaced when dependencies are built.
