file(REMOVE_RECURSE
  "CMakeFiles/table4_feature_importance.dir/table4_feature_importance.cc.o"
  "CMakeFiles/table4_feature_importance.dir/table4_feature_importance.cc.o.d"
  "table4_feature_importance"
  "table4_feature_importance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_feature_importance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
