# Empty dependencies file for mexi_ml.
# This may be replaced when dependencies are built.
