file(REMOVE_RECURSE
  "libmexi_ml.a"
)
