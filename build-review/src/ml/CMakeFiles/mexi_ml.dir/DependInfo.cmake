
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/classifier.cc" "src/ml/CMakeFiles/mexi_ml.dir/classifier.cc.o" "gcc" "src/ml/CMakeFiles/mexi_ml.dir/classifier.cc.o.d"
  "/root/repo/src/ml/dataset.cc" "src/ml/CMakeFiles/mexi_ml.dir/dataset.cc.o" "gcc" "src/ml/CMakeFiles/mexi_ml.dir/dataset.cc.o.d"
  "/root/repo/src/ml/decision_tree.cc" "src/ml/CMakeFiles/mexi_ml.dir/decision_tree.cc.o" "gcc" "src/ml/CMakeFiles/mexi_ml.dir/decision_tree.cc.o.d"
  "/root/repo/src/ml/feature_importance.cc" "src/ml/CMakeFiles/mexi_ml.dir/feature_importance.cc.o" "gcc" "src/ml/CMakeFiles/mexi_ml.dir/feature_importance.cc.o.d"
  "/root/repo/src/ml/gradient_boosting.cc" "src/ml/CMakeFiles/mexi_ml.dir/gradient_boosting.cc.o" "gcc" "src/ml/CMakeFiles/mexi_ml.dir/gradient_boosting.cc.o.d"
  "/root/repo/src/ml/kernels.cc" "src/ml/CMakeFiles/mexi_ml.dir/kernels.cc.o" "gcc" "src/ml/CMakeFiles/mexi_ml.dir/kernels.cc.o.d"
  "/root/repo/src/ml/knn.cc" "src/ml/CMakeFiles/mexi_ml.dir/knn.cc.o" "gcc" "src/ml/CMakeFiles/mexi_ml.dir/knn.cc.o.d"
  "/root/repo/src/ml/linear_svm.cc" "src/ml/CMakeFiles/mexi_ml.dir/linear_svm.cc.o" "gcc" "src/ml/CMakeFiles/mexi_ml.dir/linear_svm.cc.o.d"
  "/root/repo/src/ml/logistic_regression.cc" "src/ml/CMakeFiles/mexi_ml.dir/logistic_regression.cc.o" "gcc" "src/ml/CMakeFiles/mexi_ml.dir/logistic_regression.cc.o.d"
  "/root/repo/src/ml/matrix.cc" "src/ml/CMakeFiles/mexi_ml.dir/matrix.cc.o" "gcc" "src/ml/CMakeFiles/mexi_ml.dir/matrix.cc.o.d"
  "/root/repo/src/ml/metrics.cc" "src/ml/CMakeFiles/mexi_ml.dir/metrics.cc.o" "gcc" "src/ml/CMakeFiles/mexi_ml.dir/metrics.cc.o.d"
  "/root/repo/src/ml/mlp.cc" "src/ml/CMakeFiles/mexi_ml.dir/mlp.cc.o" "gcc" "src/ml/CMakeFiles/mexi_ml.dir/mlp.cc.o.d"
  "/root/repo/src/ml/model_selection.cc" "src/ml/CMakeFiles/mexi_ml.dir/model_selection.cc.o" "gcc" "src/ml/CMakeFiles/mexi_ml.dir/model_selection.cc.o.d"
  "/root/repo/src/ml/naive_bayes.cc" "src/ml/CMakeFiles/mexi_ml.dir/naive_bayes.cc.o" "gcc" "src/ml/CMakeFiles/mexi_ml.dir/naive_bayes.cc.o.d"
  "/root/repo/src/ml/nn/adam.cc" "src/ml/CMakeFiles/mexi_ml.dir/nn/adam.cc.o" "gcc" "src/ml/CMakeFiles/mexi_ml.dir/nn/adam.cc.o.d"
  "/root/repo/src/ml/nn/cnn.cc" "src/ml/CMakeFiles/mexi_ml.dir/nn/cnn.cc.o" "gcc" "src/ml/CMakeFiles/mexi_ml.dir/nn/cnn.cc.o.d"
  "/root/repo/src/ml/nn/layers.cc" "src/ml/CMakeFiles/mexi_ml.dir/nn/layers.cc.o" "gcc" "src/ml/CMakeFiles/mexi_ml.dir/nn/layers.cc.o.d"
  "/root/repo/src/ml/nn/lstm.cc" "src/ml/CMakeFiles/mexi_ml.dir/nn/lstm.cc.o" "gcc" "src/ml/CMakeFiles/mexi_ml.dir/nn/lstm.cc.o.d"
  "/root/repo/src/ml/nn/network.cc" "src/ml/CMakeFiles/mexi_ml.dir/nn/network.cc.o" "gcc" "src/ml/CMakeFiles/mexi_ml.dir/nn/network.cc.o.d"
  "/root/repo/src/ml/random_forest.cc" "src/ml/CMakeFiles/mexi_ml.dir/random_forest.cc.o" "gcc" "src/ml/CMakeFiles/mexi_ml.dir/random_forest.cc.o.d"
  "/root/repo/src/ml/regression.cc" "src/ml/CMakeFiles/mexi_ml.dir/regression.cc.o" "gcc" "src/ml/CMakeFiles/mexi_ml.dir/regression.cc.o.d"
  "/root/repo/src/ml/regression_tree.cc" "src/ml/CMakeFiles/mexi_ml.dir/regression_tree.cc.o" "gcc" "src/ml/CMakeFiles/mexi_ml.dir/regression_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/stats/CMakeFiles/mexi_stats.dir/DependInfo.cmake"
  "/root/repo/build-review/src/parallel/CMakeFiles/mexi_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
