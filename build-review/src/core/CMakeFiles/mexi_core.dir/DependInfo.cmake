
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baselines.cc" "src/core/CMakeFiles/mexi_core.dir/baselines.cc.o" "gcc" "src/core/CMakeFiles/mexi_core.dir/baselines.cc.o.d"
  "/root/repo/src/core/boosting.cc" "src/core/CMakeFiles/mexi_core.dir/boosting.cc.o" "gcc" "src/core/CMakeFiles/mexi_core.dir/boosting.cc.o.d"
  "/root/repo/src/core/characterizer.cc" "src/core/CMakeFiles/mexi_core.dir/characterizer.cc.o" "gcc" "src/core/CMakeFiles/mexi_core.dir/characterizer.cc.o.d"
  "/root/repo/src/core/evaluation.cc" "src/core/CMakeFiles/mexi_core.dir/evaluation.cc.o" "gcc" "src/core/CMakeFiles/mexi_core.dir/evaluation.cc.o.d"
  "/root/repo/src/core/expert_model.cc" "src/core/CMakeFiles/mexi_core.dir/expert_model.cc.o" "gcc" "src/core/CMakeFiles/mexi_core.dir/expert_model.cc.o.d"
  "/root/repo/src/core/features/aggregated_features.cc" "src/core/CMakeFiles/mexi_core.dir/features/aggregated_features.cc.o" "gcc" "src/core/CMakeFiles/mexi_core.dir/features/aggregated_features.cc.o.d"
  "/root/repo/src/core/features/consensus.cc" "src/core/CMakeFiles/mexi_core.dir/features/consensus.cc.o" "gcc" "src/core/CMakeFiles/mexi_core.dir/features/consensus.cc.o.d"
  "/root/repo/src/core/features/consistency_features.cc" "src/core/CMakeFiles/mexi_core.dir/features/consistency_features.cc.o" "gcc" "src/core/CMakeFiles/mexi_core.dir/features/consistency_features.cc.o.d"
  "/root/repo/src/core/features/feature_vector.cc" "src/core/CMakeFiles/mexi_core.dir/features/feature_vector.cc.o" "gcc" "src/core/CMakeFiles/mexi_core.dir/features/feature_vector.cc.o.d"
  "/root/repo/src/core/features/sequential_features.cc" "src/core/CMakeFiles/mexi_core.dir/features/sequential_features.cc.o" "gcc" "src/core/CMakeFiles/mexi_core.dir/features/sequential_features.cc.o.d"
  "/root/repo/src/core/features/spatial_features.cc" "src/core/CMakeFiles/mexi_core.dir/features/spatial_features.cc.o" "gcc" "src/core/CMakeFiles/mexi_core.dir/features/spatial_features.cc.o.d"
  "/root/repo/src/core/mexi.cc" "src/core/CMakeFiles/mexi_core.dir/mexi.cc.o" "gcc" "src/core/CMakeFiles/mexi_core.dir/mexi.cc.o.d"
  "/root/repo/src/core/mexi_regressor.cc" "src/core/CMakeFiles/mexi_core.dir/mexi_regressor.cc.o" "gcc" "src/core/CMakeFiles/mexi_core.dir/mexi_regressor.cc.o.d"
  "/root/repo/src/core/submatcher.cc" "src/core/CMakeFiles/mexi_core.dir/submatcher.cc.o" "gcc" "src/core/CMakeFiles/mexi_core.dir/submatcher.cc.o.d"
  "/root/repo/src/core/utilization.cc" "src/core/CMakeFiles/mexi_core.dir/utilization.cc.o" "gcc" "src/core/CMakeFiles/mexi_core.dir/utilization.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/matching/CMakeFiles/mexi_matching.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ml/CMakeFiles/mexi_ml.dir/DependInfo.cmake"
  "/root/repo/build-review/src/stats/CMakeFiles/mexi_stats.dir/DependInfo.cmake"
  "/root/repo/build-review/src/parallel/CMakeFiles/mexi_parallel.dir/DependInfo.cmake"
  "/root/repo/build-review/src/schema/CMakeFiles/mexi_schema.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
