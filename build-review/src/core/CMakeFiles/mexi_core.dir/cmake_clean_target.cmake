file(REMOVE_RECURSE
  "libmexi_core.a"
)
