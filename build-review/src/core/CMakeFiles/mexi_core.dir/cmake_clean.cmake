file(REMOVE_RECURSE
  "CMakeFiles/mexi_core.dir/baselines.cc.o"
  "CMakeFiles/mexi_core.dir/baselines.cc.o.d"
  "CMakeFiles/mexi_core.dir/boosting.cc.o"
  "CMakeFiles/mexi_core.dir/boosting.cc.o.d"
  "CMakeFiles/mexi_core.dir/characterizer.cc.o"
  "CMakeFiles/mexi_core.dir/characterizer.cc.o.d"
  "CMakeFiles/mexi_core.dir/evaluation.cc.o"
  "CMakeFiles/mexi_core.dir/evaluation.cc.o.d"
  "CMakeFiles/mexi_core.dir/expert_model.cc.o"
  "CMakeFiles/mexi_core.dir/expert_model.cc.o.d"
  "CMakeFiles/mexi_core.dir/features/aggregated_features.cc.o"
  "CMakeFiles/mexi_core.dir/features/aggregated_features.cc.o.d"
  "CMakeFiles/mexi_core.dir/features/consensus.cc.o"
  "CMakeFiles/mexi_core.dir/features/consensus.cc.o.d"
  "CMakeFiles/mexi_core.dir/features/consistency_features.cc.o"
  "CMakeFiles/mexi_core.dir/features/consistency_features.cc.o.d"
  "CMakeFiles/mexi_core.dir/features/feature_vector.cc.o"
  "CMakeFiles/mexi_core.dir/features/feature_vector.cc.o.d"
  "CMakeFiles/mexi_core.dir/features/sequential_features.cc.o"
  "CMakeFiles/mexi_core.dir/features/sequential_features.cc.o.d"
  "CMakeFiles/mexi_core.dir/features/spatial_features.cc.o"
  "CMakeFiles/mexi_core.dir/features/spatial_features.cc.o.d"
  "CMakeFiles/mexi_core.dir/mexi.cc.o"
  "CMakeFiles/mexi_core.dir/mexi.cc.o.d"
  "CMakeFiles/mexi_core.dir/mexi_regressor.cc.o"
  "CMakeFiles/mexi_core.dir/mexi_regressor.cc.o.d"
  "CMakeFiles/mexi_core.dir/submatcher.cc.o"
  "CMakeFiles/mexi_core.dir/submatcher.cc.o.d"
  "CMakeFiles/mexi_core.dir/utilization.cc.o"
  "CMakeFiles/mexi_core.dir/utilization.cc.o.d"
  "libmexi_core.a"
  "libmexi_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mexi_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
