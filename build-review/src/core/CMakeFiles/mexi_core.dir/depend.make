# Empty dependencies file for mexi_core.
# This may be replaced when dependencies are built.
