
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/correlation.cc" "src/stats/CMakeFiles/mexi_stats.dir/correlation.cc.o" "gcc" "src/stats/CMakeFiles/mexi_stats.dir/correlation.cc.o.d"
  "/root/repo/src/stats/descriptive.cc" "src/stats/CMakeFiles/mexi_stats.dir/descriptive.cc.o" "gcc" "src/stats/CMakeFiles/mexi_stats.dir/descriptive.cc.o.d"
  "/root/repo/src/stats/histogram.cc" "src/stats/CMakeFiles/mexi_stats.dir/histogram.cc.o" "gcc" "src/stats/CMakeFiles/mexi_stats.dir/histogram.cc.o.d"
  "/root/repo/src/stats/hypothesis.cc" "src/stats/CMakeFiles/mexi_stats.dir/hypothesis.cc.o" "gcc" "src/stats/CMakeFiles/mexi_stats.dir/hypothesis.cc.o.d"
  "/root/repo/src/stats/pca.cc" "src/stats/CMakeFiles/mexi_stats.dir/pca.cc.o" "gcc" "src/stats/CMakeFiles/mexi_stats.dir/pca.cc.o.d"
  "/root/repo/src/stats/rng.cc" "src/stats/CMakeFiles/mexi_stats.dir/rng.cc.o" "gcc" "src/stats/CMakeFiles/mexi_stats.dir/rng.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
