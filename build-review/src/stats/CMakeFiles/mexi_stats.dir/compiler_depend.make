# Empty compiler generated dependencies file for mexi_stats.
# This may be replaced when dependencies are built.
