file(REMOVE_RECURSE
  "libmexi_stats.a"
)
