file(REMOVE_RECURSE
  "CMakeFiles/mexi_stats.dir/correlation.cc.o"
  "CMakeFiles/mexi_stats.dir/correlation.cc.o.d"
  "CMakeFiles/mexi_stats.dir/descriptive.cc.o"
  "CMakeFiles/mexi_stats.dir/descriptive.cc.o.d"
  "CMakeFiles/mexi_stats.dir/histogram.cc.o"
  "CMakeFiles/mexi_stats.dir/histogram.cc.o.d"
  "CMakeFiles/mexi_stats.dir/hypothesis.cc.o"
  "CMakeFiles/mexi_stats.dir/hypothesis.cc.o.d"
  "CMakeFiles/mexi_stats.dir/pca.cc.o"
  "CMakeFiles/mexi_stats.dir/pca.cc.o.d"
  "CMakeFiles/mexi_stats.dir/rng.cc.o"
  "CMakeFiles/mexi_stats.dir/rng.cc.o.d"
  "libmexi_stats.a"
  "libmexi_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mexi_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
