file(REMOVE_RECURSE
  "CMakeFiles/mexi_parallel.dir/parallel_for.cc.o"
  "CMakeFiles/mexi_parallel.dir/parallel_for.cc.o.d"
  "CMakeFiles/mexi_parallel.dir/thread_pool.cc.o"
  "CMakeFiles/mexi_parallel.dir/thread_pool.cc.o.d"
  "libmexi_parallel.a"
  "libmexi_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mexi_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
