file(REMOVE_RECURSE
  "libmexi_parallel.a"
)
