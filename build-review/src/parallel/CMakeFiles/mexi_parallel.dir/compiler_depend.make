# Empty compiler generated dependencies file for mexi_parallel.
# This may be replaced when dependencies are built.
