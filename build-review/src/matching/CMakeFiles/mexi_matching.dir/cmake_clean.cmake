file(REMOVE_RECURSE
  "CMakeFiles/mexi_matching.dir/decision_history.cc.o"
  "CMakeFiles/mexi_matching.dir/decision_history.cc.o.d"
  "CMakeFiles/mexi_matching.dir/io.cc.o"
  "CMakeFiles/mexi_matching.dir/io.cc.o.d"
  "CMakeFiles/mexi_matching.dir/match_matrix.cc.o"
  "CMakeFiles/mexi_matching.dir/match_matrix.cc.o.d"
  "CMakeFiles/mexi_matching.dir/movement.cc.o"
  "CMakeFiles/mexi_matching.dir/movement.cc.o.d"
  "CMakeFiles/mexi_matching.dir/predictors.cc.o"
  "CMakeFiles/mexi_matching.dir/predictors.cc.o.d"
  "CMakeFiles/mexi_matching.dir/similarity.cc.o"
  "CMakeFiles/mexi_matching.dir/similarity.cc.o.d"
  "libmexi_matching.a"
  "libmexi_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mexi_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
