# Empty dependencies file for mexi_matching.
# This may be replaced when dependencies are built.
