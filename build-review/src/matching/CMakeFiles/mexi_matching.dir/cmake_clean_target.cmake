file(REMOVE_RECURSE
  "libmexi_matching.a"
)
