
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/matching/decision_history.cc" "src/matching/CMakeFiles/mexi_matching.dir/decision_history.cc.o" "gcc" "src/matching/CMakeFiles/mexi_matching.dir/decision_history.cc.o.d"
  "/root/repo/src/matching/io.cc" "src/matching/CMakeFiles/mexi_matching.dir/io.cc.o" "gcc" "src/matching/CMakeFiles/mexi_matching.dir/io.cc.o.d"
  "/root/repo/src/matching/match_matrix.cc" "src/matching/CMakeFiles/mexi_matching.dir/match_matrix.cc.o" "gcc" "src/matching/CMakeFiles/mexi_matching.dir/match_matrix.cc.o.d"
  "/root/repo/src/matching/movement.cc" "src/matching/CMakeFiles/mexi_matching.dir/movement.cc.o" "gcc" "src/matching/CMakeFiles/mexi_matching.dir/movement.cc.o.d"
  "/root/repo/src/matching/predictors.cc" "src/matching/CMakeFiles/mexi_matching.dir/predictors.cc.o" "gcc" "src/matching/CMakeFiles/mexi_matching.dir/predictors.cc.o.d"
  "/root/repo/src/matching/similarity.cc" "src/matching/CMakeFiles/mexi_matching.dir/similarity.cc.o" "gcc" "src/matching/CMakeFiles/mexi_matching.dir/similarity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/schema/CMakeFiles/mexi_schema.dir/DependInfo.cmake"
  "/root/repo/build-review/src/stats/CMakeFiles/mexi_stats.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ml/CMakeFiles/mexi_ml.dir/DependInfo.cmake"
  "/root/repo/build-review/src/parallel/CMakeFiles/mexi_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
