file(REMOVE_RECURSE
  "libmexi_schema.a"
)
