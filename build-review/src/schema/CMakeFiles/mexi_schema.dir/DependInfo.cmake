
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/schema/generators.cc" "src/schema/CMakeFiles/mexi_schema.dir/generators.cc.o" "gcc" "src/schema/CMakeFiles/mexi_schema.dir/generators.cc.o.d"
  "/root/repo/src/schema/schema.cc" "src/schema/CMakeFiles/mexi_schema.dir/schema.cc.o" "gcc" "src/schema/CMakeFiles/mexi_schema.dir/schema.cc.o.d"
  "/root/repo/src/schema/tokenizer.cc" "src/schema/CMakeFiles/mexi_schema.dir/tokenizer.cc.o" "gcc" "src/schema/CMakeFiles/mexi_schema.dir/tokenizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/stats/CMakeFiles/mexi_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
