# Empty dependencies file for mexi_schema.
# This may be replaced when dependencies are built.
