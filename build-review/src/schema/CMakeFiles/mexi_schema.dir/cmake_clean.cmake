file(REMOVE_RECURSE
  "CMakeFiles/mexi_schema.dir/generators.cc.o"
  "CMakeFiles/mexi_schema.dir/generators.cc.o.d"
  "CMakeFiles/mexi_schema.dir/schema.cc.o"
  "CMakeFiles/mexi_schema.dir/schema.cc.o.d"
  "CMakeFiles/mexi_schema.dir/tokenizer.cc.o"
  "CMakeFiles/mexi_schema.dir/tokenizer.cc.o.d"
  "libmexi_schema.a"
  "libmexi_schema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mexi_schema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
