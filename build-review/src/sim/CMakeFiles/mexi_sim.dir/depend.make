# Empty dependencies file for mexi_sim.
# This may be replaced when dependencies are built.
