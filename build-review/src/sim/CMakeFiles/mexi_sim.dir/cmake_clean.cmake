file(REMOVE_RECURSE
  "CMakeFiles/mexi_sim.dir/matcher_sim.cc.o"
  "CMakeFiles/mexi_sim.dir/matcher_sim.cc.o.d"
  "CMakeFiles/mexi_sim.dir/profile.cc.o"
  "CMakeFiles/mexi_sim.dir/profile.cc.o.d"
  "CMakeFiles/mexi_sim.dir/study.cc.o"
  "CMakeFiles/mexi_sim.dir/study.cc.o.d"
  "libmexi_sim.a"
  "libmexi_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mexi_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
