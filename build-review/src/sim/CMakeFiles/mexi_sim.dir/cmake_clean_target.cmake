file(REMOVE_RECURSE
  "libmexi_sim.a"
)
