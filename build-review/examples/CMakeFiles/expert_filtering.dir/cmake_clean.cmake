file(REMOVE_RECURSE
  "CMakeFiles/expert_filtering.dir/expert_filtering.cpp.o"
  "CMakeFiles/expert_filtering.dir/expert_filtering.cpp.o.d"
  "expert_filtering"
  "expert_filtering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expert_filtering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
