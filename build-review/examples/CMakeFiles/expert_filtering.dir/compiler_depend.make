# Empty compiler generated dependencies file for expert_filtering.
# This may be replaced when dependencies are built.
