file(REMOVE_RECURSE
  "CMakeFiles/entity_resolution_transfer.dir/entity_resolution_transfer.cpp.o"
  "CMakeFiles/entity_resolution_transfer.dir/entity_resolution_transfer.cpp.o.d"
  "entity_resolution_transfer"
  "entity_resolution_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/entity_resolution_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
