# Empty compiler generated dependencies file for entity_resolution_transfer.
# This may be replaced when dependencies are built.
