
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/ontology_generalization.cpp" "examples/CMakeFiles/ontology_generalization.dir/ontology_generalization.cpp.o" "gcc" "examples/CMakeFiles/ontology_generalization.dir/ontology_generalization.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/mexi_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/mexi_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/matching/CMakeFiles/mexi_matching.dir/DependInfo.cmake"
  "/root/repo/build-review/src/schema/CMakeFiles/mexi_schema.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ml/CMakeFiles/mexi_ml.dir/DependInfo.cmake"
  "/root/repo/build-review/src/stats/CMakeFiles/mexi_stats.dir/DependInfo.cmake"
  "/root/repo/build-review/src/parallel/CMakeFiles/mexi_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
