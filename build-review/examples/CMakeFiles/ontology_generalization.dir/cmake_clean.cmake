file(REMOVE_RECURSE
  "CMakeFiles/ontology_generalization.dir/ontology_generalization.cpp.o"
  "CMakeFiles/ontology_generalization.dir/ontology_generalization.cpp.o.d"
  "ontology_generalization"
  "ontology_generalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ontology_generalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
