# Empty compiler generated dependencies file for ontology_generalization.
# This may be replaced when dependencies are built.
