# Empty dependencies file for archetypes.
# This may be replaced when dependencies are built.
