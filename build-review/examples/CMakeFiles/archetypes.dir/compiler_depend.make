# Empty compiler generated dependencies file for archetypes.
# This may be replaced when dependencies are built.
