file(REMOVE_RECURSE
  "CMakeFiles/archetypes.dir/archetypes.cpp.o"
  "CMakeFiles/archetypes.dir/archetypes.cpp.o.d"
  "archetypes"
  "archetypes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archetypes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
