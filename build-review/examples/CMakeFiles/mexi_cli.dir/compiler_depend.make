# Empty compiler generated dependencies file for mexi_cli.
# This may be replaced when dependencies are built.
