file(REMOVE_RECURSE
  "CMakeFiles/mexi_cli.dir/mexi_cli.cpp.o"
  "CMakeFiles/mexi_cli.dir/mexi_cli.cpp.o.d"
  "mexi_cli"
  "mexi_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mexi_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
