// Design-choice ablation: out-of-fold vs in-sample late fusion of the
// network label coefficients (DESIGN.md §5). In-sample fusion lets the
// final classifiers see coefficients that mirror the training labels,
// over-trusting the nets; OOF stacking removes the leak.

#include <cstdio>

#include "bench/harness.h"

int main() {
  using namespace mexi;
  const auto po = bench::BuildPoInput();

  std::vector<CharacterizerFactory> methods;
  methods.push_back([] {
    MexiConfig config = Mexi50Config();
    config.name = "MExI_50 (OOF)";
    return std::make_unique<Mexi>(config);
  });
  methods.push_back([] {
    MexiConfig config = Mexi50Config();
    config.name = "MExI_50 (in-sample)";
    config.oof_fusion = false;
    return std::make_unique<Mexi>(config);
  });

  ExperimentConfig config;
  config.folds = 5;
  config.seed = 782;
  const auto results = RunKFoldExperiment(po->input, methods, config);
  bench::PrintAccuracyTable(
      "Ablation: out-of-fold vs in-sample late fusion (PO, MExI_50)\n"
      "(expected: OOF stacking outperforms the leaky in-sample fusion)",
      results);
  return 0;
}
