// Regenerates Figure 10: matching performance of the experts each method
// identifies, against the unfiltered population. A matcher is "selected"
// when predicted expert in all four characteristics; performance is the
// true final P / R / Res / |Cal| of the selected group (variance shown
// as the paper's error bars).

#include <cstdio>

#include "bench/harness.h"
#include "core/utilization.h"

namespace {

void PrintUtilization(const char* title,
                      const std::vector<mexi::UtilizationResult>& results) {
  std::printf("%s\n", title);
  std::printf("%-13s %5s | %-12s %-12s %-12s %-12s\n", "method", "n", "P",
              "R", "Res", "|Cal| (low=good)");
  for (const auto& r : results) {
    const auto& g = r.performance;
    std::printf(
        "%-13s %5zu | %.2f (±%.2f) %.2f (±%.2f) %.2f (±%.2f) %.2f "
        "(±%.2f)\n",
        r.method.c_str(), g.count, g.precision, g.var_precision, g.recall,
        g.var_recall, g.resolution, g.var_resolution, g.calibration,
        g.var_calibration);
  }
}

}  // namespace

int main() {
  using namespace mexi;
  const auto po = bench::BuildPoInput();

  // Fig. 10 compares MExI against the crowdsourcing quality baselines.
  std::vector<CharacterizerFactory> methods;
  methods.push_back([] { return std::make_unique<ConfCharacterizer>(); });
  methods.push_back([] { return std::make_unique<QualTestCharacterizer>(); });
  methods.push_back(
      [] { return std::make_unique<SelfAssessCharacterizer>(); });
  methods.push_back([] {
    // Expert *selection* runs MExI at the balanced operating point
    // (rare-label detection), unlike the Table II accuracy protocol.
    MexiConfig config = Mexi50Config();
    config.balanced_selection = true;
    return std::make_unique<Mexi>(config);
  });

  ExperimentConfig config;
  config.folds = 5;
  config.seed = 780;
  const auto results = RunUtilizationExperiment(po->input, methods, config);

  PrintUtilization(
      "Figure 10: performance of identified experts vs no_filter\n"
      "(paper: MExI lifts P .55->.78, R .29->.55, Res .41->.73 and\n"
      " cuts |Cal| .35->.11 over no_filter)",
      results);
  return 0;
}
