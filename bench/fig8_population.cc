// Regenerates Figure 8: average performance of matchers by measure —
// mean precision, recall, |resolution| and |calibration| over the whole
// PO population, plus the positively-correlated and under-confident
// sub-populations the paper highlights.

#include <cmath>
#include <cstdio>

#include "bench/harness.h"
#include "stats/descriptive.h"

int main() {
  using namespace mexi;
  const auto po = bench::BuildPoInput();
  const auto measures = ComputeAllMeasures(po->input);

  std::vector<double> p, r, abs_res, abs_cal;
  std::vector<double> pos_res, under_conf_abs_cal;
  for (const auto& m : measures) {
    p.push_back(m.precision);
    r.push_back(m.recall);
    abs_res.push_back(std::fabs(m.resolution));
    abs_cal.push_back(std::fabs(m.calibration));
    if (m.resolution > 0.0) pos_res.push_back(m.resolution);
    if (m.calibration < 0.0) {
      under_conf_abs_cal.push_back(-m.calibration);
    }
  }

  std::printf("Figure 8: average performance of matchers by measure\n");
  std::printf("(paper: P=.55 R=.33 |Res|=.37 |Cal|=.33; positive-Res\n");
  std::printf(" mean=.61, under-confident |Cal|=.11)\n\n");
  std::printf("%-28s %6s\n", "measure", "mean");
  std::printf("%-28s %6.3f\n", "Precision (P)", stats::Mean(p));
  std::printf("%-28s %6.3f\n", "Recall (R)", stats::Mean(r));
  std::printf("%-28s %6.3f\n", "|Resolution| (Res)", stats::Mean(abs_res));
  std::printf("%-28s %6.3f\n", "|Calibration| (Cal)", stats::Mean(abs_cal));
  std::printf("\nsub-populations:\n");
  std::printf("%-28s %6.3f  (n=%zu of %zu)\n",
              "positively correlated Res", stats::Mean(pos_res),
              pos_res.size(), measures.size());
  std::printf("%-28s %6.3f  (n=%zu of %zu)\n",
              "under-confident |Cal|", stats::Mean(under_conf_abs_cal),
              under_conf_abs_cal.size(), measures.size());
  return 0;
}
