#!/usr/bin/env python3
"""Gate perf regressions against the committed BENCH_perf.json.

Usage:
    compare_bench.py BASELINE.json FRESH.json [--tolerance 0.25]

Compares per-benchmark cpu_time of a fresh perf_microbench run against
the committed baseline and exits non-zero if any shared benchmark got
more than ``--tolerance`` slower. The gate is only meaningful when both
runs measured the same thing, so it SKIPS (exit 0, loud message) when
the machine shape or build flavor differs:

  * ``num_cpus``    -- a different core count shifts every timing;
  * ``mexi_build``  -- debug vs release is not a perf comparison;
  * ``mexi_simd``   -- vector width changes timings (never results; see
                       MEXI_WIDE_SIMD in the top-level CMakeLists).

Benchmarks present on only one side are reported but never fail the
gate -- adding or retiring a benchmark should not break CI. Speedups
are reported too so a stale baseline is visible. Stdlib only.
"""

import argparse
import json
import sys

# Context keys that must match for timings to be comparable.
GATE_KEYS = ("num_cpus", "mexi_build", "mexi_simd")


def load_benchmarks(path):
    with open(path) as f:
        doc = json.load(f)
    times = {}
    for b in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repetitions).
        if b.get("run_type") == "aggregate":
            continue
        times[b["name"]] = (float(b["cpu_time"]), b.get("time_unit", "ns"))
    return doc.get("context", {}), times


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed BENCH_perf.json")
    parser.add_argument("fresh", help="freshly recorded benchmark JSON")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="max allowed slowdown fraction (default 0.25 = 25%%)",
    )
    args = parser.parse_args()

    base_ctx, base = load_benchmarks(args.baseline)
    fresh_ctx, fresh = load_benchmarks(args.fresh)

    mismatched = [
        k
        for k in GATE_KEYS
        if base_ctx.get(k) != fresh_ctx.get(k)
    ]
    if mismatched:
        for k in mismatched:
            print(
                "compare_bench: context %r differs (baseline=%r, fresh=%r)"
                % (k, base_ctx.get(k), fresh_ctx.get(k))
            )
        print("compare_bench: SKIPPING gate -- timings are not comparable.")
        return 0

    only_base = sorted(set(base) - set(fresh))
    only_fresh = sorted(set(fresh) - set(base))
    for name in only_base:
        print("compare_bench: %-28s retired (baseline only)" % name)
    for name in only_fresh:
        print("compare_bench: %-28s new (no baseline yet)" % name)

    regressions = []
    for name in sorted(set(base) & set(fresh)):
        old, old_unit = base[name]
        new, new_unit = fresh[name]
        if old_unit != new_unit or old <= 0.0:
            print(
                "compare_bench: %-28s units changed (%s -> %s), skipping"
                % (name, old_unit, new_unit)
            )
            continue
        ratio = new / old
        verdict = "ok"
        if ratio > 1.0 + args.tolerance:
            verdict = "REGRESSION"
            regressions.append(name)
        elif ratio < 1.0 - args.tolerance:
            verdict = "faster (consider re-recording the baseline)"
        print(
            "compare_bench: %-28s %10.3f -> %10.3f %-2s  %+6.1f%%  %s"
            % (name, old, new, old_unit, (ratio - 1.0) * 100.0, verdict)
        )

    if regressions:
        print(
            "compare_bench: FAIL -- %d benchmark(s) regressed more than "
            "%.0f%%: %s"
            % (len(regressions), args.tolerance * 100.0, ", ".join(regressions))
        )
        return 1
    print("compare_bench: PASS (tolerance %.0f%%)" % (args.tolerance * 100.0))
    return 0


if __name__ == "__main__":
    sys.exit(main())
