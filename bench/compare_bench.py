#!/usr/bin/env python3
"""Gate perf regressions against a committed BENCH_perf*.json baseline.

Usage:
    compare_bench.py BASELINE.json [MORE_BASELINES.json ...] FRESH.json
                     [--tolerance 0.25]

The last positional argument is the fresh perf_microbench run; every
other positional is a candidate baseline. The gate selects the first
baseline whose machine context matches the fresh run on all of:

  * ``num_cpus``    -- a different core count shifts every timing;
  * ``mexi_build``  -- debug vs release is not a perf comparison;
  * ``mexi_simd``   -- vector width changes timings (never results; see
                       MEXI_WIDE_SIMD in the top-level CMakeLists).

This is how one checkout carries both the 1-core dev-box baseline
(BENCH_perf.json) and the multi-core CI-runner baseline
(BENCH_perf.ci.json): each machine gates against its own numbers. When
no baseline matches, the gate SKIPS (exit 0, loud message) rather than
comparing apples to oranges.

Per-benchmark cpu_time more than ``--tolerance`` slower than the
selected baseline fails the gate. A baseline may embed its own
tolerance as context key ``mexi_gate_tolerance`` (a fraction, e.g.
0.75); that overrides the CLI flag -- provisional baselines recorded on
a different machine shape carry a loose embedded tolerance until they
are re-recorded natively (see the bench_perf_ci target).

Benchmarks present on only one side are reported but never fail the
gate -- adding or retiring a benchmark should not break CI. Fresh-only
benchmarks are additionally summarized as an explicit ``unGated`` list
so a new bench cannot silently dodge the gate: the fix is always to
re-record the baseline. Speedups are reported too so a stale baseline
is visible. Stdlib only.

Besides the per-benchmark slowdown gate, RATIO_GATES enforces
throughput ratios *within* the fresh run (single-trace vs batched arms
of the same benchmark), so the batched-inference engine's measured
advantage cannot regress even when both arms drift together with
machine noise.
"""

import argparse
import json
import sys

# Context keys that must match for timings to be comparable.
GATE_KEYS = ("num_cpus", "mexi_build", "mexi_simd")

# Throughput-ratio gates evaluated on the fresh run alone:
# cpu_time(numerator) / cpu_time(denominator) must be >= floor. These
# lock in the batched engine's single-core advantage over the per-trace
# path. Calm-window measurements on the 1-core dev box put the full
# serve pipeline at ~1.7-1.8x and the isolated LSTM engine at ~1.9x,
# but contention waves on a shared box squeeze the ratio (the batched
# arm is compute-bound and loses more to a CPU-stealing neighbor than
# the latency-bound per-trace arm; observed dips to ~1.4x/~1.55x), so
# the floors carry that noise margin. A gate is skipped (loudly) when
# either side is missing from the fresh run.
RATIO_GATES = (
    ("BM_CharacterizeThroughput/1", "BM_CharacterizeThroughput/64", 1.30),
    ("BM_LstmPredictBatch/1", "BM_LstmPredictBatch/64", 1.40),
    # Population sweep end to end: the /1-vs-/64 arms differ only in
    # MexiConfig::batch_size, so the ratio checks the sweep driver
    # actually routes shards through the batched engine. Simulation and
    # measure extraction ride along identically in both arms and dilute
    # the serve-path ratio: calm-window measurements on the 1-core dev
    # box put it at ~1.5x; the floor leaves the same contention margin
    # as the characterize gate above.
    ("BM_SweepThroughput/1", "BM_SweepThroughput/64", 1.15),
    # Streaming characterization: re-running batch Characterize on every
    # prefix replays Sum(k)=T(T+1)/2 LSTM steps where the stream's
    # carried state pays T, so at T=100 the per-decision estimates must
    # come >= 10x cheaper from the stream than from reruns. Calm-window
    # measurements on the 1-core dev box put the full-pipeline ratio at
    # ~17x; the floor leaves room for contention waves squeezing the
    # compute-bound rerun arm.
    ("BM_StreamRerunCharacterize", "BM_StreamCharacterize", 10.0),
)


def load_benchmarks(path):
    with open(path) as f:
        doc = json.load(f)
    times = {}
    for b in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repetitions).
        if b.get("run_type") == "aggregate":
            continue
        times[b["name"]] = (float(b["cpu_time"]), b.get("time_unit", "ns"))
    return doc.get("context", {}), times


def select_baseline(baseline_paths, fresh_ctx):
    """First baseline matching the fresh run on every GATE_KEY, or None."""
    for path in baseline_paths:
        ctx, times = load_benchmarks(path)
        mismatched = [k for k in GATE_KEYS if ctx.get(k) != fresh_ctx.get(k)]
        if not mismatched:
            return path, ctx, times
        for k in mismatched:
            print(
                "compare_bench: %s: context %r differs "
                "(baseline=%r, fresh=%r)"
                % (path, k, ctx.get(k), fresh_ctx.get(k))
            )
    return None


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "paths",
        nargs="+",
        metavar="JSON",
        help="candidate baseline(s) followed by the fresh benchmark JSON",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="max allowed slowdown fraction (default 0.25 = 25%%); a "
        "baseline's mexi_gate_tolerance context key overrides this",
    )
    args = parser.parse_args()
    if len(args.paths) < 2:
        parser.error("need at least one baseline and the fresh JSON")
    baseline_paths, fresh_path = args.paths[:-1], args.paths[-1]

    fresh_ctx, fresh = load_benchmarks(fresh_path)
    selected = select_baseline(baseline_paths, fresh_ctx)
    if selected is None:
        print(
            "compare_bench: SKIPPING gate -- no baseline matches this "
            "machine context; record one with the bench_perf (or "
            "bench_perf_ci) target."
        )
        return 0
    baseline_path, base_ctx, base = selected
    print("compare_bench: gating against %s" % baseline_path)

    tolerance = args.tolerance
    embedded = base_ctx.get("mexi_gate_tolerance")
    if embedded is not None:
        tolerance = float(embedded)
        print(
            "compare_bench: baseline embeds tolerance %.0f%%"
            % (tolerance * 100.0)
        )

    only_base = sorted(set(base) - set(fresh))
    only_fresh = sorted(set(fresh) - set(base))
    for name in only_base:
        print("compare_bench: %-28s retired (baseline only)" % name)
    if only_fresh:
        print(
            "compare_bench: unGated (%d new benchmark(s) absent from the "
            "baseline, NOT regression-gated): %s -- re-record the "
            "baseline (bench_perf target) to gate them"
            % (len(only_fresh), ", ".join(only_fresh))
        )

    regressions = []
    for name in sorted(set(base) & set(fresh)):
        old, old_unit = base[name]
        new, new_unit = fresh[name]
        if old_unit != new_unit or old <= 0.0:
            print(
                "compare_bench: %-28s units changed (%s -> %s), skipping"
                % (name, old_unit, new_unit)
            )
            continue
        ratio = new / old
        verdict = "ok"
        if ratio > 1.0 + tolerance:
            verdict = "REGRESSION"
            regressions.append(name)
        elif ratio < 1.0 - tolerance:
            verdict = "faster (consider re-recording the baseline)"
        print(
            "compare_bench: %-28s %10.3f -> %10.3f %-2s  %+6.1f%%  %s"
            % (name, old, new, old_unit, (ratio - 1.0) * 100.0, verdict)
        )

    ratio_failures = []
    for num_name, den_name, floor in RATIO_GATES:
        if num_name not in fresh or den_name not in fresh:
            print(
                "compare_bench: ratio gate %s / %s skipped (missing from "
                "the fresh run)" % (num_name, den_name)
            )
            continue
        num, num_unit = fresh[num_name]
        den, den_unit = fresh[den_name]
        if num_unit != den_unit or den <= 0.0:
            print(
                "compare_bench: ratio gate %s / %s skipped (units %s vs "
                "%s)" % (num_name, den_name, num_unit, den_unit)
            )
            continue
        ratio = num / den
        verdict = "ok" if ratio >= floor else "RATIO REGRESSION"
        if ratio < floor:
            ratio_failures.append("%s/%s" % (num_name, den_name))
        print(
            "compare_bench: ratio %s / %s = %.2fx (floor %.2fx)  %s"
            % (num_name, den_name, ratio, floor, verdict)
        )

    if regressions or ratio_failures:
        if regressions:
            print(
                "compare_bench: FAIL -- %d benchmark(s) regressed more "
                "than %.0f%%: %s"
                % (
                    len(regressions),
                    tolerance * 100.0,
                    ", ".join(regressions),
                )
            )
        if ratio_failures:
            print(
                "compare_bench: FAIL -- %d throughput ratio(s) under "
                "floor: %s" % (len(ratio_failures), ", ".join(ratio_failures))
            )
        return 1
    print("compare_bench: PASS (tolerance %.0f%%)" % (tolerance * 100.0))
    return 0


if __name__ == "__main__":
    sys.exit(main())
