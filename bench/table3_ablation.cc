// Regenerates Table III: feature-set ablation of MExI_50 over the PO
// task. "include" rows train on one feature set alone; "exclude" rows
// drop one feature set at a time. The match-consistency features travel
// with Phi_Beh (they are aggregated correlation features computed from
// H), mirroring the paper's 5-set breakdown.

#include <cstdio>
#include <string>

#include "bench/harness.h"

namespace {

using mexi::Mexi50Config;
using mexi::MexiConfig;

MexiConfig OnlySet(const std::string& set) {
  MexiConfig config = Mexi50Config();
  config.name = "incl " + set;
  config.use_lrsm = set == "LRSM";
  config.use_mou = set == "Mou";
  config.use_beh = set == "Beh";
  config.use_con = set == "Beh";
  config.use_seq = set == "Seq";
  config.use_spa = set == "Spa";
  return config;
}

MexiConfig WithoutSet(const std::string& set) {
  MexiConfig config = Mexi50Config();
  config.name = "excl " + set;
  config.use_lrsm = set != "LRSM";
  config.use_mou = set != "Mou";
  config.use_beh = set != "Beh";
  config.use_con = set != "Beh";
  config.use_seq = set != "Seq";
  config.use_spa = set != "Spa";
  return config;
}

}  // namespace

int main() {
  using namespace mexi;
  const auto po = bench::BuildPoInput();

  std::vector<CharacterizerFactory> methods;
  methods.push_back([] { return std::make_unique<Mexi>(Mexi50Config()); });
  const char* kSets[] = {"LRSM", "Mou", "Beh", "Seq", "Spa"};
  for (const char* set : kSets) {
    methods.push_back(
        [set] { return std::make_unique<Mexi>(OnlySet(set)); });
  }
  for (const char* set : kSets) {
    methods.push_back(
        [set] { return std::make_unique<Mexi>(WithoutSet(set)); });
  }

  ExperimentConfig config;
  config.folds = 5;
  config.seed = 779;
  const auto results = RunKFoldExperiment(po->input, methods, config);

  bench::PrintAccuracyTable(
      "Table III: MExI_50 feature-set ablation (PO)\n"
      "(paper shape: Phi_LRSM matters most for A_P/A_R; mouse and\n"
      " sequential features dominate the cognitive measures)",
      results);
  return 0;
}
