// Regenerates Figure 11: early identification — methods see only each
// test matcher's first half-median-many decisions when selecting
// experts, yet selected groups are scored on their full performance.

#include <cstdio>

#include "bench/harness.h"
#include "core/utilization.h"

int main() {
  using namespace mexi;
  const auto po = bench::BuildPoInput();

  std::vector<CharacterizerFactory> methods;
  methods.push_back([] { return std::make_unique<ConfCharacterizer>(); });
  methods.push_back([] { return std::make_unique<QualTestCharacterizer>(); });
  methods.push_back(
      [] { return std::make_unique<SelfAssessCharacterizer>(); });
  methods.push_back([] {
    // Expert *selection* runs MExI at the balanced operating point
    // (rare-label detection), unlike the Table II accuracy protocol.
    MexiConfig config = Mexi50Config();
    config.balanced_selection = true;
    return std::make_unique<Mexi>(config);
  });

  ExperimentConfig config;
  config.folds = 5;
  config.seed = 781;
  const auto results =
      RunEarlyIdentificationExperiment(po->input, methods, config);

  std::printf(
      "Figure 11: early identification (first half of the median number\n"
      "of decisions), selected groups scored on FULL performance\n"
      "(paper: early experts slightly below Fig. 10 but still beat all\n"
      " baselines)\n");
  std::printf("%-13s %5s | %-12s %-12s %-12s %-12s\n", "method", "n", "P",
              "R", "Res", "|Cal| (low=good)");
  for (const auto& r : results) {
    const auto& g = r.performance;
    std::printf(
        "%-13s %5zu | %.2f (±%.2f) %.2f (±%.2f) %.2f (±%.2f) %.2f "
        "(±%.2f)\n",
        r.method.c_str(), g.count, g.precision, g.var_precision, g.recall,
        g.var_recall, g.resolution, g.var_resolution, g.calibration,
        g.var_calibration);
  }
  return 0;
}
