// Regenerates Table IV: the top-2 most informative features of every
// feature set for every expertise characteristic. The paper uses SHAP;
// this reproduction substitutes model-agnostic permutation importance
// (see DESIGN.md §1) over per-set random forests evaluated on held-out
// matchers.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "ml/feature_importance.h"
#include "ml/random_forest.h"

int main() {
  using namespace mexi;
  const auto po = bench::BuildPoInput();

  // Labels from population thresholds.
  const auto measures = ComputeAllMeasures(po->input);
  const ExpertThresholds thresholds = FitThresholds(measures);
  const auto labels = LabelsFromMeasures(measures, thresholds);

  // Train/holdout split (2:1) of the matchers.
  const std::size_t n = po->input.matchers.size();
  std::vector<MatcherView> train_views, test_views;
  std::vector<ExpertLabel> train_labels, test_labels;
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 3 == 2) {
      test_views.push_back(po->input.matchers[i]);
      test_labels.push_back(labels[i]);
    } else {
      train_views.push_back(po->input.matchers[i]);
      train_labels.push_back(labels[i]);
    }
  }

  // A full MExI_50 provides the fused feature encoding (including the
  // trained network coefficients).
  Mexi mexi(Mexi50Config());
  mexi.Fit(train_views, train_labels, po->input.context);

  auto extract = [&](const MatcherView& view) {
    return mexi.ExtractFeatures(*view.history, *view.movement,
                                view.source_size, view.target_size);
  };
  std::vector<FeatureVector> train_phi, test_phi;
  for (const auto& v : train_views) train_phi.push_back(extract(v));
  for (const auto& v : test_views) test_phi.push_back(extract(v));
  const std::vector<std::string> all_names = train_phi[0].names();

  const std::map<std::string, std::string> kSetPrefix = {
      {"Phi_LRSM", "lrsm."}, {"Phi_Mou", "mou."}, {"Phi_Beh", "beh."},
      {"Phi_Con", "con."},   {"Phi_Seq", "seq."}, {"Phi_Spa", "spa."}};

  std::printf(
      "Table IV: top-2 informative features per feature set and\n"
      "characteristic (permutation importance; SHAP substitute)\n\n");
  std::printf("%-9s | %-11s | %-28s %-28s\n", "set", "label", "top-1",
              "top-2");

  stats::Rng rng(4242);
  for (const auto& [set_name, prefix] : kSetPrefix) {
    // Column subset of this feature set.
    std::vector<std::size_t> columns;
    std::vector<std::string> column_names;
    for (std::size_t f = 0; f < all_names.size(); ++f) {
      if (all_names[f].rfind(prefix, 0) == 0) {
        columns.push_back(f);
        column_names.push_back(all_names[f]);
      }
    }
    if (columns.empty()) continue;

    for (std::size_t c = 0; c < CharacteristicNames().size(); ++c) {
      ml::Dataset train, test;
      train.feature_names = column_names;
      for (std::size_t i = 0; i < train_phi.size(); ++i) {
        std::vector<double> row;
        for (std::size_t f : columns) row.push_back(train_phi[i].values()[f]);
        train.Add(row, train_labels[i].ToVector()[c]);
      }
      for (std::size_t i = 0; i < test_phi.size(); ++i) {
        std::vector<double> row;
        for (std::size_t f : columns) row.push_back(test_phi[i].values()[f]);
        test.Add(row, test_labels[i].ToVector()[c]);
      }
      ml::RandomForest model;
      model.Fit(train);
      const auto ranked =
          ml::PermutationImportance(model, test, column_names, 5, rng);
      std::printf("%-9s | %-11s | %-28s %-28s\n", set_name.c_str(),
                  CharacteristicNames()[c].c_str(),
                  ranked.empty() ? "-" : ranked[0].name.c_str(),
                  ranked.size() > 1 ? ranked[1].name.c_str() : "-");
    }
  }
  return 0;
}
