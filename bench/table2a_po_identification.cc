// Regenerates Table IIa: expert-identification accuracy on the PO task.
// 5-fold protocol over the 106 simulated matchers; MExI_∅ / MExI_50 /
// MExI_70 against the seven baselines; bootstrap significance (the
// asterisks) against the strongest learned baseline, LRSM.

#include <cstdio>

#include "bench/harness.h"

int main() {
  using namespace mexi;
  const auto po = bench::BuildPoInput();

  ExperimentConfig config;
  config.folds = 5;
  config.bootstrap_replicates = 2000;
  config.seed = 777;

  auto results =
      RunKFoldExperiment(po->input, bench::TableTwoMethods(), config);
  MarkSignificance(results, "LRSM", config);

  bench::PrintAccuracyTable(
      "Table IIa: MExI accuracy vs baselines, schema matching (PO)\n"
      "('*' = significant improvement over LRSM, bootstrap p < .05)\n"
      "(paper shape: MExI_50 > MExI_70 > MExI_0 > LRSM/BEH > simple)",
      results);
  return 0;
}
