#ifndef MEXI_BENCH_HARNESS_H_
#define MEXI_BENCH_HARNESS_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/baselines.h"
#include "core/evaluation.h"
#include "core/mexi.h"
#include "sim/study.h"
#include "stats/rng.h"

namespace mexi::bench {

/// A simulated study bundled with the evaluation views into it (owning).
struct StudyInput {
  sim::Study study;
  EvaluationInput input;

  explicit StudyInput(sim::Study s) : study(std::move(s)) {
    input.reference = &study.reference;
    input.context.source_size = study.task.source.size();
    input.context.target_size = study.task.target.size();
    input.context.warmup_source_size = study.warmup_task.source.size();
    input.context.warmup_target_size = study.warmup_task.target.size();
    input.context.warmup_reference = &study.warmup_reference;
    for (auto& matcher : study.matchers) {
      MatcherView view;
      view.history = &matcher.history;
      view.movement = &matcher.movement;
      view.warmup_history = &matcher.warmup_history;
      view.source_size = study.task.source.size();
      view.target_size = study.task.target.size();
      input.matchers.push_back(view);
    }
  }

  StudyInput(const StudyInput&) = delete;
  StudyInput& operator=(const StudyInput&) = delete;
};

/// The paper's populations: 106 PO matchers / 34 OAEI matchers.
inline std::unique_ptr<StudyInput> BuildPoInput(std::uint64_t seed = 45) {
  sim::StudyConfig config;
  config.num_matchers = 106;
  config.seed = seed;
  return std::make_unique<StudyInput>(sim::BuildPurchaseOrderStudy(config));
}

inline std::unique_ptr<StudyInput> BuildOaeiInput(std::uint64_t seed = 46) {
  sim::StudyConfig config;
  config.num_matchers = 34;
  config.seed = seed;
  return std::make_unique<StudyInput>(sim::BuildOaeiStudy(config));
}

/// The ten methods of Table II in paper order: 7 baselines + 3 MExI
/// variants.
inline std::vector<CharacterizerFactory> TableTwoMethods(
    std::uint64_t seed = 5) {
  // Stochastic methods get stable sub-streams of `seed`; the factories
  // are called once per CV fold (possibly concurrently), so they must
  // stay pure — each call builds a fresh characterizer from a fixed
  // sub-seed.
  const stats::Rng seeder(seed);
  std::vector<CharacterizerFactory> methods;
  methods.push_back([s = seeder.SubSeed(1)] {
    return std::make_unique<RandCharacterizer>(s);
  });
  methods.push_back([s = seeder.SubSeed(2)] {
    return std::make_unique<RandFreqCharacterizer>(s);
  });
  methods.push_back([] { return std::make_unique<ConfCharacterizer>(); });
  methods.push_back([] { return std::make_unique<QualTestCharacterizer>(); });
  methods.push_back(
      [] { return std::make_unique<SelfAssessCharacterizer>(); });
  methods.push_back([s = seeder.SubSeed(3)] { return MakeLrsmBaseline(s); });
  methods.push_back([s = seeder.SubSeed(4)] { return MakeBehBaseline(s); });
  methods.push_back(
      [] { return std::make_unique<Mexi>(MexiEmptyConfig()); });
  methods.push_back([] { return std::make_unique<Mexi>(Mexi50Config()); });
  methods.push_back([] { return std::make_unique<Mexi>(Mexi70Config()); });
  return methods;
}

/// Prints a Table II-style accuracy table with significance stars.
inline void PrintAccuracyTable(const std::string& title,
                               const std::vector<MethodResult>& results) {
  std::printf("%s\n", title.c_str());
  std::printf("%-13s %-6s %-6s %-7s %-7s %-6s\n", "Method", "A_P", "A_R",
              "A_Res", "A_Cal", "A_ML");
  for (const auto& r : results) {
    auto cell = [&](double value, bool star) {
      static char buffer[16];
      std::snprintf(buffer, sizeof(buffer), "%.2f%s", value,
                    star ? "*" : " ");
      return std::string(buffer);
    };
    std::printf("%-13s %-6s %-6s %-7s %-7s %-6s\n", r.method.c_str(),
                cell(r.a_c[0], r.significant[0]).c_str(),
                cell(r.a_c[1], r.significant[1]).c_str(),
                cell(r.a_c[2], r.significant[2]).c_str(),
                cell(r.a_c[3], r.significant[3]).c_str(),
                cell(r.a_ml, r.significant[4]).c_str());
  }
}

}  // namespace mexi::bench

#endif  // MEXI_BENCH_HARNESS_H_
