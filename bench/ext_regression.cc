// Extension experiment: expertise-*level* estimation — the regression
// repositioning of Problem 1 the paper sketches in Section III. Train
// MexiRegressor on 5 folds over the PO population and report held-out
// MAE / RMSE per measure against a predict-the-train-mean baseline.

#include <cstdio>

#include "bench/harness.h"
#include "core/mexi_regressor.h"
#include "ml/regression.h"

int main() {
  using namespace mexi;
  const auto po = bench::BuildPoInput();
  const auto& input = po->input;
  const auto measures = ComputeAllMeasures(input);

  stats::Rng rng(991);
  ml::KFold folds(input.matchers.size(), 5, rng);

  const char* kMeasureNames[] = {"precision", "recall", "resolution",
                                 "calibration"};
  std::vector<double> truth[4], predicted[4], baseline[4];

  for (std::size_t f = 0; f < folds.num_folds(); ++f) {
    std::vector<MatcherView> train_views;
    std::vector<ExpertMeasures> train_measures;
    for (std::size_t idx : folds.TrainIndices(f)) {
      train_views.push_back(input.matchers[idx]);
      train_measures.push_back(measures[idx]);
    }
    MexiRegressor regressor;
    regressor.Fit(train_views, train_measures, input.context);

    // Train means as the naive baseline.
    double means[4] = {0.0, 0.0, 0.0, 0.0};
    for (const auto& m : train_measures) {
      means[0] += m.precision;
      means[1] += m.recall;
      means[2] += m.resolution;
      means[3] += m.calibration;
    }
    for (double& m : means) m /= static_cast<double>(train_measures.size());

    for (std::size_t idx : folds.TestIndices(f)) {
      const ExpertMeasures estimated =
          regressor.Estimate(input.matchers[idx]);
      const double true_values[4] = {
          measures[idx].precision, measures[idx].recall,
          measures[idx].resolution, measures[idx].calibration};
      const double est_values[4] = {estimated.precision, estimated.recall,
                                    estimated.resolution,
                                    estimated.calibration};
      for (int m = 0; m < 4; ++m) {
        truth[m].push_back(true_values[m]);
        predicted[m].push_back(est_values[m]);
        baseline[m].push_back(means[m]);
      }
    }
  }

  std::printf(
      "Expertise-level regression (extension): held-out estimation of\n"
      "the four continuous measures, MexiRegressor vs train-mean\n\n");
  std::printf("%-12s %10s %10s | %10s %10s\n", "measure", "MAE", "RMSE",
              "base MAE", "base RMSE");
  for (int m = 0; m < 4; ++m) {
    std::printf("%-12s %10.3f %10.3f | %10.3f %10.3f\n", kMeasureNames[m],
                ml::MeanAbsoluteError(truth[m], predicted[m]),
                ml::RootMeanSquaredError(truth[m], predicted[m]),
                ml::MeanAbsoluteError(truth[m], baseline[m]),
                ml::RootMeanSquaredError(truth[m], baseline[m]));
  }
  std::printf(
      "\nExpected shape: the regressor beats the mean baseline on every\n"
      "measure, most clearly on precision and recall.\n");
  return 0;
}
