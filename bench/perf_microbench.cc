// Google-benchmark micro-benchmarks of the performance-critical paths:
// similarity-matrix construction, matching predictors, classifier
// training, the neural building blocks and the behavioral simulator.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "bench/harness.h"
#include "core/features/aggregated_features.h"
#include "core/mexi.h"
#include "core/streaming.h"
#include "core/sweep.h"
#include "matching/predictors.h"
#include "matching/similarity.h"
#include "ml/matrix.h"
#include "ml/nn/cnn.h"
#include "ml/nn/lstm.h"
#include "ml/random_forest.h"
#include "ml/vmath/vmath.h"
#include "obs/obs.h"
#include "schema/generators.h"
#include "sim/matcher_sim.h"
#include "sim/study.h"

namespace {

using namespace mexi;

void BM_SimilarityMatrix(benchmark::State& state) {
  const auto pair = schema::GeneratePurchaseOrderTask(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        matching::BuildSimilarityMatrix(pair.source, pair.target));
  }
}
BENCHMARK(BM_SimilarityMatrix)->Unit(benchmark::kMillisecond);

void BM_MatchingPredictors(benchmark::State& state) {
  const auto pair = schema::GeneratePurchaseOrderTask(2);
  const auto matrix =
      matching::BuildSimilarityMatrix(pair.source, pair.target);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matching::ComputePredictors(matrix));
  }
}
BENCHMARK(BM_MatchingPredictors)->Unit(benchmark::kMillisecond);

void BM_SimulateMatcher(benchmark::State& state) {
  const auto pair = schema::GeneratePurchaseOrderTask(3);
  const auto similarity =
      matching::BuildSimilarityMatrix(pair.source, pair.target);
  const auto reference = matching::MatchMatrix::FromReference(
      pair.reference, pair.source.size(), pair.target.size());
  sim::SimulationTask task;
  task.pair = &pair;
  task.similarity = &similarity;
  task.reference = &reference;
  stats::Rng rng(4);
  const auto profile = sim::SampleProfile(sim::Archetype::kExpertA, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::SimulateMatcher(task, profile, rng));
  }
}
BENCHMARK(BM_SimulateMatcher)->Unit(benchmark::kMillisecond);

void BM_BehavioralFeatures(benchmark::State& state) {
  matching::DecisionHistory history;
  for (int i = 0; i < 60; ++i) {
    history.Add({static_cast<std::size_t>(i % 30),
                 static_cast<std::size_t>(i % 10), 0.5,
                 static_cast<double>(i) * 10.0});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(BehavioralFeatures(history));
  }
}
BENCHMARK(BM_BehavioralFeatures);

void BM_MatMul(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  stats::Rng rng(9);
  const auto a = ml::Matrix::RandomGaussian(n, n, 1.0, rng);
  const auto b = ml::Matrix::RandomGaussian(n, n, 1.0, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.MatMul(b));
  }
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);

void BM_RandomForestFit(benchmark::State& state) {
  stats::Rng rng(5);
  ml::Dataset data;
  for (int i = 0; i < 100; ++i) {
    std::vector<double> row;
    for (int f = 0; f < 30; ++f) row.push_back(rng.Gaussian());
    data.Add(row, row[0] > 0.0 ? 1 : 0);
  }
  for (auto _ : state) {
    ml::RandomForest forest;
    forest.Fit(data);
    benchmark::DoNotOptimize(forest);
  }
}
BENCHMARK(BM_RandomForestFit)->Unit(benchmark::kMillisecond);

void BM_LstmEpoch(benchmark::State& state) {
  ml::LstmSequenceModel::Config config;
  config.input_dim = 3;
  config.hidden_dim = 16;
  config.dense_dim = 24;
  config.num_labels = 4;
  config.epochs = 1;
  stats::Rng rng(6);
  std::vector<ml::Sequence> sequences;
  std::vector<std::vector<double>> targets;
  for (int i = 0; i < 50; ++i) {
    ml::Sequence seq;
    for (int t = 0; t < 50; ++t) {
      seq.push_back({rng.Uniform(), rng.Uniform(), rng.Uniform()});
    }
    sequences.push_back(std::move(seq));
    targets.push_back({1.0, 0.0, 1.0, 0.0});
  }
  for (auto _ : state) {
    ml::LstmSequenceModel model(config);
    benchmark::DoNotOptimize(model.Fit(sequences, targets));
  }
}
BENCHMARK(BM_LstmEpoch)->Unit(benchmark::kMillisecond);

void BM_CnnEpoch(benchmark::State& state) {
  ml::CnnImageModel::Config config;
  config.image_rows = 20;
  config.image_cols = 32;
  config.epochs = 1;
  stats::Rng rng(7);
  std::vector<ml::Image> images;
  std::vector<std::vector<double>> targets;
  for (int i = 0; i < 50; ++i) {
    images.push_back(ml::Matrix::RandomGaussian(20, 32, 1.0, rng));
    targets.push_back({1.0, 0.0, 1.0, 0.0});
  }
  for (auto _ : state) {
    ml::CnnImageModel model(config);
    benchmark::DoNotOptimize(model.Fit(images, targets));
  }
}
BENCHMARK(BM_CnnEpoch)->Unit(benchmark::kMillisecond);

// Multi-epoch LSTM training at the production Phi_Seq shape — the
// perf-gate benchmark for the fused kernel layer (BM_LstmEpoch above is
// kept for trajectory continuity with older baselines).
void BM_LstmFit(benchmark::State& state) {
  ml::LstmSequenceModel::Config config;
  config.input_dim = 3;
  config.hidden_dim = 24;
  config.dense_dim = 32;
  config.num_labels = 4;
  config.epochs = 3;
  stats::Rng rng(16);
  std::vector<ml::Sequence> sequences;
  std::vector<std::vector<double>> targets;
  for (int i = 0; i < 30; ++i) {
    ml::Sequence seq;
    for (int t = 0; t < 40; ++t) {
      seq.push_back({rng.Uniform(), rng.Uniform(), rng.Uniform()});
    }
    sequences.push_back(std::move(seq));
    targets.push_back({1.0, 0.0, 1.0, 0.0});
  }
  for (auto _ : state) {
    ml::LstmSequenceModel model(config);
    benchmark::DoNotOptimize(model.Fit(sequences, targets));
  }
}
BENCHMARK(BM_LstmFit)->Unit(benchmark::kMillisecond);

// Multi-epoch CNN training at the production Phi_Spa shape.
void BM_CnnFit(benchmark::State& state) {
  ml::CnnImageModel::Config config;
  config.image_rows = 24;
  config.image_cols = 32;
  config.epochs = 2;
  stats::Rng rng(17);
  std::vector<ml::Image> images;
  std::vector<std::vector<double>> targets;
  for (int i = 0; i < 20; ++i) {
    images.push_back(ml::Matrix::RandomGaussian(24, 32, 1.0, rng));
    targets.push_back({1.0, 0.0, 1.0, 0.0});
  }
  for (auto _ : state) {
    ml::CnnImageModel model(config);
    benchmark::DoNotOptimize(model.Fit(images, targets));
  }
}
BENCHMARK(BM_CnnFit)->Unit(benchmark::kMillisecond);

// LSTM inference at the production Phi_Seq shape. The Fast variant is
// the --fast-math contract benchmark: same fitted model, ULP-bounded
// activations (src/ml/vmath) instead of exact libm.
void LstmPredictBench(benchmark::State& state, bool fast_math) {
  ml::LstmSequenceModel::Config config;
  config.input_dim = 3;
  config.hidden_dim = 24;
  config.dense_dim = 32;
  config.num_labels = 4;
  config.epochs = 1;
  stats::Rng rng(21);
  std::vector<ml::Sequence> sequences;
  std::vector<std::vector<double>> targets;
  for (int i = 0; i < 8; ++i) {
    ml::Sequence seq;
    for (int t = 0; t < 40; ++t) {
      seq.push_back({rng.Uniform(), rng.Uniform(), rng.Uniform()});
    }
    sequences.push_back(std::move(seq));
    targets.push_back({1.0, 0.0, 1.0, 0.0});
  }
  ml::LstmSequenceModel model(config);
  model.Fit(sequences, targets);
  ml::vmath::SetFastMath(fast_math);
  for (auto _ : state) {
    for (const auto& seq : sequences) {
      benchmark::DoNotOptimize(model.Predict(seq));
    }
  }
  ml::vmath::SetFastMath(false);
}

void BM_LstmPredict(benchmark::State& state) {
  LstmPredictBench(state, false);
}
BENCHMARK(BM_LstmPredict)->Unit(benchmark::kMicrosecond);

void BM_LstmPredictFast(benchmark::State& state) {
  LstmPredictBench(state, true);
}
BENCHMARK(BM_LstmPredictFast)->Unit(benchmark::kMicrosecond);

// Raw vmath span throughput: exact (scalar libm loop) against the
// ULP-bounded AVX2 fast kernels, on inputs spanning every branch of the
// range reduction.
void VmathBench(benchmark::State& state,
                void (*fn)(const double*, double*, std::size_t)) {
  constexpr std::size_t kN = 4096;
  stats::Rng rng(33);
  std::vector<double> x(kN);
  std::vector<double> y(kN);
  for (auto& v : x) v = rng.Uniform(-20.0, 20.0);
  for (auto _ : state) {
    fn(x.data(), y.data(), kN);
    benchmark::DoNotOptimize(y.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kN));
}

void BM_VmathExp(benchmark::State& state) {
  VmathBench(state, &ml::vmath::VExp);
}
BENCHMARK(BM_VmathExp)->Unit(benchmark::kMicrosecond);

void BM_VmathExpFast(benchmark::State& state) {
  VmathBench(state, &ml::vmath::VExpFast);
}
BENCHMARK(BM_VmathExpFast)->Unit(benchmark::kMicrosecond);

void BM_VmathTanh(benchmark::State& state) {
  VmathBench(state, &ml::vmath::VTanh);
}
BENCHMARK(BM_VmathTanh)->Unit(benchmark::kMicrosecond);

void BM_VmathTanhFast(benchmark::State& state) {
  VmathBench(state, &ml::vmath::VTanhFast);
}
BENCHMARK(BM_VmathTanhFast)->Unit(benchmark::kMicrosecond);

// End-to-end MExI training (all feature extractors + per-label
// classifier selection) on a small simulated population: the number the
// LOUC-style calibration loops multiply.
void BM_MexiTrain(benchmark::State& state) {
  sim::StudyConfig study_config;
  study_config.num_matchers = 10;
  study_config.seed = 18;
  const bench::StudyInput study(sim::BuildPurchaseOrderStudy(study_config));
  const auto measures = ComputeAllMeasures(study.input);
  const ExpertThresholds thresholds = FitThresholds(measures);
  const auto labels = LabelsFromMeasures(measures, thresholds);

  MexiConfig config;
  config.seq.lstm.epochs = 3;
  config.seq.lstm.hidden_dim = 8;
  config.seq.lstm.dense_dim = 8;
  config.spa.cnn.epochs = 2;
  config.spa.pretrain_images = 8;
  config.spa.pretrain_epochs = 1;
  for (auto _ : state) {
    Mexi mexi(config);
    mexi.Fit(study.input.matchers, labels, study.input.context);
    benchmark::DoNotOptimize(mexi);
  }
}
BENCHMARK(BM_MexiTrain)->Unit(benchmark::kMillisecond);

// BM_MexiTrain with the observability hub armed (in-memory sinks, no
// IO): the delta against BM_MexiTrain IS the metrics overhead, which
// the obs contract caps at <2%. Instrumentation is epoch/fold-grained,
// so the two numbers should be statistically indistinguishable.
void BM_MexiTrainMetrics(benchmark::State& state) {
  sim::StudyConfig study_config;
  study_config.num_matchers = 10;
  study_config.seed = 18;
  const bench::StudyInput study(sim::BuildPurchaseOrderStudy(study_config));
  const auto measures = ComputeAllMeasures(study.input);
  const ExpertThresholds thresholds = FitThresholds(measures);
  const auto labels = LabelsFromMeasures(measures, thresholds);

  MexiConfig config;
  config.seq.lstm.epochs = 3;
  config.seq.lstm.hidden_dim = 8;
  config.seq.lstm.dense_dim = 8;
  config.spa.cnn.epochs = 2;
  config.spa.pretrain_images = 8;
  config.spa.pretrain_epochs = 1;
  obs::Observability::Global().EnableMetrics("");
  for (auto _ : state) {
    Mexi mexi(config);
    mexi.Fit(study.input.matchers, labels, study.input.context);
    benchmark::DoNotOptimize(mexi);
  }
  obs::Observability::Global().DisableMetrics();
}
BENCHMARK(BM_MexiTrainMetrics)->Unit(benchmark::kMillisecond);

// Batched LSTM inference: Arg is the batch width. Width 1 is the
// legacy per-trace Predict loop; width 64 drives the lane-packed
// per-step GEMM engine over the same 64 ragged sequences. Items/sec is
// sequences per second, so the ratio of the two counters is the
// engine's speedup.
void BM_LstmPredictBatch(benchmark::State& state) {
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  ml::LstmSequenceModel::Config config;
  config.input_dim = 3;
  config.hidden_dim = 64;
  config.dense_dim = 100;
  config.num_labels = 4;
  config.epochs = 1;
  stats::Rng rng(23);
  std::vector<ml::Sequence> train;
  std::vector<std::vector<double>> targets;
  for (int i = 0; i < 4; ++i) {
    ml::Sequence seq;
    for (int t = 0; t < 40; ++t) {
      seq.push_back({rng.Uniform(), rng.Uniform(), rng.Uniform()});
    }
    train.push_back(std::move(seq));
    targets.push_back({1.0, 0.0, 1.0, 0.0});
  }
  ml::LstmSequenceModel model(config);
  model.Fit(train, targets);

  constexpr std::size_t kPopulation = 64;
  std::vector<ml::Sequence> sequences;
  for (std::size_t i = 0; i < kPopulation; ++i) {
    ml::Sequence seq;
    const std::size_t length = 20 + rng.UniformIndex(41);  // ragged
    for (std::size_t t = 0; t < length; ++t) {
      seq.push_back({rng.Uniform(), rng.Uniform(), rng.Uniform()});
    }
    sequences.push_back(std::move(seq));
  }
  ml::vmath::SetFastMath(true);
  ml::LstmSequenceModel::PredictBatchWorkspace ws;
  for (auto _ : state) {
    if (batch <= 1) {
      for (const auto& seq : sequences) {
        benchmark::DoNotOptimize(model.Predict(seq));
      }
    } else if (batch >= kPopulation) {
      // Whole population in one call: no chunk copies in the timed loop.
      benchmark::DoNotOptimize(model.PredictBatch(sequences, ws));
    } else {
      for (std::size_t begin = 0; begin < kPopulation; begin += batch) {
        const std::vector<ml::Sequence> chunk(
            sequences.begin() + static_cast<std::ptrdiff_t>(begin),
            sequences.begin() +
                static_cast<std::ptrdiff_t>(
                    std::min(kPopulation, begin + batch)));
        benchmark::DoNotOptimize(model.PredictBatch(chunk, ws));
      }
    }
  }
  ml::vmath::SetFastMath(false);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kPopulation));
}
BENCHMARK(BM_LstmPredictBatch)->Arg(1)->Arg(64)
    ->Unit(benchmark::kMillisecond);

// Batched CNN inference over the Phi_Spa heat-map shape.
void BM_CnnPredictBatch(benchmark::State& state) {
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  ml::CnnImageModel::Config config;
  config.image_rows = 20;
  config.image_cols = 32;
  config.epochs = 1;
  stats::Rng rng(24);
  std::vector<ml::Image> train;
  std::vector<std::vector<double>> targets;
  for (int i = 0; i < 8; ++i) {
    train.push_back(ml::Matrix::RandomGaussian(20, 32, 1.0, rng));
    targets.push_back({1.0, 0.0, 1.0, 0.0});
  }
  ml::CnnImageModel model(config);
  model.Fit(train, targets);

  constexpr std::size_t kPopulation = 64;
  std::vector<ml::Image> images;
  for (std::size_t i = 0; i < kPopulation; ++i) {
    images.push_back(ml::Matrix::RandomGaussian(20, 32, 1.0, rng));
  }
  ml::vmath::SetFastMath(true);
  ml::CnnImageModel::PredictBatchWorkspace ws;
  for (auto _ : state) {
    if (batch <= 1) {
      for (const auto& image : images) {
        benchmark::DoNotOptimize(model.Predict(image));
      }
    } else if (batch >= kPopulation) {
      // Whole population in one call: no chunk copies in the timed loop.
      benchmark::DoNotOptimize(model.PredictBatch(images, ws));
    } else {
      for (std::size_t begin = 0; begin < kPopulation; begin += batch) {
        const std::vector<ml::Image> chunk(
            images.begin() + static_cast<std::ptrdiff_t>(begin),
            images.begin() +
                static_cast<std::ptrdiff_t>(
                    std::min(kPopulation, begin + batch)));
        benchmark::DoNotOptimize(model.PredictBatch(chunk, ws));
      }
    }
  }
  ml::vmath::SetFastMath(false);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kPopulation));
}
BENCHMARK(BM_CnnPredictBatch)->Arg(1)->Arg(64)
    ->Unit(benchmark::kMillisecond);

// End-to-end serve-path throughput in traces/sec: one fitted MExI
// characterizing a 64-matcher population, fast math on (the serve-path
// default). Arg is MexiConfig::batch_size — 1 is the legacy per-trace
// path, 64 the batched engine; the compare step gates on the ratio
// (engine must be >= 2x the per-trace path).
void BM_CharacterizeThroughput(benchmark::State& state) {
  sim::StudyConfig study_config;
  study_config.num_matchers = 64;
  study_config.seed = 19;
  const bench::StudyInput study(sim::BuildPurchaseOrderStudy(study_config));
  const auto measures = ComputeAllMeasures(study.input);
  const ExpertThresholds thresholds = FitThresholds(measures);
  const auto labels = LabelsFromMeasures(measures, thresholds);

  MexiConfig config;
  config.submatcher_mode = SubmatcherMode::kNone;
  // Network-serving-heavy shape: a 128-unit LSTM puts the serve path
  // where production inference lives — dominated by the per-step
  // recurrent products (the 4H x (in+H+1) weight slab is ~0.5 MB, so
  // the per-trace path re-streams it from L2 every step while the
  // lane-blocked engine shares each pass across four traces). The
  // aggregated-predictor and CNN costs ride along unchanged; they are
  // batching-neutral by construction (identical code and data in both
  // arms), so the gate ratio isolates what the engine actually owns.
  config.seq.lstm.epochs = 1;
  config.seq.lstm.hidden_dim = 128;
  config.seq.lstm.dense_dim = 100;
  config.spa.cnn.epochs = 1;
  config.spa.pretrain_images = 0;
  config.batch_size = static_cast<std::size_t>(state.range(0));
  Mexi mexi(config);
  mexi.Fit(study.input.matchers, labels, study.input.context);

  ml::vmath::SetFastMath(true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mexi.CharacterizeAll(study.input.matchers));
  }
  ml::vmath::SetFastMath(false);
  state.SetItemsProcessed(static_cast<std::int64_t>(
      state.iterations() * study.input.matchers.size()));
}
BENCHMARK(BM_CharacterizeThroughput)->Arg(1)->Arg(64)
    ->Unit(benchmark::kMillisecond);

// End-to-end population-sweep throughput in matchers/sec: one trained
// PopulationSweeper re-running its full shard loop (simulate from the
// wide mixture, preprocess, measure, characterize, fold into the
// streamed aggregates) over a 128-matcher population. Arg is
// MexiConfig::batch_size — 1 serves each trace individually, 64 routes
// shards through the batched engine — at the same serving-heavy LSTM
// shape as BM_CharacterizeThroughput, so the /1-vs-/64 ratio gates that
// the sweep actually inherits the engine's advantage end to end
// (simulation and measure extraction ride along identically in both
// arms). Training happens once, outside the timed loop.
void BM_SweepThroughput(benchmark::State& state) {
  SweepConfig config;
  config.population = 128;
  config.shard_size = 64;
  config.train_matchers = 16;
  config.seed = 19;
  config.model = MexiConfig();
  config.model.submatcher_mode = SubmatcherMode::kNone;
  config.model.seq.lstm.epochs = 1;
  config.model.seq.lstm.hidden_dim = 128;
  config.model.seq.lstm.dense_dim = 100;
  config.model.spa.cnn.epochs = 1;
  config.model.spa.pretrain_images = 0;
  config.model.batch_size = static_cast<std::size_t>(state.range(0));
  PopulationSweeper sweeper(config);

  ml::vmath::SetFastMath(true);
  for (auto _ : state) {
    sweeper.Reset();
    benchmark::DoNotOptimize(sweeper.Run());
  }
  ml::vmath::SetFastMath(false);
  state.SetItemsProcessed(static_cast<std::int64_t>(
      state.iterations() * config.population));
}
BENCHMARK(BM_SweepThroughput)->Arg(1)->Arg(64)
    ->Unit(benchmark::kMillisecond);

// Shared fixture for the streaming-vs-rerun pair: one fitted MExI and
// one synthetic T-decision trace with every prefix history
// pre-materialized, so both arms time pure serve work. The LSTM shape
// matches the production-serving profile of BM_CharacterizeThroughput
// (wide recurrent slab, 100-unit head): the prefix re-runs the rerun
// arm pays are exactly the per-step recurrent products the streaming
// engine's carried state eliminates.
constexpr std::size_t kStreamTraceLen = 100;

struct StreamBenchFixture {
  std::unique_ptr<bench::StudyInput> study;
  std::unique_ptr<Mexi> mexi;
  std::vector<matching::Decision> trace;
  std::vector<matching::DecisionHistory> prefixes;  // prefixes[k]: k+1 long
  std::unique_ptr<matching::MovementMap> no_movement;
  std::size_t source_size = 0;
  std::size_t target_size = 0;
};

const StreamBenchFixture& GetStreamBenchFixture() {
  static StreamBenchFixture* fixture = [] {
    auto* f = new StreamBenchFixture();
    sim::StudyConfig study_config;
    study_config.num_matchers = 16;
    study_config.seed = 19;
    f->study = std::make_unique<bench::StudyInput>(
        sim::BuildPurchaseOrderStudy(study_config));
    const auto measures = ComputeAllMeasures(f->study->input);
    const ExpertThresholds thresholds = FitThresholds(measures);
    const auto labels = LabelsFromMeasures(measures, thresholds);

    MexiConfig config;
    config.submatcher_mode = SubmatcherMode::kNone;
    config.seq.lstm.epochs = 1;
    // The recurrent slab is what streaming amortizes: the rerun arm
    // re-plays Sum(k) = T(T+1)/2 LSTM steps against the stream's T, so
    // the measured ratio tracks how much of an emission the per-step
    // products own. At the 512-unit serving shape the 4H x (in+H+1)
    // slab is ~8 MB and a prefix re-run is ~50x the step count of the
    // stream, putting the full-pipeline ratio (CNN + PCA + classifier
    // emission cost included, identical in both arms) well clear of
    // the 10x floor compare_bench.py gates on.
    config.seq.lstm.hidden_dim = 512;
    config.seq.lstm.dense_dim = 100;
    config.spa.cnn.epochs = 1;
    config.spa.pretrain_images = 0;
    f->mexi = std::make_unique<Mexi>(config);
    f->mexi->Fit(f->study->input.matchers, labels,
                 f->study->input.context);

    f->source_size = f->study->input.context.source_size;
    f->target_size = f->study->input.context.target_size;
    f->no_movement = std::make_unique<matching::MovementMap>(1920.0, 1080.0);
    matching::DecisionHistory prefix;
    for (std::size_t k = 0; k < kStreamTraceLen; ++k) {
      matching::Decision d;
      d.source = (k * 7) % f->source_size;
      d.target = (k * 3) % f->target_size;
      d.confidence = 0.05 + 0.9 * static_cast<double>(k % 13) / 13.0;
      d.timestamp = static_cast<double>(k);
      f->trace.push_back(d);
      prefix.Add(d);
      f->prefixes.push_back(prefix);
    }
    return f;
  }();
  return *fixture;
}

// The streaming engine: one per-decision update + emission per
// decision, carried LSTM state, then the exact Finalize. Items/sec is
// decision-updates per second — each delivering a full running 4-label
// estimate.
void BM_StreamCharacterize(benchmark::State& state) {
  const StreamBenchFixture& bench = GetStreamBenchFixture();
  ml::vmath::SetFastMath(true);
  for (auto _ : state) {
    StreamingCharacterizer stream = bench.mexi->OpenStream(
        bench.source_size, bench.target_size, 1920.0, 1080.0);
    for (const auto& d : bench.trace) {
      benchmark::DoNotOptimize(stream.PushDecision(d));
    }
    benchmark::DoNotOptimize(stream.Finalize());
  }
  ml::vmath::SetFastMath(false);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kStreamTraceLen));
}
BENCHMARK(BM_StreamCharacterize)->Unit(benchmark::kMillisecond);

// The only alternative way to get an estimate after every decision
// without the streaming engine: re-run batch Characterize on each
// prefix. Identical deliverable (kStreamTraceLen estimates per
// iteration), so cpu_time(rerun) / cpu_time(stream) is the streaming
// speedup — gated >= 10x by bench/compare_bench.py RATIO_GATES.
void BM_StreamRerunCharacterize(benchmark::State& state) {
  const StreamBenchFixture& bench = GetStreamBenchFixture();
  MatcherView view;
  view.movement = bench.no_movement.get();
  view.source_size = bench.source_size;
  view.target_size = bench.target_size;
  ml::vmath::SetFastMath(true);
  for (auto _ : state) {
    for (const auto& prefix : bench.prefixes) {
      view.history = &prefix;
      benchmark::DoNotOptimize(bench.mexi->Characterize(view));
    }
  }
  ml::vmath::SetFastMath(false);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kStreamTraceLen));
}
BENCHMARK(BM_StreamRerunCharacterize)->Unit(benchmark::kMillisecond);

void BM_BuildStudy(benchmark::State& state) {
  for (auto _ : state) {
    sim::StudyConfig config;
    config.num_matchers = static_cast<std::size_t>(state.range(0));
    config.seed = 8;
    benchmark::DoNotOptimize(sim::BuildPurchaseOrderStudy(config));
  }
}
BENCHMARK(BM_BuildStudy)->Arg(10)->Arg(40)->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): the committed BENCH_perf.json
// is a perf-regression baseline, so recording it from an unoptimized
// build must be impossible by accident. Debug (`NDEBUG` unset) runs are
// refused unless MEXI_BENCH_ALLOW_DEBUG=1, and every run tags the JSON
// context with `mexi_build` so the CI compare step can verify apples
// against apples (see bench/compare_bench.py).
int main(int argc, char** argv) {
  // SIMD width changes timings but never results (MEXI_WIDE_SIMD in the
  // top-level CMakeLists); tag it so the compare step skips the gate
  // when baselines were recorded at a different width.
#ifdef __AVX2__
  benchmark::AddCustomContext("mexi_simd", "avx2");
#else
  benchmark::AddCustomContext("mexi_simd", "sse2");
#endif
#ifdef NDEBUG
  benchmark::AddCustomContext("mexi_build", "release");
#else
  benchmark::AddCustomContext("mexi_build", "debug");
  if (std::getenv("MEXI_BENCH_ALLOW_DEBUG") == nullptr) {
    std::fprintf(stderr,
                 "perf_microbench: refusing to run from a debug build "
                 "(NDEBUG unset); timings would be meaningless as a "
                 "baseline. Set MEXI_BENCH_ALLOW_DEBUG=1 to override.\n");
    return 2;
  }
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
