// Google-benchmark micro-benchmarks of the performance-critical paths:
// similarity-matrix construction, matching predictors, classifier
// training, the neural building blocks and the behavioral simulator.

#include <benchmark/benchmark.h>

#include "core/features/aggregated_features.h"
#include "matching/predictors.h"
#include "matching/similarity.h"
#include "ml/matrix.h"
#include "ml/nn/cnn.h"
#include "ml/nn/lstm.h"
#include "ml/random_forest.h"
#include "schema/generators.h"
#include "sim/matcher_sim.h"
#include "sim/study.h"

namespace {

using namespace mexi;

void BM_SimilarityMatrix(benchmark::State& state) {
  const auto pair = schema::GeneratePurchaseOrderTask(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        matching::BuildSimilarityMatrix(pair.source, pair.target));
  }
}
BENCHMARK(BM_SimilarityMatrix)->Unit(benchmark::kMillisecond);

void BM_MatchingPredictors(benchmark::State& state) {
  const auto pair = schema::GeneratePurchaseOrderTask(2);
  const auto matrix =
      matching::BuildSimilarityMatrix(pair.source, pair.target);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matching::ComputePredictors(matrix));
  }
}
BENCHMARK(BM_MatchingPredictors)->Unit(benchmark::kMillisecond);

void BM_SimulateMatcher(benchmark::State& state) {
  const auto pair = schema::GeneratePurchaseOrderTask(3);
  const auto similarity =
      matching::BuildSimilarityMatrix(pair.source, pair.target);
  const auto reference = matching::MatchMatrix::FromReference(
      pair.reference, pair.source.size(), pair.target.size());
  sim::SimulationTask task;
  task.pair = &pair;
  task.similarity = &similarity;
  task.reference = &reference;
  stats::Rng rng(4);
  const auto profile = sim::SampleProfile(sim::Archetype::kExpertA, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::SimulateMatcher(task, profile, rng));
  }
}
BENCHMARK(BM_SimulateMatcher)->Unit(benchmark::kMillisecond);

void BM_BehavioralFeatures(benchmark::State& state) {
  matching::DecisionHistory history;
  for (int i = 0; i < 60; ++i) {
    history.Add({static_cast<std::size_t>(i % 30),
                 static_cast<std::size_t>(i % 10), 0.5,
                 static_cast<double>(i) * 10.0});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(BehavioralFeatures(history));
  }
}
BENCHMARK(BM_BehavioralFeatures);

void BM_MatMul(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  stats::Rng rng(9);
  const auto a = ml::Matrix::RandomGaussian(n, n, 1.0, rng);
  const auto b = ml::Matrix::RandomGaussian(n, n, 1.0, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.MatMul(b));
  }
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);

void BM_RandomForestFit(benchmark::State& state) {
  stats::Rng rng(5);
  ml::Dataset data;
  for (int i = 0; i < 100; ++i) {
    std::vector<double> row;
    for (int f = 0; f < 30; ++f) row.push_back(rng.Gaussian());
    data.Add(row, row[0] > 0.0 ? 1 : 0);
  }
  for (auto _ : state) {
    ml::RandomForest forest;
    forest.Fit(data);
    benchmark::DoNotOptimize(forest);
  }
}
BENCHMARK(BM_RandomForestFit)->Unit(benchmark::kMillisecond);

void BM_LstmEpoch(benchmark::State& state) {
  ml::LstmSequenceModel::Config config;
  config.input_dim = 3;
  config.hidden_dim = 16;
  config.dense_dim = 24;
  config.num_labels = 4;
  config.epochs = 1;
  stats::Rng rng(6);
  std::vector<ml::Sequence> sequences;
  std::vector<std::vector<double>> targets;
  for (int i = 0; i < 50; ++i) {
    ml::Sequence seq;
    for (int t = 0; t < 50; ++t) {
      seq.push_back({rng.Uniform(), rng.Uniform(), rng.Uniform()});
    }
    sequences.push_back(std::move(seq));
    targets.push_back({1.0, 0.0, 1.0, 0.0});
  }
  for (auto _ : state) {
    ml::LstmSequenceModel model(config);
    benchmark::DoNotOptimize(model.Fit(sequences, targets));
  }
}
BENCHMARK(BM_LstmEpoch)->Unit(benchmark::kMillisecond);

void BM_CnnEpoch(benchmark::State& state) {
  ml::CnnImageModel::Config config;
  config.image_rows = 20;
  config.image_cols = 32;
  config.epochs = 1;
  stats::Rng rng(7);
  std::vector<ml::Image> images;
  std::vector<std::vector<double>> targets;
  for (int i = 0; i < 50; ++i) {
    images.push_back(ml::Matrix::RandomGaussian(20, 32, 1.0, rng));
    targets.push_back({1.0, 0.0, 1.0, 0.0});
  }
  for (auto _ : state) {
    ml::CnnImageModel model(config);
    benchmark::DoNotOptimize(model.Fit(images, targets));
  }
}
BENCHMARK(BM_CnnEpoch)->Unit(benchmark::kMillisecond);

void BM_BuildStudy(benchmark::State& state) {
  for (auto _ : state) {
    sim::StudyConfig config;
    config.num_matchers = static_cast<std::size_t>(state.range(0));
    config.seed = 8;
    benchmark::DoNotOptimize(sim::BuildPurchaseOrderStudy(config));
  }
}
BENCHMARK(BM_BuildStudy)->Arg(10)->Arg(40)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
