// Regenerates Table IIb: generalizability — every method is trained on
// the 106 PO matchers and tested on the 34 OAEI ontology-alignment
// matchers (cross-task transfer; matrix dimensions differ).

#include <cstdio>

#include "bench/harness.h"

int main() {
  using namespace mexi;
  const auto po = bench::BuildPoInput();
  const auto oaei = bench::BuildOaeiInput();

  ExperimentConfig config;
  config.bootstrap_replicates = 2000;
  config.seed = 778;

  auto results = RunTransferExperiment(po->input, oaei->input,
                                       bench::TableTwoMethods(), config);
  MarkSignificance(results, "LRSM", config);

  bench::PrintAccuracyTable(
      "Table IIb: generalizability — train on PO, test on OAEI\n"
      "('*' = significant improvement over LRSM, bootstrap p < .05)\n"
      "(paper shape: transfer degrades accuracy but MExI still leads)",
      results);
  return 0;
}
