// Regenerates Figure 9: proportion of matching experts by type, with the
// multi-expertise breakdown (how many of each type's experts also hold
// 1, 2 or all 3 of the other characteristics).

#include <cstdio>

#include "bench/harness.h"

int main() {
  using namespace mexi;
  const auto po = bench::BuildPoInput();
  const auto measures = ComputeAllMeasures(po->input);
  const ExpertThresholds thresholds = FitThresholds(measures);
  const auto labels = LabelsFromMeasures(measures, thresholds);

  const auto& names = CharacteristicNames();
  const double n = static_cast<double>(labels.size());

  std::printf("Figure 9: proportion of matching experts by type\n");
  std::printf("(paper: precise=.53 thorough=.15 correlated=.33");
  std::printf(" calibrated=.42)\n\n");
  std::printf("%-12s %6s | breakdown by total expertise count\n", "type",
              "share");
  std::printf("%-12s %6s | %7s %7s %7s %7s\n", "", "", "only", "+1", "+2",
              "all 4");
  for (std::size_t c = 0; c < names.size(); ++c) {
    std::size_t held = 0;
    std::size_t by_count[5] = {0, 0, 0, 0, 0};
    for (const auto& label : labels) {
      const auto bits = label.ToVector();
      if (bits[c] != 1) continue;
      ++held;
      ++by_count[label.Count()];
    }
    std::printf("%-12s %5.0f%% | %6.0f%% %6.0f%% %6.0f%% %6.0f%%\n",
                names[c].c_str(), 100.0 * static_cast<double>(held) / n,
                held ? 100.0 * by_count[1] / static_cast<double>(held) : 0.0,
                held ? 100.0 * by_count[2] / static_cast<double>(held) : 0.0,
                held ? 100.0 * by_count[3] / static_cast<double>(held) : 0.0,
                held ? 100.0 * by_count[4] / static_cast<double>(held)
                     : 0.0);
  }

  std::size_t full = 0;
  for (const auto& label : labels) full += label.IsFullExpert();
  std::printf("\nfull experts (all four types): %zu of %zu (%.0f%%)\n",
              full, labels.size(), 100.0 * static_cast<double>(full) / n);

  // The paper notes all thorough experts hold >= 1 other expertise.
  std::size_t thorough_only = 0;
  for (const auto& label : labels) {
    if (label.thorough && label.Count() == 1) ++thorough_only;
  }
  std::printf("thorough-only experts: %zu (paper: 0)\n", thorough_only);
  return 0;
}
