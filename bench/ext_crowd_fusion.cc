// Extension experiment: crowd fusion. The paper motivates expert
// identification with better final matching outcomes; this bench takes
// the last step and fuses the crowd's matrices into one match under
// four policies:
//   (1) equal-weight vote over everyone,
//   (2) votes weighted by MExI's predicted expertise,
//   (3) predicted experts only (>= 3 characteristics),
//   (4) policy 3 + Ipeirotis-style confidence-bias correction, where
//       each matcher's bias is estimated from the warm-up (gold) phase.
// Reported: P / R / F1 of the fused match vs the reference.

#include <cstdio>

#include "bench/harness.h"
#include "core/boosting.h"

int main() {
  using namespace mexi;
  const auto po = bench::BuildPoInput();
  const auto& input = po->input;

  // Split matchers: first 70 train MExI, the rest form the crowd.
  std::vector<MatcherView> train_views, crowd_views;
  for (std::size_t i = 0; i < input.matchers.size(); ++i) {
    (i < 70 ? train_views : crowd_views).push_back(input.matchers[i]);
  }

  EvaluationInput train_input = input;
  train_input.matchers = train_views;
  const auto train_measures = ComputeAllMeasures(train_input);
  const ExpertThresholds thresholds = FitThresholds(train_measures);
  const auto train_labels = LabelsFromMeasures(train_measures, thresholds);

  Mexi mexi(Mexi50Config());
  mexi.Fit(train_views, train_labels, input.context);
  const auto predictions = mexi.CharacterizeAll(crowd_views);

  // Crowd matrices; bias estimates from the warm-up phase (gold data a
  // deployment legitimately has).
  std::vector<matching::MatchMatrix> matrices, corrected;
  std::vector<double> equal_weights, expert_weights;
  std::vector<matching::MatchMatrix> expert_matrices, corrected_experts;
  std::vector<double> expert_only_weights;
  const auto learned_weights = ExpertiseWeights(predictions);
  for (std::size_t i = 0; i < crowd_views.size(); ++i) {
    const auto& view = crowd_views[i];
    matching::MatchMatrix matrix =
        view.history->ToMatrix(view.source_size, view.target_size);
    double warmup_bias = 0.0;
    if (view.warmup_history != nullptr &&
        input.context.warmup_reference != nullptr &&
        !view.warmup_history->empty()) {
      warmup_bias = ComputeMeasures(*view.warmup_history,
                                    input.context.warmup_source_size,
                                    input.context.warmup_target_size,
                                    *input.context.warmup_reference)
                        .calibration;
    }
    equal_weights.push_back(1.0);
    expert_weights.push_back(learned_weights[i]);
    if (predictions[i].Count() >= 3) {
      expert_matrices.push_back(matrix);
      corrected_experts.push_back(AdjustForBias(matrix, warmup_bias));
      expert_only_weights.push_back(1.0);
    }
    corrected.push_back(AdjustForBias(matrix, warmup_bias));
    matrices.push_back(std::move(matrix));
  }

  auto report = [&](const char* name, const MatchQuality& q) {
    std::printf("%-28s P=%.2f R=%.2f F1=%.2f\n", name, q.precision,
                q.recall, q.f1);
  };

  std::printf(
      "Crowd fusion (extension): final match quality of %zu crowd\n"
      "matchers under different expertise policies\n\n",
      crowd_views.size());
  report("equal-weight vote",
         EvaluateMatch(FuseCrowd(matrices, equal_weights),
                       *input.reference));
  report("expertise-weighted vote",
         EvaluateMatch(FuseCrowd(matrices, expert_weights),
                       *input.reference));
  if (!expert_matrices.empty()) {
    report("predicted experts only",
           EvaluateMatch(FuseCrowd(expert_matrices, expert_only_weights),
                         *input.reference));
    report("experts + bias correction",
           EvaluateMatch(FuseCrowd(corrected_experts, expert_only_weights),
                         *input.reference));
  } else {
    std::printf("(no predicted experts in this draw)\n");
  }
  std::printf(
      "\nExpected shape: expertise weighting beats the flat crowd vote,\n"
      "and the expert-only panels dominate (the paper's motivation).\n");
  return 0;
}
