#include "ml/dataset.h"

#include <set>

#include <gtest/gtest.h>

namespace mexi::ml {
namespace {

TEST(DatasetTest, AddValidatesInput) {
  Dataset d;
  d.Add({1.0, 2.0}, 1);
  EXPECT_THROW(d.Add({1.0}, 0), std::invalid_argument);
  EXPECT_THROW(d.Add({1.0, 2.0}, 2), std::invalid_argument);
  EXPECT_EQ(d.NumExamples(), 1u);
  EXPECT_EQ(d.NumFeatures(), 2u);
}

TEST(DatasetTest, SubsetAllowsDuplicates) {
  Dataset d;
  d.Add({1.0}, 0);
  d.Add({2.0}, 1);
  const Dataset s = d.Subset({1, 1, 0});
  EXPECT_EQ(s.NumExamples(), 3u);
  EXPECT_DOUBLE_EQ(s.features[0][0], 2.0);
  EXPECT_EQ(s.labels[2], 0);
  EXPECT_THROW(d.Subset({5}), std::out_of_range);
}

TEST(DatasetTest, PositiveRate) {
  Dataset d;
  d.Add({0.0}, 1);
  d.Add({0.0}, 1);
  d.Add({0.0}, 0);
  d.Add({0.0}, 0);
  EXPECT_DOUBLE_EQ(d.PositiveRate(), 0.5);
  EXPECT_DOUBLE_EQ(Dataset().PositiveRate(), 0.0);
}

TEST(KFoldTest, FoldsPartitionTheData) {
  stats::Rng rng(1);
  KFold folds(23, 5, rng);
  EXPECT_EQ(folds.num_folds(), 5u);
  std::set<std::size_t> seen;
  for (std::size_t f = 0; f < 5; ++f) {
    for (std::size_t idx : folds.TestIndices(f)) {
      EXPECT_TRUE(seen.insert(idx).second) << "index in two folds";
    }
  }
  EXPECT_EQ(seen.size(), 23u);
}

TEST(KFoldTest, TrainTestDisjointAndComplete) {
  stats::Rng rng(2);
  KFold folds(30, 3, rng);
  for (std::size_t f = 0; f < 3; ++f) {
    std::set<std::size_t> test(folds.TestIndices(f).begin(),
                               folds.TestIndices(f).end());
    const auto train = folds.TrainIndices(f);
    for (std::size_t idx : train) EXPECT_EQ(test.count(idx), 0u);
    EXPECT_EQ(train.size() + test.size(), 30u);
  }
}

TEST(KFoldTest, RejectsBadFoldCounts) {
  stats::Rng rng(3);
  EXPECT_THROW(KFold(10, 1, rng), std::invalid_argument);
  EXPECT_THROW(KFold(3, 4, rng), std::invalid_argument);
}

TEST(StandardizerTest, ZeroMeanUnitVariance) {
  Standardizer z;
  z.Fit({{1.0, 10.0}, {2.0, 20.0}, {3.0, 30.0}});
  const auto rows = z.TransformAll({{1.0, 10.0}, {2.0, 20.0}, {3.0, 30.0}});
  double mean0 = 0.0, mean1 = 0.0;
  for (const auto& row : rows) {
    mean0 += row[0];
    mean1 += row[1];
  }
  EXPECT_NEAR(mean0 / 3.0, 0.0, 1e-12);
  EXPECT_NEAR(mean1 / 3.0, 0.0, 1e-12);
  double var0 = 0.0;
  for (const auto& row : rows) var0 += row[0] * row[0];
  EXPECT_NEAR(var0 / 3.0, 1.0, 1e-12);
}

TEST(StandardizerTest, ConstantColumnMapsToZero) {
  Standardizer z;
  z.Fit({{5.0}, {5.0}, {5.0}});
  const auto out = z.Transform({5.0});
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  // A new value is still finite (unit fallback scale).
  EXPECT_DOUBLE_EQ(z.Transform({6.0})[0], 1.0);
}

TEST(StandardizerTest, GuardsUsage) {
  Standardizer z;
  EXPECT_THROW(z.Transform({1.0}), std::logic_error);
  EXPECT_THROW(z.Fit({}), std::invalid_argument);
  z.Fit({{1.0, 2.0}});
  EXPECT_THROW(z.Transform({1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace mexi::ml
