#!/usr/bin/env bash
# Streaming characterization parity drill.
#
# The `stream` subcommand's hard contract: after the final decision the
# streamed estimate is identical to the batch Characterize answer —
# bitwise in exact math, and (because stream and batch share the same
# serve kernels) bitwise in fast math too. The drill compares the final
# JSONL line of a streamed run against the one-line batch-engine run for
# every matcher, in both math modes, and checks the two modes agree on
# the label field (semantic fast-math parity, like fast_math_parity.sh).
set -u

MEXI_CLI="${MEXI_CLI:?path to the mexi_cli binary (set by ctest)}"
WORKDIR="$(mktemp -d)"
trap 'rm -rf "${WORKDIR}"' EXIT

fail() { echo "stream_parity: FAIL: $*" >&2; exit 1; }

DATA="${WORKDIR}/data"
"${MEXI_CLI}" simulate --out "${DATA}" --matchers 12 --seed 47 --task po \
    > "${WORKDIR}/simulate.log" || fail "simulate exited $?"
read -r ROWS COLS < <(sed -n \
    's/^rerun with: --rows \([0-9]*\) --cols \([0-9]*\)$/\1 \2/p' \
    "${WORKDIR}/simulate.log")
[ -n "${ROWS:-}" ] && [ -n "${COLS:-}" ] || fail "could not parse task dims"

STREAM=("${MEXI_CLI}" stream --dir "${DATA}" --rows "${ROWS}" \
    --cols "${COLS}")

for MODE in exact fast; do
  MODE_FLAG=()
  [ "${MODE}" = exact ] && MODE_FLAG=(--exact-math)

  "${STREAM[@]}" "${MODE_FLAG[@]}" > "${WORKDIR}/stream.${MODE}.jsonl" \
      || fail "stream (${MODE}) exited $?"
  "${STREAM[@]}" "${MODE_FLAG[@]}" --engine batch \
      > "${WORKDIR}/batch.${MODE}.jsonl" || fail "batch (${MODE}) exited $?"

  # The streamed run's final lines (one per matcher) must be
  # byte-identical to the batch engine's output.
  grep '"final":true' "${WORKDIR}/stream.${MODE}.jsonl" \
      > "${WORKDIR}/final.${MODE}.jsonl"
  cmp "${WORKDIR}/final.${MODE}.jsonl" "${WORKDIR}/batch.${MODE}.jsonl" \
      || fail "streamed final lines differ from batch answers (${MODE})"

  # Emission shape: every matcher contributes its per-decision lines
  # plus exactly one final line.
  FINALS=$(wc -l < "${WORKDIR}/final.${MODE}.jsonl")
  [ "${FINALS}" -eq 12 ] || fail "expected 12 final lines, got ${FINALS}"
done

# Streaming twice must be byte-identical (deterministic serve path).
"${STREAM[@]}" > "${WORKDIR}/stream.fast2.jsonl" \
    || fail "stream rerun exited $?"
cmp "${WORKDIR}/stream.fast.jsonl" "${WORKDIR}/stream.fast2.jsonl" \
    || fail "streamed output is not deterministic across runs"

# Fast math may move last-ULP probabilities but never the labels.
sed 's/.*"labels":\(\[[^]]*\]\).*/\1/' "${WORKDIR}/batch.exact.jsonl" \
    > "${WORKDIR}/labels.exact.txt"
sed 's/.*"labels":\(\[[^]]*\]\).*/\1/' "${WORKDIR}/batch.fast.jsonl" \
    > "${WORKDIR}/labels.fast.txt"
diff -u "${WORKDIR}/labels.exact.txt" "${WORKDIR}/labels.fast.txt" \
    || fail "fast math changed streamed labels"

echo "stream_parity: PASS"
