#include "stats/histogram.h"

#include <gtest/gtest.h>

namespace mexi::stats {
namespace {

TEST(HistogramTest, BinsObservations) {
  Histogram h(0.0, 10.0, 5);
  h.Add(0.5);
  h.Add(1.5);
  h.Add(2.5);
  h.Add(9.5);
  EXPECT_DOUBLE_EQ(h.count(0), 2.0);  // [0, 2)
  EXPECT_DOUBLE_EQ(h.count(1), 1.0);  // [2, 4)
  EXPECT_DOUBLE_EQ(h.count(4), 1.0);  // [8, 10)
  EXPECT_DOUBLE_EQ(h.total(), 4.0);
}

TEST(HistogramTest, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 1.0, 4);
  h.Add(-5.0);
  h.Add(5.0);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(3), 1.0);
}

TEST(HistogramTest, WeightedAndNormalized) {
  Histogram h(0.0, 2.0, 2);
  h.AddWeighted(0.5, 3.0);
  h.AddWeighted(1.5, 1.0);
  const auto normalized = h.Normalized();
  EXPECT_DOUBLE_EQ(normalized[0], 0.75);
  EXPECT_DOUBLE_EQ(normalized[1], 0.25);
  EXPECT_EQ(h.ArgMax(), 0u);
}

TEST(HistogramTest, BinLowerEdges) {
  Histogram h(10.0, 20.0, 5);
  EXPECT_DOUBLE_EQ(h.BinLower(0), 10.0);
  EXPECT_DOUBLE_EQ(h.BinLower(4), 18.0);
}

TEST(HistogramTest, InvalidConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 3), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 3), std::invalid_argument);
}

TEST(HistogramTest, AsciiRendering) {
  Histogram h(0.0, 2.0, 2);
  h.Add(0.5);
  h.Add(0.6);
  const std::string ascii = h.ToAscii(10);
  EXPECT_NE(ascii.find('#'), std::string::npos);
}

}  // namespace
}  // namespace mexi::stats
