#!/usr/bin/env bash
# Process-level metrics-identity drill for the observability substrate.
#
# 1. Simulate a small study and run `characterize` with no metrics.
# 2. Re-run with --metrics-out and --status-file armed.
# 3. The instrumented run's stdout must be byte-identical to the plain
#    run's — observation must not change a single output bit — and the
#    sinks (metrics.jsonl, run_manifest.json, status file) must exist
#    and carry the documented schema markers.
# 4. MEXI_METRICS=<dir> must arm the same sinks without any flag.
set -u

MEXI_CLI="${MEXI_CLI:?path to the mexi_cli binary (set by ctest)}"
WORKDIR="$(mktemp -d)"
trap 'rm -rf "${WORKDIR}"' EXIT

fail() { echo "metrics_identity: FAIL: $*" >&2; exit 1; }

DATA="${WORKDIR}/data"
"${MEXI_CLI}" simulate --out "${DATA}" --matchers 8 --seed 31 --task po \
    > "${WORKDIR}/simulate.log" || fail "simulate exited $?"
read -r ROWS COLS < <(sed -n \
    's/^rerun with: --rows \([0-9]*\) --cols \([0-9]*\)$/\1 \2/p' \
    "${WORKDIR}/simulate.log")
[ -n "${ROWS:-}" ] && [ -n "${COLS:-}" ] || fail "could not parse task dims"

CHARACTERIZE=("${MEXI_CLI}" characterize --dir "${DATA}" \
    --rows "${ROWS}" --cols "${COLS}" --folds 2)

# Reference: metrics off.
"${CHARACTERIZE[@]}" > "${WORKDIR}/plain.txt" \
    || fail "plain run exited $?"

# Instrumented: metrics + status file armed via flags.
OBS="${WORKDIR}/obs"
"${CHARACTERIZE[@]}" --metrics-out "${OBS}" \
    --status-file "${WORKDIR}/status.json" \
    > "${WORKDIR}/instrumented.txt" 2> "${WORKDIR}/summary.txt" \
    || fail "instrumented run exited $?"

cmp "${WORKDIR}/plain.txt" "${WORKDIR}/instrumented.txt" \
    || fail "metrics-on stdout differs from metrics-off stdout"

# Sink sanity: JSONL present, schema-marked, one JSON object per line.
JSONL="${OBS}/metrics.jsonl"
[ -s "${JSONL}" ] || fail "metrics.jsonl missing or empty"
head -n 1 "${JSONL}" | grep -q '"type": "meta"' \
    || fail "metrics.jsonl does not start with the meta line"
BAD=$(grep -cv '^{.*}$' "${JSONL}")
[ "${BAD}" -eq 0 ] || fail "${BAD} malformed JSONL lines"
for marker in '"type": "span"' '"type": "event"' '"type": "counter"' \
              '"type": "timer"'; do
  grep -q "${marker}" "${JSONL}" || fail "no ${marker} line in JSONL"
done

MANIFEST="${OBS}/run_manifest.json"
[ -s "${MANIFEST}" ] || fail "run_manifest.json missing or empty"
for key in '"schema_version"' '"build"' '"simd"' '"seed"' \
           '"config_fingerprint"' '"subcommand": "characterize"'; do
  grep -q "${key}" "${MANIFEST}" || fail "manifest missing ${key}"
done

STATUS="${WORKDIR}/status.json"
[ -s "${STATUS}" ] || fail "status file missing or empty"
grep -q '"phase": "kfold"' "${STATUS}" || fail "status lacks final phase"
grep -q '"done": 2' "${STATUS}" || fail "status lacks final fold count"

# The stderr summary prints at shutdown.
grep -q '\[mexi obs\] run summary' "${WORKDIR}/summary.txt" \
    || fail "stderr summary missing"

# Env-var arming: MEXI_METRICS without any flag, same sinks, and the
# output is still byte-identical.
ENV_OBS="${WORKDIR}/env_obs"
MEXI_METRICS="${ENV_OBS}" "${CHARACTERIZE[@]}" > "${WORKDIR}/env.txt" \
    2> /dev/null || fail "MEXI_METRICS run exited $?"
cmp "${WORKDIR}/plain.txt" "${WORKDIR}/env.txt" \
    || fail "MEXI_METRICS stdout differs from plain stdout"
[ -s "${ENV_OBS}/metrics.jsonl" ] || fail "MEXI_METRICS left no JSONL"
[ -s "${ENV_OBS}/run_manifest.json" ] || fail "MEXI_METRICS left no manifest"

echo "metrics_identity: PASS"
