#include "schema/tokenizer.h"

#include <gtest/gtest.h>

namespace mexi::schema {
namespace {

using Tokens = std::vector<std::string>;

struct TokenizeCase {
  std::string input;
  Tokens expected;
};

class TokenizeTest : public ::testing::TestWithParam<TokenizeCase> {};

TEST_P(TokenizeTest, SplitsAsExpected) {
  EXPECT_EQ(TokenizeName(GetParam().input), GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, TokenizeTest,
    ::testing::Values(
        TokenizeCase{"poCode", Tokens{"po", "code"}},
        TokenizeCase{"orderDate", Tokens{"order", "date"}},
        TokenizeCase{"ship_to_city", Tokens{"ship", "to", "city"}},
        TokenizeCase{"POCode", Tokens{"po", "code"}},
        TokenizeCase{"address2", Tokens{"address", "2"}},
        TokenizeCase{"line2Amount", Tokens{"line", "2", "amount"}},
        TokenizeCase{"kebab-case-name", Tokens{"kebab", "case", "name"}},
        TokenizeCase{"with space", Tokens{"with", "space"}},
        TokenizeCase{"simple", Tokens{"simple"}},
        TokenizeCase{"", Tokens{}},
        TokenizeCase{"___", Tokens{}},
        TokenizeCase{"poShipToCity", Tokens{"po", "ship", "to", "city"}}));

TEST(ToLowerTest, LowercasesAscii) {
  EXPECT_EQ(ToLowerAscii("AbC123"), "abc123");
  EXPECT_EQ(ToLowerAscii(""), "");
}

TEST(NgramTest, TrigramsOfWord) {
  const auto grams = CharacterNgrams("Order", 3);
  ASSERT_EQ(grams.size(), 3u);
  EXPECT_EQ(grams[0], "ord");
  EXPECT_EQ(grams[1], "rde");
  EXPECT_EQ(grams[2], "der");
}

TEST(NgramTest, ShortInputAndZeroN) {
  EXPECT_TRUE(CharacterNgrams("ab", 3).empty());
  EXPECT_TRUE(CharacterNgrams("abc", 0).empty());
  EXPECT_EQ(CharacterNgrams("abc", 3).size(), 1u);
}

}  // namespace
}  // namespace mexi::schema
