#include "ml/nn/lstm.h"

#include <cmath>

#include <gtest/gtest.h>

#include "stats/rng.h"

namespace mexi::ml {
namespace {

LstmSequenceModel::Config TinyConfig() {
  LstmSequenceModel::Config config;
  config.input_dim = 2;
  config.hidden_dim = 6;
  config.dense_dim = 8;
  config.num_labels = 2;
  config.dropout = 0.0;  // determinism for shape tests
  config.epochs = 40;
  config.batch_size = 4;
  config.seed = 3;
  return config;
}

/// Sequences whose first label is "mean of channel 0 is high" and whose
/// second label is "sequence is long".
void MakeData(std::size_t n, std::uint64_t seed,
              std::vector<Sequence>* sequences,
              std::vector<std::vector<double>>* targets) {
  stats::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const bool high = rng.Bernoulli(0.5);
    const bool long_seq = rng.Bernoulli(0.5);
    const std::size_t length = long_seq ? 18 + rng.UniformIndex(6)
                                        : 4 + rng.UniformIndex(4);
    Sequence seq;
    for (std::size_t t = 0; t < length; ++t) {
      const double base = high ? 0.8 : 0.2;
      seq.push_back({base + rng.Gaussian(0.0, 0.1),
                     rng.Uniform(0.0, 1.0)});
    }
    sequences->push_back(std::move(seq));
    targets->push_back({high ? 1.0 : 0.0, long_seq ? 1.0 : 0.0});
  }
}

TEST(LstmTest, LearnsSequenceLevelAndLengthLabels) {
  std::vector<Sequence> sequences;
  std::vector<std::vector<double>> targets;
  MakeData(80, 7, &sequences, &targets);

  LstmSequenceModel model(TinyConfig());
  model.Fit(sequences, targets);
  EXPECT_TRUE(model.fitted());

  std::vector<Sequence> test_sequences;
  std::vector<std::vector<double>> test_targets;
  MakeData(40, 8, &test_sequences, &test_targets);
  int correct0 = 0, correct1 = 0;
  for (std::size_t i = 0; i < test_sequences.size(); ++i) {
    const auto probs = model.Predict(test_sequences[i]);
    correct0 += (probs[0] > 0.5) == (test_targets[i][0] > 0.5);
    correct1 += (probs[1] > 0.5) == (test_targets[i][1] > 0.5);
  }
  EXPECT_GT(correct0, 32);  // > 80%
  EXPECT_GT(correct1, 28);  // > 70%
}

TEST(LstmTest, PredictionsAreProbabilities) {
  std::vector<Sequence> sequences;
  std::vector<std::vector<double>> targets;
  MakeData(20, 9, &sequences, &targets);
  LstmSequenceModel model(TinyConfig());
  model.Fit(sequences, targets);
  for (const auto& seq : sequences) {
    for (double p : model.Predict(seq)) {
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
  }
}

TEST(LstmTest, EmptySequenceHandled) {
  std::vector<Sequence> sequences{{{0.1, 0.2}, {0.3, 0.4}}, {}};
  std::vector<std::vector<double>> targets{{1.0, 0.0}, {0.0, 1.0}};
  LstmSequenceModel model(TinyConfig());
  model.Fit(sequences, targets);
  const auto probs = model.Predict({});
  EXPECT_EQ(probs.size(), 2u);
}

TEST(LstmTest, RejectsBadInputs) {
  LstmSequenceModel model(TinyConfig());
  EXPECT_THROW(model.Fit({}, {}), std::invalid_argument);
  EXPECT_THROW(model.Fit({{{1.0, 2.0}}}, {{1.0, 0.0}, {0.0, 1.0}}),
               std::invalid_argument);
  // Wrong feature width inside a sequence.
  EXPECT_THROW(model.Fit({{{1.0}}}, {{1.0, 0.0}}), std::invalid_argument);
}

TEST(LstmTest, DeterministicGivenSeed) {
  std::vector<Sequence> sequences;
  std::vector<std::vector<double>> targets;
  MakeData(12, 10, &sequences, &targets);
  LstmSequenceModel a(TinyConfig());
  LstmSequenceModel b(TinyConfig());
  a.Fit(sequences, targets);
  b.Fit(sequences, targets);
  const auto pa = a.Predict(sequences[0]);
  const auto pb = b.Predict(sequences[0]);
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_DOUBLE_EQ(pa[i], pb[i]);
  }
}

/// Gradient check through the whole LSTM on a tiny problem: training on a
/// single sequence must reduce the loss monotonically-ish (sanity proxy
/// for BPTT correctness; exact finite differences are covered by the
/// dense-layer test and the convergence tests above).
TEST(LstmTest, LossDecreasesOnSingleSequence) {
  LstmSequenceModel::Config config = TinyConfig();
  config.epochs = 1;
  config.adam.learning_rate = 0.02;
  LstmSequenceModel model(config);
  const std::vector<Sequence> sequences{
      {{0.9, 0.1}, {0.8, 0.4}, {0.7, 0.2}}};
  const std::vector<std::vector<double>> targets{{1.0, 0.0}};
  double first = model.Fit(sequences, targets);
  double last = first;
  for (int i = 0; i < 60; ++i) last = model.Fit(sequences, targets);
  EXPECT_LT(last, first * 0.5);
}

}  // namespace
}  // namespace mexi::ml
